package ppsim

import (
	"ppsim/internal/traffic"
)

// Traffic constructors re-exported from the internal traffic package; see
// that package's documentation for the model details. All randomized
// sources take explicit seeds and are deterministic per seed.

// NewTrace returns an empty explicit arrival schedule.
func NewTrace() *Trace { return traffic.NewTrace() }

// NewBernoulli returns iid traffic on an n x n switch: each slot each input
// receives a cell with probability load, destined uniformly.
func NewBernoulli(n int, load float64, until Time, seed int64) Source {
	return traffic.NewBernoulli(n, load, until, seed)
}

// NewHotspot returns Bernoulli traffic with a fraction hotFrac of every
// input's cells aimed at the single output hot.
func NewHotspot(n int, load, hotFrac float64, hot Port, until Time, seed int64) (Source, error) {
	return traffic.NewHotspot(n, load, hotFrac, hot, until, seed)
}

// NewOnOff returns bursty on/off traffic with geometric dwell times.
func NewOnOff(n int, meanOn, meanOff float64, until Time, seed int64) (Source, error) {
	return traffic.NewOnOff(n, meanOn, meanOff, until, seed)
}

// NewPermutation returns full-rate permutation traffic (input i to
// perm[i] every slot): per-port rate exactly R with zero burstiness.
func NewPermutation(perm []Port, until Time) (Source, error) {
	return traffic.NewPermutation(perm, until)
}

// NewFlood returns traffic in which every input sends to the same output
// every slot — deliberately not leaky-bucket conformant; it creates the
// congested periods of Section 5 of the paper.
func NewFlood(n int, out Port, until Time) Source {
	return &traffic.Flood{N: n, Out: out, Until: until}
}

// NewBvN returns deterministic traffic realizing a doubly-substochastic
// rate matrix through its Birkhoff–von Neumann decomposition: smooth,
// admissible, reproducible, with burstiness bounded by the decomposition
// size. lambda[i][j] is the rate (cells/slot) from input i to output j.
func NewBvN(lambda [][]float64, until Time) (Source, error) {
	return traffic.NewBvN(lambda, until, 0)
}

// NewCBR returns constant-bit-rate traffic: one cell per flow every period
// slots.
func NewCBR(flows []Flow, period Time, until Time) Source {
	return &traffic.CBR{Flows: flows, Period: period, Until: until}
}

// Shape wraps a source with an (R=1, B) leaky-bucket regulator, delaying
// cells as needed so the offered traffic conforms to Definition 3 of the
// paper.
func Shape(n int, b int64, src Source) Source {
	return traffic.NewRegulator(n, b, src)
}

// WithDeadline wraps a source so every arrival carries an absolute departure
// deadline of its arrival slot plus rel (rel >= 1). Pair it with a
// deadline-drop AdmissionSpec to shed late cells; without one, deadlines
// only feed the on-time-fraction accounting.
func WithDeadline(src Source, rel Time) Source {
	return traffic.WithDeadline(src, rel)
}

// MeasureBurstiness replays a finite source and returns the smallest B for
// which it is (R=1, B) leaky-bucket conformant.
func MeasureBurstiness(n int, src Source) (int64, error) {
	return traffic.MeasureSource(n, src)
}

// WindowBurstiness returns the maximum excess (cells - tau*R) over all
// windows of exactly tau slots, per output-port — the Proposition 15
// diagnostic: bounded in tau for leaky-bucket traffic, growing without
// bound for congestion traffic.
func WindowBurstiness(n int, src Source, tau Time) (int64, error) {
	return traffic.WindowBurstiness(n, src, tau)
}

// Concat composes finite sources sequentially with idle gaps; see
// traffic.NewConcat.
func Concat(parts ...ConcatPart) (Source, error) {
	ps := make([]traffic.Part, len(parts))
	for i, p := range parts {
		ps[i] = traffic.Part{Source: p.Source, GapAfter: p.GapAfter}
	}
	return traffic.NewConcat(ps...)
}

// ConcatPart is one stage of a Concat.
type ConcatPart struct {
	Source   Source
	GapAfter Time
}
