package ppsim_test

import (
	"testing"

	"ppsim"
)

// TestSoakLargeSwitch runs a large switch for a long horizon with every
// invariant audit enabled — the stability net for refactors. Skipped under
// -short.
func TestSoakLargeSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n, k, rp, horizon = 128, 16, 4, 30_000 // S = 4
	for _, alg := range []ppsim.Algorithm{
		{Name: "rr"},
		{Name: "cpa"},
	} {
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			cfg := ppsim.Config{N: n, K: k, RPrime: rp, Algorithm: alg}
			src := ppsim.Shape(n, 16, ppsim.NewBernoulli(n, 0.85, horizon, 99))
			res, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: horizon * 8, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Cells < uint64(float64(n)*0.8*horizon*0.9) {
				t.Errorf("suspiciously few cells: %d", res.Report.Cells)
			}
			if alg.Name == "cpa" && res.Report.MaxRQD != 0 {
				t.Errorf("CPA at S=4 over %d cells: MaxRQD = %d, want 0", res.Report.Cells, res.Report.MaxRQD)
			}
			t.Logf("%s: %v (peak plane queue %d, %d slots)", alg.Name, res.Report, res.PeakPlaneQueue, res.Slots)
		})
	}
}

// TestSoakAdversarialLarge steers a 256-port switch: the Corollary 7 shape
// must hold at scale, not just at toy sizes. Skipped under -short.
func TestSoakAdversarialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const n, k, rp = 256, 4, 2
	cfg := ppsim.Config{N: n, K: k, RPrime: rp, Algorithm: ppsim.Algorithm{Name: "rr"}}
	tr, err := ppsim.SteeringTrace(cfg, ppsim.AllInputs(n), 0, 1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ppsim.Run(cfg, tr, ppsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := ppsim.Time((n - 1) * (rp - 1)); res.Report.MaxRQD != want {
		t.Errorf("N=%d steered MaxRQD = %d, want %d", n, res.Report.MaxRQD, want)
	}
}
