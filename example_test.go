package ppsim_test

import (
	"fmt"

	"ppsim"
)

// ExampleRun compares a fully-distributed PPS against the work-conserving
// reference switch on deterministic traffic.
func ExampleRun() {
	cfg := ppsim.Config{
		N: 8, K: 4, RPrime: 2, // speedup S = 2
		Algorithm: ppsim.Algorithm{Name: "rr"},
	}
	// Four flows beating in phase toward output 0: every 4th slot brings
	// a burst of 4 cells, so the measured leaky-bucket burstiness is 3.
	src := ppsim.NewCBR([]ppsim.Flow{
		{In: 0, Out: 0}, {In: 1, Out: 0}, {In: 2, Out: 0}, {In: 3, Out: 0},
	}, 4, 40)
	res, err := ppsim.Run(cfg, src, ppsim.Options{Validate: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cells=%d burstiness=%d\n", res.Report.Cells, res.Burstiness)
	// Output:
	// cells=40 burstiness=3
}

// ExampleSteeringTrace reproduces Corollary 7's worst case: the adversary
// aligns every demultiplexor on one plane and the relative queuing delay
// reaches (R/r - 1) * N up to the one-slot departure convention.
func ExampleSteeringTrace() {
	cfg := ppsim.Config{N: 16, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	trace, err := ppsim.SteeringTrace(cfg, ppsim.AllInputs(16), 0, 1, 0, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := ppsim.Run(cfg, trace, ppsim.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("max relative queuing delay: %d (bound %d)\n",
		res.Report.MaxRQD, (cfg.RPrime-1)*int64(cfg.N))
	// Output:
	// max relative queuing delay: 15 (bound 16)
}

// ExampleCompare contrasts centralized and distributed dispatch on the same
// adversarial trace.
func ExampleCompare() {
	cfg := ppsim.Config{N: 8, K: 8, RPrime: 4} // S = 2
	trace, err := ppsim.ConcentrationTrace(8, 8, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	results, err := ppsim.Compare(cfg, []ppsim.Algorithm{{Name: "rr"}, {Name: "cpa"}}, trace, ppsim.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("rr=%d cpa=%d\n", results["rr"].Report.MaxRQD, results["cpa"].Report.MaxRQD)
	// Output:
	// rr=21 cpa=0
}

// ExampleRunSweep sweeps a parameter space on a worker pool; results come
// back in point order regardless of scheduling.
func ExampleRunSweep() {
	var points []ppsim.SweepPoint
	for _, n := range []int{4, 8} {
		n := n
		cfg := ppsim.Config{N: n, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
		points = append(points, ppsim.SweepPoint{
			Label:  fmt.Sprintf("N=%d", n),
			Config: cfg,
			NewSource: func() ppsim.Source {
				tr, _ := ppsim.SteeringTrace(cfg, ppsim.AllInputs(n), 0, 1, 0, 0)
				return tr
			},
		})
	}
	for _, r := range ppsim.RunSweep(points, 2) {
		if r.Err != nil {
			fmt.Println("error:", r.Err)
			return
		}
		fmt.Printf("%s maxRQD=%d\n", r.Label, r.Result.Report.MaxRQD)
	}
	// Output:
	// N=4 maxRQD=3
	// N=8 maxRQD=7
}

// ExampleRunSeeds studies the delay distribution of randomized dispatch,
// the paper's Discussion question.
func ExampleRunSeeds() {
	cfg := ppsim.Config{N: 16, K: 4, RPrime: 3, Algorithm: ppsim.Algorithm{Name: "random"}}
	trace, _ := ppsim.ConcentrationTrace(16, 16, 0)
	dist, err := ppsim.RunSeeds(cfg, 10,
		func(seed int64, base ppsim.Config) ppsim.Config {
			base.Algorithm.Seed = seed
			return base
		},
		func(int64) ppsim.Source { return trace },
		ppsim.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The deterministic worst case on this trace is (N-1)(r'-1) = 30;
	// randomization stays far below it on every seed.
	fmt.Printf("runs=%d below-deterministic=%v\n", dist.Runs, dist.Max < 30)
	// Output:
	// runs=10 below-deterministic=true
}

// ExampleNewBvN drives the switch with deterministic rate-matrix traffic.
func ExampleNewBvN() {
	lambda := [][]float64{
		{0.5, 0.25},
		{0.25, 0.5},
	}
	src, err := ppsim.NewBvN(lambda, 1000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg := ppsim.Config{N: 2, K: 2, RPrime: 1, Algorithm: ppsim.Algorithm{Name: "cpa"}}
	res, err := ppsim.Run(cfg, src, ppsim.Options{Validate: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("maxRQD=%d smooth=%v\n", res.Report.MaxRQD, res.Burstiness <= 4)
	// Output:
	// maxRQD=0 smooth=true
}
