package ppsim

import "ppsim/internal/admission"

// Admission control: a policy layer evaluated in front of the demultiplexors
// that decides, per offered arrival, whether the cell enters the switch at
// all. Attach a spec via Options.Admission; the zero/nil spec is always-admit
// and byte-identical to no admission configuration. Token buckets use exact
// integer arithmetic with lazy closed-form refill, so decisions are
// deterministic and identical across the serial, stage-parallel,
// fast-forward and event-driven engines. Deadline-drop composes with
// WithDeadline-wrapped traffic: arrivals already past their deadline are
// refused at admission, and deliveries that miss it are reclassified as
// expired at egress. Result/Report carry the accounting (offered, admitted,
// rejected, expired, goodput, on-time fraction); every offered cell is
// conserved across those counters.
type (
	// AdmissionSpec is a declarative admission policy (per-input and
	// aggregate token buckets plus deadline enforcement). Build it directly,
	// or via ParseAdmissionSpec; a built spec is immutable and may be shared
	// across runs.
	AdmissionSpec = admission.Spec
)

// ParseAdmissionSpec parses the comma-separated admission spec grammar of
// the -admission CLI flags, e.g. "rate:1/2,burst:16,agg-rate:8,agg-burst:64,deadline".
// "" and "always" yield the always-admit zero spec.
func ParseAdmissionSpec(spec string) (*AdmissionSpec, error) { return admission.ParseSpec(spec) }
