package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppsim"
)

// quantiles builds a minimal percentile block with the given rqd tail.
func quantiles(p99, p999 int64) *ppsim.DelayQuantiles {
	return &ppsim.DelayQuantiles{
		RQD: ppsim.Quantiles{N: 100, P99: p99, P999: p999},
	}
}

// TestBenchSchemaPercentilesOmitEmpty pins the backward-compatibility
// contract: a result without a percentile block serializes without the key
// at all (so pre-schema diffs stay byte-stable), one with a block carries
// the nested component quantiles under their documented JSON names, and a
// pre-schema file (no "percentiles" keys anywhere) still unmarshals.
func TestBenchSchemaPercentilesOmitEmpty(t *testing.T) {
	f := benchFile{
		Rev: "t",
		Results: []benchResult{
			{benchCase: benchCase{Name: "old"}},
			{benchCase: benchCase{Name: "new"}, Percentiles: quantiles(7, 12)},
		},
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Results []map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Results[0]["percentiles"]; ok {
		t.Error("result without tail data should omit the percentiles key")
	}
	pb, ok := raw.Results[1]["percentiles"]
	if !ok {
		t.Fatal("result with tail data lost its percentiles key")
	}
	for _, key := range []string{"rqd", "demux_wait", "plane_wait", "reseq_wait", "total_delay", "interdeparture_gap"} {
		if !strings.Contains(string(pb), `"`+key+`"`) {
			t.Errorf("percentile block missing component %q: %s", key, pb)
		}
	}

	var back benchFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[1].Percentiles == nil || back.Results[1].Percentiles.RQD.P99 != 7 {
		t.Errorf("round-trip lost the tail block: %+v", back.Results[1].Percentiles)
	}

	// A baseline written before the field existed must still parse.
	pre := `{"rev":"pr5","results":[{"name":"bursty/n8/k2","slots_per_sec":100}]}`
	var old benchFile
	if err := json.Unmarshal([]byte(pre), &old); err != nil {
		t.Fatalf("pre-schema file no longer parses: %v", err)
	}
	if old.Results[0].Percentiles != nil {
		t.Error("pre-schema file should read as a nil percentile block")
	}
}

// writeBaseline marshals a benchFile into a temp baseline for printDelta.
func writeBaseline(t *testing.T, f benchFile) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPrintDeltaTailColumns exercises the delta table: tail columns render
// both sides, an absent baseline block shows an em dash, and the gate flags
// (a) a throughput regression and (b) a tail regression — but not a case
// that is merely slower within the threshold.
func TestPrintDeltaTailColumns(t *testing.T) {
	base := benchFile{Rev: "base", Results: []benchResult{
		{benchCase: benchCase{Name: "fine"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "slow"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "tail"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "notail"}, SlotsPerSec: 1000},
	}}
	cur := benchFile{Rev: "cur", Results: []benchResult{
		{benchCase: benchCase{Name: "fine"}, SlotsPerSec: 950, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "slow"}, SlotsPerSec: 500, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "tail"}, SlotsPerSec: 1000, Percentiles: quantiles(30, 60)},
		{benchCase: benchCase{Name: "notail"}, SlotsPerSec: 1000, Percentiles: quantiles(5, 9)},
	}}

	var sb strings.Builder
	flagged, err := printDelta(&sb, writeBaseline(t, base), cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if flagged != 2 {
		t.Errorf("flagged = %d, want 2 (slow + tail)\n%s", flagged, out)
	}
	for _, want := range []string{
		"| fine | 1000 | 950 | -5.0% | 0.0 → 0.0 | 10 → 10 | 20 → 20 |",
		"| slow | 1000 | 500 | -50.0% ⚠ |",
		"| tail | 1000 | 1000 | +0.0% ⚠ | 0.0 → 0.0 | 10 → 30 | 20 → 60 |",
		"| notail | 1000 | 1000 | +0.0% | 0.0 → 0.0 | — → 5 | — → 9 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}

	// gate 0 disables flagging entirely.
	sb.Reset()
	flagged, err = printDelta(&sb, writeBaseline(t, base), cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if flagged != 0 {
		t.Errorf("gate 0 flagged %d cases, want 0", flagged)
	}
	if strings.Contains(sb.String(), "⚠") {
		t.Error("gate 0 should not mark any row")
	}
}

// TestTailRegressed pins the non-positive-baseline convention: percent above
// a positive base, more-than-one-slot above a zero/negative base.
func TestTailRegressed(t *testing.T) {
	cases := []struct {
		base, cur int64
		pct       float64
		want      bool
	}{
		{100, 109, 10, false},
		{100, 111, 10, true},
		{0, 1, 10, false},
		{0, 2, 10, true},
		{-3, -2, 10, false},
		{-3, 0, 10, true},
	}
	for _, c := range cases {
		if got := tailRegressed(c.base, c.cur, c.pct); got != c.want {
			t.Errorf("tailRegressed(%d, %d, %.0f) = %v, want %v", c.base, c.cur, c.pct, got, c.want)
		}
	}
}

// TestRunRecordsPercentiles runs one tiny case end to end and checks the
// measured result carries a populated tail block whose components agree in
// count (every delivered cell contributes one sample to each component).
func TestRunRecordsPercentiles(t *testing.T) {
	c := benchCase{Name: "t", Traffic: "uniform", N: 8, K: 2, RPrime: 2, Slots: 400, Seed: 1}
	res, err := run(c, 0, nil, ppsim.FaultAbort, false)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Percentiles
	if q == nil || q.RQD.N == 0 {
		t.Fatalf("bench result missing tail block: %+v", q)
	}
	if q.Demux.N != q.RQD.N || q.Plane.N != q.RQD.N || q.Reseq.N != q.RQD.N || q.Total.N != q.RQD.N {
		t.Errorf("component counts disagree: %+v", q)
	}
}
