package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppsim"
)

// quantiles builds a minimal percentile block with the given rqd tail.
func quantiles(p99, p999 int64) *ppsim.DelayQuantiles {
	return &ppsim.DelayQuantiles{
		RQD: ppsim.Quantiles{N: 100, P99: p99, P999: p999},
	}
}

// TestBenchSchemaPercentilesOmitEmpty pins the backward-compatibility
// contract: a result without a percentile block serializes without the key
// at all (so pre-schema diffs stay byte-stable), one with a block carries
// the nested component quantiles under their documented JSON names, and a
// pre-schema file (no "percentiles" keys anywhere) still unmarshals.
func TestBenchSchemaPercentilesOmitEmpty(t *testing.T) {
	f := benchFile{
		Rev: "t",
		Results: []benchResult{
			{benchCase: benchCase{Name: "old"}},
			{benchCase: benchCase{Name: "new"}, Percentiles: quantiles(7, 12)},
		},
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Results []map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Results[0]["percentiles"]; ok {
		t.Error("result without tail data should omit the percentiles key")
	}
	pb, ok := raw.Results[1]["percentiles"]
	if !ok {
		t.Fatal("result with tail data lost its percentiles key")
	}
	for _, key := range []string{"rqd", "demux_wait", "plane_wait", "reseq_wait", "total_delay", "interdeparture_gap"} {
		if !strings.Contains(string(pb), `"`+key+`"`) {
			t.Errorf("percentile block missing component %q: %s", key, pb)
		}
	}

	var back benchFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Results[1].Percentiles == nil || back.Results[1].Percentiles.RQD.P99 != 7 {
		t.Errorf("round-trip lost the tail block: %+v", back.Results[1].Percentiles)
	}

	// A baseline written before the field existed must still parse.
	pre := `{"rev":"pr5","results":[{"name":"bursty/n8/k2","slots_per_sec":100}]}`
	var old benchFile
	if err := json.Unmarshal([]byte(pre), &old); err != nil {
		t.Fatalf("pre-schema file no longer parses: %v", err)
	}
	if old.Results[0].Percentiles != nil {
		t.Error("pre-schema file should read as a nil percentile block")
	}
}

// writeBaseline marshals a benchFile into a temp baseline for printDelta.
func writeBaseline(t *testing.T, f benchFile) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPrintDeltaTailColumns exercises the delta table: tail columns render
// both sides, an absent baseline block shows an em dash, and the gate flags
// (a) a throughput regression, (b) a cells/sec regression at a flat slot
// rate, (c) a tail regression at p99, (d) one visible only at p999, and (e)
// growth past a zero baseline in either tail column — but not a case that is
// merely slower within the threshold, one slot of quantization noise above a
// zero tail, or a cells/sec drop against a baseline with no cells/sec data
// (pre-schema files must never gate on the new column).
func TestPrintDeltaTailColumns(t *testing.T) {
	base := benchFile{Rev: "base", Results: []benchResult{
		{benchCase: benchCase{Name: "fine"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "slow"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "cells"}, SlotsPerSec: 1000, CellsPerSec: 4000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "cellsup"}, SlotsPerSec: 1000, CellsPerSec: 4000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "nocells"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "tail"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "tail999"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "zero99"}, SlotsPerSec: 1000, Percentiles: quantiles(0, 20)},
		{benchCase: benchCase{Name: "zero999"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 0)},
		{benchCase: benchCase{Name: "zerook"}, SlotsPerSec: 1000, Percentiles: quantiles(0, 0)},
		{benchCase: benchCase{Name: "notail"}, SlotsPerSec: 1000},
	}}
	cur := benchFile{Rev: "cur", Results: []benchResult{
		{benchCase: benchCase{Name: "fine"}, SlotsPerSec: 950, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "slow"}, SlotsPerSec: 500, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "cells"}, SlotsPerSec: 1000, CellsPerSec: 2000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "cellsup"}, SlotsPerSec: 1000, CellsPerSec: 8000, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "nocells"}, SlotsPerSec: 1000, CellsPerSec: 500, Percentiles: quantiles(10, 20)},
		{benchCase: benchCase{Name: "tail"}, SlotsPerSec: 1000, Percentiles: quantiles(30, 60)},
		{benchCase: benchCase{Name: "tail999"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 60)},
		{benchCase: benchCase{Name: "zero99"}, SlotsPerSec: 1000, Percentiles: quantiles(2, 20)},
		{benchCase: benchCase{Name: "zero999"}, SlotsPerSec: 1000, Percentiles: quantiles(10, 2)},
		{benchCase: benchCase{Name: "zerook"}, SlotsPerSec: 1000, Percentiles: quantiles(1, 1)},
		{benchCase: benchCase{Name: "notail"}, SlotsPerSec: 1000, Percentiles: quantiles(5, 9)},
	}}

	var sb strings.Builder
	flagged, err := printDelta(&sb, writeBaseline(t, base), cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if flagged != 6 {
		t.Errorf("flagged = %d, want 6 (slow + cells + tail + tail999 + zero99 + zero999)\n%s", flagged, out)
	}
	for _, want := range []string{
		"| fine | 1000 | 950 | -5.0% | — → 0 | 0.0 → 0.0 | 10 → 10 (+0.0%) | 20 → 20 (+0.0%) |",
		"| slow | 1000 | 500 | -50.0% ⚠ |",
		"| cells | 1000 | 1000 | +0.0% ⚠ | 4000 → 2000 (-50.0%) | 0.0 → 0.0 | 10 → 10 (+0.0%) | 20 → 20 (+0.0%) |",
		"| cellsup | 1000 | 1000 | +0.0% | 4000 → 8000 (+100.0%) | 0.0 → 0.0 | 10 → 10 (+0.0%) | 20 → 20 (+0.0%) |",
		"| nocells | 1000 | 1000 | +0.0% | — → 500 | 0.0 → 0.0 | 10 → 10 (+0.0%) | 20 → 20 (+0.0%) |",
		"| tail | 1000 | 1000 | +0.0% ⚠ | — → 0 | 0.0 → 0.0 | 10 → 30 (+200.0%) | 20 → 60 (+200.0%) |",
		"| tail999 | 1000 | 1000 | +0.0% ⚠ | — → 0 | 0.0 → 0.0 | 10 → 10 (+0.0%) | 20 → 60 (+200.0%) |",
		"| zero99 | 1000 | 1000 | +0.0% ⚠ | — → 0 | 0.0 → 0.0 | — → 2 | 20 → 20 (+0.0%) |",
		"| zero999 | 1000 | 1000 | +0.0% ⚠ | — → 0 | 0.0 → 0.0 | 10 → 10 (+0.0%) | — → 2 |",
		"| zerook | 1000 | 1000 | +0.0% | — → 0 | 0.0 → 0.0 | — → 1 | — → 1 |",
		"| notail | 1000 | 1000 | +0.0% | — → 0 | 0.0 → 0.0 | — → 5 | — → 9 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}

	// gate 0 disables flagging entirely.
	sb.Reset()
	flagged, err = printDelta(&sb, writeBaseline(t, base), cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if flagged != 0 {
		t.Errorf("gate 0 flagged %d cases, want 0", flagged)
	}
	if strings.Contains(sb.String(), "⚠") {
		t.Error("gate 0 should not mark any row")
	}
}

// TestPrintDeltaZeroDelayBaseline is the regression test for the
// zero-baseline percentile convention: a synthetic baseline whose delay
// quantiles are all zero (a short or perfectly-scheduled run) must render
// its tail columns with the cells/s column's "— →" convention — never a
// division-by-zero artifact — while growth past the zero baseline still
// gates through the more-than-one-slot rule.
func TestPrintDeltaZeroDelayBaseline(t *testing.T) {
	base := benchFile{Rev: "base", Results: []benchResult{
		{benchCase: benchCase{Name: "z"}, SlotsPerSec: 1000, Percentiles: quantiles(0, 0)},
	}}
	cur := benchFile{Rev: "cur", Results: []benchResult{
		{benchCase: benchCase{Name: "z"}, SlotsPerSec: 1000, Percentiles: quantiles(3, 5)},
	}}
	var sb strings.Builder
	flagged, err := printDelta(&sb, writeBaseline(t, base), cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if want := "| z | 1000 | 1000 | +0.0% ⚠ | — → 0 | 0.0 → 0.0 | — → 3 | — → 5 |"; !strings.Contains(out, want) {
		t.Errorf("zero-delay baseline row missing %q:\n%s", want, out)
	}
	if flagged != 1 {
		t.Errorf("flagged = %d, want 1 (growth past a zero tail)", flagged)
	}
	for _, artifact := range []string{"NaN", "Inf", "%!"} {
		if strings.Contains(out, artifact) {
			t.Errorf("delta table contains formatting artifact %q:\n%s", artifact, out)
		}
	}
}

// TestPrintDeltaQoSColumns pins the admission columns: they appear only
// when a side carries goodput / on-time figures, policy-free sides render
// an em dash, and a goodput regression never flags — the columns are
// informational, the gate stays on throughput and tails.
func TestPrintDeltaQoSColumns(t *testing.T) {
	base := benchFile{Rev: "base", Results: []benchResult{
		{benchCase: benchCase{Name: "plain"}, SlotsPerSec: 1000},
		{benchCase: benchCase{Name: "qos"}, SlotsPerSec: 1000, Goodput: 0.9, OnTimeFraction: 0.95},
	}}
	cur := benchFile{Rev: "cur", Results: []benchResult{
		{benchCase: benchCase{Name: "plain"}, SlotsPerSec: 1000, Goodput: 0.55, OnTimeFraction: 0.81},
		{benchCase: benchCase{Name: "qos"}, SlotsPerSec: 1000, Goodput: 0.5, OnTimeFraction: 0.8},
	}}
	var sb strings.Builder
	flagged, err := printDelta(&sb, writeBaseline(t, base), cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "goodput (base → new) | on-time (base → new) |") {
		t.Errorf("QoS header columns missing:\n%s", out)
	}
	for _, want := range []string{
		"| plain | 1000 | 1000 | +0.0% | — → 0 | 0.0 → 0.0 | — → — | — → — | — → 0.550 | — → 0.810 |",
		"| qos | 1000 | 1000 | +0.0% | — → 0 | 0.0 → 0.0 | — → — | — → — | 0.900 → 0.500 (-44.4%) | 0.950 → 0.800 (-15.8%) |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("QoS table missing %q:\n%s", want, out)
		}
	}
	if flagged != 0 {
		t.Errorf("flagged = %d, want 0 — QoS columns must never gate", flagged)
	}

	// A compare between two policy-free files keeps the legacy eight-column
	// layout: no QoS headers at all.
	oldBase := benchFile{Rev: "oldbase", Results: []benchResult{
		{benchCase: benchCase{Name: "plain"}, SlotsPerSec: 1000},
	}}
	oldCur := benchFile{Rev: "oldcur", Results: []benchResult{
		{benchCase: benchCase{Name: "plain"}, SlotsPerSec: 1100},
	}}
	sb.Reset()
	if _, err := printDelta(&sb, writeBaseline(t, oldBase), oldCur, 10); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "goodput") {
		t.Errorf("policy-free compare grew QoS columns:\n%s", sb.String())
	}
}

// TestMatchFilter pins the comma-separated -filter semantics CI relies on.
func TestMatchFilter(t *testing.T) {
	cases := []struct {
		filter, name string
		want         bool
	}{
		{"", "bursty/n8/k2", true},
		{"bursty/n512", "bursty/n512/k8", true},
		{"bursty/n512,bursty/n1024", "bursty/n1024/k8", true},
		{"bursty/n512,bursty/n1024", "bursty-low-1m/n1024/k8", false},
		{"bursty/n512,bursty/n1024", "uniform/n8/k2", false},
		{",,uniform", "uniform/n8/k2", true},
	}
	for _, c := range cases {
		if got := matchFilter(c.filter, c.name); got != c.want {
			t.Errorf("matchFilter(%q, %q) = %v, want %v", c.filter, c.name, got, c.want)
		}
	}
}

// TestTailRegressed pins the non-positive-baseline convention: percent above
// a positive base, more-than-one-slot above a zero/negative base.
func TestTailRegressed(t *testing.T) {
	cases := []struct {
		base, cur int64
		pct       float64
		want      bool
	}{
		{100, 109, 10, false},
		{100, 111, 10, true},
		{0, 1, 10, false},
		{0, 2, 10, true},
		{-3, -2, 10, false},
		{-3, 0, 10, true},
	}
	for _, c := range cases {
		if got := tailRegressed(c.base, c.cur, c.pct); got != c.want {
			t.Errorf("tailRegressed(%d, %d, %.0f) = %v, want %v", c.base, c.cur, c.pct, got, c.want)
		}
	}
}

// TestRunRecordsPercentiles runs one tiny case end to end and checks the
// measured result carries a populated tail block whose components agree in
// count (every delivered cell contributes one sample to each component),
// plus the engine record: an auto run over a lookahead-capable source and an
// idle-invariant algorithm lands on the event core with no degradation.
func TestRunRecordsPercentiles(t *testing.T) {
	c := benchCase{Name: "t", Traffic: "uniform", N: 8, K: 2, RPrime: 2, Slots: 400, Seed: 1}
	res, err := run(c, 0, nil, ppsim.FaultAbort, ppsim.EngineAuto, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Percentiles
	if q == nil || q.RQD.N == 0 {
		t.Fatalf("bench result missing tail block: %+v", q)
	}
	if q.Demux.N != q.RQD.N || q.Plane.N != q.RQD.N || q.Reseq.N != q.RQD.N || q.Total.N != q.RQD.N {
		t.Errorf("component counts disagree: %+v", q)
	}
	if res.Engine != "event" || res.EngineReason != "" {
		t.Errorf("auto run recorded engine %q (%q), want the event core", res.Engine, res.EngineReason)
	}
}

// TestRunRecordsShardGeometry pins the new machine-context fields: a
// stage-parallel run records the resolved worker count and a shard-width
// vector covering every output-port, while a serial run omits both (so
// pre-schema JSON diffs stay stable).
func TestRunRecordsShardGeometry(t *testing.T) {
	c := benchCase{Name: "t", Traffic: "uniform", N: 64, K: 2, RPrime: 2, Slots: 200, Seed: 1}
	par, err := run(c, 4, nil, ppsim.FaultAbort, ppsim.EngineAuto, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if par.WorkersResolved != 4 {
		t.Errorf("WorkersResolved = %d, want 4", par.WorkersResolved)
	}
	total := 0
	for _, w := range par.ShardPorts {
		total += w
	}
	if len(par.ShardPorts) != 4 || total != c.N {
		t.Errorf("ShardPorts = %v, want 4 shards covering %d ports", par.ShardPorts, c.N)
	}
	ser, err := run(c, 0, nil, ppsim.FaultAbort, ppsim.EngineAuto, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ser.WorkersResolved != 0 || ser.ShardPorts != nil {
		t.Errorf("serial run recorded geometry: workers %d, shards %v", ser.WorkersResolved, ser.ShardPorts)
	}
	if ser.Cells != par.Cells || ser.MaxRQD != par.MaxRQD {
		t.Errorf("serial and parallel measurements diverge: %+v vs %+v", ser, par)
	}
}

// TestRunForcedSteppedMatchesEvent pins the CLI-level equivalence the
// committed BENCH_pr7 pair relies on: forcing -engine stepped changes only
// the engine record and the wall-clock figures, never a measurement.
func TestRunForcedSteppedMatchesEvent(t *testing.T) {
	c := benchCase{Name: "t", Traffic: "bursty-low", N: 32, K: 8, RPrime: 2, Slots: 600, Seed: 1}
	stepped, err := run(c, 0, nil, ppsim.FaultAbort, ppsim.EngineStepped, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	event, err := run(c, 0, nil, ppsim.FaultAbort, ppsim.EngineEvent, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stepped.Engine != "stepped" || event.Engine != "event" {
		t.Fatalf("engine records: stepped=%q event=%q", stepped.Engine, event.Engine)
	}
	if stepped.SlotsElided != 0 {
		t.Errorf("stepped run elided %d slots", stepped.SlotsElided)
	}
	if event.SlotsElided == 0 {
		t.Error("event run on mostly-idle traffic elided nothing")
	}
	if stepped.RunSlots != event.RunSlots || stepped.Cells != event.Cells ||
		stepped.MaxRQD != event.MaxRQD || *stepped.Percentiles != *event.Percentiles {
		t.Errorf("measurements diverge:\nstepped: %+v\nevent:   %+v", stepped, event)
	}
}
