// Command ppsbench runs the repository's fixed benchmark suite — bursty,
// uniform and adversarial traffic at N in {8, 32, 128} and K in {2, 8},
// plus bursty large-N cases at N in {512, 1024} for the stage-parallel
// engine — and writes a machine-readable BENCH_<rev>.json next to the working
// directory. The committed BENCH_*.json files seed the repo's perf
// trajectory: every PR that claims a speedup re-runs the suite and compares
// slots/sec, cells/sec, allocs/slot, and tail delay (p99/p999 relative
// queuing delay) against the checked-in baseline (see the "Benchmarking"
// section of README.md). With -compare, cases whose throughput (slots/sec or
// cells/sec) drops or whose tail grows beyond -gate percent are flagged;
// -gate-strict turns the flag into a non-zero exit. -count R runs every case
// R times and reports the fastest repeat (measurements are deterministic
// across repeats, so only the wall-clock figures differ — min wall is the
// least scheduler-noise estimate).
//
// Examples:
//
//	ppsbench -rev pr2-after              # full suite, BENCH_pr2-after.json
//	ppsbench -quick -rev ci -out bench   # short suite for CI artifacts
//	ppsbench -filter bursty/n128         # one case, JSON to stdout too
//	ppsbench -count 5 -workers -1        # min-of-5, stage-parallel engine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ppsim"
)

// benchCase is one cell of the fixed suite matrix.
type benchCase struct {
	Name    string `json:"name"`
	Traffic string `json:"traffic"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	RPrime  int64  `json:"rprime"`
	Slots   int64  `json:"horizon_slots"`
	Seed    int64  `json:"seed"`
}

// benchResult is the measured outcome of one case.
type benchResult struct {
	benchCase
	RunSlots      int64   `json:"run_slots"`
	Cells         uint64  `json:"cells"`
	WallSeconds   float64 `json:"wall_seconds"`
	SlotsPerSec   float64 `json:"slots_per_sec"`
	CellsPerSec   float64 `json:"cells_per_sec"`
	AllocsPerSlot float64 `json:"allocs_per_slot"`
	BytesPerSlot  float64 `json:"bytes_per_slot"`
	MaxRQD        int64   `json:"max_rqd"`
	// WorkersResolved is the stage-parallel worker count the run actually
	// used for this case's N (harness.Result.Workers; 0 = serial engine).
	// Absent (zero) in files written before the field existed, which also
	// reads correctly: those runs were serial.
	WorkersResolved int `json:"workers_resolved,omitempty"`
	// ShardPorts is the per-worker output-shard width the stage-parallel
	// engine ran with (harness.Result.ShardPorts) — the geometry behind a
	// cells/sec figure. Absent for serial runs and pre-schema files.
	ShardPorts []int `json:"shard_ports,omitempty"`
	// Drops counts cells lost to injected plane faults (DropCount policy);
	// absent in fault-free runs.
	Drops uint64 `json:"drops,omitempty"`
	// SlotsElided counts the slots the quiescence fast-forward or the
	// event-driven core jumped over; absent for stepped runs, so older files
	// read (and diff) unchanged.
	SlotsElided uint64 `json:"slots_elided,omitempty"`
	// Engine records which slot-execution core actually ran this case
	// ("stepped", "fastforward", "event"); EngineReason is non-empty when a
	// requested core degraded and says why. Both absent in files written
	// before the fields existed (those runs were stepped).
	Engine       string `json:"engine,omitempty"`
	EngineReason string `json:"engine_reason,omitempty"`
	// Percentiles is the per-component delay decomposition tail block
	// (hist-derived nearest-rank quantiles: rqd, demux_wait, plane_wait,
	// reseq_wait, total_delay, interdeparture_gap). Pointer + omitempty
	// keeps files written before the field existed readable and diffable;
	// -compare treats an absent block as "no tail data".
	Percentiles *ppsim.DelayQuantiles `json:"percentiles,omitempty"`
	// Admitted/Rejected/Expired and the goodput / on-time-fraction figures
	// record the admission-policy outcome of the run. All absent when no
	// -admission / -deadline policy was active, so policy-free files stay
	// byte-identical to the pre-schema layout; -compare renders goodput and
	// on-time columns (warn-only, never gated) when either side has them.
	Admitted       uint64  `json:"admitted,omitempty"`
	Rejected       uint64  `json:"rejected,omitempty"`
	Expired        uint64  `json:"expired,omitempty"`
	Goodput        float64 `json:"goodput,omitempty"`
	OnTimeFraction float64 `json:"on_time_fraction,omitempty"`
}

// benchFile is the stable schema of a BENCH_<rev>.json file. Fields added
// after the first release carry omitempty so older readers (and diffs
// against older files) degrade gracefully; absent machine fields mean "one
// unknown core, serial engine".
type benchFile struct {
	Rev          string `json:"rev"`
	GoVersion    string `json:"go_version"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	Quick        bool   `json:"quick"`
	PeakRSSBytes int64  `json:"peak_rss_bytes"`
	// GoMaxProcs and NumCPU record the parallelism available on the
	// benchmarking machine; Workers echoes the -workers request. Together
	// they make slots/sec figures comparable across machines.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
	Workers    int `json:"workers,omitempty"`
	// Faults and FaultPolicy echo the -faults / -fault-policy flags when a
	// fault schedule was injected; absent for fault-free baselines, so
	// older files read (and diff) unchanged.
	Faults      string `json:"faults,omitempty"`
	FaultPolicy string `json:"fault_policy,omitempty"`
	// FastForward echoes the -fastforward flag; absent (false) in stepped
	// baselines, keeping the schema backward-readable.
	FastForward bool `json:"fastforward,omitempty"`
	// Count echoes the -count flag when repeats were requested: each
	// result is the fastest of Count runs. Absent for single-run files.
	Count int `json:"count,omitempty"`
	// Engine echoes the -engine request ("auto" omitted as the default);
	// the per-case Engine field records what each run actually used.
	Engine string `json:"engine,omitempty"`
	// Admission echoes the -admission spec and DeadlineRel the -deadline
	// wrapper applied to every case; absent for policy-free baselines.
	Admission   string        `json:"admission,omitempty"`
	DeadlineRel int64         `json:"deadline_rel,omitempty"`
	Results     []benchResult `json:"results"`
}

// suite returns the fixed benchmark matrix. horizon scales every case; the
// quick suite divides it by 10 so CI can afford one iteration per case.
func suite(horizon int64) []benchCase {
	var cases []benchCase
	for _, traffic := range []string{"bursty", "uniform", "adversarial"} {
		for _, n := range []int{8, 32, 128} {
			for _, k := range []int{2, 8} {
				cases = append(cases, benchCase{
					Name:    fmt.Sprintf("%s/n%d/k%d", traffic, n, k),
					Traffic: traffic,
					N:       n,
					K:       k,
					RPrime:  2,
					Slots:   horizon,
					Seed:    1,
				})
			}
		}
	}
	// Large-N cases exercise the stage-parallel engine where its shards are
	// wide enough to pay for the per-slot barrier. Horizons shrink with N so
	// per-case wall time stays in the same band as the rest of the suite.
	for _, n := range []int{512, 1024} {
		cases = append(cases, benchCase{
			Name:    fmt.Sprintf("bursty/n%d/k8", n),
			Traffic: "bursty",
			N:       n,
			K:       8,
			RPrime:  2,
			Slots:   horizon / int64(n/128),
			Seed:    1,
		})
	}
	// Low-load cases are the quiescence fast-forward's payoff scenario: a few
	// concentrated bursty flows at per-flow load 0.05 leave most slots
	// globally silent, so -fastforward elides them while the stepped engine
	// still pays O(N) per slot. Full horizon even at large N — long idle
	// stretches are exactly the workload being priced.
	// The N=16384 and N=65536 points price the event-driven core's O(events)
	// claim: per-slot cost must stay flat in N when the working sets (two
	// flows) do not grow with it. The stepped engine still pays O(N) per
	// slot here, which is exactly the gap the committed baselines document.
	for _, n := range []int{128, 1024, 16384, 65536} {
		cases = append(cases, benchCase{
			Name:    fmt.Sprintf("bursty-low/n%d/k8", n),
			Traffic: "bursty-low",
			N:       n,
			K:       8,
			RPrime:  2,
			Slots:   horizon,
			Seed:    1,
		})
	}
	// Overload cases offer more than the per-output capacity of 1 cell/slot
	// (speedup S = 1 at K=2, r'=2): a sustained hotspot at ~3.7x capacity on
	// output 0, and concentrated on/off flows whose overlapping bursts push
	// the instantaneous offered load past capacity. These are the scenarios
	// the admission layer sheds; run policy-free they document the backlog
	// pathology in the p99/p999 rqd columns, and with -admission the same
	// cases price graceful degradation (goodput / on-time columns).
	for _, traffic := range []string{"overload-hot", "overload-burst"} {
		cases = append(cases, benchCase{
			Name:    fmt.Sprintf("%s/n32/k2", traffic),
			Traffic: traffic,
			N:       32,
			K:       2,
			RPrime:  2,
			Slots:   horizon,
			Seed:    1,
		})
	}
	// The long-horizon case (1M slots at the default -slots 20000) is the
	// headline event-core scenario: a mostly-idle switch simulated for a
	// million slots in milliseconds because cost scales with events, not
	// slots. The quick suite keeps the same 50x multiplier over its shrunken
	// horizon (100k slots).
	cases = append(cases, benchCase{
		Name:    "bursty-low-1m/n1024/k8",
		Traffic: "bursty-low",
		N:       1024,
		K:       8,
		RPrime:  2,
		Slots:   50 * horizon,
		Seed:    1,
	})
	return cases
}

// buildSource constructs the case's traffic over the existing generators:
// uniform iid Bernoulli at load 0.6, bursty on/off at the same mean load,
// and the full-rate cyclic permutation as the adversarial heaviest
// admissible workload (rate exactly R per port, zero slack).
func buildSource(c benchCase) (ppsim.Source, error) {
	load := 0.6
	switch c.Traffic {
	case "uniform":
		return ppsim.NewBernoulli(c.N, load, ppsim.Time(c.Slots), c.Seed), nil
	case "bursty":
		meanOn := 8.0
		meanOff := meanOn * (1 - load) / load
		return ppsim.NewOnOff(c.N, meanOn, meanOff, ppsim.Time(c.Slots), c.Seed)
	case "bursty-low":
		// Two concentrated on/off flows at per-flow load 0.05 (mean on 8,
		// mean off 152): the switch is globally silent ~90% of slots, which
		// is the regime the quiescence fast-forward elides. Arrivals use
		// ports [0, 2), legal in any suite fabric (N >= 8).
		return ppsim.NewOnOff(2, 8, 152, ppsim.Time(c.Slots), c.Seed)
	case "overload-hot":
		// 95% of every input's cells aim at output 0: offered load there is
		// ~0.12*0.95*N = 3.7 cells/slot against a capacity of 1 — sustained
		// inadmissible load, the admission layer's headline scenario. The low
		// per-input load keeps the post-horizon drain within the 8x budget.
		return ppsim.NewHotspot(c.N, 0.12, 0.95, 0, ppsim.Time(c.Slots), c.Seed)
	case "overload-burst":
		// Four concentrated on/off flows at per-flow load 0.8 over four
		// outputs: the average per-output load (0.8) is admissible, but
		// overlapping on-periods repeatedly push the instantaneous offered
		// load to 2-4x capacity — the transient-overload regime a token
		// bucket smooths.
		return ppsim.NewOnOff(4, 32, 8, ppsim.Time(c.Slots), c.Seed)
	case "adversarial":
		perm := make([]ppsim.Port, c.N)
		for i := range perm {
			perm[i] = ppsim.Port((i + 1) % c.N)
		}
		return ppsim.NewPermutation(perm, ppsim.Time(c.Slots))
	default:
		return nil, fmt.Errorf("unknown traffic kind %q", c.Traffic)
	}
}

// run executes one case and measures throughput and allocation rate. A
// non-nil schedule injects the same faults into every case (planes beyond a
// small case's K are skipped by construction: the caller validates against
// the smallest K in the suite). A non-empty admission spec gates every
// arrival and records the goodput / on-time outcome; deadlineRel > 0 stamps
// each arrival with a departure deadline of its arrival slot + deadlineRel.
func run(c benchCase, workers int, sched *ppsim.FaultSchedule, policy ppsim.FaultPolicy, eng ppsim.Engine, fastforward bool, adm *ppsim.AdmissionSpec, deadlineRel int64) (benchResult, error) {
	src, err := buildSource(c)
	if err != nil {
		return benchResult{}, err
	}
	if deadlineRel > 0 {
		src = ppsim.WithDeadline(src, ppsim.Time(deadlineRel))
	}
	cfg := ppsim.Config{
		N: c.N, K: c.K, RPrime: c.RPrime,
		DisableChecks: true,
		Algorithm:     ppsim.Algorithm{Name: "rr", Seed: c.Seed},
	}
	opts := ppsim.Options{Horizon: ppsim.Time(c.Slots) * 8, Workers: workers, Faults: sched, FaultPolicy: policy, Engine: eng, FastForward: fastforward}
	if !adm.Empty() {
		opts.Admission = adm
	}
	var elided uint64
	opts.OnFastForward = func(from, to ppsim.Time) { elided += uint64(to - from) }

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := ppsim.Run(cfg, src, opts)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", c.Name, err)
	}

	slots := int64(res.Slots)
	out := benchResult{
		benchCase:       c,
		RunSlots:        slots,
		Cells:           res.Report.Cells,
		WallSeconds:     wall.Seconds(),
		MaxRQD:          int64(res.Report.MaxRQD),
		WorkersResolved: res.Workers,
		ShardPorts:      res.ShardPorts,
		Drops:           res.Drops,
		SlotsElided:     elided,
		Engine:          res.Engine,
		EngineReason:    res.EngineReason,
	}
	if wall > 0 {
		out.SlotsPerSec = float64(slots) / wall.Seconds()
		out.CellsPerSec = float64(res.Report.Cells) / wall.Seconds()
	}
	if slots > 0 {
		out.AllocsPerSlot = float64(after.Mallocs-before.Mallocs) / float64(slots)
		out.BytesPerSlot = float64(after.TotalAlloc-before.TotalAlloc) / float64(slots)
	}
	if q := res.Report.Percentiles; q.RQD.N > 0 {
		out.Percentiles = &q
	}
	if !adm.Empty() {
		out.Admitted = res.Report.Admitted
		out.Rejected = res.Report.Rejected
		out.Expired = res.Report.ExpiredAdmit + res.Report.ExpiredReseq
		out.Goodput = res.Goodput
		out.OnTimeFraction = res.OnTimeFraction
	}
	return out, nil
}

// peakRSS reads VmHWM from /proc/self/status (linux); 0 elsewhere.
func peakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		var kb int64
		if _, err := fmt.Sscan(fields[1], &kb); err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

func main() {
	var (
		rev       = flag.String("rev", "dev", "revision label; output file is BENCH_<rev>.json")
		outDir    = flag.String("out", ".", "directory to write the JSON report into")
		filter    = flag.String("filter", "", "run only cases whose name contains one of these comma-separated substrings")
		quick     = flag.Bool("quick", false, "short horizons (CI smoke run)")
		slots     = flag.Int64("slots", 20000, "traffic horizon per case in slots")
		workers   = flag.Int("workers", 0, "stage-parallel fabric workers: 0 serial, -1 auto, >0 explicit")
		faultSpec = flag.String("faults", "", "fault schedule injected into every case, e.g. fail:0@1000,recover:0@3000")
		faultPol  = flag.String("fault-policy", "abort", "degradation policy: abort or dropcount")
		engineStr = flag.String("engine", "auto", "slot-execution core: auto, stepped, fastforward, event")
		fastfwd   = flag.Bool("fastforward", false, "elide quiescent intervals (bit-identical results; records slots_elided)")
		count     = flag.Int("count", 1, "repeats per case; the fastest (minimum wall time) repeat is reported")
		admSpec   = flag.String("admission", "", "admission policy applied to every case, e.g. rate:1/2,burst:16,deadline")
		deadline  = flag.Int64("deadline", 0, "stamp each arrival with a departure deadline of its arrival slot + N (0 = off)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile covering every measured run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file")
		baseline  = flag.String("compare", "", "print a markdown delta table against this BENCH_<rev>.json baseline")
		gate      = flag.Float64("gate", 10, "with -compare: flag cases whose slots/sec or cells/sec drop, or whose p99/p999 rqd grows, by more than this percent (0 disables)")
		strict    = flag.Bool("gate-strict", false, "with -compare: exit 1 when any case trips the -gate threshold (default: warn only)")
	)
	flag.Parse()
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "ppsbench: -count must be >= 1")
		os.Exit(2)
	}

	eng, err := ppsim.ParseEngine(*engineStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(2)
	}
	schedule, err := ppsim.ParseFaultSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(2)
	}
	policy, err := ppsim.ParseFaultPolicy(*faultPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(2)
	}
	// Every suite case has K >= 2; validating against the smallest K keeps
	// one schedule legal for the whole matrix.
	if err := schedule.Validate(2); err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(2)
	}
	if schedule.HasLoss() && policy != ppsim.FaultDropCount {
		fmt.Fprintln(os.Stderr, "ppsbench: -faults loss terms require -fault-policy dropcount")
		os.Exit(2)
	}
	var sched *ppsim.FaultSchedule
	if !schedule.Empty() {
		sched = schedule
	}
	adm, err := ppsim.ParseAdmissionSpec(*admSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(2)
	}
	if *deadline < 0 {
		fmt.Fprintln(os.Stderr, "ppsbench: -deadline must be >= 0")
		os.Exit(2)
	}

	horizon := *slots
	if *quick {
		horizon /= 10
		if horizon < 100 {
			horizon = 100
		}
	}

	// Profiles bracket the measured runs only (flag parsing and JSON
	// encoding are excluded), so `go tool pprof -top` attributes samples to
	// the hot path the throughput figures describe. EXPERIMENTS.md has the
	// capture-and-read recipe.
	stopProfiles := func() {}
	for _, p := range []string{*cpuProf, *memProf} {
		if p == "" {
			continue
		}
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ppsbench:", err)
			os.Exit(1)
		}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppsbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ppsbench:", err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	report := benchFile{
		Rev:         *rev,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Quick:       *quick,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Workers:     *workers,
		FastForward: *fastfwd,
	}
	if *count > 1 {
		report.Count = *count
	}
	if eng != ppsim.EngineAuto {
		report.Engine = eng.String()
	}
	if sched != nil {
		report.Faults = sched.String()
		report.FaultPolicy = policy.String()
	}
	if !adm.Empty() {
		report.Admission = adm.String()
	}
	if *deadline > 0 {
		report.DeadlineRel = *deadline
	}
	for _, c := range suite(horizon) {
		if !matchFilter(*filter, c.Name) {
			continue
		}
		// Min-of-count: measurements are deterministic across repeats, so
		// only the wall-clock figures differ — the fastest repeat is the
		// least scheduler-noise estimate of the machine's throughput.
		res, err := run(c, *workers, sched, policy, eng, *fastfwd, adm, *deadline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppsbench:", err)
			os.Exit(1)
		}
		for r := 1; r < *count; r++ {
			again, err := run(c, *workers, sched, policy, eng, *fastfwd, adm, *deadline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ppsbench:", err)
				os.Exit(1)
			}
			if again.WallSeconds < res.WallSeconds {
				res = again
			}
		}
		fmt.Printf("%-22s slots=%-8d cells=%-9d %12.0f slots/s %12.0f cells/s %10.1f allocs/slot",
			res.Name, res.RunSlots, res.Cells, res.SlotsPerSec, res.CellsPerSec, res.AllocsPerSlot)
		if res.SlotsElided > 0 {
			fmt.Printf("  %d elided", res.SlotsElided)
		}
		if res.Rejected > 0 || res.Expired > 0 {
			fmt.Printf("  rejected=%d expired=%d goodput=%.3f onTime=%.3f",
				res.Rejected, res.Expired, res.Goodput, res.OnTimeFraction)
		}
		fmt.Println()
		report.Results = append(report.Results, res)
	}
	// Profiles close as soon as the measured loop ends: the CPU profile
	// excludes JSON encoding, and the heap profile snapshots live objects
	// after a final GC (the in-use view by allocation site, not transient
	// garbage).
	stopProfiles()
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppsbench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ppsbench:", err)
			os.Exit(1)
		}
		f.Close()
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "ppsbench: no cases matched filter", *filter)
		os.Exit(2)
	}
	report.PeakRSSBytes = peakRSS()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(1)
	}
	path := filepath.Join(*outDir, fmt.Sprintf("BENCH_%s.json", *rev))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)

	if *baseline != "" {
		flagged, err := printDelta(os.Stdout, *baseline, report, *gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppsbench:", err)
			os.Exit(1)
		}
		if flagged > 0 {
			fmt.Fprintf(os.Stderr, "ppsbench: warning: %d case(s) beyond the %.0f%% gate\n", flagged, *gate)
			if *strict {
				os.Exit(1)
			}
		}
	}
}

// printDelta renders a dependency-free benchstat substitute: a markdown
// table of per-case slots/sec, cells/sec and tail (p99 and p999 rqd) deltas
// against a committed baseline file. The CI bench-compare job pipes it into
// the job summary. Cases whose slots/sec or cells/sec drop, or whose p99 or
// p999 relative queuing delay grows, by more than gatePct percent are marked
// ⚠ and counted in the return value (gatePct <= 0 disables marking); the
// caller decides whether a non-zero count is fatal — the default is a
// warning, -gate-strict exits non-zero. A baseline without cells/sec data
// (pre-schema files record 0) renders an em dash and never gates, so old
// baselines stay comparable; a zero-valued baseline tail quantile likewise
// renders with the "— →" convention rather than a division-by-zero percent.
// When either side carries admission QoS figures, goodput and on-time
// fraction columns are appended — informational only, they never gate.
// Only an unreadable baseline is an error.
func printDelta(w io.Writer, baselinePath string, cur benchFile, gatePct float64) (int, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, err
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	byName := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	fmt.Fprintf(w, "\n### ppsbench: %s vs baseline %s\n\n", cur.Rev, base.Rev)
	if base.Quick != cur.Quick || base.Workers != cur.Workers || base.FastForward != cur.FastForward || base.Engine != cur.Engine {
		fmt.Fprintf(w, "> note: configurations differ (quick %v/%v, workers %d/%d, fastforward %v/%v, engine %s/%s) — deltas are indicative only\n\n",
			base.Quick, cur.Quick, base.Workers, cur.Workers, base.FastForward, cur.FastForward,
			engineLabel(base.Engine), engineLabel(cur.Engine))
	}
	hasQoS := false
	for _, r := range base.Results {
		if r.Goodput > 0 || r.OnTimeFraction > 0 {
			hasQoS = true
		}
	}
	for _, r := range cur.Results {
		if r.Goodput > 0 || r.OnTimeFraction > 0 {
			hasQoS = true
		}
	}
	head := "| case | baseline slots/s | new slots/s | delta | cells/s (base → new) | allocs/slot (base → new) | p99 rqd (base → new) | p999 rqd (base → new) |"
	rule := "|---|---:|---:|---:|---:|---:|---:|---:|"
	if hasQoS {
		head += " goodput (base → new) | on-time (base → new) |"
		rule += "---:|---:|"
	}
	flagged := 0
	fmt.Fprintln(w, head)
	fmt.Fprintln(w, rule)
	for _, r := range cur.Results {
		b, ok := byName[r.Name]
		qos := ""
		if hasQoS {
			qos = fmt.Sprintf(" %s | %s |", qosCell(b.Goodput, r.Goodput), qosCell(b.OnTimeFraction, r.OnTimeFraction))
		}
		if !ok || b.SlotsPerSec == 0 {
			fmt.Fprintf(w, "| %s | — | %.0f | new | — → %.0f | — → %.1f | — → %s | — → %s |%s\n",
				r.Name, r.SlotsPerSec, r.CellsPerSec, r.AllocsPerSlot, tailCell(r.Percentiles, 99), tailCell(r.Percentiles, 99.9), qos)
			continue
		}
		delta := (r.SlotsPerSec/b.SlotsPerSec - 1) * 100
		trip := gatePct > 0 && delta < -gatePct
		// Cells/sec gates alongside slots/sec: a batching change can keep the
		// slot rate flat while halving the cell rate on loaded cases. A zero
		// baseline (pre-schema file, or a case that moved no cells) renders
		// an em dash and cannot gate.
		var cells string
		if b.CellsPerSec > 0 {
			cdelta := (r.CellsPerSec/b.CellsPerSec - 1) * 100
			cells = fmt.Sprintf("%.0f → %.0f (%+.1f%%)", b.CellsPerSec, r.CellsPerSec, cdelta)
			if gatePct > 0 && cdelta < -gatePct {
				trip = true
			}
		} else {
			cells = fmt.Sprintf("— → %.0f", r.CellsPerSec)
		}
		// Gate both rendered tail columns: a regression that shows only at
		// p999 (the rarest 0.1% of cells) must flag exactly like one at p99.
		if gatePct > 0 && b.Percentiles != nil && r.Percentiles != nil &&
			b.Percentiles.RQD.N > 0 && r.Percentiles.RQD.N > 0 &&
			(tailRegressed(b.Percentiles.RQD.P99, r.Percentiles.RQD.P99, gatePct) ||
				tailRegressed(b.Percentiles.RQD.P999, r.Percentiles.RQD.P999, gatePct)) {
			trip = true
		}
		mark := ""
		if trip {
			mark = " ⚠"
			flagged++
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%%%s | %s | %.1f → %.1f | %s | %s |%s\n",
			r.Name, b.SlotsPerSec, r.SlotsPerSec, delta, mark, cells, b.AllocsPerSlot, r.AllocsPerSlot,
			tailDeltaCell(b.Percentiles, r.Percentiles, 99),
			tailDeltaCell(b.Percentiles, r.Percentiles, 99.9), qos)
	}
	return flagged, nil
}

// matchFilter reports whether a case name passes the -filter flag: an empty
// filter passes everything, otherwise any of the comma-separated substrings
// may match (so CI can select disjoint cases, e.g.
// -filter bursty/n512,bursty/n1024).
func matchFilter(filter, name string) bool {
	if filter == "" {
		return true
	}
	for _, f := range strings.Split(filter, ",") {
		if f != "" && strings.Contains(name, f) {
			return true
		}
	}
	return false
}

// engineLabel renders a benchFile's Engine field for the config-mismatch
// note; the empty value (older files, auto runs) reads as "auto".
func engineLabel(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

// tailCell formats one rqd quantile for the delta table, or an em dash when
// the side carries no percentile block (pre-schema baselines, empty runs).
func tailCell(q *ppsim.DelayQuantiles, p float64) string {
	if q == nil || q.RQD.N == 0 {
		return "—"
	}
	if p >= 99.9 {
		return fmt.Sprintf("%d", q.RQD.P999)
	}
	return fmt.Sprintf("%d", q.RQD.P99)
}

// tailValue extracts one rqd quantile; callers must have checked the block
// is non-nil with samples (tailCell != "—").
func tailValue(q *ppsim.DelayQuantiles, p float64) int64 {
	if p >= 99.9 {
		return q.RQD.P999
	}
	return q.RQD.P99
}

// tailDeltaCell renders one rqd tail column (base → new) with a percent
// delta. A side without a percentile block keeps tailCell's em dash; a
// zero-valued baseline quantile follows the cells/s column's "— →"
// convention, since a percent of a zero baseline is a division-by-zero
// artifact rather than a delta; a negative baseline (PPS beating the
// shadow) renders both sides without a percent.
func tailDeltaCell(bq, cq *ppsim.DelayQuantiles, p float64) string {
	bs, cs := tailCell(bq, p), tailCell(cq, p)
	if bs == "—" || cs == "—" {
		return bs + " → " + cs
	}
	b, c := tailValue(bq, p), tailValue(cq, p)
	switch {
	case b == 0:
		return fmt.Sprintf("— → %d", c)
	case b < 0:
		return fmt.Sprintf("%d → %d", b, c)
	default:
		return fmt.Sprintf("%d → %d (%+.1f%%)", b, c, (float64(c)/float64(b)-1)*100)
	}
}

// qosCell renders one admission QoS column side pair (goodput or on-time
// fraction). A zero side means the figure was not recorded (policy-free
// run) and shows an em dash; with both sides present a percent delta rides
// along. These columns are informational — they never gate.
func qosCell(b, c float64) string {
	switch {
	case b <= 0 && c <= 0:
		return "—"
	case b <= 0:
		return fmt.Sprintf("— → %.3f", c)
	case c <= 0:
		return fmt.Sprintf("%.3f → —", b)
	default:
		return fmt.Sprintf("%.3f → %.3f (%+.1f%%)", b, c, (c/b-1)*100)
	}
}

// tailRegressed reports whether a new rqd tail quantile (p99 or p999)
// regressed past the gate: more than pct percent above a positive baseline,
// or more than one slot above a zero/negative baseline (a percent of a
// non-positive tail is meaningless, and one slot of growth there is
// quantization noise).
func tailRegressed(base, cur int64, pct float64) bool {
	if base > 0 {
		return float64(cur) > float64(base)*(1+pct/100)
	}
	return cur > base+1
}
