// Command ppssim runs one configured PPS simulation against the shadow
// reference switch and prints the relative-delay report.
//
// Examples:
//
//	ppssim -n 16 -k 8 -rprime 2 -alg rr -traffic bernoulli -load 0.7 -slots 10000
//	ppssim -n 32 -k 4 -rprime 2 -alg rr -traffic steering
//	ppssim -n 16 -k 16 -rprime 8 -alg buffered-cpa -u 4 -bufcap 5 -traffic bernoulli
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ppsim"
)

func main() {
	var (
		n          = flag.Int("n", 16, "external ports N")
		k          = flag.Int("k", 8, "center-stage planes K")
		rprime     = flag.Int64("rprime", 2, "internal line occupancy r' = R/r")
		alg        = flag.String("alg", "rr", "demultiplexing algorithm (see -algs)")
		d          = flag.Int("d", 2, "partition size (alg=partition)")
		u          = flag.Int64("u", 2, "staleness / buffer lag (alg=stale-cpa, buffered-cpa)")
		h          = flag.Float64("h", 2, "FTD block parameter (alg=ftd)")
		seed       = flag.Int64("seed", 1, "random seed (traffic and alg=random)")
		cap        = flag.Int("cap", -1, "input buffer capacity (alg=buffered-rr)")
		bufcap     = flag.Int("bufcap", 0, "fabric input-buffer bound: 0 bufferless, -1 unbounded")
		lazy       = flag.Bool("lazy", false, "use the lazy FCFS output multiplexor")
		kind       = flag.String("traffic", "bernoulli", "traffic: bernoulli, hotspot, onoff, trickle, permutation, flood, steering, concentration, herding")
		load       = flag.Float64("load", 0.6, "per-input load (bernoulli, hotspot, onoff)")
		shapeB     = flag.Int64("shape", -1, "wrap traffic in an (R,B) regulator; -1 = off")
		slots      = flag.Int64("slots", 5000, "traffic horizon in slots")
		algs       = flag.Bool("algs", false, "list algorithms and exit")
		verbose    = flag.Bool("v", false, "print utilization per output")
		pctl       = flag.Bool("percentiles", false, "print the per-component delay percentile table (rqd, demux, plane, reseq, total, inter-departure gap)")
		workers    = flag.Int("workers", 0, "stage-parallel fabric workers: 0 serial, -1 auto, >0 explicit")
		engine     = flag.String("engine", "auto", "slot-execution core: auto, stepped, fastforward, event")
		fastfwd    = flag.Bool("fastforward", false, "elide quiescent intervals (bit-identical results; ignored with -trace)")
		trace      = flag.String("trace", "", "write a JSONL event trace to FILE")
		series     = flag.String("series", "", "write per-slot probe series CSV to FILE")
		stride     = flag.Int64("stride", 1, "sample every stride-th slot (with -series)")
		failPlanes = flag.String("fail-planes", "", "comma-separated plane IDs failed before slot 0")
		faultSpec  = flag.String("faults", "", "fault schedule, e.g. fail:0@100,recover:0@500,loss:2@0.001,seed:7")
		faultPol   = flag.String("fault-policy", "abort", "degradation policy: abort or dropcount")
		faultaware = flag.Bool("faultaware", false, "wrap the algorithm with failure-aware dispatch (masks failed planes)")
		admSpec    = flag.String("admission", "", "admission policy, e.g. rate:1/2,burst:16,agg-rate:8,agg-burst:64,deadline")
		deadline   = flag.Int64("deadline", 0, "stamp each arrival with a departure deadline of its arrival slot + N (0 = off)")
	)
	flag.Parse()

	if err := validateStride(*stride); err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	failed, err := parseFailPlanes(*failPlanes, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	eng, err := ppsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	policy, err := ppsim.ParseFaultPolicy(*faultPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	schedule, err := ppsim.ParseFaultSpec(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := schedule.Validate(*k); err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	adm, err := ppsim.ParseAdmissionSpec(*admSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *deadline < 0 {
		fmt.Fprintln(os.Stderr, "ppssim: -deadline must be >= 0")
		flag.Usage()
		os.Exit(2)
	}
	if schedule.HasLoss() && policy != ppsim.FaultDropCount {
		fmt.Fprintln(os.Stderr, "ppssim: -faults loss terms require -fault-policy dropcount")
		flag.Usage()
		os.Exit(2)
	}

	if *algs {
		for _, name := range ppsim.AlgorithmNames() {
			fmt.Println(name)
		}
		return
	}

	cfg := ppsim.Config{
		N: *n, K: *k, RPrime: *rprime,
		BufferCap: *bufcap,
		LazyMux:   *lazy,
		Algorithm: ppsim.Algorithm{Name: *alg, D: *d, U: ppsim.Time(*u), H: *h, Seed: *seed, Capacity: *cap, FaultAware: *faultaware},
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		os.Exit(2)
	}

	src, err := buildTraffic(cfg, *kind, *load, *seed, ppsim.Time(*slots))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		os.Exit(2)
	}
	if *shapeB >= 0 {
		src = ppsim.Shape(*n, *shapeB, src)
	}
	// Deadlines wrap outermost so they stamp the post-shaping arrival slot.
	if *deadline > 0 {
		src = ppsim.WithDeadline(src, ppsim.Time(*deadline))
	}

	opts := ppsim.Options{
		Horizon:     ppsim.Time(*slots) * 8,
		Validate:    true,
		Workers:     *workers,
		FailPlanes:  failed,
		FaultPolicy: policy,
		Engine:      eng,
		FastForward: *fastfwd,
	}
	if !adm.Empty() {
		opts.Admission = adm
	}
	if !schedule.Empty() {
		opts.Faults = schedule
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppssim:", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.Tracer = ppsim.NewJSONLTracer(f)
	}
	if *series != "" {
		opts.Probes = ppsim.StandardProbes(*n, *k, ppsim.Time(*stride), 0)
	}

	res, err := ppsim.Run(cfg, src, opts)
	// Flush the buffered JSONL trace as soon as the run is over — before any
	// exit path — so the tail survives even a failed run (a violation trace
	// is most valuable exactly then). Close is nil-safe without -trace.
	if cerr := opts.Tracer.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "ppssim: trace:", cerr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppssim:", err)
		os.Exit(1)
	}
	// A forced engine or -fastforward request can silently degrade (tracer
	// attached, no lookahead, no idle invariant, parallel workers). Surface
	// the recorded reason so users asking for elision learn they ran stepped.
	if res.EngineReason != "" && (eng != ppsim.EngineAuto || *fastfwd) {
		fmt.Fprintf(os.Stderr, "ppssim: engine degraded to %s: %s\n", res.Engine, res.EngineReason)
	}

	fmt.Printf("switch: N=%d K=%d r'=%d S=%.2f traffic=%s\n",
		*n, *k, *rprime, cfg.Speedup(), *kind)
	fmt.Println(res)
	if *pctl {
		fmt.Println("delay percentiles (slots):")
		fmt.Print(res.Report.PercentileTable())
	}
	if *verbose {
		for j, u := range res.Utilization {
			if u > 0 {
				fmt.Printf("output %2d utilization: %.4f\n", j, u)
			}
		}
	}

	if *series != "" {
		f, err := os.Create(*series)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppssim:", err)
			os.Exit(1)
		}
		if err := ppsim.WriteSeriesCSV(f, res.Series); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppssim:", err)
			os.Exit(1)
		}
	}
}

func buildTraffic(cfg ppsim.Config, kind string, load float64, seed int64, slots ppsim.Time) (ppsim.Source, error) {
	n := cfg.N
	switch kind {
	case "bernoulli":
		return ppsim.NewBernoulli(n, load, slots, seed), nil
	case "hotspot":
		return ppsim.NewHotspot(n, load, 0.5, 0, slots, seed)
	case "onoff":
		meanOn := 8.0
		meanOff := meanOn * (1 - load) / load
		if meanOff < 1 {
			meanOff = 1
		}
		return ppsim.NewOnOff(n, meanOn, meanOff, slots, seed)
	case "trickle":
		// Two concentrated on/off flows at per-flow load -load; the other
		// N-2 inputs stay silent. Unlike onoff (where every input carries a
		// flow, so some input is almost always on at large N), the fabric is
		// globally quiescent most slots — the long-horizon workload that
		// -fastforward elides.
		meanOn := 8.0
		meanOff := meanOn * (1 - load) / load
		if meanOff < 1 {
			meanOff = 1
		}
		return ppsim.NewOnOff(2, meanOn, meanOff, slots, seed)
	case "permutation":
		perm := make([]ppsim.Port, n)
		for i := range perm {
			perm[i] = ppsim.Port((i + 1) % n)
		}
		return ppsim.NewPermutation(perm, slots)
	case "flood":
		return ppsim.NewFlood(n, 0, slots/4), nil
	case "steering":
		return ppsim.SteeringTrace(cfg, ppsim.AllInputs(n), 0, 1, 16, seed)
	case "concentration":
		return ppsim.ConcentrationTrace(n, n, 0)
	case "herding":
		return ppsim.HerdingTrace(n, 0, 4, n/4, 4)
	default:
		return nil, fmt.Errorf("unknown traffic kind %q", kind)
	}
}

// validateStride rejects a non-positive sampling stride at parse time.
// obs.NewSeries silently coerces stride < 1 to 1, so a typo like -stride 0
// would run a full every-slot capture instead of failing loudly.
func validateStride(stride int64) error {
	if stride < 1 {
		return fmt.Errorf("-stride must be >= 1, got %d", stride)
	}
	return nil
}

// parseFailPlanes parses the -fail-planes list and validates every ID
// against K, reporting all bad entries in one error.
func parseFailPlanes(spec string, k int) ([]ppsim.PlaneID, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var planes []ppsim.PlaneID
	var bad []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		id, err := strconv.Atoi(part)
		if err != nil || id < 0 || id >= k {
			bad = append(bad, part)
			continue
		}
		planes = append(planes, ppsim.PlaneID(id))
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("-fail-planes: invalid plane(s) %s (planes are 0..%d)", strings.Join(bad, ", "), k-1)
	}
	return planes, nil
}
