package main

import (
	"testing"

	"ppsim"
)

func TestBuildTrafficKinds(t *testing.T) {
	cfg := ppsim.Config{N: 8, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	for _, kind := range []string{"bernoulli", "hotspot", "onoff", "permutation", "flood", "steering", "concentration", "herding"} {
		src, err := buildTraffic(cfg, kind, 0.5, 1, 500)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if src == nil {
			t.Errorf("%s: nil source", kind)
		}
	}
	if _, err := buildTraffic(cfg, "bogus", 0.5, 1, 100); err == nil {
		t.Error("unknown kind must error")
	}
}

func TestBuildTrafficRunsEndToEnd(t *testing.T) {
	cfg := ppsim.Config{N: 8, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	src, err := buildTraffic(cfg, "steering", 0.5, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: 4000, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MaxRQD < 7 {
		t.Errorf("steering traffic through the CLI path should concentrate: RQD %d", res.Report.MaxRQD)
	}
}

// TestValidateStride pins the parse-time rejection of coercible strides:
// the series layer silently treats stride < 1 as 1, so the CLI must refuse
// them before a run starts.
func TestValidateStride(t *testing.T) {
	for _, bad := range []int64{0, -1, -64} {
		if err := validateStride(bad); err == nil {
			t.Errorf("stride %d must be rejected", bad)
		}
	}
	for _, good := range []int64{1, 7, 1 << 20} {
		if err := validateStride(good); err != nil {
			t.Errorf("stride %d rejected: %v", good, err)
		}
	}
}
