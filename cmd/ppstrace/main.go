// Command ppstrace generates, inspects and validates cell-arrival traces.
//
// Traces are stored as JSON: a list of {t, in, out} arrival records. The
// adversarial constructions can be materialized to files here and replayed
// with ppssim-style tooling or external analysis.
//
// Examples:
//
//	ppstrace -gen steering -n 32 -k 4 -rprime 2 -o /tmp/steer.json
//	ppstrace -stats /tmp/steer.json -n 32
//	ppstrace -run /tmp/steer.json -n 32 -k 4 -rprime 2 -alg rr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ppsim"
)

func main() {
	var (
		gen    = flag.String("gen", "", "generate: steering, concentration, herding, bernoulli")
		n      = flag.Int("n", 16, "ports")
		k      = flag.Int("k", 4, "planes (steering)")
		rprime = flag.Int64("rprime", 2, "r' (steering)")
		alg    = flag.String("alg", "rr", "algorithm under attack (steering)")
		seed   = flag.Int64("seed", 1, "seed")
		slots  = flag.Int64("slots", 1000, "horizon (bernoulli)")
		load   = flag.Float64("load", 0.6, "load (bernoulli)")
		out    = flag.String("o", "", "output file (default stdout)")
		stats  = flag.String("stats", "", "read a trace file and print statistics")
		replay = flag.String("run", "", "replay a trace file through a switch and print the report")
	)
	flag.Parse()

	switch {
	case *replay != "":
		if err := runTrace(*replay, *n, *k, *rprime, *alg); err != nil {
			fmt.Fprintln(os.Stderr, "ppstrace:", err)
			os.Exit(1)
		}
	case *stats != "":
		if err := printStats(*stats, *n); err != nil {
			fmt.Fprintln(os.Stderr, "ppstrace:", err)
			os.Exit(1)
		}
	case *gen != "":
		tr, err := generate(*gen, *n, *k, *rprime, *alg, *seed, ppsim.Time(*slots), *load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppstrace:", err)
			os.Exit(1)
		}
		if err := writeTrace(tr, *out); err != nil {
			fmt.Fprintln(os.Stderr, "ppstrace:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(kind string, n, k int, rprime int64, alg string, seed int64, slots ppsim.Time, load float64) (*ppsim.Trace, error) {
	switch kind {
	case "steering":
		cfg := ppsim.Config{N: n, K: k, RPrime: rprime, Algorithm: ppsim.Algorithm{Name: alg, D: 2, U: 2, H: 2}}
		return ppsim.SteeringTrace(cfg, ppsim.AllInputs(n), 0, 1, 16, seed)
	case "concentration":
		return ppsim.ConcentrationTrace(n, n, 0)
	case "herding":
		return ppsim.HerdingTrace(n, 0, 4, n/4, 4)
	case "bernoulli":
		src := ppsim.NewBernoulli(n, load, slots, seed)
		tr := ppsim.NewTrace()
		var buf []ppsim.Arrival
		for t := ppsim.Time(0); t < slots; t++ {
			buf = src.Arrivals(t, buf[:0])
			for _, a := range buf {
				if err := tr.Add(t, a.In, a.Out); err != nil {
					return nil, err
				}
			}
		}
		return tr, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

func writeTrace(tr *ppsim.Trace, path string) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Trace implements json.Marshaler with a canonical record encoding.
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

func printStats(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr := ppsim.NewTrace()
	if err := json.NewDecoder(f).Decode(tr); err != nil {
		return err
	}
	b, err := ppsim.MeasureBurstiness(n, tr)
	if err != nil {
		return err
	}
	fmt.Printf("cells: %d\n", tr.Count())
	fmt.Printf("span:  %d slots\n", tr.End())
	fmt.Printf("leaky-bucket burstiness B: %d\n", b)
	for _, tau := range []ppsim.Time{1, 10, 100} {
		if tau >= tr.End() {
			break
		}
		x, err := ppsim.WindowBurstiness(n, tr, tau)
		if err != nil {
			return err
		}
		fmt.Printf("window excess (tau=%d): %d\n", tau, x)
	}
	return nil
}

// runTrace replays a stored trace through a configured switch.
func runTrace(path string, n, k int, rprime int64, alg string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr := ppsim.NewTrace()
	if err := json.NewDecoder(f).Decode(tr); err != nil {
		return err
	}
	cfg := ppsim.Config{
		N: n, K: k, RPrime: rprime,
		Algorithm: ppsim.Algorithm{Name: alg, D: 2, U: 2, H: 2},
	}
	res, err := ppsim.Run(cfg, tr, ppsim.Options{Validate: true})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d cells through N=%d K=%d r'=%d %s\n",
		res.Report.Cells, n, k, rprime, res.AlgorithmName)
	fmt.Println(res.Report)
	return nil
}
