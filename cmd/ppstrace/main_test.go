package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ppsim"
)

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind      string
		wantCells bool
	}{
		{"steering", true},
		{"concentration", true},
		{"herding", true},
		{"bernoulli", true},
	}
	for _, tc := range cases {
		tr, err := generate(tc.kind, 8, 4, 2, "rr", 1, 200, 0.5)
		if err != nil {
			t.Errorf("%s: %v", tc.kind, err)
			continue
		}
		if tc.wantCells && tr.Count() == 0 {
			t.Errorf("%s produced an empty trace", tc.kind)
		}
	}
	if _, err := generate("bogus", 8, 4, 2, "rr", 1, 10, 0.5); err == nil {
		t.Error("unknown generator must error")
	}
}

func TestWriteAndStatsRoundTrip(t *testing.T) {
	tr, err := generate("concentration", 8, 0, 0, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	// The file decodes back to an identical trace.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back := ppsim.NewTrace()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != tr.Count() || back.End() != tr.End() {
		t.Errorf("round trip: %d/%d cells, %d/%d span", back.Count(), tr.Count(), back.End(), tr.End())
	}
	// printStats runs cleanly on the file.
	if err := printStats(path, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceReplay(t *testing.T) {
	tr, err := generate("concentration", 8, 0, 0, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "replay.json")
	if err := writeTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	if err := runTrace(path, 8, 4, 2, "rr"); err != nil {
		t.Fatal(err)
	}
	if err := runTrace(path, 8, 4, 2, "no-such-alg"); err == nil {
		t.Error("unknown algorithm must error")
	}
	if err := runTrace("/nonexistent.json", 8, 4, 2, "rr"); err == nil {
		t.Error("missing file must error")
	}
}

func TestPrintStatsMissingFile(t *testing.T) {
	if err := printStats("/nonexistent/file.json", 4); err == nil {
		t.Error("missing file must error")
	}
}
