// Command ppsbounds prints every bound the paper proves, evaluated for a
// concrete switch geometry — the quick way to answer "what does the theory
// promise/deny for MY switch?".
//
//	ppsbounds -n 512 -k 16 -rprime 4 -u 8 -d 4
package main

import (
	"flag"
	"fmt"
	"os"

	"ppsim/internal/bounds"
)

func main() {
	n := flag.Int("n", 512, "external ports N")
	k := flag.Int("k", 16, "center-stage planes K")
	rprime := flag.Int64("rprime", 4, "internal line occupancy r' = R/r")
	u := flag.Int64("u", 8, "u-RT staleness / input-buffer size")
	d := flag.Int("d", 0, "partition size for the Theorem 6 line (0 = use r')")
	flag.Parse()

	p := bounds.Params{N: *n, K: *k, RPrime: *rprime}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "ppsbounds:", err)
		os.Exit(2)
	}
	dd := *d
	if dd <= 0 {
		dd = int(*rprime)
	}

	fmt.Printf("geometry: N=%d ports, K=%d planes, r'=%d  =>  speedup S = %.2f\n\n", *n, *k, *rprime, p.Speedup())
	fmt.Printf("%-58s %12s\n", "bound (relative queuing delay and delay jitter, slots)", "value")
	row := func(label string, v float64) { fmt.Printf("%-58s %12.1f\n", label, v) }
	row(fmt.Sprintf("Thm 6   d-partitioned fully-distributed (d=%d), >=", dd), bounds.Theorem6(p, dd))
	row("Cor 7   unpartitioned fully-distributed, >=", bounds.Corollary7(p))
	row("Thm 8   any fully-distributed, >=", bounds.Theorem8(p))
	row(fmt.Sprintf("Thm 10  u-RT (u=%d, u'=%d), >=", *u, bounds.UEffective(p, *u)), bounds.Theorem10(p, *u))
	row(fmt.Sprintf("        ... with traffic burstiness B ="), bounds.Theorem10Burstiness(p, *u))
	row(fmt.Sprintf("Thm 12  buffered u-RT CPA (buffer >= %d, S >= 2), <=", *u), float64(bounds.Theorem12(*u)))
	row("Thm 13  input-buffered fully-distributed (any buffer), >=", bounds.Theorem13(p))
	row("[15]    distributed CPA upper bound, <=", float64(bounds.IyerMcKeownUpper(p)))
	fmt.Println()
	if p.Speedup() >= bounds.CPAZeroDelaySpeedup() {
		fmt.Printf("S = %.2f >= 2: the centralized CPA would achieve ZERO relative delay [14]\n", p.Speedup())
	} else {
		fmt.Printf("S = %.2f < 2: even the centralized CPA has no zero-delay guarantee [14]\n", p.Speedup())
	}
	fmt.Printf("a CIOQ crossbar of this size needs speedup %.3f to mimic output queuing [7]\n", bounds.CIOQMimicSpeedup(*n))
	fmt.Println()
	fmt.Println("the Cor 7 / Thm 8 rows are why the paper concludes the PPS does not scale")
	fmt.Printf("with the port count: at N=%d the inherent worst case is already %.0f slots.\n", *n, bounds.Theorem8(p))
}
