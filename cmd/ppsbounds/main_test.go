package main

import (
	"testing"

	"ppsim/internal/bounds"
)

// The command is a thin formatter over internal/bounds; pin the one piece
// of logic it adds (the d default and validation path) via the library.
func TestGeometryConsistency(t *testing.T) {
	p := bounds.Params{N: 512, K: 16, RPrime: 4}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if bounds.Corollary7(p) != 1536 {
		t.Errorf("Cor7 = %f", bounds.Corollary7(p))
	}
	if bounds.Theorem8(p) != 384 {
		t.Errorf("Thm8 = %f", bounds.Theorem8(p))
	}
	if bounds.Theorem10(p, 8) != 128 {
		t.Errorf("Thm10 = %f", bounds.Theorem10(p, 8))
	}
}
