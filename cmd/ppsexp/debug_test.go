package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"ppsim"
)

func getBody(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	reg := ppsim.NewMetricsRegistry()
	reg.Counter("experiments_run").Add(3)
	reg.Counter("experiment_failures").Inc()
	addr, err := startDebugServer("127.0.0.1:0", reg, ppsim.NewTelemetry())
	if err != nil {
		t.Fatal(err)
	}
	code, body := getBody(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"experiments_run 3", "experiment_failures 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, _ := getBody(t, addr, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// TestTelemetryEndpointLiveSnapshot freezes a run mid-flight (the departure
// callback blocks the driving goroutine) and asserts /telemetry serves a
// live snapshot while the run is in progress, then the finished state after.
func TestTelemetryEndpointLiveSnapshot(t *testing.T) {
	tel := ppsim.NewTelemetry()
	addr, err := startDebugServer("127.0.0.1:0", ppsim.NewMetricsRegistry(), tel)
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		cfg := ppsim.Config{N: 4, K: 2, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
		first := true
		_, err := ppsim.Run(cfg, ppsim.NewBernoulli(4, 0.5, 200, 1), ppsim.Options{
			Telemetry: tel,
			OnPPSDepart: func(ppsim.Cell) {
				if first {
					first = false
					close(started)
					<-release
				}
			},
		})
		done <- err
	}()

	<-started
	code, body := getBody(t, addr, "/telemetry")
	if code != http.StatusOK {
		t.Fatalf("/telemetry status %d", code)
	}
	var snap ppsim.TelemetrySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/telemetry not valid JSON: %v\n%s", err, body)
	}
	if snap.RunsStarted != 1 || snap.Active != 1 {
		t.Fatalf("mid-run snapshot should show one active run: %+v", snap)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	_, body = getBody(t, addr, "/telemetry")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/telemetry not valid JSON after run: %v\n%s", err, body)
	}
	if snap.RunsFinished != 1 || snap.Active != 0 {
		t.Fatalf("post-run snapshot should show the run finished: %+v", snap)
	}
	if snap.Delay.RQD.N == 0 || snap.Delay.Total.N == 0 {
		t.Fatalf("post-run snapshot missing delay histograms: %s", body)
	}
	if !strings.Contains(body, `"interdeparture_gap"`) {
		t.Fatalf("telemetry JSON missing schema field: %s", body)
	}
}
