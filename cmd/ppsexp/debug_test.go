package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"ppsim"
)

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	reg := ppsim.NewMetricsRegistry()
	reg.Counter("experiments_run").Add(3)
	reg.Counter("experiment_failures").Inc()
	addr, err := startDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"experiments_run 3", "experiment_failures 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}
