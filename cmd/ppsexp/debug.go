package main

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"

	"ppsim"
)

// startDebugServer serves net/http/pprof plus a plain-text /metrics endpoint
// backed by the suite's registry on addr (e.g. "localhost:6060"). It returns
// the bound address so callers (and tests) can use ":0".
func startDebugServer(addr string, reg *ppsim.MetricsRegistry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "ppsexp: debug server:", err)
		}
	}()
	return ln.Addr().String(), nil
}
