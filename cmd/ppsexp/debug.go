package main

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"

	"ppsim"
)

// startDebugServer serves net/http/pprof plus a plain-text /metrics endpoint
// backed by the suite's registry and a /telemetry JSON endpoint backed by
// the live telemetry aggregator on addr (e.g. "localhost:6060"). It returns
// the bound address so callers (and tests) can use ":0". tel may be nil,
// in which case /telemetry serves the zero snapshot.
func startDebugServer(addr string, reg *ppsim.MetricsRegistry, tel *ppsim.Telemetry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	// A dedicated mux (delegating /debug/pprof/* to the default mux, where
	// the pprof import registered itself) keeps repeated server starts —
	// tests bind several on port 0 — from panicking on duplicate patterns.
	mux := http.NewServeMux()
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := tel.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "ppsexp: debug server:", err)
		}
	}()
	return ln.Addr().String(), nil
}
