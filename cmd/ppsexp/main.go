// Command ppsexp regenerates the experiment tables of EXPERIMENTS.md: one
// table per theorem/figure of the paper (see DESIGN.md §4 for the index).
//
// Usage:
//
//	ppsexp [-quick] [-markdown] [-run E4,E5]
//
// Without -run it executes the full suite in ID order. With -debug-addr it
// also serves net/http/pprof, a /metrics endpoint (suite telemetry:
// experiments run, failures, table rows, wall-time histogram) and a
// /telemetry JSON endpoint (live run state: per-slot gauges plus streaming
// delay-percentile histograms) while the suite executes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ppsim"
	"ppsim/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown instead of aligned text")
	csv := flag.Bool("csv", false, "emit CSV rows (experiment ID as the first column)")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	admSpec := flag.String("admission", "", "override the admission experiment's (E28) token-bucket policy, e.g. rate:1/4,burst:4")
	deadline := flag.Int64("deadline", 0, "stamp the admission experiment's (E28) traffic with deadlines of arrival slot + N (0 = off)")
	flag.Parse()

	adm, err := ppsim.ParseAdmissionSpec(*admSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsexp:", err)
		os.Exit(2)
	}
	if *deadline < 0 {
		fmt.Fprintln(os.Stderr, "ppsexp: -deadline must be >= 0")
		os.Exit(2)
	}

	reg := ppsim.NewMetricsRegistry()
	if *debugAddr != "" {
		// Live telemetry is installed process-wide (the experiment layer does
		// not thread harness options), so every run the suite starts reports
		// its per-slot gauges and delay histograms to /telemetry.
		tel := ppsim.NewTelemetry()
		ppsim.SetGlobalTelemetry(tel)
		addr, err := startDebugServer(*debugAddr, reg, tel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ppsexp:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "ppsexp: pprof, /metrics and /telemetry on http://%s\n", addr)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Entry
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "ppsexp: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Opts{Quick: *quick, DeadlineRel: ppsim.Time(*deadline)}
	if !adm.Empty() {
		opts.Admission = adm
	}
	failures := 0
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(opts)
		reg.Counter("experiments_run").Inc()
		reg.Histogram("experiment_ms", 250, 64).Add(time.Since(start).Milliseconds())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppsexp: %s failed: %v\n", e.ID, err)
			reg.Counter("experiment_failures").Inc()
			failures++
			continue
		}
		reg.Counter("table_rows").Add(int64(len(tab.Rows)))
		switch {
		case *csv:
			fmt.Print(tab.CSV())
		case *markdown:
			fmt.Print(tab.Markdown())
		default:
			fmt.Print(tab.Text())
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
