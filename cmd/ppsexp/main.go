// Command ppsexp regenerates the experiment tables of EXPERIMENTS.md: one
// table per theorem/figure of the paper (see DESIGN.md §4 for the index).
//
// Usage:
//
//	ppsexp [-quick] [-markdown] [-run E4,E5]
//
// Without -run it executes the full suite in ID order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ppsim/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown instead of aligned text")
	csv := flag.Bool("csv", false, "emit CSV rows (experiment ID as the first column)")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Entry
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "ppsexp: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Opts{Quick: *quick}
	failures := 0
	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppsexp: %s failed: %v\n", e.ID, err)
			failures++
			continue
		}
		switch {
		case *csv:
			fmt.Print(tab.CSV())
		case *markdown:
			fmt.Print(tab.Markdown())
		default:
			fmt.Print(tab.Text())
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
