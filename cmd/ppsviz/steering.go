package main

import (
	"ppsim/internal/adversary"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/traffic"
)

// buildSteering wraps the Theorem 6 adversary for the timeline tool.
func buildSteering(cfg fabric.Config, factory func(demux.Env) (demux.Algorithm, error), inputs []cell.Port, seed int64) (traffic.Source, error) {
	return adversary.Steering(adversary.SteeringSpec{
		Fabric:        cfg,
		Factory:       factory,
		Inputs:        inputs,
		Out:           0,
		Plane:         cell.Plane(1 % cfg.K),
		ScrambleSlots: 16,
		ScrambleSeed:  seed,
	})
}
