package main

import "testing"

func TestRunAllTrafficKinds(t *testing.T) {
	for _, kind := range []string{"steering", "concentration", "bernoulli", "flood"} {
		if err := run(16, 4, 2, "rr", 4, kind, 0.5, 200, 40, 1); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"rr", "perflow-rr", "cpa", "stale-cpa", "random", "least-loaded"} {
		if err := run(8, 4, 2, alg, 2, "concentration", 0.5, 0, 40, 1); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(8, 4, 2, "bogus", 2, "concentration", 0.5, 0, 40, 1); err == nil {
		t.Error("unknown algorithm must error")
	}
	if err := run(8, 4, 2, "rr", 2, "bogus", 0.5, 0, 40, 1); err == nil {
		t.Error("unknown traffic must error")
	}
}

func TestPickAlgCoversRegistry(t *testing.T) {
	if _, err := pickAlg("stale-cpa", 3, 1); err != nil {
		t.Error(err)
	}
	if _, err := pickAlg("nope", 0, 0); err == nil {
		t.Error("unknown algorithm must error")
	}
}
