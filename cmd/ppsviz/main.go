// Command ppsviz renders a textual timeline of the center stage: one row
// per plane, one column per sampled slot, glyph height = that plane's total
// backlog. Concentration — the mechanism behind every lower bound in the
// paper — is immediately visible as a single hot row.
//
//	ppsviz -n 32 -k 4 -alg rr -traffic steering
//	ppsviz -n 16 -k 8 -alg cpa -traffic bernoulli -load 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/traffic"
)

var glyphs = []rune(" .:-=+*#%@")

func main() {
	var (
		n      = flag.Int("n", 32, "external ports N")
		k      = flag.Int("k", 4, "center-stage planes K")
		rprime = flag.Int64("rprime", 2, "internal line occupancy r'")
		alg    = flag.String("alg", "rr", "algorithm: rr, perflow-rr, cpa, stale-cpa, random, least-loaded")
		u      = flag.Int64("u", 4, "staleness for stale-cpa")
		kind   = flag.String("traffic", "steering", "traffic: steering, concentration, bernoulli, flood")
		load   = flag.Float64("load", 0.6, "load (bernoulli)")
		slots  = flag.Int64("slots", 0, "horizon; 0 = auto")
		width  = flag.Int("width", 100, "timeline columns")
		seed   = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	if err := run(*n, *k, *rprime, *alg, *u, *kind, *load, *slots, *width, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ppsviz:", err)
		os.Exit(1)
	}
}

func run(n, k int, rprime int64, alg string, u int64, kind string, load float64, slots int64, width int, seed int64) error {
	cfg := fabric.Config{N: n, K: k, RPrime: rprime, CheckInvariants: true}
	factory, err := pickAlg(alg, u, seed)
	if err != nil {
		return err
	}
	src, err := pickTraffic(cfg, factory, kind, load, cell.Time(slots), seed)
	if err != nil {
		return err
	}

	pps, err := fabric.New(cfg, factory)
	if err != nil {
		return err
	}
	end := src.End()
	if end == cell.None {
		return fmt.Errorf("traffic %q is unbounded; give -slots", kind)
	}
	// Run once to learn the drain time, sampling every slot.
	type sample []int // backlog per plane
	var samples []sample
	st := cell.NewStamper()
	var buf []traffic.Arrival
	var deps []cell.Cell
	for slot := cell.Time(0); ; slot++ {
		if slot >= end && pps.Drained() {
			break
		}
		if slot > end*16+1<<16 {
			return fmt.Errorf("switch did not drain")
		}
		var cells []cell.Cell
		if slot < end {
			buf = src.Arrivals(slot, buf[:0])
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
		}
		deps, err = pps.Step(slot, cells, deps[:0])
		if err != nil {
			return err
		}
		s := make(sample, k)
		for p := 0; p < k; p++ {
			s[p] = pps.Plane(cell.Plane(p)).Backlog()
		}
		samples = append(samples, s)
	}

	// Downsample to the terminal width; each column shows the max backlog
	// in its slot bucket.
	total := len(samples)
	if width > total {
		width = total
	}
	cols := make([][]int, width)
	maxAll := 1
	for c := 0; c < width; c++ {
		lo, hi := c*total/width, (c+1)*total/width
		if hi == lo {
			hi = lo + 1
		}
		col := make([]int, k)
		for _, s := range samples[lo:hi] {
			for p, v := range s {
				if v > col[p] {
					col[p] = v
				}
			}
		}
		for _, v := range col {
			if v > maxAll {
				maxAll = v
			}
		}
		cols[c] = col
	}

	fmt.Printf("plane backlog over %d slots (columns = %d-slot buckets, peak %d cells)\n",
		total, (total+width-1)/width, maxAll)
	for p := 0; p < k; p++ {
		var b strings.Builder
		for c := 0; c < width; c++ {
			g := cols[c][p] * (len(glyphs) - 1) / maxAll
			b.WriteRune(glyphs[g])
		}
		fmt.Printf("plane %2d |%s|\n", p, b.String())
	}
	fmt.Printf("scale: '%c' empty ... '%c' = %d cells\n", glyphs[0], glyphs[len(glyphs)-1], maxAll)
	return nil
}

func pickAlg(alg string, u, seed int64) (func(demux.Env) (demux.Algorithm, error), error) {
	switch alg {
	case "rr":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerInput) }, nil
	case "perflow-rr":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }, nil
	case "cpa":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }, nil
	case "stale-cpa":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPA(e, cell.Time(u)) }, nil
	case "random":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewRandom(e, seed) }, nil
	case "least-loaded":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewLocalLeastLoaded(e) }, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}

func pickTraffic(cfg fabric.Config, factory func(demux.Env) (demux.Algorithm, error), kind string, load float64, slots cell.Time, seed int64) (traffic.Source, error) {
	n := cfg.N
	if slots <= 0 {
		slots = 400
	}
	switch kind {
	case "steering":
		inputs := make([]cell.Port, n)
		for i := range inputs {
			inputs[i] = cell.Port(i)
		}
		return steeringOrErr(cfg, factory, inputs, seed)
	case "concentration":
		tr := traffic.NewTrace()
		for i := 0; i < n; i++ {
			tr.MustAdd(cell.Time(i), cell.Port(i), 0)
		}
		return tr, nil
	case "bernoulli":
		return traffic.NewBernoulli(n, load, slots, seed), nil
	case "flood":
		return &traffic.Flood{N: n, Out: 0, Until: slots / 4}, nil
	default:
		return nil, fmt.Errorf("unknown traffic %q", kind)
	}
}

func steeringOrErr(cfg fabric.Config, factory func(demux.Env) (demux.Algorithm, error), inputs []cell.Port, seed int64) (traffic.Source, error) {
	// Local import cycle avoidance: adversary lives beside us.
	return buildSteering(cfg, factory, inputs, seed)
}
