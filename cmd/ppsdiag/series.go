package main

import (
	"fmt"
	"io"

	"ppsim"
)

// seriesConfig parameterizes one per-slot series capture.
type seriesConfig struct {
	N      int
	K      int
	RPrime int64
	Alg    string
	Kind   string // traffic: bernoulli, flood, permutation, steering
	Load   float64
	Seed   int64
	Slots  ppsim.Time
	Stride ppsim.Time
	Cap    int    // points retained per series; 0 = default ring capacity
	Format string // csv or json
	// Percentiles, when non-nil, receives the per-component delay
	// percentile table after the run (rqd, demux, plane, reseq, total,
	// inter-departure gap) — kept separate from w so piped CSV/JSON stays
	// machine-readable.
	Percentiles io.Writer
}

// runSeries executes one instrumented run and streams every standard probe
// series to w (long-format CSV or JSON). This is the diagnostic companion to
// the static Figure-1 rendering: instead of the architecture it shows the
// per-slot trajectory — plane backlogs, buffer depths, front RQD — of an
// actual execution through that architecture.
func runSeries(w io.Writer, sc seriesConfig) error {
	switch sc.Format {
	case "", "csv", "json":
	default:
		return fmt.Errorf("unknown series format %q (want csv or json)", sc.Format)
	}
	cfg := ppsim.Config{
		N: sc.N, K: sc.K, RPrime: sc.RPrime,
		Algorithm: ppsim.Algorithm{Name: sc.Alg, Seed: sc.Seed},
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	src, err := seriesTraffic(cfg, sc)
	if err != nil {
		return err
	}
	var opts ppsim.Options
	if w != nil {
		opts.Probes = ppsim.StandardProbes(sc.N, sc.K, sc.Stride, sc.Cap)
	}
	res, err := ppsim.Run(cfg, src, opts)
	if err != nil {
		return err
	}
	if w != nil {
		switch sc.Format {
		case "", "csv":
			err = ppsim.WriteSeriesCSV(w, res.Series)
		case "json":
			err = ppsim.WriteSeriesJSON(w, res.Series)
		default:
			err = fmt.Errorf("unknown series format %q (want csv or json)", sc.Format)
		}
		if err != nil {
			return err
		}
	}
	if sc.Percentiles != nil {
		if _, err := fmt.Fprintln(sc.Percentiles, "delay percentiles (slots):"); err != nil {
			return err
		}
		if _, err := io.WriteString(sc.Percentiles, res.Report.PercentileTable()); err != nil {
			return err
		}
	}
	return nil
}

// seriesTraffic builds the workloads most useful for per-slot inspection:
// the steering adversary (the paper's Theorem 6 lower-bound construction,
// whose plane backlogs this tool exists to visualize) plus the bernoulli,
// flood, and permutation baselines.
func seriesTraffic(cfg ppsim.Config, sc seriesConfig) (ppsim.Source, error) {
	switch sc.Kind {
	case "bernoulli":
		return ppsim.NewBernoulli(sc.N, sc.Load, sc.Slots, sc.Seed), nil
	case "flood":
		return ppsim.NewFlood(sc.N, 0, sc.Slots), nil
	case "permutation":
		perm := make([]ppsim.Port, sc.N)
		for i := range perm {
			perm[i] = ppsim.Port((i + 1) % sc.N)
		}
		return ppsim.NewPermutation(perm, sc.Slots)
	case "steering":
		return ppsim.SteeringTrace(cfg, ppsim.AllInputs(sc.N), 0, 1, 16, sc.Seed)
	default:
		return nil, fmt.Errorf("unknown traffic kind %q (want bernoulli, flood, permutation, steering)", sc.Kind)
	}
}
