package main

import (
	"fmt"
	"strings"
	"testing"
)

func TestRenderFigure1(t *testing.T) {
	out := Render(5, 2, 2)
	for _, want := range []string{
		"N=5, K=2, r'=2",
		"Clos(m=2, n=1, r=5)",
		"in  0 >[D0 ]",
		"plane 1",
		"[M4 ]> out  4",
		"10 + 10 internal lines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "plane 2") {
		t.Error("only 2 planes should be drawn")
	}
}

func TestRenderMorePlanesThanPorts(t *testing.T) {
	out := Render(2, 4, 1)
	if !strings.Contains(out, "plane 3") {
		t.Errorf("all 4 planes should be drawn:\n%s", out)
	}
	if !strings.Contains(out, "S = K/r' = 4.00") {
		t.Errorf("speedup missing:\n%s", out)
	}
}

func TestRenderLineCounts(t *testing.T) {
	out := Render(8, 4, 3)
	if !strings.Contains(out, "32 + 32 internal lines, each carrying one cell per 3 slots") {
		t.Errorf("line counts wrong:\n%s", out)
	}
}

// TestSeriesSteeringDivergence is the acceptance check for series mode: under
// the Theorem 6 steering adversary (N=16, K=4, r'=2, rr) the per-slot
// plane-backlog series must show the steered plane's queue diverging toward
// the N/S = 8 bound while the remaining planes stay near-empty.
func TestSeriesSteeringDivergence(t *testing.T) {
	var sb strings.Builder
	err := runSeries(&sb, seriesConfig{
		N: 16, K: 4, RPrime: 2,
		Alg: "rr", Kind: "steering", Seed: 1,
		Slots: 2000, Stride: 1, Format: "csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "series,slot,value" {
		t.Fatalf("bad CSV header %q", lines[0])
	}
	peak := map[string]float64{}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 3 || !strings.HasPrefix(f[0], "plane_backlog[") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(f[2], "%g", &v); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if v > peak[f[0]] {
			peak[f[0]] = v
		}
	}
	if len(peak) != 4 {
		t.Fatalf("expected 4 plane_backlog series, got %v", peak)
	}
	// The adversary steers every cell onto plane 1; with S = K/r' = 2 the
	// concentration drives that plane's backlog to N/S = 8.
	steered, rest := peak["plane_backlog[1]"], 0.0
	for name, v := range peak {
		if name != "plane_backlog[1]" && v > rest {
			rest = v
		}
	}
	if steered < 8 {
		t.Errorf("steered plane peaked at %g, want >= 8 (N/S)", steered)
	}
	if steered < 2*rest {
		t.Errorf("no divergence: steered peak %g vs other planes' %g", steered, rest)
	}
}

// TestSeriesJSONFormat smoke-checks the JSON output path.
func TestSeriesJSONFormat(t *testing.T) {
	var sb strings.Builder
	err := runSeries(&sb, seriesConfig{
		N: 4, K: 2, RPrime: 1,
		Alg: "rr", Kind: "bernoulli", Load: 0.5, Seed: 1,
		Slots: 50, Stride: 5, Format: "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "[") || !strings.Contains(sb.String(), `"pps_in_flight"`) {
		t.Errorf("unexpected JSON series output: %.120s", sb.String())
	}
}

// TestValidateSeriesFlags pins the parse-time rejection of knobs the series
// layer would silently coerce.
func TestValidateSeriesFlags(t *testing.T) {
	for _, tc := range []struct {
		stride, cap int64
		ok          bool
	}{
		{1, 0, true},
		{7, 4096, true},
		{0, 0, false},
		{-3, 0, false},
		{1, -1, false},
	} {
		err := validateSeriesFlags(tc.stride, tc.cap)
		if (err == nil) != tc.ok {
			t.Errorf("validateSeriesFlags(%d, %d) = %v, want ok=%v", tc.stride, tc.cap, err, tc.ok)
		}
	}
}

// TestSeriesCapBoundsOutput checks the -cap knob actually bounds the series.
func TestSeriesCapBoundsOutput(t *testing.T) {
	var sb strings.Builder
	err := runSeries(&sb, seriesConfig{
		N: 4, K: 2, RPrime: 1,
		Alg: "rr", Kind: "bernoulli", Load: 0.5, Seed: 1,
		Slots: 500, Stride: 1, Cap: 16, Format: "csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n")[1:] {
		counts[strings.SplitN(line, ",", 2)[0]]++
	}
	for name, n := range counts {
		if n > 16 {
			t.Errorf("series %s has %d points, -cap 16 should bound it", name, n)
		}
	}
}
