package main

import (
	"strings"
	"testing"
)

func TestRenderFigure1(t *testing.T) {
	out := Render(5, 2, 2)
	for _, want := range []string{
		"N=5, K=2, r'=2",
		"Clos(m=2, n=1, r=5)",
		"in  0 >[D0 ]",
		"plane 1",
		"[M4 ]> out  4",
		"10 + 10 internal lines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "plane 2") {
		t.Error("only 2 planes should be drawn")
	}
}

func TestRenderMorePlanesThanPorts(t *testing.T) {
	out := Render(2, 4, 1)
	if !strings.Contains(out, "plane 3") {
		t.Errorf("all 4 planes should be drawn:\n%s", out)
	}
	if !strings.Contains(out, "S = K/r' = 4.00") {
		t.Errorf("speedup missing:\n%s", out)
	}
}

func TestRenderLineCounts(t *testing.T) {
	out := Render(8, 4, 3)
	if !strings.Contains(out, "32 + 32 internal lines, each carrying one cell per 3 slots") {
		t.Errorf("line counts wrong:\n%s", out)
	}
}
