// Command ppsdiag renders the PPS architecture (the paper's Figure 1) as
// ASCII art for a given geometry, and reports the derived quantities the
// model fixes: speedup, Clos descriptor, line counts.
//
//	ppsdiag -n 5 -k 2 -rprime 2
//
// With -series it instead runs an instrumented simulation and streams
// per-slot probe series (plane backlogs, buffer depths, front RQD, ...) as
// long-format CSV or JSON, e.g. the Theorem 6 steering adversary:
//
//	ppsdiag -series -n 16 -k 4 -rprime 2 -alg rr -traffic steering
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppsim"
)

func main() {
	var (
		n      = flag.Int("n", 5, "external ports N")
		k      = flag.Int("k", 2, "center-stage planes K")
		rprime = flag.Int64("rprime", 2, "internal line occupancy r' = R/r")
		series = flag.Bool("series", false, "run a simulation and stream per-slot probe series instead of rendering")
		pctl   = flag.Bool("percentiles", false, "run a simulation and print the per-component delay percentile table (with -series it goes to stderr, after the series)")
		alg    = flag.String("alg", "rr", "demultiplexing algorithm (series mode)")
		kind   = flag.String("traffic", "steering", "traffic: bernoulli, flood, permutation, steering (series mode)")
		load   = flag.Float64("load", 0.6, "per-input load for bernoulli (series mode)")
		seed   = flag.Int64("seed", 1, "random seed (series mode)")
		slots  = flag.Int64("slots", 2000, "traffic horizon in slots (series mode)")
		stride = flag.Int64("stride", 1, "sample every stride-th slot (series mode)")
		scap   = flag.Int64("cap", 0, "points retained per series, 0 = default ring capacity (series mode)")
		format = flag.String("format", "csv", "series output format: csv or json")
		out    = flag.String("out", "", "series output file (default stdout)")
	)
	flag.Parse()

	if *n <= 0 || *k <= 0 || *rprime < 1 {
		fmt.Fprintln(os.Stderr, "ppsdiag: need n > 0, k > 0, rprime >= 1")
		os.Exit(2)
	}
	if err := validateSeriesFlags(*stride, *scap); err != nil {
		fmt.Fprintln(os.Stderr, "ppsdiag:", err)
		flag.Usage()
		os.Exit(2)
	}
	if !*series && !*pctl {
		fmt.Print(Render(*n, *k, *rprime))
		return
	}

	sc := seriesConfig{
		N: *n, K: *k, RPrime: *rprime,
		Alg: *alg, Kind: *kind, Load: *load, Seed: *seed,
		Slots:  ppsim.Time(*slots),
		Stride: ppsim.Time(*stride),
		Cap:    int(*scap),
		Format: *format,
	}
	var w *os.File
	if *series {
		w = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ppsdiag:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
	}
	if *pctl {
		// Table-only mode prints to stdout; combined with -series the table
		// moves to stderr so piped CSV/JSON stays machine-readable.
		if *series {
			sc.Percentiles = os.Stderr
		} else {
			sc.Percentiles = os.Stdout
		}
	}
	var err error
	if *series {
		err = runSeries(w, sc)
	} else {
		err = runSeries(nil, sc)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppsdiag:", err)
		os.Exit(1)
	}
}

// validateSeriesFlags rejects series knobs that obs.NewSeries would
// silently coerce (stride < 1 -> 1, capacity <= 0 -> default) — a typo like
// -stride 0 must fail loudly at parse time, not run an every-slot capture.
func validateSeriesFlags(stride, capacity int64) error {
	if stride < 1 {
		return fmt.Errorf("-stride must be >= 1, got %d", stride)
	}
	if capacity < 0 {
		return fmt.Errorf("-cap must be >= 0 (0 = default ring capacity), got %d", capacity)
	}
	return nil
}

// Render draws the three-stage PPS.
func Render(n, k int, rprime int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel Packet Switch: N=%d, K=%d, r'=%d (S = K/r' = %.2f)\n", n, k, rprime, float64(k)/float64(rprime))
	fmt.Fprintf(&b, "three-stage Clos network Clos(m=%d, n=1, r=%d); each plane an %dx%d switch at rate R/%d\n\n", k, n, n, n, rprime)

	rows := n
	if k > n {
		rows = k
	}
	for row := 0; row < rows; row++ {
		in := "            "
		if row < n {
			in = fmt.Sprintf("in %2d >[D%-2d]", row, row)
		}
		mid := "            "
		if row < k {
			mid = fmt.Sprintf("=[ plane %-2d]=", row)
		} else {
			mid = strings.Repeat(" ", 13)
		}
		out := ""
		if row < n {
			out = fmt.Sprintf("[M%-2d]> out %2d", row, row)
		}
		link := "--"
		if row >= n {
			link = "  "
		}
		fmt.Fprintf(&b, "%s %s %s %s %s\n", in, link, mid, link, out)
	}
	fmt.Fprintf(&b, "\nD = demultiplexor (one per input, rate-R external line)\n")
	fmt.Fprintf(&b, "M = multiplexor with resequencing buffer (one per output)\n")
	fmt.Fprintf(&b, "every input connects to every plane and every plane to every output:\n")
	fmt.Fprintf(&b, "%d + %d internal lines, each carrying one cell per %d slots\n", n*k, k*n, rprime)
	return b.String()
}
