package ppsim_test

import (
	"fmt"
	"testing"

	"ppsim"
	"ppsim/internal/experiments"
)

// One benchmark per regenerated table/figure (DESIGN.md §4). Each runs the
// experiment in quick mode and reports the headline measured value where
// one exists, so `go test -bench` regenerates the paper's shapes end to
// end. The full-scale tables live in EXPERIMENTS.md (cmd/ppsexp).

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(experiments.Opts{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure1Fabric(b *testing.B)           { benchExperiment(b, "E1") }
func BenchmarkLemma4Concentration(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkTheorem6Partitioned(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkCorollary7Scaling(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkTheorem8StaticPartition(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkTheorem10StaleInfo(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkTheorem12BufferedCPA(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkTheorem13BufferedRR(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkTheorem14FTDX(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkProposition15Burstiness(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkCPABaseline(b *testing.B)             { benchExperiment(b, "E11") }
func BenchmarkDistCPATightness(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkAverageCase(b *testing.B)             { benchExperiment(b, "E13") }
func BenchmarkCrossbarISLIP(b *testing.B)           { benchExperiment(b, "E14") }
func BenchmarkJitterRegulatorBuffers(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkCIOQSpeedup(b *testing.B)             { benchExperiment(b, "E16") }
func BenchmarkUniversality(b *testing.B)            { benchExperiment(b, "E17") }
func BenchmarkRandomizedDistribution(b *testing.B)  { benchExperiment(b, "E18") }
func BenchmarkRandTieAblation(b *testing.B)         { benchExperiment(b, "E19") }
func BenchmarkDelayStages(b *testing.B)             { benchExperiment(b, "E20") }
func BenchmarkCruzBounds(b *testing.B)              { benchExperiment(b, "E21") }
func BenchmarkBvNTraffic(b *testing.B)              { benchExperiment(b, "E22") }
func BenchmarkTandemPPS(b *testing.B)               { benchExperiment(b, "E23") }
func BenchmarkPlaneFailure(b *testing.B)            { benchExperiment(b, "E24") }
func BenchmarkPacketReassembly(b *testing.B)        { benchExperiment(b, "E25") }
func BenchmarkNonWorkConservingRef(b *testing.B)    { benchExperiment(b, "E26") }
func BenchmarkWFQIsolation(b *testing.B)            { benchExperiment(b, "E27") }

// --- Ablation benches (DESIGN.md §5) ---

// runOnce executes a standard workload and reports the measured relative
// delay as a benchmark metric alongside the runtime.
func runOnce(b *testing.B, cfg ppsim.Config, seed int64) {
	b.Helper()
	var maxRQD, cells float64
	for i := 0; i < b.N; i++ {
		src := ppsim.Shape(cfg.N, 4, ppsim.NewBernoulli(cfg.N, 0.75, 2000, seed))
		res, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: 40_000})
		if err != nil {
			b.Fatal(err)
		}
		maxRQD = float64(res.Report.MaxRQD)
		cells = float64(res.Report.Cells)
	}
	b.ReportMetric(maxRQD, "maxRQD")
	b.ReportMetric(cells, "cells")
}

// BenchmarkAblationMuxPolicy contrasts eager pulling with one-pull-per-slot
// lazy FCFS at the output multiplexors.
func BenchmarkAblationMuxPolicy(b *testing.B) {
	base := ppsim.Config{N: 16, K: 8, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	b.Run("eager", func(b *testing.B) { runOnce(b, base, 1) })
	lazy := base
	lazy.LazyMux = true
	b.Run("lazy-fcfs", func(b *testing.B) { runOnce(b, lazy, 1) })
}

// BenchmarkAblationRRGranularity contrasts per-input and per-flow pointers.
func BenchmarkAblationRRGranularity(b *testing.B) {
	base := ppsim.Config{N: 16, K: 8, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	b.Run("per-input", func(b *testing.B) { runOnce(b, base, 2) })
	pf := base
	pf.Algorithm.Name = "perflow-rr"
	b.Run("per-flow", func(b *testing.B) { runOnce(b, pf, 2) })
}

// BenchmarkAblationMuxBudget sweeps the per-slot pull budget between lazy
// (1) and eager (K).
func BenchmarkAblationMuxBudget(b *testing.B) {
	for _, budget := range []int{1, 2, 4, 8} {
		budget := budget
		b.Run(fmt.Sprintf("budget-%d", budget), func(b *testing.B) {
			cfg := ppsim.Config{N: 16, K: 8, RPrime: 2, MuxBudget: budget, Algorithm: ppsim.Algorithm{Name: "rr"}}
			runOnce(b, cfg, 4)
		})
	}
}

// BenchmarkAblationCPATieBreak contrasts min-availability and rotating
// tie-breaks in CPA.
func BenchmarkAblationCPATieBreak(b *testing.B) {
	base := ppsim.Config{N: 16, K: 8, RPrime: 4, Algorithm: ppsim.Algorithm{Name: "cpa"}}
	b.Run("min-avail", func(b *testing.B) { runOnce(b, base, 3) })
	rot := base
	rot.Algorithm.Name = "cpa-rotate"
	b.Run("rotate", func(b *testing.B) { runOnce(b, rot, 3) })
}

// BenchmarkEngineThroughput measures raw fabric slot rate with invariant
// auditing on and off.
func BenchmarkEngineThroughput(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		cfg := ppsim.Config{
			N: 32, K: 8, RPrime: 2,
			Algorithm:     ppsim.Algorithm{Name: "rr"},
			DisableChecks: disable,
		}
		var totalCells uint64
		for i := 0; i < b.N; i++ {
			src := ppsim.NewBernoulli(cfg.N, 0.8, 5000, 9)
			res, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: 40_000})
			if err != nil {
				b.Fatal(err)
			}
			totalCells += res.Report.Cells
		}
		b.ReportMetric(float64(totalCells)/b.Elapsed().Seconds(), "cells/s")
	}
	b.Run("audited", func(b *testing.B) { run(b, false) })
	b.Run("unaudited", func(b *testing.B) { run(b, true) })
}
