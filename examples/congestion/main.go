// Congestion: Section 5 of the paper. Flooding one output keeps every plane
// queue for it backlogged — a congested period — and the FTD extension then
// introduces no relative queuing delay: the flooded output stays busy every
// single slot, like the work-conserving reference. Proposition 15 explains
// why this does not contradict the lower bounds: the flooding traffic is
// not leaky-bucket for any fixed burstiness B.
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"

	"ppsim"
)

func main() {
	const n, floodSlots = 16, 400

	fmt.Println("Theorem 14: FTDX under a congested period (output 0 flooded by all inputs)")
	fmt.Printf("%14s  %12s  %22s\n", "algorithm", "block size", "output-0 utilization")
	for _, h := range []float64{1.5, 2, 4} {
		cfg := ppsim.Config{
			N: n, K: 8, RPrime: 2, // S = 4 >= h
			Algorithm: ppsim.Algorithm{Name: "ftd", H: h},
		}
		res, err := ppsim.Run(cfg, ppsim.NewFlood(n, 0, floodSlots), ppsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11s %.1f  %12d  %22.4f\n", "ftd h=", h, int(h*float64(cfg.RPrime)), res.Utilization[0])
	}

	fmt.Println()
	fmt.Println("Proposition 15: the congestion traffic has unbounded burstiness")
	flood := ppsim.NewFlood(n, 0, floodSlots)
	fmt.Printf("%12s  %14s\n", "window tau", "excess cells")
	for _, tau := range []ppsim.Time{1, 10, 100, 400} {
		x, err := ppsim.WindowBurstiness(n, flood, tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d  %14d\n", tau, x)
	}
	fmt.Println("\nexcess grows linearly with the window: no fixed B bounds it, so the")
	fmt.Println("leaky-bucket lower bounds (Theorems 6-13) simply do not apply here.")

	// Where the delay actually lives: the congested regime above hides it
	// (the flooded output is always busy), so run plain bursty on/off load
	// and decompose each delivered cell's delay into demux wait, plane
	// queuing, and resequencing wait. The tail columns (p99/p999) are the
	// paper's object of study — under bursty load the resequencing stage,
	// not the planes, carries most of the relative queuing delay.
	fmt.Println()
	fmt.Println("Tail decomposition under bursty on/off load (mean load 0.6, K=8, S=4)")
	cfg := ppsim.Config{N: n, K: 8, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	src, err := ppsim.NewOnOff(n, 8, 5.3, 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ppsim.Run(cfg, src, ppsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	q := res.Report.Percentiles
	fmt.Printf("rqd p50/p99/p999: %d/%d/%d slots (max %d)\n",
		q.RQD.P50, q.RQD.P99, q.RQD.P999, res.Report.MaxRQD)
	fmt.Println("\ndelay percentiles (slots):")
	fmt.Print(res.Report.PercentileTable())
}
