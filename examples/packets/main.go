// Packets: the paper's model switches fixed-size cells; applications send
// variable-length packets. This example runs the full path — segmentation
// at the inputs, the PPS, reassembly at the outputs — and shows how cell-
// level relative delay surfaces as packet-level delay: a packet rides its
// slowest cell.
//
//	go run ./examples/packets
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppsim"
)

func main() {
	const n = 8

	for _, alg := range []ppsim.Algorithm{{Name: "cpa"}, {Name: "rr"}} {
		cfg := ppsim.Config{N: n, K: 8, RPrime: 4, Algorithm: alg} // S = 2

		// Offer 200 packets of 1-8 cells on random flows.
		seg := ppsim.NewSegmenter(n)
		rng := rand.New(rand.NewSource(7))
		at := ppsim.Time(0)
		for p := 0; p < 200; p++ {
			flow := ppsim.Flow{In: ppsim.Port(rng.Intn(n)), Out: ppsim.Port(rng.Intn(n))}
			if _, err := seg.Offer(flow, 1+rng.Intn(8), at); err != nil {
				log.Fatal(err)
			}
			at += ppsim.Time(rng.Intn(2))
		}

		ras := ppsim.NewReassembler(seg)
		res, err := ppsim.Run(cfg, seg, ppsim.Options{
			Horizon: 8000,
			OnPPSDepart: func(c ppsim.Cell) {
				if err := ras.OnDepart(c); err != nil {
					log.Fatal(err)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}

		var worst ppsim.Time
		var sum float64
		for _, p := range seg.Offered() {
			d, ok := ras.Delay(p)
			if !ok {
				log.Fatalf("packet %d never completed", p.ID)
			}
			sum += float64(d)
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("%-4s %3d packets reassembled losslessly; mean pkt delay %.1f, max %d (max cell RQD %d)\n",
			alg.Name, ras.Completed(), sum/float64(ras.Completed()), worst, res.Report.MaxRQD)
	}

	fmt.Println()
	fmt.Println("every packet completes and flow order holds — the switch invariants the paper")
	fmt.Println("requires (no drops, per-flow order) are exactly what reassembly depends on.")
}
