// Scaling: sweep the switch geometry in parallel and print a CSV of the
// worst-case relative queuing delay surface over (N, S), for two
// fully-distributed algorithms:
//
//   - unpartitioned round-robin: Corollary 7 predicts (R/r - 1) * N,
//     independent of the speedup — adding planes does not help, because the
//     adversary can still align every input on one of them;
//   - statically partitioned dispatch (d = r'): Theorem 8 predicts
//     (R/r - 1) * N/S — only N/S inputs can share a plane, so speedup
//     helps, at the price of fault tolerance.
//
// Each sweep point runs the steering adversary against its own fresh
// switch; points execute concurrently on a worker pool (ppsim.RunSweep)
// and the results are deterministic regardless of the worker count.
//
//	go run ./examples/scaling > surface.csv
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"ppsim"
)

func main() {
	ns := []int{8, 16, 32, 64}
	ks := []int{4, 8, 16} // with r' = 4: S = 1, 2, 4
	const rPrime = 4

	type meta struct {
		alg   string
		n, k  int
		bound float64
	}
	var points []ppsim.SweepPoint
	var metas []meta

	for _, n := range ns {
		for _, k := range ks {
			n, k := n, k
			s := float64(k) / float64(rPrime)

			// Corollary 7: unpartitioned round-robin, all N inputs steered.
			rrCfg := ppsim.Config{N: n, K: k, RPrime: rPrime, Algorithm: ppsim.Algorithm{Name: "rr"}}
			points = append(points, ppsim.SweepPoint{
				Label:  fmt.Sprintf("rr,N=%d,K=%d", n, k),
				Config: rrCfg,
				NewSource: func() ppsim.Source {
					tr, err := ppsim.SteeringTrace(rrCfg, ppsim.AllInputs(n), 0, 1, 16, int64(n*k))
					if err != nil {
						log.Fatalf("rr trace N=%d K=%d: %v", n, k, err)
					}
					return tr
				},
			})
			metas = append(metas, meta{"rr", n, k, float64(rPrime-1) * float64(n)})

			// Theorem 8: partitioned dispatch, only the plane's group steered.
			ptCfg := ppsim.Config{N: n, K: k, RPrime: rPrime, Algorithm: ppsim.Algorithm{Name: "partition", D: rPrime}}
			points = append(points, ppsim.SweepPoint{
				Label:  fmt.Sprintf("partition,N=%d,K=%d", n, k),
				Config: ptCfg,
				NewSource: func() ppsim.Source {
					inputs := ppsim.PartitionInputs(n, k, rPrime, 0)
					tr, err := ppsim.SteeringTrace(ptCfg, inputs, 0, 0, 16, int64(n*k))
					if err != nil {
						log.Fatalf("partition trace N=%d K=%d: %v", n, k, err)
					}
					return tr
				},
			})
			metas = append(metas, meta{"partition", n, k, float64(rPrime-1) * float64(n) / s})
		}
	}

	fmt.Fprintf(os.Stderr, "running %d sweep points on %d workers...\n", len(points), runtime.GOMAXPROCS(0))
	results := ppsim.RunSweep(points, 0)

	fmt.Println("algorithm,n,k,speedup,max_rqd,paper_bound,peak_plane_queue")
	for i, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Label, r.Err)
		}
		m := metas[i]
		fmt.Printf("%s,%d,%d,%.2f,%d,%.1f,%d\n",
			m.alg, m.n, m.k, float64(m.k)/float64(rPrime),
			r.Result.Report.MaxRQD, m.bound, r.Result.PeakPlaneQueue)
	}
	fmt.Fprintln(os.Stderr, "rr rows are flat in S (Corollary 7); partition rows shrink as N/S (Theorem 8)")
}
