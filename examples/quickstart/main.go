// Quickstart: build a 16x16 parallel packet switch with 8 planes at half
// the external line rate, offer it random admissible traffic, and compare
// its queuing behaviour with the ideal work-conserving output-queued
// reference switch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ppsim"
)

func main() {
	cfg := ppsim.Config{
		N:      16, // external ports
		K:      8,  // center-stage planes
		RPrime: 2,  // each internal line carries one cell per 2 slots
		Algorithm: ppsim.Algorithm{
			Name: "rr", // fully-distributed round-robin dispatch
		},
	}
	fmt.Printf("PPS: N=%d, K=%d, r'=%d -> speedup S=%.1f\n", cfg.N, cfg.K, cfg.RPrime, cfg.Speedup())

	// 10k slots of iid Bernoulli traffic at 70%% load, shaped to the
	// (R, B=8) leaky-bucket envelope of the paper's traffic model.
	src := ppsim.Shape(cfg.N, 8, ppsim.NewBernoulli(cfg.N, 0.7, 10_000, 42))

	res, err := ppsim.Run(cfg, src, ppsim.Options{
		Horizon:  80_000, // safety bound; the run ends when both switches drain
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Result implements fmt.Stringer; the pretty-printer covers the report,
	// per-stage waits, and any attached observability output.
	fmt.Println(res)

	// The same traffic through the centralized CPA dispatcher: with
	// S >= 2 it mimics the reference switch exactly (zero relative delay).
	cfg.Algorithm = ppsim.Algorithm{Name: "cpa"}
	cfg.K, cfg.RPrime = 8, 4 // S = 2
	src = ppsim.Shape(cfg.N, 8, ppsim.NewBernoulli(cfg.N, 0.7, 10_000, 42))
	res2, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: 80_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncentralized CPA at S=2: max relative delay = %d slots (paper: zero)\n",
		res2.Report.MaxRQD)
}
