// Adversarial: reproduce the Corollary 7 lower bound live. The steering
// adversary (the constructive form of the Theorem 6 proof, Figure 2 of the
// paper) aligns every round-robin demultiplexor on one plane and then fires
// a burstless rate-R burst; the relative queuing delay grows linearly with
// the number of ports N — the PPS does not scale.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"ppsim"
)

func main() {
	fmt.Println("Corollary 7: unpartitioned fully-distributed dispatch, steered worst case")
	fmt.Println("switch: K=4 planes, r'=2 (S=2), algorithm rr; traffic burstless (B=0)")
	fmt.Println()
	fmt.Printf("%6s  %14s  %14s  %12s\n", "N", "measured RQD", "bound (r'-1)N", "ratio")

	for _, n := range []int{8, 16, 32, 64, 128} {
		cfg := ppsim.Config{
			N: n, K: 4, RPrime: 2,
			Algorithm: ppsim.Algorithm{Name: "rr"},
		}
		// Scramble the demultiplexors into an arbitrary configuration
		// first — the bound does not depend on starting from reset.
		trace, err := ppsim.SteeringTrace(cfg, ppsim.AllInputs(n), 0 /*output j*/, 1 /*plane k*/, 32, int64(n))
		if err != nil {
			log.Fatal(err)
		}
		b, err := ppsim.MeasureBurstiness(n, trace)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ppsim.Run(cfg, trace, ppsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bound := (cfg.RPrime - 1) * int64(n)
		fmt.Printf("%6d  %14d  %14d  %12.2f   (traffic B=%d)\n",
			n, res.Report.MaxRQD, bound, float64(res.Report.MaxRQD)/float64(bound), b)
	}

	fmt.Println()
	fmt.Println("the same switch under the same *volume* of random traffic stays cheap;")
	fmt.Println("the bound is adversarial, which is exactly the paper's point:")
	cfg := ppsim.Config{N: 64, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	res, err := ppsim.Run(cfg, ppsim.Shape(64, 4, ppsim.NewBernoulli(64, 0.6, 2000, 7)), ppsim.Options{Horizon: 50_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N=64 random traffic: max RQD %d, mean %.2f\n", res.Report.MaxRQD, res.Report.MeanRQD)
}
