// Fault tolerance: Section 3 of the paper argues that each demultiplexor
// should be able to send any cell through any plane, because a statically
// partitioned switch turns one plane failure into a stranded group of
// inputs. This example fails plane 0 before the run and probes every input
// on both algorithms: the unpartitioned switch degrades everywhere (every
// input eventually tries the dead plane — a failure-aware variant could
// skip it, since K-1 >= r' planes remain), while the partitioned switch
// shields the other groups completely but leaves its own group with
// d-1 < r' planes, below what rate R needs.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"

	"ppsim"
)

func main() {
	const n, k, rPrime = 16, 4, 2

	for _, alg := range []ppsim.Algorithm{
		{Name: "rr"},
		{Name: "partition", D: 2},
	} {
		cfg := ppsim.Config{N: n, K: k, RPrime: rPrime, Algorithm: alg}
		stranded := 0
		var firstHit []int
		for in := 0; in < n; in++ {
			// One steady flow from this input; the run errors at the
			// input's first dispatch into the dead plane.
			src := ppsim.NewCBR([]ppsim.Flow{{In: ppsim.Port(in), Out: ppsim.Port((in + 1) % n)}}, 2, 120)
			_, err := ppsim.Run(cfg, src, ppsim.Options{FailPlanes: []ppsim.PlaneID{0}})
			if err != nil {
				stranded++
				firstHit = append(firstHit, in)
			}
		}
		fmt.Printf("%-14s plane 0 dead: %2d/%d inputs eventually dispatch into it %v\n",
			alg.Name, stranded, n, firstHit)
	}

	fmt.Println()
	fmt.Println("unpartitioned rr exposes every input but keeps K-1 = 3 >= r' planes of capacity;")
	fmt.Println("the partitioned group {0,2,4,...} keeps d-1 = 1 < r' = 2 planes and cannot sustain")
	fmt.Println("rate R at all — the paper's footnote 4. Fault tolerance therefore dictates")
	fmt.Println("unpartitioned dispatch, which is exactly the regime of Corollary 7's Omega(N) bound.")
}
