// Fault tolerance: Section 3 of the paper argues that each demultiplexor
// should be able to send any cell through any plane, because a statically
// partitioned switch turns one plane failure into a stranded group of
// inputs. This example runs that contrast as a degraded execution instead
// of an abort: plane 0 suffers a mid-run outage (slots 500-1200) under the
// DropCount policy, and the drop ledger shows who pays for it.
//
//   - rr (unpartitioned, fault-blind): every input keeps rotating through
//     the dead plane, so every input loses cells — but the losses are
//     spread thin, and K-1 = 3 >= r' planes of capacity remain.
//   - faultaware(rr): the same round-robin with failed planes masked from
//     its candidate set. Only the backlog plane 0 held at the failure
//     instant is lost; no fresh cell is ever dispatched into the outage.
//   - partition (d = 2): inputs outside the dead plane's group lose
//     nothing, but the group itself is left with d-1 = 1 < r' = 2 planes —
//     below what rate R needs (footnote 4) — and its drops pile up.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"

	"ppsim"
)

func main() {
	const n, k, rPrime = 16, 4, 2
	const horizon = 2000

	// One shared schedule: plane 0 fails at slot 500 and recovers at 1200.
	// A built schedule is immutable and may be reused across runs.
	sched := ppsim.NewFaultSchedule().Outage(0, 500, 1200)

	fmt.Printf("PPS N=%d K=%d r'=%d, plane 0 out for slots [500, 1200), DropCount policy\n\n", n, k, rPrime)
	fmt.Printf("%-16s %8s %8s %10s  %s\n", "algorithm", "cells", "drops", "loss", "inputs hit")
	for _, alg := range []ppsim.Algorithm{
		{Name: "rr"},
		{Name: "rr", FaultAware: true},
		{Name: "partition", D: 2},
	} {
		cfg := ppsim.Config{N: n, K: k, RPrime: rPrime, Algorithm: alg}
		src := ppsim.NewBernoulli(n, 0.55, horizon, 1)
		res, err := ppsim.Run(cfg, src, ppsim.Options{
			Faults:      sched,
			FaultPolicy: ppsim.FaultDropCount,
		})
		if err != nil {
			fmt.Println("run failed:", err)
			return
		}
		var hit []int
		for in, d := range res.Report.DropsPerInput {
			if d > 0 {
				hit = append(hit, in)
			}
		}
		total := res.Report.Cells + res.Drops
		fmt.Printf("%-16s %8d %8d %9.2f%%  %d/%d %v\n",
			res.AlgorithmName, total, res.Drops,
			100*float64(res.Drops)/float64(total), len(hit), n, hit)
	}

	fmt.Println()
	fmt.Println("rr spreads the outage across every input; masking (faultaware) reduces the loss")
	fmt.Println("to the backlog stranded inside plane 0 at the failure instant; the partitioned")
	fmt.Println("switch shields the other groups completely but concentrates the damage on the")
	fmt.Println("dead plane's group, which keeps d-1 = 1 < r' = 2 planes and cannot sustain rate R")
	fmt.Println("— the paper's footnote 4. Fault tolerance therefore dictates unpartitioned")
	fmt.Println("dispatch, which is exactly the regime of Corollary 7's Omega(N) lower bound.")
}
