// Input-buffered: Section 4 of the paper in action. Input buffers of size u
// let a u-RT algorithm simulate the centralized CPA at a lag of u, capping
// the relative queuing delay at u (Theorem 12) — but buffers are useless to
// a fully-distributed algorithm, which stays stuck at the Omega(N/S) bound
// no matter how much it can buffer (Theorem 13).
//
//	go run ./examples/inputbuffered
package main

import (
	"fmt"
	"log"

	"ppsim"
)

func main() {
	const n = 16

	fmt.Println("Theorem 12: buffered u-RT CPA simulation at S=2 keeps RQD <= u")
	fmt.Printf("%4s  %12s  %8s\n", "u", "measured RQD", "bound u")
	for _, u := range []ppsim.Time{0, 1, 2, 4, 8} {
		cfg := ppsim.Config{
			N: n, K: 16, RPrime: 8, // S = 2
			BufferCap: int(u) + 1,
			Algorithm: ppsim.Algorithm{Name: "buffered-cpa", U: u},
		}
		// Bursty but admissible traffic (B = 6).
		src := ppsim.Shape(n, 6, ppsim.NewBernoulli(n, 0.7, 3000, 11))
		res, err := ppsim.Run(cfg, src, ppsim.Options{Horizon: 30_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %12d  %8d\n", u, res.Report.MaxRQD, u)
	}

	fmt.Println()
	fmt.Println("Theorem 13: buffers do not rescue fully-distributed dispatch")
	fmt.Printf("%10s  %12s  %18s\n", "buffer", "measured RQD", "bound (1-r/R)N/S")
	for _, capacity := range []int{1, 8, 64, -1} {
		cfg := ppsim.Config{
			N: 32, K: 4, RPrime: 2, // S = 2
			BufferCap: capacity,
			Algorithm: ppsim.Algorithm{Name: "buffered-rr", Capacity: capacity},
		}
		trace, err := ppsim.SteeringTrace(cfg, ppsim.AllInputs(32), 0, 1, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ppsim.Run(cfg, trace, ppsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		bound := (1.0 - 1.0/float64(cfg.RPrime)) * float64(cfg.N) / cfg.Speedup()
		label := fmt.Sprintf("%d", capacity)
		if capacity < 0 {
			label = "unbounded"
		}
		fmt.Printf("%10s  %12d  %18.1f\n", label, res.Report.MaxRQD, bound)
	}
}
