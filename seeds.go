package ppsim

import (
	"fmt"

	"ppsim/internal/stats"
)

// Distribution summarizes a metric across many seeded runs.
type Distribution struct {
	Runs int
	Min  Time
	Mean float64
	P50  Time
	P99  Time
	Max  Time
}

// String renders the distribution on one line, in the shared summary format
// (stats.FormatLine) with "runs" as the count label.
func (d Distribution) String() string {
	return stats.FormatLine("runs", d.Runs, int64(d.Min), d.Mean, int64(d.P50), int64(d.P99), int64(d.Max))
}

// RunSeeds executes the same configuration over seeds 0..runs-1, with a
// fresh source per seed, and returns the distribution of the worst-case
// relative queuing delay. It answers the paper's Discussion question about
// randomized demultiplexing algorithms ("it would be interesting to study
// the distribution of the relative queuing delay when randomization is
// employed") for any (algorithm, traffic) pair: seed the algorithm, the
// traffic, or both.
//
// newCfg may adjust the configuration per seed (e.g. set Algorithm.Seed);
// passing nil reuses cfg unchanged. Runs execute in parallel via RunSweep.
func RunSeeds(cfg Config, runs int, newCfg func(seed int64, base Config) Config, newSource func(seed int64) Source, opts Options) (Distribution, error) {
	if runs <= 0 {
		return Distribution{}, fmt.Errorf("ppsim: RunSeeds needs runs > 0, got %d", runs)
	}
	if newSource == nil {
		return Distribution{}, fmt.Errorf("ppsim: RunSeeds needs a source factory")
	}
	points := make([]SweepPoint, runs)
	for s := 0; s < runs; s++ {
		seed := int64(s)
		c := cfg
		if newCfg != nil {
			c = newCfg(seed, cfg)
		}
		points[s] = SweepPoint{
			Label:     fmt.Sprintf("seed=%d", seed),
			Config:    c,
			NewSource: func() Source { return newSource(seed) },
			Options:   opts,
		}
	}
	results := RunSweep(points, 0)
	var sum stats.Summary
	for _, r := range results {
		if r.Err != nil {
			return Distribution{}, fmt.Errorf("ppsim: %s: %w", r.Label, r.Err)
		}
		sum.Add(int64(r.Result.Report.MaxRQD))
	}
	return Distribution{
		Runs: runs,
		Min:  Time(sum.Min()),
		Mean: sum.Mean(),
		P50:  Time(sum.Percentile(50)),
		P99:  Time(sum.Percentile(99)),
		Max:  Time(sum.Max()),
	}, nil
}
