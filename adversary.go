package ppsim

import (
	"ppsim/internal/adversary"
)

// SteeringTrace builds the Theorem 6 / Theorem 8 worst-case leaky-bucket
// traffic against the configured (deterministic, fully-distributed)
// algorithm: it aligns each demultiplexor in inputs so its next cell for
// out goes through plane, then emits a rate-R burst from those inputs.
// Replaying the returned trace through a fresh switch with the same Config
// reproduces the concentration (the construction and the replay are both
// deterministic).
//
// scrambleSlots > 0 prepends admissible random traffic so the construction
// starts from a non-trivial applicable configuration, as the proof's
// strongly-connected-configurations assumption allows.
func SteeringTrace(cfg Config, inputs []Port, out Port, plane PlaneID, scrambleSlots Time, scrambleSeed int64) (*Trace, error) {
	factory, err := cfg.internalFactory()
	if err != nil {
		return nil, err
	}
	return adversary.Steering(adversary.SteeringSpec{
		Fabric:        cfg.fabricConfig(),
		Factory:       factory,
		Inputs:        inputs,
		Out:           out,
		Plane:         plane,
		ScrambleSlots: scrambleSlots,
		ScrambleSeed:  scrambleSeed,
	})
}

// AllInputs returns the ports 0..n-1, the input set of Corollary 7's
// unpartitioned construction.
func AllInputs(n int) []Port {
	out := make([]Port, n)
	for i := range out {
		out[i] = Port(i)
	}
	return out
}

// PartitionInputs returns the inputs that share plane k under the
// "partition" algorithm with partition size d on a switch with K planes —
// the set I of Theorem 8 (|I| = N*d/K).
func PartitionInputs(n, k, d int, plane PlaneID) []Port {
	groups := k / d
	g := int(plane) / d
	var out []Port
	for i := 0; i < n; i++ {
		if i%groups == g {
			out = append(out, Port(i))
		}
	}
	return out
}

// ConcentrationTrace builds the bare Lemma 4 scenario: c cells for out in c
// consecutive slots from c distinct (fresh) inputs.
func ConcentrationTrace(n, c int, out Port) (*Trace, error) {
	return adversary.Concentration(n, c, out)
}

// HerdingTrace builds the Theorem 10 burst against u-RT algorithms:
// perSlot cells per slot to out for slots slots (after leadIn warm-up
// cells), all landing inside the algorithm's blind window.
func HerdingTrace(n int, out Port, slots Time, perSlot int, leadIn Time) (*Trace, error) {
	return adversary.Herding(adversary.HerdingSpec{
		N: n, Out: out, Slots: slots, PerSlot: perSlot, LeadIn: leadIn,
	})
}
