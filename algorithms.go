package ppsim

import (
	"fmt"
	"sort"

	"ppsim/internal/demux"
)

// Algorithm selects and parameterizes a demultiplexing algorithm by name.
// The zero values of unused parameters are ignored.
//
// Registered names (see AlgorithmNames):
//
//	rr           unpartitioned fully-distributed round-robin (Corollary 7)
//	perflow-rr   per-flow round-robin — the fully-distributed CPA variant
//	             of Iyer-McKeown [15] (relative queuing delay <= N*R/r)
//	partition    statically d-partitioned round-robin (Theorems 6, 8); D
//	random       uniform among free planes, fully distributed; Seed
//	cpa          centralized CPA [14]: zero relative delay at S >= 2
//	cpa-rotate   CPA with rotating tie-break (ablation)
//	cpa-sets     independent AIL/AOL-set formulation of CPA, kept for
//	             differential testing against cpa
//	stale-cpa    u-RT dispatch on u-slot-stale global information
//	             (Theorem 10); U
//	stale-cpa-randtie  stale-cpa with randomized tie-breaking (E19
//	             ablation: determinism causes the herding); U, Seed
//	buffered-cpa input-buffered u-RT CPA simulation (Theorem 12); U
//	buffered-rr  input-buffered fully-distributed round-robin
//	             (Theorem 13); Capacity
//	ftd          fractional traffic dispatch with the Section 5 extension
//	             (Theorem 14); H
//	least-loaded fully-distributed dispatch by own per-flow counts — still
//	             subject to the Theorem 6 bound (see experiment E17)
type Algorithm struct {
	// Name is the registry key.
	Name string
	// D is the partition size for "partition".
	D int
	// U is the staleness (slots) for "stale-cpa" and the buffer lag for
	// "buffered-cpa".
	U Time
	// H is the block parameter (> 1) for "ftd".
	H float64
	// Seed seeds "random".
	Seed int64
	// Capacity bounds each input buffer for "buffered-rr" (<= 0 means
	// unbounded).
	Capacity int
	// FaultAware wraps the algorithm with failure-aware dispatch: failed
	// planes are masked from its candidate set (their input gates appear
	// permanently busy), so dispatch routes around outages instead of
	// losing cells to dead planes. The report name becomes
	// "faultaware(<name>)".
	FaultAware bool
}

// factory lowers the spec to a demux constructor.
func (a Algorithm) factory() (func(demux.Env) (demux.Algorithm, error), error) {
	base, err := a.baseFactory()
	if err != nil {
		return nil, err
	}
	if !a.FaultAware {
		return base, nil
	}
	return func(e demux.Env) (demux.Algorithm, error) { return demux.NewFaultAware(e, base) }, nil
}

func (a Algorithm) baseFactory() (func(demux.Env) (demux.Algorithm, error), error) {
	switch a.Name {
	case "rr":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerInput) }, nil
	case "perflow-rr":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }, nil
	case "partition":
		d := a.D
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, d) }, nil
	case "random":
		s := a.Seed
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewRandom(e, s) }, nil
	case "cpa":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }, nil
	case "cpa-rotate":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.RotateTie) }, nil
	case "cpa-sets":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPASets(e) }, nil
	case "stale-cpa":
		u := a.U
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPA(e, u) }, nil
	case "stale-cpa-randtie":
		u, s := a.U, a.Seed
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPARandomTie(e, u, s) }, nil
	case "buffered-cpa":
		u := a.U
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedCPA(e, u, demux.MinAvail) }, nil
	case "buffered-rr":
		c := a.Capacity
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedRR(e, c) }, nil
	case "ftd":
		h := a.H
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewFTD(e, h) }, nil
	case "least-loaded":
		return func(e demux.Env) (demux.Algorithm, error) { return demux.NewLocalLeastLoaded(e) }, nil
	case "":
		return nil, fmt.Errorf("ppsim: no algorithm selected (set Config.Algorithm.Name; one of %v)", AlgorithmNames())
	default:
		return nil, fmt.Errorf("ppsim: unknown algorithm %q (one of %v)", a.Name, AlgorithmNames())
	}
}

// AlgorithmNames lists the registered algorithm names, sorted.
func AlgorithmNames() []string {
	names := []string{
		"rr", "perflow-rr", "partition", "random", "least-loaded",
		"cpa", "cpa-rotate", "cpa-sets", "stale-cpa", "stale-cpa-randtie",
		"buffered-cpa", "buffered-rr", "ftd",
	}
	sort.Strings(names)
	return names
}

// InputBuffered reports whether the algorithm holds cells in input buffers
// (and therefore needs Config.BufferCap != 0).
func (a Algorithm) InputBuffered() bool {
	switch a.Name {
	case "buffered-cpa":
		return a.U > 0
	case "buffered-rr":
		return true
	}
	return false
}
