package ppsim_test

import (
	"strings"
	"testing"

	"ppsim"
)

func sweepPoints(t *testing.T, ns []int) []ppsim.SweepPoint {
	t.Helper()
	var pts []ppsim.SweepPoint
	for _, n := range ns {
		n := n
		cfg := ppsim.Config{N: n, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
		pts = append(pts, ppsim.SweepPoint{
			Label:  strings.Repeat("N", 1) + "=" + itoa(n),
			Config: cfg,
			NewSource: func() ppsim.Source {
				tr, err := ppsim.SteeringTrace(cfg, ppsim.AllInputs(n), 0, 1, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				return tr
			},
		})
	}
	return pts
}

func itoa(n int) string {
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{digits[n%10]}, out...)
		n /= 10
	}
	return string(out)
}

func TestRunSweepMatchesSequential(t *testing.T) {
	ns := []int{4, 8, 16, 32}
	parallel := ppsim.RunSweep(sweepPoints(t, ns), 4)
	sequential := ppsim.RunSweep(sweepPoints(t, ns), 1)
	if len(parallel) != len(ns) {
		t.Fatalf("results = %d", len(parallel))
	}
	for i := range parallel {
		if parallel[i].Err != nil || sequential[i].Err != nil {
			t.Fatalf("errors: %v / %v", parallel[i].Err, sequential[i].Err)
		}
		p, s := parallel[i].Result.Report, sequential[i].Result.Report
		if p.MaxRQD != s.MaxRQD || p.Cells != s.Cells {
			t.Errorf("point %d: parallel %v != sequential %v", i, p, s)
		}
		// And the measured value follows Corollary 7's shape.
		if want := ppsim.Time(ns[i] - 1); p.MaxRQD != want {
			t.Errorf("N=%d: MaxRQD = %d, want %d", ns[i], p.MaxRQD, want)
		}
	}
}

func TestRunSweepDefaultsWorkers(t *testing.T) {
	res := ppsim.RunSweep(sweepPoints(t, []int{4, 8}), 0)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func TestRunSweepEmpty(t *testing.T) {
	if got := ppsim.RunSweep(nil, 3); len(got) != 0 {
		t.Errorf("empty sweep returned %d results", len(got))
	}
}

func TestRunSweepIsolatesFailures(t *testing.T) {
	bad := ppsim.SweepPoint{
		Label:  "bad",
		Config: ppsim.Config{N: 0, K: 1, RPrime: 1, Algorithm: ppsim.Algorithm{Name: "rr"}},
		NewSource: func() ppsim.Source {
			return ppsim.NewBernoulli(1, 0.5, 10, 1)
		},
	}
	okCfg := ppsim.Config{N: 4, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	good := ppsim.SweepPoint{
		Label:     "good",
		Config:    okCfg,
		NewSource: func() ppsim.Source { return ppsim.NewBernoulli(4, 0.5, 50, 1) },
	}
	missing := ppsim.SweepPoint{Label: "missing", Config: okCfg}
	panicky := ppsim.SweepPoint{
		Label:     "panicky",
		Config:    okCfg,
		NewSource: func() ppsim.Source { panic("boom") },
	}
	res := ppsim.RunSweep([]ppsim.SweepPoint{bad, good, missing, panicky}, 2)
	if res[0].Err == nil {
		t.Error("bad config should fail")
	}
	if res[1].Err != nil {
		t.Errorf("good point failed: %v", res[1].Err)
	}
	if res[2].Err == nil || !strings.Contains(res[2].Err.Error(), "no source factory") {
		t.Errorf("missing factory: %v", res[2].Err)
	}
	if res[3].Err == nil || !strings.Contains(res[3].Err.Error(), "panicked") {
		t.Errorf("panic not captured: %v", res[3].Err)
	}
}

// TestRunSweepMoreWorkersThanPoints drives the buffered feed path with the
// two failure modes combined: a requested worker count above the point count
// (clamped, so the extra workers never spin) and a panicking factory in the
// mix. The sweep must complete — not deadlock on the index channel — and
// report per-point outcomes in order.
func TestRunSweepMoreWorkersThanPoints(t *testing.T) {
	okCfg := ppsim.Config{N: 4, K: 4, RPrime: 2, Algorithm: ppsim.Algorithm{Name: "rr"}}
	pts := []ppsim.SweepPoint{
		{
			Label:     "panicky",
			Config:    okCfg,
			NewSource: func() ppsim.Source { panic("boom") },
		},
		{
			Label:     "good",
			Config:    okCfg,
			NewSource: func() ppsim.Source { return ppsim.NewBernoulli(4, 0.5, 50, 1) },
		},
	}
	res := ppsim.RunSweep(pts, 16)
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "panicked") {
		t.Errorf("panic not captured: %v", res[0].Err)
	}
	if res[1].Err != nil {
		t.Errorf("good point failed: %v", res[1].Err)
	}
	if res[1].Result.Report.Cells == 0 {
		t.Error("good point ran empty")
	}
}
