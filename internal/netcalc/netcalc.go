// Package netcalc provides the fragment of Cruz's network calculus the
// paper relies on (reference [9], "A calculus for network delay"): affine
// (token-bucket) arrival curves, rate-latency service curves, and the
// classical delay, backlog and output-burstiness bounds.
//
// The paper uses two of its corollaries directly: the burstiness factor B
// "is also an upper bound on the size of the buffer needed for any
// work-conserving switch" (Section 3, after Definition 3), and a
// work-conserving FCFS switch under (R, B) traffic delays cells at most B
// slots (used in Lemma 4's jitter argument). The experiment suite checks
// both predictions against measured executions.
package netcalc

import "fmt"

// Arrival is a token-bucket arrival curve alpha(t) = Burst + Rate*t:
// at most alpha(tau) cells arrive in any window of tau slots (tau > 0).
// The paper's (R, B) leaky-bucket traffic has Rate = R and Burst = B + R
// under this convention (a window of length tau contains at most
// tau*R + B cells and the window includes its first slot).
type Arrival struct {
	Rate  float64
	Burst float64
}

// FromLeakyBucket converts the paper's (R, B) constraint into the curve
// alpha(tau) = tau*R + B.
func FromLeakyBucket(r float64, b int64) Arrival {
	return Arrival{Rate: r, Burst: float64(b)}
}

// At evaluates alpha(tau) for tau >= 0 (alpha(0) = 0 by convention).
func (a Arrival) At(tau float64) float64 {
	if tau <= 0 {
		return 0
	}
	return a.Burst + a.Rate*tau
}

// Service is a rate-latency service curve beta(t) = Rate * max(0, t-Latency):
// in any backlogged period of length t the server delivers at least beta(t).
type Service struct {
	Rate    float64
	Latency float64
}

// At evaluates beta(t).
func (s Service) At(t float64) float64 {
	if t <= s.Latency {
		return 0
	}
	return s.Rate * (t - s.Latency)
}

// Validate reports nonsensical curves.
func (a Arrival) Validate() error {
	if a.Rate < 0 || a.Burst < 0 {
		return fmt.Errorf("netcalc: arrival curve needs nonnegative rate and burst, got (%g, %g)", a.Rate, a.Burst)
	}
	return nil
}

// Validate reports nonsensical curves.
func (s Service) Validate() error {
	if s.Rate <= 0 || s.Latency < 0 {
		return fmt.Errorf("netcalc: service curve needs positive rate and nonnegative latency, got (%g, %g)", s.Rate, s.Latency)
	}
	return nil
}

// DelayBound returns the maximum delay (the horizontal deviation between
// alpha and beta): Latency + Burst/Rate, finite only when the arrival rate
// does not exceed the service rate.
func DelayBound(a Arrival, s Service) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if a.Rate > s.Rate {
		return 0, fmt.Errorf("netcalc: arrival rate %g exceeds service rate %g: delay unbounded", a.Rate, s.Rate)
	}
	return s.Latency + a.Burst/s.Rate, nil
}

// BacklogBound returns the maximum backlog (the vertical deviation):
// Burst + Rate*Latency.
func BacklogBound(a Arrival, s Service) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if a.Rate > s.Rate {
		return 0, fmt.Errorf("netcalc: arrival rate %g exceeds service rate %g: backlog unbounded", a.Rate, s.Rate)
	}
	return a.Burst + a.Rate*s.Latency, nil
}

// Output returns the arrival curve of the departing stream (Cruz's output
// burstiness theorem): the rate is preserved and the burst inflates to
// Burst + Rate*Latency — the backlog bound, since everything queued can
// leave back-to-back.
func Output(a Arrival, s Service) (Arrival, error) {
	if _, err := BacklogBound(a, s); err != nil {
		return Arrival{}, err
	}
	return Arrival{Rate: a.Rate, Burst: a.Burst + a.Rate*s.Latency}, nil
}

// Convolve concatenates two rate-latency servers: the end-to-end service
// curve has the bottleneck rate and the summed latencies (min-plus
// convolution of rate-latency curves).
func Convolve(s1, s2 Service) (Service, error) {
	if err := s1.Validate(); err != nil {
		return Service{}, err
	}
	if err := s2.Validate(); err != nil {
		return Service{}, err
	}
	rate := s1.Rate
	if s2.Rate < rate {
		rate = s2.Rate
	}
	return Service{Rate: rate, Latency: s1.Latency + s2.Latency}, nil
}

// OQOutputPort is the service curve of one output of the work-conserving
// reference switch: rate R = 1 cell per slot, zero latency.
func OQOutputPort() Service { return Service{Rate: 1, Latency: 0} }

// PPSPlanePath is the service curve one plane offers a single output under
// the model's output constraint: one cell per r' slots once scheduled —
// rate 1/r'. Latency captures the worst wait for the line to free: r'-1.
func PPSPlanePath(rPrime int64) Service {
	return Service{Rate: 1 / float64(rPrime), Latency: float64(rPrime - 1)}
}

// PPSAggregate is the aggregate service K planes give one output when the
// load is spread across all of them: rate K/r' = S, latency r'-1. The
// concentration scenarios of the paper are precisely executions where this
// aggregate is not realized because a demultiplexor maps everything onto a
// single PPSPlanePath.
func PPSAggregate(k int, rPrime int64) Service {
	return Service{Rate: float64(k) / float64(rPrime), Latency: float64(rPrime - 1)}
}
