package netcalc

import (
	"math"
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

func TestCurveEvaluation(t *testing.T) {
	a := Arrival{Rate: 0.5, Burst: 3}
	if a.At(0) != 0 || a.At(-1) != 0 {
		t.Error("alpha(<=0) must be 0")
	}
	if a.At(10) != 8 {
		t.Errorf("alpha(10) = %f", a.At(10))
	}
	s := Service{Rate: 2, Latency: 3}
	if s.At(3) != 0 || s.At(2) != 0 {
		t.Error("beta within latency must be 0")
	}
	if s.At(5) != 4 {
		t.Errorf("beta(5) = %f", s.At(5))
	}
}

func TestBounds(t *testing.T) {
	a := Arrival{Rate: 0.5, Burst: 4}
	s := Service{Rate: 1, Latency: 2}
	d, err := DelayBound(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 { // 2 + 4/1
		t.Errorf("DelayBound = %f", d)
	}
	b, err := BacklogBound(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if b != 5 { // 4 + 0.5*2
		t.Errorf("BacklogBound = %f", b)
	}
	out, err := Output(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rate != 0.5 || out.Burst != 5 {
		t.Errorf("Output = %+v", out)
	}
}

func TestUnstableSystemRejected(t *testing.T) {
	a := Arrival{Rate: 2, Burst: 0}
	s := Service{Rate: 1, Latency: 0}
	if _, err := DelayBound(a, s); err == nil {
		t.Error("overloaded server must have unbounded delay")
	}
	if _, err := BacklogBound(a, s); err == nil {
		t.Error("overloaded server must have unbounded backlog")
	}
	if _, err := Output(a, s); err == nil {
		t.Error("overloaded server has no output curve")
	}
}

func TestValidation(t *testing.T) {
	if err := (Arrival{Rate: -1}).Validate(); err == nil {
		t.Error("negative rate must be rejected")
	}
	if err := (Service{Rate: 0}).Validate(); err == nil {
		t.Error("zero service rate must be rejected")
	}
	if err := (Service{Rate: 1, Latency: -1}).Validate(); err == nil {
		t.Error("negative latency must be rejected")
	}
	if _, err := DelayBound(Arrival{Rate: -1}, OQOutputPort()); err == nil {
		t.Error("DelayBound must propagate validation")
	}
}

func TestConvolve(t *testing.T) {
	s, err := Convolve(Service{Rate: 2, Latency: 1}, Service{Rate: 1, Latency: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate != 1 || s.Latency != 4 {
		t.Errorf("Convolve = %+v", s)
	}
	if _, err := Convolve(Service{}, Service{Rate: 1}); err == nil {
		t.Error("invalid operand must be rejected")
	}
}

func TestPaperCorollaries(t *testing.T) {
	// The paper's two uses of the calculus:
	// 1. A work-conserving switch under (R, B) traffic needs buffers of
	//    at most B.
	b, err := BacklogBound(FromLeakyBucket(1, 7), OQOutputPort())
	if err != nil {
		t.Fatal(err)
	}
	if b != 7 {
		t.Errorf("backlog bound %f, want B = 7", b)
	}
	// 2. The same switch delays cells at most B slots.
	d, err := DelayBound(FromLeakyBucket(1, 7), OQOutputPort())
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Errorf("delay bound %f, want B = 7", d)
	}
}

func TestConcentrationIsUnstableSinglePlane(t *testing.T) {
	// Lemma 4 in calculus terms: rate-R traffic into a single plane path
	// (rate 1/r') is unstable, while the K-plane aggregate absorbs it.
	fullRate := FromLeakyBucket(1, 0)
	if _, err := DelayBound(fullRate, PPSPlanePath(2)); err == nil {
		t.Error("one plane cannot carry rate R: expected unbounded delay")
	}
	d, err := DelayBound(fullRate, PPSAggregate(4, 2)) // S = 2
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 { // latency r'-1 = 1, burst 0
		t.Errorf("aggregate delay bound %f, want 1", d)
	}
}

// Property: the measured worst delay and backlog of the shadow switch never
// exceed the calculus bounds, for random shaped traffic.
func TestShadowRespectsBounds(t *testing.T) {
	prop := func(seed int64, bRaw uint8) bool {
		const n = 4
		b := int64(bRaw % 6)
		demand := traffic.NewRegulator(n, b, traffic.NewBernoulli(n, 0.7, 150, seed))
		sh := shadow.New(n)
		st := cell.NewStamper()
		dBound, err := DelayBound(FromLeakyBucket(1, b), OQOutputPort())
		if err != nil {
			return false
		}
		qBound, err := BacklogBound(FromLeakyBucket(1, b), OQOutputPort())
		if err != nil {
			return false
		}
		var buf []traffic.Arrival
		var deps []cell.Cell
		for slot := cell.Time(0); slot < 3000; slot++ {
			buf = demand.Arrivals(slot, nil)
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			deps = sh.Step(slot, cells, deps[:0])
			for _, d := range deps {
				if float64(d.QueuingDelay()) > dBound {
					return false
				}
			}
			for j := 0; j < n; j++ {
				if float64(sh.QueueLen(cell.Port(j))) > qBound {
					return false
				}
			}
			if slot > 150 && sh.Drained() {
				break
			}
		}
		return sh.Drained()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFromLeakyBucket(t *testing.T) {
	a := FromLeakyBucket(1, 5)
	// A window of tau slots holds at most tau*R + B cells.
	if got := a.At(10); math.Abs(got-15) > 1e-12 {
		t.Errorf("alpha(10) = %f, want 15", got)
	}
}
