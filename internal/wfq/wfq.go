// Package wfq implements weighted fair queueing, the canonical
// guaranteed-rate service discipline behind the QoS framing of the paper's
// introduction ("The need to support a large variety of applications with
// quality of service (QoS) guarantees...", citing Zhang's survey of service
// disciplines). It is the discipline a QoS-aware deployment would run at
// the external output links downstream of the switch: the PPS delivers
// cells to the output, and WFQ decides which flow's cell uses the line.
//
// The implementation is the standard virtual-time approximation of
// generalized processor sharing (PGPS): each backlogged flow f with weight
// w_f receives service at rate w_f / sum of backlogged weights; a cell of
// length 1 arriving to flow f is stamped with a virtual finish time
// F = max(V(now), F_prev) + 1/w_f, and cells are served in increasing
// finish-time order. Per-flow delay is then bounded independently of the
// other flows' arrival behaviour — the isolation property experiment E27
// contrasts with FCFS.
package wfq

import (
	"container/heap"
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// Scheduler is a single-server WFQ over a fixed set of flows.
type Scheduler struct {
	weights map[cell.Flow]float64
	queues  map[cell.Flow]*queue.FIFO[item]
	lastF   map[cell.Flow]float64
	ready   itemHeap
	// Virtual time state.
	vtime      float64
	vlast      cell.Time // real time of the last virtual-time update
	backlogSum float64   // sum of weights of backlogged flows
	backlogged map[cell.Flow]bool
	served     uint64
}

type item struct {
	c      cell.Cell
	finish float64
}

// New returns an empty scheduler.
func New() *Scheduler {
	return &Scheduler{
		weights:    make(map[cell.Flow]float64),
		queues:     make(map[cell.Flow]*queue.FIFO[item]),
		lastF:      make(map[cell.Flow]float64),
		backlogged: make(map[cell.Flow]bool),
	}
}

// AddFlow registers a flow with a positive weight. Flows must be registered
// before their first cell.
func (s *Scheduler) AddFlow(f cell.Flow, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("wfq: weight must be positive, got %g", weight)
	}
	if _, ok := s.weights[f]; ok {
		return fmt.Errorf("wfq: flow %v already registered", f)
	}
	s.weights[f] = weight
	s.queues[f] = queue.New[item](4)
	return nil
}

// advance moves virtual time to real slot t: V grows at rate
// 1/backlogSum while any flow is backlogged (unit-capacity server).
func (s *Scheduler) advance(t cell.Time) {
	if t > s.vlast {
		if s.backlogSum > 0 {
			s.vtime += float64(t-s.vlast) / s.backlogSum
		}
		s.vlast = t
	}
}

// Enqueue accepts a cell of flow c.Flow at slot t.
func (s *Scheduler) Enqueue(t cell.Time, c cell.Cell) error {
	w, ok := s.weights[c.Flow]
	if !ok {
		return fmt.Errorf("wfq: flow %v not registered", c.Flow)
	}
	s.advance(t)
	start := s.vtime
	if prev := s.lastF[c.Flow]; prev > start {
		start = prev
	}
	fin := start + 1/w
	s.lastF[c.Flow] = fin
	q := s.queues[c.Flow]
	q.Push(item{c: c, finish: fin})
	if !s.backlogged[c.Flow] {
		s.backlogged[c.Flow] = true
		s.backlogSum += w
	}
	if q.Len() == 1 {
		heap.Push(&s.ready, item{c: c, finish: fin})
	}
	return nil
}

// Dequeue serves one cell at slot t (the smallest virtual finish time among
// head-of-line cells); ok is false when idle.
func (s *Scheduler) Dequeue(t cell.Time) (cell.Cell, bool) {
	s.advance(t)
	if len(s.ready) == 0 {
		return cell.Cell{}, false
	}
	it := heap.Pop(&s.ready).(item)
	q := s.queues[it.c.Flow]
	q.Pop()
	s.served++
	if q.Empty() {
		s.backlogged[it.c.Flow] = false
		s.backlogSum -= s.weights[it.c.Flow]
		if s.backlogSum < 1e-12 {
			s.backlogSum = 0
		}
	} else {
		heap.Push(&s.ready, q.Peek())
	}
	out := it.c
	out.Depart = t
	return out, true
}

// Backlog reports queued cells.
func (s *Scheduler) Backlog() int {
	n := 0
	for _, q := range s.queues {
		n += q.Len()
	}
	return n
}

// Served reports cells served so far.
func (s *Scheduler) Served() uint64 { return s.served }

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].c.Seq < h[j].c.Seq
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
