package wfq

import (
	"testing"

	"ppsim/internal/cell"
)

func mk(st *cell.Stamper, f cell.Flow, t cell.Time) cell.Cell {
	return st.Stamp(f, t)
}

func TestValidation(t *testing.T) {
	s := New()
	f := cell.Flow{In: 0, Out: 0}
	if err := s.AddFlow(f, 0); err == nil {
		t.Error("zero weight must be rejected")
	}
	if err := s.AddFlow(f, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFlow(f, 1); err == nil {
		t.Error("duplicate registration must be rejected")
	}
	st := cell.NewStamper()
	if err := s.Enqueue(0, mk(st, cell.Flow{In: 9, Out: 9}, 0)); err == nil {
		t.Error("unregistered flow must be rejected")
	}
}

func TestSingleFlowFIFO(t *testing.T) {
	s := New()
	f := cell.Flow{In: 0, Out: 0}
	s.AddFlow(f, 1)
	st := cell.NewStamper()
	for i := cell.Time(0); i < 5; i++ {
		if err := s.Enqueue(i, mk(st, f, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		c, ok := s.Dequeue(cell.Time(10 + i))
		if !ok || c.FlowSeq != uint64(i) {
			t.Fatalf("dequeue %d: %v %v", i, c, ok)
		}
	}
	if _, ok := s.Dequeue(100); ok {
		t.Error("empty scheduler must be idle")
	}
}

func TestWeightedShareUnderSaturation(t *testing.T) {
	// Two permanently backlogged flows with weights 3:1 must be served
	// ~3:1.
	s := New()
	heavy := cell.Flow{In: 0, Out: 0}
	light := cell.Flow{In: 1, Out: 0}
	s.AddFlow(heavy, 3)
	s.AddFlow(light, 1)
	st := cell.NewStamper()
	for i := cell.Time(0); i < 400; i++ {
		s.Enqueue(0, mk(st, heavy, 0))
		s.Enqueue(0, mk(st, light, 0))
	}
	counts := map[cell.Flow]int{}
	for slot := cell.Time(0); slot < 200; slot++ {
		c, ok := s.Dequeue(slot)
		if !ok {
			t.Fatal("scheduler idle while backlogged")
		}
		counts[c.Flow]++
	}
	if counts[heavy] < 140 || counts[heavy] > 160 {
		t.Errorf("heavy flow served %d of 200, want ~150", counts[heavy])
	}
	if counts[heavy]+counts[light] != 200 {
		t.Error("work conservation violated")
	}
}

func TestIsolationFromBursts(t *testing.T) {
	// A light flow sending one cell per 4 slots keeps low delay even when
	// a misbehaving flow dumps a huge burst — the WFQ isolation property.
	// Under FCFS the same light cell would wait behind the entire burst.
	s := New()
	light := cell.Flow{In: 0, Out: 0}
	rogue := cell.Flow{In: 1, Out: 0}
	s.AddFlow(light, 1)
	s.AddFlow(rogue, 1)
	st := cell.NewStamper()
	// Burst of 100 rogue cells at slot 0.
	for i := 0; i < 100; i++ {
		s.Enqueue(0, mk(st, rogue, 0))
	}
	var worstLight cell.Time
	slot := cell.Time(0)
	for sent := 0; sent < 20; {
		if slot%4 == 0 {
			s.Enqueue(slot, mk(st, light, slot))
			sent++
		}
		if c, ok := s.Dequeue(slot); ok && c.Flow == light {
			if d := c.Depart - c.Arrive; d > worstLight {
				worstLight = d
			}
		}
		slot++
	}
	// Drain any remaining light cells.
	for s.Backlog() > 0 {
		if c, ok := s.Dequeue(slot); ok && c.Flow == light {
			if d := c.Depart - c.Arrive; d > worstLight {
				worstLight = d
			}
		}
		slot++
	}
	// With equal weights the light flow owns half the line: its cells
	// wait O(1/phi) = ~2 slots, not O(burst).
	if worstLight > 4 {
		t.Errorf("light flow delayed %d slots behind a rogue burst; WFQ must isolate", worstLight)
	}
}

func TestWorkConservation(t *testing.T) {
	s := New()
	a := cell.Flow{In: 0, Out: 0}
	s.AddFlow(a, 2)
	st := cell.NewStamper()
	s.Enqueue(0, mk(st, a, 0))
	if _, ok := s.Dequeue(0); !ok {
		t.Error("WFQ must serve a backlogged flow immediately")
	}
	if s.Served() != 1 {
		t.Errorf("Served = %d", s.Served())
	}
	if s.Backlog() != 0 {
		t.Errorf("Backlog = %d", s.Backlog())
	}
}
