package metrics

import (
	"strings"
	"testing"

	"ppsim/internal/cell"
)

func dep(seq, flowSeq uint64, f cell.Flow, arrive, depart cell.Time) cell.Cell {
	c := cell.New(seq, flowSeq, f, arrive)
	c.Depart = depart
	return c
}

func TestRQDComputation(t *testing.T) {
	r := NewRecorder()
	f := cell.Flow{In: 0, Out: 0}
	// Cell 0: shadow departs at 0, PPS at 4 -> RQD 4.
	r.ShadowDepart(dep(0, 0, f, 0, 0))
	r.PPSDepart(dep(0, 0, f, 0, 4))
	// Cell 1: PPS first (order independence), RQD -1 (overtaking).
	r.PPSDepart(dep(1, 1, f, 1, 1))
	r.ShadowDepart(dep(1, 1, f, 1, 2))
	if r.Matched() != 2 {
		t.Fatalf("Matched = %d", r.Matched())
	}
	rep := r.Report()
	if rep.MaxRQD != 4 {
		t.Errorf("MaxRQD = %d, want 4", rep.MaxRQD)
	}
	if rep.MeanRQD != 1.5 {
		t.Errorf("MeanRQD = %f, want 1.5", rep.MeanRQD)
	}
	if rep.Cells != 2 || rep.Flows != 1 {
		t.Errorf("Cells/Flows = %d/%d", rep.Cells, rep.Flows)
	}
	if rep.MaxPPSDelay != 4 || rep.MaxShadowDelay != 1 {
		t.Errorf("MaxDelay pps=%d shadow=%d", rep.MaxPPSDelay, rep.MaxShadowDelay)
	}
}

func TestJitterComputation(t *testing.T) {
	r := NewRecorder()
	f := cell.Flow{In: 1, Out: 2}
	// Shadow delays: 0 and 1 -> jitter 1. PPS delays: 0 and 7 -> jitter 7.
	r.ShadowDepart(dep(0, 0, f, 0, 0))
	r.ShadowDepart(dep(1, 1, f, 5, 6))
	r.PPSDepart(dep(0, 0, f, 0, 0))
	r.PPSDepart(dep(1, 1, f, 5, 12))
	rep := r.Report()
	if rep.MaxPPSJitter != 7 {
		t.Errorf("MaxPPSJitter = %d, want 7", rep.MaxPPSJitter)
	}
	if rep.RDJ != 6 {
		t.Errorf("RDJ = %d, want 6", rep.RDJ)
	}
}

func TestSingleCellFlowHasZeroJitter(t *testing.T) {
	r := NewRecorder()
	f := cell.Flow{In: 0, Out: 1}
	r.ShadowDepart(dep(0, 0, f, 0, 0))
	r.PPSDepart(dep(0, 0, f, 0, 9))
	rep := r.Report()
	if rep.RDJ != 0 || rep.MaxPPSJitter != 0 {
		t.Errorf("single-cell jitter should be 0: RDJ=%d jitter=%d", rep.RDJ, rep.MaxPPSJitter)
	}
}

func TestReportPanicsOnUnmatched(t *testing.T) {
	r := NewRecorder()
	r.ShadowDepart(dep(0, 0, cell.Flow{}, 0, 0))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unmatched departures")
		}
	}()
	r.Report()
}

func TestDoubleDepartPanics(t *testing.T) {
	r := NewRecorder()
	c := dep(0, 0, cell.Flow{}, 0, 0)
	r.ShadowDepart(c)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate departure")
		}
	}()
	r.ShadowDepart(c)
}

func TestReportString(t *testing.T) {
	r := NewRecorder()
	r.ShadowDepart(dep(0, 0, cell.Flow{}, 0, 0))
	r.PPSDepart(dep(0, 0, cell.Flow{}, 0, 3))
	s := r.Report().String()
	if !strings.Contains(s, "maxRQD=3") {
		t.Errorf("String = %q", s)
	}
}

func TestStageDecomposition(t *testing.T) {
	r := NewRecorder()
	f := cell.Flow{In: 0, Out: 0}
	c := cell.New(0, 0, f, 10)
	c.Dispatch = 13 // 3 slots in the input buffer
	c.AtOutput = 20 // 7 slots in the plane
	c.Depart = 22   // 2 slots resequencing
	r.PPSDepart(c)
	sh := dep(0, 0, f, 10, 11)
	r.ShadowDepart(sh)
	rep := r.Report()
	if rep.MeanInputWait != 3 || rep.MeanPlaneWait != 7 || rep.MeanOutputWait != 2 {
		t.Errorf("stage means = %f/%f/%f, want 3/7/2",
			rep.MeanInputWait, rep.MeanPlaneWait, rep.MeanOutputWait)
	}
	if rep.MaxInputWait != 3 || rep.MaxPlaneWait != 7 || rep.MaxOutputWait != 2 {
		t.Errorf("stage maxima = %d/%d/%d, want 3/7/2",
			rep.MaxInputWait, rep.MaxPlaneWait, rep.MaxOutputWait)
	}
	// Stage sum equals the total PPS delay.
	if got := rep.MeanInputWait + rep.MeanPlaneWait + rep.MeanOutputWait; got != 12 {
		t.Errorf("stage sum %f != total delay 12", got)
	}
}

func TestStageDecompositionSkipsUnstamped(t *testing.T) {
	// Cells without intermediate stamps (e.g. a foreign switch) must not
	// poison the stage summaries.
	r := NewRecorder()
	f := cell.Flow{In: 0, Out: 0}
	r.PPSDepart(dep(0, 0, f, 0, 5)) // no Dispatch/AtOutput stamps
	r.ShadowDepart(dep(0, 0, f, 0, 0))
	rep := r.Report()
	if rep.MeanInputWait != 0 || rep.MaxPlaneWait != 0 {
		t.Errorf("unstamped cells leaked into stage stats: %+v", rep)
	}
}

func TestP99(t *testing.T) {
	r := NewRecorder()
	f := cell.Flow{In: 0, Out: 0}
	for i := uint64(0); i < 100; i++ {
		d := cell.Time(1)
		if i == 99 {
			d = 50
		}
		r.ShadowDepart(dep(i, i, f, cell.Time(i*10), cell.Time(i*10)))
		r.PPSDepart(dep(i, i, f, cell.Time(i*10), cell.Time(i*10)+d))
	}
	rep := r.Report()
	if rep.P99RQD != 1 {
		t.Errorf("P99RQD = %d, want 1", rep.P99RQD)
	}
	if rep.MaxRQD != 50 {
		t.Errorf("MaxRQD = %d, want 50", rep.MaxRQD)
	}
}
