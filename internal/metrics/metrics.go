// Package metrics computes the paper's figures of merit from matched
// executions of a PPS and its shadow reference switch.
//
//   - Relative queuing delay (RQD) of a cell: its PPS departure slot minus
//     its shadow departure slot (propagation-free accounting; per-cell RQD
//     can be negative when the PPS overtakes the FCFS order for an
//     uncontended cell). The RQD of an execution is the maximum over cells.
//   - Per-flow delay jitter: the maximal difference in queuing delay
//     between two cells of the same flow. The relative delay jitter (RDJ)
//     of an execution is the maximum over flows of (PPS jitter − shadow
//     jitter).
package metrics

import (
	"fmt"
	"strings"

	"ppsim/internal/cell"
	"ppsim/internal/obs"
	"ppsim/internal/stats"
)

// waitAccum streams count/sum/max of one stage-wait distribution. The
// report only needs mean and max, so no samples are retained — unlike
// stats.Summary this never allocates, keeping the per-slot record path
// allocation-free.
type waitAccum struct {
	n   uint64
	sum int64
	max int64
}

func (w *waitAccum) add(v int64) {
	w.n++
	w.sum += v
	if v > w.max {
		w.max = v
	}
}

func (w *waitAccum) mean() float64 {
	if w.n == 0 {
		return 0
	}
	return float64(w.sum) / float64(w.n)
}

// minmax tracks delay extremes for one flow in one switch.
type minmax struct {
	min, max cell.Time
	n        int
}

func (m *minmax) add(v cell.Time) {
	if m.n == 0 || v < m.min {
		m.min = v
	}
	if m.n == 0 || v > m.max {
		m.max = v
	}
	m.n++
}

func (m *minmax) jitter() cell.Time {
	if m.n < 2 {
		return 0
	}
	return m.max - m.min
}

// dropMark flags a Seq the PPS dropped (DropCount fault policy) in the
// ppsDep table: the cell will never depart the PPS, and recording either a
// departure or a second drop for it is a harness bug.
const dropMark = cell.Time(-2)

// expiredMark flags a Seq whose cell left the PPS after its deadline under
// deadline-drop admission: the delivery is reclassified as expired at
// egress and excluded from every delay statistic, like a fault drop.
const expiredMark = cell.Time(-3)

// Recorder joins the two departure streams by global sequence number.
// Departures may be reported in any order and from either switch first.
// Cells the PPS dropped (failed planes under the DropCount policy) are
// reported through PPSDrop; they depart the shadow switch — the reference
// never drops — but are excluded from every delay statistic.
type Recorder struct {
	shadowDep []cell.Time // indexed by Seq; cell.None = not yet departed
	ppsDep    []cell.Time
	arriveAt  []cell.Time

	drops         uint64
	dropsPerPlane []uint64
	dropsPerInput []uint64

	rqd stats.Summary

	// Per-flow delay extremes, indexed by a compact flow id assigned at
	// first sight. The id table is a dense n*n array when the recorder was
	// sized (NewRecorderSized — the harness path; profiling showed the two
	// per-departure map lookups near the top of the slot profile) and a map
	// otherwise; out-of-range flows of a sized recorder fall back to the
	// map, so behavior is identical either way.
	flowN     int
	flowDense []int32 // n*n → flow id + 1; 0 = unassigned
	flowIDs   map[cell.Flow]int32
	flowPPS   []minmax // flow id → PPS delay extremes
	flowSh    []minmax // flow id → shadow delay extremes
	ppsFlows  int      // flows with >= 1 PPS departure (Report.Flows)

	// Stage decomposition of PPS delay: input buffer, plane queue + line,
	// output resequencing buffer.
	inputWait  waitAccum
	planeWait  waitAccum
	outputWait waitAccum

	// delays holds the streaming log-bucketed histograms behind the report's
	// percentile block: RQD, the three-stage decomposition, the total PPS
	// delay and the per-output inter-departure gap. Recording is O(1) and
	// allocation-free; the recorder is fed from one goroutine in the serial
	// order (the stage-parallel engine merges departures before recording),
	// so the histograms are bit-identical across engines.
	delays *obs.DelaySet
	// lastDepart remembers, per output port, the slot of the previous PPS
	// departure, so consecutive departures yield inter-departure gaps.
	lastDepart []cell.Time

	matched  uint64
	maxRQD   cell.Time
	maxRQDok bool

	// Admission accounting. offered and admitted are counted for every
	// arrival the harness feeds, whether or not an admission policy is
	// configured — a bare run and an always-admit run therefore produce
	// byte-identical reports. rejected and the expiry counters only move
	// when a policy actually refuses cells.
	offered          uint64
	admitted         uint64
	rejected         uint64
	rejectedPerInput []uint64
	expiredAdmit     uint64
	expiredReseq     uint64
	onTime           uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		flowIDs: make(map[cell.Flow]int32),
		delays:  obs.NewDelaySet(),
	}
}

// recorderDenseMax caps the dense flow-id table at 1M flows (4 MiB), i.e.
// n <= 1024; larger switches keep the map.
const recorderDenseMax = 1 << 20

// NewRecorderSized returns a recorder whose flow-id table is a dense n*n
// array when n is positive and small enough — the harness always knows n, so
// its per-departure path avoids the map entirely.
func NewRecorderSized(n int) *Recorder {
	r := NewRecorder()
	if n > 0 && n*n <= recorderDenseMax {
		r.flowN = n
		r.flowDense = make([]int32, n*n)
	}
	return r
}

// flowID returns the compact id of flow f, assigning the next id on first
// sight (and growing the per-id minmax tables in step).
func (r *Recorder) flowID(f cell.Flow) int {
	if uint32(f.In) < uint32(r.flowN) && uint32(f.Out) < uint32(r.flowN) {
		idx := int(f.In)*r.flowN + int(f.Out)
		if id := r.flowDense[idx]; id != 0 {
			return int(id - 1)
		}
		id := r.newFlowID()
		r.flowDense[idx] = int32(id + 1)
		return id
	}
	if id, ok := r.flowIDs[f]; ok {
		return int(id)
	}
	id := r.newFlowID()
	r.flowIDs[f] = int32(id)
	return id
}

func (r *Recorder) newFlowID() int {
	id := len(r.flowPPS)
	r.flowPPS = append(r.flowPPS, minmax{})
	r.flowSh = append(r.flowSh, minmax{})
	return id
}

func grow(s []cell.Time, idx uint64) []cell.Time {
	for uint64(len(s)) <= idx {
		s = append(s, cell.None)
	}
	return s
}

func reserveTimes(s []cell.Time, n int) []cell.Time {
	if cap(s) >= n {
		return s
	}
	out := make([]cell.Time, len(s), n)
	copy(out, s)
	return out
}

// Reserve pre-sizes the per-cell tables for n total cells. Callers that know
// (or can bound) the cell count — benchmarks, the allocation guard — use it
// to keep the per-departure record path free of amortized slice growth.
func (r *Recorder) Reserve(n int) {
	r.shadowDep = reserveTimes(r.shadowDep, n)
	r.ppsDep = reserveTimes(r.ppsDep, n)
	r.arriveAt = reserveTimes(r.arriveAt, n)
	r.rqd.Reserve(n)
}

// ShadowDepart records a departure from the reference switch.
func (r *Recorder) ShadowDepart(c cell.Cell) {
	r.shadowDep = grow(r.shadowDep, c.Seq)
	r.arriveAt = grow(r.arriveAt, c.Seq)
	if r.shadowDep[c.Seq] != cell.None {
		panic(fmt.Sprintf("metrics: shadow departure of cell %d recorded twice", c.Seq))
	}
	r.shadowDep[c.Seq] = c.Depart
	r.arriveAt[c.Seq] = c.Arrive
	r.flowSh[r.flowID(c.Flow)].add(c.Depart - c.Arrive)
	r.tryMatch(c.Seq)
}

// PPSDepart records a departure from the PPS.
func (r *Recorder) PPSDepart(c cell.Cell) {
	r.ppsDep = grow(r.ppsDep, c.Seq)
	if r.ppsDep[c.Seq] != cell.None {
		panic(fmt.Sprintf("metrics: PPS departure of cell %d recorded twice", c.Seq))
	}
	r.ppsDep[c.Seq] = c.Depart
	mm := &r.flowPPS[r.flowID(c.Flow)]
	if mm.n == 0 {
		r.ppsFlows++
	}
	mm.add(c.Depart - c.Arrive)
	// Stage decomposition, when the intermediate stamps are present (the
	// fabric always sets them; foreign departures may not).
	if c.Dispatch != cell.None && c.AtOutput != cell.None {
		r.inputWait.add(int64(c.Dispatch - c.Arrive))
		r.planeWait.add(int64(c.AtOutput - c.Dispatch))
		r.outputWait.add(int64(c.Depart - c.AtOutput))
		r.delays.Demux.Record(int64(c.Dispatch - c.Arrive))
		r.delays.Plane.Record(int64(c.AtOutput - c.Dispatch))
		r.delays.Reseq.Record(int64(c.Depart - c.AtOutput))
	}
	r.delays.Total.Record(int64(c.Depart - c.Arrive))
	out := uint64(c.Flow.Out)
	r.lastDepart = grow(r.lastDepart, out)
	if last := r.lastDepart[out]; last != cell.None {
		r.delays.Gap.Record(int64(c.Depart - last))
	}
	r.lastDepart[out] = c.Depart
	r.tryMatch(c.Seq)
}

// PPSDrop records that the PPS lost cell c to a failed plane (c.Via names
// the plane). The cell still departs the shadow switch; the drop satisfies
// the recorder's every-cell-accounted check in its place.
func (r *Recorder) PPSDrop(c cell.Cell) {
	r.ppsDep = grow(r.ppsDep, c.Seq)
	if r.ppsDep[c.Seq] != cell.None {
		panic(fmt.Sprintf("metrics: PPS fate of cell %d recorded twice", c.Seq))
	}
	r.ppsDep[c.Seq] = dropMark
	r.drops++
	for int(c.Via) >= len(r.dropsPerPlane) {
		r.dropsPerPlane = append(r.dropsPerPlane, 0)
	}
	r.dropsPerPlane[c.Via]++
	for int(c.Flow.In) >= len(r.dropsPerInput) {
		r.dropsPerInput = append(r.dropsPerInput, 0)
	}
	r.dropsPerInput[c.Flow.In]++
}

// Drops reports the number of cells the PPS dropped so far.
func (r *Recorder) Drops() uint64 { return r.drops }

// OfferCell counts one arrival presented to admission. The harness calls it
// for every arrival of every run — with or without a policy — so admission
// bookkeeping never changes a report shape.
func (r *Recorder) OfferCell() { r.offered++ }

// AdmitCell counts one arrival the policy (or the always-admit default)
// let into the switch; the cell is stamped and fed to both switches.
func (r *Recorder) AdmitCell() { r.admitted++ }

// RejectCell counts one arrival a token bucket refused on input in. The
// cell is never stamped; neither switch sees it.
func (r *Recorder) RejectCell(in cell.Port) {
	r.rejected++
	for int(in) >= len(r.rejectedPerInput) {
		r.rejectedPerInput = append(r.rejectedPerInput, 0)
	}
	r.rejectedPerInput[in]++
}

// ExpireAtAdmission counts one arrival that was already past its deadline
// when it reached the switch; like a rejection, it is never stamped.
func (r *Recorder) ExpireAtAdmission() { r.expiredAdmit++ }

// PPSExpired reclassifies a PPS delivery that happened after the cell's
// deadline under deadline-drop admission: it satisfies the cell's slot in
// the conservation audit (the shadow still departs it) but contributes to
// no delay statistic.
func (r *Recorder) PPSExpired(c cell.Cell) {
	r.ppsDep = grow(r.ppsDep, c.Seq)
	if r.ppsDep[c.Seq] != cell.None {
		panic(fmt.Sprintf("metrics: PPS fate of cell %d recorded twice", c.Seq))
	}
	r.ppsDep[c.Seq] = expiredMark
	r.expiredReseq++
}

// OnTimeCell counts one PPS delivery that met its deadline (cells without a
// deadline stamp are on time by definition). The harness calls it alongside
// PPSDepart so OnTimeFraction = on-time deliveries / offered cells.
func (r *Recorder) OnTimeCell() { r.onTime++ }

// AdmittedTotal, RejectedTotal and ExpiredTotal expose the live admission
// counters for the per-slot probes and the telemetry aggregator.
func (r *Recorder) AdmittedTotal() uint64 { return r.admitted }

// RejectedTotal reports arrivals refused by a token bucket so far.
func (r *Recorder) RejectedTotal() uint64 { return r.rejected }

// ExpiredTotal reports deadline expiries so far (at admission and egress).
func (r *Recorder) ExpiredTotal() uint64 { return r.expiredAdmit + r.expiredReseq }

func (r *Recorder) tryMatch(seq uint64) {
	if uint64(len(r.shadowDep)) <= seq || uint64(len(r.ppsDep)) <= seq {
		return
	}
	sd, pd := r.shadowDep[seq], r.ppsDep[seq]
	if sd == cell.None || pd == cell.None || pd == dropMark || pd == expiredMark {
		return
	}
	d := pd - sd
	r.rqd.Add(int64(d))
	r.delays.RQD.Record(int64(d))
	if !r.maxRQDok || d > r.maxRQD {
		r.maxRQD, r.maxRQDok = d, true
	}
	r.matched++
}

// Matched reports how many cells have departed both switches.
func (r *Recorder) Matched() uint64 { return r.matched }

// Delays exposes the live delay-attribution histograms. The harness flushes
// them into the telemetry aggregator mid-run; they must only be read from
// the goroutine feeding the recorder.
func (r *Recorder) Delays() *obs.DelaySet { return r.delays }

// RQD returns the relative queuing delay of cell seq; ok is false until
// both switches have reported its departure. The per-slot front-RQD probe
// uses it to sample the delay of the departing front as the run unfolds.
func (r *Recorder) RQD(seq uint64) (cell.Time, bool) {
	if uint64(len(r.shadowDep)) <= seq || uint64(len(r.ppsDep)) <= seq {
		return 0, false
	}
	sd, pd := r.shadowDep[seq], r.ppsDep[seq]
	if sd == cell.None || pd == cell.None || pd == dropMark || pd == expiredMark {
		return 0, false
	}
	return pd - sd, true
}

// Report summarizes an execution.
type Report struct {
	// Cells is the number of matched cells.
	Cells uint64
	// MaxRQD is the relative queuing delay of the execution.
	MaxRQD cell.Time
	// MeanRQD is the mean per-cell relative queuing delay.
	MeanRQD float64
	// P50RQD, P99RQD and P999RQD are exact nearest-rank percentiles of the
	// per-cell relative queuing delay, from the retained sample set.
	P50RQD  cell.Time
	P99RQD  cell.Time
	P999RQD cell.Time
	// MaxPPSDelay is the largest absolute queuing delay in the PPS.
	MaxPPSDelay cell.Time
	// MaxShadowDelay is the largest absolute queuing delay in the shadow.
	MaxShadowDelay cell.Time
	// RDJ is the relative delay jitter: max over flows of
	// (PPS jitter - shadow jitter).
	RDJ cell.Time
	// MaxPPSJitter is the largest per-flow jitter inside the PPS.
	MaxPPSJitter cell.Time
	// Flows is the number of distinct flows observed.
	Flows int
	// Stage decomposition of the PPS delay (means and maxima per cell):
	// time in the input-port buffer, time in the plane (queue plus the
	// line transmissions on both sides), and time in the output-port
	// resequencing buffer.
	MeanInputWait  float64
	MeanPlaneWait  float64
	MeanOutputWait float64
	MaxInputWait   cell.Time
	MaxPlaneWait   cell.Time
	MaxOutputWait  cell.Time
	// Drops is the number of cells the PPS lost to failed planes under the
	// DropCount fault policy (always 0 under Abort), with per-plane and
	// per-input breakdowns (nil when no drops occurred). Dropped cells are
	// excluded from every delay statistic above.
	Drops         uint64
	DropsPerPlane []uint64
	DropsPerInput []uint64
	// Admission accounting. Offered counts every arrival presented to the
	// switch; Admitted those let in (stamped and fed to both switches).
	// Rejected counts token-bucket refusals (per-input breakdown nil when
	// none); ExpiredAdmit arrivals already past their deadline at admission;
	// ExpiredReseq deliveries reclassified as late at egress. Conservation:
	// Offered == Admitted + Rejected + ExpiredAdmit, and every admitted cell
	// is matched, dropped or expired at egress.
	Offered          uint64
	Admitted         uint64
	Rejected         uint64
	RejectedPerInput []uint64
	ExpiredAdmit     uint64
	ExpiredReseq     uint64
	// OnTime counts PPS deliveries that met their deadline (no-deadline
	// cells are on time by definition); OnTimeFraction is OnTime / Offered —
	// the timely-throughput figure of merit (0 when nothing was offered).
	OnTime         uint64
	OnTimeFraction float64
	// Percentiles is the streaming-histogram percentile block: headline
	// quantiles of the per-cell RQD, the three-stage delay decomposition
	// (demux wait + plane queuing + resequencing wait; the components sum to
	// Total per cell), and the per-output inter-departure gap. Mean, Min and
	// Max are exact; P50/P99/P999 carry at most one log-bucket of error.
	Percentiles obs.DelayQuantiles
}

// Report computes the execution summary. It panics unless every cell is
// accounted for: departed both switches, or departed the shadow and was
// dropped by the PPS (the harness must drain both switches).
func (r *Recorder) Report() Report {
	if r.matched+r.drops+r.expiredReseq != uint64(len(r.shadowDep)) || uint64(len(r.ppsDep)) > uint64(len(r.shadowDep)) {
		panic(fmt.Sprintf("metrics: unmatched departures (shadow %d, pps %d, matched %d, dropped %d, expired %d)",
			len(r.shadowDep), len(r.ppsDep), r.matched, r.drops, r.expiredReseq))
	}
	// Conservation audit on the admission side: every offered cell is
	// admitted, rejected or expired-at-admission, and every admitted cell
	// departed the shadow (the audit is skipped for bare recorders fed
	// departures directly, which never call OfferCell).
	if r.offered > 0 {
		if r.offered != r.admitted+r.rejected+r.expiredAdmit {
			panic(fmt.Sprintf("metrics: admission leak (offered %d, admitted %d, rejected %d, expired %d)",
				r.offered, r.admitted, r.rejected, r.expiredAdmit))
		}
		if r.admitted != uint64(len(r.shadowDep)) {
			panic(fmt.Sprintf("metrics: admitted %d cells but shadow departed %d", r.admitted, len(r.shadowDep)))
		}
	}
	rep := Report{
		Cells:          r.matched,
		MaxRQD:         r.maxRQD,
		MeanRQD:        r.rqd.Mean(),
		P50RQD:         cell.Time(r.rqd.Percentile(50)),
		P99RQD:         cell.Time(r.rqd.Percentile(99)),
		P999RQD:        cell.Time(r.rqd.Percentile(99.9)),
		Percentiles:    r.delays.Quantiles(),
		Flows:          r.ppsFlows,
		MeanInputWait:  r.inputWait.mean(),
		MeanPlaneWait:  r.planeWait.mean(),
		MeanOutputWait: r.outputWait.mean(),
		MaxInputWait:   cell.Time(r.inputWait.max),
		MaxPlaneWait:   cell.Time(r.planeWait.max),
		MaxOutputWait:  cell.Time(r.outputWait.max),
		Drops:          r.drops,
		Offered:        r.offered,
		Admitted:       r.admitted,
		Rejected:       r.rejected,
		ExpiredAdmit:   r.expiredAdmit,
		ExpiredReseq:   r.expiredReseq,
		OnTime:         r.onTime,
	}
	if r.offered > 0 {
		rep.OnTimeFraction = float64(r.onTime) / float64(r.offered)
	}
	if r.drops > 0 {
		rep.DropsPerPlane = append([]uint64(nil), r.dropsPerPlane...)
		rep.DropsPerInput = append([]uint64(nil), r.dropsPerInput...)
	}
	if r.rejected > 0 {
		rep.RejectedPerInput = append([]uint64(nil), r.rejectedPerInput...)
	}
	for id := range r.flowPPS {
		mp := &r.flowPPS[id]
		if mp.n == 0 {
			continue // seen only by the shadow: not a PPS flow
		}
		if mp.max > rep.MaxPPSDelay {
			rep.MaxPPSDelay = mp.max
		}
		j := mp.jitter()
		if j > rep.MaxPPSJitter {
			rep.MaxPPSJitter = j
		}
		if ms := &r.flowSh[id]; ms.n > 0 {
			if rel := j - ms.jitter(); rel > rep.RDJ {
				rep.RDJ = rel
			}
			if ms.max > rep.MaxShadowDelay {
				rep.MaxShadowDelay = ms.max
			}
		}
	}
	return rep
}

// PercentileTable renders the delay-attribution percentile block as an
// aligned table, one row per component — the format behind the -percentiles
// flag of ppssim/ppsdiag and the congestion example.
func (rep Report) PercentileTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %8s %8s %8s %8s %8s\n",
		"component", "n", "mean", "min", "p50", "p99", "p999", "max")
	row := func(name string, q obs.Quantiles) {
		fmt.Fprintf(&b, "%-12s %10d %10.2f %8d %8d %8d %8d %8d\n",
			name, q.N, q.Mean, q.Min, q.P50, q.P99, q.P999, q.Max)
	}
	p := rep.Percentiles
	row("rqd", p.RQD)
	row("demux", p.Demux)
	row("plane", p.Plane)
	row("reseq", p.Reseq)
	row("total", p.Total)
	row("interdep", p.Gap)
	return b.String()
}

// String renders the headline numbers.
func (rep Report) String() string {
	s := fmt.Sprintf("cells=%d flows=%d maxRQD=%d meanRQD=%.2f p99RQD=%d RDJ=%d maxDelay(pps=%d shadow=%d)",
		rep.Cells, rep.Flows, rep.MaxRQD, rep.MeanRQD, rep.P99RQD, rep.RDJ, rep.MaxPPSDelay, rep.MaxShadowDelay)
	if rep.Drops > 0 {
		s += fmt.Sprintf(" drops=%d", rep.Drops)
	}
	// Admission line only when a policy actually refused something, so
	// always-admit output stays byte-identical to the pre-admission format.
	if rep.Rejected > 0 || rep.ExpiredAdmit > 0 || rep.ExpiredReseq > 0 {
		s += fmt.Sprintf(" offered=%d admitted=%d rejected=%d expired=%d onTime=%.3f",
			rep.Offered, rep.Admitted, rep.Rejected, rep.ExpiredAdmit+rep.ExpiredReseq, rep.OnTimeFraction)
	}
	return s
}
