package metrics

import (
	"strings"
	"testing"

	"ppsim/internal/cell"
)

func drop(seq, flowSeq uint64, f cell.Flow, arrive cell.Time, via cell.Plane) cell.Cell {
	c := cell.New(seq, flowSeq, f, arrive)
	c.Via = via
	return c
}

func TestDropsAccounting(t *testing.T) {
	r := NewRecorder()
	f0 := cell.Flow{In: 0, Out: 0}
	f1 := cell.Flow{In: 1, Out: 0}
	// Cell 0 survives; cells 1 and 2 are dropped by planes 2 and 0.
	r.ShadowDepart(dep(0, 0, f0, 0, 0))
	r.PPSDepart(dep(0, 0, f0, 0, 4))
	r.ShadowDepart(dep(1, 1, f0, 1, 1))
	r.PPSDrop(drop(1, 1, f0, 1, 2))
	r.ShadowDepart(dep(2, 0, f1, 1, 2))
	r.PPSDrop(drop(2, 0, f1, 1, 0))
	if r.Drops() != 2 {
		t.Fatalf("Drops = %d, want 2", r.Drops())
	}
	rep := r.Report()
	if rep.Drops != 2 || rep.Cells != 1 {
		t.Errorf("Report drops=%d cells=%d, want 2/1", rep.Drops, rep.Cells)
	}
	// Dropped cells are excluded from delay statistics.
	if rep.MaxRQD != 4 || rep.MeanRQD != 4 {
		t.Errorf("RQD max=%d mean=%f; dropped cells leaked in", rep.MaxRQD, rep.MeanRQD)
	}
	if len(rep.DropsPerPlane) != 3 || rep.DropsPerPlane[0] != 1 || rep.DropsPerPlane[2] != 1 {
		t.Errorf("DropsPerPlane = %v", rep.DropsPerPlane)
	}
	if len(rep.DropsPerInput) != 2 || rep.DropsPerInput[0] != 1 || rep.DropsPerInput[1] != 1 {
		t.Errorf("DropsPerInput = %v", rep.DropsPerInput)
	}
	if s := rep.String(); !strings.Contains(s, "drops=2") {
		t.Errorf("Report.String() = %q; missing drop count", s)
	}
}

func TestNoDropsOmitsBreakdowns(t *testing.T) {
	r := NewRecorder()
	r.ShadowDepart(dep(0, 0, cell.Flow{}, 0, 0))
	r.PPSDepart(dep(0, 0, cell.Flow{}, 0, 1))
	rep := r.Report()
	if rep.Drops != 0 || rep.DropsPerPlane != nil || rep.DropsPerInput != nil {
		t.Errorf("fault-free report carries drop fields: %+v", rep)
	}
	if s := rep.String(); strings.Contains(s, "drops=") {
		t.Errorf("fault-free String mentions drops: %q", s)
	}
}

func TestDropThenDepartPanics(t *testing.T) {
	r := NewRecorder()
	c := dep(0, 0, cell.Flow{}, 0, 3)
	r.PPSDrop(drop(0, 0, cell.Flow{}, 0, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic: a dropped cell cannot also depart")
		}
	}()
	r.PPSDepart(c)
}

func TestDoubleDropPanics(t *testing.T) {
	r := NewRecorder()
	r.PPSDrop(drop(0, 0, cell.Flow{}, 0, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate drop")
		}
	}()
	r.PPSDrop(drop(0, 0, cell.Flow{}, 0, 1))
}

func TestReportPanicsOnDroppedWithoutShadow(t *testing.T) {
	// A drop only balances the books together with its shadow departure —
	// the reference switch never drops.
	r := NewRecorder()
	r.PPSDrop(drop(0, 0, cell.Flow{}, 0, 1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic: dropped cell never departed the shadow")
		}
	}()
	r.Report()
}
