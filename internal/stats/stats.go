// Package stats provides the small set of descriptive statistics the
// experiment harness reports: extrema, mean, percentiles and fixed-width
// histograms over integer-valued samples (delays measured in time-slots).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates integer samples and reports descriptive statistics.
// The zero value is an empty summary ready for use.
type Summary struct {
	samples []int64
	sum     int64
	sorted  bool
}

// Add records one sample.
func (s *Summary) Add(v int64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sorted = false
}

// Reserve pre-sizes the sample buffer for n total samples, so callers that
// know the workload size up front can keep subsequent Adds allocation-free.
func (s *Summary) Reserve(n int) {
	if cap(s.samples) >= n {
		return
	}
	out := make([]int64, len(s.samples), n)
	copy(out, s.samples)
	s.samples = out
}

// N reports the number of recorded samples.
func (s *Summary) N() int { return len(s.samples) }

// Min returns the smallest sample, or 0 when empty.
func (s *Summary) Min() int64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[0]
}

// Max returns the largest sample, or 0 when empty.
func (s *Summary) Max() int64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.samples[len(s.samples)-1]
}

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return float64(s.sum) / float64(len(s.samples))
}

// Stddev returns the population standard deviation, or 0 when empty.
func (s *Summary) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.samples {
		d := float64(v) - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using the
// nearest-rank method, or 0 when empty.
func (s *Summary) Percentile(p float64) int64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	return Percentile(s.samples, p)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the ascending
// sorted samples by the nearest-rank method, or 0 when empty. This is the
// one percentile implementation in the repo; Summary and every ad-hoc
// sample-slice caller delegate here so the convention cannot drift.
func Percentile(sorted []int64, p float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func (s *Summary) ensureSorted() {
	if s.sorted {
		return
	}
	sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
	s.sorted = true
}

// FormatLine renders the shared one-line distribution summary
// "<countLabel>=N min=... mean=... p50=... p99=... max=...". Summary.String
// and ppsim.Distribution.String both delegate here so the format stays
// identical everywhere it appears.
func FormatLine(countLabel string, n int, min int64, mean float64, p50, p99, max int64) string {
	return fmt.Sprintf("%s=%d min=%d mean=%.2f p50=%d p99=%d max=%d",
		countLabel, n, min, mean, p50, p99, max)
}

// String renders "n=... min=... mean=... p99=... max=...".
func (s *Summary) String() string {
	return FormatLine("n", s.N(), s.Min(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}

// Histogram counts samples into fixed-width buckets starting at zero.
// Samples below zero go into an underflow bucket; samples at or above
// width*len(counts) go into an overflow bucket.
type Histogram struct {
	width     int64
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram returns a histogram with nbuckets buckets of the given width.
// It panics if width <= 0 or nbuckets <= 0: a degenerate histogram is a
// configuration error.
func NewHistogram(width int64, nbuckets int) *Histogram {
	if width <= 0 || nbuckets <= 0 {
		panic("stats: histogram width and bucket count must be positive")
	}
	return &Histogram{width: width, counts: make([]int64, nbuckets)}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.total++
	if v < 0 {
		h.underflow++
		return
	}
	b := v / h.width
	if b >= int64(len(h.counts)) {
		h.overflow++
		return
	}
	h.counts[b]++
}

// Total reports the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the count in bucket i, covering [i*width, (i+1)*width).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Overflow returns the count of samples beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Underflow returns the count of negative samples.
func (h *Histogram) Underflow() int64 { return h.underflow }

// Render returns a textual bar chart, one line per non-empty bucket, scaled
// so the largest bar has barWidth characters.
func (h *Histogram) Render(barWidth int) string {
	if barWidth <= 0 {
		barWidth = 40
	}
	var maxCount int64
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		bar := int(float64(c) / float64(maxCount) * float64(barWidth))
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "[%6d,%6d) %8d %s\n",
			int64(i)*h.width, int64(i+1)*h.width, c, strings.Repeat("#", bar))
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "[%6d,   inf) %8d\n", int64(len(h.counts))*h.width, h.overflow)
	}
	return b.String()
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
