package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Stddev() != 0 {
		t.Error("empty summary should report zeros")
	}
	if s.Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []int64{5, 1, 9, 3, 7} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %f", s.Mean())
	}
	if got := s.Percentile(50); got != 5 {
		t.Errorf("p50 = %d", got)
	}
	if got := s.Percentile(100); got != 9 {
		t.Errorf("p100 = %d", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %d", got)
	}
}

func TestSummaryAddAfterSort(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Max() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Error("Add after Max must invalidate sorted cache")
	}
}

func TestStddev(t *testing.T) {
	var s Summary
	for _, v := range []int64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Stddev = %f, want 2", got)
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(3)
	if got := s.String(); !strings.Contains(got, "n=1") || !strings.Contains(got, "max=3") {
		t.Errorf("String = %q", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	prop := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s Summary
		for _, v := range vals {
			s.Add(int64(v))
		}
		prev := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return s.Percentile(0) == s.Min() && s.Percentile(100) == s.Max()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: min/max/mean agree with a direct computation.
func TestSummaryMatchesDirect(t *testing.T) {
	prop := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		var s Summary
		sorted := make([]int64, len(vals))
		var sum int64
		for i, v := range vals {
			s.Add(int64(v))
			sorted[i] = int64(v)
			sum += int64(v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		wantMean := float64(sum) / float64(len(vals))
		return s.Min() == sorted[0] &&
			s.Max() == sorted[len(sorted)-1] &&
			math.Abs(s.Mean()-wantMean) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 3)
	for _, v := range []int64{0, 5, 9, 10, 25, 31, -1} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Bucket(0) != 3 || h.Bucket(1) != 1 || h.Bucket(2) != 1 {
		t.Errorf("buckets = %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(2))
	}
	if h.Overflow() != 1 || h.Underflow() != 1 {
		t.Errorf("over/under = %d/%d", h.Overflow(), h.Underflow())
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Errorf("Render produced no bars: %q", out)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(0, 10)
}

func TestMinMaxInt64(t *testing.T) {
	if MaxInt64(2, 3) != 3 || MaxInt64(3, 2) != 3 {
		t.Error("MaxInt64")
	}
	if MinInt64(2, 3) != 2 || MinInt64(3, 2) != 2 {
		t.Error("MinInt64")
	}
}
