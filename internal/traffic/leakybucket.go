package traffic

import (
	"fmt"

	"ppsim/internal/cell"
)

// Validator checks (R, B) leaky-bucket conformance of an arrival stream with
// the paper's normalization R = 1 cell per slot (Definition 3).
//
// For each input-port and each output-port it maintains a virtual queue fed
// by that port's arrivals and served at one cell per slot. By Cruz's
// network-calculus identity, the supremum over all windows [t, t+tau) of
// (arrivals - tau*R) equals the maximum backlog of that virtual queue, so
// the stream is (R, B)-conformant if and only if every backlog stays <= B.
type Validator struct {
	n       int
	inQ     []int64
	outQ    []int64
	maxIn   int64
	maxOut  int64
	last    cell.Time
	started bool
}

// NewValidator returns a validator for an n x n switch.
func NewValidator(n int) *Validator {
	return &Validator{n: n, inQ: make([]int64, n), outQ: make([]int64, n), last: -1}
}

// Observe records the arrivals of slot t. Slots must be presented in
// strictly increasing order; missing slots are treated as silent.
//
// The recurrence is Q(t) = max(0, Q(t-1) + a(t) - R) with R = 1: the slot in
// which a cell arrives already counts toward the window length tau, so one
// unit of service is credited within the arrival slot itself. The maximum of
// Q over time is then exactly the minimal conformant B.
func (v *Validator) Observe(t cell.Time, arrivals []Arrival) error {
	if v.started && t <= v.last {
		return fmt.Errorf("traffic: Observe slots must increase (got %d after %d)", t, v.last)
	}
	// Drain the virtual queues for any silent slots skipped since last.
	drain := int64(t-v.last) - 1
	if !v.started {
		drain = 0
	}
	v.started = true
	v.last = t
	if drain > 0 {
		for p := 0; p < v.n; p++ {
			v.inQ[p] -= drain
			if v.inQ[p] < 0 {
				v.inQ[p] = 0
			}
			v.outQ[p] -= drain
			if v.outQ[p] < 0 {
				v.outQ[p] = 0
			}
		}
	}
	for _, a := range arrivals {
		if int(a.In) < 0 || int(a.In) >= v.n || int(a.Out) < 0 || int(a.Out) >= v.n {
			return fmt.Errorf("traffic: arrival %v outside %dx%d switch", a, v.n, v.n)
		}
		v.inQ[a.In]++
		v.outQ[a.Out]++
	}
	// One unit of service within this slot, then record the residual excess.
	for p := 0; p < v.n; p++ {
		if v.inQ[p] > 0 {
			v.inQ[p]--
		}
		if v.outQ[p] > 0 {
			v.outQ[p]--
		}
		if v.inQ[p] > v.maxIn {
			v.maxIn = v.inQ[p]
		}
		if v.outQ[p] > v.maxOut {
			v.maxOut = v.outQ[p]
		}
	}
	return nil
}

// Burstiness returns the measured burstiness factor B: the smallest B for
// which the observed stream is (R=1, B) conformant.
func (v *Validator) Burstiness() int64 {
	if v.maxOut > v.maxIn {
		return v.maxOut
	}
	return v.maxIn
}

// InputBurstiness returns the input-side component of the burstiness.
func (v *Validator) InputBurstiness() int64 { return v.maxIn }

// OutputBurstiness returns the output-side component of the burstiness.
func (v *Validator) OutputBurstiness() int64 { return v.maxOut }

// MeasureSource replays a finite source through a fresh Validator and
// returns the measured burstiness. It returns an error for unbounded
// sources or malformed arrival streams.
func MeasureSource(n int, src Source) (int64, error) {
	end := src.End()
	if end == cell.None {
		return 0, fmt.Errorf("traffic: cannot measure an unbounded source")
	}
	v := NewValidator(n)
	var buf []Arrival
	for t := cell.Time(0); t < end; t++ {
		buf = src.Arrivals(t, buf[:0])
		if err := v.Observe(t, buf); err != nil {
			return 0, err
		}
	}
	return v.Burstiness(), nil
}

// WindowBurstiness computes, for a finite source, the maximum over all
// windows of exactly tau slots of (cells sharing a port) - tau*R, per
// output-port. Proposition 15 is demonstrated by showing this grows without
// bound in tau for congestion traffic, whereas it is capped by B for any
// (R, B) leaky-bucket stream.
func WindowBurstiness(n int, src Source, tau cell.Time) (int64, error) {
	end := src.End()
	if end == cell.None {
		return 0, fmt.Errorf("traffic: cannot measure an unbounded source")
	}
	if tau <= 0 {
		return 0, fmt.Errorf("traffic: window must be positive, got %d", tau)
	}
	// perSlot[j][t] = cells for output j arriving at slot t.
	counts := make([][]int64, n)
	for j := range counts {
		counts[j] = make([]int64, end)
	}
	var buf []Arrival
	for t := cell.Time(0); t < end; t++ {
		buf = src.Arrivals(t, buf[:0])
		for _, a := range buf {
			counts[a.Out][t]++
		}
	}
	var worst int64
	for j := 0; j < n; j++ {
		var window int64
		for t := cell.Time(0); t < end; t++ {
			window += counts[j][t]
			if t >= tau {
				window -= counts[j][t-tau]
			}
			w := tau
			if t+1 < tau {
				w = t + 1
			}
			if excess := window - int64(w); excess > worst {
				worst = excess
			}
		}
	}
	return worst, nil
}

// Regulator shapes an arbitrary demand source into an (R=1, B) conformant
// stream by delaying cells in per-input shaping queues. A cell for output j
// is released only when output j's token bucket (capacity B+1, refill 1 per
// slot) has a token; inputs release at most one cell per slot by
// construction of the model.
//
// The regulator preserves per-flow order. It is used to build conformant
// versions of bursty demands and in property tests asserting that its output
// always validates.
type Regulator struct {
	n      int
	inner  Source
	b      int64
	tokens []int64
	queues [][]Arrival // per-input FIFO of pending arrivals
	last   cell.Time
	walked cell.Time // next slot to pull from inner
	la     lookaheadBuffer
}

// NewRegulator wraps src (which must be bounded for End to be meaningful)
// with an (R=1, B) shaper for an n x n switch.
func NewRegulator(n int, b int64, src Source) *Regulator {
	tok := make([]int64, n)
	for j := range tok {
		tok[j] = b + 1 // bucket starts full: a burst of B+1 <= tau*R+B for tau>=1
	}
	return &Regulator{
		n: n, inner: src, b: b,
		tokens: tok,
		queues: make([][]Arrival, n),
		last:   -1,
	}
}

// Arrivals implements Source. Slots must be queried in increasing order.
func (r *Regulator) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	return r.la.arrivals(t, dst, r.release)
}

// release is the raw per-slot shaping step (the pre-lookahead Arrivals
// body); both Arrivals and NextArrival scans route through it so the shaping
// queues and token buckets evolve identically either way.
func (r *Regulator) release(t cell.Time, dst []Arrival) []Arrival {
	if t <= r.last {
		panic("traffic: Regulator slots must be queried in increasing order")
	}
	// Refill tokens for elapsed slots (one per slot, capped).
	gap := int64(t - r.last)
	if r.last < 0 {
		gap = 0 // bucket starts full
	}
	for j := 0; j < r.n; j++ {
		r.tokens[j] += gap
		if r.tokens[j] > r.b+1 {
			r.tokens[j] = r.b + 1
		}
	}
	r.last = t

	// Pull demand for every slot up to and including t.
	var buf []Arrival
	for ; r.walked <= t; r.walked++ {
		if end := r.inner.End(); end != cell.None && r.walked >= end {
			break
		}
		buf = r.inner.Arrivals(r.walked, buf[:0])
		for _, a := range buf {
			r.queues[a.In] = append(r.queues[a.In], a)
		}
	}

	// Release at most one cell per input, head-of-line, token permitting.
	for i := 0; i < r.n; i++ {
		q := r.queues[i]
		if len(q) == 0 {
			continue
		}
		a := q[0]
		if r.tokens[a.Out] <= 0 {
			continue // head-of-line blocks to preserve flow order
		}
		r.tokens[a.Out]--
		r.queues[i] = q[1:]
		dst = append(dst, a)
	}
	return dst
}

// AppendArrivals implements BatchSource via the lookahead buffer's span
// path; token refills and demand pulls advance slot by slot inside release,
// exactly as a stepped replay would.
func (r *Regulator) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return r.la.appendSpan(from, to, dst, r.release)
}

// End implements Source. The regulator itself cannot know when its backlog
// will drain, so it reports unbounded unless both the demand has ended and
// the queues are empty.
func (r *Regulator) End() cell.Time {
	end := r.inner.End()
	if end == cell.None {
		return cell.None
	}
	for _, q := range r.queues {
		if len(q) > 0 {
			return cell.None
		}
	}
	if r.walked < end {
		return cell.None
	}
	if r.last+1 > end {
		return r.last + 1
	}
	return end
}

// RegulatorScanHorizon bounds Regulator.NextArrival's slot-by-slot forward
// scan when the inner source is unbounded (End() == cell.None), offers no
// Lookahead of its own, and the shaping backlog is empty: past this many
// silent slots beyond `after` the scan gives up and answers cell.None (see
// the contract note on Lookahead in lookahead.go). The value matches the
// harness's default MaxSlots cap, so within any default-length run the
// capped answer is exact; previously such a source — e.g. a custom
// zero-rate generator — made the scan loop forever.
const RegulatorScanHorizon = 1 << 22

// NextArrival implements Lookahead. The scan cannot use a fixed limit — the
// shaped backlog drains past the inner source's end — so it guards
// exhaustion explicitly: empty shaping queues plus a provably silent inner
// source (walked past a bounded End, or an inner Lookahead reporting None)
// mean no release can ever happen. When the inner source implements
// Lookahead and the backlog is empty, the scan also jumps straight to the
// inner's next arrival slot — the slots between cannot release anything.
// An unbounded inner source without Lookahead cannot be proved silent, so
// once the backlog is empty the scan is capped at RegulatorScanHorizon
// slots past `after` and answers cell.None beyond it.
func (r *Regulator) NextArrival(after cell.Time) cell.Time {
	if r.la.pendOK {
		if r.la.pendSlot > after {
			return r.la.pendSlot
		}
		panic("traffic: NextArrival would skip a buffered unconsumed slot; consume Arrivals in order")
	}
	t := r.la.next
	if t <= after {
		t = after + 1
	}
	for {
		if r.Backlog() == 0 {
			if end := r.inner.End(); end != cell.None && r.walked >= end {
				return cell.None
			}
			if il, ok := r.inner.(Lookahead); ok {
				s := il.NextArrival(r.walked - 1)
				if s == cell.None {
					return cell.None
				}
				if s > t {
					t = s
				}
			} else if r.inner.End() == cell.None && t > after+RegulatorScanHorizon {
				return cell.None
			}
		}
		r.la.pend = r.release(t, r.la.pend[:0])
		r.la.next = t + 1
		if len(r.la.pend) > 0 {
			r.la.pendSlot, r.la.pendOK = t, true
			return t
		}
		t++
	}
}

// Backlog reports the number of cells currently held in shaping queues.
func (r *Regulator) Backlog() int {
	n := 0
	for _, q := range r.queues {
		n += len(q)
	}
	return n
}
