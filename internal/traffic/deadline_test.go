package traffic

import (
	"testing"

	"ppsim/internal/cell"
)

func TestWithDeadlineStampsArrivals(t *testing.T) {
	tr := NewTrace()
	tr.MustAdd(0, 0, 1)
	tr.MustAdd(3, 2, 0)
	src := WithDeadline(tr, 8)
	var buf []Arrival
	for slot := cell.Time(0); slot < src.End(); slot++ {
		buf = src.Arrivals(slot, buf[:0])
		for _, a := range buf {
			if a.Deadline != slot+8 {
				t.Fatalf("slot %d: deadline %d, want %d", slot, a.Deadline, slot+8)
			}
		}
	}
	if src.End() != tr.End() {
		t.Fatalf("End changed: %d vs %d", src.End(), tr.End())
	}
}

func TestWithDeadlinePreservesStream(t *testing.T) {
	inner := NewBernoulli(4, 0.7, 64, 7)
	plain := NewBernoulli(4, 0.7, 64, 7)
	wrapped := WithDeadline(inner, 5)
	var a, b []Arrival
	for slot := cell.Time(0); slot < 64; slot++ {
		a = plain.Arrivals(slot, a[:0])
		b = wrapped.Arrivals(slot, b[:0])
		if len(a) != len(b) {
			t.Fatalf("slot %d: %d vs %d arrivals", slot, len(a), len(b))
		}
		for i := range a {
			if a[i].In != b[i].In || a[i].Out != b[i].Out {
				t.Fatalf("slot %d arrival %d: flow changed %+v vs %+v", slot, i, a[i], b[i])
			}
			if b[i].Deadline != slot+5 {
				t.Fatalf("slot %d arrival %d: deadline %d", slot, i, b[i].Deadline)
			}
		}
	}
}

func TestWithDeadlineLookaheadForwarding(t *testing.T) {
	// A Lookahead inner keeps the capability and agrees with it...
	inner := NewBernoulli(2, 0.3, 128, 3)
	probe := NewBernoulli(2, 0.3, 128, 3)
	wrapped := WithDeadline(inner, 4)
	look, ok := wrapped.(Lookahead)
	if !ok {
		t.Fatal("Lookahead inner lost the capability through WithDeadline")
	}
	var buf []Arrival
	at := cell.Time(-1)
	for i := 0; i < 16; i++ {
		next := look.NextArrival(at)
		// Advance the probe slot-by-slot to verify the jump is exact.
		for s := at + 1; next != cell.None && s < next; s++ {
			if buf = probe.Arrivals(s, buf[:0]); len(buf) > 0 {
				t.Fatalf("NextArrival(%d)=%d skipped arrivals at %d", at, next, s)
			}
		}
		if next == cell.None {
			break
		}
		if buf = probe.Arrivals(next, buf[:0]); len(buf) == 0 {
			t.Fatalf("NextArrival(%d)=%d but slot is silent", at, next)
		}
		wrapped.Arrivals(next, buf[:0])
		at = next
	}

	// ...and a non-Lookahead inner must not falsely qualify.
	if _, ok := WithDeadline(opaque{NewTrace()}, 4).(Lookahead); ok {
		t.Fatal("non-Lookahead inner falsely satisfies Lookahead through WithDeadline")
	}
}

// opaque hides a source's Lookahead capability.
type opaque struct{ src Source }

func (o opaque) Arrivals(t cell.Time, dst []Arrival) []Arrival { return o.src.Arrivals(t, dst) }
func (o opaque) End() cell.Time                                { return o.src.End() }

func TestWithDeadlineNestedKeepsTighter(t *testing.T) {
	tr := NewTrace()
	tr.MustAdd(2, 0, 0)
	src := WithDeadline(WithDeadline(tr, 3), 9)
	buf := src.Arrivals(2, nil)
	if len(buf) != 1 || buf[0].Deadline != 5 {
		t.Fatalf("nested wrapper overwrote the inner deadline: %+v", buf)
	}
}

func TestWithDeadlinePanicsOnBadOffset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithDeadline(src, 0) did not panic")
		}
	}()
	WithDeadline(NewTrace(), 0)
}
