package traffic

import (
	"encoding/json"
	"testing"

	"ppsim/internal/cell"
)

// FuzzTraceJSON exercises the trace decoder with arbitrary bytes: it must
// either reject the input or produce a trace that re-encodes canonically
// and round-trips.
func FuzzTraceJSON(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"t":0,"in":1,"out":2}]`))
	f.Add([]byte(`[{"t":3,"in":0,"out":0},{"t":3,"in":1,"out":0}]`))
	f.Add([]byte(`[{"t":-1,"in":0,"out":0}]`))
	f.Add([]byte(`{"garbage":true}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		if err := json.Unmarshal(data, &tr); err != nil {
			return // rejection is fine
		}
		enc, err := json.Marshal(&tr)
		if err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		var back Trace
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		if !tr.Equal(&back) {
			t.Fatal("round-trip changed the trace")
		}
	})
}

// FuzzValidatorConsistency feeds arbitrary arrival patterns and checks the
// incremental validator against the brute-force window scan.
func FuzzValidatorConsistency(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{255, 0, 255, 0, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 4
		tr := NewTrace()
		for i, b := range data {
			if i >= 48 {
				break
			}
			slot := cell.Time(b % 12)
			in := cell.Port(int(b/12) % n)
			out := cell.Port(int(b/48) % n)
			tr.Add(slot, in, out) // collisions silently skipped
		}
		if tr.End() == 0 {
			return
		}
		got, err := MeasureSource(n, tr)
		if err != nil {
			t.Fatal(err)
		}
		// The largest window excess over any tau must equal the
		// incremental measurement.
		var want int64
		for tau := cell.Time(1); tau <= tr.End(); tau++ {
			x, err := WindowBurstiness(n, tr, tau)
			if err != nil {
				t.Fatal(err)
			}
			if x > want {
				want = x
			}
		}
		// WindowBurstiness only scans output-side windows; the validator
		// also covers the input side, so it can only be larger.
		if got < want {
			t.Fatalf("validator B=%d below output-side window max %d", got, want)
		}
	})
}
