package traffic

import (
	"fmt"

	"ppsim/internal/bvn"
	"ppsim/internal/cell"
)

// BvN is deterministic traffic realizing a doubly-substochastic rate matrix
// through its Birkhoff–von Neumann decomposition: each slot serves one
// permutation chosen by deficit weighted round-robin, and each (input,
// output) cell of the served permutation emits subject to deficit thinning
// by its real-demand fraction. The result approaches the target rates with
// per-port burstiness bounded by roughly the number of permutations in the
// decomposition — smooth, admissible, and fully reproducible.
type BvN struct {
	n     int
	d     *bvn.Decomposition
	sched *bvn.Schedule
	// emitCredit implements the per-cell thinning of padded slack.
	emitCredit [][]float64
	until      cell.Time
	last       cell.Time
	la         lookaheadBuffer
	// active caches whether any permutation cell carries real demand; an
	// all-padding decomposition never emits, so NextArrival must not scan.
	active bool
}

// NewBvN builds the source for an n x n rate matrix lambda (row-major,
// lambda[i][j] = cells per slot from input i to output j). tol <= 0 uses
// the decomposition default.
func NewBvN(lambda [][]float64, until cell.Time, tol float64) (*BvN, error) {
	n := len(lambda)
	d, err := bvn.Decompose(lambda, tol)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	ec := make([][]float64, n)
	for i := range ec {
		ec[i] = make([]float64, n)
	}
	b := &BvN{
		n:          n,
		d:          d,
		sched:      bvn.NewSchedule(d),
		emitCredit: ec,
		until:      until,
		last:       -1,
	}
	for _, perm := range d.Perms {
		for r, c := range perm {
			if d.RealFraction(r, c) > 0 {
				b.active = true
			}
		}
	}
	return b, nil
}

// Permutations reports the decomposition size (the burstiness scale).
func (b *BvN) Permutations() int { return len(b.d.Perms) }

// Arrivals implements Source. Slots must be queried in increasing order;
// the scheduler advances once per queried slot.
func (b *BvN) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	return b.la.arrivals(t, dst, b.generate)
}

// generate serves one slot of the deficit-weighted schedule, advancing the
// scheduler exactly once — NextArrival scans route through it so a jumped
// run serves the same permutation sequence as a stepped one.
func (b *BvN) generate(t cell.Time, dst []Arrival) []Arrival {
	if t <= b.last {
		panic("traffic: BvN slots must be queried in increasing order")
	}
	b.last = t
	if b.until != cell.None && t >= b.until {
		return dst
	}
	idx := b.sched.Next()
	if idx < 0 {
		return dst
	}
	const eps = 1e-9
	for r, c := range b.d.Perms[idx] {
		frac := b.d.RealFraction(r, c)
		if frac <= 0 {
			continue
		}
		b.emitCredit[r][c] += frac
		if b.emitCredit[r][c] >= 1-eps {
			b.emitCredit[r][c] -= 1
			dst = append(dst, Arrival{In: cell.Port(r), Out: cell.Port(c)})
		}
	}
	return dst
}

// End implements Source.
func (b *BvN) End() cell.Time { return b.until }

// AppendArrivals implements BatchSource via the lookahead buffer's span
// path; the scheduler advances exactly once per fresh slot, as stepped.
func (b *BvN) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return b.la.appendSpan(from, to, dst, b.generate)
}

// NextArrival implements Lookahead. Thinning defers at most one slot of
// credit per served permutation cell, so an active decomposition emits
// within a bounded number of schedule rounds and the scan terminates even
// when until is unbounded.
func (b *BvN) NextArrival(after cell.Time) cell.Time {
	if !b.active {
		return cell.None
	}
	return b.la.nextArrival(after, b.until, b.generate)
}
