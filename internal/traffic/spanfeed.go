package traffic

import "ppsim/internal/cell"

// Span sizing for SpanFeed's slab refills. Spans start at one slot and adapt
// toward targetSlabCells arrivals per slab: dense sources settle on short
// spans (bounded slab memory), sparse sources stretch toward spanMax so long
// silent stretches cost one batch call instead of thousands of per-slot
// interface crossings. The doubling/halving thresholds leave a 2x hysteresis
// band so the span does not oscillate at a stable arrival rate.
const (
	spanInit        = cell.Time(1)
	spanMax         = cell.Time(4096)
	targetSlabCells = 4096
)

// SpanFeed adapts a Source to the harness's arrival phase. When the source
// implements BatchSource the feed pulls one slab of arrivals per span and
// serves each slot as a subslice — O(1) per slot, no interface call, no
// copy — and answers NextArrival from the slab cursor in O(1) while the
// slab lasts. For any other source it degrades to a per-slot pass-through
// that behaves exactly like calling the source directly.
//
// Slots must be consumed through SlotArrivals in strictly increasing order,
// interleaved with monotone NextArrival queries — the same contract the
// engines already obey for Lookahead sources.
type SpanFeed struct {
	src   Source
	batch BatchSource // nil → pass-through mode
	look  Lookahead   // nil when src lacks Lookahead

	end  cell.Time // first slot the harness never consumes; cell.None = unbounded
	span cell.Time // current span length (slots per slab)

	slab     []Arrival
	cur      int       // first unconsumed slab entry
	from, to cell.Time // slab covers [from, to); meaningful when haveSlab
	haveSlab bool

	scratch []Arrival // pass-through per-slot buffer
}

// NewSpanFeed wraps src for consumption of slots in [0, end); end = cell.None
// means unbounded (the feed then never clamps its spans).
func NewSpanFeed(src Source, end cell.Time) *SpanFeed {
	f := &SpanFeed{src: src, end: end, span: spanInit}
	f.batch, _ = src.(BatchSource)
	f.look, _ = src.(Lookahead)
	return f
}

// Batched reports whether the feed runs in slab mode.
func (f *SpanFeed) Batched() bool { return f.batch != nil }

// Look returns the feed itself when the underlying source supports
// Lookahead — engines must consult the feed, not the raw source, so slab
// state and lookahead state stay interleaved correctly — and nil otherwise.
func (f *SpanFeed) Look() Lookahead {
	if f.look == nil {
		return nil
	}
	return f
}

// SlotArrivals returns slot t's arrivals. The returned slice is only valid
// until the next SlotArrivals call (it aliases either the slab or the
// per-slot scratch buffer).
func (f *SpanFeed) SlotArrivals(t cell.Time) []Arrival {
	if f.batch == nil {
		f.scratch = f.src.Arrivals(t, f.scratch[:0])
		return f.scratch
	}
	if !f.haveSlab || t >= f.to {
		f.refill(t)
	}
	start := f.cur
	if start < len(f.slab) && f.slab[start].T < t {
		panic("traffic: span feed consumed out of order")
	}
	i := start
	for i < len(f.slab) && f.slab[i].T == t {
		i++
	}
	f.cur = i
	return f.slab[start:i]
}

// refill generates the next slab starting at slot t and adapts the span
// length toward targetSlabCells arrivals per slab.
func (f *SpanFeed) refill(t cell.Time) {
	to := t + f.span
	if f.end != cell.None && to > f.end {
		to = f.end
	}
	if to <= t {
		to = t + 1 // callers only consume slots < end; keep the slab well-formed regardless
	}
	f.slab = f.batch.AppendArrivals(f.slab[:0], t, to)
	f.cur = 0
	f.from, f.to = t, to
	f.haveSlab = true
	got := len(f.slab)
	switch {
	case got > 2*targetSlabCells && f.span > 1:
		f.span /= 2
	case 2*got < targetSlabCells && f.span < spanMax:
		f.span *= 2
	}
}

// NextArrival implements Lookahead. While the slab holds unconsumed
// arrivals the answer is its front entry — O(1), no source call. An
// exhausted slab still certifies silence through the rest of its span, so
// the query delegates from the span's last slot onward.
func (f *SpanFeed) NextArrival(after cell.Time) cell.Time {
	if f.batch == nil || !f.haveSlab {
		return f.look.NextArrival(after)
	}
	if f.cur < len(f.slab) {
		if f.slab[f.cur].T <= after {
			panic("traffic: span feed NextArrival would skip unconsumed arrivals")
		}
		return f.slab[f.cur].T
	}
	if last := f.to - 1; last > after {
		after = last
	}
	return f.look.NextArrival(after)
}
