// Package traffic generates and validates the cell arrival processes used by
// the experiments.
//
// The paper restricts all lower-bound traffics to the (R, B) leaky-bucket
// model (Definition 3): in every time interval of length tau, the number of
// cells arriving to the switch that share an input-port or an output-port is
// at most tau*R + B, where B is a fixed burstiness factor. With the paper's
// normalization R = 1 cell/slot, conformance is equivalent to a virtual
// queue fed by the arrivals and served at one cell per slot never exceeding
// a backlog of B (Cruz's calculus); Validator implements exactly that test,
// and Regulator shapes arbitrary demand into a conformant stream.
package traffic

import (
	"fmt"
	"sort"

	"ppsim/internal/cell"
)

// Arrival is one cell arrival event: a cell for output Out appears at input
// In at the slot under consideration.
type Arrival struct {
	In  cell.Port
	Out cell.Port

	// T is the arrival's slot, stamped by BatchSource.AppendArrivals so a
	// multi-slot slab stays self-describing. Per-slot Arrivals leaves it
	// zero — the slot is the call argument there.
	T cell.Time

	// Deadline is the absolute slot by which the cell must depart to count
	// as on time under deadline-aware admission; 0 means no deadline. It is
	// assigned by WithDeadline — plain sources leave it zero.
	Deadline cell.Time
}

// Source produces the arrival process. Implementations must be
// deterministic given their construction parameters (randomized sources take
// explicit seeds), so that the PPS and the shadow switch can replay the same
// stream.
type Source interface {
	// Arrivals appends the arrivals of slot t to dst and returns the
	// extended slice. A source must emit at most one arrival per
	// input-port per slot (at most one cell arrives per input per slot).
	Arrivals(t cell.Time, dst []Arrival) []Arrival

	// End returns the first slot at and after which the source is
	// permanently silent, or cell.None when the source is unbounded.
	End() cell.Time
}

// BatchSource is an optional Source capability: the harness's arrival phase
// pulls one slab of arrivals per span instead of one interface call per slot.
//
// AppendArrivals appends every arrival of the half-open span [from, to) to
// dst, in slot order (and per-slot in the same order Arrivals would emit),
// with each appended Arrival's T field stamped with its slot. The result must
// be exactly the concatenation a slot-by-slot Arrivals replay over the span
// would produce — RNG-backed sources must advance their draw sequence
// identically, which the lookaheadBuffer span path guarantees.
//
// Spans obey the same strictly-increasing contract as Lookahead-interleaved
// Arrivals: each call's `from` must be past every slot already consumed, and
// NextArrival interleaves as if the span's slots had been consumed one at a
// time.
type BatchSource interface {
	Source
	AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival
}

// Trace is a finite, explicit arrival schedule. It is the workhorse of the
// adversarial constructions: each lower-bound proof is realized by building
// a Trace slot by slot.
type Trace struct {
	slots map[cell.Time][]Arrival
	end   cell.Time // one past the last populated slot
	// keys caches the non-empty slots in ascending order for NextArrival's
	// binary search; keysOK is invalidated by Add and rebuilt lazily.
	keys   []cell.Time
	keysOK bool
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{slots: make(map[cell.Time][]Arrival)}
}

// Add schedules one arrival at slot t. It returns an error if the input-port
// already has an arrival at t (at most one cell per input per slot).
func (tr *Trace) Add(t cell.Time, in, out cell.Port) error {
	if t < 0 {
		return fmt.Errorf("traffic: arrival at negative slot %d", t)
	}
	for _, a := range tr.slots[t] {
		if a.In == in {
			return fmt.Errorf("traffic: input %d already has an arrival at slot %d", in, t)
		}
	}
	tr.slots[t] = append(tr.slots[t], Arrival{In: in, Out: out})
	tr.keysOK = false
	if t+1 > tr.end {
		tr.end = t + 1
	}
	return nil
}

// MustAdd is Add but panics on error; for use by constructions that manage
// slots themselves and treat a collision as a bug.
func (tr *Trace) MustAdd(t cell.Time, in, out cell.Port) {
	if err := tr.Add(t, in, out); err != nil {
		panic(err)
	}
}

// Arrivals implements Source.
func (tr *Trace) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	as := tr.slots[t]
	// Deterministic order: by input port.
	if len(as) > 1 && !sort.SliceIsSorted(as, func(i, j int) bool { return as[i].In < as[j].In }) {
		sort.Slice(as, func(i, j int) bool { return as[i].In < as[j].In })
	}
	return append(dst, as...)
}

// End implements Source.
func (tr *Trace) End() cell.Time { return tr.end }

// ensureKeys rebuilds the sorted non-empty slot index if Add invalidated it.
func (tr *Trace) ensureKeys() {
	if tr.keysOK {
		return
	}
	tr.keys = tr.keys[:0]
	for t, as := range tr.slots {
		if len(as) > 0 {
			tr.keys = append(tr.keys, t)
		}
	}
	sort.Slice(tr.keys, func(i, j int) bool { return tr.keys[i] < tr.keys[j] })
	tr.keysOK = true
}

// NextArrival implements Lookahead: binary search over the lazily built
// sorted slot index. Unlike generator lookaheads, trace queries are free of
// state, so non-monotone queries are fine.
func (tr *Trace) NextArrival(after cell.Time) cell.Time {
	tr.ensureKeys()
	i := sort.Search(len(tr.keys), func(i int) bool { return tr.keys[i] > after })
	if i == len(tr.keys) {
		return cell.None
	}
	return tr.keys[i]
}

// AppendArrivals implements BatchSource closed-form: a binary search finds
// the first populated slot in the span and the walk visits only populated
// slots, so silent stretches cost nothing regardless of span length.
func (tr *Trace) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	tr.ensureKeys()
	i := sort.Search(len(tr.keys), func(i int) bool { return tr.keys[i] >= from })
	for ; i < len(tr.keys) && tr.keys[i] < to; i++ {
		t := tr.keys[i]
		start := len(dst)
		dst = tr.Arrivals(t, dst)
		for j := start; j < len(dst); j++ {
			dst[j].T = t
		}
	}
	return dst
}

// Count reports the total number of scheduled arrivals.
func (tr *Trace) Count() int {
	n := 0
	for _, as := range tr.slots {
		n += len(as)
	}
	return n
}

// Shift returns a copy of the trace with every arrival delayed by d slots.
func (tr *Trace) Shift(d cell.Time) *Trace {
	out := NewTrace()
	for t, as := range tr.slots {
		for _, a := range as {
			out.MustAdd(t+d, a.In, a.Out)
		}
	}
	return out
}

// Append merges other into tr, delaying other's arrivals by offset slots.
// It returns an error on any per-input per-slot collision.
func (tr *Trace) Append(other *Trace, offset cell.Time) error {
	for t, as := range other.slots {
		for _, a := range as {
			if err := tr.Add(t+offset, a.In, a.Out); err != nil {
				return err
			}
		}
	}
	return nil
}

// Concat is a sequential composition of sources: each source is replayed in
// order, the next starting when the previous one ends plus its gap. All
// sources must be finite. This realizes the proof technique of Theorem 6
// ("LB, a sequential composition of the traffics A_i").
type Concat struct {
	trace *Trace
}

// NewConcat flattens the given (source, gap) pairs into a single trace.
// It returns an error if any source is unbounded or arrivals collide.
func NewConcat(parts ...Part) (*Concat, error) {
	out := NewTrace()
	var at cell.Time
	for i, p := range parts {
		end := p.Source.End()
		if end == cell.None {
			return nil, fmt.Errorf("traffic: part %d is unbounded", i)
		}
		var buf []Arrival
		for t := cell.Time(0); t < end; t++ {
			buf = p.Source.Arrivals(t, buf[:0])
			for _, a := range buf {
				if err := out.Add(at+t, a.In, a.Out); err != nil {
					return nil, err
				}
			}
		}
		at += end + p.GapAfter
	}
	return &Concat{trace: out}, nil
}

// Part is one stage of a Concat: a finite source followed by GapAfter idle
// slots.
type Part struct {
	Source   Source
	GapAfter cell.Time
}

// Arrivals implements Source.
func (c *Concat) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	return c.trace.Arrivals(t, dst)
}

// End implements Source.
func (c *Concat) End() cell.Time { return c.trace.End() }

// NextArrival implements Lookahead via the flattened trace.
func (c *Concat) NextArrival(after cell.Time) cell.Time {
	return c.trace.NextArrival(after)
}

// AppendArrivals implements BatchSource via the flattened trace.
func (c *Concat) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return c.trace.AppendArrivals(dst, from, to)
}
