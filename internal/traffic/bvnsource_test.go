package traffic

import (
	"math"
	"testing"

	"ppsim/internal/cell"
)

func TestBvNRatesConverge(t *testing.T) {
	lambda := [][]float64{
		{0.5, 0.25, 0},
		{0.25, 0.5, 0.25},
		{0, 0.25, 0.5},
	}
	const slots = 20000
	src, err := NewBvN(lambda, slots, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([][]int, 3)
	for i := range counts {
		counts[i] = make([]int, 3)
	}
	var buf []Arrival
	for s := cell.Time(0); s < slots; s++ {
		buf = src.Arrivals(s, buf[:0])
		for _, a := range buf {
			counts[a.In][a.Out]++
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			got := float64(counts[i][j]) / slots
			if math.Abs(got-lambda[i][j]) > 0.01 {
				t.Errorf("flow (%d,%d) rate %f, want %f", i, j, got, lambda[i][j])
			}
		}
	}
}

func TestBvNIsAdmissibleAndSmooth(t *testing.T) {
	lambda := [][]float64{
		{0.4, 0.3},
		{0.3, 0.4},
	}
	const slots = 5000
	src, err := NewBvN(lambda, slots, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(2)
	var buf []Arrival
	for s := cell.Time(0); s < slots; s++ {
		buf = src.Arrivals(s, buf[:0])
		if err := v.Observe(s, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Burstiness bounded by ~the decomposition size.
	bound := int64(src.Permutations() + 2)
	if v.Burstiness() > bound {
		t.Errorf("burstiness %d exceeds decomposition-size bound %d", v.Burstiness(), bound)
	}
}

func TestBvNDeterministic(t *testing.T) {
	lambda := [][]float64{{0.6, 0.2}, {0.2, 0.6}}
	run := func() []Arrival {
		src, err := NewBvN(lambda, 200, 0)
		if err != nil {
			t.Fatal(err)
		}
		var all []Arrival
		for s := cell.Time(0); s < 200; s++ {
			all = src.Arrivals(s, all)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic arrivals")
		}
	}
}

func TestBvNRejectsInadmissible(t *testing.T) {
	if _, err := NewBvN([][]float64{{1.5}}, 10, 0); err == nil {
		t.Error("rate > 1 must be rejected")
	}
}

func TestBvNMonotoneSlots(t *testing.T) {
	src, err := NewBvN([][]float64{{0.5}}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	src.Arrivals(0, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on repeated slot")
		}
	}()
	src.Arrivals(0, nil)
}

func TestBvNThroughPPSSmoke(t *testing.T) {
	// Diagonal-heavy admissible matrix through the validator end-to-end;
	// also checks the End() contract.
	lambda := make([][]float64, 4)
	for i := range lambda {
		lambda[i] = make([]float64, 4)
		for j := range lambda[i] {
			if i == j {
				lambda[i][j] = 0.55
			} else {
				lambda[i][j] = 0.10
			}
		}
	}
	src, err := NewBvN(lambda, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src.End() != 300 {
		t.Errorf("End = %d", src.End())
	}
	total := 0
	var buf []Arrival
	for s := cell.Time(0); s < 310; s++ {
		buf = src.Arrivals(s, buf[:0])
		total += len(buf)
	}
	// Expected ~ (0.55 + 0.3) * 4 * 300 = 1020 cells.
	if total < 900 || total > 1100 {
		t.Errorf("total cells %d, want ~1020", total)
	}
}
