package traffic

import (
	"testing"

	"ppsim/internal/cell"
)

func collect(t *testing.T, src Source, upto cell.Time) map[cell.Time][]Arrival {
	t.Helper()
	out := make(map[cell.Time][]Arrival)
	var buf []Arrival
	for slot := cell.Time(0); slot < upto; slot++ {
		buf = src.Arrivals(slot, nil)
		if len(buf) > 0 {
			out[slot] = buf
		}
	}
	return out
}

func TestTraceAddAndReplay(t *testing.T) {
	tr := NewTrace()
	if err := tr.Add(3, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(3, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(3, 1, 0); err == nil {
		t.Error("duplicate input in a slot must error")
	}
	if err := tr.Add(-1, 0, 0); err == nil {
		t.Error("negative slot must error")
	}
	if tr.End() != 4 {
		t.Errorf("End = %d, want 4", tr.End())
	}
	if tr.Count() != 2 {
		t.Errorf("Count = %d, want 2", tr.Count())
	}
	got := tr.Arrivals(3, nil)
	if len(got) != 2 || got[0].In != 0 || got[1].In != 1 {
		t.Errorf("Arrivals(3) = %v (want sorted by input)", got)
	}
	if len(tr.Arrivals(2, nil)) != 0 {
		t.Error("silent slot should be empty")
	}
}

func TestTraceShiftAppend(t *testing.T) {
	a := NewTrace()
	a.MustAdd(0, 0, 1)
	b := a.Shift(5)
	if b.End() != 6 || len(b.Arrivals(5, nil)) != 1 {
		t.Error("Shift misplaced arrivals")
	}
	if err := a.Append(b, 0); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 {
		t.Errorf("Append: Count = %d", a.Count())
	}
	c := NewTrace()
	c.MustAdd(0, 0, 3)
	if err := a.Append(c, 0); err == nil {
		t.Error("Append with collision must error")
	}
}

func TestConcatSequentialComposition(t *testing.T) {
	a := NewTrace()
	a.MustAdd(0, 0, 0)
	a.MustAdd(1, 0, 0)
	b := NewTrace()
	b.MustAdd(0, 1, 0)
	cc, err := NewConcat(Part{Source: a, GapAfter: 3}, Part{Source: b})
	if err != nil {
		t.Fatal(err)
	}
	// a occupies slots [0,2), then 3 idle slots, so b starts at 5.
	if got := cc.Arrivals(5, nil); len(got) != 1 || got[0].In != 1 {
		t.Errorf("Arrivals(5) = %v", got)
	}
	if cc.End() != 6 {
		t.Errorf("End = %d, want 6", cc.End())
	}
}

func TestConcatRejectsUnbounded(t *testing.T) {
	if _, err := NewConcat(Part{Source: &Flood{N: 2, Out: 0, Until: cell.None}}); err == nil {
		t.Error("unbounded part must be rejected")
	}
}

func TestCBR(t *testing.T) {
	c := &CBR{
		Flows:  []cell.Flow{{In: 0, Out: 1}, {In: 1, Out: 1}},
		Period: 4,
		Phase:  []cell.Time{0, 2},
		Until:  10,
	}
	got := collect(t, c, 12)
	if len(got[0]) != 1 || got[0][0].In != 0 {
		t.Errorf("slot 0: %v", got[0])
	}
	if len(got[2]) != 1 || got[2][0].In != 1 {
		t.Errorf("slot 2: %v", got[2])
	}
	if len(got[4]) != 1 || len(got[6]) != 1 || len(got[8]) != 1 {
		t.Error("period-4 emissions missing")
	}
	if len(got[10]) != 0 {
		t.Error("emissions after Until")
	}
}

func TestBernoulliDeterminismAndLoad(t *testing.T) {
	const n, slots = 8, 4000
	a := NewBernoulli(n, 0.5, slots, 42)
	b := NewBernoulli(n, 0.5, slots, 42)
	total := 0
	var buf1, buf2 []Arrival
	for s := cell.Time(0); s < slots; s++ {
		buf1 = a.Arrivals(s, buf1[:0])
		buf2 = b.Arrivals(s, buf2[:0])
		if len(buf1) != len(buf2) {
			t.Fatalf("same seed diverged at slot %d", s)
		}
		for i := range buf1 {
			if buf1[i] != buf2[i] {
				t.Fatalf("same seed diverged at slot %d", s)
			}
		}
		seen := map[cell.Port]bool{}
		for _, a := range buf1 {
			if seen[a.In] {
				t.Fatalf("two arrivals on one input in slot %d", s)
			}
			seen[a.In] = true
			if a.Out < 0 || int(a.Out) >= n {
				t.Fatalf("destination out of range: %v", a)
			}
		}
		total += len(buf1)
	}
	mean := float64(total) / float64(slots*n)
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("empirical load %f too far from 0.5", mean)
	}
}

func TestBernoulliWeightedErrors(t *testing.T) {
	if _, err := NewBernoulliWeighted(0, 0.5, nil, 10, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := NewBernoulliWeighted(2, 1.5, make([]float64, 4), 10, 1); err == nil {
		t.Error("load > 1 must error")
	}
	if _, err := NewBernoulliWeighted(2, 0.5, make([]float64, 3), 10, 1); err == nil {
		t.Error("bad weight length must error")
	}
	if _, err := NewBernoulliWeighted(2, 0.5, []float64{0, 0, 1, 1}, 10, 1); err == nil {
		t.Error("zero row must error")
	}
	if _, err := NewBernoulliWeighted(2, 0.5, []float64{-1, 2, 1, 1}, 10, 1); err == nil {
		t.Error("negative weight must error")
	}
}

func TestOnOffBurstsShareDestination(t *testing.T) {
	o, err := NewOnOff(4, 10, 10, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Within one sweep an input in ON state emits toward a single target;
	// verify per-slot uniqueness and that some traffic is produced.
	total := 0
	var buf []Arrival
	for s := cell.Time(0); s < 2000; s++ {
		buf = o.Arrivals(s, buf[:0])
		seen := map[cell.Port]bool{}
		for _, a := range buf {
			if seen[a.In] {
				t.Fatalf("duplicate input at slot %d", s)
			}
			seen[a.In] = true
		}
		total += len(buf)
	}
	if total == 0 {
		t.Error("on/off source emitted nothing in 2000 slots")
	}
	if _, err := NewOnOff(0, 5, 5, 10, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := NewOnOff(2, 0.5, 5, 10, 1); err == nil {
		t.Error("dwell < 1 must error")
	}
}

func TestPermutation(t *testing.T) {
	p, err := NewPermutation([]cell.Port{2, 0, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Arrivals(0, nil)
	if len(got) != 3 || got[0].Out != 2 || got[1].Out != 0 || got[2].Out != 1 {
		t.Errorf("Arrivals = %v", got)
	}
	if len(p.Arrivals(5, nil)) != 0 {
		t.Error("emissions after Until")
	}
	if _, err := NewPermutation([]cell.Port{0, 0}, 5); err == nil {
		t.Error("non-permutation must error")
	}
}

func TestFlood(t *testing.T) {
	f := &Flood{N: 3, Out: 2, Until: 2}
	got := f.Arrivals(0, nil)
	if len(got) != 3 {
		t.Fatalf("Flood arrivals = %v", got)
	}
	for _, a := range got {
		if a.Out != 2 {
			t.Errorf("flood to wrong output: %v", a)
		}
	}
	if len(f.Arrivals(2, nil)) != 0 {
		t.Error("emissions after Until")
	}
}

func TestHotspotConcentration(t *testing.T) {
	const n, slots = 8, 5000
	h, err := NewHotspot(n, 0.5, 0.9, 3, slots, 11)
	if err != nil {
		t.Fatal(err)
	}
	hot, total := 0, 0
	var buf []Arrival
	for s := cell.Time(0); s < slots; s++ {
		buf = h.Arrivals(s, buf[:0])
		for _, a := range buf {
			total++
			if a.Out == 3 {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	// 0.9 + 0.1/8 expected to the hot output.
	if frac < 0.85 || frac > 0.97 {
		t.Errorf("hot fraction %f, want ~0.91", frac)
	}
	if _, err := NewHotspot(4, 0.5, 1.5, 0, 10, 1); err == nil {
		t.Error("hotFrac > 1 must error")
	}
}
