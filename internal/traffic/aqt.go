package traffic

import (
	"fmt"

	"ppsim/internal/cell"
)

// AQTExcess measures a finite source against the adversarial queueing
// theory injection model the paper's Discussion references (Borodin et al.,
// Andrews et al.): a (w, rho) adversary may inject, in any window of w
// consecutive slots, at most rho*w cells requiring any single resource —
// here, sharing an input-port or an output-port.
//
// It returns the largest violation margin: max over ports and w-windows of
// (cells - rho*w); a value <= 0 means the stream is (w, rho)-admissible.
//
// The Discussion's claim "our flows satisfy these stronger restrictions as
// well" is the observation that an (R=1, B) leaky-bucket stream is
// (w, rho)-admissible for every rho >= 1 + B/w (window count <= w + B =
// rho*w); TestLeakyBucketIsAQTAdmissible pins it.
func AQTExcess(n int, src Source, w cell.Time, rho float64) (float64, error) {
	if w <= 0 {
		return 0, fmt.Errorf("traffic: AQT window must be positive, got %d", w)
	}
	if rho <= 0 {
		return 0, fmt.Errorf("traffic: AQT rate must be positive, got %g", rho)
	}
	end := src.End()
	if end == cell.None {
		return 0, fmt.Errorf("traffic: cannot measure an unbounded source")
	}
	inCount := make([][]int64, n)
	outCount := make([][]int64, n)
	for p := 0; p < n; p++ {
		inCount[p] = make([]int64, end)
		outCount[p] = make([]int64, end)
	}
	var buf []Arrival
	for t := cell.Time(0); t < end; t++ {
		buf = src.Arrivals(t, buf[:0])
		for _, a := range buf {
			inCount[a.In][t]++
			outCount[a.Out][t]++
		}
	}
	worst := float64(0)
	scan := func(counts []int64) {
		var window int64
		for t := cell.Time(0); t < end; t++ {
			window += counts[t]
			if t >= w {
				window -= counts[t-w]
			}
			// The adversary model speaks of windows of exactly w
			// consecutive slots; shorter prefixes are covered by any
			// full window containing them.
			if t+1 < w && end >= w {
				continue
			}
			if ex := float64(window) - rho*float64(w); ex > worst {
				worst = ex
			}
		}
	}
	for p := 0; p < n; p++ {
		scan(inCount[p])
		scan(outCount[p])
	}
	return worst, nil
}
