package traffic

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.MustAdd(0, 2, 1)
	tr.MustAdd(0, 0, 3)
	tr.MustAdd(7, 1, 1)
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(&back) {
		t.Error("round-trip lost arrivals")
	}
}

func TestTraceJSONCanonical(t *testing.T) {
	// Same arrivals added in different orders encode identically.
	a := NewTrace()
	a.MustAdd(1, 0, 0)
	a.MustAdd(0, 2, 1)
	a.MustAdd(0, 1, 2)
	b := NewTrace()
	b.MustAdd(0, 1, 2)
	b.MustAdd(1, 0, 0)
	b.MustAdd(0, 2, 1)
	da, _ := json.Marshal(a)
	db, _ := json.Marshal(b)
	if !bytes.Equal(da, db) {
		t.Errorf("canonical encoding differs:\n%s\n%s", da, db)
	}
}

func TestTraceJSONRejectsMalformed(t *testing.T) {
	var tr Trace
	if err := json.Unmarshal([]byte(`[{"t":-1,"in":0,"out":0}]`), &tr); err == nil {
		t.Error("negative slot must be rejected")
	}
	if err := json.Unmarshal([]byte(`[{"t":0,"in":0,"out":0},{"t":0,"in":0,"out":1}]`), &tr); err == nil {
		t.Error("duplicate input per slot must be rejected")
	}
	if err := json.Unmarshal([]byte(`{"not":"an array"}`), &tr); err == nil {
		t.Error("wrong shape must be rejected")
	}
}

func TestTraceEqual(t *testing.T) {
	a := NewTrace()
	a.MustAdd(0, 0, 1)
	b := NewTrace()
	b.MustAdd(0, 0, 1)
	if !a.Equal(b) {
		t.Error("identical traces must be Equal")
	}
	b.MustAdd(1, 0, 2)
	if a.Equal(b) {
		t.Error("different counts must differ")
	}
	c := NewTrace()
	c.MustAdd(0, 0, 2)
	if a.Equal(c) {
		t.Error("different destinations must differ")
	}
}

// Property: round-trip preserves any valid trace.
func TestTraceRoundTripProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		tr := NewTrace()
		for _, r := range raw {
			tr.Add(cell.Time(r%64), cell.Port(int(r/64)%8), cell.Port(int(r/512)%8))
		}
		data, err := json.Marshal(tr)
		if err != nil {
			return false
		}
		var back Trace
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return tr.Equal(&back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
