package traffic

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func TestValidatorSingleCellIsBurstless(t *testing.T) {
	v := NewValidator(4)
	if err := v.Observe(0, []Arrival{{In: 0, Out: 1}}); err != nil {
		t.Fatal(err)
	}
	if v.Burstiness() != 0 {
		t.Errorf("single cell burstiness = %d, want 0", v.Burstiness())
	}
}

func TestValidatorRateTrafficIsBurstless(t *testing.T) {
	// One cell per slot to the same output from rotating inputs: rate
	// exactly R with no burst (the Theorem 6 ending pattern).
	v := NewValidator(4)
	for s := cell.Time(0); s < 20; s++ {
		if err := v.Observe(s, []Arrival{{In: cell.Port(s % 4), Out: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	if v.Burstiness() != 0 {
		t.Errorf("rate-R traffic burstiness = %d, want 0", v.Burstiness())
	}
}

func TestValidatorBurstMeasured(t *testing.T) {
	// Three cells for one output in one slot: windows of length 1 contain
	// 3 cells, so B = 2.
	v := NewValidator(4)
	err := v.Observe(0, []Arrival{{In: 0, Out: 2}, {In: 1, Out: 2}, {In: 3, Out: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Burstiness() != 2 {
		t.Errorf("burstiness = %d, want 2", v.Burstiness())
	}
	if v.OutputBurstiness() != 2 || v.InputBurstiness() != 0 {
		t.Errorf("in/out = %d/%d, want 0/2", v.InputBurstiness(), v.OutputBurstiness())
	}
}

func TestValidatorSilentGapDrains(t *testing.T) {
	v := NewValidator(2)
	v.Observe(0, []Arrival{{In: 0, Out: 0}, {In: 1, Out: 0}}) // B=1 so far
	// Long silence: queue drains fully.
	v.Observe(100, []Arrival{{In: 0, Out: 0}, {In: 1, Out: 0}})
	if v.Burstiness() != 1 {
		t.Errorf("burstiness = %d, want 1 (bursts separated by silence)", v.Burstiness())
	}
}

func TestValidatorBackToBackBurstsAccumulate(t *testing.T) {
	v := NewValidator(4)
	// Two consecutive slots with 3 cells each to output 0: window tau=2
	// holds 6 cells, excess 4.
	for s := cell.Time(0); s < 2; s++ {
		v.Observe(s, []Arrival{{In: 0, Out: 0}, {In: 1, Out: 0}, {In: 2, Out: 0}})
	}
	if v.Burstiness() != 4 {
		t.Errorf("burstiness = %d, want 4", v.Burstiness())
	}
}

func TestValidatorRejectsNonmonotoneSlots(t *testing.T) {
	v := NewValidator(2)
	v.Observe(5, nil)
	if err := v.Observe(5, nil); err == nil {
		t.Error("repeated slot must error")
	}
	if err := v.Observe(3, nil); err == nil {
		t.Error("backwards slot must error")
	}
}

func TestValidatorRejectsOutOfRange(t *testing.T) {
	v := NewValidator(2)
	if err := v.Observe(0, []Arrival{{In: 5, Out: 0}}); err == nil {
		t.Error("out-of-range input must error")
	}
}

func TestMeasureSource(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 5; i++ {
		tr.MustAdd(0, cell.Port(i), 0)
	}
	b, err := MeasureSource(5, tr)
	if err != nil {
		t.Fatal(err)
	}
	if b != 4 {
		t.Errorf("measured B = %d, want 4", b)
	}
	if _, err := MeasureSource(2, &Flood{N: 2, Out: 0, Until: cell.None}); err == nil {
		t.Error("unbounded source must error")
	}
}

func TestWindowBurstinessGrowsForFlood(t *testing.T) {
	// Proposition 15's signature: for flooding traffic the window excess
	// grows linearly with the window, so no fixed B can bound it.
	f := &Flood{N: 4, Out: 0, Until: 100}
	var prev int64 = -1
	for _, tau := range []cell.Time{1, 5, 10, 50} {
		got, err := WindowBurstiness(4, f, tau)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(tau)*4 - int64(tau) // N cells/slot for tau slots minus tau*R
		if got != want {
			t.Errorf("tau=%d: excess = %d, want %d", tau, got, want)
		}
		if got <= prev {
			t.Errorf("excess must grow with tau: %d then %d", prev, got)
		}
		prev = got
	}
}

func TestWindowBurstinessBoundedForLeakyBucket(t *testing.T) {
	// For conformant traffic the excess is bounded by B for every tau.
	tr := NewTrace()
	for s := cell.Time(0); s < 50; s++ {
		tr.MustAdd(s, cell.Port(s%3), 0) // rate R, B=0
	}
	for _, tau := range []cell.Time{1, 7, 25, 50} {
		got, err := WindowBurstiness(3, tr, tau)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("tau=%d: excess = %d, want 0", tau, got)
		}
	}
	if _, err := WindowBurstiness(3, tr, 0); err == nil {
		t.Error("tau=0 must error")
	}
}

func TestRegulatorShapesFlood(t *testing.T) {
	const n = 4
	f := &Flood{N: n, Out: 0, Until: 10} // 40 cells to output 0
	reg := NewRegulator(n, 2, f)
	v := NewValidator(n)
	released := 0
	var buf []Arrival
	for s := cell.Time(0); s < 200 && released < 40; s++ {
		buf = reg.Arrivals(s, nil)
		if err := v.Observe(s, buf); err != nil {
			t.Fatal(err)
		}
		released += len(buf)
	}
	if released != 40 {
		t.Fatalf("regulator lost cells: released %d of 40", released)
	}
	if v.Burstiness() > 2 {
		t.Errorf("regulated burstiness = %d, want <= 2", v.Burstiness())
	}
	if reg.Backlog() != 0 {
		t.Errorf("backlog = %d after drain", reg.Backlog())
	}
	if reg.End() == cell.None {
		t.Error("drained regulator over bounded source should report an end")
	}
}

func TestRegulatorPreservesFlowOrder(t *testing.T) {
	tr := NewTrace()
	// Input 0 sends to outputs 0,1,0,1,... while output 0 is congested by
	// other inputs; head-of-line blocking must keep input 0's cells in order.
	for s := cell.Time(0); s < 8; s++ {
		tr.MustAdd(s, 0, cell.Port(s%2))
		tr.MustAdd(s, 1, 0)
		tr.MustAdd(s, 2, 0)
	}
	reg := NewRegulator(3, 0, tr)
	var order []cell.Port
	var buf []Arrival
	for s := cell.Time(0); s < 100; s++ {
		buf = reg.Arrivals(s, buf[:0])
		for _, a := range buf {
			if a.In == 0 {
				order = append(order, a.Out)
			}
		}
		if reg.Backlog() == 0 && s > 8 {
			break
		}
	}
	if len(order) != 8 {
		t.Fatalf("input 0 released %d cells, want 8", len(order))
	}
	for i, out := range order {
		if out != cell.Port(i%2) {
			t.Fatalf("flow order broken at %d: %v", i, order)
		}
	}
}

// Property: the regulator's output always validates as (R=1, B) for random
// bursty demand.
func TestRegulatorAlwaysConformant(t *testing.T) {
	prop := func(seed int64, bRaw uint8) bool {
		b := int64(bRaw % 8)
		const n = 4
		demand, err := NewOnOff(n, 6, 2, 60, seed)
		if err != nil {
			return false
		}
		reg := NewRegulator(n, b, demand)
		v := NewValidator(n)
		var buf []Arrival
		for s := cell.Time(0); s < 600; s++ {
			buf = reg.Arrivals(s, nil)
			if err := v.Observe(s, buf); err != nil {
				return false
			}
			if s > 60 && reg.Backlog() == 0 {
				break
			}
		}
		return v.Burstiness() <= b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: MeasureSource of a Trace equals the brute-force window scan
// maximum over all window lengths.
func TestValidatorMatchesBruteForce(t *testing.T) {
	prop := func(raw []uint16) bool {
		const n = 4
		tr := NewTrace()
		for k, r := range raw {
			if k > 60 {
				break
			}
			slot := cell.Time(r % 16)
			in := cell.Port(int(r/16) % n)
			out := cell.Port(int(r/64) % n)
			tr.Add(slot, in, out) // collisions ignored
		}
		if tr.End() == 0 {
			return true
		}
		got, err := MeasureSource(n, tr)
		if err != nil {
			return false
		}
		// Brute force over every (port, window) pair.
		end := tr.End()
		var want int64
		var buf []Arrival
		inCount := make([][]int64, n)
		outCount := make([][]int64, n)
		for p := 0; p < n; p++ {
			inCount[p] = make([]int64, end)
			outCount[p] = make([]int64, end)
		}
		for s := cell.Time(0); s < end; s++ {
			buf = tr.Arrivals(s, buf[:0])
			for _, a := range buf {
				inCount[a.In][s]++
				outCount[a.Out][s]++
			}
		}
		for p := 0; p < n; p++ {
			for t1 := cell.Time(0); t1 < end; t1++ {
				var ci, co int64
				for t2 := t1; t2 < end; t2++ {
					ci += inCount[p][t2]
					co += outCount[p][t2]
					tau := int64(t2 - t1 + 1)
					if ex := ci - tau; ex > want {
						want = ex
					}
					if ex := co - tau; ex > want {
						want = ex
					}
				}
			}
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
