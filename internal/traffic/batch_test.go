package traffic

import (
	"math/rand"
	"reflect"
	"testing"

	"ppsim/internal/cell"
)

// batchTwinCases builds, for every bundled generator, a factory returning a
// fresh identically-configured source. Each test draws two instances: one
// consumed through BatchSource.AppendArrivals over random span partitions,
// one stepped slot-by-slot through Arrivals — the streams must be
// bit-identical, including the RNG-backed sources' draw order.
func batchTwinCases(t *testing.T) []struct {
	name string
	mk   func() Source
} {
	t.Helper()
	mkTrace := func() Source {
		tr := NewTrace()
		for _, e := range []struct {
			t       cell.Time
			in, out cell.Port
		}{{0, 0, 1}, {0, 1, 0}, {3, 2, 2}, {17, 0, 3}, {17, 3, 0}, {64, 1, 1}, {65, 2, 0}} {
			if err := tr.Add(e.t, e.in, e.out); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	mkBvN := func() Source {
		const n = 4
		lambda := make([][]float64, n)
		for i := range lambda {
			lambda[i] = make([]float64, n)
			for j := range lambda[i] {
				lambda[i][j] = 0.8 / n
			}
		}
		src, err := NewBvN(lambda, cell.None, 0)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	return []struct {
		name string
		mk   func() Source
	}{
		{"cbr", func() Source {
			return &CBR{
				Flows:  []cell.Flow{{In: 0, Out: 1}, {In: 1, Out: 2}, {In: 2, Out: 0}},
				Period: 3,
				Phase:  []cell.Time{0, 1, 2},
				Until:  120,
			}
		}},
		{"permutation", func() Source {
			p, err := NewPermutation([]cell.Port{2, 0, 3, 1}, 90)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		{"flood", func() Source { return &Flood{N: 3, Out: 1, Until: 75} }},
		{"trace", mkTrace},
		{"concat", func() Source {
			c, err := NewConcat(
				Part{Source: &Flood{N: 2, Out: 0, Until: 5}, GapAfter: 7},
				Part{Source: mkTrace().(*Trace), GapAfter: 0},
			)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"bernoulli", func() Source { return NewBernoulli(8, 0.4, cell.None, 7) }},
		{"bernoulli-finite", func() Source { return NewBernoulli(8, 0.6, 100, 9) }},
		{"onoff", func() Source {
			o, err := NewOnOff(8, 5, 9, cell.None, 11)
			if err != nil {
				t.Fatal(err)
			}
			return o
		}},
		{"hotspot", func() Source {
			h, err := NewHotspot(8, 0.5, 0.6, 2, cell.None, 3)
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
		{"bvn", mkBvN},
		{"regulator", func() Source { return NewRegulator(8, 4, NewBernoulli(8, 0.9, cell.None, 5)) }},
		{"deadline-onoff", func() Source {
			o, err := NewOnOff(6, 4, 6, cell.None, 13)
			if err != nil {
				t.Fatal(err)
			}
			return WithDeadline(o, 32)
		}},
		{"deadline-trace", func() Source { return WithDeadline(mkTrace(), 10) }},
	}
}

// TestBatchArrivalsMatchPerSlotTwin is the batch/per-slot equivalence
// property: for every bundled generator, AppendArrivals over a random
// partition of the horizon into spans yields exactly the arrivals a
// slot-by-slot twin produces — same cells, same order, same slot stamps —
// even when Lookahead queries are interleaved between spans (which forces
// the RNG-backed sources through their buffered-replay path).
func TestBatchArrivalsMatchPerSlotTwin(t *testing.T) {
	const horizon = 260
	for _, tc := range batchTwinCases(t) {
		for trial := int64(0); trial < 4; trial++ {
			rng := rand.New(rand.NewSource(trial*1009 + 17))
			batch, ok := tc.mk().(BatchSource)
			if !ok {
				t.Fatalf("%s: source does not implement BatchSource", tc.name)
			}
			twin := tc.mk()
			bLook, _ := batch.(Lookahead)
			tLook, _ := twin.(Lookahead)

			var got, want []Arrival
			for from := cell.Time(0); from < horizon; {
				to := from + 1 + cell.Time(rng.Intn(9))
				if to > horizon {
					to = horizon
				}
				got = batch.AppendArrivals(got, from, to)
				for s := from; s < to; s++ {
					start := len(want)
					want = twin.Arrivals(s, want)
					for i := start; i < len(want); i++ {
						want[i].T = s
					}
				}
				// Interleaved lookahead: both twins must answer identically
				// and the query must not perturb either stream.
				if bLook != nil && tLook != nil && rng.Intn(3) == 0 {
					bn, tn := bLook.NextArrival(to-1), tLook.NextArrival(to-1)
					if bn != tn {
						t.Fatalf("%s trial %d: NextArrival(%d) = %d (batch) vs %d (per-slot)", tc.name, trial, to-1, bn, tn)
					}
				}
				from = to
			}
			if !reflect.DeepEqual(got, want) {
				if len(got) != len(want) {
					t.Fatalf("%s trial %d: %d batched arrivals vs %d per-slot", tc.name, trial, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s trial %d: arrival %d differs: batch %+v vs per-slot %+v", tc.name, trial, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSpanFeedMatchesDirectSource drives a SpanFeed over every generator and
// checks the slab view reproduces the per-slot stream and that NextArrival
// stays consistent with the slab's own silence certificate.
func TestSpanFeedMatchesDirectSource(t *testing.T) {
	const horizon = 200
	for _, tc := range batchTwinCases(t) {
		feed := NewSpanFeed(tc.mk(), horizon)
		twin := tc.mk()
		var want []Arrival
		for s := cell.Time(0); s < horizon; s++ {
			got := feed.SlotArrivals(s)
			want = twin.Arrivals(s, want[:0])
			if len(got) != len(want) {
				t.Fatalf("%s: slot %d: %d arrivals via feed, %d direct", tc.name, s, len(got), len(want))
			}
			for i := range got {
				if got[i].In != want[i].In || got[i].Out != want[i].Out || got[i].Deadline != want[i].Deadline {
					t.Fatalf("%s: slot %d: arrival %d differs: %+v vs %+v", tc.name, s, i, got[i], want[i])
				}
				if got[i].T != s {
					t.Fatalf("%s: slot %d: arrival %d stamped T=%d", tc.name, s, i, got[i].T)
				}
			}
		}
	}
}

// BenchmarkSpanVsPerSlot contrasts per-slot interface stepping with
// span-batched slab generation for the bursty on/off source the official
// bench regime leans on (satellite: profile-guided evidence for Layer 1).
func BenchmarkSpanVsPerSlot(b *testing.B) {
	const n = 64
	mk := func() Source {
		o, err := NewOnOff(n, 8, 8*(1-0.6)/0.6, cell.None, 1)
		if err != nil {
			b.Fatal(err)
		}
		return o
	}
	b.Run("perslot", func(b *testing.B) {
		src := mk()
		var buf []Arrival
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = src.Arrivals(cell.Time(i), buf[:0])
		}
	})
	for _, span := range []cell.Time{16, 256} {
		b.Run("span"+itoa(int(span)), func(b *testing.B) {
			src := mk().(BatchSource)
			var buf []Arrival
			b.ResetTimer()
			for from := cell.Time(0); from < cell.Time(b.N); from += span {
				to := from + span
				if to > cell.Time(b.N) {
					to = cell.Time(b.N)
				}
				buf = src.AppendArrivals(buf[:0], from, to)
			}
		})
	}
}

// BenchmarkSpanVsPerSlotSparseTrace shows the closed-form span expansion on
// a sparse trace: per-slot stepping pays a map probe per slot while
// AppendArrivals binary-searches once per span and walks only the occupied
// slots.
func BenchmarkSpanVsPerSlotSparseTrace(b *testing.B) {
	const period = 64
	mk := func(slots int) *Trace {
		tr := NewTrace()
		for t := 0; t < slots; t += period {
			if err := tr.Add(cell.Time(t), cell.Port(t%4), cell.Port((t+1)%4)); err != nil {
				b.Fatal(err)
			}
		}
		return tr
	}
	b.Run("perslot", func(b *testing.B) {
		tr := mk(b.N)
		var buf []Arrival
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = tr.Arrivals(cell.Time(i), buf[:0])
		}
	})
	b.Run("span256", func(b *testing.B) {
		tr := mk(b.N)
		var buf []Arrival
		b.ResetTimer()
		for from := cell.Time(0); from < cell.Time(b.N); from += 256 {
			to := from + 256
			if to > cell.Time(b.N) {
				to = cell.Time(b.N)
			}
			buf = tr.AppendArrivals(buf[:0], from, to)
		}
	})
}

// itoa avoids importing strconv for two benchmark labels.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var d [8]byte
	i := len(d)
	for v > 0 {
		i--
		d[i] = byte('0' + v%10)
		v /= 10
	}
	return string(d[i:])
}
