package traffic

import (
	"testing"

	"ppsim/internal/cell"
)

func BenchmarkBernoulliArrivals(b *testing.B) {
	src := NewBernoulli(64, 0.7, cell.None, 1)
	var buf []Arrival
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = src.Arrivals(cell.Time(i), buf[:0])
	}
}

func BenchmarkRegulatorArrivals(b *testing.B) {
	src := NewRegulator(64, 4, NewBernoulli(64, 0.9, cell.None, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Arrivals(cell.Time(i), nil)
	}
}

func BenchmarkValidatorObserve(b *testing.B) {
	src := NewBernoulli(64, 0.8, cell.None, 1)
	v := NewValidator(64)
	var buf []Arrival
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = src.Arrivals(cell.Time(i), buf[:0])
		if err := v.Observe(cell.Time(i), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBvNArrivals(b *testing.B) {
	const n = 16
	lambda := make([][]float64, n)
	for i := range lambda {
		lambda[i] = make([]float64, n)
		for j := range lambda[i] {
			lambda[i][j] = 0.9 / n
		}
	}
	src, err := NewBvN(lambda, cell.None, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf []Arrival
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = src.Arrivals(cell.Time(i), buf[:0])
	}
}
