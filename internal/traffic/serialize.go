package traffic

import (
	"encoding/json"
	"fmt"
	"sort"

	"ppsim/internal/cell"
)

// record is the portable on-disk form of one arrival.
type record struct {
	T   int64 `json:"t"`
	In  int32 `json:"in"`
	Out int32 `json:"out"`
}

// MarshalJSON encodes the trace as a canonical (slot-major, then
// input-major) array of {t, in, out} records, so two equal traces encode
// byte-identically.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	recs := make([]record, 0, tr.Count())
	var buf []Arrival
	for t := cell.Time(0); t < tr.End(); t++ {
		buf = tr.Arrivals(t, buf[:0])
		for _, a := range buf {
			recs = append(recs, record{T: int64(t), In: int32(a.In), Out: int32(a.Out)})
		}
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].T != recs[j].T {
			return recs[i].T < recs[j].T
		}
		return recs[i].In < recs[j].In
	})
	return json.Marshal(recs)
}

// UnmarshalJSON decodes a record array into the trace, replacing its
// contents. It rejects malformed schedules (negative slots, two arrivals
// on one input in a slot).
func (tr *Trace) UnmarshalJSON(data []byte) error {
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("traffic: decoding trace: %w", err)
	}
	fresh := NewTrace()
	for i, r := range recs {
		if err := fresh.Add(cell.Time(r.T), cell.Port(r.In), cell.Port(r.Out)); err != nil {
			return fmt.Errorf("traffic: record %d: %w", i, err)
		}
	}
	*tr = *fresh
	return nil
}

// Equal reports whether two traces schedule exactly the same arrivals.
func (tr *Trace) Equal(other *Trace) bool {
	if tr.End() != other.End() || tr.Count() != other.Count() {
		return false
	}
	var a, b []Arrival
	for t := cell.Time(0); t < tr.End(); t++ {
		a = tr.Arrivals(t, a[:0])
		b = other.Arrivals(t, b[:0])
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}
