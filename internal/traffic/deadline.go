package traffic

import (
	"fmt"

	"ppsim/internal/cell"
)

// WithDeadline wraps a source so every arrival carries an absolute departure
// deadline of its arrival slot plus rel. rel must be >= 1, which keeps real
// deadlines strictly positive — Deadline 0 stays the unambiguous "no
// deadline" sentinel on both Arrival and cell.Cell. The wrapper changes
// nothing else about the stream (same slots, same inputs, same outputs), so
// it composes with every generator, trace and shaper; when the inner source
// implements Lookahead the wrapper forwards it, preserving fast-forward and
// event-engine eligibility.
func WithDeadline(src Source, rel cell.Time) Source {
	if rel < 1 {
		panic(fmt.Sprintf("traffic: deadline offset must be >= 1, got %d", rel))
	}
	d := deadlined{src: src, rel: rel}
	if look, ok := src.(Lookahead); ok {
		dl := deadlinedLookahead{deadlined: d, look: look}
		if batch, ok := src.(BatchSource); ok {
			return &deadlinedBatch{deadlinedLookahead: dl, batch: batch}
		}
		return &dl
	}
	return &d
}

type deadlined struct {
	src Source
	rel cell.Time
}

// Arrivals implements Source: the inner arrivals with Deadline stamped.
// Arrivals the inner source already stamped (nested WithDeadline) keep their
// earlier — necessarily tighter or equal — deadline.
func (d *deadlined) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	start := len(dst)
	dst = d.src.Arrivals(t, dst)
	for i := start; i < len(dst); i++ {
		if dst[i].Deadline == 0 {
			dst[i].Deadline = t + d.rel
		}
	}
	return dst
}

// End implements Source.
func (d *deadlined) End() cell.Time { return d.src.End() }

// deadlinedLookahead is the variant returned when the inner source supports
// Lookahead. Keeping it a separate type (rather than giving deadlined a
// NextArrival that fails at runtime) means a wrapped non-Lookahead source
// never falsely satisfies the interface check in the engine selector.
type deadlinedLookahead struct {
	deadlined
	look Lookahead
}

// NextArrival implements Lookahead: deadlines do not move arrivals.
func (d *deadlinedLookahead) NextArrival(after cell.Time) cell.Time {
	return d.look.NextArrival(after)
}

// deadlinedBatch additionally forwards BatchSource when the inner source
// supports span generation (all bundled batch sources also implement
// Lookahead, so the wrapper only distinguishes this combination).
type deadlinedBatch struct {
	deadlinedLookahead
	batch BatchSource
}

// AppendArrivals implements BatchSource: the inner slab with Deadline
// stamped off each arrival's own slot, mirroring the per-slot wrapper.
func (d *deadlinedBatch) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	start := len(dst)
	dst = d.batch.AppendArrivals(dst, from, to)
	for i := start; i < len(dst); i++ {
		if dst[i].Deadline == 0 {
			dst[i].Deadline = dst[i].T + d.rel
		}
	}
	return dst
}
