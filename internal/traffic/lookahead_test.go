package traffic

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"ppsim/internal/cell"
)

// lookaheadCases builds one bounded instance of every bundled generator that
// implements Lookahead. Each entry returns a fresh, identically-configured
// source per call so a lookahead-driven walk and a linear replay can run on
// independent twins.
func lookaheadCases(t *testing.T) []struct {
	name string
	mk   func() Source
} {
	t.Helper()
	const n, horizon = 6, 300
	mustOnOff := func() Source {
		src, err := NewOnOff(n, 3, 40, horizon, 9)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	mustPerm := func() Source {
		src, err := NewPermutation([]cell.Port{2, 0, 1, 5, 3, 4}, horizon)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	mustHotspot := func() Source {
		src, err := NewHotspot(n, 0.1, 0.7, 2, horizon, 13)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	mkTrace := func() *Trace {
		tr := NewTrace()
		for _, s := range []cell.Time{0, 7, 8, 40, 41, 199} {
			tr.MustAdd(s, cell.Port(int(s)%n), cell.Port(int(s+1)%n))
		}
		return tr
	}
	mustConcat := func() Source {
		burst, err := NewPermutation([]cell.Port{1, 0}, 4)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewConcat(Part{Source: burst, GapAfter: 37}, Part{Source: mkTrace().Shift(0), GapAfter: 0})
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	mustBvN := func() Source {
		lambda := [][]float64{
			{0.30, 0.00, 0.10},
			{0.00, 0.25, 0.00},
			{0.05, 0.00, 0.20},
		}
		src, err := NewBvN(lambda, horizon, 0)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	mustReplayedTrace := func() Source {
		// The serialize round-trip: a trace marshalled to its canonical JSON
		// and decoded into a fresh replay source must answer NextArrival
		// like the original.
		data, err := json.Marshal(mkTrace())
		if err != nil {
			t.Fatal(err)
		}
		replay := NewTrace()
		if err := json.Unmarshal(data, replay); err != nil {
			t.Fatal(err)
		}
		return replay
	}
	return []struct {
		name string
		mk   func() Source
	}{
		{"cbr", func() Source {
			return &CBR{
				Flows:  []cell.Flow{{In: 0, Out: 3}, {In: 1, Out: 2}, {In: 4, Out: 4}},
				Period: 17,
				Phase:  []cell.Time{5, 0, 11},
				Until:  horizon,
			}
		}},
		{"bernoulli", func() Source { return NewBernoulli(n, 0.04, horizon, 7) }},
		{"bernoulli-zero-load", func() Source { return NewBernoulli(n, 0, horizon, 7) }},
		{"onoff", mustOnOff},
		{"permutation", mustPerm},
		{"hotspot", mustHotspot},
		{"flood", func() Source { return &Flood{N: n, Out: 1, Until: 5} }},
		{"trace", func() Source { return mkTrace() }},
		{"trace-replayed", mustReplayedTrace},
		{"concat", mustConcat},
		{"bvn", mustBvN},
		{"regulator", func() Source {
			burst, err := NewPermutation([]cell.Port{1, 0, 2}, 9)
			if err != nil {
				t.Fatal(err)
			}
			return NewRegulator(3, 1, burst)
		}},
		{"regulator-bernoulli", func() Source {
			return NewRegulator(n, 2, NewBernoulli(n, 0.05, 120, 21))
		}},
	}
}

// scanLinear replays src slot by slot through limit and returns the arrivals
// of every non-empty slot, in order.
func scanLinear(src Source, limit cell.Time) (slots []cell.Time, content [][]Arrival) {
	var buf []Arrival
	for t := cell.Time(0); t < limit; t++ {
		buf = src.Arrivals(t, buf[:0])
		if len(buf) > 0 {
			slots = append(slots, t)
			content = append(content, append([]Arrival(nil), buf...))
		}
	}
	return slots, content
}

// TestLookaheadAgreesWithLinearScan is the Lookahead contract, checked per
// bundled generator: walking a source with the engine's peek-then-consume
// pattern (NextArrival, then Arrivals on the returned slot) must visit
// exactly the non-empty slots a slot-by-slot replay of an identical twin
// visits, with identical cells, and report None (or a slot past the scan
// limit, for shaped sources whose backlog outlives it) afterwards.
func TestLookaheadAgreesWithLinearScan(t *testing.T) {
	const limit = 400
	for _, tc := range lookaheadCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			wantSlots, wantContent := scanLinear(tc.mk(), limit)

			src := tc.mk()
			look, ok := src.(Lookahead)
			if !ok {
				t.Fatalf("%T does not implement Lookahead", src)
			}
			after := cell.Time(-1)
			var buf []Arrival
			for i := 0; ; i++ {
				na := look.NextArrival(after)
				if na == cell.None || na >= limit {
					if i != len(wantSlots) {
						t.Fatalf("lookahead walk ended after %d non-empty slots (next=%d), linear scan found %d", i, na, len(wantSlots))
					}
					break
				}
				if i >= len(wantSlots) {
					t.Fatalf("NextArrival(%d) = %d, but the linear scan has no non-empty slot left before %d", after, na, limit)
				}
				if na != wantSlots[i] {
					t.Fatalf("NextArrival(%d) = %d, linear scan says next non-empty slot is %d", after, na, wantSlots[i])
				}
				buf = src.Arrivals(na, buf[:0])
				if !reflect.DeepEqual(append([]Arrival(nil), buf...), wantContent[i]) {
					t.Fatalf("slot %d: lookahead twin delivers %v, linear twin %v", na, buf, wantContent[i])
				}
				after = na
			}
		})
	}
}

// TestLookaheadInterleavesWithStepping checks the other consumption pattern
// the engine uses: stepping silent slots one by one (the drain micro-step
// phase queries Arrivals for slots the lookahead already proved empty — via
// the harness they are simply skipped, but a partial jump leaves a mix).
// Querying NextArrival between ordinary consecutive Arrivals calls must not
// perturb the stream.
func TestLookaheadInterleavesWithStepping(t *testing.T) {
	const limit = 400
	for _, tc := range lookaheadCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			wantSlots, wantContent := scanLinear(tc.mk(), limit)
			want := make(map[cell.Time][]Arrival, len(wantSlots))
			for i, s := range wantSlots {
				want[s] = wantContent[i]
			}

			src := tc.mk()
			look := src.(Lookahead)
			var buf []Arrival
			for t2 := cell.Time(0); t2 < limit; t2++ {
				// Peek every 7 slots; the answer must never contradict the
				// linear reference, and consuming through it must too.
				if t2%7 == 0 {
					na := look.NextArrival(t2 - 1)
					wantNext := cell.None
					for _, s := range wantSlots {
						if s >= t2 {
							wantNext = s
							break
						}
					}
					if wantNext == cell.None {
						if na != cell.None && na < limit {
							t.Fatalf("NextArrival(%d) = %d, want none before %d", t2-1, na, limit)
						}
					} else if na != wantNext {
						t.Fatalf("NextArrival(%d) = %d, want %d", t2-1, na, wantNext)
					}
				}
				buf = src.Arrivals(t2, buf[:0])
				if got, wantA := append([]Arrival(nil), buf...), want[t2]; !reflect.DeepEqual(got, wantA) {
					t.Fatalf("slot %d: got %v, want %v", t2, got, wantA)
				}
			}
		})
	}
}

// TestLookaheadBufferPanicsOnSkippedSlot pins the misuse guard: querying
// NextArrival past a buffered, unconsumed arrival slot would silently lose
// cells, so it must panic instead.
func TestLookaheadBufferPanicsOnSkippedSlot(t *testing.T) {
	src := NewBernoulli(4, 0.5, 100, 3)
	na := src.NextArrival(-1)
	if na == cell.None {
		t.Fatal("expected an arrival at load 0.5")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic when NextArrival skips the buffered slot")
		}
	}()
	src.NextArrival(na) // skips the buffered, unconsumed slot na
}

func ExampleLookahead() {
	src := &CBR{Flows: []cell.Flow{{In: 0, Out: 1}}, Period: 50, Until: 200}
	fmt.Println(src.NextArrival(-1), src.NextArrival(0), src.NextArrival(149))
	// Output: 0 50 150
}

// muteSource is an unbounded source that never emits and offers no
// Lookahead — the pathological inner source for the Regulator scan cap: it
// cannot be proved silent, so before the cap existed NextArrival scanned
// forward forever.
type muteSource struct{}

func (muteSource) Arrivals(t cell.Time, dst []Arrival) []Arrival { return dst }
func (muteSource) End() cell.Time                                { return cell.None }

// TestRegulatorNextArrivalScanCap pins the bounded-scan contract: over an
// unbounded, lookahead-less, never-emitting inner source with an empty
// shaping backlog, NextArrival answers cell.None after at most
// RegulatorScanHorizon scanned slots instead of hanging. A finite (non-cap)
// exit on the same shape — a bounded End — must still answer exactly.
func TestRegulatorNextArrivalScanCap(t *testing.T) {
	r := NewRegulator(4, 2, muteSource{})
	if na := r.NextArrival(-1); na != cell.None {
		t.Errorf("NextArrival(-1) = %d over a mute unbounded source, want none", na)
	}
	// The cap is relative to `after`, so a later query is bounded too.
	if na := r.NextArrival(1000); na != cell.None {
		t.Errorf("NextArrival(1000) = %d over a mute unbounded source, want none", na)
	}
}
