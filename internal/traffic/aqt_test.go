package traffic

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func TestAQTValidation(t *testing.T) {
	tr := NewTrace()
	tr.MustAdd(0, 0, 0)
	if _, err := AQTExcess(2, tr, 0, 1); err == nil {
		t.Error("w=0 must be rejected")
	}
	if _, err := AQTExcess(2, tr, 4, 0); err == nil {
		t.Error("rho=0 must be rejected")
	}
	if _, err := AQTExcess(2, &Flood{N: 2, Out: 0, Until: cell.None}, 4, 1); err == nil {
		t.Error("unbounded source must be rejected")
	}
}

func TestFloodViolatesAQT(t *testing.T) {
	f := &Flood{N: 4, Out: 0, Until: 40}
	ex, err := AQTExcess(4, f, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 cells/slot to output 0 over a 10-slot window = 40, rho*w = 10.
	if ex != 30 {
		t.Errorf("flood AQT excess = %f, want 30", ex)
	}
}

func TestBurstlessTrafficIsAQTAdmissibleAtRhoOne(t *testing.T) {
	tr := NewTrace()
	for s := cell.Time(0); s < 30; s++ {
		tr.MustAdd(s, cell.Port(s%3), 0)
	}
	ex, err := AQTExcess(3, tr, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ex > 0 {
		t.Errorf("rate-R burstless traffic must be (w, 1)-admissible, excess %f", ex)
	}
}

// Property (the Discussion's claim): any (R=1, B) leaky-bucket stream is
// (w, 1 + B/w)-admissible for every window w — the paper's flows satisfy
// the adversarial-queueing restrictions too.
func TestLeakyBucketIsAQTAdmissible(t *testing.T) {
	prop := func(seed int64, bRaw, wRaw uint8) bool {
		const n = 4
		b := int64(bRaw % 6)
		w := cell.Time(wRaw%20) + 1
		// Shape random bursty demand to (R=1, B).
		demand, err := NewOnOff(n, 5, 2, 80, seed)
		if err != nil {
			return false
		}
		reg := NewRegulator(n, b, demand)
		tr := NewTrace()
		var buf []Arrival
		for s := cell.Time(0); s < 800; s++ {
			buf = reg.Arrivals(s, nil)
			for _, a := range buf {
				if err := tr.Add(s, a.In, a.Out); err != nil {
					return false
				}
			}
			if s > 80 && reg.Backlog() == 0 {
				break
			}
		}
		if tr.End() == 0 {
			return true
		}
		rho := 1 + float64(b)/float64(w)
		ex, err := AQTExcess(n, tr, w, rho)
		if err != nil {
			return false
		}
		return ex <= 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
