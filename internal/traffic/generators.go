package traffic

import (
	"fmt"
	"math/rand"

	"ppsim/internal/cell"
)

// CBR emits one cell on each configured flow every Period slots, starting at
// the flow's Phase. With Period >= number of flows sharing a port it is
// (1, 0) leaky-bucket conformant.
type CBR struct {
	Flows  []cell.Flow
	Period cell.Time
	Phase  []cell.Time // per-flow phase; nil means all zero
	Until  cell.Time   // emit arrivals for slots < Until; None = unbounded
}

// Arrivals implements Source.
func (c *CBR) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	if c.Until != cell.None && t >= c.Until {
		return dst
	}
	for i, f := range c.Flows {
		var ph cell.Time
		if c.Phase != nil {
			ph = c.Phase[i]
		}
		if t >= ph && (t-ph)%c.Period == 0 {
			dst = append(dst, Arrival{In: f.In, Out: f.Out})
		}
	}
	return dst
}

// End implements Source.
func (c *CBR) End() cell.Time { return c.Until }

// appendPerSlot expands a span for stateless closed-form sources: replay
// Arrivals for each slot of [from, to) into dst and stamp each appended
// entry's slot. One call's worth of loop overhead replaces to-from interface
// crossings on the harness side.
func appendPerSlot(src Source, dst []Arrival, from, to cell.Time) []Arrival {
	if end := src.End(); end != cell.None && to > end {
		to = end
	}
	for t := from; t < to; t++ {
		start := len(dst)
		dst = src.Arrivals(t, dst)
		for i := start; i < len(dst); i++ {
			dst[i].T = t
		}
	}
	return dst
}

// AppendArrivals implements BatchSource.
func (c *CBR) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return appendPerSlot(c, dst, from, to)
}

// NextArrival implements Lookahead in closed form: the earliest per-flow
// emission slot strictly after `after`, minimized over flows.
func (c *CBR) NextArrival(after cell.Time) cell.Time {
	best := cell.None
	for i := range c.Flows {
		var ph cell.Time
		if c.Phase != nil {
			ph = c.Phase[i]
		}
		t := ph
		if after >= ph {
			t = ph + ((after-ph)/c.Period+1)*c.Period
		}
		if c.Until != cell.None && t >= c.Until {
			continue
		}
		if best == cell.None || t < best {
			best = t
		}
	}
	return best
}

// Bernoulli is independent identically distributed traffic: each slot, each
// input receives a cell with probability Load, destined to an output drawn
// from the destination distribution. It models the admissible random traffic
// used for average-case contrast experiments (E13).
type Bernoulli struct {
	n     int
	load  float64
	dist  []float64 // per-input CDF over outputs, row-major n*n
	rng   *rand.Rand
	until cell.Time
	la    lookaheadBuffer
}

// NewBernoulli returns iid traffic on an n x n switch at the given per-input
// load with uniformly distributed destinations.
func NewBernoulli(n int, load float64, until cell.Time, seed int64) *Bernoulli {
	w := make([]float64, n*n)
	for i := range w {
		w[i] = 1
	}
	b, err := NewBernoulliWeighted(n, load, w, until, seed)
	if err != nil {
		panic(err) // uniform weights are always valid
	}
	return b
}

// NewBernoulliWeighted returns iid traffic where input i sends to output j
// with probability proportional to weights[i*n+j]. It returns an error if
// any row of weights sums to zero or load is outside [0, 1].
func NewBernoulliWeighted(n int, load float64, weights []float64, until cell.Time, seed int64) (*Bernoulli, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: Bernoulli needs n > 0, got %d", n)
	}
	if load < 0 || load > 1 {
		return nil, fmt.Errorf("traffic: load %f outside [0,1]", load)
	}
	if len(weights) != n*n {
		return nil, fmt.Errorf("traffic: weights length %d, want %d", len(weights), n*n)
	}
	dist := make([]float64, n*n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if weights[i*n+j] < 0 {
				return nil, fmt.Errorf("traffic: negative weight at (%d,%d)", i, j)
			}
			sum += weights[i*n+j]
		}
		if sum == 0 {
			return nil, fmt.Errorf("traffic: weight row %d sums to zero", i)
		}
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += weights[i*n+j] / sum
			dist[i*n+j] = acc
		}
		dist[i*n+n-1] = 1 // guard against rounding
	}
	return &Bernoulli{
		n: n, load: load, dist: dist,
		rng:   rand.New(rand.NewSource(seed)),
		until: until,
	}, nil
}

// Arrivals implements Source. Note that successive calls must be made with
// strictly increasing t for the stream to be reproducible.
func (b *Bernoulli) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	return b.la.arrivals(t, dst, b.generate)
}

// generate draws slot t's arrivals, advancing the RNG exactly as a stepped
// replay would — lookaheadBuffer routes both Arrivals and NextArrival scans
// through it so the stream stays reproducible either way.
func (b *Bernoulli) generate(t cell.Time, dst []Arrival) []Arrival {
	if b.until != cell.None && t >= b.until {
		return dst
	}
	for i := 0; i < b.n; i++ {
		if b.rng.Float64() >= b.load {
			continue
		}
		u := b.rng.Float64()
		row := b.dist[i*b.n : (i+1)*b.n]
		j := 0
		for j < b.n-1 && u > row[j] {
			j++
		}
		dst = append(dst, Arrival{In: cell.Port(i), Out: cell.Port(j)})
	}
	return dst
}

// End implements Source.
func (b *Bernoulli) End() cell.Time { return b.until }

// AppendArrivals implements BatchSource via the lookahead buffer's span
// path, so the RNG draw order matches a stepped replay bit for bit.
func (b *Bernoulli) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return b.la.appendSpan(from, to, dst, b.generate)
}

// NextArrival implements Lookahead by scanning forward through generate, so
// the RNG draws land in the same order as a stepped replay.
func (b *Bernoulli) NextArrival(after cell.Time) cell.Time {
	if b.load <= 0 {
		return cell.None // zero load never emits; an unbounded scan would spin
	}
	return b.la.nextArrival(after, b.until, b.generate)
}

// OnOff is bursty two-state traffic: each input alternates between an ON
// state (a cell arrives every slot, all toward the input's current target
// output) and an OFF state (silence). State dwell times are geometric.
type OnOff struct {
	n            int
	pOnToOff     float64
	pOffToOn     float64
	rng          *rand.Rand
	until        cell.Time
	on           []bool
	target       []cell.Port
	retargetOnOn bool
	la           lookaheadBuffer
}

// NewOnOff returns bursty traffic on an n x n switch. meanOn and meanOff are
// the mean dwell times in slots (must be >= 1). Each ON burst picks a fresh
// uniform target output.
func NewOnOff(n int, meanOn, meanOff float64, until cell.Time, seed int64) (*OnOff, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traffic: OnOff needs n > 0")
	}
	if meanOn < 1 || meanOff < 1 {
		return nil, fmt.Errorf("traffic: mean dwell times must be >= 1 slot")
	}
	o := &OnOff{
		n:            n,
		pOnToOff:     1 / meanOn,
		pOffToOn:     1 / meanOff,
		rng:          rand.New(rand.NewSource(seed)),
		until:        until,
		on:           make([]bool, n),
		target:       make([]cell.Port, n),
		retargetOnOn: true,
	}
	return o, nil
}

// Arrivals implements Source.
func (o *OnOff) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	return o.la.arrivals(t, dst, o.generate)
}

// generate advances every input's two-state chain by one slot, drawing the
// RNG exactly as a stepped replay would (see Bernoulli.generate).
func (o *OnOff) generate(t cell.Time, dst []Arrival) []Arrival {
	if o.until != cell.None && t >= o.until {
		return dst
	}
	for i := 0; i < o.n; i++ {
		if o.on[i] {
			dst = append(dst, Arrival{In: cell.Port(i), Out: o.target[i]})
			if o.rng.Float64() < o.pOnToOff {
				o.on[i] = false
			}
		} else if o.rng.Float64() < o.pOffToOn {
			o.on[i] = true
			if o.retargetOnOn {
				o.target[i] = cell.Port(o.rng.Intn(o.n))
			}
		}
	}
	return dst
}

// End implements Source.
func (o *OnOff) End() cell.Time { return o.until }

// AppendArrivals implements BatchSource (see Bernoulli.AppendArrivals).
func (o *OnOff) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return o.la.appendSpan(from, to, dst, o.generate)
}

// NextArrival implements Lookahead. The scan terminates with probability one:
// pOffToOn >= 1/meanOff > 0, so some input eventually turns on.
func (o *OnOff) NextArrival(after cell.Time) cell.Time {
	return o.la.nextArrival(after, o.until, o.generate)
}

// Permutation emits, every slot, one cell per input following a fixed
// permutation (input i -> output perm[i]). It is the heaviest admissible
// no-conflict traffic: per-port rate exactly R with zero burstiness.
type Permutation struct {
	Perm  []cell.Port
	Until cell.Time
}

// NewPermutation returns full-rate permutation traffic. It returns an error
// if perm is not a permutation of 0..n-1.
func NewPermutation(perm []cell.Port, until cell.Time) (*Permutation, error) {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if int(p) < 0 || int(p) >= len(perm) || seen[p] {
			return nil, fmt.Errorf("traffic: %v is not a permutation", perm)
		}
		seen[p] = true
	}
	return &Permutation{Perm: perm, Until: until}, nil
}

// Arrivals implements Source.
func (p *Permutation) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	if p.Until != cell.None && t >= p.Until {
		return dst
	}
	for i, out := range p.Perm {
		dst = append(dst, Arrival{In: cell.Port(i), Out: out})
	}
	return dst
}

// End implements Source.
func (p *Permutation) End() cell.Time { return p.Until }

// AppendArrivals implements BatchSource.
func (p *Permutation) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return appendPerSlot(p, dst, from, to)
}

// NextArrival implements Lookahead: a non-empty permutation emits every slot.
func (p *Permutation) NextArrival(after cell.Time) cell.Time {
	if len(p.Perm) == 0 {
		return cell.None
	}
	t := after + 1
	if t < 0 {
		t = 0
	}
	if p.Until != cell.None && t >= p.Until {
		return cell.None
	}
	return t
}

// Hotspot sends a fraction of every input's Bernoulli traffic to a single
// hot output and spreads the remainder uniformly. Per-output admissibility
// requires n * load * hotFrac <= 1 for the hot output; the constructor does
// not enforce it so that over-subscribed (flooding) scenarios can be built
// deliberately (Section 5 of the paper).
type Hotspot struct {
	inner *Bernoulli
}

// NewHotspot builds the weighted Bernoulli source described above.
func NewHotspot(n int, load, hotFrac float64, hot cell.Port, until cell.Time, seed int64) (*Hotspot, error) {
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("traffic: hotFrac %f outside [0,1]", hotFrac)
	}
	w := make([]float64, n*n)
	cold := (1 - hotFrac) / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w[i*n+j] = cold
		}
		w[i*n+int(hot)] += hotFrac
	}
	b, err := NewBernoulliWeighted(n, load, w, until, seed)
	if err != nil {
		return nil, err
	}
	return &Hotspot{inner: b}, nil
}

// Arrivals implements Source.
func (h *Hotspot) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	return h.inner.Arrivals(t, dst)
}

// End implements Source.
func (h *Hotspot) End() cell.Time { return h.inner.End() }

// AppendArrivals implements BatchSource by delegating to the weighted
// Bernoulli.
func (h *Hotspot) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return h.inner.AppendArrivals(dst, from, to)
}

// NextArrival implements Lookahead by delegating to the weighted Bernoulli.
func (h *Hotspot) NextArrival(after cell.Time) cell.Time {
	return h.inner.NextArrival(after)
}

// Flood sends, every slot, one cell from every input to the same output —
// rate N*R toward one port. It is deliberately NOT leaky-bucket conformant
// for any fixed B; Section 5 uses it to create congested periods.
type Flood struct {
	N     int
	Out   cell.Port
	Until cell.Time
}

// Arrivals implements Source.
func (f *Flood) Arrivals(t cell.Time, dst []Arrival) []Arrival {
	if f.Until != cell.None && t >= f.Until {
		return dst
	}
	for i := 0; i < f.N; i++ {
		dst = append(dst, Arrival{In: cell.Port(i), Out: f.Out})
	}
	return dst
}

// End implements Source.
func (f *Flood) End() cell.Time { return f.Until }

// AppendArrivals implements BatchSource.
func (f *Flood) AppendArrivals(dst []Arrival, from, to cell.Time) []Arrival {
	return appendPerSlot(f, dst, from, to)
}

// NextArrival implements Lookahead: a flood with inputs emits every slot.
func (f *Flood) NextArrival(after cell.Time) cell.Time {
	if f.N <= 0 {
		return cell.None
	}
	t := after + 1
	if t < 0 {
		t = 0
	}
	if f.Until != cell.None && t >= f.Until {
		return cell.None
	}
	return t
}
