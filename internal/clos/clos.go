// Package clos models three-stage Clos networks. The PPS is "a three-stage
// Clos network [8] with K < N switches in its center stage" (Section 1 of
// the paper); this package provides the classical combinatorial results the
// architecture rests on: the strict-sense nonblocking condition m >= 2n-1,
// the rearrangeability condition m >= n (Slepian-Duguid), and a
// constructive route assignment that realizes any partial permutation with
// m >= n middle switches via bipartite edge coloring.
package clos

import "fmt"

// Network is a symmetric Clos(m, n, r) network: r ingress switches of size
// n x m, m middle switches of size r x r, and r egress switches of size
// m x n. It has n*r external ports on each side.
type Network struct {
	// M is the number of middle-stage switches.
	M int
	// N is the number of external ports per edge switch.
	N int
	// R is the number of edge switches per side.
	R int
}

// New validates and returns a Clos(m, n, r) descriptor.
func New(m, n, r int) (Network, error) {
	if m <= 0 || n <= 0 || r <= 0 {
		return Network{}, fmt.Errorf("clos: all of m, n, r must be positive (got %d, %d, %d)", m, n, r)
	}
	return Network{M: m, N: n, R: r}, nil
}

// Ports returns the number of external ports per side, n*r.
func (c Network) Ports() int { return c.N * c.R }

// StrictlyNonBlocking reports Clos's 1953 condition m >= 2n-1: any request
// between an idle input and an idle output can be routed without moving
// existing connections.
func (c Network) StrictlyNonBlocking() bool { return c.M >= 2*c.N-1 }

// Rearrangeable reports the Slepian-Duguid condition m >= n: any partial
// permutation can be realized, possibly rearranging existing connections.
func (c Network) Rearrangeable() bool { return c.M >= c.N }

// FromPPS describes the N x N PPS with K planes as a Clos network: each
// input-port is a 1 x K ingress stage, each plane an N x N middle switch,
// each output-port a K x 1 egress stage — Clos(K, 1, N).
func FromPPS(n, k int) (Network, error) { return New(k, 1, n) }

// Request is one connection: external input port In to external output port
// Out, both in [0, Ports()).
type Request struct {
	In  int
	Out int
}

// Route assigns a middle switch to every request such that no two requests
// sharing an ingress or egress switch use the same middle switch. The
// request set must be a partial permutation (each input and each output
// used at most once). Routing succeeds whenever the network is
// rearrangeable; with m < n it fails as soon as some edge switch carries
// more than m requests.
//
// The algorithm is bipartite edge coloring with Delta <= m colors: build
// the multigraph whose left vertices are ingress switches, right vertices
// egress switches, and edges the requests; color edges greedily, repairing
// conflicts along alternating color paths (the Slepian-Duguid argument made
// executable).
func (c Network) Route(reqs []Request) ([]int, error) {
	ports := c.Ports()
	inUsed := make([]bool, ports)
	outUsed := make([]bool, ports)
	for _, q := range reqs {
		if q.In < 0 || q.In >= ports || q.Out < 0 || q.Out >= ports {
			return nil, fmt.Errorf("clos: request %+v outside %d ports", q, ports)
		}
		if inUsed[q.In] {
			return nil, fmt.Errorf("clos: input %d requested twice", q.In)
		}
		if outUsed[q.Out] {
			return nil, fmt.Errorf("clos: output %d requested twice", q.Out)
		}
		inUsed[q.In] = true
		outUsed[q.Out] = true
	}

	// Degree check: each edge switch carries at most m requests.
	degIn := make([]int, c.R)
	degOut := make([]int, c.R)
	for _, q := range reqs {
		u, v := q.In/c.N, q.Out/c.N
		degIn[u]++
		degOut[v]++
		if degIn[u] > c.M {
			return nil, fmt.Errorf("clos: ingress switch %d carries %d requests but only %d middle switches exist", u, degIn[u], c.M)
		}
		if degOut[v] > c.M {
			return nil, fmt.Errorf("clos: egress switch %d carries %d requests but only %d middle switches exist", v, degOut[v], c.M)
		}
	}

	// colorAtIn[u][c] / colorAtOut[v][c] = request index using color c at
	// that vertex, or -1.
	colorAtIn := make([][]int, c.R)
	colorAtOut := make([][]int, c.R)
	for i := 0; i < c.R; i++ {
		colorAtIn[i] = make([]int, c.M)
		colorAtOut[i] = make([]int, c.M)
		for x := 0; x < c.M; x++ {
			colorAtIn[i][x] = -1
			colorAtOut[i][x] = -1
		}
	}
	assign := make([]int, len(reqs))
	for i := range assign {
		assign[i] = -1
	}

	freeColor := func(slots []int) int {
		for x, r := range slots {
			if r < 0 {
				return x
			}
		}
		return -1
	}

	for e, q := range reqs {
		u, v := q.In/c.N, q.Out/c.N
		a := freeColor(colorAtIn[u])
		b := freeColor(colorAtOut[v])
		if a < 0 || b < 0 {
			// Cannot happen after the degree check, but guard anyway.
			return nil, fmt.Errorf("clos: no free middle switch at edge switches %d/%d", u, v)
		}
		if colorAtOut[v][a] < 0 {
			// a is free at both endpoints.
			assign[e] = a
			colorAtIn[u][a] = e
			colorAtOut[v][a] = e
			continue
		}
		// a is free at u but used at v, and b is free at v. Collect the
		// alternating (a, b) path starting with v's a-edge; it cannot
		// revisit u (u has no a-edge) or v (v has no b-edge), so it is
		// simple and flipping its colors frees a at v.
		var path []int
		color := a
		vtx, atEgress := v, true
		for {
			var pe int
			if atEgress {
				pe = colorAtOut[vtx][color]
			} else {
				pe = colorAtIn[vtx][color]
			}
			if pe < 0 {
				break
			}
			if len(path) > len(reqs) {
				return nil, fmt.Errorf("clos: internal error: alternating path is not simple")
			}
			path = append(path, pe)
			pq := reqs[pe]
			if atEgress {
				vtx = pq.In / c.N
			} else {
				vtx = pq.Out / c.N
			}
			atEgress = !atEgress
			if color == a {
				color = b
			} else {
				color = a
			}
		}
		// Flip: clear the old slots (only where still owned), then set.
		for _, pe := range path {
			pq := reqs[pe]
			pu, pv := pq.In/c.N, pq.Out/c.N
			old := assign[pe]
			if colorAtIn[pu][old] == pe {
				colorAtIn[pu][old] = -1
			}
			if colorAtOut[pv][old] == pe {
				colorAtOut[pv][old] = -1
			}
		}
		for _, pe := range path {
			pq := reqs[pe]
			pu, pv := pq.In/c.N, pq.Out/c.N
			nc := a
			if assign[pe] == a {
				nc = b
			}
			assign[pe] = nc
			colorAtIn[pu][nc] = pe
			colorAtOut[pv][nc] = pe
		}
		assign[e] = a
		colorAtIn[u][a] = e
		colorAtOut[v][a] = e
	}

	// Sanity: verify the coloring before returning it.
	if err := c.Verify(reqs, assign); err != nil {
		return nil, fmt.Errorf("clos: internal coloring bug: %w", err)
	}
	return assign, nil
}

// Verify checks that a middle-switch assignment is conflict-free.
func (c Network) Verify(reqs []Request, assign []int) error {
	if len(reqs) != len(assign) {
		return fmt.Errorf("clos: %d requests but %d assignments", len(reqs), len(assign))
	}
	type slot struct{ sw, color int }
	seenIn := make(map[slot]int)
	seenOut := make(map[slot]int)
	for e, q := range reqs {
		m := assign[e]
		if m < 0 || m >= c.M {
			return fmt.Errorf("clos: request %d assigned invalid middle switch %d", e, m)
		}
		u, v := q.In/c.N, q.Out/c.N
		if prev, ok := seenIn[slot{u, m}]; ok {
			return fmt.Errorf("clos: requests %d and %d share middle %d from ingress %d", prev, e, m, u)
		}
		if prev, ok := seenOut[slot{v, m}]; ok {
			return fmt.Errorf("clos: requests %d and %d share middle %d to egress %d", prev, e, m, v)
		}
		seenIn[slot{u, m}] = e
		seenOut[slot{v, m}] = e
	}
	return nil
}
