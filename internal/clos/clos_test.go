package clos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Error("m=0 must be rejected")
	}
	if _, err := New(1, 0, 1); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := New(1, 1, 0); err == nil {
		t.Error("r=0 must be rejected")
	}
	c, err := New(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ports() != 8 {
		t.Errorf("Ports = %d", c.Ports())
	}
}

func TestNonblockingPredicates(t *testing.T) {
	cases := []struct {
		m, n          int
		strict, rearr bool
	}{
		{3, 2, true, true},  // m = 2n-1
		{2, 2, false, true}, // m = n
		{1, 2, false, false},
		{5, 3, true, true},
		{4, 3, false, true},
	}
	for _, tc := range cases {
		c, _ := New(tc.m, tc.n, 4)
		if c.StrictlyNonBlocking() != tc.strict {
			t.Errorf("Clos(%d,%d,4).Strict = %v", tc.m, tc.n, c.StrictlyNonBlocking())
		}
		if c.Rearrangeable() != tc.rearr {
			t.Errorf("Clos(%d,%d,4).Rearrangeable = %v", tc.m, tc.n, c.Rearrangeable())
		}
	}
}

func TestFromPPS(t *testing.T) {
	c, err := FromPPS(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.M != 2 || c.N != 1 || c.R != 5 {
		t.Errorf("FromPPS(5,2) = %+v", c)
	}
	// A PPS is rearrangeable as a Clos network whenever K >= 1 (n = 1);
	// its scalability problem is rate, not connectivity — which is the
	// paper's point.
	if !c.Rearrangeable() {
		t.Error("PPS-as-Clos must be rearrangeable")
	}
}

func TestRouteFullPermutation(t *testing.T) {
	c, _ := New(3, 3, 4) // rearrangeable (m = n)
	perm := rand.New(rand.NewSource(1)).Perm(c.Ports())
	var reqs []Request
	for in, out := range perm {
		reqs = append(reqs, Request{In: in, Out: out})
	}
	assign, err := c.Route(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(reqs, assign); err != nil {
		t.Fatal(err)
	}
}

func TestRouteValidation(t *testing.T) {
	c, _ := New(2, 2, 2)
	if _, err := c.Route([]Request{{In: 9, Out: 0}}); err == nil {
		t.Error("out-of-range input must be rejected")
	}
	if _, err := c.Route([]Request{{In: 0, Out: 0}, {In: 0, Out: 1}}); err == nil {
		t.Error("duplicate input must be rejected")
	}
	if _, err := c.Route([]Request{{In: 0, Out: 0}, {In: 1, Out: 0}}); err == nil {
		t.Error("duplicate output must be rejected")
	}
}

func TestRouteFailsBeyondCapacity(t *testing.T) {
	// m=1 < n=2: two requests from the same ingress switch cannot be
	// routed.
	c, _ := New(1, 2, 2)
	reqs := []Request{{In: 0, Out: 0}, {In: 1, Out: 2}}
	if _, err := c.Route(reqs); err == nil {
		t.Error("over-capacity request set must be rejected")
	}
}

func TestVerifyCatchesConflicts(t *testing.T) {
	c, _ := New(2, 2, 2)
	reqs := []Request{{In: 0, Out: 0}, {In: 1, Out: 2}} // same ingress switch
	if err := c.Verify(reqs, []int{0, 0}); err == nil {
		t.Error("shared middle from one ingress must be caught")
	}
	if err := c.Verify(reqs, []int{0}); err == nil {
		t.Error("length mismatch must be caught")
	}
	if err := c.Verify(reqs, []int{0, 5}); err == nil {
		t.Error("invalid middle index must be caught")
	}
	if err := c.Verify(reqs, []int{0, 1}); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

// Property (Slepian-Duguid): any partial permutation routes on a
// rearrangeable network (m = n), for random shapes and request sets.
func TestRearrangeableAlwaysRoutes(t *testing.T) {
	prop := func(seed int64, nRaw, rRaw uint8) bool {
		n := int(nRaw%4) + 1
		r := int(rRaw%4) + 1
		c, err := New(n, n, r)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(c.Ports())
		var reqs []Request
		for in, out := range perm {
			if rng.Float64() < 0.8 { // partial permutation
				reqs = append(reqs, Request{In: in, Out: out})
			}
		}
		assign, err := c.Route(reqs)
		if err != nil {
			return false
		}
		return c.Verify(reqs, assign) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: with strictly nonblocking m = 2n-1 the same holds (more room).
func TestStrictAlwaysRoutes(t *testing.T) {
	prop := func(seed int64) bool {
		const n, r = 4, 5
		c, _ := New(2*n-1, n, r)
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(c.Ports())
		reqs := make([]Request, 0, len(perm))
		for in, out := range perm {
			reqs = append(reqs, Request{In: in, Out: out})
		}
		assign, err := c.Route(reqs)
		return err == nil && c.Verify(reqs, assign) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
