// Package plane models one middle-stage switch of the PPS: an N x N
// output-queued switch operating at the internal rate r, with one FIFO per
// output-port (Figure 1 of the paper). Cells are enqueued by the
// demultiplexors over the input-side lines and drained toward the PPS
// output-ports over the output-side lines; both line banks are rate-limited
// by the fabric, not by the plane itself.
//
// The plane's scheduling policy is deliberately optimal-FIFO: the
// lower-bound proofs explicitly do not depend on the planes' scheduling,
// which "may be optimal" (remark after Lemma 4) — only on the fact that
// cells are not dropped.
//
// Queues hold cell.Ref handles into the shared columnar cell.Store, not
// cell values: pushing or popping moves four bytes, and the queue rings of
// all K planes stay dense in cache.
//
// A plane can be marked failed to exercise the fault-tolerance argument of
// Section 3 (static plane partitioning amplifies the damage of a single
// plane failure).
package plane

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// Plane is one center-stage switch.
type Plane struct {
	id     cell.Plane
	n      int
	s      *cell.Store
	queues []queue.FIFO[cell.Ref]
	total  int
	failed bool
	// peak tracks the largest per-output backlog ever observed; large
	// relative queuing delays imply large plane buffers (Section 1.2).
	peak int
}

// New returns plane id for an n x n PPS, backed by store s. It panics if
// n <= 0 or s is nil.
func New(id cell.Plane, n int, s *cell.Store) *Plane {
	if n <= 0 {
		panic(fmt.Sprintf("plane: invalid port count %d", n))
	}
	if s == nil {
		panic("plane: nil cell store")
	}
	return &Plane{id: id, n: n, s: s, queues: make([]queue.FIFO[cell.Ref], n)}
}

// ID returns the plane's index in the center stage.
func (p *Plane) ID() cell.Plane { return p.id }

// Ports returns N.
func (p *Plane) Ports() int { return p.n }

// Enqueue accepts a cell (by ref) switched through this plane. It returns an
// error if the plane has failed (the cell would be dropped — the fabric
// surfaces this as an execution failure, since the model forbids drops) or
// if the destination is out of range; the caller keeps ownership of the ref
// on error.
func (p *Plane) Enqueue(r cell.Ref) error {
	c := p.s.At(r)
	if p.failed {
		return fmt.Errorf("plane %d: cell %v dispatched to a failed plane", p.id, *c)
	}
	j := int(c.Flow.Out)
	if j < 0 || j >= p.n {
		return fmt.Errorf("plane %d: destination out of range: %v", p.id, *c)
	}
	p.queues[j].Push(r)
	p.total++
	if l := p.queues[j].Len(); l > p.peak {
		p.peak = l
	}
	return nil
}

// QueueLen reports the backlog for output j.
func (p *Plane) QueueLen(j cell.Port) int { return p.queues[j].Len() }

// HeadRef returns the head ref for output j without removing it; ok is
// false when the queue is empty.
func (p *Plane) HeadRef(j cell.Port) (cell.Ref, bool) {
	if p.queues[j].Empty() {
		return 0, false
	}
	return p.queues[j].Peek(), true
}

// Head returns a copy of the head cell for output j (diagnostics and tests;
// the hot path uses HeadRef).
func (p *Plane) Head(j cell.Port) (cell.Cell, bool) {
	r, ok := p.HeadRef(j)
	if !ok {
		return cell.Cell{}, false
	}
	return *p.s.At(r), true
}

// Pop removes and returns the head ref for output j. It panics on an empty
// queue (a multiplexor bug).
func (p *Plane) Pop(j cell.Port) cell.Ref {
	r := p.queues[j].Pop()
	p.total--
	return r
}

// PopDeferred removes and returns the head ref for output j without
// updating the plane-wide backlog counter. The fabric's sharded mux stage
// uses it so concurrent per-output workers touch only their own queue; the
// caller must reconcile the counter with AddBacklogDelta after its stage
// barrier, before anything reads Backlog again.
func (p *Plane) PopDeferred(j cell.Port) cell.Ref {
	return p.queues[j].Pop()
}

// PopBatch removes up to max head refs for output j (all of them when
// max < 0), appending to dst. The backlog counter is updated inline; use it
// from single-goroutine contexts only.
func (p *Plane) PopBatch(j cell.Port, max int, dst []cell.Ref) []cell.Ref {
	q := &p.queues[j]
	for !q.Empty() && max != 0 {
		dst = append(dst, q.Pop())
		p.total--
		if max > 0 {
			max--
		}
	}
	return dst
}

// AddBacklogDelta adjusts the backlog counter by d (negative for pops taken
// through PopDeferred). It must only be called from a single goroutine.
func (p *Plane) AddBacklogDelta(d int) { p.total += d }

// Backlog reports the total number of cells queued in the plane.
func (p *Plane) Backlog() int { return p.total }

// PeakQueue reports the largest per-output backlog observed so far.
func (p *Plane) PeakQueue() int { return p.peak }

// Fail marks the plane failed: subsequent Enqueue calls error. Cells already
// queued continue to drain (the output lines are assumed intact). This is
// the Abort-policy failure mode; under DropCount the fabric uses FailDrop.
func (p *Plane) Fail() { p.failed = true }

// FailDrop marks the plane failed and empties every per-output queue,
// appending the removed cells to dst in ascending output order (FIFO order
// within an output) so the fabric can account them as drops. The refs are
// freed back to the store — the drop list owns plain cell copies. This is
// the DropCount-policy failure mode: the plane's memory dies with it.
func (p *Plane) FailDrop(dst []cell.Cell) []cell.Cell {
	p.failed = true
	for j := range p.queues {
		q := &p.queues[j]
		for !q.Empty() {
			dst = append(dst, p.s.Take(q.Pop()))
		}
	}
	p.total = 0
	return dst
}

// Recover returns a failed plane to service: subsequent Enqueue calls
// succeed again. Under DropCount the plane rejoins empty (FailDrop emptied
// it); under Abort any backlog that survived the outage simply resumes
// normal service. Recover on a live plane is a no-op.
func (p *Plane) Recover() { p.failed = false }

// Failed reports whether the plane has been failed.
func (p *Plane) Failed() bool { return p.failed }
