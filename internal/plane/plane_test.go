package plane

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func mk(seq uint64, out cell.Port) cell.Cell {
	return cell.New(seq, 0, cell.Flow{In: 0, Out: out}, 0)
}

func TestEnqueuePopFIFO(t *testing.T) {
	p := New(0, 4)
	for i := uint64(0); i < 5; i++ {
		if err := p.Enqueue(mk(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if p.QueueLen(2) != 5 || p.Backlog() != 5 {
		t.Fatalf("QueueLen=%d Backlog=%d", p.QueueLen(2), p.Backlog())
	}
	h, ok := p.Head(2)
	if !ok || h.Seq != 0 {
		t.Errorf("Head = %v %v", h, ok)
	}
	for i := uint64(0); i < 5; i++ {
		if c := p.Pop(2); c.Seq != i {
			t.Errorf("Pop = %d, want %d", c.Seq, i)
		}
	}
	if _, ok := p.Head(2); ok {
		t.Error("Head on empty queue should report !ok")
	}
	if p.Backlog() != 0 {
		t.Error("backlog should be zero")
	}
}

func TestQueuesAreIndependent(t *testing.T) {
	p := New(1, 3)
	p.Enqueue(mk(0, 0))
	p.Enqueue(mk(1, 2))
	if p.QueueLen(0) != 1 || p.QueueLen(1) != 0 || p.QueueLen(2) != 1 {
		t.Error("queues must be independent per output")
	}
}

func TestEnqueueRangeCheck(t *testing.T) {
	p := New(0, 2)
	if err := p.Enqueue(mk(0, 5)); err == nil {
		t.Error("out-of-range destination must error")
	}
}

func TestFailurePreventsEnqueueNotDrain(t *testing.T) {
	p := New(0, 2)
	p.Enqueue(mk(0, 1))
	p.Fail()
	if !p.Failed() {
		t.Error("Failed should report true")
	}
	if err := p.Enqueue(mk(1, 1)); err == nil {
		t.Error("enqueue to failed plane must error")
	}
	if c := p.Pop(1); c.Seq != 0 {
		t.Error("queued cells must still drain after failure")
	}
}

func TestPeakQueue(t *testing.T) {
	p := New(0, 2)
	for i := uint64(0); i < 7; i++ {
		p.Enqueue(mk(i, 0))
	}
	p.Pop(0)
	p.Pop(0)
	p.Enqueue(mk(7, 0))
	if p.PeakQueue() != 7 {
		t.Errorf("PeakQueue = %d, want 7", p.PeakQueue())
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 0)
}

// Property: per-output FIFO order is preserved for any enqueue pattern.
func TestPerOutputOrder(t *testing.T) {
	prop := func(dests []uint8) bool {
		const n = 4
		p := New(0, n)
		want := make([][]uint64, n)
		for i, d := range dests {
			out := cell.Port(d % n)
			if err := p.Enqueue(mk(uint64(i), out)); err != nil {
				return false
			}
			want[out] = append(want[out], uint64(i))
		}
		for j := 0; j < n; j++ {
			for _, w := range want[j] {
				if c := p.Pop(cell.Port(j)); c.Seq != w {
					return false
				}
			}
			if p.QueueLen(cell.Port(j)) != 0 {
				return false
			}
		}
		return p.Backlog() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
