package plane

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

// bank bundles a store with a plane so tests can enqueue plain cells.
type bank struct {
	s *cell.Store
	p *Plane
}

func newBank(id cell.Plane, n int) *bank {
	s := cell.NewStore(1)
	return &bank{s: s, p: New(id, n, s)}
}

func (b *bank) enqueue(c cell.Cell) error {
	r := b.s.Put(0, c)
	if err := b.p.Enqueue(r); err != nil {
		b.s.Free(r)
		return err
	}
	return nil
}

func (b *bank) pop(j cell.Port) cell.Cell { return b.s.Take(b.p.Pop(j)) }

func mk(seq uint64, out cell.Port) cell.Cell {
	return cell.New(seq, 0, cell.Flow{In: 0, Out: out}, 0)
}

func TestEnqueuePopFIFO(t *testing.T) {
	b := newBank(0, 4)
	p := b.p
	for i := uint64(0); i < 5; i++ {
		if err := b.enqueue(mk(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if p.QueueLen(2) != 5 || p.Backlog() != 5 {
		t.Fatalf("QueueLen=%d Backlog=%d", p.QueueLen(2), p.Backlog())
	}
	h, ok := p.Head(2)
	if !ok || h.Seq != 0 {
		t.Errorf("Head = %v %v", h, ok)
	}
	if r, ok := p.HeadRef(2); !ok || b.s.At(r).Seq != 0 {
		t.Errorf("HeadRef = %v %v", r, ok)
	}
	for i := uint64(0); i < 5; i++ {
		if c := b.pop(2); c.Seq != i {
			t.Errorf("Pop = %d, want %d", c.Seq, i)
		}
	}
	if _, ok := p.Head(2); ok {
		t.Error("Head on empty queue should report !ok")
	}
	if p.Backlog() != 0 || b.s.Live() != 0 {
		t.Errorf("backlog %d / live %d should be zero", p.Backlog(), b.s.Live())
	}
}

func TestQueuesAreIndependent(t *testing.T) {
	b := newBank(1, 3)
	b.enqueue(mk(0, 0))
	b.enqueue(mk(1, 2))
	if b.p.QueueLen(0) != 1 || b.p.QueueLen(1) != 0 || b.p.QueueLen(2) != 1 {
		t.Error("queues must be independent per output")
	}
}

func TestEnqueueRangeCheck(t *testing.T) {
	b := newBank(0, 2)
	if err := b.enqueue(mk(0, 5)); err == nil {
		t.Error("out-of-range destination must error")
	}
	if b.s.Live() != 0 {
		t.Error("rejected cell must not stay live in the store")
	}
}

func TestFailurePreventsEnqueueNotDrain(t *testing.T) {
	b := newBank(0, 2)
	b.enqueue(mk(0, 1))
	b.p.Fail()
	if !b.p.Failed() {
		t.Error("Failed should report true")
	}
	if err := b.enqueue(mk(1, 1)); err == nil {
		t.Error("enqueue to failed plane must error")
	}
	if c := b.pop(1); c.Seq != 0 {
		t.Error("queued cells must still drain after failure")
	}
}

func TestPeakQueue(t *testing.T) {
	b := newBank(0, 2)
	for i := uint64(0); i < 7; i++ {
		b.enqueue(mk(i, 0))
	}
	b.pop(0)
	b.pop(0)
	b.enqueue(mk(7, 0))
	if b.p.PeakQueue() != 7 {
		t.Errorf("PeakQueue = %d, want 7", b.p.PeakQueue())
	}
}

func TestPopBatch(t *testing.T) {
	b := newBank(0, 2)
	for i := uint64(0); i < 6; i++ {
		b.enqueue(mk(i, 1))
	}
	refs := b.p.PopBatch(1, 4, nil)
	if len(refs) != 4 {
		t.Fatalf("PopBatch(max=4) returned %d refs", len(refs))
	}
	for i, r := range refs {
		if got := b.s.At(r).Seq; got != uint64(i) {
			t.Errorf("batch[%d].Seq = %d, want %d", i, got, i)
		}
	}
	if b.p.Backlog() != 2 || b.p.QueueLen(1) != 2 {
		t.Errorf("Backlog = %d, QueueLen = %d after batch", b.p.Backlog(), b.p.QueueLen(1))
	}
	// max < 0 drains the rest; appending to the same dst keeps FIFO order.
	refs = b.p.PopBatch(1, -1, refs)
	if len(refs) != 6 || b.p.Backlog() != 0 {
		t.Fatalf("full drain: %d refs, backlog %d", len(refs), b.p.Backlog())
	}
	if got := b.s.At(refs[5]).Seq; got != 5 {
		t.Errorf("last batch ref Seq = %d, want 5", got)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 0, cell.NewStore(1))
}

func TestNewNilStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 2, nil)
}

// Property: per-output FIFO order is preserved for any enqueue pattern.
func TestPerOutputOrder(t *testing.T) {
	prop := func(dests []uint8) bool {
		const n = 4
		b := newBank(0, n)
		want := make([][]uint64, n)
		for i, d := range dests {
			out := cell.Port(d % n)
			if err := b.enqueue(mk(uint64(i), out)); err != nil {
				return false
			}
			want[out] = append(want[out], uint64(i))
		}
		for j := 0; j < n; j++ {
			for _, w := range want[j] {
				if c := b.pop(cell.Port(j)); c.Seq != w {
					return false
				}
			}
			if b.p.QueueLen(cell.Port(j)) != 0 {
				return false
			}
		}
		return b.p.Backlog() == 0 && b.s.Live() == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
