package plane

import (
	"testing"

	"ppsim/internal/cell"
)

func TestFailDropDrainsEverything(t *testing.T) {
	p := New(0, 4)
	var seq uint64
	push := func(out cell.Port) cell.Cell {
		c := cell.New(seq, seq, cell.Flow{In: 0, Out: out}, 0)
		seq++
		if err := p.Enqueue(c); err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Interleave outputs so FIFO-within-output and ascending-output order
	// are distinguishable in the drained slice.
	push(2)
	push(0)
	push(2)
	push(1)
	dropped := p.FailDrop(nil)
	if !p.Failed() {
		t.Fatal("FailDrop left the plane live")
	}
	if p.Backlog() != 0 {
		t.Errorf("Backlog = %d after FailDrop", p.Backlog())
	}
	wantOut := []cell.Port{0, 1, 2, 2}
	wantSeq := []uint64{1, 3, 0, 2}
	if len(dropped) != len(wantOut) {
		t.Fatalf("FailDrop returned %d cells, want %d", len(dropped), len(wantOut))
	}
	for i, c := range dropped {
		if c.Flow.Out != wantOut[i] || c.Seq != wantSeq[i] {
			t.Errorf("dropped[%d] = out %d seq %d, want out %d seq %d",
				i, c.Flow.Out, c.Seq, wantOut[i], wantSeq[i])
		}
	}
	if err := p.Enqueue(cell.New(99, 0, cell.Flow{Out: 0}, 0)); err == nil {
		t.Error("failed plane accepted a cell")
	}
}

func TestFailDropAppendsToDst(t *testing.T) {
	p := New(1, 2)
	if err := p.Enqueue(cell.New(0, 0, cell.Flow{Out: 1}, 0)); err != nil {
		t.Fatal(err)
	}
	scratch := make([]cell.Cell, 0, 8)
	scratch = append(scratch, cell.New(7, 7, cell.Flow{}, 0))
	out := p.FailDrop(scratch)
	if len(out) != 2 || out[0].Seq != 7 || out[1].Seq != 0 {
		t.Errorf("FailDrop did not append to dst: %v", out)
	}
}

func TestRecoverRejoinsEmpty(t *testing.T) {
	p := New(0, 2)
	if err := p.Enqueue(cell.New(0, 0, cell.Flow{Out: 0}, 0)); err != nil {
		t.Fatal(err)
	}
	p.FailDrop(nil)
	p.Recover()
	if p.Failed() {
		t.Fatal("Recover left the plane failed")
	}
	if p.Backlog() != 0 {
		t.Errorf("recovered plane backlog = %d, want 0", p.Backlog())
	}
	if err := p.Enqueue(cell.New(1, 1, cell.Flow{Out: 1}, 5)); err != nil {
		t.Errorf("recovered plane rejected a cell: %v", err)
	}
	// Recover on a live plane is a no-op.
	p.Recover()
	if p.Failed() || p.Backlog() != 1 {
		t.Error("no-op Recover perturbed the plane")
	}
}
