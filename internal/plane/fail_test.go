package plane

import (
	"testing"

	"ppsim/internal/cell"
)

func TestFailDropDrainsEverything(t *testing.T) {
	b := newBank(0, 4)
	var seq uint64
	push := func(out cell.Port) {
		c := cell.New(seq, seq, cell.Flow{In: 0, Out: out}, 0)
		seq++
		if err := b.enqueue(c); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave outputs so FIFO-within-output and ascending-output order
	// are distinguishable in the drained slice.
	push(2)
	push(0)
	push(2)
	push(1)
	dropped := b.p.FailDrop(nil)
	if !b.p.Failed() {
		t.Fatal("FailDrop left the plane live")
	}
	if b.p.Backlog() != 0 {
		t.Errorf("Backlog = %d after FailDrop", b.p.Backlog())
	}
	if b.s.Live() != 0 {
		t.Errorf("store still holds %d live refs after FailDrop", b.s.Live())
	}
	wantOut := []cell.Port{0, 1, 2, 2}
	wantSeq := []uint64{1, 3, 0, 2}
	if len(dropped) != len(wantOut) {
		t.Fatalf("FailDrop returned %d cells, want %d", len(dropped), len(wantOut))
	}
	for i, c := range dropped {
		if c.Flow.Out != wantOut[i] || c.Seq != wantSeq[i] {
			t.Errorf("dropped[%d] = out %d seq %d, want out %d seq %d",
				i, c.Flow.Out, c.Seq, wantOut[i], wantSeq[i])
		}
	}
	if err := b.enqueue(cell.New(99, 0, cell.Flow{Out: 0}, 0)); err == nil {
		t.Error("failed plane accepted a cell")
	}
}

func TestFailDropAppendsToDst(t *testing.T) {
	b := newBank(1, 2)
	if err := b.enqueue(cell.New(0, 0, cell.Flow{Out: 1}, 0)); err != nil {
		t.Fatal(err)
	}
	scratch := make([]cell.Cell, 0, 8)
	scratch = append(scratch, cell.New(7, 7, cell.Flow{}, 0))
	out := b.p.FailDrop(scratch)
	if len(out) != 2 || out[0].Seq != 7 || out[1].Seq != 0 {
		t.Errorf("FailDrop did not append to dst: %v", out)
	}
}

func TestRecoverRejoinsEmpty(t *testing.T) {
	b := newBank(0, 2)
	if err := b.enqueue(cell.New(0, 0, cell.Flow{Out: 0}, 0)); err != nil {
		t.Fatal(err)
	}
	b.p.FailDrop(nil)
	b.p.Recover()
	if b.p.Failed() {
		t.Fatal("Recover left the plane failed")
	}
	if b.p.Backlog() != 0 {
		t.Errorf("recovered plane backlog = %d, want 0", b.p.Backlog())
	}
	if err := b.enqueue(cell.New(1, 1, cell.Flow{Out: 1}, 5)); err != nil {
		t.Errorf("recovered plane rejected a cell: %v", err)
	}
	// Recover on a live plane is a no-op.
	b.p.Recover()
	if b.p.Failed() || b.p.Backlog() != 1 {
		t.Error("no-op Recover perturbed the plane")
	}
}
