// Package pipeline chains switches in series: the departures of one stage
// are re-clocked as the arrivals of the next, with a port remapping in
// between (output j of stage s feeds input j of stage s+1; destinations are
// rewritten per stage). Multi-stage deployments are where relative queuing
// delay compounds — the Discussion's jitter-regulator sizing question and
// the Cruz end-to-end bounds (experiment E23) both live here.
//
// Cell identity across stages is tracked by per-input FIFO order. This is
// sound because Remap is a function of the departing output alone, so every
// next-stage input carries exactly one flow — and the switches preserve
// per-flow order, making per-input FIFO identical to per-flow FIFO.
package pipeline

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/stats"
	"ppsim/internal/traffic"
)

// Stage is one switch in the chain.
type Stage struct {
	// Config is the stage's geometry.
	Config fabric.Config
	// Factory builds the stage's demultiplexing algorithm.
	Factory func(demux.Env) (demux.Algorithm, error)
	// Remap rewrites a departing cell's destination for the next stage
	// (the cell enters the next stage on the input matching the output it
	// departed from). nil keeps the destination.
	Remap func(out cell.Port) cell.Port
}

// Result summarizes a pipeline run.
type Result struct {
	// Stages holds each stage's own harness result (vs its own shadow).
	Stages []harness.Result
	// EndToEnd summarizes per-cell total delay: departure from the last
	// stage minus arrival at the first.
	EndToEnd struct {
		Mean float64
		P99  cell.Time
		Max  cell.Time
	}
	// Cells is the number of cells traced end to end.
	Cells int
}

// Run pushes src through the stages. Every stage must have the same port
// count. opts applies to each stage run (Horizon is interpreted per stage).
func Run(stages []Stage, src traffic.Source, opts harness.Options) (Result, error) {
	if len(stages) == 0 {
		return Result{}, fmt.Errorf("pipeline: need at least one stage")
	}
	n := stages[0].Config.N
	for i, s := range stages[1:] {
		if s.Config.N != n {
			return Result{}, fmt.Errorf("pipeline: stage %d has %d ports, stage 0 has %d", i+1, s.Config.N, n)
		}
	}

	var res Result
	// origin[stage][input][k] = first-stage arrival slot of the k-th cell
	// the stage receives on that input (per-input FIFO identity).
	cur := src
	var origins [][]cell.Time // per input: first-stage arrival slots, FIFO
	for si, st := range stages {
		var departs []cell.Cell
		opts := opts
		opts.OnPPSDepart = func(c cell.Cell) { departs = append(departs, c) }
		r, err := harness.Run(st.Config, st.Factory, cur, opts)
		if err != nil {
			return Result{}, fmt.Errorf("pipeline: stage %d: %w", si, err)
		}
		res.Stages = append(res.Stages, r)

		if si == 0 {
			// Seed identities from first-stage arrivals, keyed by the
			// output each cell leaves from (that is the next stage's
			// input), in departure order.
			origins = make([][]cell.Time, n)
			for _, c := range departs {
				origins[c.Flow.Out] = append(origins[c.Flow.Out], c.Arrive)
			}
		} else {
			next := make([][]cell.Time, n)
			idx := make([]int, n)
			for _, c := range departs {
				in := int(c.Flow.In)
				if idx[in] >= len(origins[in]) {
					return Result{}, fmt.Errorf("pipeline: stage %d input %d received more cells than stage %d delivered", si, in, si-1)
				}
				t0 := origins[in][idx[in]]
				idx[in]++
				next[c.Flow.Out] = append(next[c.Flow.Out], t0)
			}
			origins = next
		}

		if si == len(stages)-1 {
			// Final stage: compute end-to-end delays. Reconstruct each
			// departure's origin the same way the bookkeeping above did.
			var sum stats.Summary
			if si == 0 {
				for _, c := range departs {
					sum.Add(int64(c.Depart - c.Arrive))
				}
			} else {
				// origins was just rebuilt keyed by *this* stage's
				// outputs in departure order; replay departures again.
				idx := make([]int, n)
				for _, c := range departs {
					out := int(c.Flow.Out)
					t0 := origins[out][idx[out]]
					idx[out]++
					sum.Add(int64(c.Depart - t0))
				}
			}
			res.Cells = sum.N()
			res.EndToEnd.Mean = sum.Mean()
			res.EndToEnd.P99 = cell.Time(sum.Percentile(99))
			res.EndToEnd.Max = cell.Time(sum.Max())
			return res, nil
		}

		// Re-clock departures into the next stage's arrival trace.
		tr := traffic.NewTrace()
		remap := st.Remap
		for _, c := range departs {
			dst := c.Flow.Out
			if remap != nil {
				dst = remap(c.Flow.Out)
			}
			if err := tr.Add(c.Depart, c.Flow.Out, dst); err != nil {
				return Result{}, fmt.Errorf("pipeline: re-clocking stage %d: %w", si, err)
			}
		}
		cur = tr
	}
	return res, nil
}
