package pipeline

import (
	"strings"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func cpaStage(n, k int, rp int64, remap func(cell.Port) cell.Port) Stage {
	return Stage{
		Config:  fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true},
		Factory: func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) },
		Remap:   remap,
	}
}

func rrStage(n, k int, rp int64, remap func(cell.Port) cell.Port) Stage {
	return Stage{
		Config:  fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true},
		Factory: func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerInput) },
		Remap:   remap,
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, traffic.NewTrace(), harness.Options{}); err == nil {
		t.Error("empty pipeline must be rejected")
	}
	stages := []Stage{cpaStage(4, 4, 2, nil), cpaStage(8, 4, 2, nil)}
	if _, err := Run(stages, traffic.NewTrace(), harness.Options{}); err == nil ||
		!strings.Contains(err.Error(), "ports") {
		t.Errorf("port mismatch must be rejected: %v", err)
	}
}

func TestSingleStageEqualsHarness(t *testing.T) {
	const n = 4
	tr := traffic.NewTrace()
	for s := cell.Time(0); s < 20; s++ {
		tr.MustAdd(s, cell.Port(s%4), cell.Port((s+1)%4))
	}
	res, err := Run([]Stage{cpaStage(n, 4, 2, nil)}, tr, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 20 {
		t.Errorf("Cells = %d", res.Cells)
	}
	// CPA at S=2 on light traffic: cells cross in their arrival slot.
	if res.EndToEnd.Max != 0 {
		t.Errorf("single CPA stage end-to-end max = %d, want 0", res.EndToEnd.Max)
	}
	if len(res.Stages) != 1 {
		t.Errorf("Stages = %d", len(res.Stages))
	}
}

func TestTwoCleanStagesAddNoDelayOnLightTraffic(t *testing.T) {
	const n = 4
	tr := traffic.NewTrace()
	for s := cell.Time(0); s < 30; s++ {
		tr.MustAdd(s, cell.Port(s%n), cell.Port((s+1)%n))
	}
	rot := func(out cell.Port) cell.Port { return (out + 1) % n }
	res, err := Run([]Stage{cpaStage(n, 4, 2, rot), cpaStage(n, 4, 2, nil)}, tr, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 30 {
		t.Fatalf("Cells = %d", res.Cells)
	}
	if res.EndToEnd.Max != 0 {
		t.Errorf("two clean CPA stages should add no delay: max = %d", res.EndToEnd.Max)
	}
}

func TestCongestedFirstStageShowsInEndToEnd(t *testing.T) {
	// Stage 1 concentrates (fresh rr pointers all hit plane 0); stage 2 is
	// clean. End-to-end delay must carry stage 1's concentration.
	const n, rp = 6, 3
	tr := traffic.NewTrace()
	for i := 0; i < n; i++ {
		tr.MustAdd(cell.Time(i), cell.Port(i), 0)
	}
	res, err := Run([]Stage{
		rrStage(n, 3, rp, nil),
		cpaStage(n, 6, rp, nil),
	}, tr, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1 delays the last cell by (n-1)(r'-1) = 10 beyond its arrival.
	want := cell.Time((n - 1) * (rp - 1))
	if res.EndToEnd.Max < want {
		t.Errorf("end-to-end max = %d, want >= %d", res.EndToEnd.Max, want)
	}
	if res.Stages[0].Report.MaxRQD == 0 {
		t.Error("stage 1 should have concentrated")
	}
	if res.Stages[1].Report.MaxRQD != 0 {
		t.Errorf("stage 2 (CPA, spaced arrivals) should be clean, RQD = %d", res.Stages[1].Report.MaxRQD)
	}
}

func TestEndToEndDelayAtLeastSumOfArrivalSpans(t *testing.T) {
	// Sanity: end-to-end mean >= each stage's own mean contribution is
	// hard to assert exactly; instead check monotonicity: adding a stage
	// never reduces the end-to-end maximum.
	const n = 4
	mk := func() *traffic.Trace {
		tr := traffic.NewTrace()
		for s := cell.Time(0); s < 40; s++ {
			tr.MustAdd(s, cell.Port(s%n), cell.Port((s+3)%n))
		}
		return tr
	}
	one, err := Run([]Stage{rrStage(n, 4, 2, nil)}, mk(), harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run([]Stage{rrStage(n, 4, 2, nil), rrStage(n, 4, 2, nil)}, mk(), harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if two.EndToEnd.Max < one.EndToEnd.Max {
		t.Errorf("adding a stage reduced the max delay: %d -> %d", one.EndToEnd.Max, two.EndToEnd.Max)
	}
}
