package cioq

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

func TestValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("speedup 0 must be rejected")
	}
	s, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ports() != 4 || s.Speedup() != 2 {
		t.Error("accessors wrong")
	}
}

func TestSingleCellImmediate(t *testing.T) {
	s, _ := New(4, 1)
	st := cell.NewStamper()
	c := st.Stamp(cell.Flow{In: 0, Out: 3}, 0)
	deps, err := s.Step(0, []cell.Cell{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0].Depart != 0 {
		t.Fatalf("deps = %v", deps)
	}
}

// run drives the CIOQ switch and an OQ shadow on the same stream, returning
// the max relative delay.
func run(t *testing.T, n, speedup int, src traffic.Source, maxSlots cell.Time) cell.Time {
	t.Helper()
	s, err := New(n, speedup)
	if err != nil {
		t.Fatal(err)
	}
	sh := shadow.New(n)
	st := cell.NewStamper()
	shadowDep := map[uint64]cell.Time{}
	var worst cell.Time
	end := src.End()
	var buf []traffic.Arrival
	var deps, shDeps []cell.Cell
	pending := map[uint64]cell.Time{}
	for slot := cell.Time(0); slot < maxSlots; slot++ {
		if slot >= end && s.Drained() && sh.Drained() {
			for seq, pd := range pending {
				if rqd := pd - shadowDep[seq]; rqd > worst {
					worst = rqd
				}
			}
			return worst
		}
		var cells []cell.Cell
		if slot < end {
			buf = src.Arrivals(slot, buf[:0])
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
		}
		deps, err = s.Step(slot, cells, deps[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deps {
			pending[d.Seq] = d.Depart
		}
		shDeps = sh.Step(slot, cells, shDeps[:0])
		for _, d := range shDeps {
			shadowDep[d.Seq] = d.Depart
		}
	}
	t.Fatalf("did not drain in %d slots", maxSlots)
	return 0
}

func TestSpeedupTwoTracksOQ(t *testing.T) {
	// Urgency-ordered matching at speedup 2 mimics the OQ switch on
	// admissible traffic (the Chuang et al. regime).
	const n = 6
	src := traffic.NewRegulator(n, 3, traffic.NewBernoulli(n, 0.8, 500, 5))
	if worst := run(t, n, 2, src, 10_000); worst > 0 {
		t.Errorf("speedup-2 CIOQ relative delay = %d, want 0", worst)
	}
}

func TestSpeedupOneFallsBehind(t *testing.T) {
	// Speedup 1 under concentrated + crossing traffic cannot keep up with
	// the OQ reference.
	const n = 6
	tr := traffic.NewTrace()
	for s := cell.Time(0); s < 60; s++ {
		for i := 0; i < n; i++ {
			out := cell.Port(0)
			if (int(s)+i)%2 == 1 {
				out = cell.Port(1 + (i % (n - 1)))
			}
			tr.MustAdd(s, cell.Port(i), out)
		}
	}
	w1 := run(t, n, 1, tr, 10_000)
	tr2 := traffic.NewTrace()
	for s := cell.Time(0); s < 60; s++ {
		for i := 0; i < n; i++ {
			out := cell.Port(0)
			if (int(s)+i)%2 == 1 {
				out = cell.Port(1 + (i % (n - 1)))
			}
			tr2.MustAdd(s, cell.Port(i), out)
		}
	}
	w2 := run(t, n, 2, tr2, 10_000)
	if w1 <= w2 {
		t.Errorf("speedup 1 (%d) should trail speedup 2 (%d)", w1, w2)
	}
}

func TestConservationAndOrder(t *testing.T) {
	prop := func(seed int64, speedupRaw bool) bool {
		n, speedup := 4, 1
		if speedupRaw {
			speedup = 2
		}
		s, err := New(n, speedup)
		if err != nil {
			return false
		}
		src := traffic.NewBernoulli(n, 0.7, 120, seed)
		st := cell.NewStamper()
		lastFlowSeq := map[cell.Flow]uint64{}
		var buf []traffic.Arrival
		var deps []cell.Cell
		delivered := uint64(0)
		for slot := cell.Time(0); slot < 5000; slot++ {
			buf = src.Arrivals(slot, buf[:0])
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			deps, err = s.Step(slot, cells, deps[:0])
			if err != nil {
				return false
			}
			for _, d := range deps {
				delivered++
				if last, ok := lastFlowSeq[d.Flow]; ok && d.FlowSeq != last+1 {
					return false // per-flow order broken
				} else if !ok && d.FlowSeq != 0 {
					return false
				}
				lastFlowSeq[d.Flow] = d.FlowSeq
			}
			if slot > 120 && s.Drained() {
				break
			}
		}
		return s.Drained() && delivered == st.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestStepValidation(t *testing.T) {
	s, _ := New(2, 1)
	st := cell.NewStamper()
	if _, err := s.Step(0, []cell.Cell{st.Stamp(cell.Flow{In: 0, Out: 9}, 0)}, nil); err == nil {
		t.Error("out-of-range output must be rejected")
	}
	s2, _ := New(2, 1)
	s2.Step(1, nil, nil)
	if _, err := s2.Step(0, nil, nil); err == nil {
		t.Error("non-monotone slots must be rejected")
	}
	s3, _ := New(2, 1)
	if _, err := s3.Step(0, []cell.Cell{st.Stamp(cell.Flow{In: 0, Out: 1}, 5)}, nil); err == nil {
		t.Error("mis-stamped arrival must be rejected")
	}
}
