// Package cioq implements a combined input-output queued (CIOQ) switch
// with an integer speedup: the fabric runs s matching phases per external
// time-slot, moving cells from virtual output queues (VOQs) at the inputs
// to the output buffers.
//
// The paper's related-work section leans on Chuang, Goel, McKeown and
// Prabhakar: a CIOQ switch needs speedup 2 - 1/N to exactly mimic an
// output-queued switch. This package provides that comparison point for
// the PPS experiments: the scheduler is "most urgent cell first" — in each
// phase, head-of-line cells are considered in increasing shadow-departure
// deadline, and a cell is transferred when both its input and its output
// are still unmatched in that phase. With speedup 2 this greedy
// urgency-ordered matching tracks the reference switch closely; with
// speedup 1 it degrades into plain input-queued behaviour.
package cioq

import (
	"fmt"
	"sort"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
	"ppsim/internal/shadow"
)

// Switch is an N x N CIOQ switch with the given speedup (phases per slot).
type Switch struct {
	n       int
	speedup int
	voq     []queue.FIFO[cell.Cell] // [i*n+j]
	outBuf  []queue.FIFO[cell.Cell] // per output, in deadline (= Seq) order
	oracle  *shadow.Oracle
	// deadline[seq] is the shadow departure slot assigned at arrival,
	// indexed densely by global sequence number.
	deadline []cell.Time

	arrived  uint64
	departed uint64
	lastSlot cell.Time

	// scratch
	order []hol
}

type hol struct {
	i, j     int
	deadline cell.Time
	seq      uint64
}

// New returns an N x N CIOQ switch with integer speedup >= 1.
func New(n, speedup int) (*Switch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cioq: invalid port count %d", n)
	}
	if speedup < 1 {
		return nil, fmt.Errorf("cioq: speedup must be >= 1, got %d", speedup)
	}
	return &Switch{
		n:        n,
		speedup:  speedup,
		voq:      make([]queue.FIFO[cell.Cell], n*n),
		outBuf:   make([]queue.FIFO[cell.Cell], n),
		oracle:   shadow.NewOracle(n),
		lastSlot: -1,
	}, nil
}

// Ports returns N.
func (s *Switch) Ports() int { return s.n }

// Speedup returns the phases per slot.
func (s *Switch) Speedup() int { return s.speedup }

// Backlog reports queued cells (VOQs plus output buffers).
func (s *Switch) Backlog() int { return int(s.arrived - s.departed) }

// Drained reports whether everything has departed.
func (s *Switch) Drained() bool { return s.arrived == s.departed }

func (s *Switch) noteDeadline(seq uint64, d cell.Time) {
	for uint64(len(s.deadline)) <= seq {
		s.deadline = append(s.deadline, cell.None)
	}
	s.deadline[seq] = d
}

// Step advances one external slot: arrivals enter VOQs (and receive shadow
// deadlines), the fabric runs `speedup` urgency-ordered matching phases,
// and each output with a buffered cell emits the most urgent one.
// Departures are appended to dst.
func (s *Switch) Step(t cell.Time, arrivals []cell.Cell, dst []cell.Cell) ([]cell.Cell, error) {
	if t <= s.lastSlot {
		return dst, fmt.Errorf("cioq: non-monotone slot %d after %d", t, s.lastSlot)
	}
	s.lastSlot = t
	for _, c := range arrivals {
		if c.Arrive != t {
			return dst, fmt.Errorf("cioq: cell %v presented at slot %d", c, t)
		}
		i, j := int(c.Flow.In), int(c.Flow.Out)
		if i < 0 || i >= s.n || j < 0 || j >= s.n {
			return dst, fmt.Errorf("cioq: cell %v outside %dx%d switch", c, s.n, s.n)
		}
		s.noteDeadline(c.Seq, s.oracle.Departure(t, c.Flow.Out))
		s.voq[i*s.n+j].Push(c)
		s.arrived++
	}

	for phase := 0; phase < s.speedup; phase++ {
		s.matchPhase(t)
	}

	// Emission: one cell per output per slot, most urgent first. Phases
	// can deliver cells out of sequence order, so scan for the minimum;
	// output buffers stay tiny (inflow exceeds the drain rate by at most
	// speedup-1 per slot).
	for j := 0; j < s.n; j++ {
		if s.outBuf[j].Empty() {
			continue
		}
		// Find and remove the minimum-Seq cell (output buffers are tiny:
		// at most speedup new cells per slot above the drain rate).
		minIdx, minSeq := 0, s.outBuf[j].At(0).Seq
		for x := 1; x < s.outBuf[j].Len(); x++ {
			if q := s.outBuf[j].At(x).Seq; q < minSeq {
				minIdx, minSeq = x, q
			}
		}
		c := s.outBuf[j].RemoveAt(minIdx)
		c.Depart = t
		dst = append(dst, c)
		s.departed++
	}
	return dst, nil
}

// matchPhase transfers at most one cell per input and per output, chosen
// by increasing shadow deadline.
func (s *Switch) matchPhase(t cell.Time) {
	s.order = s.order[:0]
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			q := &s.voq[i*s.n+j]
			if q.Empty() {
				continue
			}
			h := q.Peek()
			s.order = append(s.order, hol{i: i, j: j, deadline: s.deadline[h.Seq], seq: h.Seq})
		}
	}
	if len(s.order) == 0 {
		return
	}
	sort.Slice(s.order, func(a, b int) bool {
		if s.order[a].deadline != s.order[b].deadline {
			return s.order[a].deadline < s.order[b].deadline
		}
		return s.order[a].seq < s.order[b].seq
	})
	inUsed := make([]bool, s.n)
	outUsed := make([]bool, s.n)
	for _, h := range s.order {
		if inUsed[h.i] || outUsed[h.j] {
			continue
		}
		inUsed[h.i] = true
		outUsed[h.j] = true
		c := s.voq[h.i*s.n+h.j].Pop()
		c.AtOutput = t
		s.outBuf[h.j].Push(c)
	}
}
