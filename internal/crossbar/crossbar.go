// Package crossbar implements an input-queued crossbar switch with virtual
// output queues (VOQs) and an iSLIP-style iterative round-robin arbiter.
//
// The paper cites arbitrated crossbars (Tamir & Chi [22]) as the prime
// example of u-RT demultiplexing: an input requests, the arbiter grants
// after a delay, and cells wait in input buffers meanwhile — global
// information is used, but with a lag. This package provides that
// substrate so the experiment suite can contrast the PPS bounds with the
// behaviour of a classical arbitrated fabric (experiment E14).
//
// The arbiter is the standard three-phase iSLIP:
//
//	request: every input requests every output with a non-empty VOQ;
//	grant:   every output grants the requesting input nearest its grant
//	         pointer (round-robin);
//	accept:  every input accepts the granting output nearest its accept
//	         pointer; pointers advance only on accepted grants of the
//	         first iteration (the iSLIP de-synchronization rule).
//
// Multiple iterations refine the matching within one slot.
package crossbar

import (
	"fmt"
	"math/rand"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// Arbiter selects the matching discipline.
type Arbiter uint8

// Supported arbiters.
const (
	// ISLIP is the de-synchronizing round-robin arbiter described in the
	// package comment.
	ISLIP Arbiter = iota
	// PIM is parallel iterative matching (Anderson et al.): grants and
	// accepts are chosen uniformly at random each iteration instead of by
	// rotating pointers. Randomness is seeded and local to the arbiter.
	PIM
)

// Switch is an N x N input-queued crossbar.
type Switch struct {
	n          int
	iterations int
	arb        Arbiter
	rng        *rand.Rand
	voq        []queue.FIFO[cell.Cell] // [i*n+j]
	grantPtr   []int                   // per output (iSLIP)
	acceptPtr  []int                   // per input (iSLIP)
	arrived    uint64
	departed   uint64
	lastSlot   cell.Time

	// scratch per slot
	granted  []int // per output: granted input or -1
	accepted []int // per input: accepted output or -1
	matchIn  []bool
	matchOut []bool
	cand     []int
}

// New returns an N x N crossbar whose arbiter runs the given number of
// iSLIP iterations per slot (>= 1).
func New(n, iterations int) (*Switch, error) {
	return NewWithArbiter(n, iterations, ISLIP, 0)
}

// NewWithArbiter selects the arbiter; seed matters only for PIM.
func NewWithArbiter(n, iterations int, arb Arbiter, seed int64) (*Switch, error) {
	if n <= 0 {
		return nil, fmt.Errorf("crossbar: invalid port count %d", n)
	}
	if iterations < 1 {
		return nil, fmt.Errorf("crossbar: need at least one arbiter iteration, got %d", iterations)
	}
	if arb != ISLIP && arb != PIM {
		return nil, fmt.Errorf("crossbar: unknown arbiter %d", arb)
	}
	return &Switch{
		n:          n,
		iterations: iterations,
		arb:        arb,
		rng:        rand.New(rand.NewSource(seed)),
		voq:        make([]queue.FIFO[cell.Cell], n*n),
		grantPtr:   make([]int, n),
		acceptPtr:  make([]int, n),
		granted:    make([]int, n),
		accepted:   make([]int, n),
		matchIn:    make([]bool, n),
		matchOut:   make([]bool, n),
		lastSlot:   -1,
	}, nil
}

// Ports returns N.
func (s *Switch) Ports() int { return s.n }

// VOQLen reports the backlog of the (i, j) virtual output queue.
func (s *Switch) VOQLen(i, j cell.Port) int { return s.voq[int(i)*s.n+int(j)].Len() }

// Backlog reports the total queued cells.
func (s *Switch) Backlog() int { return int(s.arrived - s.departed) }

// Drained reports whether all queues are empty.
func (s *Switch) Drained() bool { return s.arrived == s.departed }

// Step advances one slot: arrivals enter their VOQs, the arbiter computes a
// matching, and one cell crosses per matched (input, output) pair.
// Departures are appended to dst with Depart set.
func (s *Switch) Step(t cell.Time, arrivals []cell.Cell, dst []cell.Cell) ([]cell.Cell, error) {
	if t <= s.lastSlot {
		return dst, fmt.Errorf("crossbar: non-monotone slot %d after %d", t, s.lastSlot)
	}
	s.lastSlot = t
	for _, c := range arrivals {
		if c.Arrive != t {
			return dst, fmt.Errorf("crossbar: cell %v presented at slot %d", c, t)
		}
		i, j := int(c.Flow.In), int(c.Flow.Out)
		if i < 0 || i >= s.n || j < 0 || j >= s.n {
			return dst, fmt.Errorf("crossbar: cell %v outside %dx%d switch", c, s.n, s.n)
		}
		s.voq[i*s.n+j].Push(c)
		s.arrived++
	}

	s.match()

	for i := 0; i < s.n; i++ {
		j := s.accepted[i]
		if j < 0 {
			continue
		}
		c := s.voq[i*s.n+j].Pop()
		c.Depart = t
		dst = append(dst, c)
		s.departed++
	}
	return dst, nil
}

// match runs the iSLIP iterations, filling s.accepted.
func (s *Switch) match() {
	for i := range s.accepted {
		s.accepted[i] = -1
		s.matchIn[i] = false
	}
	for j := range s.matchOut {
		s.matchOut[j] = false
	}
	for iter := 0; iter < s.iterations; iter++ {
		progress := false
		// Grant phase.
		for j := 0; j < s.n; j++ {
			s.granted[j] = -1
			if s.matchOut[j] {
				continue
			}
			switch s.arb {
			case ISLIP:
				for d := 0; d < s.n; d++ {
					i := (s.grantPtr[j] + d) % s.n
					if !s.matchIn[i] && s.voq[i*s.n+j].Len() > 0 {
						s.granted[j] = i
						break
					}
				}
			case PIM:
				s.cand = s.cand[:0]
				for i := 0; i < s.n; i++ {
					if !s.matchIn[i] && s.voq[i*s.n+j].Len() > 0 {
						s.cand = append(s.cand, i)
					}
				}
				if len(s.cand) > 0 {
					s.granted[j] = s.cand[s.rng.Intn(len(s.cand))]
				}
			}
		}
		// Accept phase.
		for i := 0; i < s.n; i++ {
			if s.matchIn[i] {
				continue
			}
			best := -1
			switch s.arb {
			case ISLIP:
				for d := 0; d < s.n; d++ {
					j := (s.acceptPtr[i] + d) % s.n
					if !s.matchOut[j] && s.granted[j] == i {
						best = j
						break
					}
				}
			case PIM:
				s.cand = s.cand[:0]
				for j := 0; j < s.n; j++ {
					if !s.matchOut[j] && s.granted[j] == i {
						s.cand = append(s.cand, j)
					}
				}
				if len(s.cand) > 0 {
					best = s.cand[s.rng.Intn(len(s.cand))]
				}
			}
			if best < 0 {
				continue
			}
			s.accepted[i] = best
			s.matchIn[i] = true
			s.matchOut[best] = true
			progress = true
			// iSLIP pointer update: only on first-iteration accepts, to
			// one past the matched partner.
			if s.arb == ISLIP && iter == 0 {
				s.grantPtr[best] = (i + 1) % s.n
				s.acceptPtr[i] = (best + 1) % s.n
			}
		}
		if !progress {
			break
		}
	}
}
