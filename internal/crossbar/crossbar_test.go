package crossbar

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

func TestValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("0 iterations must be rejected")
	}
	if _, err := NewWithArbiter(4, 1, Arbiter(9), 0); err == nil {
		t.Error("unknown arbiter must be rejected")
	}
}

func TestPIMDeliversEverythingWithoutConflicts(t *testing.T) {
	const n = 6
	s, err := NewWithArbiter(n, 2, PIM, 42)
	if err != nil {
		t.Fatal(err)
	}
	src := traffic.NewBernoulli(n, 0.7, 300, 9)
	st := cell.NewStamper()
	var buf []traffic.Arrival
	var deps []cell.Cell
	delivered := uint64(0)
	for slot := cell.Time(0); slot < 5000; slot++ {
		buf = src.Arrivals(slot, buf[:0])
		cells := make([]cell.Cell, 0, len(buf))
		for _, a := range buf {
			cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
		}
		deps, err = s.Step(slot, cells, deps[:0])
		if err != nil {
			t.Fatal(err)
		}
		var inSeen, outSeen [n]bool
		for _, d := range deps {
			if inSeen[d.Flow.In] || outSeen[d.Flow.Out] {
				t.Fatal("PIM produced a conflicting matching")
			}
			inSeen[d.Flow.In] = true
			outSeen[d.Flow.Out] = true
			delivered++
		}
		if slot > 300 && s.Drained() {
			break
		}
	}
	if !s.Drained() || delivered != st.Count() {
		t.Fatalf("delivered %d of %d", delivered, st.Count())
	}
}

func TestPIMDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		const n = 4
		s, _ := NewWithArbiter(n, 1, PIM, seed)
		src := traffic.NewBernoulli(n, 0.9, 100, 3)
		st := cell.NewStamper()
		var buf []traffic.Arrival
		var deps []cell.Cell
		var sig uint64
		for slot := cell.Time(0); slot < 500; slot++ {
			buf = src.Arrivals(slot, buf[:0])
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			deps, _ = s.Step(slot, cells, deps[:0])
			for _, d := range deps {
				sig = sig*31 + d.Seq + uint64(d.Depart)
			}
			if slot > 100 && s.Drained() {
				break
			}
		}
		return sig
	}
	if run(7) != run(7) {
		t.Error("same seed must reproduce the same execution")
	}
}

func TestSingleCellCrossesImmediately(t *testing.T) {
	s, _ := New(4, 1)
	st := cell.NewStamper()
	c := st.Stamp(cell.Flow{In: 1, Out: 2}, 0)
	deps, err := s.Step(0, []cell.Cell{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 1 || deps[0].Depart != 0 {
		t.Fatalf("departures = %v", deps)
	}
	if !s.Drained() {
		t.Error("should be drained")
	}
}

func TestPermutationFullThroughput(t *testing.T) {
	// A fixed permutation keeps every (input, output) pair distinct;
	// iSLIP must sustain one cell per port per slot with bounded delay.
	const n, slots = 8, 200
	s, _ := New(n, 1)
	st := cell.NewStamper()
	perm := []cell.Port{3, 1, 4, 0, 6, 2, 7, 5}
	total := 0
	var deps []cell.Cell
	for slot := cell.Time(0); slot < slots+50; slot++ {
		var cells []cell.Cell
		if slot < slots {
			for i := 0; i < n; i++ {
				cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(i), Out: perm[i]}, slot))
			}
		}
		var err error
		deps, err = s.Step(slot, cells, deps[:0])
		if err != nil {
			t.Fatal(err)
		}
		total += len(deps)
		for _, d := range deps {
			if delay := d.QueuingDelay(); delay > n {
				t.Fatalf("delay %d too large under permutation traffic", delay)
			}
		}
	}
	if total != n*slots {
		t.Errorf("delivered %d of %d cells", total, n*slots)
	}
}

func TestNoOutputConflicts(t *testing.T) {
	// Never two departures from one output (or one input) in a slot.
	prop := func(seed int64) bool {
		const n = 4
		s, _ := New(n, 2)
		src := traffic.NewBernoulli(n, 0.8, 150, seed)
		st := cell.NewStamper()
		var buf []traffic.Arrival
		var deps []cell.Cell
		for slot := cell.Time(0); slot < 2000; slot++ {
			buf = src.Arrivals(slot, buf[:0])
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			var err error
			deps, err = s.Step(slot, cells, deps[:0])
			if err != nil {
				return false
			}
			var inSeen, outSeen [n]bool
			for _, d := range deps {
				if inSeen[d.Flow.In] || outSeen[d.Flow.Out] {
					return false
				}
				inSeen[d.Flow.In] = true
				outSeen[d.Flow.Out] = true
			}
			if slot > 150 && s.Drained() {
				break
			}
		}
		return s.Drained()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestVOQFIFOWithinFlow(t *testing.T) {
	const n = 4
	s, _ := New(n, 1)
	st := cell.NewStamper()
	var got []uint64
	var deps []cell.Cell
	for slot := cell.Time(0); slot < 40; slot++ {
		var cells []cell.Cell
		if slot < 10 {
			cells = append(cells, st.Stamp(cell.Flow{In: 0, Out: 1}, slot))
		}
		var err error
		deps, err = s.Step(slot, cells, deps[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deps {
			got = append(got, d.FlowSeq)
		}
		if s.Drained() && slot > 10 {
			break
		}
	}
	for i, fs := range got {
		if fs != uint64(i) {
			t.Fatalf("flow order: %v", got)
		}
	}
}

func TestHOLBlockingVersusShadow(t *testing.T) {
	// The u-RT character: with one iteration and adversarial VOQ
	// contention, the crossbar falls behind an output-queued switch.
	const n = 4
	s, _ := New(n, 1)
	sh := shadow.New(n)
	st := cell.NewStamper()
	shadowDep := make(map[uint64]cell.Time)
	var worst cell.Time
	var deps, shDeps []cell.Cell
	ppsDep := make(map[uint64]cell.Time)
	for slot := cell.Time(0); slot < 200; slot++ {
		var cells []cell.Cell
		if slot < 50 {
			// All inputs fight for output 0 and also feed other outputs.
			for i := 0; i < n; i++ {
				out := cell.Port(0)
				if (int(slot)+i)%2 == 1 {
					out = cell.Port(1 + (i % (n - 1)))
				}
				cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(i), Out: out}, slot))
			}
		}
		var err error
		deps, err = s.Step(slot, cells, deps[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range deps {
			ppsDep[d.Seq] = d.Depart
		}
		shDeps = sh.Step(slot, cells, shDeps[:0])
		for _, d := range shDeps {
			shadowDep[d.Seq] = d.Depart
		}
		if slot > 50 && s.Drained() && sh.Drained() {
			break
		}
	}
	if !s.Drained() {
		t.Fatal("crossbar did not drain")
	}
	for seq, pd := range ppsDep {
		if rqd := pd - shadowDep[seq]; rqd > worst {
			worst = rqd
		}
	}
	if worst <= 0 {
		t.Errorf("expected positive relative delay under contention, got %d", worst)
	}
}

func TestMoreIterationsNeverWorseMatching(t *testing.T) {
	// With heavy uniform load, 4 iterations should deliver at least as
	// many cells as 1 iteration over the same trace.
	run := func(iters int) int {
		const n = 8
		s, _ := New(n, iters)
		src := traffic.NewBernoulli(n, 0.95, 300, 123)
		st := cell.NewStamper()
		var buf []traffic.Arrival
		total := 0
		var deps []cell.Cell
		for slot := cell.Time(0); slot < 300; slot++ {
			buf = src.Arrivals(slot, buf[:0])
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			deps, _ = s.Step(slot, cells, deps[:0])
			total += len(deps)
		}
		return total
	}
	if one, four := run(1), run(4); four < one {
		t.Errorf("4-iteration iSLIP delivered %d < 1-iteration %d", four, one)
	}
}

func TestStepValidation(t *testing.T) {
	s, _ := New(2, 1)
	st := cell.NewStamper()
	c := st.Stamp(cell.Flow{In: 0, Out: 5}, 0)
	if _, err := s.Step(0, []cell.Cell{c}, nil); err == nil {
		t.Error("out-of-range destination must be rejected")
	}
	s2, _ := New(2, 1)
	s2.Step(1, nil, nil)
	if _, err := s2.Step(1, nil, nil); err == nil {
		t.Error("non-monotone slot must be rejected")
	}
	s3, _ := New(2, 1)
	bad := st.Stamp(cell.Flow{In: 0, Out: 1}, 9)
	if _, err := s3.Step(0, []cell.Cell{bad}, nil); err == nil {
		t.Error("mis-stamped arrival must be rejected")
	}
}
