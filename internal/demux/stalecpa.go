package demux

import (
	"fmt"
	"math/rand"

	"ppsim/internal/cell"
)

// StaleCPA is a u real-time distributed (u-RT) demultiplexing algorithm
// (Definition 9): every dispatch decision uses the input-port's local
// information up to the current slot plus the switch's global information
// up to slot t-u. It emulates CPA's deadline reasoning on that stale
// picture: it reconstructs, from the global event log capped at t-u, the
// shadow-switch deadline counters, the per-line last transmissions and the
// plane backlogs, overlays the input's own blind-window dispatches (which
// are local information), and picks the plane estimated to reach the
// destination earliest.
//
// Because the reconstruction is deterministic and identical across inputs,
// simultaneous arrivals inside the blind window herd onto the same
// estimated-best plane — the concentration mechanism behind Theorem 10's
// Omega((1 - u'r/R) * u'N/S) bound, driven by leaky-bucket traffic with
// burstiness u'^2 N/K - u'.
type StaleCPA struct {
	sendScratch
	env Env
	u   cell.Time
	// rngs, when non-nil, randomize tie-breaking among equally-estimated
	// planes (one independent stream per input: local randomness). The
	// E19 ablation isolates determinism as the cause of herding: with the
	// same stale information but random tie-breaks, simultaneous arrivals
	// scatter instead of piling onto one plane.
	rngs []*rand.Rand

	cur Cursor
	// Stale reconstruction (events with T <= t-u).
	oracleNext []cell.Time // per output: stale shadow departure counter
	linkNext   []cell.Time // per (k, j): stale earliest next line slot
	backlog    []int64     // per (k, j): stale plane queue length
	// Blind-window overlay: this algorithm instance serves all inputs, but
	// each input may only overlay its *own* recent dispatches. blind[i]
	// holds input i's dispatches with T > t-u.
	blind [][]blindDispatch
}

type blindDispatch struct {
	t   cell.Time
	k   cell.Plane
	out cell.Port
}

// NewStaleCPA returns the u-RT algorithm with staleness u >= 1 (u = 0 would
// be the centralized CPA; construct that directly instead).
func NewStaleCPA(env Env, u cell.Time) (*StaleCPA, error) {
	if u < 1 {
		return nil, fmt.Errorf("demux: stale-cpa staleness must be >= 1, got %d", u)
	}
	n, k := env.Ports(), env.Planes()
	// Request the global log now: the fabric records events only for
	// registered readers, and registering before the first slot guarantees
	// the stale reconstruction sees the complete stream.
	env.Log()
	return &StaleCPA{
		env:        env,
		u:          u,
		oracleNext: make([]cell.Time, n),
		linkNext:   make([]cell.Time, n*k),
		backlog:    make([]int64, n*k),
		blind:      make([][]blindDispatch, n),
	}, nil
}

// NewStaleCPARandomTie is NewStaleCPA with randomized tie-breaking among
// planes whose estimated availability is equal. Input i's stream is seeded
// with seed+i, keeping the randomness strictly local.
func NewStaleCPARandomTie(env Env, u cell.Time, seed int64) (*StaleCPA, error) {
	a, err := NewStaleCPA(env, u)
	if err != nil {
		return nil, err
	}
	a.rngs = make([]*rand.Rand, env.Ports())
	for i := range a.rngs {
		a.rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
	}
	return a, nil
}

// Name implements Algorithm.
func (a *StaleCPA) Name() string {
	if a.rngs != nil {
		return fmt.Sprintf("stale-cpa-u%d-randtie", a.u)
	}
	return fmt.Sprintf("stale-cpa-u%d", a.u)
}

// Staleness returns u.
func (a *StaleCPA) Staleness() cell.Time { return a.u }

// Slot implements Algorithm.
//
// StaleCPA deliberately does NOT implement the IdleInvariant fast-forward
// capability: the advanceView call below runs before the empty-arrivals
// check, consuming global-log events up to t-u on every slot — silent ones
// included — and mutating the cursor, the per-output oracle view and the
// stale link reservations. Eliding a silent slot would change which events
// the u-slot-delayed view has digested when the next burst arrives, so
// stale-information algorithms opt out and always run stepped.
func (a *StaleCPA) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	a.advanceView(t - a.u)
	if len(arrivals) == 0 {
		return nil, nil
	}
	n := a.env.Ports()
	rp := cell.Time(a.env.RPrime())
	sends := a.take()
	for _, c := range arrivals {
		in, out := c.Flow.In, c.Flow.Out
		a.trimBlind(in, t)
		bestP := cell.NoPlane
		var bestAvail cell.Time
		ties := 0
		for kk := 0; kk < a.env.Planes(); kk++ {
			p := cell.Plane(kk)
			if a.env.InputGateFreeAt(in, p) > t {
				continue
			}
			idx := kk*n + int(out)
			// Estimated availability: the stale line schedule plus r'
			// per cell believed queued, plus the input's own blind
			// dispatches onto this (plane, output).
			q := a.backlog[idx] + a.ownBlind(in, p, out)
			avail := a.linkNext[idx]
			if t > avail {
				avail = t
			}
			avail += cell.Time(q) * rp
			switch {
			case bestP == cell.NoPlane || avail < bestAvail:
				bestP, bestAvail = p, avail
				ties = 1
			case avail == bestAvail && a.rngs != nil:
				// Reservoir-sample uniformly among tied planes.
				ties++
				if a.rngs[in].Intn(ties) == 0 {
					bestP = p
				}
			}
		}
		if bestP == cell.NoPlane {
			return nil, fmt.Errorf("demux: stale-cpa input %d has no free gate at slot %d", in, t)
		}
		a.blind[in] = append(a.blind[in], blindDispatch{t: t, k: bestP, out: out})
		sends = append(sends, Send{Cell: c, Plane: bestP})
	}
	return a.keep(sends), nil
}

// advanceView consumes global events with T <= upto into the stale state.
func (a *StaleCPA) advanceView(upto cell.Time) {
	n := a.env.Ports()
	rp := cell.Time(a.env.RPrime())
	a.env.Log().Read(&a.cur, upto, func(e Event) {
		switch e.Kind {
		case EvArrival:
			d := a.oracleNext[e.Out]
			if e.T > d {
				d = e.T
			}
			a.oracleNext[e.Out] = d + 1
		case EvDispatch:
			a.backlog[int(e.K)*n+int(e.Out)]++
		case EvXmit:
			idx := int(e.K)*n + int(e.Out)
			a.backlog[idx]--
			a.linkNext[idx] = e.T + rp
		}
	})
}

// trimBlind drops input i's own dispatches that have aged into the stale
// view (T <= t-u), which the log now accounts for.
func (a *StaleCPA) trimBlind(in cell.Port, t cell.Time) {
	b := a.blind[in]
	keep := 0
	for _, d := range b {
		if d.t > t-a.u {
			b[keep] = d
			keep++
		}
	}
	a.blind[in] = b[:keep]
}

func (a *StaleCPA) ownBlind(in cell.Port, k cell.Plane, out cell.Port) int64 {
	var c int64
	for _, d := range a.blind[in] {
		if d.k == k && d.out == out {
			c++
		}
	}
	return c
}

// Buffered implements Algorithm (bufferless).
func (a *StaleCPA) Buffered(cell.Port) int { return 0 }
