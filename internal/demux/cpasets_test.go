package demux

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

// lcg is a tiny deterministic generator for differential workloads.
type lcg uint64

func (l *lcg) next(m int) int {
	*l = *l*6364136223846793005 + 1442695040888963407
	return int((uint64(*l) >> 33) % uint64(m))
}

// TestCPASetsMatchesCPADifferential runs the sets formulation and the
// production (availability-counter) formulation side by side on identical
// arrival streams: two independent derivations of the same algorithm must
// make identical decisions.
func TestCPASetsMatchesCPADifferential(t *testing.T) {
	prop := func(seed uint64) bool {
		const n, k, rp = 6, 6, 3 // S = 2
		e1 := newFakeEnv(n, k, rp)
		e2 := newFakeEnv(n, k, rp)
		a1, err := NewCPA(e1, MinAvail)
		if err != nil {
			return false
		}
		a2, err := NewCPASets(e2)
		if err != nil {
			return false
		}
		st1, st2 := cell.NewStamper(), cell.NewStamper()
		rng := lcg(seed)
		for slot := cell.Time(0); slot < 150; slot++ {
			var outsUsed [n]bool
			var c1, c2 []cell.Cell
			for in := 0; in < n; in++ {
				if rng.next(2) == 0 {
					continue
				}
				j := rng.next(n)
				if outsUsed[j] {
					continue
				}
				outsUsed[j] = true
				c1 = append(c1, st1.Stamp(cell.Flow{In: cell.Port(in), Out: cell.Port(j)}, slot))
				c2 = append(c2, st2.Stamp(cell.Flow{In: cell.Port(in), Out: cell.Port(j)}, slot))
			}
			s1, err1 := a1.Slot(slot, c1)
			s2, err2 := a2.Slot(slot, c2)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if len(s1) != len(s2) {
				return false
			}
			for i := range s1 {
				if s1[i].Plane != s2[i].Plane || s1[i].Cell.Seq != s2[i].Cell.Seq {
					return false
				}
				if err := e1.gates.Gate(int(s1[i].Cell.Flow.In), int(s1[i].Plane)).Seize(slot); err != nil {
					return false
				}
				if err := e2.gates.Gate(int(s2[i].Cell.Flow.In), int(s2[i].Plane)).Seize(slot); err != nil {
					return false
				}
			}
		}
		return a1.Misses() == 0 && a2.Misses() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCPASetsBasics(t *testing.T) {
	e := newFakeEnv(4, 4, 2)
	a, err := NewCPASets(e)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "cpa-sets" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.Buffered(0) != 0 {
		t.Error("bufferless")
	}
	st := cell.NewStamper()
	sends, err := a.Slot(0, []cell.Cell{st.Stamp(cell.Flow{In: 0, Out: 0}, 0)})
	if err != nil || len(sends) != 1 {
		t.Fatalf("Slot: %v %v", sends, err)
	}
	if a.Misses() != 0 {
		t.Error("no misses expected")
	}
}

func TestCPASetsDegradesAtLowSpeedup(t *testing.T) {
	// Same two-burst scenario as the production CPA's miss test.
	e := newFakeEnv(4, 3, 3) // S = 1
	a, _ := NewCPASets(e)
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 2; slot++ {
		var cells []cell.Cell
		for i := 1; i < 4; i++ {
			cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(i), Out: 0}, slot))
		}
		sends, err := a.Slot(slot, cells)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sends {
			if err := e.gates.Gate(int(s.Cell.Flow.In), int(s.Plane)).Seize(slot); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a.Misses() == 0 {
		t.Error("expected empty AIL/AOL intersections at S=1")
	}
}
