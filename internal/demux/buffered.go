package demux

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
	"ppsim/internal/shadow"
)

// BufferedCPA is the input-buffered u-RT algorithm of Theorem 12: with
// input buffers of size u and speedup S >= 2 it guarantees relative queuing
// delay at most u by simulating the centralized CPA algorithm at a lag of u
// slots.
//
// Every cell is held in its input buffer for exactly u slots. At slot t the
// algorithm dispatches the cells that arrived at slot t-u; by then their
// arrival is global information (Definition 9 permits global information in
// [0, t-u]), so every input can replay the same deterministic CPA
// simulation over the common arrival prefix and execute the decisions for
// its own cells. The simulated deadline of a cell is its shadow departure
// slot plus u, hence the u-slot relative delay ceiling.
type BufferedCPA struct {
	sendScratch
	env    Env
	u      cell.Time
	tie    TieBreak
	oracle *shadow.Oracle
	// linkNext per (k, j), as in CPA, but reservations start at the
	// dispatch slot t (not the arrival slot).
	linkNext []cell.Time
	bufs     []queue.FIFO[cell.Cell]
	misses   uint64
}

// NewBufferedCPA returns the algorithm with lag (= buffer size) u >= 0.
// u = 0 degenerates to the centralized CPA.
func NewBufferedCPA(env Env, u cell.Time, tie TieBreak) (*BufferedCPA, error) {
	if u < 0 {
		return nil, fmt.Errorf("demux: buffered-cpa lag must be >= 0, got %d", u)
	}
	n, k := env.Ports(), env.Planes()
	return &BufferedCPA{
		env:      env,
		u:        u,
		tie:      tie,
		oracle:   shadow.NewOracle(n),
		linkNext: make([]cell.Time, n*k),
		bufs:     make([]queue.FIFO[cell.Cell], n),
	}, nil
}

// Name implements Algorithm.
func (a *BufferedCPA) Name() string { return fmt.Sprintf("buffered-cpa-u%d", a.u) }

// Misses reports cells with no deadline-feasible plane.
func (a *BufferedCPA) Misses() uint64 { return a.misses }

// Slot implements Algorithm.
func (a *BufferedCPA) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	for _, c := range arrivals {
		a.bufs[c.Flow.In].Push(c)
	}
	n, k := a.env.Ports(), a.env.Planes()
	sends := a.take()
	// Release, from every input buffer, the cells that have aged u slots.
	// Input order equals sequence order for same-slot arrivals, so oracle
	// deadlines are assigned in the shadow switch's FCFS order.
	for i := 0; i < n; i++ {
		for !a.bufs[i].Empty() && t-a.bufs[i].Peek().Arrive >= a.u {
			c := a.bufs[i].Pop()
			deadline := a.oracle.Departure(c.Arrive, c.Flow.Out) + a.u
			bestP := cell.NoPlane
			var bestReserve cell.Time
			for kk := 0; kk < k; kk++ {
				p := cell.Plane(kk)
				if a.env.InputGateFreeAt(cell.Port(i), p) > t {
					continue
				}
				reserve := a.linkNext[kk*n+int(c.Flow.Out)]
				if t > reserve {
					reserve = t
				}
				if bestP == cell.NoPlane || reserve < bestReserve {
					bestP, bestReserve = p, reserve
				}
			}
			if bestP == cell.NoPlane {
				return nil, fmt.Errorf("demux: buffered-cpa input %d has no free gate at slot %d", i, t)
			}
			if bestReserve > deadline {
				a.misses++
			}
			a.linkNext[int(bestP)*n+int(c.Flow.Out)] = bestReserve + cell.Time(a.env.RPrime())
			sends = append(sends, Send{Cell: c, Plane: bestP})
			if a.u > 0 {
				break // at most one release per input per slot keeps rate R
			}
		}
	}
	return a.keep(sends), nil
}

// Buffered implements Algorithm.
func (a *BufferedCPA) Buffered(in cell.Port) int { return a.bufs[in].Len() }

// BufferedRR is the input-buffered fully-distributed algorithm of
// Theorem 13: a per-input FIFO buffer drained round-robin across planes.
// The buffer gives the demultiplexor freedom over *when* to dispatch, but
// with no global information the steering adversary still concentrates
// cells, so the relative queuing delay remains Omega((1 - r/R) * N/S)
// regardless of the buffer size.
type BufferedRR struct {
	sendScratch
	env      Env
	capacity int // max cells per input buffer; <= 0 means unbounded
	ptr      []cell.Plane
	bufs     []queue.FIFO[cell.Cell]
}

// NewBufferedRR returns the buffered round-robin algorithm. capacity <= 0
// means unbounded buffers.
func NewBufferedRR(env Env, capacity int) (*BufferedRR, error) {
	if int64(env.Planes()) < env.RPrime() {
		return nil, fmt.Errorf("demux: buffered-rr needs K >= r' (K=%d, r'=%d)", env.Planes(), env.RPrime())
	}
	return &BufferedRR{
		env:      env,
		capacity: capacity,
		ptr:      make([]cell.Plane, env.Ports()),
		bufs:     make([]queue.FIFO[cell.Cell], env.Ports()),
	}, nil
}

// Name implements Algorithm.
func (a *BufferedRR) Name() string { return "buffered-rr" }

// Slot implements Algorithm: enqueue arrivals, then drain each buffer
// greedily onto free gates in round-robin order.
func (a *BufferedRR) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	for _, c := range arrivals {
		in := c.Flow.In
		if a.capacity > 0 && a.bufs[in].Len() >= a.capacity {
			return nil, fmt.Errorf("demux: buffered-rr input %d buffer overflow (cap %d) at slot %d — the model forbids drops", in, a.capacity, t)
		}
		a.bufs[in].Push(c)
	}
	sends := a.take()
	for i := range a.bufs {
		in := cell.Port(i)
		for !a.bufs[i].Empty() {
			p := pickFree(a.env, in, t, a.ptr[i], nil)
			if p == cell.NoPlane {
				break // every gate busy; try again next slot
			}
			c := a.bufs[i].Pop()
			a.ptr[i] = (p + 1) % cell.Plane(a.env.Planes())
			sends = append(sends, Send{Cell: c, Plane: p})
			// pickFree consults live gate state, but the fabric seizes
			// gates only after Slot returns; within a slot we must not
			// reuse a gate we just chose. Dispatching at most one cell
			// per input per slot sidesteps the aliasing and still
			// sustains rate R.
			break
		}
	}
	return a.keep(sends), nil
}

// Buffered implements Algorithm.
func (a *BufferedRR) Buffered(in cell.Port) int { return a.bufs[in].Len() }

// WouldChoose implements Prober.
func (a *BufferedRR) WouldChoose(in, out cell.Port) (cell.Plane, bool) {
	return a.ptr[in], true
}

// IdleInvariant certifies the fast-forward capability for the input-buffered
// CPA simulation. Slot does scan the input buffers on silent slots, but with
// every buffer empty it mutates nothing and sends nothing — and the harness
// only elides slots on which the fabric counts zero pending cells, which is
// exactly the empty-buffers condition.
func (a *BufferedCPA) IdleInvariant() bool { return true }

// IdleInvariant certifies the fast-forward capability; see
// BufferedCPA.IdleInvariant for why empty buffers make the silent-slot scan
// a no-op.
func (a *BufferedRR) IdleInvariant() bool { return true }
