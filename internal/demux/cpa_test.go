package demux

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func TestCPAFeasibleUnderSpeedupTwo(t *testing.T) {
	// N=4, K=4, r'=2 -> S = K/r' = 2. Under burstless full-rate traffic
	// (a permutation each slot) CPA must never miss a deadline.
	e := newFakeEnv(4, 4, 2)
	a, err := NewCPA(e, MinAvail)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 50; slot++ {
		var cells []cell.Cell
		for i := 0; i < 4; i++ {
			cells = append(cells, arr(st, slot, cell.Port(i), cell.Port((int(slot)+i)%4)))
		}
		sends, err := a.Slot(slot, cells)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sends {
			if err := e.gates.Gate(int(s.Cell.Flow.In), int(s.Plane)).Seize(slot); err != nil {
				t.Fatalf("input constraint: %v", err)
			}
		}
	}
	if a.Misses() != 0 {
		t.Errorf("CPA missed %d deadlines at S=2", a.Misses())
	}
}

func TestCPAConcentratedOutputFeasible(t *testing.T) {
	// All inputs send to output 0 in one slot (burst N); deadlines are
	// spaced one slot apart, and with S >= 2 CPA must schedule all of them
	// feasibly.
	e := newFakeEnv(6, 6, 2) // S = 3
	a, _ := NewCPA(e, MinAvail)
	st := cell.NewStamper()
	var cells []cell.Cell
	for i := 0; i < 6; i++ {
		cells = append(cells, arr(st, 0, cell.Port(i), 0))
	}
	if _, err := a.Slot(0, cells); err != nil {
		t.Fatal(err)
	}
	if a.Misses() != 0 {
		t.Errorf("misses = %d", a.Misses())
	}
}

func TestCPAMissesWithoutSpeedup(t *testing.T) {
	// S = 1 (K = r'): two consecutive slots of three-input bursts to one
	// output exhaust the feasible planes (the intersection argument needs
	// S >= 2), so misses must be recorded — the graceful-degradation path.
	e := newFakeEnv(4, 3, 3) // S = 1
	a, _ := NewCPA(e, MinAvail)
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 2; slot++ {
		var cells []cell.Cell
		for i := 1; i < 4; i++ {
			cells = append(cells, arr(st, slot, cell.Port(i), 0))
		}
		sends, err := a.Slot(slot, cells)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sends {
			if err := e.gates.Gate(int(s.Cell.Flow.In), int(s.Plane)).Seize(slot); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a.Misses() == 0 {
		t.Error("expected deadline misses at S=1 under sustained bursts")
	}
}

func TestCPARotateTie(t *testing.T) {
	e := newFakeEnv(4, 4, 1)
	a, err := NewCPA(e, RotateTie)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	// r'=1: every plane is always feasible; rotation should spread
	// consecutive cells for one output across planes.
	seen := map[cell.Plane]bool{}
	for slot := cell.Time(0); slot < 4; slot++ {
		s := exec(t, e, a, slot, arr(st, slot, 0, 0))
		seen[s[0].Plane] = true
	}
	if len(seen) != 4 {
		t.Errorf("RotateTie used %d distinct planes in 4 dispatches, want 4", len(seen))
	}
}

func TestCPAUnknownTieBreak(t *testing.T) {
	e := newFakeEnv(2, 2, 1)
	if _, err := NewCPA(e, TieBreak(99)); err == nil {
		t.Error("unknown tie-break must be rejected")
	}
}

// Property: at S >= 2, CPA never misses under random admissible traffic
// where each slot's arrivals form a partial permutation.
func TestCPANoMissesProperty(t *testing.T) {
	prop := func(seed int64) bool {
		const n, k, rp = 4, 8, 4 // S = 2
		e := newFakeEnv(n, k, rp)
		a, err := NewCPA(e, MinAvail)
		if err != nil {
			return false
		}
		st := cell.NewStamper()
		rng := seed
		next := func(m int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(m))
			if v < 0 {
				v += m
			}
			return v
		}
		for slot := cell.Time(0); slot < 120; slot++ {
			var cells []cell.Cell
			outs := [n]bool{}
			for i := 0; i < n; i++ {
				if next(2) == 0 {
					continue
				}
				j := next(n)
				if outs[j] {
					continue // keep per-slot output bursts at 1: burstless
				}
				outs[j] = true
				cells = append(cells, arr(st, slot, cell.Port(i), cell.Port(j)))
			}
			sends, err := a.Slot(slot, cells)
			if err != nil {
				return false
			}
			for _, s := range sends {
				if err := e.gates.Gate(int(s.Cell.Flow.In), int(s.Plane)).Seize(slot); err != nil {
					return false
				}
			}
		}
		return a.Misses() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
