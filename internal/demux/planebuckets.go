package demux

import (
	"math/bits"

	"ppsim/internal/cell"
)

// planeBuckets is the incremental bucketed-counter argmin over per-plane
// dispatch counts, for K <= 64 planes: planes are grouped by counter value
// into ascending buckets, each bucket a (value, plane-bitmask) pair, so
// "least-loaded free plane, lowest index on ties" is answered by scanning
// buckets from the front and taking the lowest set bit of bits & freeMask —
// exactly the plane the O(K) scan `if counts[p] < counts[best]` picks,
// because buckets ascend by value and the lowest set bit is the lowest
// index within a value class.
//
// inc moves one plane from its bucket to the value-above bucket. Because a
// counter only ever grows by one, the target bucket is adjacent (or created
// in place), so the slice juggling is O(distinct values touched) — O(1)
// amortized over a run, and in the common saturated state (all counts within
// one of each other) exactly two buckets exist.
type planeBuckets struct {
	count []uint64 // per-plane dispatch counters (the scan's counts slice)
	vals  []uint64 // ascending distinct counter values present
	bits  []uint64 // bits[i] = planes whose counter equals vals[i]; never 0
}

// newPlaneBuckets returns the structure for k planes, all counters zero.
// k must be in (0, 64].
func newPlaneBuckets(k int) *planeBuckets {
	return &planeBuckets{
		count: make([]uint64, k),
		vals:  []uint64{0},
		bits:  []uint64{^uint64(0) >> uint(64-k)},
	}
}

// argmin returns the lowest-indexed plane among those in mask with the
// minimal counter, or cell.NoPlane when mask selects no plane.
func (b *planeBuckets) argmin(mask uint64) cell.Plane {
	for _, bm := range b.bits {
		if hit := bm & mask; hit != 0 {
			return cell.Plane(bits.TrailingZeros64(hit))
		}
	}
	return cell.NoPlane
}

// inc advances plane p's counter by one, relocating its bucket bit.
func (b *planeBuckets) inc(p cell.Plane) {
	c := b.count[p]
	b.count[p] = c + 1
	i := 0
	for b.vals[i] != c {
		i++
	}
	bit := uint64(1) << uint(p)
	next := i + 1
	if b.bits[i] == bit {
		// p was the bucket's last plane: absorb into an adjacent c+1 bucket,
		// or just relabel this one in place.
		if next < len(b.vals) && b.vals[next] == c+1 {
			b.bits[next] |= bit
			b.vals = append(b.vals[:i], b.vals[next:]...)
			b.bits = append(b.bits[:i], b.bits[next:]...)
		} else {
			b.vals[i] = c + 1
		}
		return
	}
	b.bits[i] &^= bit
	if next < len(b.vals) && b.vals[next] == c+1 {
		b.bits[next] |= bit
		return
	}
	b.vals = append(b.vals, 0)
	b.bits = append(b.bits, 0)
	copy(b.vals[next+1:], b.vals[next:])
	copy(b.bits[next+1:], b.bits[next:])
	b.vals[next] = c + 1
	b.bits[next] = bit
}
