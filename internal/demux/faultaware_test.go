package demux

import (
	"testing"

	"ppsim/internal/cell"
)

// healthEnv extends the fake fabric with the PlaneHealth capability.
type healthEnv struct {
	*fakeEnv
	down map[cell.Plane]bool
}

func (h *healthEnv) PlaneUp(k cell.Plane) bool { return !h.down[k] }

func TestFaultAwareRequiresPlaneHealth(t *testing.T) {
	e := newFakeEnv(4, 4, 2)
	_, err := NewFaultAware(e, func(e Env) (Algorithm, error) { return NewRoundRobin(e, PerInput) })
	if err == nil {
		t.Fatal("NewFaultAware accepted an environment without PlaneHealth")
	}
}

func TestFaultAwareMasksFailedPlanes(t *testing.T) {
	e := &healthEnv{fakeEnv: newFakeEnv(4, 4, 2), down: map[cell.Plane]bool{1: true}}
	a, err := NewFaultAware(e, func(e Env) (Algorithm, error) { return NewRoundRobin(e, PerInput) })
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "faultaware(rr)" {
		t.Errorf("Name = %q", a.Name())
	}
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 32; slot++ {
		sends := exec(t, e.fakeEnv, a, slot, arr(st, slot, 0, 0))
		for _, s := range sends {
			if s.Plane == 1 {
				t.Fatalf("slot %d: dispatched to failed plane 1", slot)
			}
		}
	}
}

func TestFaultAwareRecoveryRejoins(t *testing.T) {
	e := &healthEnv{fakeEnv: newFakeEnv(2, 3, 1), down: map[cell.Plane]bool{2: true}}
	a, err := NewFaultAware(e, func(e Env) (Algorithm, error) { return NewRoundRobin(e, PerInput) })
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	slot := cell.Time(0)
	run := func(slots int) map[cell.Plane]int {
		used := make(map[cell.Plane]int)
		for i := 0; i < slots; i++ {
			for _, s := range exec(t, e.fakeEnv, a, slot, arr(st, slot, 0, 1)) {
				used[s.Plane]++
			}
			slot++
		}
		return used
	}
	if used := run(12); used[2] != 0 {
		t.Fatalf("masked plane used: %v", used)
	}
	delete(e.down, 2) // plane recovers; its real gate state shows through
	if used := run(12); used[2] == 0 {
		t.Errorf("recovered plane never rejoined the rotation: %v", used)
	}
}

func TestFaultAwareWouldChoosePassthrough(t *testing.T) {
	e := &healthEnv{fakeEnv: newFakeEnv(4, 4, 2)}
	// Round-robin implements Prober: the probe must delegate to the inner
	// algorithm (WouldChoose is a gate-blind hypothetical, so masking does
	// not apply to it — only to real dispatch decisions).
	a, err := NewFaultAware(e, func(e Env) (Algorithm, error) { return NewRoundRobin(e, PerInput) })
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewRoundRobin(newFakeEnv(4, 4, 2), PerInput)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := a.(Prober).WouldChoose(0, 3)
	want, _ := inner.WouldChoose(0, 3)
	if !ok || p != want {
		t.Errorf("WouldChoose = %d, %v; want delegation to inner (%d)", p, ok, want)
	}
}

// proberless is an Algorithm that does not implement Prober.
type proberless struct{ Algorithm }

func (p proberless) Name() string { return "proberless" }

func TestFaultAwareWouldChooseWithoutProber(t *testing.T) {
	e := &healthEnv{fakeEnv: newFakeEnv(2, 2, 1)}
	a, err := NewFaultAware(e, func(e Env) (Algorithm, error) {
		inner, err := NewRoundRobin(e, PerInput)
		return proberless{inner}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := a.(Prober).WouldChoose(0, 0); ok || p != cell.NoPlane {
		t.Errorf("WouldChoose on a prober-less inner = %d, %v; want NoPlane, false", p, ok)
	}
	if a.Name() != "faultaware(proberless)" {
		t.Errorf("Name = %q", a.Name())
	}
}
