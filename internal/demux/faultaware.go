package demux

import (
	"fmt"
	"math/bits"

	"ppsim/internal/cell"
)

// PlaneHealth is an optional capability of an Env: environments that track
// center-stage failures report per-plane liveness through it. The fabric's
// env implements it; test fakes that never fail planes need not.
//
// Liveness is local information in the paper's sense: a demultiplexor
// observes its own line card's loss-of-signal toward a dead plane, so even
// fully-distributed algorithms may use it (Section 3 assumes exactly this
// when arguing an unpartitioned PPS degrades to K-1 planes).
type PlaneHealth interface {
	// PlaneUp reports whether plane k is currently in service.
	PlaneUp(k cell.Plane) bool
}

// neverFree is the gate-free time a masked environment reports for a failed
// plane: far enough in the future that no run reaches it, so every
// algorithm that consults InputGateFreeAt — all of them do, via pickFree or
// directly — treats the plane as permanently busy and routes around it.
const neverFree = cell.Time(1) << 62

// maskedEnv hides failed planes from the wrapped algorithm by reporting
// their input gates busy forever. All other environment queries pass
// through, so the inner algorithm's information discipline is unchanged.
type maskedEnv struct {
	Env
	health PlaneHealth
	masker GateMasker // inner env's batched capability, nil when absent
}

func (m maskedEnv) InputGateFreeAt(in cell.Port, k cell.Plane) cell.Time {
	if !m.health.PlaneUp(k) {
		return neverFree
	}
	return m.Env.InputGateFreeAt(in, k)
}

// FreeGateMask implements GateMasker so the wrapper composes with the O(1)
// selection structures: the inner environment's mask (or, absent the
// capability, a scan of the masked gate view) with failed planes' bits
// cleared. Only called for K <= 64 (see GateMasker).
func (m maskedEnv) FreeGateMask(in cell.Port, t cell.Time) uint64 {
	if m.masker == nil {
		var mask uint64
		for k := m.Env.Planes() - 1; k >= 0; k-- {
			if m.InputGateFreeAt(in, cell.Plane(k)) <= t {
				mask |= 1 << uint(k)
			}
		}
		return mask
	}
	mask := m.masker.FreeGateMask(in, t)
	for b := mask; b != 0; b &= b - 1 {
		if !m.health.PlaneUp(cell.Plane(bits.TrailingZeros64(b))) {
			mask &^= b & -b
		}
	}
	return mask
}

// FaultAware wraps any demultiplexing algorithm with failure-aware dispatch:
// the inner algorithm is constructed against a masked environment in which
// failed planes' input gates never free up, so its own candidate selection
// skips them while still honoring the input constraint on live planes. When
// a plane recovers, its real gate state shows through again and the plane
// rejoins the candidate set.
//
// The wrapper changes which planes look available, not what the algorithm
// does with them — a wrapped round-robin is still round-robin over the live
// planes, and a wrapped CPA still minimizes over the live planes' state.
type FaultAware struct {
	inner Algorithm
	name  string
}

// NewFaultAware builds mk's algorithm against a plane-health-masked view of
// env. It errors when env does not expose PlaneHealth (the fabric's
// environment always does).
func NewFaultAware(env Env, mk func(Env) (Algorithm, error)) (Algorithm, error) {
	h, ok := env.(PlaneHealth)
	if !ok {
		return nil, fmt.Errorf("demux: faultaware needs an environment with plane health (got %T)", env)
	}
	inner, err := mk(maskedEnv{Env: env, health: h, masker: gateMasker(env)})
	if err != nil {
		return nil, err
	}
	return &FaultAware{inner: inner, name: "faultaware(" + inner.Name() + ")"}, nil
}

// Name implements Algorithm.
func (f *FaultAware) Name() string { return f.name }

// Slot implements Algorithm.
func (f *FaultAware) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	return f.inner.Slot(t, arrivals)
}

// Buffered implements Algorithm.
func (f *FaultAware) Buffered(in cell.Port) int { return f.inner.Buffered(in) }

// WouldChoose implements Prober when the inner algorithm does; ok is false
// otherwise.
func (f *FaultAware) WouldChoose(in, out cell.Port) (cell.Plane, bool) {
	if p, ok := f.inner.(Prober); ok {
		return p.WouldChoose(in, out)
	}
	return cell.NoPlane, false
}

// IdleInvariant delegates the fast-forward capability to the wrapped
// algorithm: the mask itself holds no per-slot state.
func (f *FaultAware) IdleInvariant() bool {
	ii, ok := f.inner.(IdleInvariant)
	return ok && ii.IdleInvariant()
}
