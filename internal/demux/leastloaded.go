package demux

import (
	"fmt"

	"ppsim/internal/cell"
)

// LocalLeastLoaded is a fully-distributed algorithm that balances using the
// only state a demultiplexor can legally count: its own past dispatches.
// For every arriving cell it picks, among planes with a free input gate,
// the plane to which this input has sent the fewest cells for this
// destination (tie: lowest plane index).
//
// It looks smarter than round-robin, and on smooth traffic it is — but it
// remains a deterministic fully-distributed state machine, so Theorem 6's
// steering adversary aligns it exactly like the others (experiment E17's
// universality check). No amount of local cleverness escapes the
// Omega((R/r - 1) N) bound; only global information does.
type LocalLeastLoaded struct {
	sendScratch
	env    Env
	counts map[cell.Flow][]uint64 // per flow: dispatches per plane by this input
}

// NewLocalLeastLoaded returns the algorithm. It returns an error if K < r'.
func NewLocalLeastLoaded(env Env) (*LocalLeastLoaded, error) {
	if int64(env.Planes()) < env.RPrime() {
		return nil, fmt.Errorf("demux: least-loaded needs K >= r' (K=%d, r'=%d)", env.Planes(), env.RPrime())
	}
	return &LocalLeastLoaded{env: env, counts: make(map[cell.Flow][]uint64)}, nil
}

// Name implements Algorithm.
func (a *LocalLeastLoaded) Name() string { return "local-least-loaded" }

// Slot implements Algorithm.
func (a *LocalLeastLoaded) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	sends := a.take()
	for _, c := range arrivals {
		counts := a.flowCounts(c.Flow)
		best := cell.NoPlane
		for k := 0; k < a.env.Planes(); k++ {
			p := cell.Plane(k)
			if a.env.InputGateFreeAt(c.Flow.In, p) > t {
				continue
			}
			if best == cell.NoPlane || counts[p] < counts[best] {
				best = p
			}
		}
		if best == cell.NoPlane {
			return nil, fmt.Errorf("demux: least-loaded input %d has no free gate at slot %d", c.Flow.In, t)
		}
		counts[best]++
		sends = append(sends, Send{Cell: c, Plane: best})
	}
	return a.keep(sends), nil
}

func (a *LocalLeastLoaded) flowCounts(f cell.Flow) []uint64 {
	c := a.counts[f]
	if c == nil {
		c = make([]uint64, a.env.Planes())
		a.counts[f] = c
	}
	return c
}

// Buffered implements Algorithm (bufferless).
func (a *LocalLeastLoaded) Buffered(cell.Port) int { return 0 }

// WouldChoose implements Prober: the least-loaded plane for the flow
// assuming all gates free.
func (a *LocalLeastLoaded) WouldChoose(in, out cell.Port) (cell.Plane, bool) {
	counts := a.flowCounts(cell.Flow{In: in, Out: out})
	best := cell.Plane(0)
	for k := 1; k < a.env.Planes(); k++ {
		if counts[k] < counts[best] {
			best = cell.Plane(k)
		}
	}
	return best, true
}

// IdleInvariant certifies the fast-forward capability: the per-flow counts
// change only on dispatch.
func (a *LocalLeastLoaded) IdleInvariant() bool { return true }
