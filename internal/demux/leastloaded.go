package demux

import (
	"fmt"

	"ppsim/internal/cell"
)

// LocalLeastLoaded is a fully-distributed algorithm that balances using the
// only state a demultiplexor can legally count: its own past dispatches.
// For every arriving cell it picks, among planes with a free input gate,
// the plane to which this input has sent the fewest cells for this
// destination (tie: lowest plane index).
//
// It looks smarter than round-robin, and on smooth traffic it is — but it
// remains a deterministic fully-distributed state machine, so Theorem 6's
// steering adversary aligns it exactly like the others (experiment E17's
// universality check). No amount of local cleverness escapes the
// Omega((R/r - 1) N) bound; only global information does.
//
// Selection is O(1) amortized per cell on switches with K <= 64 planes: the
// per-flow counters live in a planeBuckets structure whose bucket scan
// reproduces the historical lowest-index argmin exactly (DESIGN.md §15),
// and the free-gate set comes from the Env's GateMasker capability when
// present. Wider switches keep the original O(K) scan over a counts slice.
type LocalLeastLoaded struct {
	sendScratch
	env    Env
	masker GateMasker              // nil → per-plane free-gate scan
	counts map[cell.Flow]*planeBuckets
	wide   map[cell.Flow][]uint64 // K > 64 fallback
}

// NewLocalLeastLoaded returns the algorithm. It returns an error if K < r'.
func NewLocalLeastLoaded(env Env) (*LocalLeastLoaded, error) {
	if int64(env.Planes()) < env.RPrime() {
		return nil, fmt.Errorf("demux: least-loaded needs K >= r' (K=%d, r'=%d)", env.Planes(), env.RPrime())
	}
	a := &LocalLeastLoaded{env: env, masker: gateMasker(env)}
	if env.Planes() <= 64 {
		a.counts = make(map[cell.Flow]*planeBuckets)
	} else {
		a.wide = make(map[cell.Flow][]uint64)
	}
	return a, nil
}

// Name implements Algorithm.
func (a *LocalLeastLoaded) Name() string { return "local-least-loaded" }

// Slot implements Algorithm.
func (a *LocalLeastLoaded) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	if a.counts == nil {
		return a.slotWide(t, arrivals)
	}
	sends := a.take()
	for _, c := range arrivals {
		pb := a.flowBuckets(c.Flow)
		best := pb.argmin(freeMask(a.env, a.masker, c.Flow.In, t))
		if best == cell.NoPlane {
			return nil, fmt.Errorf("demux: least-loaded input %d has no free gate at slot %d", c.Flow.In, t)
		}
		pb.inc(best)
		sends = append(sends, Send{Cell: c, Plane: best})
	}
	return a.keep(sends), nil
}

// slotWide is the historical O(K)-scan path, kept for K > 64 where plane
// sets do not fit a bitmask.
func (a *LocalLeastLoaded) slotWide(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	sends := a.take()
	for _, c := range arrivals {
		counts := a.wideCounts(c.Flow)
		best := cell.NoPlane
		for k := 0; k < a.env.Planes(); k++ {
			p := cell.Plane(k)
			if a.env.InputGateFreeAt(c.Flow.In, p) > t {
				continue
			}
			if best == cell.NoPlane || counts[p] < counts[best] {
				best = p
			}
		}
		if best == cell.NoPlane {
			return nil, fmt.Errorf("demux: least-loaded input %d has no free gate at slot %d", c.Flow.In, t)
		}
		counts[best]++
		sends = append(sends, Send{Cell: c, Plane: best})
	}
	return a.keep(sends), nil
}

func (a *LocalLeastLoaded) flowBuckets(f cell.Flow) *planeBuckets {
	pb := a.counts[f]
	if pb == nil {
		pb = newPlaneBuckets(a.env.Planes())
		a.counts[f] = pb
	}
	return pb
}

func (a *LocalLeastLoaded) wideCounts(f cell.Flow) []uint64 {
	c := a.wide[f]
	if c == nil {
		c = make([]uint64, a.env.Planes())
		a.wide[f] = c
	}
	return c
}

// Buffered implements Algorithm (bufferless).
func (a *LocalLeastLoaded) Buffered(cell.Port) int { return 0 }

// WouldChoose implements Prober: the least-loaded plane for the flow
// assuming all gates free.
func (a *LocalLeastLoaded) WouldChoose(in, out cell.Port) (cell.Plane, bool) {
	f := cell.Flow{In: in, Out: out}
	if a.counts != nil {
		pb := a.flowBuckets(f)
		return pb.argmin(^uint64(0) >> uint(64-a.env.Planes())), true
	}
	counts := a.wideCounts(f)
	best := cell.Plane(0)
	for k := 1; k < a.env.Planes(); k++ {
		if counts[k] < counts[best] {
			best = cell.Plane(k)
		}
	}
	return best, true
}

// IdleInvariant certifies the fast-forward capability: the per-flow counts
// change only on dispatch.
func (a *LocalLeastLoaded) IdleInvariant() bool { return true }
