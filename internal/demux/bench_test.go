package demux

import (
	"testing"

	"ppsim/internal/cell"
)

// benchAlgorithm measures steady-state Slot throughput: every input gets a
// cell every slot, destinations rotating, gates seized like the fabric
// would.
func benchAlgorithm(b *testing.B, mk func(Env) (Algorithm, error)) {
	const n, k, rp = 32, 16, 2
	e := newFakeEnv(n, k, rp)
	a, err := mk(e)
	if err != nil {
		b.Fatal(err)
	}
	st := cell.NewStamper()
	cells := make([]cell.Cell, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := cell.Time(i)
		cells = cells[:0]
		for in := 0; in < n; in++ {
			cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(in), Out: cell.Port((in + i) % n)}, slot))
		}
		sends, err := a.Slot(slot, cells)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range sends {
			if err := e.gates.Gate(int(s.Cell.Flow.In), int(s.Plane)).Seize(slot); err != nil {
				b.Fatal(err)
			}
			e.log.Append(Event{T: slot, Kind: EvDispatch, In: s.Cell.Flow.In, Out: s.Cell.Flow.Out, K: s.Plane})
		}
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "cells/s")
}

func BenchmarkAlgorithms(b *testing.B) {
	cases := []struct {
		name string
		mk   func(Env) (Algorithm, error)
	}{
		{"rr", func(e Env) (Algorithm, error) { return NewRoundRobin(e, PerInput) }},
		{"perflow-rr", func(e Env) (Algorithm, error) { return NewRoundRobin(e, PerFlow) }},
		{"random", func(e Env) (Algorithm, error) { return NewRandom(e, 1) }},
		{"least-loaded", func(e Env) (Algorithm, error) { return NewLocalLeastLoaded(e) }},
		{"cpa", func(e Env) (Algorithm, error) { return NewCPA(e, MinAvail) }},
		{"stale-cpa-u4", func(e Env) (Algorithm, error) { return NewStaleCPA(e, 4) }},
		{"ftd-h2", func(e Env) (Algorithm, error) { return NewFTD(e, 2) }},
		{"buffered-cpa-u4", func(e Env) (Algorithm, error) { return NewBufferedCPA(e, 4, MinAvail) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchAlgorithm(b, c.mk) })
	}
}
