package demux

import (
	"testing"

	"ppsim/internal/cell"
)

// TestNamesAndBufferedContracts pins the registry names and the bufferless
// contract (Buffered == 0) for every algorithm in one table.
func TestNamesAndBufferedContracts(t *testing.T) {
	e := newFakeEnv(4, 4, 2)
	cases := []struct {
		mk       func() (Algorithm, error)
		wantName string
		buffered bool
	}{
		{func() (Algorithm, error) { return NewRoundRobin(e, PerInput) }, "rr", false},
		{func() (Algorithm, error) { return NewRoundRobin(e, PerFlow) }, "perflow-rr", false},
		{func() (Algorithm, error) { return NewStaticPartition(e, 2) }, "partition-2", false},
		{func() (Algorithm, error) { return NewRandom(e, 1) }, "random", false},
		{func() (Algorithm, error) { return NewLocalLeastLoaded(e) }, "local-least-loaded", false},
		{func() (Algorithm, error) { return NewCPA(e, MinAvail) }, "cpa", false},
		{func() (Algorithm, error) { return NewStaleCPA(e, 2) }, "stale-cpa-u2", false},
		{func() (Algorithm, error) { return NewFTD(e, 2) }, "ftd-h2", false},
		{func() (Algorithm, error) { return NewBufferedCPA(e, 3, MinAvail) }, "buffered-cpa-u3", true},
		{func() (Algorithm, error) { return NewBufferedRR(e, -1) }, "buffered-rr", true},
	}
	for _, c := range cases {
		a, err := c.mk()
		if err != nil {
			t.Fatalf("%s: %v", c.wantName, err)
		}
		if a.Name() != c.wantName {
			t.Errorf("Name = %q, want %q", a.Name(), c.wantName)
		}
		if got := a.Buffered(0); got != 0 {
			t.Errorf("%s: fresh Buffered(0) = %d, want 0", c.wantName, got)
		}
	}
}

func TestCPAMissesAccessor(t *testing.T) {
	e := newFakeEnv(4, 4, 2)
	a, _ := NewCPA(e, MinAvail)
	if a.Misses() != 0 {
		t.Error("fresh CPA should report zero misses")
	}
	b, _ := NewBufferedCPA(e, 2, MinAvail)
	if b.Misses() != 0 {
		t.Error("fresh BufferedCPA should report zero misses")
	}
}

func TestStaticPartitionAccessors(t *testing.T) {
	e := newFakeEnv(8, 4, 2)
	a, _ := NewStaticPartition(e, 2)
	if a.D() != 2 {
		t.Errorf("D = %d", a.D())
	}
	p, ok := a.WouldChoose(1, 0)
	if !ok {
		t.Fatal("partition must support WouldChoose")
	}
	// Input 1 is in group 1 (planes 2,3).
	if p != 2 && p != 3 {
		t.Errorf("WouldChoose(1) = %d, want a group-1 plane", p)
	}
}

func TestBufferedRRWouldChoose(t *testing.T) {
	e := newFakeEnv(2, 4, 1)
	a, _ := NewBufferedRR(e, -1)
	p, ok := a.WouldChoose(0, 3)
	if !ok || p != 0 {
		t.Errorf("fresh WouldChoose = %d %v", p, ok)
	}
	st := cell.NewStamper()
	sends, err := a.Slot(0, []cell.Cell{st.Stamp(cell.Flow{In: 0, Out: 3}, 0)})
	if err != nil || len(sends) != 1 {
		t.Fatalf("Slot: %v %v", sends, err)
	}
	if p2, _ := a.WouldChoose(0, 3); p2 != 1 {
		t.Errorf("pointer should advance to 1, got %d", p2)
	}
}

func TestStaleCPAConsumesAllEventKinds(t *testing.T) {
	// advanceView must process arrival, dispatch and xmit events.
	e := newFakeEnv(2, 2, 2)
	a, _ := NewStaleCPA(e, 1)
	e.log.Append(Event{T: 0, Kind: EvArrival, In: 1, Out: 0})
	e.log.Append(Event{T: 0, Kind: EvDispatch, In: 1, Out: 0, K: 0})
	e.log.Append(Event{T: 0, Kind: EvXmit, In: 1, Out: 0, K: 0})
	st := cell.NewStamper()
	// At slot 2, all slot-0 events are visible: plane 0's backlog is
	// 0 (dispatch then xmit) but its line was used at slot 0, so with
	// r'=2 its linkNext is 2 — both planes tie; herding picks plane 0.
	sends, err := a.Slot(2, []cell.Cell{st.Stamp(cell.Flow{In: 0, Out: 0}, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(sends) != 1 {
		t.Fatalf("sends = %v", sends)
	}
}

func TestBufferedRRRejectsTooFewPlanes(t *testing.T) {
	e := newFakeEnv(2, 1, 2)
	if _, err := NewBufferedRR(e, -1); err == nil {
		t.Error("K < r' must be rejected")
	}
}
