package demux

import (
	"fmt"
	"math"

	"ppsim/internal/cell"
)

// FTD implements fractional traffic dispatch (Khotimsky & Krishnan [17])
// with the parameterized extension of Section 5 of the paper (Theorem 14),
// referred to here as FTDX.
//
// Each flow (i, j) is segmented into blocks of size b = ceil(h * R/r) for a
// parameter h > 1; the cells of one block are dispatched through pairwise
// distinct planes. This fully-distributed discipline spreads every flow
// evenly, so once all plane queues for an output are backlogged (a
// *congested period*), the output-side lines keep the output busy every
// slot and the PPS introduces no relative queuing delay after a warm-up
// period that shrinks as h grows. Proposition 15 shows the traffic that
// creates such congestion cannot be (R, B) leaky-bucket for fixed B, which
// is why this does not contradict Theorem 8.
//
// Correct operation requires speedup S >= h (the paper's FTD family works
// with S >= K - floor(K/2)). When every unused plane's gate is busy the
// implementation falls back to any free gate and counts the violation,
// rather than dropping the cell.
type FTD struct {
	sendScratch
	env   Env
	h     float64
	block int
	flows map[cell.Flow]*ftdFlow
	falls uint64 // block-discipline violations (fallback dispatches)
}

type ftdFlow struct {
	used    []bool // planes used in the current block
	inBlock int
	ptr     cell.Plane
}

// NewFTD returns the dispatcher with block parameter h > 1. It returns an
// error if the implied block size exceeds K (a block could never use
// distinct planes).
func NewFTD(env Env, h float64) (*FTD, error) {
	if h <= 1 {
		return nil, fmt.Errorf("demux: ftd parameter h must exceed 1, got %g", h)
	}
	block := int(math.Ceil(h * float64(env.RPrime())))
	if block > env.Planes() {
		return nil, fmt.Errorf("demux: ftd block %d exceeds K=%d planes", block, env.Planes())
	}
	return &FTD{env: env, h: h, block: block, flows: make(map[cell.Flow]*ftdFlow)}, nil
}

// Name implements Algorithm.
func (a *FTD) Name() string { return fmt.Sprintf("ftd-h%g", a.h) }

// BlockSize returns b = ceil(h * r').
func (a *FTD) BlockSize() int { return a.block }

// Fallbacks reports how many cells could not respect the block discipline.
func (a *FTD) Fallbacks() uint64 { return a.falls }

// Slot implements Algorithm.
func (a *FTD) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	sends := a.take()
	for _, c := range arrivals {
		fs := a.flows[c.Flow]
		if fs == nil {
			fs = &ftdFlow{used: make([]bool, a.env.Planes())}
			a.flows[c.Flow] = fs
		}
		p := pickFree(a.env, c.Flow.In, t, fs.ptr, func(k cell.Plane) bool { return !fs.used[k] })
		if p == cell.NoPlane {
			// Block discipline unsatisfiable this slot: fall back to any
			// free gate rather than dropping the cell.
			p = pickFree(a.env, c.Flow.In, t, fs.ptr, nil)
			if p == cell.NoPlane {
				return nil, fmt.Errorf("demux: ftd input %d has no free gate at slot %d", c.Flow.In, t)
			}
			a.falls++
		}
		fs.used[p] = true
		fs.inBlock++
		fs.ptr = (p + 1) % cell.Plane(a.env.Planes())
		if fs.inBlock == a.block {
			fs.inBlock = 0
			for i := range fs.used {
				fs.used[i] = false
			}
		}
		sends = append(sends, Send{Cell: c, Plane: p})
	}
	return a.keep(sends), nil
}

// Buffered implements Algorithm (bufferless).
func (a *FTD) Buffered(cell.Port) int { return 0 }

// WouldChoose implements Prober: the next in-block plane for the flow,
// assuming all gates free.
func (a *FTD) WouldChoose(in, out cell.Port) (cell.Plane, bool) {
	fs := a.flows[cell.Flow{In: in, Out: out}]
	if fs == nil {
		return 0, true
	}
	k := a.env.Planes()
	for d := 0; d < k; d++ {
		p := cell.Plane((int(fs.ptr) + d) % k)
		if !fs.used[p] {
			return p, true
		}
	}
	return fs.ptr, true
}

// IdleInvariant certifies the fast-forward capability: flow state and block
// fall-back counters move only on arrivals.
func (a *FTD) IdleInvariant() bool { return true }
