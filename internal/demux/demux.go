// Package demux implements the demultiplexing algorithms of the PPS: the
// per-input state machines that decide, for every arriving cell, which
// middle-stage plane it is switched through (Definitions 1 and 2 of the
// paper), or — in the input-buffered variant — whether it is held in the
// input buffer.
//
// The paper classifies demultiplexing algorithms by the information they
// use (Section 1):
//
//   - centralized: every decision sees the full, current switch status
//     (CPA);
//   - fully-distributed: decisions see only the input-port's local history
//     (RoundRobin, StaticPartition, Random, FTD, BufferedRR);
//   - u real-time distributed (u-RT): local information plus global
//     information older than u slots (StaleCPA, BufferedCPA).
//
// Information discipline is enforced by construction: fully-distributed
// algorithms never read the global event log, u-RT algorithms read it only
// through a cursor capped at t-u, and only CPA holds a live reference to
// current global state.
package demux

import (
	"fmt"

	"ppsim/internal/cell"
)

// Send is one dispatch decision: transmit Cell to plane Plane in the
// current slot. The fabric seizes the (input, plane) gate and errors if the
// algorithm violated the input constraint.
type Send struct {
	Cell  cell.Cell
	Plane cell.Plane
}

// Algorithm is a demultiplexing algorithm for the whole input stage. A
// single value handles all N inputs; distributed algorithms keep isolated
// per-input state internally.
type Algorithm interface {
	// Name identifies the algorithm in reports and the registry.
	Name() string

	// Slot processes one time-slot. arrivals holds the cells arriving at
	// slot t, at most one per input, in global sequence order. The
	// returned sends are executed this slot; any arrival not sent must be
	// buffered by the algorithm (only input-buffered algorithms may do
	// so). Slot is called for every slot, including silent ones, so
	// buffered algorithms can release held cells — except that engines may
	// elide the call on slots that are provably idle (no arrivals, no
	// buffered cells anywhere) when the algorithm certifies IdleInvariant.
	// The returned slice is only valid until the next Slot call:
	// algorithms reuse its backing array across slots to keep the steady
	// state allocation-free.
	Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error)

	// Buffered reports the number of cells currently held in input-port
	// i's buffer; bufferless algorithms return 0. The fabric uses it for
	// conservation checks and buffer-capacity enforcement.
	Buffered(in cell.Port) int
}

// sendScratch is the reusable per-slot sends slice embedded by every
// algorithm. The fabric consumes the slice returned by Slot before the next
// Slot call (see Algorithm.Slot), so handing out the same backing array
// each slot is safe and keeps steady-state dispatch allocation-free.
type sendScratch struct{ sends []Send }

// take returns the reusable slice, emptied.
func (s *sendScratch) take() []Send { return s.sends[:0] }

// keep retains sends' backing array for the next slot and returns sends.
func (s *sendScratch) keep(sends []Send) []Send {
	s.sends = sends
	return sends
}

// IdleInvariant is an optional Algorithm capability for the harness's
// quiescence fast-forward and event-driven cores: an algorithm returns true
// to certify that Slot(t, nil) on a slot with no arrivals — and, for
// input-buffered algorithms, no buffered cells — leaves every piece of its
// observable state (pointers, counters, RNG streams, log cursors) unchanged
// and returns no sends. Under that certificate the engine may skip Slot
// entirely on elided idle slots and still produce bit-identical results.
//
// The certificate also makes *partial* idleness sound for the event core's
// sparse bookkeeping: because an idle Slot call is a provable no-op, the
// only inputs whose buffer reports can change on any slot are those holding
// pending cells plus those receiving an arrival, and the only outputs that
// can emit are those already holding queued work — so auditing just those
// working sets observes everything a full O(N) walk would. An algorithm
// whose Slot could touch per-input or per-output state *outside* those sets
// on a non-idle slot is still fine (the fabric executes every non-idle slot
// in full); only idle-slot mutation breaks the contract.
//
// Algorithms whose per-slot work is driven by wall-clock time rather than
// arrivals must NOT implement this (or must return false): the stale-info
// family advances its delayed view of the global log every slot, including
// silent ones, so eliding a slot would change which events it has digested
// when the next burst lands.
type IdleInvariant interface {
	IdleInvariant() bool
}

// Prober is implemented by deterministic algorithms that can reveal which
// plane they would pick next for a given (input, output) pair, assuming all
// input gates free and no intervening arrivals. The steering adversary of
// Theorem 6 uses it as a stand-in for the proof's "for every pair of
// applicable configurations there is a traffic leading from one to the
// other": instead of searching traffic space, it asks the state machine
// directly and feeds cells until the answer is the target plane.
type Prober interface {
	WouldChoose(in cell.Port, out cell.Port) (cell.Plane, bool)
}

// Env is the fabric-provided environment an algorithm is constructed with.
type Env interface {
	// Ports returns N, the number of external ports.
	Ports() int
	// Planes returns K, the number of middle-stage switches.
	Planes() int
	// RPrime returns r' = R/r, the slots an internal line is held per cell.
	RPrime() int64
	// InputGateFreeAt returns the earliest slot at which input in may
	// start a transmission to plane k. The input's own gates are local
	// information, available to every class of algorithm.
	InputGateFreeAt(in cell.Port, k cell.Plane) cell.Time
	// Log returns the global event log. Fully-distributed algorithms must
	// not call it; u-RT algorithms must cap reads at t-u.
	Log() *Log
}

// GateMasker is an optional Env capability: the set of planes whose line
// from input `in` is free at slot t, as a bitmask over plane indices. It is
// the batched form of InputGateFreeAt — one call per cell instead of K — and
// the free-gate gate for the O(1) amortized plane-selection structures, so
// fault-aware wrappers compose by clearing dead planes' bits.
//
// The capability is only meaningful when Planes() <= 64; algorithms must
// fall back to the per-plane scan on wider switches even when the Env
// asserts the interface. Queries for an input must come with non-decreasing
// t (the fabric's per-slot dispatch order guarantees this).
type GateMasker interface {
	FreeGateMask(in cell.Port, t cell.Time) uint64
}

// gateMasker resolves env's GateMasker capability, nil when absent or when
// the plane count exceeds the 64-bit mask width.
func gateMasker(env Env) GateMasker {
	if env.Planes() > 64 {
		return nil
	}
	m, _ := env.(GateMasker)
	return m
}

// freeMask returns the bitmask of planes whose gate from input `in` is free
// at slot t: one capability call when masker is non-nil, a per-plane scan
// over env otherwise. Callers must ensure env.Planes() <= 64.
func freeMask(env Env, masker GateMasker, in cell.Port, t cell.Time) uint64 {
	if masker != nil {
		return masker.FreeGateMask(in, t)
	}
	var m uint64
	for k := env.Planes() - 1; k >= 0; k-- {
		if env.InputGateFreeAt(in, cell.Plane(k)) <= t {
			m |= 1 << uint(k)
		}
	}
	return m
}

// EventKind discriminates global log entries.
type EventKind uint8

// Event kinds recorded by the fabric.
const (
	// EvArrival: a cell arrived at input In destined to Out.
	EvArrival EventKind = iota
	// EvDispatch: a cell for Out was sent from In to plane K.
	EvDispatch
	// EvXmit: a cell for Out crossed the (K, Out) plane-to-output line.
	EvXmit
)

// Event is one entry of the global log.
type Event struct {
	T    cell.Time
	Kind EventKind
	In   cell.Port
	Out  cell.Port
	K    cell.Plane
}

// Log is the append-only record of globally visible switch events, written
// by the fabric in slot order. Readers hold independent cursors, so several
// u-RT viewers with different staleness can share one log.
type Log struct {
	events []Event
}

// Append records an event. Events must be appended in non-decreasing slot
// order; the fabric guarantees this.
func (l *Log) Append(e Event) {
	if n := len(l.events); n > 0 && e.T < l.events[n-1].T {
		panic(fmt.Sprintf("demux: log event at slot %d after slot %d", e.T, l.events[n-1].T))
	}
	l.events = append(l.events, e)
}

// Len reports the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Cursor tracks a reader's position in the log. The zero value starts at
// the beginning.
type Cursor struct{ idx int }

// Read invokes fn for every unread event with T <= upto, advancing the
// cursor past them. Events with T > upto remain unread — this is how u-RT
// algorithms are physically prevented from seeing the last u slots.
func (l *Log) Read(c *Cursor, upto cell.Time, fn func(Event)) {
	for c.idx < len(l.events) && l.events[c.idx].T <= upto {
		fn(l.events[c.idx])
		c.idx++
	}
}

// pickFree scans planes cyclically from start and returns the first plane
// whose input gate is free at t, or NoPlane if every gate is busy (which
// the input constraint makes impossible when K >= r', since at most r'-1
// gates can be busy... per transmission; the fabric still checks).
func pickFree(env Env, in cell.Port, t cell.Time, start cell.Plane, allowed func(cell.Plane) bool) cell.Plane {
	k := env.Planes()
	for d := 0; d < k; d++ {
		p := cell.Plane((int(start) + d) % k)
		if allowed != nil && !allowed(p) {
			continue
		}
		if env.InputGateFreeAt(in, p) <= t {
			return p
		}
	}
	return cell.NoPlane
}
