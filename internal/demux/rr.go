package demux

import (
	"fmt"

	"ppsim/internal/cell"
)

// Granularity selects how round-robin pointers are scoped.
type Granularity uint8

// Round-robin pointer scopes.
const (
	// PerInput: one pointer per input, advanced by every cell the input
	// dispatches regardless of destination. This is the simplest
	// unpartitioned fully-distributed algorithm (Corollary 7's subject).
	PerInput Granularity = iota
	// PerFlow: one pointer per (input, output) pair. Cells of a flow
	// visit planes cyclically, which is the dispatch discipline of the
	// fully-distributed CPA variant of Iyer-McKeown [15] (relative
	// queuing delay at most N*R/r) and of FTD-style algorithms.
	PerFlow
)

// RoundRobin is the unpartitioned fully-distributed demultiplexing
// algorithm: each input cycles over all K planes, skipping planes whose
// input gate is busy. It uses no global information whatsoever, and —
// because every demultiplexor can send a cell for any output through any
// plane — it is N-partitioned in the paper's terminology, subject to the
// Omega((R/r - 1) * N) bound of Corollary 7.
type RoundRobin struct {
	sendScratch
	env  Env
	gran Granularity
	ptr  []cell.Plane             // PerInput state
	fptr map[cell.Flow]cell.Plane // PerFlow state
}

// NewRoundRobin returns the round-robin algorithm with the given pointer
// granularity. It returns an error if K < r' (an input receiving a cell
// every slot could not sustain rate R).
func NewRoundRobin(env Env, gran Granularity) (*RoundRobin, error) {
	if int64(env.Planes()) < env.RPrime() {
		return nil, fmt.Errorf("demux: round-robin needs K >= r' (K=%d, r'=%d)", env.Planes(), env.RPrime())
	}
	rr := &RoundRobin{env: env, gran: gran}
	switch gran {
	case PerInput:
		rr.ptr = make([]cell.Plane, env.Ports())
	case PerFlow:
		rr.fptr = make(map[cell.Flow]cell.Plane)
	default:
		return nil, fmt.Errorf("demux: unknown granularity %d", gran)
	}
	return rr, nil
}

// Name implements Algorithm.
func (rr *RoundRobin) Name() string {
	if rr.gran == PerFlow {
		return "perflow-rr"
	}
	return "rr"
}

// Slot implements Algorithm. Every arriving cell is dispatched immediately
// (bufferless PPS): the next plane in cyclic order with a free input gate.
func (rr *RoundRobin) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	sends := rr.take()
	for _, c := range arrivals {
		start := rr.pointer(c.Flow)
		p := pickFree(rr.env, c.Flow.In, t, start, nil)
		if p == cell.NoPlane {
			return nil, fmt.Errorf("demux: rr input %d has no free gate at slot %d", c.Flow.In, t)
		}
		rr.setPointer(c.Flow, (p+1)%cell.Plane(rr.env.Planes()))
		sends = append(sends, Send{Cell: c, Plane: p})
	}
	return rr.keep(sends), nil
}

// Buffered implements Algorithm (bufferless: always 0).
func (rr *RoundRobin) Buffered(cell.Port) int { return 0 }

// WouldChoose implements Prober: the plane the next cell of (in -> out)
// would take if all gates were free.
func (rr *RoundRobin) WouldChoose(in, out cell.Port) (cell.Plane, bool) {
	return rr.pointer(cell.Flow{In: in, Out: out}), true
}

func (rr *RoundRobin) pointer(f cell.Flow) cell.Plane {
	if rr.gran == PerFlow {
		return rr.fptr[f]
	}
	return rr.ptr[f.In]
}

func (rr *RoundRobin) setPointer(f cell.Flow, p cell.Plane) {
	if rr.gran == PerFlow {
		rr.fptr[f] = p
		return
	}
	rr.ptr[f.In] = p
}

// IdleInvariant certifies the fast-forward capability: with no arrivals,
// Slot returns before touching any pointer state.
func (rr *RoundRobin) IdleInvariant() bool { return true }
