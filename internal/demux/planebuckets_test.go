package demux

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ppsim/internal/cell"
)

// TestPlaneBucketsMatchScan pins the bucketed argmin to the historical
// counter scan: for random masks and increment sequences, argmin(mask) must
// return exactly the plane `counts[p] < counts[best]` over ascending p picks.
func TestPlaneBucketsMatchScan(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8, 32, 64} {
		rng := rand.New(rand.NewSource(int64(k)))
		pb := newPlaneBuckets(k)
		counts := make([]uint64, k)
		full := ^uint64(0) >> uint(64-k)
		for step := 0; step < 5000; step++ {
			mask := rng.Uint64() & full
			if step%7 == 0 {
				mask = full
			}
			want := cell.NoPlane
			for p := 0; p < k; p++ {
				if mask&(1<<uint(p)) == 0 {
					continue
				}
				if want == cell.NoPlane || counts[p] < counts[want] {
					want = cell.Plane(p)
				}
			}
			got := pb.argmin(mask)
			if got != want {
				t.Fatalf("k=%d step %d: argmin(%#x) = %d, scan says %d (counts %v)", k, step, mask, got, want, counts)
			}
			if got == cell.NoPlane {
				continue
			}
			// Mostly advance the chosen plane (the production pattern), but
			// sometimes a random one, to diversify the bucket shapes.
			p := got
			if step%11 == 0 {
				p = cell.Plane(rng.Intn(k))
			}
			pb.inc(p)
			counts[p]++
			if !reflect.DeepEqual(pb.count, counts) {
				t.Fatalf("k=%d step %d: bucket counters diverged: %v vs %v", k, step, pb.count, counts)
			}
		}
	}
}

// TestLinkBucketsMatchScan pins linkBuckets to the clamped-argmin scan the
// cpa-sets wide path performs: choose must return the plane in mask whose
// max(next, t) is earliest with lowest-index ties (including planes whose
// raw next differs but clamps equal — the merge-on-clamp case).
func TestLinkBucketsMatchScan(t *testing.T) {
	for _, k := range []int{1, 2, 8, 64} {
		rng := rand.New(rand.NewSource(int64(100 + k)))
		lb := newLinkBuckets(k)
		next := make([]cell.Time, k)
		full := ^uint64(0) >> uint(64-k)
		now := cell.Time(0)
		for step := 0; step < 5000; step++ {
			now += cell.Time(rng.Intn(3))
			mask := rng.Uint64() & full
			if mask == 0 {
				mask = full
			}
			want := cell.NoPlane
			var wantNext cell.Time
			for p := 0; p < k; p++ {
				if mask&(1<<uint(p)) == 0 {
					continue
				}
				nx := next[p]
				if nx < now {
					nx = now
				}
				if want == cell.NoPlane || nx < wantNext {
					want, wantNext = cell.Plane(p), nx
				}
			}
			gotP, gotNext := lb.choose(mask, now)
			if gotP != want || gotNext != wantNext {
				t.Fatalf("k=%d step %d t=%d: choose(%#x) = (%d, %d), scan says (%d, %d); next %v",
					k, step, now, mask, gotP, gotNext, want, wantNext, next)
			}
			hold := gotNext + cell.Time(1+rng.Intn(4))
			lb.move(gotP, gotNext, hold)
			next[gotP] = hold
		}
	}
}

// maskerEnv is fakeEnv with the GateMasker capability wired to the timing
// matrix's busy masks; seizures must go through SeizeAt to be tracked.
type maskerEnv struct{ *fakeEnv }

func (e maskerEnv) FreeGateMask(in cell.Port, t cell.Time) uint64 {
	return e.gates.FreeColsMask(int(in), t)
}

// TestRandomMatchesFreeListReference pins the bitmask order-statistics draw
// to the historical implementation: build the ascending free list, draw
// Intn(len(free)), index it. Both the scan-fallback path (plain fakeEnv) and
// the GateMasker capability path must reproduce the reference dispatch
// sequence plane-for-plane off identical RNG streams.
func TestRandomMatchesFreeListReference(t *testing.T) {
	const n, k, rp, slots, seed = 4, 8, 3, 400, 42

	// Arrival pattern shared by all three runs: pat[slot][in] destination,
	// cell.Port(-1) meaning no arrival at that input.
	patRNG := rand.New(rand.NewSource(99))
	pat := make([][]cell.Port, slots)
	for s := range pat {
		pat[s] = make([]cell.Port, n)
		for in := range pat[s] {
			if patRNG.Intn(3) == 0 {
				pat[s][in] = cell.Port(patRNG.Intn(n))
			} else {
				pat[s][in] = cell.Port(-1)
			}
		}
	}

	// Reference: the historical free-list algorithm, replicated verbatim.
	ref := func() []cell.Plane {
		e := newFakeEnv(n, k, rp)
		rngs := make([]*rand.Rand, n)
		for i := range rngs {
			rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
		}
		var out []cell.Plane
		for s := cell.Time(0); s < slots; s++ {
			for in := 0; in < n; in++ {
				if pat[s][in] < 0 {
					continue
				}
				var free []cell.Plane
				for p := 0; p < k; p++ {
					if e.InputGateFreeAt(cell.Port(in), cell.Plane(p)) <= s {
						free = append(free, cell.Plane(p))
					}
				}
				if len(free) == 0 {
					t.Fatalf("reference: no free gate at slot %d input %d", s, in)
				}
				p := free[rngs[in].Intn(len(free))]
				if err := e.gates.Gate(in, int(p)).Seize(s); err != nil {
					t.Fatal(err)
				}
				out = append(out, p)
			}
		}
		return out
	}()

	subject := func(masked bool) []cell.Plane {
		fe := newFakeEnv(n, k, rp)
		var env Env = fe
		if masked {
			env = maskerEnv{fe}
		}
		a, err := NewRandom(env, seed)
		if err != nil {
			t.Fatal(err)
		}
		st := cell.NewStamper()
		var out []cell.Plane
		var cells []cell.Cell
		for s := cell.Time(0); s < slots; s++ {
			cells = cells[:0]
			for in := 0; in < n; in++ {
				if pat[s][in] >= 0 {
					cells = append(cells, st.Stamp(cell.Flow{In: cell.Port(in), Out: pat[s][in]}, s))
				}
			}
			sends, err := a.Slot(s, cells)
			if err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			for _, snd := range sends {
				if masked {
					err = fe.gates.SeizeAt(int(snd.Cell.Flow.In), int(snd.Plane), s)
				} else {
					err = fe.gates.Gate(int(snd.Cell.Flow.In), int(snd.Plane)).Seize(s)
				}
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, snd.Plane)
			}
		}
		return out
	}

	if got := subject(false); !reflect.DeepEqual(got, ref) {
		t.Fatalf("scan-fallback Random diverged from free-list reference:\n got %v\nwant %v", got, ref)
	}
	if got := subject(true); !reflect.DeepEqual(got, ref) {
		t.Fatalf("GateMasker Random diverged from free-list reference:\n got %v\nwant %v", got, ref)
	}
}

// BenchmarkPlaneArgmin contrasts the historical O(K) counter scan with the
// bucketed O(1)-amortized structure across plane counts (satellite:
// profile-guided evidence for Layer 2). All gates free — the pure selection
// cost, no Env in the loop.
func BenchmarkPlaneArgmin(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("scan/k%d", k), func(b *testing.B) {
			counts := make([]uint64, k)
			for i := 0; i < b.N; i++ {
				best := 0
				for p := 1; p < k; p++ {
					if counts[p] < counts[best] {
						best = p
					}
				}
				counts[best]++
			}
		})
		b.Run(fmt.Sprintf("buckets/k%d", k), func(b *testing.B) {
			pb := newPlaneBuckets(k)
			full := ^uint64(0) >> uint(64-k)
			for i := 0; i < b.N; i++ {
				pb.inc(pb.argmin(full))
			}
		})
	}
}
