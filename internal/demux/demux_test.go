package demux

import (
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/timing"
)

// fakeEnv is a minimal fabric stand-in for unit-testing algorithms.
type fakeEnv struct {
	n, k  int
	rp    int64
	gates *timing.Matrix
	log   Log
}

func newFakeEnv(n, k int, rp int64) *fakeEnv {
	return &fakeEnv{n: n, k: k, rp: rp, gates: timing.NewMatrix(n, k, rp)}
}

func (e *fakeEnv) Ports() int    { return e.n }
func (e *fakeEnv) Planes() int   { return e.k }
func (e *fakeEnv) RPrime() int64 { return e.rp }
func (e *fakeEnv) InputGateFreeAt(in cell.Port, k cell.Plane) cell.Time {
	return e.gates.Gate(int(in), int(k)).FreeAt()
}
func (e *fakeEnv) Log() *Log { return &e.log }

// exec runs one slot of the algorithm and seizes gates like the fabric.
func exec(t *testing.T, e *fakeEnv, a Algorithm, slot cell.Time, arrivals ...cell.Cell) []Send {
	t.Helper()
	sends, err := a.Slot(slot, arrivals)
	if err != nil {
		t.Fatalf("slot %d: %v", slot, err)
	}
	for _, s := range sends {
		if err := e.gates.Gate(int(s.Cell.Flow.In), int(s.Plane)).Seize(slot); err != nil {
			t.Fatalf("slot %d: input constraint violated: %v", slot, err)
		}
		e.log.Append(Event{T: slot, Kind: EvDispatch, In: s.Cell.Flow.In, Out: s.Cell.Flow.Out, K: s.Plane})
	}
	// Slot's return value is only valid until the next Slot call (the
	// algorithms reuse the backing array); tests hold results across
	// slots, so hand back a copy.
	return append([]Send(nil), sends...)
}

func arr(st *cell.Stamper, t cell.Time, in, out cell.Port) cell.Cell {
	return st.Stamp(cell.Flow{In: in, Out: out}, t)
}

func TestLogCursorStaleness(t *testing.T) {
	var l Log
	for i := cell.Time(0); i < 5; i++ {
		l.Append(Event{T: i, Kind: EvArrival})
	}
	var c Cursor
	var seen []cell.Time
	l.Read(&c, 2, func(e Event) { seen = append(seen, e.T) })
	if len(seen) != 3 || seen[2] != 2 {
		t.Errorf("Read(upto=2) saw %v", seen)
	}
	l.Read(&c, 10, func(e Event) { seen = append(seen, e.T) })
	if len(seen) != 5 {
		t.Errorf("cursor did not resume: %v", seen)
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestLogRejectsTimeTravel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var l Log
	l.Append(Event{T: 5})
	l.Append(Event{T: 4})
}

func TestRoundRobinCyclesPlanes(t *testing.T) {
	e := newFakeEnv(2, 4, 1)
	a, err := NewRoundRobin(e, PerInput)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	var planes []cell.Plane
	for slot := cell.Time(0); slot < 6; slot++ {
		s := exec(t, e, a, slot, arr(st, slot, 0, 1))
		planes = append(planes, s[0].Plane)
	}
	want := []cell.Plane{0, 1, 2, 3, 0, 1}
	for i := range want {
		if planes[i] != want[i] {
			t.Errorf("dispatch %d -> plane %d, want %d", i, planes[i], want[i])
		}
	}
}

func TestRoundRobinSkipsBusyGates(t *testing.T) {
	e := newFakeEnv(1, 3, 2) // r'=2: gate busy for 2 slots
	a, _ := NewRoundRobin(e, PerInput)
	st := cell.NewStamper()
	s0 := exec(t, e, a, 0, arr(st, 0, 0, 0)) // plane 0, gate (0,0) busy until 2
	s1 := exec(t, e, a, 1, arr(st, 1, 0, 0)) // pointer at 1, free -> plane 1
	s2 := exec(t, e, a, 2, arr(st, 2, 0, 0)) // pointer at 2 -> plane 2
	s3 := exec(t, e, a, 3, arr(st, 3, 0, 0)) // pointer at 0, gate free again -> plane 0
	got := []cell.Plane{s0[0].Plane, s1[0].Plane, s2[0].Plane, s3[0].Plane}
	want := []cell.Plane{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dispatch %d -> plane %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRoundRobinPerFlowPointers(t *testing.T) {
	e := newFakeEnv(1, 4, 1)
	a, _ := NewRoundRobin(e, PerFlow)
	if a.Name() != "perflow-rr" {
		t.Errorf("Name = %q", a.Name())
	}
	st := cell.NewStamper()
	// Alternate destinations; each flow keeps its own pointer.
	p0 := exec(t, e, a, 0, arr(st, 0, 0, 0))[0].Plane
	p1 := exec(t, e, a, 1, arr(st, 1, 0, 1))[0].Plane
	p2 := exec(t, e, a, 2, arr(st, 2, 0, 0))[0].Plane
	p3 := exec(t, e, a, 3, arr(st, 3, 0, 1))[0].Plane
	if p0 != 0 || p1 != 0 || p2 != 1 || p3 != 1 {
		t.Errorf("per-flow pointers broken: %d %d %d %d", p0, p1, p2, p3)
	}
}

func TestRoundRobinWouldChooseIsPure(t *testing.T) {
	e := newFakeEnv(2, 4, 1)
	a, _ := NewRoundRobin(e, PerInput)
	p1, ok1 := a.WouldChoose(0, 3)
	p2, ok2 := a.WouldChoose(0, 3)
	if !ok1 || !ok2 || p1 != p2 {
		t.Error("WouldChoose must be pure")
	}
	st := cell.NewStamper()
	s := exec(t, e, a, 0, arr(st, 0, 0, 3))
	if s[0].Plane != p1 {
		t.Errorf("dispatched to %d, WouldChoose said %d", s[0].Plane, p1)
	}
}

func TestRoundRobinRejectsTooFewPlanes(t *testing.T) {
	e := newFakeEnv(2, 2, 3) // K=2 < r'=3
	if _, err := NewRoundRobin(e, PerInput); err == nil {
		t.Error("K < r' must be rejected")
	}
}

func TestStaticPartitionStaysInGroup(t *testing.T) {
	e := newFakeEnv(8, 6, 2)
	a, err := NewStaticPartition(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 12; slot++ {
		in := cell.Port(slot % 8)
		s := exec(t, e, a, slot, arr(st, slot, in, 0))
		group := a.Group(in)
		p := int(s[0].Plane)
		if p < group*3 || p >= (group+1)*3 {
			t.Errorf("input %d (group %d) dispatched to plane %d", in, group, p)
		}
	}
}

func TestStaticPartitionSets(t *testing.T) {
	e := newFakeEnv(8, 6, 2)
	a, _ := NewStaticPartition(e, 3)
	ps := a.PlanesOf(1) // group = 1 % 2 = 1 -> planes 3,4,5
	if len(ps) != 3 || ps[0] != 3 || ps[2] != 5 {
		t.Errorf("PlanesOf(1) = %v", ps)
	}
	ins := a.InputsOf(4) // plane 4 in group 1 -> inputs 1,3,5,7
	if len(ins) != 4 || ins[0] != 1 || ins[3] != 7 {
		t.Errorf("InputsOf(4) = %v", ins)
	}
}

func TestStaticPartitionValidation(t *testing.T) {
	e := newFakeEnv(4, 6, 2)
	if _, err := NewStaticPartition(e, 1); err == nil {
		t.Error("d < r' must be rejected")
	}
	if _, err := NewStaticPartition(e, 4); err == nil {
		t.Error("d not dividing K must be rejected")
	}
	if _, err := NewStaticPartition(e, 12); err == nil {
		t.Error("d > K must be rejected")
	}
	if _, err := NewStaticPartition(e, 6); err != nil {
		t.Errorf("d = K should be accepted: %v", err)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []cell.Plane {
		e := newFakeEnv(2, 4, 1)
		a, err := NewRandom(e, seed)
		if err != nil {
			t.Fatal(err)
		}
		st := cell.NewStamper()
		var out []cell.Plane
		for slot := cell.Time(0); slot < 20; slot++ {
			s := exec(t, e, a, slot, arr(st, slot, 0, 0))
			out = append(out, s[0].Plane)
		}
		return out
	}
	a, b := run(7), run(7)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Error("same seed must reproduce the same dispatch sequence")
	}
	c := run(8)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestRandomRespectsGates(t *testing.T) {
	e := newFakeEnv(1, 3, 3) // r'=3, K=3: after 2 dispatches only 1 gate free
	a, _ := NewRandom(e, 1)
	st := cell.NewStamper()
	used := map[cell.Plane]bool{}
	for slot := cell.Time(0); slot < 3; slot++ {
		s := exec(t, e, a, slot, arr(st, slot, 0, 0))
		p := s[0].Plane
		if used[p] {
			t.Fatalf("plane %d reused within r' window", p)
		}
		used[p] = true
	}
}
