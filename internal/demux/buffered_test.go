package demux

import (
	"testing"

	"ppsim/internal/cell"
)

func TestStaleCPAValidation(t *testing.T) {
	e := newFakeEnv(2, 2, 1)
	if _, err := NewStaleCPA(e, 0); err == nil {
		t.Error("u=0 must be rejected (that is centralized CPA)")
	}
	a, err := NewStaleCPA(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Staleness() != 3 || a.Name() != "stale-cpa-u3" {
		t.Errorf("Staleness/Name wrong: %d %q", a.Staleness(), a.Name())
	}
}

func TestStaleCPAHerdsSimultaneousArrivals(t *testing.T) {
	// With a cold (empty) stale view, all inputs arriving in one slot see
	// identical state and pick the same plane — the Theorem 10 herding
	// mechanism — except where their own gates differ. With fresh gates
	// everywhere, all should pick plane 0.
	e := newFakeEnv(4, 4, 2)
	a, _ := NewStaleCPA(e, 5)
	st := cell.NewStamper()
	var cells []cell.Cell
	for i := 0; i < 4; i++ {
		cells = append(cells, arr(st, 0, cell.Port(i), 0))
	}
	sends, err := a.Slot(0, cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sends {
		if s.Plane != 0 {
			t.Errorf("input %d dispatched to plane %d, want herding to 0", s.Cell.Flow.In, s.Plane)
		}
	}
}

func TestStaleCPAOwnBlindOverlayAvoidsSelfCollision(t *testing.T) {
	// A single input sending repeatedly inside its blind window must
	// account for its own dispatches and rotate planes, not pile onto one.
	e := newFakeEnv(1, 4, 1) // r'=1 so the gate never blocks
	a, _ := NewStaleCPA(e, 10)
	st := cell.NewStamper()
	seen := map[cell.Plane]int{}
	for slot := cell.Time(0); slot < 4; slot++ {
		s := exec(t, e, a, slot, arr(st, slot, 0, 0))
		seen[s[0].Plane]++
	}
	if len(seen) != 4 {
		t.Errorf("own-blind overlay failed: dispatches landed on %v", seen)
	}
}

func TestStaleCPAConsumesLogAfterStaleness(t *testing.T) {
	e := newFakeEnv(2, 2, 1)
	a, _ := NewStaleCPA(e, 2)
	// Seed the log with heavy plane-0 dispatches for output 0 at slot 0.
	for i := 0; i < 6; i++ {
		e.log.Append(Event{T: 0, Kind: EvDispatch, In: 1, Out: 0, K: 0})
	}
	st := cell.NewStamper()
	// At slot 1 the events are still blind (1-2 < 0): herding to plane 0.
	s1, err := a.Slot(1, []cell.Cell{arr(st, 1, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if s1[0].Plane != 0 {
		t.Fatalf("blind dispatch went to plane %d", s1[0].Plane)
	}
	e.gates.Gate(0, 0).Seize(1)
	// At slot 3 the slot-0 events are visible (3-2 >= 0): plane 0 now
	// looks backlogged, so the cell must avoid it.
	s3, err := a.Slot(3, []cell.Cell{arr(st, 3, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if s3[0].Plane == 0 {
		t.Error("stale view not consumed: still dispatching to backlogged plane 0")
	}
}

func TestStaleCPARandomTieScatters(t *testing.T) {
	// Same cold stale view as the herding test, but randomized ties: the
	// four simultaneous arrivals should not all land on plane 0.
	e := newFakeEnv(4, 4, 2)
	a, err := NewStaleCPARandomTie(e, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "stale-cpa-u5-randtie" {
		t.Errorf("Name = %q", a.Name())
	}
	st := cell.NewStamper()
	var cells []cell.Cell
	for i := 0; i < 4; i++ {
		cells = append(cells, arr(st, 0, cell.Port(i), 0))
	}
	sends, err := a.Slot(0, cells)
	if err != nil {
		t.Fatal(err)
	}
	planes := map[cell.Plane]bool{}
	for _, s := range sends {
		planes[s.Plane] = true
	}
	if len(planes) < 2 {
		t.Errorf("randomized ties still herded onto %v", planes)
	}
}

func TestStaleCPARandomTieDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []cell.Plane {
		e := newFakeEnv(2, 4, 1)
		a, _ := NewStaleCPARandomTie(e, 3, seed)
		st := cell.NewStamper()
		var out []cell.Plane
		for slot := cell.Time(0); slot < 10; slot++ {
			s := exec(t, e, a, slot, arr(st, slot, 0, 0))
			out = append(out, s[0].Plane)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same dispatches")
		}
	}
}

func TestBufferedCPAHoldsCellsForU(t *testing.T) {
	const u = 3
	e := newFakeEnv(2, 4, 2)
	a, err := NewBufferedCPA(e, u, MinAvail)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	c := arr(st, 0, 0, 1)
	for slot := cell.Time(0); slot < u; slot++ {
		var in []cell.Cell
		if slot == 0 {
			in = []cell.Cell{c}
		}
		sends, err := a.Slot(slot, in)
		if err != nil {
			t.Fatal(err)
		}
		if len(sends) != 0 {
			t.Fatalf("cell released at slot %d, before aging %d slots", slot, u)
		}
		if a.Buffered(0) != 1 {
			t.Fatalf("Buffered(0) = %d at slot %d", a.Buffered(0), slot)
		}
	}
	sends, err := a.Slot(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sends) != 1 || sends[0].Cell.Seq != c.Seq {
		t.Fatalf("cell not released at slot %d: %v", u, sends)
	}
	if a.Buffered(0) != 0 {
		t.Error("buffer should be empty after release")
	}
}

func TestBufferedCPAZeroLagIsImmediate(t *testing.T) {
	e := newFakeEnv(2, 4, 2)
	a, _ := NewBufferedCPA(e, 0, MinAvail)
	st := cell.NewStamper()
	sends, err := a.Slot(0, []cell.Cell{arr(st, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(sends) != 1 {
		t.Fatal("u=0 must dispatch immediately")
	}
	if _, err := NewBufferedCPA(e, -1, MinAvail); err == nil {
		t.Error("negative lag must be rejected")
	}
}

func TestBufferedCPABufferBoundedByU(t *testing.T) {
	const u = 4
	e := newFakeEnv(1, 4, 2)
	a, _ := NewBufferedCPA(e, u, MinAvail)
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 40; slot++ {
		sends, err := a.Slot(slot, []cell.Cell{arr(st, slot, 0, 0)})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sends {
			if err := e.gates.Gate(0, int(s.Plane)).Seize(slot); err != nil {
				t.Fatal(err)
			}
		}
		if b := a.Buffered(0); b > u+1 {
			t.Fatalf("buffer occupancy %d exceeds u+1=%d", b, u+1)
		}
	}
}

func TestBufferedRRBuffersWhenGatesBusy(t *testing.T) {
	// K = r' = 2: after dispatching two cells back-to-back, both gates are
	// busy, so the third arrival must wait in the buffer.
	e := newFakeEnv(1, 2, 2)
	a, err := NewBufferedRR(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	total := 0
	for slot := cell.Time(0); slot < 3; slot++ {
		sends, err := a.Slot(slot, []cell.Cell{arr(st, slot, 0, 0)})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sends {
			if err := e.gates.Gate(0, int(s.Plane)).Seize(slot); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	if total+a.Buffered(0) != 3 {
		t.Errorf("conservation: sent %d + buffered %d != 3", total, a.Buffered(0))
	}
}

func TestBufferedRROverflowErrors(t *testing.T) {
	e := newFakeEnv(1, 2, 2)
	a, _ := NewBufferedRR(e, 1)
	st := cell.NewStamper()
	// Fill the capacity-1 buffer without draining gates: dispatches are
	// chosen but gates never seized by us — emulate stuck gates by seizing
	// both manually first.
	e.gates.Gate(0, 0).Seize(0)
	e.gates.Gate(0, 1).Seize(0)
	if _, err := a.Slot(0, []cell.Cell{arr(st, 0, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Slot(1, []cell.Cell{arr(st, 1, 0, 0)}); err == nil {
		t.Error("buffer overflow must error (drops are forbidden)")
	}
}

func TestBufferedRRPreservesFIFO(t *testing.T) {
	e := newFakeEnv(1, 4, 1)
	a, _ := NewBufferedRR(e, 0)
	st := cell.NewStamper()
	var seqs []uint64
	for slot := cell.Time(0); slot < 10; slot++ {
		var in []cell.Cell
		if slot < 5 {
			in = []cell.Cell{arr(st, slot, 0, 0)}
		}
		sends, err := a.Slot(slot, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sends {
			e.gates.Gate(0, int(s.Plane)).Seize(slot)
			seqs = append(seqs, s.Cell.Seq)
		}
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("buffer order violated: %v", seqs)
		}
	}
}

func TestFTDBlockDistinctPlanes(t *testing.T) {
	e := newFakeEnv(1, 8, 2)
	a, err := NewFTD(e, 2) // block = ceil(2*2) = 4
	if err != nil {
		t.Fatal(err)
	}
	if a.BlockSize() != 4 {
		t.Fatalf("BlockSize = %d", a.BlockSize())
	}
	st := cell.NewStamper()
	var planes []cell.Plane
	for slot := cell.Time(0); slot < 8; slot++ {
		s := exec(t, e, a, slot, arr(st, slot, 0, 0))
		planes = append(planes, s[0].Plane)
	}
	for _, block := range [][]cell.Plane{planes[:4], planes[4:]} {
		seen := map[cell.Plane]bool{}
		for _, p := range block {
			if seen[p] {
				t.Errorf("plane %d repeated within a block: %v", p, block)
			}
			seen[p] = true
		}
	}
	if a.Fallbacks() != 0 {
		t.Errorf("unexpected fallbacks: %d", a.Fallbacks())
	}
}

func TestFTDValidation(t *testing.T) {
	e := newFakeEnv(1, 4, 2)
	if _, err := NewFTD(e, 1.0); err == nil {
		t.Error("h <= 1 must be rejected")
	}
	if _, err := NewFTD(e, 3); err == nil {
		t.Error("block > K must be rejected")
	}
}

func TestFTDWouldChoose(t *testing.T) {
	e := newFakeEnv(1, 4, 1)
	a, _ := NewFTD(e, 2)
	p, ok := a.WouldChoose(0, 0)
	if !ok || p != 0 {
		t.Errorf("fresh flow WouldChoose = %d %v", p, ok)
	}
	st := cell.NewStamper()
	s := exec(t, e, a, 0, arr(st, 0, 0, 0))
	if s[0].Plane != p {
		t.Error("WouldChoose must predict the dispatch")
	}
	p2, _ := a.WouldChoose(0, 0)
	if p2 == p {
		t.Error("after a dispatch the in-block prediction must move on")
	}
}
