package demux

import (
	"fmt"

	"ppsim/internal/cell"
)

// StaticPartition statically assigns each input a fixed subset of d planes
// and round-robins within it. The paper discusses this as the
// "unrealistic and failure-prone" extreme (Section 1.2, Theorem 6 with
// d-partitioning, Theorem 8): even here the relative queuing delay is at
// least (R/r - 1) * N/S, because the input constraint forces d >= r', so
// some plane serves at least r'*N/K = N/S demultiplexors.
//
// Inputs are grouped: with G = K/d groups, input i uses planes
// [ (i mod G)*d , (i mod G)*d + d ). A failure of one plane therefore
// strands the N/G inputs of its group — the fault-tolerance argument for
// unpartitioned dispatch.
type StaticPartition struct {
	sendScratch
	env Env
	d   int
	ptr []cell.Plane // per-input offset within its group
}

// NewStaticPartition returns the d-partitioned algorithm. It returns an
// error unless r' <= d <= K and d divides K.
func NewStaticPartition(env Env, d int) (*StaticPartition, error) {
	k := env.Planes()
	if d < int(env.RPrime()) {
		return nil, fmt.Errorf("demux: partition size %d below r'=%d violates the input constraint", d, env.RPrime())
	}
	if d > k || k%d != 0 {
		return nil, fmt.Errorf("demux: partition size %d must divide K=%d", d, k)
	}
	return &StaticPartition{env: env, d: d, ptr: make([]cell.Plane, env.Ports())}, nil
}

// Name implements Algorithm.
func (sp *StaticPartition) Name() string { return fmt.Sprintf("partition-%d", sp.d) }

// D returns the partition size.
func (sp *StaticPartition) D() int { return sp.d }

// Group returns the index of the plane group input in uses.
func (sp *StaticPartition) Group(in cell.Port) int {
	return int(in) % (sp.env.Planes() / sp.d)
}

// PlanesOf returns the planes input in may dispatch to.
func (sp *StaticPartition) PlanesOf(in cell.Port) []cell.Plane {
	base := sp.Group(in) * sp.d
	out := make([]cell.Plane, sp.d)
	for x := range out {
		out[x] = cell.Plane(base + x)
	}
	return out
}

// InputsOf returns the inputs that share plane k, i.e. the demultiplexors
// that can concentrate cells on it (the set I of Theorem 6's proof).
func (sp *StaticPartition) InputsOf(k cell.Plane) []cell.Port {
	g := int(k) / sp.d
	groups := sp.env.Planes() / sp.d
	var out []cell.Port
	for i := 0; i < sp.env.Ports(); i++ {
		if i%groups == g {
			out = append(out, cell.Port(i))
		}
	}
	return out
}

// Slot implements Algorithm.
func (sp *StaticPartition) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	sends := sp.take()
	for _, c := range arrivals {
		in := c.Flow.In
		base := cell.Plane(sp.Group(in) * sp.d)
		chosen := cell.NoPlane
		for x := 0; x < sp.d; x++ {
			p := base + (sp.ptr[in]+cell.Plane(x))%cell.Plane(sp.d)
			if sp.env.InputGateFreeAt(in, p) <= t {
				chosen = p
				break
			}
		}
		if chosen == cell.NoPlane {
			return nil, fmt.Errorf("demux: partition input %d has no free gate at slot %d", in, t)
		}
		sp.ptr[in] = (chosen - base + 1) % cell.Plane(sp.d)
		sends = append(sends, Send{Cell: c, Plane: chosen})
	}
	return sp.keep(sends), nil
}

// Buffered implements Algorithm (bufferless).
func (sp *StaticPartition) Buffered(cell.Port) int { return 0 }

// WouldChoose implements Prober.
func (sp *StaticPartition) WouldChoose(in, out cell.Port) (cell.Plane, bool) {
	base := cell.Plane(sp.Group(in) * sp.d)
	return base + sp.ptr[in]%cell.Plane(sp.d), true
}

// IdleInvariant certifies the fast-forward capability: partition pointers
// advance only on dispatch.
func (sp *StaticPartition) IdleInvariant() bool { return true }
