package demux

import (
	"fmt"
	"math/bits"

	"ppsim/internal/cell"
	"ppsim/internal/shadow"
)

// CPASets is a second, independent implementation of the centralized CPA,
// written the way Iyer, Awadallah and McKeown present it: via the
// *available input link set* AIL(i, t) — planes to which input i may start
// a transmission at slot t — and the *available output link set*
// AOL(j, DT) — planes whose line to output j can deliver a cell no later
// than the cell's shadow departure time DT. A cell is placed on any plane
// in the intersection; with S >= 2 both sets exceed K/2 so the intersection
// is nonempty.
//
// It exists for differential testing against the production CPA (which
// folds the same logic into per-line availability counters): two
// independent derivations of the same algorithm must exhibit identical
// zero-relative-delay behaviour, and the sets formulation doubles as
// executable documentation of the original paper's proof structure.
//
// Selection reduces to one argmin: both the preferred AIL∩AOL choice and
// the degraded empty-intersection choice pick the AIL plane whose clamped
// line time max(linkNext, t) is earliest (ties: lowest plane index), with a
// miss counted exactly when that minimum exceeds the deadline — so for
// K <= 64 planes the per-output linkBuckets structure answers each cell in
// O(1) amortized (DESIGN.md §15 carries the equivalence argument). Wider
// switches keep the original O(K) set construction.
type CPASets struct {
	sendScratch
	env    Env
	oracle *shadow.Oracle
	masker GateMasker
	// links[j] buckets planes by their (k, j) line's next-free slot;
	// nil when K > 64 (legacy path below).
	links []linkBuckets
	// linkNext[k*N+j]: earliest slot a new cell can cross line (k, j),
	// assuming earlier assignments drain greedily. Legacy K > 64 state.
	linkNext []cell.Time
	misses   uint64
}

// NewCPASets returns the sets-formulation CPA.
func NewCPASets(env Env) (*CPASets, error) {
	n, k := env.Ports(), env.Planes()
	a := &CPASets{
		env:    env,
		oracle: shadow.NewOracle(n),
		masker: gateMasker(env),
	}
	if k <= 64 {
		a.links = make([]linkBuckets, n)
		for j := range a.links {
			a.links[j] = newLinkBuckets(k)
		}
	} else {
		a.linkNext = make([]cell.Time, n*k)
	}
	return a, nil
}

// Name implements Algorithm.
func (a *CPASets) Name() string { return "cpa-sets" }

// Misses reports cells whose AIL/AOL intersection was empty (never at
// S >= 2 under admissible traffic).
func (a *CPASets) Misses() uint64 { return a.misses }

// Slot implements Algorithm.
func (a *CPASets) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	if a.links == nil {
		return a.slotWide(t, arrivals)
	}
	sends := a.take()
	for _, c := range arrivals {
		deadline := a.oracle.Departure(t, c.Flow.Out)
		mask := freeMask(a.env, a.masker, c.Flow.In, t)
		if mask == 0 {
			return nil, fmt.Errorf("demux: cpa-sets input %d has no free gate at slot %d", c.Flow.In, t)
		}
		lb := &a.links[c.Flow.Out]
		chosen, next := lb.choose(mask, t)
		if next > deadline {
			a.misses++
		}
		lb.move(chosen, next, next+cell.Time(a.env.RPrime()))
		sends = append(sends, Send{Cell: c, Plane: chosen})
	}
	return a.keep(sends), nil
}

// ail returns the planes input i may start a transmission to at slot t
// (legacy K > 64 path).
func (a *CPASets) ail(in cell.Port, t cell.Time) []cell.Plane {
	var out []cell.Plane
	for k := 0; k < a.env.Planes(); k++ {
		if a.env.InputGateFreeAt(in, cell.Plane(k)) <= t {
			out = append(out, cell.Plane(k))
		}
	}
	return out
}

// slotWide is the historical set-building path, kept for K > 64 where plane
// sets do not fit a bitmask.
func (a *CPASets) slotWide(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	n := a.env.Ports()
	sends := a.take()
	for _, c := range arrivals {
		deadline := a.oracle.Departure(t, c.Flow.Out)
		ail := a.ail(c.Flow.In, t)
		if len(ail) == 0 {
			return nil, fmt.Errorf("demux: cpa-sets input %d has no free gate at slot %d", c.Flow.In, t)
		}
		// One pass over AIL finds the plane whose clamped line time is
		// earliest (ties: lowest index, since ail ascends); the AIL∩AOL
		// preference falls out of it — if even this minimum misses the
		// deadline the intersection was empty, which is the degraded case.
		chosen := cell.NoPlane
		var chosenNext cell.Time
		for _, k := range ail {
			next := a.linkNext[int(k)*n+int(c.Flow.Out)]
			if next < t {
				next = t
			}
			if chosen == cell.NoPlane || next < chosenNext {
				chosen, chosenNext = k, next
			}
		}
		if chosenNext > deadline {
			a.misses++
		}
		a.linkNext[int(chosen)*n+int(c.Flow.Out)] = chosenNext + cell.Time(a.env.RPrime())
		sends = append(sends, Send{Cell: c, Plane: chosen})
	}
	return a.keep(sends), nil
}

// Buffered implements Algorithm (bufferless).
func (a *CPASets) Buffered(cell.Port) int { return 0 }

// IdleInvariant certifies the fast-forward capability: the AIL/AOL sets
// mutate only on arrivals.
func (a *CPASets) IdleInvariant() bool { return true }

// linkBuckets buckets the K planes of one output by the next-free slot of
// their (plane, output) line: vals ascends, bits[i] holds the planes whose
// line frees at vals[i], and every plane is in exactly one bucket. clamp
// lazily merges every bucket at or below the current slot into one front
// bucket valued at the slot — max(linkNext, t) collapses those planes into
// one value class, and merging keeps the lowest-set-bit tie-break equal to
// the lowest-index scan across the whole class.
type linkBuckets struct {
	vals []cell.Time
	bits []uint64
}

// newLinkBuckets returns the structure for k planes, all lines free since
// slot 0. k must be in (0, 64].
func newLinkBuckets(k int) linkBuckets {
	return linkBuckets{vals: []cell.Time{0}, bits: []uint64{^uint64(0) >> uint(64-k)}}
}

// clamp merges every bucket with value <= t into the front bucket, raised
// to value t. Amortized O(1): a bucket is merged at most once per creation.
func (b *linkBuckets) clamp(t cell.Time) {
	if b.vals[0] >= t {
		return
	}
	m := 0
	var acc uint64
	for m < len(b.vals) && b.vals[m] <= t {
		acc |= b.bits[m]
		m++
	}
	b.vals[m-1] = t
	b.bits[m-1] = acc
	if m > 1 {
		b.vals = append(b.vals[:0], b.vals[m-1:]...)
		b.bits = append(b.bits[:0], b.bits[m-1:]...)
	}
}

// choose returns the plane in mask whose clamped line time max(val, t) is
// earliest, ties to the lowest plane index, together with that time. mask
// must be nonzero.
func (b *linkBuckets) choose(mask uint64, t cell.Time) (cell.Plane, cell.Time) {
	b.clamp(t)
	for i, bm := range b.bits {
		if hit := bm & mask; hit != 0 {
			return cell.Plane(bits.TrailingZeros64(hit)), b.vals[i]
		}
	}
	return cell.NoPlane, 0
}

// move relocates plane p from the bucket valued `from` to the one valued
// `to` (creating/removing buckets as needed). to must be > from.
func (b *linkBuckets) move(p cell.Plane, from, to cell.Time) {
	i := 0
	for b.vals[i] != from {
		i++
	}
	bit := uint64(1) << uint(p)
	if b.bits[i] == bit {
		b.vals = append(b.vals[:i], b.vals[i+1:]...)
		b.bits = append(b.bits[:i], b.bits[i+1:]...)
	} else {
		b.bits[i] &^= bit
	}
	j := i
	for j < len(b.vals) && b.vals[j] < to {
		j++
	}
	if j < len(b.vals) && b.vals[j] == to {
		b.bits[j] |= bit
		return
	}
	b.vals = append(b.vals, 0)
	b.bits = append(b.bits, 0)
	copy(b.vals[j+1:], b.vals[j:])
	copy(b.bits[j+1:], b.bits[j:])
	b.vals[j] = to
	b.bits[j] = bit
}
