package demux

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/shadow"
)

// CPASets is a second, independent implementation of the centralized CPA,
// written the way Iyer, Awadallah and McKeown present it: via the
// *available input link set* AIL(i, t) — planes to which input i may start
// a transmission at slot t — and the *available output link set*
// AOL(j, DT) — planes whose line to output j can deliver a cell no later
// than the cell's shadow departure time DT. A cell is placed on any plane
// in the intersection; with S >= 2 both sets exceed K/2 so the intersection
// is nonempty.
//
// It exists for differential testing against the production CPA (which
// folds the same logic into per-line availability counters): two
// independent derivations of the same algorithm must exhibit identical
// zero-relative-delay behaviour, and the sets formulation doubles as
// executable documentation of the original paper's proof structure.
type CPASets struct {
	sendScratch
	env    Env
	oracle *shadow.Oracle
	// linkNext[k*N+j]: earliest slot a new cell can cross line (k, j),
	// assuming earlier assignments drain greedily.
	linkNext []cell.Time
	misses   uint64
}

// NewCPASets returns the sets-formulation CPA.
func NewCPASets(env Env) (*CPASets, error) {
	n, k := env.Ports(), env.Planes()
	return &CPASets{
		env:      env,
		oracle:   shadow.NewOracle(n),
		linkNext: make([]cell.Time, n*k),
	}, nil
}

// Name implements Algorithm.
func (a *CPASets) Name() string { return "cpa-sets" }

// Misses reports cells whose AIL/AOL intersection was empty (never at
// S >= 2 under admissible traffic).
func (a *CPASets) Misses() uint64 { return a.misses }

// ail returns the planes input i may start a transmission to at slot t.
func (a *CPASets) ail(in cell.Port, t cell.Time) []cell.Plane {
	var out []cell.Plane
	for k := 0; k < a.env.Planes(); k++ {
		if a.env.InputGateFreeAt(in, cell.Plane(k)) <= t {
			out = append(out, cell.Plane(k))
		}
	}
	return out
}

// aol returns the planes whose (k, j) line can carry a new cell no later
// than deadline.
func (a *CPASets) aol(j cell.Port, t, deadline cell.Time) []cell.Plane {
	n := a.env.Ports()
	var out []cell.Plane
	for k := 0; k < a.env.Planes(); k++ {
		next := a.linkNext[k*n+int(j)]
		if next < t {
			next = t
		}
		if next <= deadline {
			out = append(out, cell.Plane(k))
		}
	}
	return out
}

// Slot implements Algorithm.
func (a *CPASets) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	n := a.env.Ports()
	sends := a.take()
	for _, c := range arrivals {
		deadline := a.oracle.Departure(t, c.Flow.Out)
		ail := a.ail(c.Flow.In, t)
		if len(ail) == 0 {
			return nil, fmt.Errorf("demux: cpa-sets input %d has no free gate at slot %d", c.Flow.In, t)
		}
		aol := a.aol(c.Flow.Out, t, deadline)
		// Intersect, preferring the feasible plane whose line frees
		// earliest (matching the production CPA's tie-break so the two
		// implementations can be compared decision-for-decision).
		chosen := cell.NoPlane
		var chosenNext cell.Time
		inAOL := map[cell.Plane]bool{}
		for _, k := range aol {
			inAOL[k] = true
		}
		for _, k := range ail {
			next := a.linkNext[int(k)*n+int(c.Flow.Out)]
			if next < t {
				next = t
			}
			if inAOL[k] {
				if chosen == cell.NoPlane || next < chosenNext {
					chosen, chosenNext = k, next
				}
			}
		}
		if chosen == cell.NoPlane {
			// Empty intersection (S < 2): degrade like the production
			// CPA — earliest-available plane from AIL.
			a.misses++
			for _, k := range ail {
				next := a.linkNext[int(k)*n+int(c.Flow.Out)]
				if next < t {
					next = t
				}
				if chosen == cell.NoPlane || next < chosenNext {
					chosen, chosenNext = k, next
				}
			}
		}
		a.linkNext[int(chosen)*n+int(c.Flow.Out)] = chosenNext + cell.Time(a.env.RPrime())
		sends = append(sends, Send{Cell: c, Plane: chosen})
	}
	return a.keep(sends), nil
}

// Buffered implements Algorithm (bufferless).
func (a *CPASets) Buffered(cell.Port) int { return 0 }

// IdleInvariant certifies the fast-forward capability: the AIL/AOL sets
// mutate only on arrivals.
func (a *CPASets) IdleInvariant() bool { return true }
