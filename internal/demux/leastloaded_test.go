package demux

import (
	"testing"

	"ppsim/internal/cell"
)

func TestLeastLoadedSpreadsEvenly(t *testing.T) {
	e := newFakeEnv(1, 4, 1)
	a, err := NewLocalLeastLoaded(e)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	counts := map[cell.Plane]int{}
	for slot := cell.Time(0); slot < 16; slot++ {
		s := exec(t, e, a, slot, arr(st, slot, 0, 0))
		counts[s[0].Plane]++
	}
	for p, c := range counts {
		if c != 4 {
			t.Errorf("plane %d received %d of 16 cells, want 4", p, c)
		}
	}
}

func TestLeastLoadedPerFlowIsolation(t *testing.T) {
	e := newFakeEnv(1, 4, 1)
	a, _ := NewLocalLeastLoaded(e)
	st := cell.NewStamper()
	// Load flow (0,0) heavily; flow (0,1) must still start at plane 0.
	for slot := cell.Time(0); slot < 4; slot++ {
		exec(t, e, a, slot, arr(st, slot, 0, 0))
	}
	s := exec(t, e, a, 4, arr(st, 4, 0, 1))
	if s[0].Plane != 0 {
		t.Errorf("fresh flow dispatched to plane %d, want 0", s[0].Plane)
	}
}

func TestLeastLoadedSkipsBusyGates(t *testing.T) {
	e := newFakeEnv(1, 3, 3) // r' = 3: gates stay busy
	a, _ := NewLocalLeastLoaded(e)
	st := cell.NewStamper()
	used := map[cell.Plane]bool{}
	for slot := cell.Time(0); slot < 3; slot++ {
		s := exec(t, e, a, slot, arr(st, slot, 0, 0))
		if used[s[0].Plane] {
			t.Fatalf("plane %d reused within the r' window", s[0].Plane)
		}
		used[s[0].Plane] = true
	}
}

func TestLeastLoadedWouldChoosePredicts(t *testing.T) {
	e := newFakeEnv(2, 4, 1)
	a, _ := NewLocalLeastLoaded(e)
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 7; slot++ {
		p, ok := a.WouldChoose(0, 2)
		if !ok {
			t.Fatal("WouldChoose must be supported")
		}
		s := exec(t, e, a, slot, arr(st, slot, 0, 2))
		if s[0].Plane != p {
			t.Fatalf("slot %d: dispatched to %d, predicted %d", slot, s[0].Plane, p)
		}
	}
}

func TestLeastLoadedValidation(t *testing.T) {
	e := newFakeEnv(2, 2, 3)
	if _, err := NewLocalLeastLoaded(e); err == nil {
		t.Error("K < r' must be rejected")
	}
}
