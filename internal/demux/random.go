package demux

import (
	"fmt"
	"math/bits"
	"math/rand"

	"ppsim/internal/cell"
)

// Random dispatches every arriving cell to a uniformly random plane among
// those with a free input gate. It is fully distributed (each input's
// random stream is independent and local).
//
// The paper's Discussion notes that its lower-bound traffics are worst
// cases for randomized demultiplexing algorithms too — the steering
// adversary cannot align a randomized demultiplexor's pointers, but random
// balls-into-bins concentration still yields Theta(sqrt(N)-ish) collisions
// per plane; experiment E13 contrasts the two regimes empirically.
//
// For K <= 64 the free set is a bitmask (one GateMasker call when the Env
// has the capability) and the draw selects the idx-th set bit — the same
// plane the historical ascending free-list indexed at idx, off the same
// Intn(count) variate, so the dispatch stream is bit-identical while the
// per-cell cost drops from an O(K) scan plus list build to a few word ops.
type Random struct {
	sendScratch
	env    Env
	masker GateMasker
	rngs   []*rand.Rand // one per input: independent local randomness
}

// NewRandom returns the randomized dispatcher seeded deterministically from
// seed (input i uses seed+i).
func NewRandom(env Env, seed int64) (*Random, error) {
	if int64(env.Planes()) < env.RPrime() {
		return nil, fmt.Errorf("demux: random needs K >= r' (K=%d, r'=%d)", env.Planes(), env.RPrime())
	}
	r := &Random{env: env, masker: gateMasker(env), rngs: make([]*rand.Rand, env.Ports())}
	for i := range r.rngs {
		r.rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
	}
	return r, nil
}

// Name implements Algorithm.
func (r *Random) Name() string { return "random" }

// Slot implements Algorithm.
func (r *Random) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	if r.env.Planes() > 64 {
		return r.slotWide(t, arrivals)
	}
	sends := r.take()
	for _, c := range arrivals {
		in := c.Flow.In
		m := freeMask(r.env, r.masker, in, t)
		if m == 0 {
			return nil, fmt.Errorf("demux: random input %d has no free gate at slot %d", in, t)
		}
		// The idx-th lowest set bit is exactly free[idx] of the historical
		// ascending free list, so the same Intn draw lands on the same plane.
		idx := r.rngs[in].Intn(bits.OnesCount64(m))
		for ; idx > 0; idx-- {
			m &= m - 1
		}
		sends = append(sends, Send{Cell: c, Plane: cell.Plane(bits.TrailingZeros64(m))})
	}
	return r.keep(sends), nil
}

// slotWide is the historical free-list path, kept for K > 64 where the free
// set does not fit a bitmask.
func (r *Random) slotWide(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	sends := r.take()
	free := make([]cell.Plane, 0, r.env.Planes())
	for _, c := range arrivals {
		in := c.Flow.In
		free = free[:0]
		for k := 0; k < r.env.Planes(); k++ {
			if r.env.InputGateFreeAt(in, cell.Plane(k)) <= t {
				free = append(free, cell.Plane(k))
			}
		}
		if len(free) == 0 {
			return nil, fmt.Errorf("demux: random input %d has no free gate at slot %d", in, t)
		}
		p := free[r.rngs[in].Intn(len(free))]
		sends = append(sends, Send{Cell: c, Plane: p})
	}
	return r.keep(sends), nil
}

// Buffered implements Algorithm (bufferless).
func (r *Random) Buffered(cell.Port) int { return 0 }

// IdleInvariant certifies the fast-forward capability: Slot returns before
// any RNG draw when there are no arrivals, so eliding silent slots preserves
// the per-input random streams bit-for-bit.
func (r *Random) IdleInvariant() bool { return true }
