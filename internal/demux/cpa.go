package demux

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/shadow"
)

// TieBreak selects among feasible planes in CPA-family algorithms; it is
// one of the ablations called out in DESIGN.md §5.
type TieBreak uint8

// Tie-breaking rules.
const (
	// MinAvail picks the feasible plane whose (k, j) line frees earliest,
	// lowest index on ties. Deterministic and herding-prone under stale
	// information — exactly the behaviour Theorem 10 exploits.
	MinAvail TieBreak = iota
	// RotateTie round-robins among feasible planes per output, spreading
	// consecutive same-output cells.
	RotateTie
)

// CPA is the centralized demultiplexing algorithm of Iyer, Awadallah and
// McKeown [14]: every decision sees the full current switch status. For
// each cell it computes the departure slot the cell would have in the
// shadow FCFS output-queued switch and places the cell on a plane whose
// input line is free now and whose line to the destination can carry the
// cell no later than that deadline. With speedup S >= 2 such a plane always
// exists and the relative queuing delay is zero; with S < 2 the algorithm
// degrades gracefully by picking the earliest-available plane, and the
// measured excess is reported by experiment E11.
type CPA struct {
	sendScratch
	env    Env
	tie    TieBreak
	oracle *shadow.Oracle
	// linkNext[k*N+j] is the earliest slot a new reservation on line
	// (k, j) may be scheduled, assuming queued cells drain greedily.
	linkNext []cell.Time
	// rotate[j] is the RotateTie pointer per output.
	rotate []cell.Plane
	// misses counts cells for which no feasible plane existed.
	misses uint64
}

// NewCPA returns the centralized algorithm.
func NewCPA(env Env, tie TieBreak) (*CPA, error) {
	if tie != MinAvail && tie != RotateTie {
		return nil, fmt.Errorf("demux: unknown tie-break %d", tie)
	}
	n, k := env.Ports(), env.Planes()
	return &CPA{
		env:      env,
		tie:      tie,
		oracle:   shadow.NewOracle(n),
		linkNext: make([]cell.Time, n*k),
		rotate:   make([]cell.Plane, n),
	}, nil
}

// Name implements Algorithm.
func (a *CPA) Name() string { return "cpa" }

// Misses reports how many cells had no deadline-feasible plane (always 0
// when S >= 2 under admissible traffic).
func (a *CPA) Misses() uint64 { return a.misses }

// Slot implements Algorithm. Arrivals are processed in global sequence
// order, mirroring the FCFS discipline of the reference switch.
func (a *CPA) Slot(t cell.Time, arrivals []cell.Cell) ([]Send, error) {
	if len(arrivals) == 0 {
		return nil, nil
	}
	sends := a.take()
	for _, c := range arrivals {
		deadline := a.oracle.Departure(t, c.Flow.Out)
		p, reserve, feasible := a.choose(t, c.Flow.In, c.Flow.Out, deadline)
		if p == cell.NoPlane {
			return nil, fmt.Errorf("demux: cpa input %d has no free gate at slot %d", c.Flow.In, t)
		}
		if !feasible {
			a.misses++
		}
		a.linkNext[int(p)*a.env.Ports()+int(c.Flow.Out)] = reserve + cell.Time(a.env.RPrime())
		sends = append(sends, Send{Cell: c, Plane: p})
	}
	return a.keep(sends), nil
}

// choose returns the selected plane, its reservation slot, and whether the
// reservation meets the deadline.
func (a *CPA) choose(t cell.Time, in, out cell.Port, deadline cell.Time) (cell.Plane, cell.Time, bool) {
	n, k := a.env.Ports(), a.env.Planes()
	bestP := cell.NoPlane
	var bestReserve cell.Time
	start := 0
	if a.tie == RotateTie {
		start = int(a.rotate[out])
	}
	for d := 0; d < k; d++ {
		p := cell.Plane((start + d) % k)
		if a.env.InputGateFreeAt(in, p) > t {
			continue // input constraint: line (in, p) busy
		}
		reserve := a.linkNext[int(p)*n+int(out)]
		if t > reserve {
			reserve = t
		}
		switch a.tie {
		case MinAvail:
			if bestP == cell.NoPlane || reserve < bestReserve {
				bestP, bestReserve = p, reserve
			}
		case RotateTie:
			// First feasible plane in rotation order wins outright;
			// otherwise remember the earliest-available fallback.
			if reserve <= deadline {
				a.rotate[out] = (p + 1) % cell.Plane(k)
				return p, reserve, true
			}
			if bestP == cell.NoPlane || reserve < bestReserve {
				bestP, bestReserve = p, reserve
			}
		}
	}
	if bestP == cell.NoPlane {
		return cell.NoPlane, 0, false
	}
	if a.tie == RotateTie {
		a.rotate[out] = (bestP + 1) % cell.Plane(k)
	}
	return bestP, bestReserve, bestReserve <= deadline
}

// Buffered implements Algorithm (bufferless).
func (a *CPA) Buffered(cell.Port) int { return 0 }

// IdleInvariant certifies the fast-forward capability: the shadow-departure
// oracle and link reservations advance only on arrivals, so a silent slot
// leaves the algorithm's state untouched.
func (a *CPA) IdleInvariant() bool { return true }
