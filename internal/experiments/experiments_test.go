package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24", "E25", "E26", "E27", "E28"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("entry %d = %s, want %s (ID-numeric ordering)", i, e.ID, want[i])
		}
	}
	if _, ok := Get("E4"); !ok {
		t.Error("Get(E4) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Error("Get(E99) should fail")
	}
}

// TestAllExperimentsRunQuick executes the entire suite in quick mode and
// sanity-checks every table: the full-scale numbers land in EXPERIMENTS.md,
// but the mechanisms must hold at any scale.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Opts{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != e.ID {
				t.Errorf("table ID %s != entry ID %s", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row %v has %d cells, want %d", row, len(row), len(tab.Columns))
				}
			}
			txt := tab.Text()
			if !strings.Contains(txt, e.ID) {
				t.Error("Text() missing experiment ID")
			}
			md := tab.Markdown()
			if !strings.Contains(md, "| --- |") && !strings.Contains(md, "--- | ---") {
				t.Errorf("Markdown() missing separator: %q", md)
			}
		})
	}
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return v
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tab := &Table{ID: "EX", Columns: []string{"d=|I|", "v"}}
	tab.AddRow("1", "a|b")
	md := tab.Markdown()
	if !strings.Contains(md, `d=\|I\|`) || !strings.Contains(md, `a\|b`) {
		t.Errorf("pipes not escaped: %q", md)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{ID: "EX", Columns: []string{"a", "b"}}
	tab.AddRow("1", `has,comma and "quote"`)
	got := tab.CSV()
	want := "EX,a,b\nEX,1,\"has,comma and \"\"quote\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestE24PartitionShieldsOtherGroups(t *testing.T) {
	tab, err := e24Failure(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: rr exposes every input; row 1: partition shields half.
	if tab.Rows[0][2] != "0" {
		t.Errorf("rr should expose every input, %s untouched", tab.Rows[0][2])
	}
	if shielded := mustAtoi(t, tab.Rows[1][2]); shielded == 0 {
		t.Error("partitioning should shield the other groups entirely")
	}
}

func TestE23BoundsRespected(t *testing.T) {
	tab, err := e23Tandem(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		bound, err := strconv.ParseFloat(strings.TrimSpace(row[1]), 64)
		if err != nil {
			t.Fatalf("bound %q not numeric", row[1])
		}
		measured := mustAtoi(t, row[2])
		if float64(measured) > bound {
			t.Errorf("%s: measured %d exceeds calculus bound %f", row[0], measured, bound)
		}
	}
}

// TestE28TokenBucketDominates checks the H-ADM dominance claim at quick
// scale: on every seed the token-bucket policy's delivered-cell p999 RQD
// stays below always-admit's, the bucket actually rejects cells under the
// 3.2x overload, and always-admit delivers everything it was offered.
func TestE28TokenBucketDominates(t *testing.T) {
	tab, err := e28Admission(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	always := map[string]int{}
	for _, row := range tab.Rows {
		if row[0] == "always" {
			always[row[1]] = mustAtoi(t, row[10])
			if row[2] != row[6] {
				t.Errorf("seed %s: always-admit delivered %s of %s offered", row[1], row[6], row[2])
			}
		}
	}
	if len(always) < 2 {
		t.Fatalf("dominance check needs >= 2 seeds, got %d", len(always))
	}
	for _, row := range tab.Rows {
		if row[0] == "always" {
			continue
		}
		base, ok := always[row[1]]
		if !ok {
			t.Fatalf("no always-admit row for seed %s", row[1])
		}
		if rejected := mustAtoi(t, row[4]); rejected == 0 {
			t.Errorf("seed %s: token bucket rejected nothing under 3.2x overload", row[1])
		}
		if tb := mustAtoi(t, row[10]); tb >= base {
			t.Errorf("seed %s: token-bucket p999 rqd %d not below always-admit %d", row[1], tb, base)
		}
	}
}

// TestE4ScalesWithN checks the headline shape: measured RQD grows
// proportionally with N.
func TestE4ScalesWithN(t *testing.T) {
	tab, err := e4Corollary7(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var prev int
	for i, row := range tab.Rows {
		n := mustAtoi(t, row[0])
		measured := mustAtoi(t, row[2])
		if measured <= prev {
			t.Errorf("RQD must grow with N: row %d (N=%d) measured %d after %d", i, n, measured, prev)
		}
		// Within a factor of 2 of the (r'-1)N bound.
		bound, err := strconv.ParseFloat(strings.TrimSpace(row[4]), 64)
		if err != nil {
			t.Fatalf("bound %q not numeric", row[4])
		}
		if float64(measured) < bound/2 {
			t.Errorf("N=%d: measured %d too far below bound %f", n, measured, bound)
		}
		prev = measured
	}
}

// TestE5DecaysWithS checks the N/S shape.
func TestE5DecaysWithS(t *testing.T) {
	tab, err := e5Theorem8(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, row := range tab.Rows {
		measured := mustAtoi(t, row[3])
		if measured > prev {
			t.Errorf("RQD must decay as S grows: %v", tab.Rows)
		}
		prev = measured
	}
}

// TestE7StaysUnderU checks the Theorem 12 ceiling.
func TestE7StaysUnderU(t *testing.T) {
	tab, err := e7Theorem12(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		u := mustAtoi(t, row[0])
		measured := mustAtoi(t, row[2])
		if measured > u {
			t.Errorf("u=%d: measured RQD %d exceeds the Theorem 12 ceiling", u, measured)
		}
	}
}

// TestE9FullUtilization checks the congested-period signature.
func TestE9FullUtilization(t *testing.T) {
	tab, err := e9Theorem14(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		util := row[3]
		if !strings.HasPrefix(util, "1.0000") && !strings.HasPrefix(util, "0.99") {
			t.Errorf("%s h=%s: output utilization %s, want ~1.0 in a congested period", row[0], row[1], util)
		}
	}
}

// TestE10FloodGrows checks the Proposition 15 signature.
func TestE10FloodGrows(t *testing.T) {
	tab, err := e10Proposition15(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var prevFlood int
	for i, row := range tab.Rows {
		flood := mustAtoi(t, row[1])
		steer := mustAtoi(t, row[2])
		shaped := mustAtoi(t, row[3])
		if i > 0 && flood <= prevFlood {
			t.Errorf("flood excess must grow with tau: %v", tab.Rows)
		}
		if steer > 2 {
			t.Errorf("Theorem-6 trace should stay near burstless, excess %d", steer)
		}
		if shaped > 4 {
			t.Errorf("shaped traffic must respect B=4, excess %d", shaped)
		}
		prevFlood = flood
	}
}

// TestE16SpeedupTwoMimics checks the CIOQ contrast.
func TestE16SpeedupTwoMimics(t *testing.T) {
	tab, err := e16CIOQ(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sp := mustAtoi(t, row[0])
		max := mustAtoi(t, row[2])
		if sp >= 2 && max != 0 {
			t.Errorf("speedup %d: max relative delay %d, want 0", sp, max)
		}
	}
}

// TestE17AllAligned checks that no deterministic algorithm escapes.
func TestE17AllAligned(t *testing.T) {
	tab, err := e17Universality(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "yes" {
			t.Errorf("algorithm %s escaped the steering adversary: RQD %s vs bound %s", row[0], row[1], row[2])
		}
	}
}

// TestE18RandomizedFarBelowDeterministic checks the randomization gap.
func TestE18RandomizedFarBelowDeterministic(t *testing.T) {
	tab, err := e18Randomized(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var max, det int
	for _, row := range tab.Rows {
		switch row[0] {
		case "max":
			max = mustAtoi(t, row[1])
		case "deterministic rr (same trace)":
			det = mustAtoi(t, row[1])
		}
	}
	if max*2 >= det {
		t.Errorf("randomized max %d should be far below deterministic %d", max, det)
	}
}

// TestE19RandomTieDisperses checks the determinism ablation.
func TestE19RandomTieDisperses(t *testing.T) {
	tab, err := e19RandTie(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	det := mustAtoi(t, tab.Rows[0][3])
	randMax := mustAtoi(t, tab.Rows[1][3])
	if randMax >= det {
		t.Errorf("randomized tie-break max %d should beat deterministic %d", randMax, det)
	}
}

// TestE11ZeroAtSpeedupTwo checks the CPA baseline.
func TestE11ZeroAtSpeedupTwo(t *testing.T) {
	tab, err := e11CPABaseline(Opts{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] == "yes" && row[2] != "0" {
			t.Errorf("K=%s S=%s: CPA RQD %s, want 0", row[0], row[1], row[2])
		}
	}
}
