package experiments

import (
	"fmt"
	"math/rand"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/framer"
	"ppsim/internal/harness"
	"ppsim/internal/stats"
)

func init() {
	register("E25", "Packets, not cells: segmentation and reassembly around the switch", e25Packets)
}

// e25Packets runs a variable-length packet workload through the
// fragmentation/reassembly path the paper assumes exists outside the
// switch, and reports packet-level delay (offer to last-cell departure)
// next to cell-level relative delay. A packet rides its slowest cell, so
// cell-delay tails amplify at packet granularity — one more reason the
// worst-case cell bounds of the paper matter to applications.
func e25Packets(o Opts) (*Table, error) {
	const n, k, rp = 8, 8, 4 // S = 2
	t := &Table{
		ID:      "E25",
		Title:   "Packet-level delay through segmentation + PPS + reassembly",
		Claim:   "(substrate, Section 1) cells are the switch's unit; packets are the application's — packet delay is the max over the packet's cells, so cell tails amplify",
		Columns: []string{"algorithm", "packets", "mean pkt delay", "p99 pkt delay", "max pkt delay", "max cell RQD"},
	}
	packets := 400
	if o.Quick {
		packets = 80
	}
	algs := []struct {
		name string
		mk   func(demux.Env) (demux.Algorithm, error)
	}{
		{"cpa", func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }},
		{"rr", rrFactory},
		{"perflow-rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }},
	}
	for _, a := range algs {
		seg := framer.NewSegmenter(n)
		rng := rand.New(rand.NewSource(77))
		at := cell.Time(0)
		for p := 0; p < packets; p++ {
			f := cell.Flow{In: cell.Port(rng.Intn(n)), Out: cell.Port(rng.Intn(n))}
			if _, err := seg.Offer(f, 1+rng.Intn(8), at); err != nil {
				return nil, err
			}
			// ~0.6 cells/slot/input on average across n inputs.
			at += cell.Time(rng.Intn(2))
		}
		ras := framer.NewReassembler(seg)
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		res, err := harness.Run(cfg, a.mk, seg, harness.Options{
			Horizon: cell.Time(packets * 24),
			OnPPSDepart: func(c cell.Cell) {
				if err := ras.OnDepart(c); err != nil {
					panic(err)
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("E25 %s: %w", a.name, err)
		}
		if ras.Completed() != packets {
			return nil, fmt.Errorf("E25 %s: completed %d of %d packets", a.name, ras.Completed(), packets)
		}
		var dist stats.Summary
		for _, p := range seg.Offered() {
			d, ok := ras.Delay(p)
			if !ok {
				return nil, fmt.Errorf("E25 %s: packet %d incomplete", a.name, p.ID)
			}
			dist.Add(int64(d))
		}
		t.AddRow(a.name, itoa(packets), ftoa(dist.Mean()), itoa(dist.Percentile(99)),
			itoa(dist.Max()), itoa(res.Report.MaxRQD))
	}
	return t, nil
}
