package experiments

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/netcalc"
	"ppsim/internal/pipeline"
	"ppsim/internal/traffic"
)

func init() {
	register("E23", "Tandem: two PPS in series against the convolved service curve", e23Tandem)
	register("E24", "Section 3: plane failure under unpartitioned vs partitioned dispatch", e24Failure)
}

// e23Tandem chains two switches: output j of the first feeds input j of the
// second (re-clocked as fresh arrivals). Network calculus predicts the
// end-to-end behaviour from the convolution of the two service curves and
// the inflated burstiness of the intermediate stream; the measured
// end-to-end delay must respect the bound.
func e23Tandem(o Opts) (*Table, error) {
	const n, k, rp, bb = 8, 8, 4, 5 // S = 2 per stage, traffic burstiness 5
	t := &Table{
		ID:      "E23",
		Title:   "Two CPA-dispatched PPS stages in tandem",
		Claim:   "(substrate, [9]) end-to-end delay through two servers is bounded via min-plus convolution; the intermediate stream's burstiness inflates by at most the first stage's backlog bound",
		Columns: []string{"quantity", "bound", "measured"},
	}
	horizon := cell.Time(1500)
	if o.Quick {
		horizon = 250
	}

	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	cpa := func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }

	// Two CPA stages in series: output j feeds input j, destinations
	// rotated so the second stage does real switching work. The pipeline
	// package tracks cell identity across the stages.
	src := traffic.NewRegulator(n, bb, traffic.NewBernoulli(n, 0.7, horizon, 31))
	res, err := pipeline.Run([]pipeline.Stage{
		{Config: cfg, Factory: cpa, Remap: func(out cell.Port) cell.Port { return (out + 3) % n }},
		{Config: cfg, Factory: cpa},
	}, src, harness.Options{Horizon: horizon * 8, Validate: true})
	if err != nil {
		return nil, fmt.Errorf("E23: %w", err)
	}
	res1 := res.Stages[0]
	measuredMid := res.Stages[1].Burstiness
	worstEndToEnd := res.EndToEnd.Max

	// Calculus: each CPA stage at S = 2 serves one output at least like a
	// rate-1, latency-(B) server under (1, B) traffic (it mimics the OQ
	// switch, whose delay bound is B). End-to-end: convolution.
	alpha := netcalc.FromLeakyBucket(1, bb)
	stage := netcalc.Service{Rate: 1, Latency: 0}
	outCurve, err := netcalc.Output(alpha, stage)
	if err != nil {
		return nil, err
	}
	e2e, err := netcalc.Convolve(stage, stage)
	if err != nil {
		return nil, err
	}
	// Delay through the tandem: alpha against the convolved curve plus the
	// second stage sees the inflated burst.
	d1, err := netcalc.DelayBound(alpha, stage)
	if err != nil {
		return nil, err
	}
	d2, err := netcalc.DelayBound(outCurve, stage)
	if err != nil {
		return nil, err
	}
	_ = e2e
	t.AddRow("stage-1 max delay", ftoa(d1), itoa(res1.Report.MaxPPSDelay))
	t.AddRow("intermediate stream burstiness", ftoa(outCurve.Burst), itoa(measuredMid))
	t.AddRow("end-to-end max delay", ftoa(d1+d2), itoa(worstEndToEnd))
	return t, nil
}

// e24Failure quantifies the fault-tolerance argument of Section 3: "if a
// demultiplexor sends cells only through d < K planes, a damage in one
// plane causes more cell dropping than if all K planes are utilized" — and
// conversely, with static partitioning a failed plane strands only its own
// group while unpartitioned dispatch eventually routes *every* input into
// the failed plane.
func e24Failure(o Opts) (*Table, error) {
	const n, k, rp = 16, 4, 2
	t := &Table{
		ID:      "E24",
		Title:   "Plane 0 fails: exposure under unpartitioned vs partitioned dispatch",
		Claim:   "Section 3: 'fault tolerance dictates each demultiplexor may send a cell destined for any output through any plane' — partitioning with d = r' leaves a stranded group that cannot sustain rate R once one of its planes dies",
		Columns: []string{"algorithm", "inputs exposed to the dead plane", "inputs never touching it", "first failure slot"},
		Notes: []string{
			"the model forbids drops, so the fabric halts an input's run at its first dispatch into the failed plane",
			"unpartitioned rr exposes every input but retains K-1 >= r' usable planes — a failure-aware variant could skip the dead plane and still sustain rate R; the partitioned group has only d-1 < r' planes left and cannot, no matter how clever (footnote 4 of the paper)",
		},
	}
	algs := []struct {
		name string
		mk   func(demux.Env) (demux.Algorithm, error)
	}{
		{"rr (unpartitioned)", rrFactory},
		{"partition d=2", func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, 2) }},
	}
	horizon := cell.Time(200)
	if o.Quick {
		horizon = 60
	}
	for _, a := range algs {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		// The fabric halts an execution at the first dispatch into a dead
		// plane (the model forbids drops), so probe each input on its own
		// fresh switch: feed it a steady flow and see whether it ever
		// routes into plane 0.
		affected := map[cell.Port]bool{}
		firstFail := cell.Time(-1)
		for i := 0; i < n; i++ {
			p2, err := fabric.New(cfg, a.mk)
			if err != nil {
				return nil, err
			}
			p2.Plane(0).Fail()
			st := cell.NewStamper()
			var deps []cell.Cell
			for slot := cell.Time(0); slot < horizon; slot++ {
				c := st.Stamp(cell.Flow{In: cell.Port(i), Out: cell.Port(int(slot) % n)}, slot)
				deps, err = p2.Step(slot, []cell.Cell{c}, deps[:0])
				if err != nil {
					affected[cell.Port(i)] = true
					if firstFail < 0 || slot < firstFail {
						firstFail = slot
					}
					break
				}
			}
		}
		ff := "-"
		if firstFail >= 0 {
			ff = itoa(firstFail)
		}
		t.AddRow(a.name, itoa(len(affected)), itoa(n-len(affected)), ff)
	}
	return t, nil
}
