package experiments

import (
	"ppsim/internal/cell"
	"ppsim/internal/queue"
	"ppsim/internal/stats"
	"ppsim/internal/wfq"
)

func init() {
	register("E27", "QoS framing: WFQ isolation vs FCFS at a contended link", e27WFQ)
}

// e27WFQ grounds the paper's opening sentence — switches exist to support
// QoS guarantees — at the link downstream of the switch: a well-behaved
// light flow shares a line with a rogue flow that dumps bursts. Under FCFS
// the light flow's delay scales with the rogue's burst; under WFQ it stays
// O(1/weight) regardless — which is why the *switch* must not add
// unbounded, jittery delay of its own (the paper's subject) if end-to-end
// guarantees are to survive.
func e27WFQ(o Opts) (*Table, error) {
	t := &Table{
		ID:      "E27",
		Title:   "Light flow vs a bursty rogue on one output link",
		Claim:   "(substrate, intro + [25]) guaranteed-rate disciplines isolate flows: light-flow delay is O(1) under WFQ and O(burst) under FCFS",
		Columns: []string{"rogue burst", "FCFS light max delay", "WFQ light max delay"},
	}
	bursts := []int{10, 50, 200, 1000}
	if o.Quick {
		bursts = []int{10, 50}
	}
	light := cell.Flow{In: 0, Out: 0}
	rogue := cell.Flow{In: 1, Out: 0}
	for _, burst := range bursts {
		// FCFS: single queue.
		var fcfsWorst stats.Summary
		{
			st := cell.NewStamper()
			q := queue.New[cell.Cell](burst + 8)
			for i := 0; i < burst; i++ {
				q.Push(st.Stamp(rogue, 0))
			}
			slot := cell.Time(0)
			sent := 0
			for sent < 20 || q.Len() > 0 {
				if slot%4 == 0 && sent < 20 {
					q.Push(st.Stamp(light, slot))
					sent++
				}
				if !q.Empty() {
					c := q.Pop()
					if c.Flow == light {
						fcfsWorst.Add(int64(slot - c.Arrive))
					}
				}
				slot++
			}
		}
		// WFQ: equal weights.
		var wfqWorst stats.Summary
		{
			st := cell.NewStamper()
			s := wfq.New()
			if err := s.AddFlow(light, 1); err != nil {
				return nil, err
			}
			if err := s.AddFlow(rogue, 1); err != nil {
				return nil, err
			}
			for i := 0; i < burst; i++ {
				if err := s.Enqueue(0, st.Stamp(rogue, 0)); err != nil {
					return nil, err
				}
			}
			slot := cell.Time(0)
			sent := 0
			for sent < 20 || s.Backlog() > 0 {
				if slot%4 == 0 && sent < 20 {
					if err := s.Enqueue(slot, st.Stamp(light, slot)); err != nil {
						return nil, err
					}
					sent++
				}
				if c, ok := s.Dequeue(slot); ok && c.Flow == light {
					wfqWorst.Add(int64(c.Depart - c.Arrive))
				}
				slot++
			}
		}
		t.AddRow(itoa(burst), itoa(fcfsWorst.Max()), itoa(wfqWorst.Max()))
	}
	return t, nil
}
