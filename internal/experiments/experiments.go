// Package experiments regenerates, as tables, the quantitative content of
// the paper: every theorem's bound is exercised by a concrete workload and
// reported next to the measured value. EXPERIMENTS.md at the repository
// root records one run of the full suite; `go test -bench` at the root and
// cmd/ppsexp re-run it.
//
// Because the paper is an extended abstract of lower bounds, its "tables
// and figures" are the theorems themselves plus the two figures (the
// architecture of Figure 1 and the proof schematic of Figure 2, which is
// realized by the steering adversary). The mapping is recorded in
// DESIGN.md §4.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ppsim/internal/admission"
	"ppsim/internal/cell"
	"ppsim/internal/traffic"
)

// Opts tunes an experiment run.
type Opts struct {
	// Quick shrinks sweeps for use in unit tests and benchmarks; the full
	// suite (cmd/ppsexp, EXPERIMENTS.md) runs with Quick=false.
	Quick bool
	// Admission optionally overrides the token-bucket spec the admission
	// experiment (E28) compares against always-admit; nil/empty keeps E28's
	// default policy. Other experiments ignore it.
	Admission *admission.Spec
	// DeadlineRel, when positive, additionally stamps E28's traffic with
	// per-cell departure deadlines of arrival slot + DeadlineRel, so the
	// expired column becomes active. Other experiments ignore it.
	DeadlineRel cell.Time
}

// Table is one regenerated result.
type Table struct {
	// ID is the experiment identifier (E1..E15), matching DESIGN.md §4.
	ID string
	// Title names the experiment.
	Title string
	// Claim quotes the paper's bound or statement being exercised.
	Claim string
	// Columns and Rows carry the measurements, pre-formatted.
	Columns []string
	Rows    [][]string
	// Notes carries caveats (constant-factor conventions, substitutions).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Text renders the table with aligned columns for terminals.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (experiment ID prefixed as a
// column so multiple tables can be concatenated into one file).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(v string) string {
		if strings.ContainsAny(v, ",\"\n") {
			return `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
		}
		return v
	}
	writeRow := func(cells []string) {
		b.WriteString(esc(t.ID))
		for _, v := range cells {
			b.WriteByte(',')
			b.WriteString(esc(v))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown. Pipe characters
// inside cells (e.g. the |I| set notation) are escaped so they do not split
// columns.
func (t *Table) Markdown() string {
	esc := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, v := range cells {
			out[i] = strings.ReplaceAll(v, "|", "\\|")
		}
		return out
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "**Claim:** %s\n\n", t.Claim)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(esc(t.Columns), " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(esc(row), " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*Note: %s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Func runs one experiment.
type Func func(Opts) (*Table, error)

// Entry registers an experiment.
type Entry struct {
	ID    string
	Title string
	Run   Func
}

var registry []Entry

func register(id, title string, run Func) {
	registry = append(registry, Entry{ID: id, Title: title, Run: run})
}

// All returns the registered experiments in ID order.
func All() []Entry {
	out := append([]Entry(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// E2 < E10 numerically, not lexically.
		return entryNum(out[i].ID) < entryNum(out[j].ID)
	})
	return out
}

func entryNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// Get returns the experiment with the given ID.
func Get(id string) (Entry, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// itoa/f helpers keep row construction terse.
func itoa[T ~int | ~int32 | ~int64 | ~uint64](v T) string { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string                               { return fmt.Sprintf("%.2f", v) }

// materialize drains a possibly-unbounded source (e.g. a regulator over a
// finite demand) into a finite trace: arrivals are pulled slot by slot
// until the demand horizon has passed and the source goes silent.
func materialize(n int, src traffic.Source, demandEnd cell.Time) (*traffic.Trace, error) {
	tr := traffic.NewTrace()
	var buf []traffic.Arrival
	silent := cell.Time(0)
	for s := cell.Time(0); s < demandEnd*16+1024; s++ {
		buf = src.Arrivals(s, buf[:0])
		for _, a := range buf {
			if err := tr.Add(s, a.In, a.Out); err != nil {
				return nil, err
			}
		}
		if s >= demandEnd {
			if len(buf) == 0 {
				silent++
				if silent > 4 {
					return tr, nil
				}
			} else {
				silent = 0
			}
		}
	}
	return nil, fmt.Errorf("experiments: source did not quiesce after its demand horizon %d", demandEnd)
}
