package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/bounds"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func init() {
	register("E6", "Theorem 10: stale information costs u'N/S", e6Theorem10)
	register("E7", "Theorem 12: input buffers of size u recover CPA within u slots", e7Theorem12)
	register("E8", "Theorem 13: input buffers do not help fully-distributed dispatch", e8Theorem13)
}

// e6Theorem10 drives the u-RT stale-CPA algorithm with bursts that land
// inside its blind window; the herd concentrates on one plane. The sweep
// shows the cost growing with u and saturating at u' = r'/2, the paper's
// effective-staleness cap.
func e6Theorem10(o Opts) (*Table, error) {
	const n, k, rp = 32, 16, 8 // S = 2
	t := &Table{
		ID:      "E6",
		Title:   "Theorem 10: u-RT demultiplexing under blind-window bursts",
		Claim:   "bufferless u-RT demux has RQD, RDJ >= (1 - u'r/R) * u'N/S with burstiness u'^2 N/K - u', u' = min(u, R/2r)",
		Columns: []string{"u", "u'", "burst B", "measured RQD", "measured RDJ", "bound (1-u'r/R)u'N/S", "CPA (current info) RQD"},
		Notes: []string{
			"the CPA column replays the identical trace with current global information: the cost is stale information, not capacity",
		},
	}
	us := []cell.Time{1, 2, 4, 8, 16}
	if o.Quick {
		us = []cell.Time{1, 4}
	}
	g := bounds.Params{N: n, K: k, RPrime: rp}
	for _, u := range us {
		uEff := cell.Time(bounds.UEffective(g, int64(u)))
		perSlot := int(uEff) * n / k
		if perSlot < 1 {
			perSlot = 1
		}
		tr, err := adversary.Herding(adversary.HerdingSpec{
			N: n, Out: 0, Slots: uEff, PerSlot: perSlot, LeadIn: 4,
			// Jitter witness: sent once everything concentrated has
			// drained (burst cells cross one per r' slots).
			WitnessGap: cell.Time(rp)*(uEff*cell.Time(perSlot)+2) + 4,
		})
		if err != nil {
			return nil, fmt.Errorf("E6 u=%d: %w", u, err)
		}
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		stale, err := harness.Run(cfg,
			func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPA(e, u) },
			tr, harness.Options{Validate: true})
		if err != nil {
			return nil, fmt.Errorf("E6 u=%d: %w", u, err)
		}
		fresh, err := harness.Run(cfg,
			func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) },
			tr, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E6 u=%d cpa: %w", u, err)
		}
		bound := bounds.Theorem10(g, int64(u))
		t.AddRow(itoa(u), itoa(uEff), itoa(stale.Burstiness),
			itoa(stale.Report.MaxRQD), itoa(stale.Report.RDJ), ftoa(bound), itoa(fresh.Report.MaxRQD))
	}
	return t, nil
}

// e7Theorem12 verifies the matching upper bound: an input-buffered u-RT
// algorithm with buffers of size u and S >= 2 keeps the relative queuing
// delay at most u, under both shaped random traffic and blind-window bursts.
func e7Theorem12(o Opts) (*Table, error) {
	const n, k, rp = 16, 16, 8 // S = 2
	t := &Table{
		ID:      "E7",
		Title:   "Theorem 12: buffered u-RT CPA simulation",
		Claim:   "a globally FCFS input-buffered PPS with buffer size u and S >= 2 achieves RQD <= u",
		Columns: []string{"u", "traffic", "measured RQD", "bound u"},
		Notes: []string{
			"u = 0 is the centralized CPA itself; the Omega(N/S) lower bound does not apply once buffers reach u (Section 4)",
		},
	}
	us := []cell.Time{0, 1, 2, 4, 8}
	if o.Quick {
		us = []cell.Time{0, 2}
	}
	horizon := cell.Time(1200)
	if o.Quick {
		horizon = 400
	}
	for _, u := range us {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, BufferCap: int(u) + 1, CheckInvariants: true}
		factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedCPA(e, u, demux.MinAvail) }

		shaped := traffic.NewRegulator(n, 3, traffic.NewBernoulli(n, 0.6, horizon/2, 17+int64(u)))
		res1, err := harness.Run(cfg, factory, shaped, harness.Options{Horizon: horizon * 4})
		if err != nil {
			return nil, fmt.Errorf("E7 u=%d shaped: %w", u, err)
		}
		t.AddRow(itoa(u), "shaped Bernoulli (B=3)", itoa(res1.Report.MaxRQD), itoa(u))

		burst, err := adversary.Herding(adversary.HerdingSpec{N: n, Out: 0, Slots: 2, PerSlot: 4, LeadIn: 2})
		if err != nil {
			return nil, err
		}
		res2, err := harness.Run(cfg, factory, burst, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E7 u=%d burst: %w", u, err)
		}
		t.AddRow(itoa(u), "blind-window burst", itoa(res2.Report.MaxRQD), itoa(u))
	}
	return t, nil
}

// e8Theorem13 shows buffering without global information does not help:
// buffered round-robin suffers the same steering concentration for every
// buffer size.
func e8Theorem13(o Opts) (*Table, error) {
	const n, k, rp = 32, 4, 2 // S = 2
	t := &Table{
		ID:      "E8",
		Title:   "Theorem 13: input-buffered fully-distributed dispatch",
		Claim:   "input-buffered fully-distributed demux has RQD, RDJ >= (1 - r/R) * N/S for ANY buffer size, under burstless traffic",
		Columns: []string{"buffer cap", "measured RQD", "measured RDJ", "bound (1-r/R)N/S"},
	}
	caps := []int{1, 4, 16, -1}
	if o.Quick {
		caps = []int{1, -1}
	}
	bound := bounds.Theorem13(bounds.Params{N: n, K: k, RPrime: rp})
	inputs := make([]cell.Port, n)
	for i := range inputs {
		inputs[i] = cell.Port(i)
	}
	for _, bc := range caps {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, BufferCap: bc, CheckInvariants: true}
		factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedRR(e, bc) }
		tr, err := adversary.Steering(adversary.SteeringSpec{
			Fabric: cfg, Factory: factory, Inputs: inputs, Out: 0, Plane: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("E8 cap=%d: %w", bc, err)
		}
		res, err := harness.Run(cfg, factory, tr, harness.Options{Validate: true})
		if err != nil {
			return nil, fmt.Errorf("E8 cap=%d: %w", bc, err)
		}
		capLabel := itoa(bc)
		if bc < 0 {
			capLabel = "unbounded"
		}
		t.AddRow(capLabel, itoa(res.Report.MaxRQD), itoa(res.Report.RDJ), ftoa(bound))
	}
	return t, nil
}
