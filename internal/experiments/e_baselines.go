package experiments

import (
	"fmt"
	"sort"

	"ppsim/internal/adversary"
	"ppsim/internal/bounds"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func init() {
	register("E11", "Baseline [14]: centralized CPA across speedups", e11CPABaseline)
	register("E12", "Baseline [15]: distributed CPA tightness Theta(N*R/r)", e12DistCPA)
	register("E13", "Average case: worst-case bounds vs random traffic", e13AverageCase)
}

// e11CPABaseline sweeps the speedup: CPA mimics the FCFS OQ switch exactly
// from S = 2 upward, and degrades gracefully below.
func e11CPABaseline(o Opts) (*Table, error) {
	const n, rp = 12, 3
	t := &Table{
		ID:      "E11",
		Title:   "CPA relative queuing delay across speedups",
		Claim:   "a bufferless PPS with the centralized CPA and speedup S >= 2 has zero relative queuing delay [Iyer-Awadallah-McKeown]",
		Columns: []string{"K", "S", "measured RQD", "mean RQD", "zero expected?"},
	}
	ks := []int{3, 4, 6, 9, 12}
	if o.Quick {
		ks = []int{3, 6}
	}
	horizon := cell.Time(1500)
	if o.Quick {
		horizon = 300
	}
	for _, k := range ks {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		src := traffic.NewRegulator(n, 3, traffic.NewBernoulli(n, 0.8, horizon, int64(k)))
		res, err := harness.Run(cfg,
			func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) },
			src, harness.Options{Horizon: horizon * 4})
		if err != nil {
			return nil, fmt.Errorf("E11 K=%d: %w", k, err)
		}
		s := float64(k) / float64(rp)
		expect := "no (S < 2)"
		if s >= bounds.CPAZeroDelaySpeedup() {
			expect = "yes"
		}
		t.AddRow(itoa(k), ftoa(s), itoa(res.Report.MaxRQD), ftoa(res.Report.MeanRQD), expect)
	}
	return t, nil
}

// e12DistCPA bounds the fully-distributed per-flow dispatcher between the
// Corollary 7 lower bound and the Iyer-McKeown N*R/r upper bound.
func e12DistCPA(o Opts) (*Table, error) {
	const k, rp = 4, 2 // S = 2
	t := &Table{
		ID:      "E12",
		Title:   "Distributed CPA (per-flow dispatch): Theta(N * R/r) is tight",
		Claim:   "the fully-distributed algorithm of [15] mimics FCFS OQ within N*R/r slots; Corollary 7 gives the matching Omega((R/r-1)N)",
		Columns: []string{"N", "measured RQD (steered)", "lower bound (r'-1)N", "upper bound N*r'"},
	}
	ns := []int{8, 16, 32, 64}
	if o.Quick {
		ns = []int{8, 16}
	}
	factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }
	for _, n := range ns {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		inputs := make([]cell.Port, n)
		for i := range inputs {
			inputs[i] = cell.Port(i)
		}
		tr, err := adversary.Steering(adversary.SteeringSpec{
			Fabric: cfg, Factory: factory, Inputs: inputs, Out: 0, Plane: 2,
			ScrambleSlots: 16, ScrambleSeed: int64(n) + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("E12 N=%d: %w", n, err)
		}
		res, err := harness.Run(cfg, factory, tr, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E12 N=%d: %w", n, err)
		}
		g := bounds.Params{N: n, K: k, RPrime: rp}
		ub := bounds.IyerMcKeownUpper(g)
		if got := int64(res.Report.MaxRQD); got > ub {
			return nil, fmt.Errorf("E12 N=%d: measured %d exceeds the paper's upper bound %d", n, got, ub)
		}
		t.AddRow(itoa(n), itoa(res.Report.MaxRQD), ftoa(bounds.Corollary7(g)), itoa(ub))
	}
	return t, nil
}

// e13AverageCase contrasts the adversarial bounds with plain random
// traffic: on average the fully-distributed algorithms are fine — the
// paper's results are about worst cases, which is why the adversary
// matters.
func e13AverageCase(o Opts) (*Table, error) {
	const n, k, rp = 16, 8, 2 // S = 4
	t := &Table{
		ID:      "E13",
		Title:   "Average case: algorithms under random admissible traffic",
		Claim:   "(contrast) the lower bounds are worst-case; under Bernoulli traffic fully-distributed dispatch performs close to CPA",
		Columns: []string{"algorithm", "traffic", "mean RQD", "p99 RQD", "max RQD"},
	}
	horizon := cell.Time(3000)
	if o.Quick {
		horizon = 400
	}
	algs := []struct {
		name string
		mk   func(demux.Env) (demux.Algorithm, error)
	}{
		{"cpa", func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }},
		{"rr", rrFactory},
		{"perflow-rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }},
		{"random", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRandom(e, 5) }},
		{"stale-cpa u=4", func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPA(e, 4) }},
		{"ftd h=2", func(e demux.Env) (demux.Algorithm, error) { return demux.NewFTD(e, 2) }},
	}
	if o.Quick {
		algs = algs[:3]
	}
	kinds := []struct {
		label string
		mk    func(seed int64) traffic.Source
	}{
		{"Bernoulli 0.7 (shaped B=8)", func(seed int64) traffic.Source {
			return traffic.NewRegulator(n, 8, traffic.NewBernoulli(n, 0.7, horizon, seed))
		}},
		{"hotspot 30% (shaped B=8)", func(seed int64) traffic.Source {
			h, err := traffic.NewHotspot(n, 0.5, 0.3, 0, horizon, seed)
			if err != nil {
				panic(err)
			}
			return traffic.NewRegulator(n, 8, h)
		}},
	}
	if o.Quick {
		kinds = kinds[:1]
	}
	for _, a := range algs {
		for _, kind := range kinds {
			cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
			res, err := harness.Run(cfg, a.mk, kind.mk(42), harness.Options{Horizon: horizon * 4})
			if err != nil {
				return nil, fmt.Errorf("E13 %s/%s: %w", a.name, kind.label, err)
			}
			t.AddRow(a.name, kind.label, ftoa(res.Report.MeanRQD), itoa(res.Report.P99RQD), itoa(res.Report.MaxRQD))
		}
	}
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i][1] < t.Rows[j][1] })
	return t, nil
}
