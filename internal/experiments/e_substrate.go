package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/cell"
	"ppsim/internal/clos"
	"ppsim/internal/crossbar"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/jitterreg"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

func init() {
	register("E1", "Figure 1: the 5x5 PPS with 2 planes", e1Figure1)
	register("E14", "Arbitrated crossbar (iSLIP) as a u-RT exemplar", e14Crossbar)
	register("E15", "Jitter regulators need buffers sized to the relative delay", e15JitterRegulator)
}

// e1Figure1 instantiates the paper's Figure 1 switch, checks its Clos-
// network structure, and smoke-runs it.
func e1Figure1(o Opts) (*Table, error) {
	const n, k, rp = 5, 2, 2
	t := &Table{
		ID:      "E1",
		Title:   "Figure 1: 5x5 PPS, 2 planes, no input buffers",
		Claim:   "the PPS is a three-stage Clos network with K < N planes of rate r < R",
		Columns: []string{"property", "value"},
	}
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	cl, err := clos.FromPPS(n, k)
	if err != nil {
		return nil, err
	}
	perm, err := traffic.NewPermutation([]cell.Port{1, 2, 3, 4, 0}, 40)
	if err != nil {
		return nil, err
	}
	res, err := harness.Run(cfg, rrFactory, perm, harness.Options{Validate: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("external ports N", itoa(n))
	t.AddRow("center-stage planes K", itoa(k))
	t.AddRow("internal line occupancy r'", itoa(rp))
	t.AddRow("speedup S = K/r'", ftoa(cfg.Speedup()))
	t.AddRow("Clos descriptor (m,n,r)", fmt.Sprintf("(%d,%d,%d)", cl.M, cl.N, cl.R))
	t.AddRow("Clos rearrangeable", fmt.Sprintf("%v", cl.Rearrangeable()))
	t.AddRow("demultiplexors / multiplexors", fmt.Sprintf("%d / %d", n, n))
	t.AddRow("internal lines (each side)", itoa(n*k))
	t.AddRow("smoke run: cells delivered", itoa(res.Report.Cells))
	t.AddRow("smoke run: max RQD", itoa(res.Report.MaxRQD))
	return t, nil
}

// e14Crossbar runs the arbitrated input-queued crossbar — the paper's
// example of a u-RT mechanism in deployed hardware — against the OQ shadow
// under contention, sweeping arbiter iterations.
func e14Crossbar(o Opts) (*Table, error) {
	const n = 8
	t := &Table{
		ID:      "E14",
		Title:   "Input-queued crossbar arbitration vs output queuing",
		Claim:   "arbitrated crossbars are u-RT mechanisms: request-grant delay and HOL contention cost relative delay that more arbiter iterations only partially recover",
		Columns: []string{"arbiter", "iterations", "traffic", "mean rel. delay", "max rel. delay"},
	}
	iters := []int{1, 2, 4}
	if o.Quick {
		iters = []int{1, 2}
	}
	slots := cell.Time(1500)
	if o.Quick {
		slots = 300
	}
	arbiters := []struct {
		name string
		arb  crossbar.Arbiter
	}{{"islip", crossbar.ISLIP}, {"pim", crossbar.PIM}}
	for _, ar := range arbiters {
		for _, it := range iters {
			for _, kind := range []string{"uniform 0.8", "hotspot"} {
				var src traffic.Source
				if kind == "uniform 0.8" {
					src = traffic.NewBernoulli(n, 0.8, slots, 7)
				} else {
					h, err := traffic.NewHotspot(n, 0.6, 0.5, 0, slots, 7)
					if err != nil {
						return nil, err
					}
					src = traffic.NewRegulator(n, 4, h)
				}
				mean, max, err := runCrossbar(n, it, ar.arb, src, slots*8)
				if err != nil {
					return nil, fmt.Errorf("E14 %s iters=%d %s: %w", ar.name, it, kind, err)
				}
				t.AddRow(ar.name, itoa(it), kind, ftoa(mean), itoa(max))
			}
		}
	}
	return t, nil
}

// runCrossbar drives a crossbar and an OQ shadow on the same stream and
// returns the mean and max relative delay.
func runCrossbar(n, iterations int, arb crossbar.Arbiter, src traffic.Source, maxSlots cell.Time) (float64, cell.Time, error) {
	xb, err := crossbar.NewWithArbiter(n, iterations, arb, 11)
	if err != nil {
		return 0, 0, err
	}
	sh := shadow.New(n)
	st := cell.NewStamper()
	shadowDep := map[uint64]cell.Time{}
	ppsDep := map[uint64]cell.Time{}
	end := src.End()
	var buf []traffic.Arrival
	var deps, shDeps []cell.Cell
	slot := cell.Time(0)
	for ; slot < maxSlots; slot++ {
		if (end != cell.None && slot >= end || end == cell.None && slot >= maxSlots/2) && xb.Drained() && sh.Drained() {
			break
		}
		var cells []cell.Cell
		if end == cell.None || slot < end {
			buf = src.Arrivals(slot, buf[:0])
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
		}
		deps, err = xb.Step(slot, cells, deps[:0])
		if err != nil {
			return 0, 0, err
		}
		for _, d := range deps {
			ppsDep[d.Seq] = d.Depart
		}
		shDeps = sh.Step(slot, cells, shDeps[:0])
		for _, d := range shDeps {
			shadowDep[d.Seq] = d.Depart
		}
	}
	if !xb.Drained() || !sh.Drained() {
		return 0, 0, fmt.Errorf("crossbar run did not drain in %d slots", maxSlots)
	}
	var sum float64
	var max cell.Time
	for seq, pd := range ppsDep {
		d := pd - shadowDep[seq]
		sum += float64(d)
		if d > max {
			max = d
		}
	}
	if len(ppsDep) == 0 {
		return 0, 0, fmt.Errorf("no cells crossed")
	}
	return sum / float64(len(ppsDep)), max, nil
}

// e15JitterRegulator connects the Discussion's point: shaping the jittery
// PPS output back to constant delay needs a regulator buffer proportional
// to the relative queuing delay the PPS introduced.
func e15JitterRegulator(o Opts) (*Table, error) {
	const n, k, rp, c = 16, 4, 3, 12
	t := &Table{
		ID:      "E15",
		Title:   "Downstream jitter regulation of a concentrated PPS flow",
		Claim:   "(Discussion) lower bounds on relative queuing delay translate to lower bounds on jitter-regulator buffers",
		Columns: []string{"regulator buffer", "residual jitter", "early releases"},
		Notes: []string{
			fmt.Sprintf("the PPS run has max relative delay about (c-1)(r'-1) = %d; buffers of that order are needed for zero residual jitter", (c-1)*(rp-1)),
		},
	}
	// Produce the concentrated departure stream once.
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	tr, err := adversary.Concentration(n, c, 0)
	if err != nil {
		return nil, err
	}
	var departs []cell.Cell
	if _, err := harness.Run(cfg, rrFactory, tr, harness.Options{
		OnPPSDepart: func(cl cell.Cell) {
			if cl.Flow.Out == 0 {
				departs = append(departs, cl)
			}
		},
	}); err != nil {
		return nil, err
	}

	bufs := []int{1, 4, 8, 16, 0} // 0 = unbounded
	if o.Quick {
		bufs = []int{1, 0}
	}
	targetD := cell.Time((c - 1) * (rp - 1))
	for _, b := range bufs {
		reg, err := jitterreg.New(targetD, b)
		if err != nil {
			return nil, err
		}
		// Re-clock the departures through the regulator; the cell's
		// Arrive at the regulator is its PPS departure slot.
		bySlot := map[cell.Time][]cell.Cell{}
		var last cell.Time
		for _, d := range departs {
			nc := d
			nc.Arrive = d.Depart
			bySlot[d.Depart] = append(bySlot[d.Depart], nc)
			if d.Depart > last {
				last = d.Depart
			}
		}
		var out []cell.Cell
		for s := cell.Time(0); s <= last+targetD+1; s++ {
			out, err = reg.Step(s, bySlot[s], out)
			if err != nil {
				return nil, err
			}
		}
		label := itoa(b)
		if b == 0 {
			label = "unbounded"
		}
		t.AddRow(label, itoa(reg.Jitter()), itoa(reg.Early()))
	}
	return t, nil
}
