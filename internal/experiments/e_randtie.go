package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/stats"
)

func init() {
	register("E19", "Ablation: determinism, not staleness alone, causes the herding", e19RandTie)
}

// e19RandTie replays the Theorem 10 herding burst against stale-CPA with
// deterministic and with randomized tie-breaking. Both algorithms see the
// same u-slot-stale information; only the tie rule differs. Deterministic
// ties herd every simultaneous arrival onto one plane; random ties scatter
// them, collapsing the concentration — evidence that the lower bound's
// adversary exploits determinism, as the paper's Discussion anticipates
// for randomized demultiplexing algorithms.
func e19RandTie(o Opts) (*Table, error) {
	const n, k, rp, u = 32, 16, 8, 4 // S = 2, u' = min(u, r'/2) = 4
	t := &Table{
		ID:      "E19",
		Title:   "Stale-CPA tie-breaking ablation under the Theorem 10 burst",
		Claim:   "(ablation) with identical stale information, randomizing only the tie-break disperses the herd",
		Columns: []string{"tie rule", "min RQD", "mean RQD", "max RQD"},
		Notes: []string{
			"same blind-window burst for every row; random rows aggregate over seeds",
		},
	}
	seeds := 50
	if o.Quick {
		seeds = 8
	}
	tr, err := adversary.Herding(adversary.HerdingSpec{
		N: n, Out: 0, Slots: u, PerSlot: u * n / k, LeadIn: 4,
	})
	if err != nil {
		return nil, err
	}
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}

	det, err := harness.Run(cfg,
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPA(e, u) },
		tr, harness.Options{})
	if err != nil {
		return nil, fmt.Errorf("E19 deterministic: %w", err)
	}
	t.AddRow("deterministic (lowest index)", itoa(det.Report.MaxRQD), itoa(det.Report.MaxRQD), itoa(det.Report.MaxRQD))

	var dist stats.Summary
	for seed := 0; seed < seeds; seed++ {
		res, err := harness.Run(cfg,
			func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPARandomTie(e, u, int64(seed)) },
			tr, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E19 seed=%d: %w", seed, err)
		}
		dist.Add(int64(res.Report.MaxRQD))
	}
	t.AddRow(fmt.Sprintf("randomized (%d seeds)", seeds),
		itoa(dist.Min()), ftoa(dist.Mean()), itoa(dist.Max()))
	if det.Report.MaxRQD <= cell.Time(dist.Max()) {
		t.Notes = append(t.Notes, "WARNING: randomization did not beat determinism at this geometry")
	}
	return t, nil
}
