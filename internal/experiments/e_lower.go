package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/bounds"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
)

func init() {
	register("E2", "Lemma 4: the concentration scenario", e2Lemma4)
	register("E3", "Theorem 6: d-partitioned fully-distributed dispatch", e3Theorem6)
	register("E4", "Corollary 7: unpartitioned dispatch does not scale with N", e4Corollary7)
	register("E5", "Theorem 8: static partitioning and the N/S bound", e5Theorem8)
}

func rrFactory(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerInput) }

// e2Lemma4 forces c cells for one output through one plane and compares the
// measured relative queuing delay and jitter with Lemma 4's expressions.
func e2Lemma4(o Opts) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Lemma 4 concentration scenario",
		Claim:   "c same-plane cells arriving over s slots cost RQD and RDJ >= c*R/r - (s + B)",
		Columns: []string{"c", "r'", "measured RQD", "measured RDJ", "paper LB c*r'-(s+B)", "model exact (c-1)(r'-1)"},
		Notes: []string{
			"s = c (one arrival per slot), B = 0; the model's exact value is (c-1)(r'-1) because the first cell crosses in its arrival slot — same Theta, tighter constant",
			"the jitter witness is the proof's extra cell a' on the delayed flow, sent after the buffers drain (Lemma 4, part 2)",
		},
	}
	cs := []int{2, 4, 8, 16, 32, 64}
	if o.Quick {
		cs = []int{2, 4, 8}
	}
	const rp = 3
	for _, c := range cs {
		cfg := fabric.Config{N: c, K: 4, RPrime: rp, CheckInvariants: true}
		tr, err := adversary.Concentration(c, c, 0)
		if err != nil {
			return nil, err
		}
		// Lemma 4 part 2: a lone cell a' of the most-delayed flow, sent
		// once every buffer is empty, departs immediately; the flow's
		// jitter is then the full concentration delay.
		witnessAt := cell.Time(c*rp + rp + 2)
		if err := tr.Add(witnessAt, cell.Port(c-1), 0); err != nil {
			return nil, err
		}
		res, err := harness.Run(cfg, rrFactory, tr, harness.Options{Validate: true})
		if err != nil {
			return nil, fmt.Errorf("E2 c=%d: %w", c, err)
		}
		g := bounds.Params{N: c, K: 4, RPrime: rp}
		paperLB := bounds.Lemma4(g, c, c, 0) // s = c, B = 0
		exact := bounds.Lemma4ModelExact(g, c)
		t.AddRow(itoa(c), itoa(rp), itoa(res.Report.MaxRQD), itoa(res.Report.RDJ), ftoa(paperLB), itoa(exact))
	}
	return t, nil
}

// e3Theorem6 aligns the |I| demultiplexors sharing a plane via the steering
// adversary (Figure 2 of the paper) and measures the concentration cost.
func e3Theorem6(o Opts) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 6: d demultiplexors sharing a (plane, output) pair",
		Claim:   "d-partitioned fully-distributed demux has RQD, RDJ >= (R/r - 1) * d under burstless traffic",
		Columns: []string{"N", "d=|I|", "burstiness B", "measured RQD", "measured RDJ", "bound (r'-1)d"},
	}
	ns := []int{8, 16, 32, 64}
	if o.Quick {
		ns = []int{8, 16}
	}
	const k, rp, part = 8, 2, 2 // partition size 2, so |I| = N*part/K = N/4
	for _, n := range ns {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, part) }
		plane := cell.Plane(part) // a plane in group 1
		inputs := partitionInputs(n, k, part, plane)
		tr, err := adversary.Steering(adversary.SteeringSpec{
			Fabric: cfg, Factory: factory,
			Inputs: inputs, Out: 0, Plane: plane,
		})
		if err != nil {
			return nil, fmt.Errorf("E3 N=%d: %w", n, err)
		}
		res, err := harness.Run(cfg, factory, tr, harness.Options{Validate: true})
		if err != nil {
			return nil, fmt.Errorf("E3 N=%d: %w", n, err)
		}
		d := len(inputs)
		bd := bounds.Theorem6(bounds.Params{N: n, K: k, RPrime: rp}, d)
		t.AddRow(itoa(n), itoa(d), itoa(res.Burstiness),
			itoa(res.Report.MaxRQD), itoa(res.Report.RDJ), ftoa(bd))
	}
	return t, nil
}

func partitionInputs(n, k, d int, plane cell.Plane) []cell.Port {
	groups := k / d
	g := int(plane) / d
	var out []cell.Port
	for i := 0; i < n; i++ {
		if i%groups == g {
			out = append(out, cell.Port(i))
		}
	}
	return out
}

// e4Corollary7 is the headline scaling result: with unpartitioned
// fully-distributed dispatch the relative queuing delay grows linearly in
// the port count N.
func e4Corollary7(o Opts) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Corollary 7: RQD of unpartitioned fully-distributed dispatch grows with N",
		Claim:   "unpartitioned fully-distributed demux has RQD, RDJ >= (R/r - 1) * N under burstless traffic",
		Columns: []string{"N", "burstiness B", "measured RQD", "measured RDJ", "bound (r'-1)N", "measured/bound"},
		Notes: []string{
			"the measured/bound ratio approaching 1 as N grows is the paper's non-scalability message: doubling the port count doubles the worst-case relative delay",
		},
	}
	ns := []int{4, 8, 16, 32, 64, 128}
	if o.Quick {
		ns = []int{4, 8, 16}
	}
	const k, rp = 4, 2
	for _, n := range ns {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		inputs := make([]cell.Port, n)
		for i := range inputs {
			inputs[i] = cell.Port(i)
		}
		tr, err := adversary.Steering(adversary.SteeringSpec{
			Fabric: cfg, Factory: rrFactory,
			Inputs: inputs, Out: 0, Plane: 1,
			ScrambleSlots: 24, ScrambleSeed: int64(n),
		})
		if err != nil {
			return nil, fmt.Errorf("E4 N=%d: %w", n, err)
		}
		res, err := harness.Run(cfg, rrFactory, tr, harness.Options{Validate: true})
		if err != nil {
			return nil, fmt.Errorf("E4 N=%d: %w", n, err)
		}
		bound := bounds.Corollary7(bounds.Params{N: n, K: k, RPrime: rp})
		t.AddRow(itoa(n), itoa(res.Burstiness), itoa(res.Report.MaxRQD), itoa(res.Report.RDJ),
			ftoa(bound), ftoa(float64(res.Report.MaxRQD)/bound))
	}
	return t, nil
}

// e5Theorem8 fixes N and sweeps the speedup: the measured worst case decays
// as N/S.
func e5Theorem8(o Opts) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 8: worst-case RQD decays as N/S",
		Claim:   "any fully-distributed demux has RQD, RDJ >= (R/r - 1) * N/S under burstless traffic",
		Columns: []string{"K", "S", "|I|=N/S", "measured RQD", "bound (r'-1)N/S"},
	}
	const n, rp, part = 32, 2, 2
	ks := []int{2, 4, 8, 16, 32}
	if o.Quick {
		ks = []int{2, 4, 8}
	}
	for _, k := range ks {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, part) }
		plane := cell.Plane(0)
		inputs := partitionInputs(n, k, part, plane)
		tr, err := adversary.Steering(adversary.SteeringSpec{
			Fabric: cfg, Factory: factory,
			Inputs: inputs, Out: 0, Plane: plane,
		})
		if err != nil {
			return nil, fmt.Errorf("E5 K=%d: %w", k, err)
		}
		res, err := harness.Run(cfg, factory, tr, harness.Options{Validate: true})
		if err != nil {
			return nil, fmt.Errorf("E5 K=%d: %w", k, err)
		}
		g := bounds.Params{N: n, K: k, RPrime: rp}
		t.AddRow(itoa(k), ftoa(g.Speedup()), itoa(len(inputs)), itoa(res.Report.MaxRQD), ftoa(bounds.Theorem8(g)))
	}
	return t, nil
}
