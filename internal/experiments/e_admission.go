package experiments

import (
	"fmt"

	"ppsim/internal/admission"
	"ppsim/internal/cell"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func init() {
	register("E28", "Admission control: token-bucket vs always-admit under inadmissible bursty load", e28Admission)
}

// e28Admission drives the switch with an offered load well past capacity —
// four on/off flows concentrated onto two outputs, 1.6 cells/slot offered
// to each against a drain rate of 1 — and compares the always-admit default
// against token-bucket admission across several seeds. A deep plane fan-out
// (K=4 planes at r'=4, speedup 1) makes the overload hurt where the paper
// says it must: cells of one output spread across slow planes out of order,
// so resequencing delay — and with it the delivered-cell RQD tail — grows
// with the burst depth. The token bucket sheds the excess at the door; the
// cells it does admit see a switch operating inside its capacity region and
// their p999 RQD collapses. The conservation identities (offered ==
// admitted + rejected + expired-at-admission; admitted == delivered +
// dropped + expired-at-resequencing) are asserted for every run — no
// offered cell goes unaccounted. Hypothesis H-ADM in EXPERIMENTS.md records
// the multi-seed dominance check this table feeds.
func e28Admission(o Opts) (*Table, error) {
	const n, k, rp = 8, 4, 4 // S = 1: per-output capacity is 1 cell/slot
	t := &Table{
		ID:      "E28",
		Title:   "Graceful overload degradation at 1.6x capacity (on/off bursts into two outputs)",
		Claim:   "(robustness extension; cf. delay-constrained IQ switching) under inadmissible load, token-bucket admission keeps the delivered-cell tail RQD bounded while always-admit lets it grow with the burst backlog",
		Columns: []string{"policy", "seed", "offered", "admitted", "rejected", "expired", "delivered", "goodput", "on-time", "p99 rqd", "p999 rqd"},
		Notes: []string{
			"offered load: four on/off flows (mean burst 32, mean gap 8, per-flow load 0.8) concentrated onto outputs {0, 1} — 1.6 cells/slot per output against capacity 1",
			"goodput is delivered cells per slot across the run; on-time is delivered-on-time cells over offered cells (without deadlines every delivered cell counts)",
			"conservation (offered == admitted + rejected + expired_admit and admitted == delivered + dropped + expired_reseq) is asserted for every row",
		},
	}
	horizon := cell.Time(4000)
	seeds := []int64{3, 7, 11}
	if o.Quick {
		horizon = 600
		seeds = seeds[:2]
	}
	// The default comparison policy: per-input rate 1/5 with burst 8 caps the
	// four active inputs at an aggregate 0.8 cells/slot — back inside the
	// capacity region, with enough burst depth to ride out short gaps.
	spec := o.Admission
	if spec.Empty() {
		var err error
		spec, err = admission.ParseSpec("rate:1/5,burst:8")
		if err != nil {
			return nil, err
		}
	}
	policies := []struct {
		name string
		spec *admission.Spec
	}{
		{"always", nil},
		{spec.Name(), spec},
	}
	for _, p := range policies {
		for _, seed := range seeds {
			src, err := overloadTrace(horizon, seed)
			if err != nil {
				return nil, err
			}
			if o.DeadlineRel > 0 {
				src = traffic.WithDeadline(src, o.DeadlineRel)
			}
			res, err := harness.Run(cfg28(n, k, rp), rrFactory, src, harness.Options{
				Validate:  true,
				Admission: p.spec,
			})
			if err != nil {
				return nil, fmt.Errorf("E28 %s seed=%d: %w", p.name, seed, err)
			}
			rep := res.Report
			if rep.Offered != rep.Admitted+rep.Rejected+rep.ExpiredAdmit {
				return nil, fmt.Errorf("E28 %s seed=%d: admission leak: offered=%d admitted=%d rejected=%d expired=%d",
					p.name, seed, rep.Offered, rep.Admitted, rep.Rejected, rep.ExpiredAdmit)
			}
			if rep.Admitted != rep.Cells+rep.Drops+rep.ExpiredReseq {
				return nil, fmt.Errorf("E28 %s seed=%d: delivery leak: admitted=%d delivered=%d drops=%d expired=%d",
					p.name, seed, rep.Admitted, rep.Cells, rep.Drops, rep.ExpiredReseq)
			}
			t.AddRow(p.name, itoa(seed),
				itoa(rep.Offered), itoa(rep.Admitted), itoa(rep.Rejected),
				itoa(rep.ExpiredAdmit+rep.ExpiredReseq), itoa(rep.Cells),
				fmt.Sprintf("%.3f", res.Goodput), fmt.Sprintf("%.3f", res.OnTimeFraction),
				itoa(rep.Percentiles.RQD.P99), itoa(rep.Percentiles.RQD.P999))
		}
	}
	return t, nil
}

func cfg28(n, k int, rp int64) fabric.Config {
	return fabric.Config{N: n, K: k, RPrime: rp, BufferCap: -1, CheckInvariants: true}
}

// overloadTrace materializes the E28 workload: four independent on/off
// flows on inputs 0..3, every cell redirected onto outputs {0, 1}. Per-flow
// load is 32/(32+8) = 0.8, so each hot output is offered ~1.6 cells/slot —
// sustained inadmissible load delivered in bursts.
func overloadTrace(horizon cell.Time, seed int64) (traffic.Source, error) {
	onoff, err := traffic.NewOnOff(4, 32, 8, horizon, seed)
	if err != nil {
		return nil, err
	}
	tr := traffic.NewTrace()
	var buf []traffic.Arrival
	for s := cell.Time(0); s < horizon; s++ {
		buf = onoff.Arrivals(s, buf[:0])
		for _, a := range buf {
			if err := tr.Add(s, a.In, a.Out%2); err != nil {
				return nil, err
			}
		}
	}
	return tr, nil
}
