package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment outputs")

// TestGolden pins the quick-mode text output of every experiment. The whole
// stack is deterministic — traffic, algorithms, adversaries, scheduling —
// so any diff here is a real behaviour change: either an intentional model
// change (re-bless with `go test ./internal/experiments -run Golden -update`)
// or a regression.
func TestGolden(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Opts{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			got := tab.Text()
			path := filepath.Join("testdata", e.ID+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("output diverged from golden file %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
