package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/bounds"
	"ppsim/internal/cell"
	"ppsim/internal/cioq"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/shadow"
	"ppsim/internal/stats"
	"ppsim/internal/traffic"
)

func init() {
	register("E16", "CIOQ speedup-2 mimicking (Chuang et al.)", e16CIOQ)
	register("E17", "Universality: the Theorem 6 adversary aligns every deterministic algorithm", e17Universality)
	register("E18", "Randomized dispatch: distribution of the relative queuing delay", e18Randomized)
}

// e16CIOQ reproduces the related-work contrast the paper builds on: a
// combined input-output queued crossbar with speedup 2 mimics output
// queuing, speedup 1 does not. This is the "other" way to buy OQ behaviour
// with slower memory — the PPS buys it with parallelism instead.
func e16CIOQ(o Opts) (*Table, error) {
	const n = 8
	t := &Table{
		ID:      "E16",
		Title:   "CIOQ switch: speedup needed to mimic output queuing",
		Claim:   "a combined input-output queued switch needs speedup 2 - 1/N to mimic an output-queued switch [Chuang-Goel-McKeown-Prabhakar, cited in Section 1.3]",
		Columns: []string{"speedup", "traffic", "max rel. delay", "mean rel. delay"},
		Notes: []string{
			"scheduler: greedy most-urgent-cell-first matching per phase; integer speedups only, so 2 stands in for 2 - 1/N",
		},
	}
	slots := cell.Time(800)
	if o.Quick {
		slots = 150
	}
	for _, sp := range []int{1, 2, 3} {
		if o.Quick && sp == 3 {
			continue
		}
		for _, kind := range []string{"shaped bernoulli 0.8", "contended"} {
			var src traffic.Source
			if kind == "shaped bernoulli 0.8" {
				shaped, err := materialize(n, traffic.NewRegulator(n, 3, traffic.NewBernoulli(n, 0.8, slots, 13)), slots)
				if err != nil {
					return nil, err
				}
				src = shaped
			} else {
				tr := traffic.NewTrace()
				for s := cell.Time(0); s < slots/4; s++ {
					for i := 0; i < n; i++ {
						out := cell.Port(0)
						if (int(s)+i)%2 == 1 {
							out = cell.Port(1 + (i % (n - 1)))
						}
						tr.MustAdd(s, cell.Port(i), out)
					}
				}
				src = tr
			}
			maxD, meanD, err := runCIOQ(n, sp, src)
			if err != nil {
				return nil, fmt.Errorf("E16 s=%d %s: %w", sp, kind, err)
			}
			t.AddRow(itoa(sp), kind, itoa(maxD), ftoa(meanD))
		}
	}
	return t, nil
}

func runCIOQ(n, speedup int, src traffic.Source) (cell.Time, float64, error) {
	xb, err := cioq.New(n, speedup)
	if err != nil {
		return 0, 0, err
	}
	sh := shadow.New(n)
	st := cell.NewStamper()
	shadowDep := map[uint64]cell.Time{}
	ppsDep := map[uint64]cell.Time{}
	end := src.End()
	var buf []traffic.Arrival
	var deps, shDeps []cell.Cell
	for slot := cell.Time(0); slot < 1<<20; slot++ {
		if slot >= end && xb.Drained() && sh.Drained() {
			var max cell.Time
			var sum float64
			for seq, pd := range ppsDep {
				d := pd - shadowDep[seq]
				sum += float64(d)
				if d > max {
					max = d
				}
			}
			if len(ppsDep) == 0 {
				return 0, 0, fmt.Errorf("no cells crossed")
			}
			return max, sum / float64(len(ppsDep)), nil
		}
		var cells []cell.Cell
		if slot < end {
			buf = src.Arrivals(slot, buf[:0])
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
		}
		deps, err = xb.Step(slot, cells, deps[:0])
		if err != nil {
			return 0, 0, err
		}
		for _, d := range deps {
			ppsDep[d.Seq] = d.Depart
		}
		shDeps = sh.Step(slot, cells, shDeps[:0])
		for _, d := range shDeps {
			shadowDep[d.Seq] = d.Depart
		}
	}
	return 0, 0, fmt.Errorf("cioq run did not drain")
}

// e17Universality runs the identical steering construction against every
// deterministic fully-distributed algorithm in the registry: Theorem 6 is a
// statement about ALL of them, and the adversary indeed aligns each one.
func e17Universality(o Opts) (*Table, error) {
	const k, rp = 4, 2
	n := 32
	if o.Quick {
		n = 16
	}
	t := &Table{
		ID:      "E17",
		Title:   "Every deterministic fully-distributed algorithm hits the Theorem 6 bound",
		Claim:   "the lower bound holds for every demultiplexing algorithm modeled as a deterministic state machine — local cleverness does not escape it",
		Columns: []string{"algorithm", "measured RQD", "bound (r'-1)N", "aligned?"},
	}
	algs := []struct {
		name string
		mk   func(demux.Env) (demux.Algorithm, error)
	}{
		{"rr", rrFactory},
		{"perflow-rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }},
		{"local-least-loaded", func(e demux.Env) (demux.Algorithm, error) { return demux.NewLocalLeastLoaded(e) }},
		{"ftd h=2", func(e demux.Env) (demux.Algorithm, error) { return demux.NewFTD(e, 2) }},
		{"buffered-rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedRR(e, -1) }},
	}
	inputs := make([]cell.Port, n)
	for i := range inputs {
		inputs[i] = cell.Port(i)
	}
	bound := int(bounds.Corollary7(bounds.Params{N: n, K: k, RPrime: rp}))
	for _, a := range algs {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		if a.name == "buffered-rr" {
			cfg.BufferCap = -1
		}
		tr, err := adversary.Steering(adversary.SteeringSpec{
			Fabric: cfg, Factory: a.mk, Inputs: inputs, Out: 0, Plane: 1,
			ScrambleSlots: 12, ScrambleSeed: 7,
		})
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", a.name, err)
		}
		res, err := harness.Run(cfg, a.mk, tr, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", a.name, err)
		}
		aligned := "yes"
		if res.Report.MaxRQD < cell.Time(bound)/2 {
			aligned = "NO"
		}
		t.AddRow(a.name, itoa(res.Report.MaxRQD), itoa(bound), aligned)
	}
	return t, nil
}

// e18Randomized answers the Discussion's open question empirically: with
// randomized dispatch the steering adversary cannot align pointers, and the
// concentration trace spreads each plane's arrivals at rate ~1/K per slot.
// Whenever 1/K < 1/r' (i.e. S > 1) the plane queues drain faster than they
// fill, so the relative delay collapses to O(1) with high probability —
// randomization defeats this particular adversary, while the deterministic
// algorithms pay the full (N-1)(r'-1).
func e18Randomized(o Opts) (*Table, error) {
	const k, rp = 4, 3
	n := 64
	seeds := 200
	if o.Quick {
		n, seeds = 16, 30
	}
	t := &Table{
		ID:      "E18",
		Title:   "Randomized dispatch under the concentration trace: RQD distribution",
		Claim:   "(Discussion) 'it would be interesting to study the distribution of the relative queuing delay when randomization is employed'",
		Columns: []string{"quantity", "slots"},
		Notes: []string{
			fmt.Sprintf("%d cells to one output over %d seeds; deterministic rr on the same trace measures (N-1)(r'-1) = %d", n, seeds, (n-1)*(rp-1)),
			"per-plane arrival rate 1/K beats the 1/r' drain rate whenever S > 1, so random spreading keeps queues O(1) whp — the deterministic bound needs the adversary's alignment, which randomness denies",
		},
	}
	var dist stats.Summary
	for seed := 0; seed < seeds; seed++ {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		tr, err := adversary.Concentration(n, n, 0)
		if err != nil {
			return nil, err
		}
		factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewRandom(e, int64(seed)) }
		res, err := harness.Run(cfg, factory, tr, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E18 seed=%d: %w", seed, err)
		}
		dist.Add(int64(res.Report.MaxRQD))
	}
	t.AddRow("min", itoa(dist.Min()))
	t.AddRow("mean", ftoa(dist.Mean()))
	t.AddRow("p50", itoa(dist.Percentile(50)))
	t.AddRow("p99", itoa(dist.Percentile(99)))
	t.AddRow("max", itoa(dist.Max()))
	t.AddRow("deterministic rr (same trace)", itoa((n-1)*(rp-1)))
	return t, nil
}
