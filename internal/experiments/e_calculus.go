package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/netcalc"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

func init() {
	register("E21", "Network calculus: Cruz bounds vs measured executions", e21Calculus)
	register("E22", "Birkhoff-von Neumann traffic through the PPS", e22BvN)
}

// e21Calculus validates the calculus facts the paper leans on (Cruz [9]):
// the reference switch's delay and backlog are bounded by the traffic
// burstiness, and concentration onto one plane is exactly the regime where
// the single-plane service curve cannot carry rate R.
func e21Calculus(o Opts) (*Table, error) {
	const n, bb = 8, 5
	t := &Table{
		ID:      "E21",
		Title:   "Cruz calculus bounds vs measured executions",
		Claim:   "(substrate, [9]) under (R,B) traffic a work-conserving switch needs at most B buffering and delays cells at most B slots; a single rate-r plane path cannot carry rate R at all",
		Columns: []string{"quantity", "calculus bound", "measured"},
	}
	horizon := cell.Time(2000)
	if o.Quick {
		horizon = 300
	}

	// Measured shadow delay and backlog under shaped (R, B=bb) traffic.
	demand := traffic.NewRegulator(n, bb, traffic.NewBernoulli(n, 0.8, horizon, 3))
	sh := shadow.New(n)
	st := cell.NewStamper()
	var worstDelay cell.Time
	worstQ := 0
	var buf []traffic.Arrival
	var deps []cell.Cell
	for slot := cell.Time(0); slot < horizon*8; slot++ {
		buf = demand.Arrivals(slot, nil)
		cells := make([]cell.Cell, 0, len(buf))
		for _, a := range buf {
			cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
		}
		deps = sh.Step(slot, cells, deps[:0])
		for _, d := range deps {
			if d.QueuingDelay() > worstDelay {
				worstDelay = d.QueuingDelay()
			}
		}
		for j := 0; j < n; j++ {
			if q := sh.QueueLen(cell.Port(j)); q > worstQ {
				worstQ = q
			}
		}
		if slot > horizon && sh.Drained() {
			break
		}
	}
	dBound, err := netcalc.DelayBound(netcalc.FromLeakyBucket(1, bb), netcalc.OQOutputPort())
	if err != nil {
		return nil, err
	}
	qBound, err := netcalc.BacklogBound(netcalc.FromLeakyBucket(1, bb), netcalc.OQOutputPort())
	if err != nil {
		return nil, err
	}
	t.AddRow("reference switch max delay (B=5)", ftoa(dBound), itoa(worstDelay))
	t.AddRow("reference switch max backlog (B=5)", ftoa(qBound), itoa(worstQ))

	// Concentration: a single plane path (rate 1/r') offered rate R is
	// unstable; the measured plane backlog grows linearly with the number
	// of concentrated cells.
	const k, rp = 4, 3
	for _, c := range []int{8, 16} {
		cfg := fabric.Config{N: c, K: k, RPrime: rp, CheckInvariants: true}
		tr, err := adversary.Concentration(c, c, 0)
		if err != nil {
			return nil, err
		}
		res, err := harness.Run(cfg, rrFactory, tr, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E21 c=%d: %w", c, err)
		}
		if _, err := netcalc.DelayBound(netcalc.FromLeakyBucket(1, 0), netcalc.PPSPlanePath(rp)); err == nil {
			return nil, fmt.Errorf("E21: single-plane path should be unstable at rate R")
		}
		t.AddRow(fmt.Sprintf("single-plane peak backlog (c=%d)", c),
			"unbounded (rate R > 1/r')", itoa(res.PeakPlaneQueue))
	}

	// The aggregate of all K planes carries rate R with latency r'-1.
	aggD, err := netcalc.DelayBound(netcalc.FromLeakyBucket(1, 0), netcalc.PPSAggregate(k, rp))
	if err != nil {
		return nil, err
	}
	cfgAgg := fabric.Config{N: 8, K: k, RPrime: rp, CheckInvariants: true}
	perm, err := traffic.NewPermutation([]cell.Port{1, 2, 3, 4, 5, 6, 7, 0}, horizon/4)
	if err != nil {
		return nil, err
	}
	resAgg, err := harness.Run(cfgAgg,
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) },
		perm, harness.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("K-plane aggregate max delay (rate-R flow, CPA)", ftoa(aggD), itoa(resAgg.Report.MaxPPSDelay))
	return t, nil
}

// e22BvN drives the switch with deterministic Birkhoff-von Neumann traffic:
// admissible rate matrices realized as permutation schedules, the smooth
// counterpoint to the adversarial traces.
func e22BvN(o Opts) (*Table, error) {
	const n, k, rp = 8, 8, 4 // S = 2
	t := &Table{
		ID:      "E22",
		Title:   "Deterministic BvN rate-matrix traffic",
		Claim:   "(substrate) any doubly-substochastic demand, scheduled by its BvN decomposition, is admissible with burstiness bounded by the decomposition size; CPA carries it with zero relative delay",
		Columns: []string{"demand matrix", "perms", "measured B", "algorithm", "mean RQD", "max RQD"},
	}
	horizon := cell.Time(3000)
	if o.Quick {
		horizon = 400
	}
	matrices := []struct {
		name string
		mk   func() [][]float64
	}{
		{"uniform 0.8", func() [][]float64 {
			m := make([][]float64, n)
			for i := range m {
				m[i] = make([]float64, n)
				for j := range m[i] {
					m[i][j] = 0.8 / n
				}
			}
			return m
		}},
		{"diagonal+spill", func() [][]float64 {
			m := make([][]float64, n)
			for i := range m {
				m[i] = make([]float64, n)
				for j := range m[i] {
					if i == j {
						m[i][j] = 0.6
					} else {
						m[i][j] = 0.3 / float64(n-1)
					}
				}
			}
			return m
		}},
	}
	algs := []struct {
		name string
		mk   func(demux.Env) (demux.Algorithm, error)
	}{
		{"cpa", func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }},
		{"rr", rrFactory},
	}
	for _, m := range matrices {
		src, err := traffic.NewBvN(m.mk(), horizon, 0)
		if err != nil {
			return nil, fmt.Errorf("E22 %s: %w", m.name, err)
		}
		perms := src.Permutations()
		// Materialize once so both algorithms see identical cells.
		trace, err := materialize(n, src, horizon)
		if err != nil {
			return nil, err
		}
		for _, a := range algs {
			cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
			res, err := harness.Run(cfg, a.mk, trace, harness.Options{Validate: true})
			if err != nil {
				return nil, fmt.Errorf("E22 %s/%s: %w", m.name, a.name, err)
			}
			t.AddRow(m.name, itoa(perms), itoa(res.Burstiness), a.name,
				ftoa(res.Report.MeanRQD), itoa(res.Report.MaxRQD))
		}
	}
	return t, nil
}
