package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func init() {
	register("E20", "Diagnostic: where inside the PPS does the delay live?", e20Stages)
}

// e20Stages decomposes each algorithm's delay into the three places a cell
// can wait — the input-port buffer, the plane (queue plus both rate-r line
// hops), and the output-port resequencing buffer — under the adversarial
// concentration and under random traffic. The decomposition localizes each
// theorem's mechanism: the fully-distributed bounds live in the plane
// stage, Theorem 12's u-slot price lives in the input stage, and per-flow
// spreading (perflow-rr/ftd) pays a visible resequencing component.
func e20Stages(o Opts) (*Table, error) {
	const n, k, rp = 16, 8, 4 // S = 2
	t := &Table{
		ID:      "E20",
		Title:   "Delay-stage decomposition (mean slots per cell)",
		Claim:   "(diagnostic) the lower-bound mechanisms are localized: concentration delay accrues in the planes, Theorem 12's lag in the input buffers, spreading's reordering at the outputs",
		Columns: []string{"algorithm", "traffic", "input wait", "plane wait", "reseq wait", "max RQD"},
	}
	algs := []struct {
		name   string
		mk     func(demux.Env) (demux.Algorithm, error)
		bufCap int
	}{
		{"rr", rrFactory, 0},
		{"perflow-rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }, 0},
		{"cpa", func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }, 0},
		{"buffered-cpa u=4", func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedCPA(e, 4, demux.MinAvail) }, 5},
	}
	if o.Quick {
		algs = algs[:2]
	}
	horizon := cell.Time(1500)
	if o.Quick {
		horizon = 300
	}
	for _, a := range algs {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, BufferCap: a.bufCap, CheckInvariants: true}

		conc, err := adversary.Concentration(n, n, 0)
		if err != nil {
			return nil, err
		}
		res, err := harness.Run(cfg, a.mk, conc, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E20 %s concentration: %w", a.name, err)
		}
		t.AddRow(a.name, "concentration",
			ftoa(res.Report.MeanInputWait), ftoa(res.Report.MeanPlaneWait),
			ftoa(res.Report.MeanOutputWait), itoa(res.Report.MaxRQD))

		rand, err := materialize(n, traffic.NewRegulator(n, 4, traffic.NewBernoulli(n, 0.7, horizon, 21)), horizon)
		if err != nil {
			return nil, err
		}
		res2, err := harness.Run(cfg, a.mk, rand, harness.Options{})
		if err != nil {
			return nil, fmt.Errorf("E20 %s random: %w", a.name, err)
		}
		t.AddRow(a.name, "random (shaped B=4)",
			ftoa(res2.Report.MeanInputWait), ftoa(res2.Report.MeanPlaneWait),
			ftoa(res2.Report.MeanOutputWait), itoa(res2.Report.MaxRQD))
	}
	return t, nil
}
