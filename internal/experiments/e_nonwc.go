package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/cell"
	"ppsim/internal/fabric"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

func init() {
	register("E26", "Discussion: non-work-conserving references make the comparison meaningless", e26NonWC)
}

// e26NonWC measures the same steered PPS execution against jitter-shaping
// (non-work-conserving) reference switches of growing target delay D. As D
// grows the reference's own idling absorbs the PPS's concentration delay
// and the "relative delay" collapses through zero — the Discussion's point
// that only work-conserving references yield a meaningful competitive
// measure.
func e26NonWC(o Opts) (*Table, error) {
	const n, k, rp = 16, 4, 3
	t := &Table{
		ID:      "E26",
		Title:   "The same PPS execution against shaped (non-work-conserving) references",
		Claim:   "(Discussion) 'a non-work-conserving reference switch can degrade... making the comparison meaningless': against a D-shaping reference the measured relative delay collapses as D grows, hiding the concentration entirely",
		Columns: []string{"reference", "max relative delay", "verdict"},
	}
	// One fixed adversarial execution of the PPS.
	tr, err := adversary.Concentration(n, n, 0)
	if err != nil {
		return nil, err
	}
	pps, err := fabric.New(fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}, rrFactory)
	if err != nil {
		return nil, err
	}
	st := cell.NewStamper()
	type arr struct {
		slot  cell.Time
		cells []cell.Cell
	}
	var history []arr
	ppsDep := map[uint64]cell.Time{}
	var buf []traffic.Arrival
	var deps []cell.Cell
	for slot := cell.Time(0); slot < 1<<16; slot++ {
		if slot >= tr.End() && pps.Drained() {
			break
		}
		buf = tr.Arrivals(slot, buf[:0])
		var cells []cell.Cell
		for _, a := range buf {
			cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
		}
		history = append(history, arr{slot, cells})
		deps, err = pps.Step(slot, cells, deps[:0])
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			ppsDep[d.Seq] = d.Depart
		}
	}

	// Replay the identical arrivals through each reference and compare.
	ds := []cell.Time{0, 8, 16, 32, 64}
	if o.Quick {
		ds = []cell.Time{0, 16, 64}
	}
	for _, d := range ds {
		ref, err := shadow.NewShaped(n, d)
		if err != nil {
			return nil, err
		}
		refDep := map[uint64]cell.Time{}
		var rdeps []cell.Cell
		slot := cell.Time(0)
		hi := 0
		for !ref.Drained() || hi < len(history) {
			var cells []cell.Cell
			if hi < len(history) && history[hi].slot == slot {
				cells = history[hi].cells
				hi++
			}
			rdeps = ref.Step(slot, cells, rdeps[:0])
			for _, c := range rdeps {
				refDep[c.Seq] = c.Depart
			}
			slot++
			if slot > 1<<16 {
				return nil, fmt.Errorf("E26: shaped reference did not drain")
			}
		}
		var worst cell.Time
		first := true
		for seq, pd := range ppsDep {
			delta := pd - refDep[seq]
			if first || delta > worst {
				worst, first = delta, false
			}
		}
		label := fmt.Sprintf("shaped D=%d", d)
		if d == 0 {
			label = "work-conserving (D=0)"
		}
		verdict := "meaningful: concentration visible"
		if worst <= 0 {
			verdict = "MEANINGLESS: reference idling hides the PPS entirely"
		} else if int64(worst) < int64((n-1)*(rp-1))/2 {
			verdict = "degraded: concentration partly hidden"
		}
		t.AddRow(label, itoa(worst), verdict)
	}
	return t, nil
}
