package experiments

import (
	"fmt"

	"ppsim/internal/adversary"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func init() {
	register("E9", "Theorem 14: FTD extension has no relative delay in congested periods", e9Theorem14)
	register("E10", "Proposition 15: congestion traffic is not leaky-bucket", e10Proposition15)
}

// e9Theorem14 floods one output so that every plane queue for it stays
// backlogged (a congested period) and verifies that under the FTD extension
// the output never idles after a warm-up — the operational meaning of "no
// relative queuing delay in congested periods". Larger h shortens warm-up.
func e9Theorem14(o Opts) (*Table, error) {
	const n, k, rp = 16, 8, 2 // S = 4
	t := &Table{
		ID:      "E9",
		Title:   "Theorem 14: FTDX under a congested period",
		Claim:   "a bufferless PPS has a parameterized fully-distributed demux with zero relative queuing delay in congested periods, after a warm-up shortened by larger h",
		Columns: []string{"algorithm", "h", "block", "output-0 utilization", "idle slots in span", "MaxRQD"},
		Notes: []string{
			"utilization 1.0 = the flooded output emits a cell every slot between its first and last departure, exactly like the work-conserving reference — zero relative delay once congested",
			"MaxRQD here is entirely warm-up (the first burst before all plane queues backlog); at this geometry (K >= every block size) warm-up is a single burst for all h, and even plain round-robin keeps a flooded output saturated",
		},
	}
	floodLen := cell.Time(300)
	if o.Quick {
		floodLen = 80
	}
	type row struct {
		name string
		h    float64
		mk   func(demux.Env) (demux.Algorithm, error)
	}
	rows := []row{
		{"ftd", 1.5, func(e demux.Env) (demux.Algorithm, error) { return demux.NewFTD(e, 1.5) }},
		{"ftd", 2, func(e demux.Env) (demux.Algorithm, error) { return demux.NewFTD(e, 2) }},
		{"ftd", 4, func(e demux.Env) (demux.Algorithm, error) { return demux.NewFTD(e, 4) }},
		{"rr (contrast)", 0, rrFactory},
	}
	if o.Quick {
		rows = rows[1:3]
	}
	for _, r := range rows {
		cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
		src := &traffic.Flood{N: n, Out: 0, Until: floodLen}
		res, err := harness.Run(cfg, r.mk, src, harness.Options{Utilization: true})
		if err != nil {
			return nil, fmt.Errorf("E9 %s h=%g: %w", r.name, r.h, err)
		}
		util := res.Utilization[0]
		// Idle slots between first and last departure of output 0.
		idle := int64(float64(res.Report.Cells)/util) - int64(res.Report.Cells)
		block := "-"
		hLabel := "-"
		if r.h > 0 {
			block = itoa(int(r.h * rp))
			hLabel = fmt.Sprintf("%g", r.h)
		}
		t.AddRow(r.name, hLabel, block, fmt.Sprintf("%.4f", util), itoa(idle), itoa(res.Report.MaxRQD))
	}
	return t, nil
}

// e10Proposition15 measures the windowed burstiness of the congestion
// traffic against leaky-bucket traffics: the former grows linearly in the
// window length (so no fixed B bounds it), the latter stay flat.
func e10Proposition15(o Opts) (*Table, error) {
	const n = 16
	t := &Table{
		ID:      "E10",
		Title:   "Proposition 15: burstiness of congestion traffic grows without bound",
		Claim:   "any traffic causing congestion under the Theorem 14 algorithms is not (R, B) leaky-bucket for any B independent of time",
		Columns: []string{"window tau", "flood excess", "Theorem-6 trace excess", "shaped Bernoulli (B=4) excess"},
	}
	taus := []cell.Time{1, 10, 100, 500}
	if o.Quick {
		taus = []cell.Time{1, 10, 50}
	}
	horizon := cell.Time(600)
	if o.Quick {
		horizon = 100
	}

	flood := &traffic.Flood{N: n, Out: 0, Until: horizon}

	cfg := fabric.Config{N: n, K: 4, RPrime: 2, CheckInvariants: true}
	inputs := make([]cell.Port, n)
	for i := range inputs {
		inputs[i] = cell.Port(i)
	}
	steer, err := adversary.Steering(adversary.SteeringSpec{
		Fabric: cfg, Factory: rrFactory, Inputs: inputs, Out: 0, Plane: 1,
		ScrambleSlots: 16, ScrambleSeed: 3,
	})
	if err != nil {
		return nil, err
	}

	// Materialize a shaped Bernoulli stream into a finite trace.
	shapedTrace, err := materialize(n, traffic.NewRegulator(n, 4, traffic.NewBernoulli(n, 0.7, horizon, 9)), horizon)
	if err != nil {
		return nil, err
	}

	for _, tau := range taus {
		fx, err := traffic.WindowBurstiness(n, flood, tau)
		if err != nil {
			return nil, err
		}
		sx, err := traffic.WindowBurstiness(n, steer, tau)
		if err != nil {
			return nil, err
		}
		bx, err := traffic.WindowBurstiness(n, shapedTrace, tau)
		if err != nil {
			return nil, err
		}
		t.AddRow(itoa(tau), itoa(fx), itoa(sx), itoa(bx))
	}
	return t, nil
}
