// Package adversary constructs the worst-case leaky-bucket traffics used in
// the paper's lower-bound proofs. Each construction returns an explicit
// traffic.Trace; replaying it through a fresh PPS (same configuration, same
// algorithm factory) reproduces the concentration scenario of the
// corresponding theorem.
//
// The proofs argue existentially — "there is a traffic leading the switch
// from configuration C to C_i" (Theorem 6). The adversary realizes that
// existence constructively: it drives a private scratch instance of the
// exact switch under attack, probes the demultiplexors' deterministic state
// machines through the demux.Prober interface, and emits cells until each
// targeted demultiplexor would send its next cell for the victim output
// through the victim plane. Because both the algorithm and the fabric are
// deterministic, the real run then retraces the scratch run exactly.
package adversary

import (
	"fmt"
	"math/rand"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/traffic"
)

// SteeringSpec parameterizes the Theorem 6 / Theorem 8 construction.
type SteeringSpec struct {
	// Fabric is the geometry of the switch under attack.
	Fabric fabric.Config
	// Factory builds the algorithm under attack; it must produce a
	// demux.Prober (deterministic fully-distributed algorithms do).
	Factory func(demux.Env) (demux.Algorithm, error)
	// Inputs is the set I of demultiplexors to align (Theorem 6's
	// d-partitioned set; all N inputs for Corollary 7).
	Inputs []cell.Port
	// Out is the victim output-port j.
	Out cell.Port
	// Plane is the victim plane k all steered inputs will converge on.
	Plane cell.Plane
	// ScrambleSlots optionally prepends admissible random traffic, so the
	// construction starts from a non-trivial applicable configuration C
	// rather than the reset state.
	ScrambleSlots cell.Time
	// ScrambleSeed seeds the scramble phase.
	ScrambleSeed int64
}

// Steering builds the LB traffic of Theorem 6: (1) optional scramble, (2)
// drain, (3) steer each targeted demultiplexor until its next choice for
// (i, Out) is Plane, (4) drain again, (5) a burst of len(Inputs) cells to
// Out, one per slot, from the aligned inputs. Phases 1-4 keep at most one
// cell per slot headed to any output, so the whole trace is (R, 0)
// leaky-bucket apart from the scramble (whose burstiness is reported by the
// harness).
func Steering(spec SteeringSpec) (*traffic.Trace, error) {
	if len(spec.Inputs) == 0 {
		return nil, fmt.Errorf("adversary: steering needs at least one input")
	}
	s, err := newScratch(spec.Fabric, spec.Factory)
	if err != nil {
		return nil, err
	}
	prober, ok := s.pps.Algorithm().(demux.Prober)
	if !ok {
		return nil, fmt.Errorf("adversary: algorithm %s does not expose WouldChoose; the steering construction applies to deterministic fully-distributed algorithms", s.pps.Algorithm().Name())
	}
	rp := cell.Time(spec.Fabric.RPrime)

	// Phase 1: scramble into an arbitrary applicable configuration.
	if spec.ScrambleSlots > 0 {
		rng := rand.New(rand.NewSource(spec.ScrambleSeed))
		for i := cell.Time(0); i < spec.ScrambleSlots; i++ {
			var as []traffic.Arrival
			usedOut := map[cell.Port]bool{}
			for in := 0; in < spec.Fabric.N; in++ {
				if rng.Float64() > 0.5 {
					continue
				}
				out := cell.Port(rng.Intn(spec.Fabric.N))
				if usedOut[out] {
					continue // keep the scramble burstless per output
				}
				usedOut[out] = true
				as = append(as, traffic.Arrival{In: cell.Port(in), Out: out})
			}
			if err := s.step(as); err != nil {
				return nil, err
			}
		}
		if err := s.drain(rp); err != nil {
			return nil, err
		}
	}

	// Phase 2: steer each input until its next choice is the victim plane.
	for _, in := range spec.Inputs {
		limit := 4*spec.Fabric.K + 4
		for iter := 0; ; iter++ {
			p, ok := prober.WouldChoose(in, spec.Out)
			if !ok {
				return nil, fmt.Errorf("adversary: %s cannot predict input %d", s.pps.Algorithm().Name(), in)
			}
			if p == spec.Plane {
				break
			}
			if iter >= limit {
				return nil, fmt.Errorf("adversary: input %d did not align on plane %d within %d cells (is the plane reachable for this input?)",
					in, spec.Plane, limit)
			}
			// One steering cell, then r'-1 idle slots so every gate is
			// free again and WouldChoose's all-gates-free assumption
			// stays exact.
			if err := s.step([]traffic.Arrival{{In: in, Out: spec.Out}}); err != nil {
				return nil, err
			}
			if err := s.idle(rp - 1); err != nil {
				return nil, err
			}
		}
	}

	// Phase 3: let every buffer in every plane drain (the proof's "no
	// operations" column in Figure 2).
	if err := s.drain(rp); err != nil {
		return nil, err
	}

	// Phase 4: the aligned burst — one cell per slot, rate exactly R
	// toward Out, zero burstiness.
	for _, in := range spec.Inputs {
		if err := s.step([]traffic.Arrival{{In: in, Out: spec.Out}}); err != nil {
			return nil, err
		}
	}
	return s.trace, nil
}

// scratch couples a trace under construction with a live simulation of it.
type scratch struct {
	pps   *fabric.PPS
	st    *cell.Stamper
	trace *traffic.Trace
	t     cell.Time
	deps  []cell.Cell
}

func newScratch(cfg fabric.Config, factory func(demux.Env) (demux.Algorithm, error)) (*scratch, error) {
	pps, err := fabric.New(cfg, factory)
	if err != nil {
		return nil, err
	}
	return &scratch{pps: pps, st: cell.NewStamper(), trace: traffic.NewTrace()}, nil
}

// step records the arrivals at the current slot and advances the scratch
// switch one slot.
func (s *scratch) step(as []traffic.Arrival) error {
	cells := make([]cell.Cell, 0, len(as))
	for _, a := range as {
		if err := s.trace.Add(s.t, a.In, a.Out); err != nil {
			return err
		}
		cells = append(cells, s.st.Stamp(cell.Flow{In: a.In, Out: a.Out}, s.t))
	}
	var err error
	s.deps, err = s.pps.Step(s.t, cells, s.deps[:0])
	if err != nil {
		return err
	}
	s.t++
	return nil
}

// idle advances n silent slots.
func (s *scratch) idle(n cell.Time) error {
	for i := cell.Time(0); i < n; i++ {
		if err := s.step(nil); err != nil {
			return err
		}
	}
	return nil
}

// drain idles until the scratch switch is empty, then a further extra slots
// so that every internal line is free again.
func (s *scratch) drain(extra cell.Time) error {
	for guard := 0; !s.pps.Drained(); guard++ {
		if guard > 1<<20 {
			return fmt.Errorf("adversary: scratch switch did not drain")
		}
		if err := s.step(nil); err != nil {
			return err
		}
	}
	return s.idle(extra)
}

// Concentration builds the bare Lemma 4 scenario: c cells for the same
// output arriving in c consecutive slots from c distinct inputs, with
// nothing else in flight. Against any algorithm whose fresh state maps the
// first cell of every input to the same plane (round-robin, partition and
// stale-CPA all do), the cells concentrate and the last departs around
// (c-1) * r' slots after the first, while the reference switch finishes in
// c slots.
func Concentration(n, c int, out cell.Port) (*traffic.Trace, error) {
	if c > n {
		return nil, fmt.Errorf("adversary: concentration of %d cells needs at least that many inputs, have %d", c, n)
	}
	tr := traffic.NewTrace()
	for i := 0; i < c; i++ {
		if err := tr.Add(cell.Time(i), cell.Port(i), out); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// HerdingSpec parameterizes the Theorem 10 construction against u-RT
// algorithms.
type HerdingSpec struct {
	// N is the switch size.
	N int
	// Out is the victim output.
	Out cell.Port
	// Slots is the burst duration; at most u slots stay inside the
	// algorithm's blind window.
	Slots cell.Time
	// PerSlot is the number of cells to Out per burst slot (<= N); the
	// trace's burstiness is Slots*PerSlot - Slots.
	PerSlot int
	// LeadIn prepends this many slots of single-cell traffic to Out so
	// the stale view is warm (non-empty) when the burst starts.
	LeadIn cell.Time
	// WitnessGap, when positive, appends one more cell on the first burst
	// input's flow this many slots after the burst ends — by then every
	// buffer has drained (callers size the gap from r' and the burst),
	// the witness departs immediately, and the flow's jitter exposes the
	// full concentration delay (the Lemma 4 part-2 device, as used in the
	// Theorem 10 bound on relative delay jitter).
	WitnessGap cell.Time
}

// Herding builds a burst that lands entirely inside a u-RT algorithm's
// blind window: every arriving input reconstructs the same stale picture,
// deterministically picks the same "least loaded" plane, and the burst
// concentrates — cells pile onto one plane at rate PerSlot per slot while
// the plane's output line carries one cell per r' slots.
func Herding(spec HerdingSpec) (*traffic.Trace, error) {
	if spec.PerSlot < 1 || spec.PerSlot > spec.N {
		return nil, fmt.Errorf("adversary: PerSlot %d outside [1, N=%d]", spec.PerSlot, spec.N)
	}
	if spec.Slots < 1 {
		return nil, fmt.Errorf("adversary: burst must last at least one slot")
	}
	tr := traffic.NewTrace()
	t := cell.Time(0)
	for ; t < spec.LeadIn; t++ {
		if err := tr.Add(t, cell.Port(int(t)%spec.N), spec.Out); err != nil {
			return nil, err
		}
	}
	next := 0
	for s := cell.Time(0); s < spec.Slots; s++ {
		for x := 0; x < spec.PerSlot; x++ {
			if err := tr.Add(t+s, cell.Port(next%spec.N), spec.Out); err != nil {
				return nil, err
			}
			next++
		}
	}
	if spec.WitnessGap > 0 {
		// The witness shares a flow with the most-delayed burst cell (the
		// last one injected), so the flow's jitter spans the full
		// concentration delay.
		lastIn := cell.Port((next - 1) % spec.N)
		at := t + spec.Slots + spec.WitnessGap
		if err := tr.Add(at, lastIn, spec.Out); err != nil {
			return nil, err
		}
	}
	return tr, nil
}
