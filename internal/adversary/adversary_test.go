package adversary

import (
	"strings"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func rrFactory(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerInput) }

func TestSteeringAlignsAllInputs(t *testing.T) {
	const n, k, rp = 8, 4, 2
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	var inputs []cell.Port
	for i := 0; i < n; i++ {
		inputs = append(inputs, cell.Port(i))
	}
	spec := SteeringSpec{
		Fabric:        cfg,
		Factory:       rrFactory,
		Inputs:        inputs,
		Out:           0,
		Plane:         2,
		ScrambleSlots: 30,
		ScrambleSeed:  99,
	}
	tr, err := Steering(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Replay on a fresh switch; the burst is the last n arrivals to Out.
	burstStart := tr.End() - cell.Time(n)
	var burstPlanes []cell.Plane
	res, err := harness.Run(cfg, rrFactory, tr, harness.Options{
		Validate: true,
		OnPPSDepart: func(c cell.Cell) {
			if c.Flow.Out == 0 && c.Arrive >= burstStart {
				burstPlanes = append(burstPlanes, c.Via)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(burstPlanes) != n {
		t.Fatalf("burst departures = %d, want %d", len(burstPlanes), n)
	}
	for i, p := range burstPlanes {
		if p != spec.Plane {
			t.Errorf("burst cell %d went through plane %d, want %d", i, p, spec.Plane)
		}
	}
	want := cell.Time((n - 1) * (rp - 1))
	if res.Report.MaxRQD < want {
		t.Errorf("MaxRQD = %d, want >= %d (Corollary 7 shape)", res.Report.MaxRQD, want)
	}
	// Relative delay jitter also blows up (Theorem 6 claims both).
	if res.Report.RDJ < want/2 {
		t.Errorf("RDJ = %d, expected a concentration-scale jitter", res.Report.RDJ)
	}
}

func TestSteeringBurstlessWithoutScramble(t *testing.T) {
	const n, k, rp = 6, 3, 3
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	var inputs []cell.Port
	for i := 0; i < n; i++ {
		inputs = append(inputs, cell.Port(i))
	}
	tr, err := Steering(SteeringSpec{Fabric: cfg, Factory: rrFactory, Inputs: inputs, Out: 1, Plane: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := traffic.MeasureSource(n, tr)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Errorf("Theorem 6 traffic must be burstless, measured B = %d", b)
	}
}

func TestSteeringStaticPartitionTheorem8(t *testing.T) {
	// N=8, K=4, r'=2, d=2 -> G=2 groups; plane 3 belongs to group 1,
	// used by inputs 1,3,5,7: |I| = N*d/K = 4.
	const n, k, rp, d = 8, 4, 2, 2
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, d) }
	inputs := []cell.Port{1, 3, 5, 7}
	tr, err := Steering(SteeringSpec{Fabric: cfg, Factory: factory, Inputs: inputs, Out: 2, Plane: 3, ScrambleSlots: 16, ScrambleSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(cfg, factory, tr, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := cell.Time((len(inputs) - 1) * (rp - 1))
	if res.Report.MaxRQD < want {
		t.Errorf("MaxRQD = %d, want >= %d (Theorem 8 shape: N/S inputs concentrate)", res.Report.MaxRQD, want)
	}
}

func TestSteeringRejectsNonProber(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 4, RPrime: 2}
	factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewRandom(e, 1) }
	_, err := Steering(SteeringSpec{Fabric: cfg, Factory: factory, Inputs: []cell.Port{0}, Out: 0, Plane: 0})
	if err == nil || !strings.Contains(err.Error(), "WouldChoose") {
		t.Errorf("randomized algorithm must be rejected: %v", err)
	}
}

func TestSteeringRejectsUnreachablePlane(t *testing.T) {
	// Input 0 is in group 0 (planes 0,1); plane 3 is unreachable for it.
	cfg := fabric.Config{N: 4, K: 4, RPrime: 2}
	factory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, 2) }
	_, err := Steering(SteeringSpec{Fabric: cfg, Factory: factory, Inputs: []cell.Port{0}, Out: 0, Plane: 3})
	if err == nil || !strings.Contains(err.Error(), "align") {
		t.Errorf("unreachable plane must be reported: %v", err)
	}
}

func TestSteeringNeedsInputs(t *testing.T) {
	if _, err := Steering(SteeringSpec{}); err == nil {
		t.Error("empty input set must be rejected")
	}
}

func TestConcentrationTrace(t *testing.T) {
	tr, err := Concentration(8, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 5 || tr.End() != 5 {
		t.Errorf("Count=%d End=%d", tr.Count(), tr.End())
	}
	b, _ := traffic.MeasureSource(8, tr)
	if b != 0 {
		t.Errorf("concentration trace should be burstless, B = %d", b)
	}
	if _, err := Concentration(3, 5, 0); err == nil {
		t.Error("c > n must be rejected")
	}
}

func TestConcentrationReproducesLemma4(t *testing.T) {
	const n, k, rp, c = 8, 4, 3, 6
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	tr, err := Concentration(n, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(cfg, rrFactory, tr, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh round-robin pointers all start at plane 0: full concentration.
	want := cell.Time((c - 1) * (rp - 1))
	if res.Report.MaxRQD != want {
		t.Errorf("MaxRQD = %d, want %d", res.Report.MaxRQD, want)
	}
}

func TestHerdingTrace(t *testing.T) {
	tr, err := Herding(HerdingSpec{N: 8, Out: 1, Slots: 3, PerSlot: 4, LeadIn: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 5+3*4 {
		t.Errorf("Count = %d", tr.Count())
	}
	// Burstiness: 4 cells/slot for 3 slots = 12 - 3 = 9 excess; lead-in
	// adds none.
	b, _ := traffic.MeasureSource(8, tr)
	if b != 9 {
		t.Errorf("burstiness = %d, want 9", b)
	}
}

func TestHerdingValidation(t *testing.T) {
	if _, err := Herding(HerdingSpec{N: 4, PerSlot: 5, Slots: 1}); err == nil {
		t.Error("PerSlot > N must be rejected")
	}
	if _, err := Herding(HerdingSpec{N: 4, PerSlot: 1, Slots: 0}); err == nil {
		t.Error("zero slots must be rejected")
	}
}

func TestScratchErrorPaths(t *testing.T) {
	// Factory errors surface from newScratch via Steering.
	badFactory := func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.Granularity(9)) }
	if _, err := Steering(SteeringSpec{
		Fabric:  fabric.Config{N: 2, K: 2, RPrime: 1},
		Factory: badFactory, Inputs: []cell.Port{0}, Out: 0, Plane: 0,
	}); err == nil {
		t.Error("factory error must propagate")
	}
	// Invalid fabric config too.
	if _, err := Steering(SteeringSpec{
		Fabric:  fabric.Config{N: 0, K: 2, RPrime: 1},
		Factory: rrFactory, Inputs: []cell.Port{0}, Out: 0, Plane: 0,
	}); err == nil {
		t.Error("fabric config error must propagate")
	}
}

func TestSteeringWithScrambleDrainsBeforeBurst(t *testing.T) {
	// The drain phase guarantees every burst cell finds empty planes: the
	// burst arrivals must be the last len(inputs) slots of the trace and
	// contiguous.
	cfg := fabric.Config{N: 6, K: 3, RPrime: 3, CheckInvariants: true}
	inputs := []cell.Port{0, 1, 2, 3, 4, 5}
	tr, err := Steering(SteeringSpec{
		Fabric: cfg, Factory: rrFactory, Inputs: inputs, Out: 2, Plane: 2,
		ScrambleSlots: 10, ScrambleSeed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := tr.End() - cell.Time(len(inputs))
	for i := 0; i < len(inputs); i++ {
		got := tr.Arrivals(start+cell.Time(i), nil)
		if len(got) != 1 || got[0].Out != 2 {
			t.Fatalf("burst slot %d: %v", i, got)
		}
	}
}

func TestHerdingConcentratesStaleCPA(t *testing.T) {
	// u-RT algorithm with a 6-slot blind window; a 3-slot burst of 4
	// cells/slot herds onto one plane. CPA with current information
	// handles the same trace with zero relative delay (S = 2).
	const n, k, rp, u = 8, 4, 2, 6
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	tr, err := Herding(HerdingSpec{N: n, Out: 0, Slots: 3, PerSlot: 4, LeadIn: 0})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := harness.Run(cfg,
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPA(e, u) },
		tr, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := harness.Run(cfg,
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) },
		tr, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Report.MaxRQD != 0 {
		t.Errorf("CPA should absorb the burst at S=2, MaxRQD = %d", fresh.Report.MaxRQD)
	}
	if stale.Report.MaxRQD <= fresh.Report.MaxRQD {
		t.Errorf("stale information must cost delay: stale %d vs cpa %d",
			stale.Report.MaxRQD, fresh.Report.MaxRQD)
	}
}
