// Package bvn implements Birkhoff–von Neumann decomposition of admissible
// rate matrices into convex combinations of permutation matrices, and the
// deficit weighted round-robin schedule that realizes such a decomposition
// as deterministic, burst-bounded cell traffic.
//
// The paper's traffic model admits any (R, B) leaky-bucket arrival process;
// a doubly-substochastic rate matrix lambda (row and column sums <= 1) is
// the canonical long-run description of admissible demand. By Birkhoff's
// theorem every doubly-stochastic matrix is a convex combination of
// permutations; a substochastic matrix is first padded with slack to a
// stochastic one (von Neumann), decomposed, and the slack cells simply emit
// nothing when scheduled. Scheduling the permutations with deficit-based
// weighted round-robin yields traffic whose per-port burstiness is bounded
// by the number of permutations used — a deterministic, tunable alternative
// to the Bernoulli sources in the experiment suite.
package bvn

import (
	"fmt"
	"math"
)

// Decomposition is a convex combination of permutations whose weighted sum
// covers the padded (doubly-stochastic) matrix; frac tells, per cell, what
// fraction of the padded rate is real demand (padding slack may land on
// cells that also carry demand, so this is a ratio rather than a flag).
type Decomposition struct {
	// Perms[i][r] is the column matched to row r in the i-th permutation.
	Perms [][]int
	// Weights[i] is the i-th coefficient; over a stochastic padded matrix
	// the weights sum to ~1.
	Weights []float64
	// frac[r][c] = demand(r,c) / (demand(r,c) + pad(r,c)); 0 for pure
	// slack cells. Consumers emit a cell for (r, c) only this fraction of
	// the times the cell is scheduled (deficit thinning).
	frac [][]float64
}

// RealFraction returns the fraction of cell (r, c)'s scheduled rate that is
// real demand.
func (d *Decomposition) RealFraction(r, c int) float64 { return d.frac[r][c] }

// Rate returns the total decomposition weight.
func (d *Decomposition) Rate() float64 {
	var s float64
	for _, w := range d.Weights {
		s += w
	}
	return s
}

// Reconstruct returns sum_i w_i P_i scaled by the real fractions — which
// must approximate the original matrix.
func (d *Decomposition) Reconstruct(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i, perm := range d.Perms {
		for r, c := range perm {
			out[r][c] += d.Weights[i] * d.frac[r][c]
		}
	}
	return out
}

// Decompose computes a BvN decomposition of an n x n doubly-substochastic
// matrix. Entries below tol (default 1e-9) are treated as zero. It returns
// an error for inadmissible demand (a row or column summing above 1).
func Decompose(lambda [][]float64, tol float64) (*Decomposition, error) {
	n := len(lambda)
	if n == 0 {
		return nil, fmt.Errorf("bvn: empty matrix")
	}
	if tol <= 0 {
		tol = 1e-9
	}
	rowSum := make([]float64, n)
	colSum := make([]float64, n)
	resid := make([][]float64, n)
	demand := make([][]float64, n)
	for i, row := range lambda {
		if len(row) != n {
			return nil, fmt.Errorf("bvn: row %d has %d entries, want %d", i, len(row), n)
		}
		resid[i] = make([]float64, n)
		demand[i] = make([]float64, n)
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("bvn: negative rate at (%d,%d)", i, j)
			}
			if v < tol {
				v = 0
			}
			resid[i][j] = v
			demand[i][j] = v
			rowSum[i] += v
			colSum[j] += v
		}
	}
	const eps = 1e-9
	for i := 0; i < n; i++ {
		if rowSum[i] > 1+eps {
			return nil, fmt.Errorf("bvn: row %d sums to %f > 1 (inadmissible demand)", i, rowSum[i])
		}
		if colSum[i] > 1+eps {
			return nil, fmt.Errorf("bvn: column %d sums to %f > 1 (inadmissible demand)", i, colSum[i])
		}
	}

	// Pad to doubly stochastic: while some row has slack, some column has
	// slack too (total deficits are equal); raise one (row, col) cell by
	// the smaller deficit. Each step saturates a row or a column, so at
	// most 2n steps run. Padding may land on cells that carry demand;
	// the real-fraction table below accounts for it.
	for {
		ri := -1
		for i := 0; i < n; i++ {
			if rowSum[i] < 1-eps {
				ri = i
				break
			}
		}
		if ri < 0 {
			break
		}
		ci := -1
		for j := 0; j < n; j++ {
			if colSum[j] < 1-eps {
				ci = j
				break
			}
		}
		if ci < 0 {
			return nil, fmt.Errorf("bvn: internal error: row deficit without column deficit")
		}
		add := math.Min(1-rowSum[ri], 1-colSum[ci])
		resid[ri][ci] += add
		rowSum[ri] += add
		colSum[ci] += add
	}

	// Real fraction per cell of the padded matrix.
	frac := make([][]float64, n)
	for i := range frac {
		frac[i] = make([]float64, n)
		for j := range frac[i] {
			if resid[i][j] > 0 {
				frac[i][j] = demand[i][j] / resid[i][j]
			}
		}
	}

	// Birkhoff peeling: perfect matching on the support, subtract the
	// minimum matched entry, repeat. Each round zeroes >= 1 entry.
	d := &Decomposition{frac: frac}
	for round := 0; round <= n*n+1; round++ {
		match, ok := perfectMatching(resid, tol)
		if !ok {
			return d, nil // residual is (numerically) zero
		}
		w := math.Inf(1)
		for r, c := range match {
			if resid[r][c] < w {
				w = resid[r][c]
			}
		}
		if w < tol {
			return d, nil
		}
		for r, c := range match {
			resid[r][c] -= w
		}
		d.Perms = append(d.Perms, match)
		d.Weights = append(d.Weights, w)
	}
	return nil, fmt.Errorf("bvn: decomposition did not converge (tolerance too small?)")
}

// perfectMatching finds a perfect matching on cells >= tol via augmenting
// paths; ok=false when the support has no perfect matching (for a
// doubly-stochastic residual this only happens when the residual is ~0).
func perfectMatching(m [][]float64, tol float64) ([]int, bool) {
	n := len(m)
	matchRow := make([]int, n)
	matchCol := make([]int, n)
	for i := range matchRow {
		matchRow[i] = -1
		matchCol[i] = -1
	}
	var try func(r int, seen []bool) bool
	try = func(r int, seen []bool) bool {
		for c := 0; c < n; c++ {
			if m[r][c] >= tol && !seen[c] {
				seen[c] = true
				if matchCol[c] < 0 || try(matchCol[c], seen) {
					matchRow[r] = c
					matchCol[c] = r
					return true
				}
			}
		}
		return false
	}
	for r := 0; r < n; r++ {
		if !try(r, make([]bool, n)) {
			return nil, false
		}
	}
	return matchRow, true
}

// Schedule selects one permutation per slot by deficit weighted round-robin
// over the permutations plus an idle pseudo-entry carrying the unpadded
// slack: every slot each entry earns its weight, the richest entry is
// served and pays one slot. Long-run service frequencies converge to the
// weights and each entry's service deviates from fluid by at most one slot
// per competitor — the burstiness bound for the resulting traffic.
type Schedule struct {
	d          *Decomposition
	credit     []float64
	idleCredit float64
	idleWeight float64
}

// NewSchedule returns a scheduler over the decomposition.
func NewSchedule(d *Decomposition) *Schedule {
	idle := 1 - d.Rate()
	if idle < 0 {
		idle = 0
	}
	return &Schedule{d: d, credit: make([]float64, len(d.Weights)), idleWeight: idle}
}

// Next returns the permutation index to serve this slot, or -1 for idle.
func (s *Schedule) Next() int {
	best, bestCredit := -1, 0.0
	for i, w := range s.d.Weights {
		s.credit[i] += w
		if best < 0 || s.credit[i] > bestCredit {
			best, bestCredit = i, s.credit[i]
		}
	}
	s.idleCredit += s.idleWeight
	if best < 0 || s.idleCredit > bestCredit {
		s.idleCredit -= 1
		return -1
	}
	s.credit[best] -= 1
	return best
}
