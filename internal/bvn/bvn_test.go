package bvn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposePermutationMatrix(t *testing.T) {
	lambda := [][]float64{
		{0, 1, 0},
		{0, 0, 1},
		{1, 0, 0},
	}
	d, err := Decompose(lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Perms) != 1 || math.Abs(d.Weights[0]-1) > 1e-9 {
		t.Fatalf("permutation matrix should decompose into itself: %v %v", d.Perms, d.Weights)
	}
	if d.Perms[0][0] != 1 || d.Perms[0][1] != 2 || d.Perms[0][2] != 0 {
		t.Errorf("wrong permutation: %v", d.Perms[0])
	}
}

func TestDecomposeUniform(t *testing.T) {
	// The uniform doubly-stochastic matrix 1/n needs exactly n
	// permutations of weight 1/n each.
	const n = 4
	lambda := make([][]float64, n)
	for i := range lambda {
		lambda[i] = make([]float64, n)
		for j := range lambda[i] {
			lambda[i][j] = 1.0 / n
		}
	}
	d, err := Decompose(lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Perms) != n {
		t.Errorf("uniform matrix used %d permutations, want %d", len(d.Perms), n)
	}
	if math.Abs(d.Rate()-1) > 1e-9 {
		t.Errorf("Rate = %f", d.Rate())
	}
	checkReconstruction(t, lambda, d)
}

func TestDecomposeSubstochastic(t *testing.T) {
	lambda := [][]float64{
		{0.5, 0},
		{0, 0},
	}
	d, err := Decompose(lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkReconstruction(t, lambda, d)
	if d.RealFraction(0, 0) <= 0 {
		t.Error("cell (0,0) carries demand; fraction must be positive")
	}
	if d.RealFraction(0, 1) != 0 && d.RealFraction(1, 0) != 0 {
		t.Error("pure slack cells must have zero real fraction")
	}
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(nil, 0); err == nil {
		t.Error("empty matrix must be rejected")
	}
	if _, err := Decompose([][]float64{{0.5}, {0.5, 0.5}}, 0); err == nil {
		t.Error("ragged matrix must be rejected")
	}
	if _, err := Decompose([][]float64{{-0.1}}, 0); err == nil {
		t.Error("negative rate must be rejected")
	}
	if _, err := Decompose([][]float64{{0.8, 0.8}, {0, 0}}, 0); err == nil {
		t.Error("row sum > 1 must be rejected")
	}
	if _, err := Decompose([][]float64{{0.8, 0}, {0.8, 0}}, 0); err == nil {
		t.Error("column sum > 1 must be rejected")
	}
}

func checkReconstruction(t *testing.T, lambda [][]float64, d *Decomposition) {
	t.Helper()
	n := len(lambda)
	rec := d.Reconstruct(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(rec[i][j]-lambda[i][j]) > 1e-6 {
				t.Fatalf("reconstruction (%d,%d) = %f, want %f", i, j, rec[i][j], lambda[i][j])
			}
		}
	}
}

// Property: any random doubly-substochastic matrix decomposes and
// reconstructs to itself on real cells.
func TestDecomposeReconstructsProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 2
		rng := rand.New(rand.NewSource(seed))
		// Build a substochastic matrix as a random convex combination of
		// random permutations, scaled by a random load.
		lambda := make([][]float64, n)
		for i := range lambda {
			lambda[i] = make([]float64, n)
		}
		load := 0.2 + 0.8*rng.Float64()
		remaining := load
		for remaining > 1e-3 {
			w := remaining * (0.2 + 0.8*rng.Float64())
			perm := rng.Perm(n)
			for r, c := range perm {
				lambda[r][c] += w
			}
			remaining -= w
		}
		d, err := Decompose(lambda, 1e-7)
		if err != nil {
			return false
		}
		rec := d.Reconstruct(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(rec[i][j]-lambda[i][j]) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScheduleFrequenciesConverge(t *testing.T) {
	lambda := [][]float64{
		{0.5, 0.25},
		{0.25, 0.5},
	}
	d, err := Decompose(lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(d)
	const slots = 10000
	counts := make([]int, len(d.Perms))
	idle := 0
	for i := 0; i < slots; i++ {
		if k := s.Next(); k >= 0 {
			counts[k]++
		} else {
			idle++
		}
	}
	for i, w := range d.Weights {
		got := float64(counts[i]) / slots
		if math.Abs(got-w) > 0.01 {
			t.Errorf("permutation %d served at %f, want %f", i, got, w)
		}
	}
	wantIdle := 1 - d.Rate()
	if got := float64(idle) / slots; math.Abs(got-wantIdle) > 0.01 {
		t.Errorf("idle fraction %f, want %f", got, wantIdle)
	}
}

func TestScheduleDeficitBounded(t *testing.T) {
	// Deficit WRR: served[i] never lags fluid w_i*t by more than ~1+#perms.
	lambda := [][]float64{
		{0.3, 0.3, 0.2},
		{0.3, 0.2, 0.3},
		{0.2, 0.3, 0.3},
	}
	d, err := Decompose(lambda, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(d)
	served := make([]int, len(d.Perms))
	slack := float64(len(d.Perms) + 2)
	for slot := 1; slot <= 5000; slot++ {
		if k := s.Next(); k >= 0 {
			served[k]++
		}
		for i, w := range d.Weights {
			fluid := w * float64(slot)
			if float64(served[i]) < fluid-slack || float64(served[i]) > fluid+slack {
				t.Fatalf("slot %d: perm %d served %d, fluid %f", slot, i, served[i], fluid)
			}
		}
	}
}
