package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/faults"
	"ppsim/internal/obs"
	"ppsim/internal/traffic"
)

// faultCases are the degraded-mode scenarios the equivalence matrix runs:
// a plane dead from before slot 0, a mid-run transient outage, and both at
// once with the pre-failed plane recovering mid-run (the schedule's leading
// Recover un-fails it).
var faultCases = []struct {
	name  string
	fail  []cell.Plane
	sched func() *faults.Schedule
}{
	{"prefailed", []cell.Plane{3}, nil},
	{"outage", nil, func() *faults.Schedule {
		return faults.NewSchedule().Outage(0, 40, 120)
	}},
	{"prefailed+outage", []cell.Plane{3}, func() *faults.Schedule {
		return faults.NewSchedule().RecoverAt(3, 64).Outage(0, 40, 120)
	}},
}

// TestParallelMatchesSerialFaults extends the determinism contract to
// degraded runs: with planes failing and recovering mid-run under the
// DropCount policy, every algorithm must produce a stage-parallel Result —
// including the drop totals and the per-plane/per-input breakdowns — that
// is bit-identical to the serial engine's.
func TestParallelMatchesSerialFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault equivalence matrix skipped in -short mode")
	}
	const n = 16
	horizon := cell.Time(192)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	for _, fc := range faultCases {
		for _, alg := range matrixAlgs {
			run := func(workers int) Result {
				src := traffic.NewBernoulli(n, 0.6, horizon, 11)
				opts := Options{
					Validate: true, Utilization: true, Workers: workers,
					FailPlanes: fc.fail, FaultPolicy: faults.DropCount,
				}
				if fc.sched != nil {
					opts.Faults = fc.sched()
				}
				res, err := Run(cfg, alg.mk, src, opts)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", fc.name, alg.name, workers, err)
				}
				return res
			}
			serial := run(0)
			if serial.Report.Cells == 0 {
				t.Fatalf("%s/%s: empty serial run", fc.name, alg.name)
			}
			if serial.Drops == 0 {
				t.Fatalf("%s/%s: degraded run recorded no drops", fc.name, alg.name)
			}
			for _, w := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/w%d", fc.name, alg.name, w), func(t *testing.T) {
					if par := run(w); !reflect.DeepEqual(stripEngine(serial), stripEngine(par)) {
						t.Errorf("degraded parallel result diverges from serial\nserial:   %+v\nparallel: %+v", serial, par)
					}
				})
			}
		}
	}
}

// TestFaultAwareMatchesSerial runs the faultaware wrapper through the same
// degraded scenario on both engines: masking changes which planes the inner
// algorithm sees, and that masked view must also be deterministic.
func TestFaultAwareMatchesSerial(t *testing.T) {
	const n = 16
	horizon := cell.Time(192)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	mk := func(e demux.Env) (demux.Algorithm, error) {
		return demux.NewFaultAware(e, func(e demux.Env) (demux.Algorithm, error) {
			return demux.NewRoundRobin(e, demux.PerInput)
		})
	}
	run := func(workers int) Result {
		src := traffic.NewBernoulli(n, 0.6, horizon, 11)
		res, err := Run(cfg, mk, src, Options{
			Validate: true, Utilization: true, Workers: workers,
			Faults:      faults.NewSchedule().Outage(0, 40, 120),
			FaultPolicy: faults.DropCount,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(0)
	if serial.AlgorithmName != "faultaware(rr)" {
		t.Fatalf("AlgorithmName = %q, want faultaware(rr)", serial.AlgorithmName)
	}
	// Masking routes around the outage, so only plane 0's backlog at the
	// failure instant can drop — never a fresh dispatch.
	if serial.Drops > uint64(serial.Report.Cells/10) {
		t.Errorf("faultaware drops = %d of %d cells; masking should prevent dead-plane dispatches",
			serial.Drops, serial.Report.Cells)
	}
	for _, w := range []int{1, 4} {
		if par := run(w); !reflect.DeepEqual(stripEngine(serial), stripEngine(par)) {
			t.Errorf("workers=%d: faultaware result diverges from serial", w)
		}
	}
}

// TestAbortEmptyScheduleInert is the golden no-regression contract: the
// Abort policy with an empty schedule must leave every algorithm's Result
// bit-identical to a run with no fault configuration at all (no new code
// executes on the hot path, so nothing can shift).
func TestAbortEmptyScheduleInert(t *testing.T) {
	const n = 8
	horizon := cell.Time(128)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	for _, alg := range matrixAlgs {
		run := func(opts Options) Result {
			src := traffic.NewBernoulli(n, 0.6, horizon, 11)
			res, err := Run(cfg, alg.mk, src, opts)
			if err != nil {
				t.Fatalf("%s: %v", alg.name, err)
			}
			return res
		}
		bare := run(Options{Validate: true, Utilization: true})
		configured := run(Options{
			Validate: true, Utilization: true,
			Faults:      faults.NewSchedule(),
			FaultPolicy: faults.Abort,
		})
		if !reflect.DeepEqual(bare, configured) {
			t.Errorf("%s: Abort + empty schedule perturbs the run\nbare:       %+v\nconfigured: %+v",
				alg.name, bare, configured)
		}
	}
}

// evDropCounter counts EvDrop events off the tracer stream.
type evDropCounter struct{ n uint64 }

func (c *evDropCounter) Emit(ev obs.Event) {
	if ev.Kind == obs.EvDrop {
		c.n++
	}
}

// TestDropsMatchTracerEvDrops ties the three drop ledgers together: the
// tracer's EvDrop stream, Result.Drops, and the per-plane/per-input
// breakdowns must all agree — and the stage-parallel engine must report the
// same totals as the traced serial run.
func TestDropsMatchTracerEvDrops(t *testing.T) {
	const n = 16
	horizon := cell.Time(192)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	sched := func() *faults.Schedule { return faults.NewSchedule().Outage(1, 30, 110) }
	run := func(workers int, sink obs.Sink) Result {
		src := traffic.NewBernoulli(n, 0.6, horizon, 11)
		opts := Options{
			Workers:     workers,
			Faults:      sched(),
			FaultPolicy: faults.DropCount,
		}
		if sink != nil {
			opts.Tracer = obs.NewTracer(sink)
		}
		res, err := Run(cfg, rrFactory, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	counter := &evDropCounter{}
	traced := run(0, counter)
	if traced.Drops == 0 {
		t.Fatal("outage run recorded no drops")
	}
	if counter.n != traced.Drops {
		t.Errorf("tracer saw %d EvDrop events, Result.Drops = %d", counter.n, traced.Drops)
	}
	var perPlane, perInput uint64
	for _, d := range traced.Report.DropsPerPlane {
		perPlane += d
	}
	for _, d := range traced.Report.DropsPerInput {
		perInput += d
	}
	if perPlane != traced.Drops || perInput != traced.Drops {
		t.Errorf("drop breakdowns disagree: perPlane=%d perInput=%d total=%d", perPlane, perInput, traced.Drops)
	}
	if parallel := run(4, nil); parallel.Drops != traced.Drops {
		t.Errorf("parallel run drops = %d, traced serial = %d", parallel.Drops, traced.Drops)
	}
}

// TestFailPlanesDeduped: duplicate IDs in FailPlanes apply once and leave
// the Result identical to the deduplicated list.
func TestFailPlanesDeduped(t *testing.T) {
	const n = 8
	horizon := cell.Time(96)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, CheckInvariants: true}
	run := func(planes []cell.Plane) Result {
		src := traffic.NewBernoulli(n, 0.5, horizon, 3)
		res, err := Run(cfg, rrFactory, src, Options{
			FailPlanes: planes, FaultPolicy: faults.DropCount,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	once := run([]cell.Plane{2})
	twice := run([]cell.Plane{2, 2, 2})
	if !reflect.DeepEqual(once, twice) {
		t.Errorf("duplicate FailPlanes changed the run\nonce:  %+v\ntwice: %+v", once, twice)
	}
}

// TestFailPlanesConsolidatedError: every out-of-range ID is reported in one
// error, before any plane is failed.
func TestFailPlanesConsolidatedError(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 4, RPrime: 2}
	src := traffic.NewBernoulli(4, 0.5, 16, 1)
	_, err := Run(cfg, rrFactory, src, Options{
		FailPlanes: []cell.Plane{1, 9, -1, 2, 17},
	})
	if err == nil {
		t.Fatal("out-of-range FailPlanes accepted")
	}
	for _, want := range []string{"9", "-1", "17", "0..3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestFaultSlotAllocFree extends the allocation guard to degraded runs:
// once a DropCount schedule's events have all fired (drops recorded, plane
// recovered), the steady-state slot must still not touch the heap — the
// fault runtime's exhausted cursor is one bounds check, and every drop-side
// structure (gap heaps, skip sets, drop counters) has reached its
// steady-state footprint during warm-up.
func TestFaultSlotAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; guard only meaningful on plain builds")
	}
	const warm, window = 4096, 512
	horizon := cell.Time(warm + window + 16)
	cfg := benchCfg()
	cfg.Faults = faults.NewSchedule().Outage(0, 100, 2000)
	cfg.FaultPolicy = faults.DropCount
	s := newSlotStepperCfg(t, cfg, traffic.NewBernoulli(cfg.N, 0.6, horizon, 1))
	s.rec.Reserve(cfg.N * int(horizon))
	for s.slot < warm {
		s.step()
	}
	if s.rec.Drops() == 0 {
		t.Fatal("warm-up outage recorded no drops")
	}
	allocs := testing.AllocsPerRun(window, s.step)
	if allocs != 0 {
		t.Errorf("degraded steady-state slot allocates: %.2f allocs/slot, want 0", allocs)
	}
}
