package harness

import (
	"testing"
	"time"

	"ppsim/internal/cell"
	"ppsim/internal/fabric"
	"ppsim/internal/metrics"
	"ppsim/internal/obs"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

// benchCfg is the hot-loop workload: checks off (the throughput
// configuration), moderate load, fixed seed so both variants run identical
// traffic.
func benchCfg() fabric.Config {
	return fabric.Config{N: 16, K: 8, RPrime: 2, CheckInvariants: false}
}

func benchRun(b testing.TB, opts Options) {
	src := traffic.NewBernoulli(16, 0.6, 2000, 1)
	res, err := Run(benchCfg(), rrFactory, src, opts)
	if err != nil {
		b.Fatal(err)
	}
	if res.Report.Cells == 0 {
		b.Fatal("empty run")
	}
}

// BenchmarkHarnessBaseline is the uninstrumented hot path: invariants off,
// no tracer, no probes, no utilization scan.
func BenchmarkHarnessBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{})
	}
}

// BenchmarkHarnessIdleInstrumentation is the same run with the
// instrumentation layer attached but off: a null-sink tracer (a cached
// single branch per fabric site) and no probes. The guard test asserts it
// stays within a few percent of the baseline.
func BenchmarkHarnessIdleInstrumentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{Tracer: obs.NewTracer(obs.NullSink{})})
	}
}

// BenchmarkHarnessActiveProbes prices the full standard probe set sampling
// every slot — the cost ceiling, recorded so future PRs see the perf
// trajectory (CI runs these with -benchtime=1x, non-gating).
func BenchmarkHarnessActiveProbes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{Probes: obs.StandardProbes(16, 8, 1, 1<<15)})
	}
}

// BenchmarkHarnessActiveTracer prices a live ring-sink tracer.
func BenchmarkHarnessActiveTracer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{Tracer: obs.NewTracer(obs.NewRingSink(1 << 12))})
	}
}

// slotStepper replicates Drive's per-slot operations (arrivals, PPS step,
// shadow step, departure recording) against shared scratch buffers, so
// tests and benchmarks can meter individual slots — Drive itself only
// exposes whole runs.
type slotStepper struct {
	tb                  testing.TB
	pps                 *fabric.PPS
	sh                  *shadow.Switch
	st                  *cell.Stamper
	rec                 *metrics.Recorder
	src                 traffic.Source
	buf                 []traffic.Arrival
	deps, shDeps, cells []cell.Cell
	slot                cell.Time
	// tel/telPrev, when set, replicate Drive's live-telemetry path: a tick
	// per slot and a histogram delta-flush at the flush stride.
	tel     *obs.Telemetry
	telPrev *obs.DelaySet
}

func newSlotStepper(tb testing.TB, src traffic.Source) *slotStepper {
	return newSlotStepperCfg(tb, benchCfg(), src)
}

func newSlotStepperCfg(tb testing.TB, cfg fabric.Config, src traffic.Source) *slotStepper {
	pps, err := fabric.New(cfg, rrFactory)
	if err != nil {
		tb.Fatal(err)
	}
	return &slotStepper{
		tb: tb, pps: pps, sh: shadow.New(cfg.N),
		st: cell.NewStamper(), rec: metrics.NewRecorder(), src: src,
	}
}

func (s *slotStepper) step() {
	s.cells = s.cells[:0]
	s.buf = s.src.Arrivals(s.slot, s.buf[:0])
	for _, a := range s.buf {
		s.cells = append(s.cells, s.st.Stamp(cell.Flow{In: a.In, Out: a.Out}, s.slot))
	}
	var err error
	s.deps, err = s.pps.Step(s.slot, s.cells, s.deps[:0])
	if err != nil {
		s.tb.Fatal(err)
	}
	for _, d := range s.deps {
		s.rec.PPSDepart(d)
	}
	for _, d := range s.pps.SlotDrops() {
		s.rec.PPSDrop(d)
	}
	s.shDeps = s.sh.Step(s.slot, s.cells, s.shDeps[:0])
	for _, d := range s.shDeps {
		s.rec.ShadowDepart(d)
	}
	if s.tel != nil {
		s.tel.Tick(int64(s.slot), s.pps.Backlog(), s.rec.Matched(), s.rec.Drops(), s.rec.AdmittedTotal(), s.rec.RejectedTotal(), s.rec.ExpiredTotal())
		if s.slot%telemetryFlushStride == 0 {
			s.tel.ObserveDelays(s.rec.Delays(), s.telPrev)
		}
	}
	s.slot++
}

// attachTelemetry wires a live telemetry aggregator into the stepper, as
// Drive would.
func (s *slotStepper) attachTelemetry() {
	s.tel = obs.NewTelemetry()
	s.telPrev = obs.NewDelaySet()
}

// TestSteadyStateSlotAllocFree is the allocation guard: with checks,
// tracing and probes all disabled, a slot of the drained-steady-state
// engine must not touch the heap. The warm-up drives every lazily-built
// structure (flow maps, ring capacities, per-flow heaps) to its
// steady-state footprint, and Recorder.Reserve removes the amortized
// growth of the per-cell tables, so any allocation in the measured window
// is a regression on the hot path. Percentile recording (the recorder's
// streaming delay histograms are always on) and the live-telemetry tick +
// delta-flush path are included: the measured window straddles a flush
// stride, so the O(buckets) fold is exercised too.
func TestSteadyStateSlotAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; guard only meaningful on plain builds")
	}
	const warm, window = 4096, 512
	horizon := cell.Time(warm + window + 16)
	s := newSlotStepper(t, traffic.NewBernoulli(benchCfg().N, 0.6, horizon, 1))
	s.attachTelemetry()
	s.rec.Reserve(benchCfg().N * int(horizon))
	for s.slot < warm {
		s.step()
	}
	allocs := testing.AllocsPerRun(window, s.step)
	if allocs != 0 {
		t.Errorf("steady-state slot allocates: %.2f allocs/slot, want 0", allocs)
	}
}

// TestParallelSlotAllocFree is the same guard for the stage-parallel
// engine: with a 4-worker pool executing stages 3 and 4, the steady-state
// slot must still not touch the heap — the pool is spawned once in
// fabric.New, the per-slot handoff is a mailbox word store plus a
// non-blocking token toss per worker (no channel of jobs, no WaitGroup),
// and the batched mux path moves 32-bit refs through the sharded columnar
// cell store, whose slabs and freelists reach a fixed point during warm-up.
// The load keeps the store live through the measured window (asserted), so
// the 0-allocs figure covers Put/At/Free recycling, not an idle arena.
func TestParallelSlotAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; guard only meaningful on plain builds")
	}
	const warm, window = 4096, 512
	horizon := cell.Time(warm + window + 16)
	cfg := benchCfg()
	cfg.Workers = 4
	s := newSlotStepperCfg(t, cfg, traffic.NewBernoulli(cfg.N, 0.6, horizon, 1))
	s.attachTelemetry()
	defer s.pps.Close()
	if s.pps.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", s.pps.Workers())
	}
	if got := s.pps.ShardPorts(); len(got) != 4 {
		t.Fatalf("ShardPorts() = %v, want 4 shards", got)
	}
	s.rec.Reserve(cfg.N * int(horizon))
	for s.slot < warm {
		s.step()
	}
	if s.pps.Backlog() == 0 {
		t.Fatal("warm-up drained the switch; the window would measure an idle store")
	}
	allocs := testing.AllocsPerRun(window, s.step)
	if allocs != 0 {
		t.Errorf("parallel steady-state slot allocates: %.2f allocs/slot, want 0", allocs)
	}
}

// BenchmarkHarnessSteadyStateSlot prices one steady-state slot (allocs/op
// should read 0 — the guard test above enforces it).
func BenchmarkHarnessSteadyStateSlot(b *testing.B) {
	horizon := cell.Time(b.N + 4096 + 16)
	s := newSlotStepper(b, traffic.NewBernoulli(benchCfg().N, 0.6, horizon, 1))
	s.rec.Reserve(benchCfg().N * int(horizon))
	for s.slot < 4096 {
		s.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

// TestIdleInstrumentationOverheadGuard asserts the instrumented-but-idle
// hot path stays close to the uninstrumented baseline. The design target
// is ~5%; the assertion allows 25% because CI timing noise on a ~10ms
// workload easily exceeds the real gap — the benchmarks above report the
// precise ratio. Min-of-rounds filters scheduler interference.
func TestIdleInstrumentationOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short mode")
	}
	measure := func(opts Options) time.Duration {
		start := time.Now()
		benchRun(t, opts)
		return time.Since(start)
	}
	idleOpts := func() Options { return Options{Tracer: obs.NewTracer(obs.NullSink{})} }
	// Warm up both paths once, then interleave rounds and keep the minima.
	measure(Options{})
	measure(idleOpts())
	base, idle := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		if d := measure(Options{}); d < base {
			base = d
		}
		if d := measure(idleOpts()); d < idle {
			idle = d
		}
	}
	ratio := float64(idle) / float64(base)
	t.Logf("baseline=%v idle-instrumented=%v ratio=%.3f (target ~1.05)", base, idle, ratio)
	if ratio > 1.25 {
		t.Errorf("idle instrumentation overhead ratio %.3f exceeds guard threshold 1.25 (baseline %v, instrumented %v)",
			ratio, base, idle)
	}
}
