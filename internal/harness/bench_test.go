package harness

import (
	"testing"
	"time"

	"ppsim/internal/fabric"
	"ppsim/internal/obs"
	"ppsim/internal/traffic"
)

// benchCfg is the hot-loop workload: checks off (the throughput
// configuration), moderate load, fixed seed so both variants run identical
// traffic.
func benchCfg() fabric.Config {
	return fabric.Config{N: 16, K: 8, RPrime: 2, CheckInvariants: false}
}

func benchRun(b testing.TB, opts Options) {
	src := traffic.NewBernoulli(16, 0.6, 2000, 1)
	res, err := Run(benchCfg(), rrFactory, src, opts)
	if err != nil {
		b.Fatal(err)
	}
	if res.Report.Cells == 0 {
		b.Fatal("empty run")
	}
}

// BenchmarkHarnessBaseline is the uninstrumented hot path: invariants off,
// no tracer, no probes, no utilization scan.
func BenchmarkHarnessBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{})
	}
}

// BenchmarkHarnessIdleInstrumentation is the same run with the
// instrumentation layer attached but off: a null-sink tracer (a cached
// single branch per fabric site) and no probes. The guard test asserts it
// stays within a few percent of the baseline.
func BenchmarkHarnessIdleInstrumentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{Tracer: obs.NewTracer(obs.NullSink{})})
	}
}

// BenchmarkHarnessActiveProbes prices the full standard probe set sampling
// every slot — the cost ceiling, recorded so future PRs see the perf
// trajectory (CI runs these with -benchtime=1x, non-gating).
func BenchmarkHarnessActiveProbes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{Probes: obs.StandardProbes(16, 8, 1, 1<<15)})
	}
}

// BenchmarkHarnessActiveTracer prices a live ring-sink tracer.
func BenchmarkHarnessActiveTracer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, Options{Tracer: obs.NewTracer(obs.NewRingSink(1 << 12))})
	}
}

// TestIdleInstrumentationOverheadGuard asserts the instrumented-but-idle
// hot path stays close to the uninstrumented baseline. The design target
// is ~5%; the assertion allows 25% because CI timing noise on a ~10ms
// workload easily exceeds the real gap — the benchmarks above report the
// precise ratio. Min-of-rounds filters scheduler interference.
func TestIdleInstrumentationOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short mode")
	}
	measure := func(opts Options) time.Duration {
		start := time.Now()
		benchRun(t, opts)
		return time.Since(start)
	}
	idleOpts := func() Options { return Options{Tracer: obs.NewTracer(obs.NullSink{})} }
	// Warm up both paths once, then interleave rounds and keep the minima.
	measure(Options{})
	measure(idleOpts())
	base, idle := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		if d := measure(Options{}); d < base {
			base = d
		}
		if d := measure(idleOpts()); d < idle {
			idle = d
		}
	}
	ratio := float64(idle) / float64(base)
	t.Logf("baseline=%v idle-instrumented=%v ratio=%.3f (target ~1.05)", base, idle, ratio)
	if ratio > 1.25 {
		t.Errorf("idle instrumentation overhead ratio %.3f exceeds guard threshold 1.25 (baseline %v, instrumented %v)",
			ratio, base, idle)
	}
}
