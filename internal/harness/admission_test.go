package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ppsim/internal/admission"
	"ppsim/internal/cell"
	"ppsim/internal/fabric"
	"ppsim/internal/obs"
	"ppsim/internal/traffic"
)

func mustAdmission(t *testing.T, spec string) *admission.Spec {
	t.Helper()
	s, err := admission.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return s
}

// TestAlwaysAdmitInert is the admission analogue of
// TestAbortEmptyScheduleInert: the always-admit default — whether left nil
// or configured as the explicit empty spec — must leave every algorithm's
// Result bit-identical to a run with no admission configuration at all.
func TestAlwaysAdmitInert(t *testing.T) {
	const n = 8
	horizon := cell.Time(128)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	for _, alg := range matrixAlgs {
		run := func(opts Options) Result {
			src := traffic.NewBernoulli(n, 0.6, horizon, 11)
			res, err := Run(cfg, alg.mk, src, opts)
			if err != nil {
				t.Fatalf("%s: %v", alg.name, err)
			}
			return res
		}
		bare := run(Options{Validate: true, Utilization: true})
		configured := run(Options{
			Validate: true, Utilization: true,
			Admission: mustAdmission(t, "always"),
		})
		if !reflect.DeepEqual(bare, configured) {
			t.Errorf("%s: always-admit spec perturbs the run\nbare:       %+v\nconfigured: %+v",
				alg.name, bare, configured)
		}
		if bare.Report.Offered != bare.Report.Admitted || bare.Report.Offered == 0 {
			t.Errorf("%s: bare run offered=%d admitted=%d, want equal and non-zero",
				alg.name, bare.Report.Offered, bare.Report.Admitted)
		}
		if bare.OnTimeFraction != 1.0 {
			t.Errorf("%s: clean run on-time fraction = %v, want 1.0", alg.name, bare.OnTimeFraction)
		}
	}
}

// admissionCases are the policy scenarios the engine-equivalence matrix
// runs: a binding per-input bucket, an aggregate bucket, deadline-drop on
// deadline-stamped traffic, and all three at once.
var admissionCases = []struct {
	name     string
	spec     string
	deadline cell.Time // 0: plain source, else WithDeadline(src, deadline)
}{
	{"token-bucket", "rate:1/3,burst:2", 0},
	{"aggregate", "agg-rate:2,agg-burst:4", 0},
	{"deadline", "deadline", 24},
	{"combined", "rate:1/2,burst:4,agg-rate:3,agg-burst:8,deadline", 24},
}

// TestAdmissionMatchesSerialMatrix extends the determinism contract to
// admission-active runs: with token buckets refusing cells and deadlines
// expiring them, every algorithm and worker count must still produce a
// stage-parallel Result bit-identical to the serial engine's — drop,
// rejection and expiry accounting included.
func TestAdmissionMatchesSerialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("admission equivalence matrix skipped in -short mode")
	}
	const n = 16
	horizon := cell.Time(192)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	for _, ac := range admissionCases {
		for _, alg := range matrixAlgs {
			run := func(workers int) Result {
				var src traffic.Source = traffic.NewBernoulli(n, 0.8, horizon, 11)
				if ac.deadline > 0 {
					src = traffic.WithDeadline(src, ac.deadline)
				}
				res, err := Run(cfg, alg.mk, src, Options{
					Validate: true, Utilization: true, Workers: workers,
					Admission: mustAdmission(t, ac.spec),
				})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", ac.name, alg.name, workers, err)
				}
				return res
			}
			serial := run(0)
			if serial.Report.Cells == 0 {
				t.Fatalf("%s/%s: empty serial run", ac.name, alg.name)
			}
			if rep := serial.Report; rep.Offered != rep.Admitted+rep.Rejected+rep.ExpiredAdmit {
				t.Fatalf("%s/%s: admission leak: offered=%d admitted=%d rejected=%d expiredAdmit=%d",
					ac.name, alg.name, rep.Offered, rep.Admitted, rep.Rejected, rep.ExpiredAdmit)
			}
			if strings.Contains(ac.spec, "rate") && serial.Report.Rejected == 0 {
				t.Fatalf("%s/%s: overloaded token-bucket run rejected nothing", ac.name, alg.name)
			}
			for _, w := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/w%d", ac.name, alg.name, w), func(t *testing.T) {
					if par := run(w); !reflect.DeepEqual(stripEngine(serial), stripEngine(par)) {
						t.Errorf("admission-active parallel result diverges from serial\nserial:   %+v\nparallel: %+v", serial, par)
					}
				})
			}
		}
	}
}

// TestAdmissionMatchesSteppedEngines runs the admission cases through the
// fast-forward and event cores against the stepped oracle on sparse bursty
// traffic (so slots actually get elided): the lazy closed-form token refill
// must make exactly the decisions per-slot stepping would.
func TestAdmissionMatchesSteppedEngines(t *testing.T) {
	const n = 16
	horizon := cell.Time(512)
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	for _, ac := range admissionCases {
		run := func(eng Engine, ff bool) (Result, cell.Time) {
			inner, err := traffic.NewOnOff(n, 2, 24, horizon, 5)
			if err != nil {
				t.Fatal(err)
			}
			var src traffic.Source = inner
			if ac.deadline > 0 {
				src = traffic.WithDeadline(src, ac.deadline)
			}
			var elided cell.Time
			res, err := Run(cfg, rrFactory, src, Options{
				Validate: true, Utilization: true,
				Engine: eng, FastForward: ff,
				Admission:     mustAdmission(t, ac.spec),
				OnFastForward: func(from, to cell.Time) { elided += to - from },
			})
			if err != nil {
				t.Fatalf("%s engine=%v: %v", ac.name, eng, err)
			}
			return res, elided
		}
		stepped, _ := run(EngineStepped, false)
		if stepped.Report.Cells == 0 {
			t.Fatalf("%s: empty stepped run", ac.name)
		}
		for _, variant := range []struct {
			name string
			eng  Engine
			ff   bool
		}{
			{"fastforward", EngineStepped, true},
			{"event", EngineEvent, false},
		} {
			t.Run(ac.name+"/"+variant.name, func(t *testing.T) {
				res, elided := run(variant.eng, variant.ff)
				if elided == 0 {
					t.Errorf("sparse run elided no slots; the lazy-refill path was not exercised")
				}
				if !reflect.DeepEqual(stripEngine(stepped), stripEngine(res)) {
					t.Errorf("%s result diverges from stepped\nstepped: %+v\ngot:     %+v", variant.name, stepped, res)
				}
			})
		}
	}
}

// TestDeadlineDropConservation drives an overloaded deadline run and checks
// the full balance the ISSUE demands: admitted == delivered + dropped +
// expired-at-resequencing, on top of the admission-side identity, with the
// expiries visible in the probe series and late deliveries excluded from
// delay statistics.
func TestDeadlineDropConservation(t *testing.T) {
	const n = 8
	horizon := cell.Time(256)
	cfg := fabric.Config{N: n, K: 2, RPrime: 1, BufferCap: -1, CheckInvariants: true}
	// Flood one output so resequencing backlogs grow and deliveries miss the
	// tight deadline; K*R' = 2 < N keeps the switch genuinely overloaded.
	hot, err := traffic.NewHotspot(n, 0.9, 0.8, 0, horizon, 3)
	if err != nil {
		t.Fatal(err)
	}
	probes := obs.StandardProbes(n, cfg.K, 1, 0)
	res, err := Run(cfg, rrFactory, traffic.WithDeadline(hot, 6), Options{
		Validate: true, Admission: mustAdmission(t, "deadline"), Probes: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.ExpiredReseq == 0 {
		t.Fatal("overloaded deadline run expired nothing at egress; deadline too loose to test")
	}
	if rep.Offered != rep.Admitted+rep.Rejected+rep.ExpiredAdmit {
		t.Errorf("admission identity broken: %+v", rep)
	}
	if rep.Admitted != rep.Cells+rep.Drops+rep.ExpiredReseq {
		t.Errorf("delivery identity broken: admitted=%d cells=%d drops=%d expiredReseq=%d",
			rep.Admitted, rep.Cells, rep.Drops, rep.ExpiredReseq)
	}
	if rep.OnTime != rep.Cells {
		// Every non-expired delivery met its deadline by construction of the
		// egress reclassification.
		t.Errorf("onTime=%d != delivered=%d under deadline-drop", rep.OnTime, rep.Cells)
	}
	if rep.OnTimeFraction >= 1.0 || rep.OnTimeFraction <= 0 {
		t.Errorf("on-time fraction = %v, want in (0, 1)", rep.OnTimeFraction)
	}
	// The expired_total series must end at the total expiry count.
	var expSeries *obs.Series
	for _, s := range res.Series {
		if s.Name() == "expired_total" {
			expSeries = s
		}
	}
	if expSeries == nil {
		t.Fatal("expired_total series missing from standard probes")
	}
	pts := expSeries.Points()
	if got := pts[len(pts)-1].Value; got != float64(rep.ExpiredAdmit+rep.ExpiredReseq) {
		t.Errorf("expired_total final sample = %v, want %d", got, rep.ExpiredAdmit+rep.ExpiredReseq)
	}
	// Late deliveries are excluded from delay statistics: the histogram cell
	// count must equal matched cells only.
	if got := rep.Percentiles.RQD.N; got != int64(rep.Cells) {
		t.Errorf("RQD histogram holds %d cells, want %d (expired excluded)", got, rep.Cells)
	}
}

// TestAdmissionValidateRejectsBadSpec checks Drive surfaces spec errors
// before running.
func TestAdmissionValidateRejectsBadSpec(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 2, RPrime: 1}
	src := traffic.NewBernoulli(4, 0.5, 32, 1)
	_, err := Run(cfg, rrFactory, src, Options{Admission: &admission.Spec{RateNum: 1}})
	if err == nil || !strings.Contains(err.Error(), "admission") {
		t.Fatalf("bad spec not rejected: %v", err)
	}
}

// TestAdmissionTelemetryGauges checks the admission counters reach the
// telemetry snapshot.
func TestAdmissionTelemetryGauges(t *testing.T) {
	tel := obs.NewTelemetry()
	cfg := fabric.Config{N: 8, K: 4, RPrime: 2}
	src := traffic.NewBernoulli(8, 0.9, 128, 9)
	res, err := Run(cfg, rrFactory, src, Options{
		Telemetry: tel,
		Admission: mustAdmission(t, "rate:1/4,burst:1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	if snap.Admitted != int64(res.Report.Admitted) || snap.Rejected != int64(res.Report.Rejected) {
		t.Errorf("telemetry gauges admitted=%d rejected=%d, want %d/%d",
			snap.Admitted, snap.Rejected, res.Report.Admitted, res.Report.Rejected)
	}
	if snap.Rejected == 0 {
		t.Error("tight bucket rejected nothing")
	}
}
