package harness

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/fabric"
	"ppsim/internal/faults"
	"ppsim/internal/obs"
	"ppsim/internal/stats"
	"ppsim/internal/traffic"
)

// delayCollector gathers exact per-cell delay samples through OnPPSDepart —
// the reference the streaming histograms are checked against.
type delayCollector struct {
	demux, plane, reseq, total, gaps []int64
	lastDep                          map[cell.Port]cell.Time
}

func newDelayCollector() *delayCollector {
	return &delayCollector{lastDep: make(map[cell.Port]cell.Time)}
}

func (dc *delayCollector) observe(c cell.Cell) {
	dc.demux = append(dc.demux, int64(c.Dispatch-c.Arrive))
	dc.plane = append(dc.plane, int64(c.AtOutput-c.Dispatch))
	dc.reseq = append(dc.reseq, int64(c.Depart-c.AtOutput))
	dc.total = append(dc.total, int64(c.Depart-c.Arrive))
	if last, ok := dc.lastDep[c.Flow.Out]; ok {
		dc.gaps = append(dc.gaps, int64(c.Depart-last))
	}
	dc.lastDep[c.Flow.Out] = c.Depart
}

// checkQuantiles asserts the histogram-derived block q against the exact
// sample set: N/Min/Max exact, and each headline percentile within the width
// of the log bucket holding the exact answer.
func checkQuantiles(t *testing.T, name string, q obs.Quantiles, samples []int64) {
	t.Helper()
	if q.N != int64(len(samples)) {
		t.Fatalf("%s: histogram holds %d samples, exact set has %d", name, q.N, len(samples))
	}
	if len(samples) == 0 {
		return
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q.Min != sorted[0] || q.Max != sorted[len(sorted)-1] {
		t.Fatalf("%s: min/max %d/%d not exact (want %d/%d)", name, q.Min, q.Max, sorted[0], sorted[len(sorted)-1])
	}
	for _, pc := range []struct {
		p   float64
		got int64
	}{{50, q.P50}, {99, q.P99}, {99.9, q.P999}} {
		exact := stats.Percentile(sorted, pc.p)
		w := obs.BucketWidth(exact)
		if diff := pc.got - exact; diff >= w || diff <= -w {
			t.Fatalf("%s p%v: histogram %d vs exact %d, off by more than bucket width %d",
				name, pc.p, pc.got, exact, w)
		}
	}
}

// TestPercentilesMatchExactMatrix is the accuracy and determinism contract
// of the delay-attribution histograms: for every registered algorithm, the
// histogram-derived p50/p99/p999 of each component must sit within one log
// bucket of the exact sorted-sample percentiles, and the full Result —
// percentile block included — must stay bit-identical across the serial,
// stage-parallel (1 and 4 workers) and fast-forward engines.
func TestPercentilesMatchExactMatrix(t *testing.T) {
	const n = 8
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	// On/off traffic: bursts stress the resequencer (non-trivial component
	// tails) and the idle gaps between bursts give the fast-forward engine
	// real intervals to elide.
	mkSrc := func() traffic.Source {
		src, err := traffic.NewOnOff(n, 8, 48, 512, 5)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	for _, alg := range matrixAlgs {
		t.Run(alg.name, func(t *testing.T) {
			run := func(workers int, ff bool, on func(cell.Cell)) Result {
				res, err := Run(cfg, alg.mk, mkSrc(),
					Options{Validate: true, Utilization: true, Workers: workers,
						FastForward: ff, OnPPSDepart: on})
				if err != nil {
					t.Fatalf("workers=%d ff=%v: %v", workers, ff, err)
				}
				return res
			}
			dc := newDelayCollector()
			serial := run(0, false, dc.observe)
			if serial.Report.Cells == 0 {
				t.Fatal("empty run")
			}
			q := serial.Report.Percentiles
			checkQuantiles(t, "demux", q.Demux, dc.demux)
			checkQuantiles(t, "plane", q.Plane, dc.plane)
			checkQuantiles(t, "reseq", q.Reseq, dc.reseq)
			checkQuantiles(t, "total", q.Total, dc.total)
			checkQuantiles(t, "interdep", q.Gap, dc.gaps)
			// RQD: the report carries the exact nearest-rank percentiles
			// beside the histogram block; they must agree within a bucket.
			for _, pc := range []struct {
				p     string
				exact cell.Time
				got   int64
			}{
				{"p50", serial.Report.P50RQD, q.RQD.P50},
				{"p99", serial.Report.P99RQD, q.RQD.P99},
				{"p999", serial.Report.P999RQD, q.RQD.P999},
			} {
				w := obs.BucketWidth(int64(pc.exact))
				if diff := pc.got - int64(pc.exact); diff >= w || diff <= -w {
					t.Fatalf("rqd %s: histogram %d vs exact %d, off by more than bucket width %d",
						pc.p, pc.got, pc.exact, w)
				}
			}
			if q.RQD.N != int64(serial.Report.Cells) {
				t.Fatalf("rqd histogram holds %d samples, want %d", q.RQD.N, serial.Report.Cells)
			}
			// Engine matrix: every variant must reproduce the serial Result
			// bit-identically, streaming percentile block included.
			for _, v := range []struct {
				workers int
				ff      bool
			}{{1, false}, {4, false}, {0, true}, {1, true}, {4, true}} {
				v := v
				t.Run(fmt.Sprintf("w%d_ff%v", v.workers, v.ff), func(t *testing.T) {
					if got := run(v.workers, v.ff, nil); !reflect.DeepEqual(stripEngine(serial), stripEngine(got)) {
						t.Errorf("result diverges from serial\nserial: %+v\nvariant: %+v", serial, got)
					}
				})
			}
		})
	}
}

// TestDelayDecompositionConserves asserts per-cell conservation: for every
// delivered cell the fabric sets all attribution stamps in order, the three
// components are non-negative and sum to the end-to-end delay — including
// under a mid-run plane outage with the DropCount policy, where dropped
// cells must not leak into the histograms.
func TestDelayDecompositionConserves(t *testing.T) {
	const n = 8
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	cases := []struct {
		name   string
		opts   Options
		faulty bool
	}{
		{"nofaults", Options{Validate: true}, false},
		{"outage-dropcount", Options{
			Faults:      faults.NewSchedule().Outage(1, 100, 160),
			FaultPolicy: faults.DropCount,
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			delivered := uint64(0)
			opts := tc.opts
			opts.OnPPSDepart = func(c cell.Cell) {
				delivered++
				if c.Dispatch == cell.None || c.AtOutput == cell.None {
					t.Fatalf("cell %d delivered without attribution stamps: %+v", c.Seq, c)
				}
				if !(c.Arrive <= c.Dispatch && c.Dispatch <= c.AtOutput && c.AtOutput <= c.Depart) {
					t.Fatalf("cell %d stamps out of order: arrive=%d dispatch=%d atOutput=%d depart=%d",
						c.Seq, c.Arrive, c.Dispatch, c.AtOutput, c.Depart)
				}
				demux := c.Dispatch - c.Arrive
				plane := c.AtOutput - c.Dispatch
				reseq := c.Depart - c.AtOutput
				if demux+plane+reseq != c.Depart-c.Arrive {
					t.Fatalf("cell %d decomposition does not conserve: %d+%d+%d != %d",
						c.Seq, demux, plane, reseq, c.Depart-c.Arrive)
				}
			}
			res, err := Run(cfg, matrixAlgs[0].mk, traffic.NewBernoulli(n, 0.6, 256, 11), opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Cells == 0 || delivered != res.Report.Cells {
				t.Fatalf("delivered %d cells, report says %d", delivered, res.Report.Cells)
			}
			if tc.faulty && res.Drops == 0 {
				t.Fatal("outage case dropped nothing; schedule not exercised")
			}
			q := res.Report.Percentiles
			// Every delivered cell, and only delivered cells, lands in each
			// component histogram; dropped cells appear nowhere.
			for name, got := range map[string]int64{
				"demux": q.Demux.N, "plane": q.Plane.N, "reseq": q.Reseq.N,
				"total": q.Total.N, "rqd": q.RQD.N,
			} {
				if got != int64(res.Report.Cells) {
					t.Errorf("%s histogram holds %d samples, want %d delivered cells", name, got, res.Report.Cells)
				}
			}
			// Conservation also holds in aggregate: the exact component sums
			// (mean·n) add up to the total-delay sum.
			sum := func(x obs.Quantiles) int64 { return int64(x.Mean*float64(x.N) + 0.5) }
			if s := sum(q.Demux) + sum(q.Plane) + sum(q.Reseq); s != sum(q.Total) {
				t.Errorf("aggregate decomposition off: %d != %d", s, sum(q.Total))
			}
		})
	}
}
