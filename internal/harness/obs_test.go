package harness

import (
	"strings"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/fabric"
	"ppsim/internal/obs"
	"ppsim/internal/traffic"
)

func seriesByName(series []*obs.Series, name string) *obs.Series {
	for _, s := range series {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

// TestProbesMatchRunResult cross-checks the probe series against the
// end-of-run aggregates of the same execution: the cumulative
// plane_peak_queue series must end at Result.PeakPlaneQueue, and with
// stride 1 every slot is sampled, so series length equals Result.Slots.
func TestProbesMatchRunResult(t *testing.T) {
	cfg := fabric.Config{N: 8, K: 4, RPrime: 2, CheckInvariants: true}
	src := &traffic.Flood{N: 8, Out: 0, Until: 16}
	probes := obs.StandardProbes(cfg.N, cfg.K, 1, 1<<16)
	res, err := Run(cfg, rrFactory, src, Options{Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no series collected")
	}
	peak := seriesByName(res.Series, "plane_peak_queue")
	if peak == nil {
		t.Fatal("plane_peak_queue series missing")
	}
	last, ok := peak.Last()
	if !ok || int(last.Value) != res.PeakPlaneQueue {
		t.Errorf("final plane_peak_queue sample = %v, want %d", last.Value, res.PeakPlaneQueue)
	}
	if cell.Time(peak.Len()) != res.Slots {
		t.Errorf("series has %d samples, want one per slot (%d)", peak.Len(), res.Slots)
	}
	// Flood sends every cell to output 0, so any plane's total backlog is
	// also its per-output backlog and can never exceed the recorded peak.
	for k := 0; k < cfg.K; k++ {
		s := seriesByName(res.Series, "plane_backlog["+string(rune('0'+k))+"]")
		if s == nil {
			t.Fatalf("plane_backlog[%d] series missing", k)
		}
		if max, ok := s.Max(); ok && int(max.Value) > res.PeakPlaneQueue {
			t.Errorf("plane %d backlog %g exceeds PeakPlaneQueue %d", k, max.Value, res.PeakPlaneQueue)
		}
	}
	// In-flight series drain to zero at the end of the run.
	for _, name := range []string{"pps_in_flight", "shadow_in_flight"} {
		s := seriesByName(res.Series, name)
		if last, ok := s.Last(); !ok || last.Value != 0 {
			t.Errorf("%s final sample = %v, want 0 (drained)", name, last.Value)
		}
	}
}

// TestTracerOrderingUnderSlotLoop checks the event stream is slot-ordered
// and per-cell stage-ordered: arrival <= dispatch <= plane-enqueue <=
// mux-pull <= depart, with every departed cell tracing all five stages.
func TestTracerOrderingUnderSlotLoop(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 2, RPrime: 2, CheckInvariants: true}
	tr := traffic.NewTrace()
	for s := cell.Time(0); s < 8; s++ {
		tr.MustAdd(s, cell.Port(s%4), cell.Port((s+1)%4))
	}
	ring := obs.NewRingSink(1 << 12)
	res, err := Run(cfg, rrFactory, tr, Options{Tracer: obs.NewTracer(ring)})
	if err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if res.TraceEvents != uint64(len(evs)) {
		t.Errorf("TraceEvents = %d, ring holds %d", res.TraceEvents, len(evs))
	}
	wantPerCell := []obs.EventKind{obs.EvArrival, obs.EvDispatch, obs.EvPlaneEnqueue, obs.EvMuxPull, obs.EvDepart}
	stages := map[uint64][]obs.Event{}
	lastT := cell.Time(-1)
	for _, ev := range evs {
		if ev.T < lastT {
			t.Fatalf("event at slot %d after slot %d", ev.T, lastT)
		}
		lastT = ev.T
		stages[ev.Seq] = append(stages[ev.Seq], ev)
	}
	if len(stages) != 8 {
		t.Fatalf("traced %d cells, want 8", len(stages))
	}
	for seq, sts := range stages {
		if len(sts) != len(wantPerCell) {
			t.Fatalf("cell %d traced %d stages, want %d: %+v", seq, len(sts), len(wantPerCell), sts)
		}
		for i, ev := range sts {
			if ev.Kind != wantPerCell[i] {
				t.Errorf("cell %d stage %d = %v, want %v", seq, i, ev.Kind, wantPerCell[i])
			}
			if i > 0 && ev.T < sts[i-1].T {
				t.Errorf("cell %d: %v at slot %d before %v at %d", seq, ev.Kind, ev.T, sts[i-1].Kind, sts[i-1].T)
			}
		}
	}
}

// TestTracerRecordsViolations fails a plane and checks the violation event
// reaches the sink before the run errors.
func TestTracerRecordsViolations(t *testing.T) {
	cfg := fabric.Config{N: 2, K: 2, RPrime: 1, CheckInvariants: true}
	tr := traffic.NewTrace()
	tr.MustAdd(0, 0, 1)
	ring := obs.NewRingSink(16)
	_, err := Run(cfg, rrFactory, tr, Options{
		FailPlanes: []cell.Plane{0}, // fresh rr dispatches to plane 0 first
		Tracer:     obs.NewTracer(ring),
	})
	if err == nil {
		t.Fatal("dispatch into a failed plane must error")
	}
	found := false
	for _, ev := range ring.Events() {
		if ev.Kind == obs.EvViolation && ev.Note != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("no violation event traced; got %+v", ring.Events())
	}
}

// TestUtilizationOptIn: without the flag the per-output scan is skipped.
func TestUtilizationOptIn(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 2, RPrime: 1, CheckInvariants: true}
	tr := traffic.NewTrace()
	tr.MustAdd(0, 0, 1)
	res, err := Run(cfg, rrFactory, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization != nil {
		t.Errorf("Utilization computed without opt-in: %v", res.Utilization)
	}
	res, err = Run(cfg, rrFactory, tr, Options{Utilization: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != cfg.N {
		t.Errorf("opt-in Utilization has %d entries, want %d", len(res.Utilization), cfg.N)
	}
}

// TestRunFillsMetricsRegistry checks the cumulative telemetry counters.
func TestRunFillsMetricsRegistry(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 2, RPrime: 1, CheckInvariants: true}
	reg := obs.NewRegistry()
	for i := 0; i < 2; i++ {
		tr := traffic.NewTrace()
		tr.MustAdd(0, 0, 1)
		tr.MustAdd(1, 1, 2)
		if _, err := Run(cfg, rrFactory, tr, Options{Metrics: reg}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("harness_runs").Value(); got != 2 {
		t.Errorf("harness_runs = %d, want 2", got)
	}
	if got := reg.Counter("harness_cells").Value(); got != 4 {
		t.Errorf("harness_cells = %d, want 4", got)
	}
	if reg.Counter("harness_slots").Value() == 0 {
		t.Error("harness_slots not recorded")
	}
}

// TestResultString covers the pretty-printer paths.
func TestResultString(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 4, RPrime: 2, CheckInvariants: true}
	tr := traffic.NewTrace()
	for s := cell.Time(0); s < 6; s++ {
		tr.MustAdd(s, cell.Port(s%4), 0)
	}
	probes := obs.StandardProbes(cfg.N, cfg.K, 1, 64)
	ringTr := obs.NewTracer(obs.NewRingSink(1 << 10))
	res, err := Run(cfg, rrFactory, tr, Options{
		Validate: true, Utilization: true, Probes: probes, Tracer: ringTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"algorithm=rr", "peakPlaneQueue=", "stage wait", "utilization:", "series:", "trace events:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Result.String() missing %q:\n%s", want, out)
		}
	}
}

// TestFinalSlotFlushAcrossStrides is the regression test for the stride
// decimation bug: before the post-run flush, a stride that did not divide
// the final executed slot dropped it, so Last() reported pre-drain state.
// For every stride the in-flight series must now end at the final slot
// (value 0, the drained switch) with the point marked Final.
func TestFinalSlotFlushAcrossStrides(t *testing.T) {
	cfg := fabric.Config{N: 8, K: 4, RPrime: 2, CheckInvariants: true}
	for _, stride := range []cell.Time{1, 3, 7, 64} {
		src := traffic.NewBernoulli(cfg.N, 0.6, 200, 1)
		probes := obs.StandardProbes(cfg.N, cfg.K, stride, 0)
		res, err := Run(cfg, rrFactory, src, Options{Probes: probes})
		if err != nil {
			t.Fatal(err)
		}
		final := res.Slots - 1
		for _, name := range []string{"pps_in_flight", "shadow_in_flight", "input_depth_total"} {
			s := seriesByName(res.Series, name)
			last, ok := s.Last()
			if !ok {
				t.Fatalf("stride %d: %s is empty", stride, name)
			}
			if last.Slot != final {
				t.Errorf("stride %d: %s ends at slot %d, want final slot %d", stride, name, last.Slot, final)
			}
			if last.Value != 0 {
				t.Errorf("stride %d: %s final sample = %g, want 0 (drained)", stride, name, last.Value)
			}
			if !last.Final {
				t.Errorf("stride %d: %s final sample not marked Final", stride, name)
			}
		}
		// The flush must not duplicate an already-recorded final slot.
		s := seriesByName(res.Series, "pps_in_flight")
		pts := s.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].Slot <= pts[i-1].Slot {
				t.Fatalf("stride %d: series not strictly slot-ordered at %d: %v <= %v",
					stride, i, pts[i].Slot, pts[i-1].Slot)
			}
		}
	}
}

// TestDriveRejectsReusedFabric pins the single-use contract: per-run
// accounting (utilization windows, peaks, dispatch counters) is cumulative,
// so a second Drive on the same fabric must fail instead of silently
// blending runs.
func TestDriveRejectsReusedFabric(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 2, RPrime: 1, CheckInvariants: true}
	pps, err := fabric.New(cfg, rrFactory)
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.NewTrace()
	tr.MustAdd(0, 0, 1)
	if _, err := Drive(pps, tr, Options{}); err != nil {
		t.Fatal(err)
	}
	tr2 := traffic.NewTrace()
	tr2.MustAdd(0, 0, 1)
	if _, err := Drive(pps, tr2, Options{}); err == nil {
		t.Fatal("second Drive on the same fabric must error")
	} else if !strings.Contains(err.Error(), "already driven") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestMillionSlotSoakBoundedSeries drives a million-slot run with the full
// standard probe set and checks the instrumentation invariants at scale:
// every series stays within its ring capacity, is strictly slot-ordered,
// and ends on the forced final sample.
func TestMillionSlotSoakBoundedSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("million-slot soak skipped in -short mode")
	}
	const slots = 1 << 20
	const capacity = 1 << 12
	cfg := fabric.Config{N: 4, K: 2, RPrime: 2}
	src := traffic.NewBernoulli(cfg.N, 0.6, slots, 1)
	probes := obs.StandardProbes(cfg.N, cfg.K, 64, capacity)
	res, err := Run(cfg, rrFactory, src, Options{Probes: probes})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots < slots {
		t.Fatalf("run drained after %d slots, want >= %d", res.Slots, slots)
	}
	for _, s := range res.Series {
		if s.Len() > capacity {
			t.Errorf("%s holds %d points, capacity %d", s.Name(), s.Len(), capacity)
		}
		pts := s.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].Slot <= pts[i-1].Slot {
				t.Fatalf("%s not strictly slot-ordered at %d", s.Name(), i)
			}
		}
	}
	s := seriesByName(res.Series, "pps_in_flight")
	if last, ok := s.Last(); !ok || last.Slot != res.Slots-1 || !last.Final {
		t.Errorf("pps_in_flight last = %+v/%v, want Final point at slot %d", last, ok, res.Slots-1)
	}
}
