package harness

import (
	"strings"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/traffic"
)

func rrFactory(e demux.Env) (demux.Algorithm, error) {
	return demux.NewRoundRobin(e, demux.PerInput)
}

func TestRunMatchesCells(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 4, RPrime: 2, CheckInvariants: true}
	tr := traffic.NewTrace()
	for s := cell.Time(0); s < 10; s++ {
		tr.MustAdd(s, cell.Port(s%4), cell.Port((s+1)%4))
	}
	res, err := Run(cfg, rrFactory, tr, Options{Validate: true, Utilization: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Cells != 10 {
		t.Errorf("Cells = %d", res.Report.Cells)
	}
	if res.AlgorithmName != "rr" {
		t.Errorf("AlgorithmName = %q", res.AlgorithmName)
	}
	if res.Slots == 0 {
		t.Error("Slots not recorded")
	}
	if len(res.Utilization) != 4 {
		t.Errorf("Utilization has %d entries", len(res.Utilization))
	}
}

func TestRunPropagatesConfigErrors(t *testing.T) {
	if _, err := Run(fabric.Config{N: 0, K: 1, RPrime: 1}, rrFactory, traffic.NewTrace(), Options{}); err == nil {
		t.Error("invalid config must error")
	}
}

func TestUnboundedSourceNeedsHorizon(t *testing.T) {
	cfg := fabric.Config{N: 2, K: 2, RPrime: 1}
	src := &traffic.Flood{N: 2, Out: 0, Until: cell.None}
	if _, err := Run(cfg, rrFactory, src, Options{}); err == nil ||
		!strings.Contains(err.Error(), "Horizon") {
		t.Errorf("unbounded source without horizon must error: %v", err)
	}
	// With a horizon it works.
	if _, err := Run(cfg, rrFactory, src, Options{Horizon: 10}); err != nil {
		t.Errorf("horizon-bounded run failed: %v", err)
	}
}

func TestHorizonTruncatesFiniteSource(t *testing.T) {
	cfg := fabric.Config{N: 2, K: 2, RPrime: 1}
	tr := traffic.NewTrace()
	tr.MustAdd(0, 0, 0)
	tr.MustAdd(50, 0, 0)
	res, err := Run(cfg, rrFactory, tr, Options{Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Cells != 1 {
		t.Errorf("horizon should cut the second cell: %d cells", res.Report.Cells)
	}
}

func TestMaxSlotsAborts(t *testing.T) {
	// A flood drains slowly; an absurdly small MaxSlots must abort with a
	// diagnostic instead of looping.
	cfg := fabric.Config{N: 8, K: 2, RPrime: 2}
	src := &traffic.Flood{N: 8, Out: 0, Until: 50}
	if _, err := Run(cfg, rrFactory, src, Options{MaxSlots: 20}); err == nil ||
		!strings.Contains(err.Error(), "not drained") {
		t.Errorf("expected a not-drained error: %v", err)
	}
}

func TestOnPPSDepartSeesStamps(t *testing.T) {
	cfg := fabric.Config{N: 2, K: 2, RPrime: 1, CheckInvariants: true}
	tr := traffic.NewTrace()
	tr.MustAdd(3, 1, 0)
	var seen []cell.Cell
	_, err := Run(cfg, rrFactory, tr, Options{OnPPSDepart: func(c cell.Cell) { seen = append(seen, c) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("OnPPSDepart called %d times", len(seen))
	}
	c := seen[0]
	if c.Arrive != 3 || c.Dispatch == cell.None || c.Via == cell.NoPlane || c.Depart == cell.None {
		t.Errorf("departure stamps incomplete: %v", c)
	}
}

func TestValidateMeasuresBurstiness(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 4, RPrime: 1, CheckInvariants: true}
	tr := traffic.NewTrace()
	for i := 0; i < 3; i++ {
		tr.MustAdd(0, cell.Port(i), 0) // burst of 3 to one output: B = 2
	}
	res, err := Run(cfg, rrFactory, tr, Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Burstiness != 2 {
		t.Errorf("Burstiness = %d, want 2", res.Burstiness)
	}
}

func TestDriveRejectsAlgorithmErrors(t *testing.T) {
	// K < r' round-robin construction fails inside fabric.New via Run.
	cfg := fabric.Config{N: 2, K: 1, RPrime: 2}
	if _, err := Run(cfg, rrFactory, traffic.NewTrace(), Options{}); err == nil {
		t.Error("algorithm construction error must propagate")
	}
}

func TestFailPlanesOption(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 2, RPrime: 1, CheckInvariants: true}
	tr := traffic.NewTrace()
	tr.MustAdd(0, 0, 1)
	// Fresh rr dispatches to plane 0 first: failing it errors the run.
	if _, err := Run(cfg, rrFactory, tr, Options{FailPlanes: []cell.Plane{0}}); err == nil {
		t.Error("dispatch into a failed plane must error the run")
	}
	// Failing a plane the traffic never uses is harmless (rr starts at 0).
	tr2 := traffic.NewTrace()
	tr2.MustAdd(0, 0, 1)
	if _, err := Run(cfg, rrFactory, tr2, Options{FailPlanes: []cell.Plane{1}}); err != nil {
		t.Errorf("unused failed plane should not affect the run: %v", err)
	}
	// Nonexistent plane is a configuration error.
	if _, err := Run(cfg, rrFactory, tr2, Options{FailPlanes: []cell.Plane{9}}); err == nil {
		t.Error("failing a nonexistent plane must error")
	}
}

func TestDriveExistingPPSExposesInternals(t *testing.T) {
	cfg := fabric.Config{N: 4, K: 2, RPrime: 2, CheckInvariants: true}
	pps, err := fabric.New(cfg, rrFactory)
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.NewTrace()
	for i := 0; i < 4; i++ {
		tr.MustAdd(cell.Time(i), cell.Port(i), 0)
	}
	res, err := Drive(pps, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakPlaneQueue == 0 {
		t.Error("peak plane queue should be visible after Drive")
	}
	if !pps.Drained() {
		t.Error("PPS should be drained after Drive")
	}
}
