// Package harness runs matched executions: one traffic source feeding both
// a PPS under test and the shadow reference switch, slot by slot, until both
// drain. It is the engine behind the public API, the experiment suite and
// the adversary's scratch simulations.
package harness

import (
	"fmt"
	"strings"

	"ppsim/internal/admission"
	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/faults"
	"ppsim/internal/metrics"
	"ppsim/internal/obs"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

// Options tunes a run.
type Options struct {
	// Horizon stops feeding arrivals at this slot even if the source is
	// unbounded; 0 means "trust the source's End()". A run with an
	// unbounded source and Horizon 0 is an error.
	Horizon cell.Time
	// MaxSlots aborts a run that fails to drain (default 1<<22).
	MaxSlots cell.Time
	// OnPPSDepart, if non-nil, observes every PPS departure (with all
	// stage stamps set).
	OnPPSDepart func(cell.Cell)
	// Validate measures the traffic's leaky-bucket burstiness during the
	// run (cheap; on by default in the public API).
	Validate bool
	// FailPlanes marks these planes failed before the first slot.
	// Duplicate IDs are applied once; out-of-range IDs error before the
	// run starts. Under the default Abort policy the run errors at the
	// first dispatch into a failed plane — the fault-tolerance experiments
	// use this to find which inputs a failure strands (Section 3 of the
	// paper); under FaultPolicy DropCount those dispatches become
	// accounted drops instead.
	FailPlanes []cell.Plane
	// Faults schedules mid-run plane fail/recover events (and optional
	// per-plane cell loss); nil injects nothing. Forwarded to
	// fabric.Config.Faults when the config leaves it nil.
	Faults *faults.Schedule
	// FaultPolicy decides what a dispatch into a failed plane means:
	// faults.Abort (default, the model's no-drop semantics) or
	// faults.DropCount (accounted losses, Result.Drops). Forwarded to
	// fabric.Config.FaultPolicy when the config leaves it Abort.
	FaultPolicy faults.Policy
	// Admission is the policy evaluated in front of the demux, in the
	// serial recorder-side arrival phase: every offered arrival is admitted
	// (stamped and fed to both switches), rejected by a token bucket, or —
	// under deadline-drop — expired. nil and the empty always-admit spec
	// are byte-identical to no admission at all. Deliveries that miss their
	// deadline under deadline-drop are reclassified as expired at egress
	// rather than intercepted in the mux stage, so every engine and worker
	// configuration stays bit-identical (DESIGN.md §14). The spec is
	// validated before the run starts.
	Admission *admission.Spec
	// Utilization computes Result.Utilization, the per-output busy
	// fractions. Opt-in: it is O(N) per run and most internal callers
	// never read it; the public ppsim.Run turns it on to keep its
	// historical default behavior.
	Utilization bool
	// Probes are sampled once per slot, after the mux phase, so their
	// series align with the paper's departure-time accounting (DESIGN.md
	// §7). Probes must not be shared between concurrent runs.
	Probes []obs.Probe
	// Tracer, if non-nil, receives the structured event stream (arrival,
	// dispatch, plane-enqueue, mux-pull, depart, constraint-violation)
	// from the fabric.
	Tracer *obs.Tracer
	// Metrics, if non-nil, accumulates cumulative run telemetry
	// (harness_* counters and histograms) at the end of the run. A single
	// registry may be shared across runs; it is concurrency-safe.
	Metrics *obs.Registry
	// Telemetry, if non-nil, receives live run state: per-slot gauges every
	// slot (atomic stores, allocation-free) and the delay-attribution
	// histograms at a coarse flush cadence, so external observers (ppsexp's
	// /telemetry endpoint) can snapshot a run mid-flight. When nil, the
	// process-global aggregator (obs.SetGlobalTelemetry) is used if one is
	// installed. A single Telemetry may be shared across concurrent runs.
	Telemetry *obs.Telemetry
	// Workers engages the stage-parallel engines: 0 (the default) runs
	// everything serially, -1 picks a fabric worker count from GOMAXPROCS
	// and N (fabric.ResolveWorkers), and a positive value uses exactly
	// that many fabric workers (clamped to N). Auto mode enforces a floor
	// of 16 output-ports per shard and falls back to serial below it —
	// the per-slot stage barrier costs more than such small shards save —
	// so -1 on a small switch can legitimately resolve to 0; an explicit
	// positive request bypasses the floor. Result.Workers and
	// Result.ShardPorts record what actually ran. Any non-zero value also
	// overlaps the shadow-switch step with the PPS step inside Drive (both
	// consume the same arrival stream and synchronize at slot end).
	// Results are bit-identical across all settings; Run forwards the
	// value to fabric.Config.Workers when the config leaves it zero.
	Workers int
	// Engine selects the slot-execution core (see the Engine constants).
	// The zero value, EngineAuto, runs the event-driven core whenever the
	// run qualifies and the stepped core otherwise; every choice is
	// bit-identical, and Result.Engine/Result.EngineReason record what
	// actually ran and why a request was degraded.
	Engine Engine
	// FastForward opts into the quiescence fast-forward under
	// EngineStepped (and EngineAuto runs that fall back to stepped): when
	// no cell is pending at any input, no arrival or fault event is due,
	// and the demultiplexing algorithm certifies idle-invariance
	// (demux.IdleInvariant), the engine drains the remaining mux backlog
	// with reduced micro-steps and then jumps the clock to the next event in
	// one step, synthesizing the probe samples the stepped engine would have
	// recorded. Results are bit-identical to the stepped engine — series,
	// drop counters, RQD statistics and violations included. Runs with a
	// Tracer (the event stream is inherently per-slot), a source without
	// traffic.Lookahead, or a non-certifying algorithm (the stale-info
	// family) fall back to stepping every slot, recording the reason in
	// Result.EngineReason.
	FastForward bool
	// OnFastForward, if non-nil, observes every idle jump as the half-open
	// elided interval [from, to). It is a callback rather than a Result
	// field so fast-forwarded and stepped runs of the same workload produce
	// deeply equal Results.
	OnFastForward func(from, to cell.Time)
}

// Result summarizes a matched execution.
type Result struct {
	Report metrics.Report
	// Burstiness is the measured leaky-bucket B of the offered traffic
	// (only if Options.Validate).
	Burstiness int64
	// PeakPlaneQueue is the largest per-output backlog in any plane.
	PeakPlaneQueue int
	// Slots is the number of slots until both switches drained.
	Slots cell.Time
	// Utilization is the per-output busy fraction between first and last
	// departure (only if Options.Utilization; the public ppsim.Run always
	// fills it).
	Utilization []float64
	// Series holds the time series sampled by Options.Probes, in probe
	// order; nil when no probes were attached.
	Series []*obs.Series
	// TraceEvents counts events emitted to Options.Tracer.
	TraceEvents uint64
	// AlgorithmName echoes the algorithm under test.
	AlgorithmName string
	// Drops is the number of cells lost to failed planes under the
	// DropCount fault policy (0 under Abort); Report.DropsPerPlane and
	// Report.DropsPerInput break it down.
	Drops uint64
	// Engine records the slot-execution core that actually ran: "stepped",
	// "fastforward" or "event". All cores produce identical measurements,
	// so tests comparing engines normalize these two fields away.
	Engine string
	// EngineReason is empty when the requested engine (or, under
	// EngineAuto, the event core) ran, and otherwise explains the
	// degradation — e.g. a tracer pinning the run to the stepped core, or a
	// stale-information algorithm that cannot certify idle elision. CLIs
	// surface it so users asking for elision learn they ran stepped.
	EngineReason string
	// Workers records the effective stage-parallel worker count the fabric
	// resolved for the run (0 = serial engine). Note that Options.Workers
	// is a request: -1 (auto) derives the count from GOMAXPROCS and N and
	// falls back to serial when shards would hold fewer than 16 ports
	// (fabric.ResolveWorkers). Like Engine, tests comparing engine
	// configurations normalize this field (and ShardPorts) away.
	Workers int
	// ShardPorts is the per-worker output-shard width of the stage-parallel
	// engine — ShardPorts[w] output-ports (and one columnar-store slab) per
	// worker w — or nil for the serial engine. Recorded so benchmark JSON
	// can attribute throughput to the shard geometry that produced it.
	ShardPorts []int
	// Goodput is delivered (matched) cells per slot over the whole run —
	// the throughput that survived admission, faults and deadlines.
	Goodput float64
	// OnTimeFraction mirrors Report.OnTimeFraction: deliveries that met
	// their deadline (no-deadline cells count as on time) over offered
	// arrivals. 1.0 for a clean full-delivery run.
	OnTimeFraction float64
}

// Run executes src through a fresh PPS built from cfg and factory, and
// through the shadow switch, until both drain.
func Run(cfg fabric.Config, factory func(demux.Env) (demux.Algorithm, error), src traffic.Source, opts Options) (Result, error) {
	if cfg.Workers == 0 {
		cfg.Workers = opts.Workers
	}
	if cfg.Faults == nil {
		cfg.Faults = opts.Faults
	}
	if cfg.FaultPolicy == faults.Abort {
		cfg.FaultPolicy = opts.FaultPolicy
	}
	pps, err := fabric.New(cfg, factory)
	if err != nil {
		return Result{}, err
	}
	// Deduplicate (Fail is idempotent, but double-failing silently hid
	// typos) and reject every out-of-range ID in one error, before any
	// plane is touched.
	if len(opts.FailPlanes) > 0 {
		seen := make(map[cell.Plane]bool, len(opts.FailPlanes))
		var uniq []cell.Plane
		var bad []string
		for _, k := range opts.FailPlanes {
			if seen[k] {
				continue
			}
			seen[k] = true
			if int(k) < 0 || int(k) >= cfg.K {
				bad = append(bad, fmt.Sprint(k))
				continue
			}
			uniq = append(uniq, k)
		}
		if len(bad) > 0 {
			return Result{}, fmt.Errorf("harness: cannot fail nonexistent plane(s) %s (planes are 0..%d)",
				strings.Join(bad, ", "), cfg.K-1)
		}
		for _, k := range uniq {
			pps.Plane(k).Fail()
		}
	}
	return Drive(pps, src, opts)
}

// telemetryFlushStride is how often (in slots) Drive folds the recorder's
// delay histograms into the live telemetry aggregator. Coarse on purpose:
// the flush takes the aggregator's mutex and walks every histogram bucket,
// so it must stay off the per-slot fast path; /telemetry snapshots are at
// most this many slots stale.
const telemetryFlushStride = 4096

// shadowSlot is one slot of work handed to the overlapped shadow pipeline:
// the slot index and the stamped arrivals (read-only for both switches).
type shadowSlot struct {
	t     cell.Time
	cells []cell.Cell
}

// slotView adapts the matched execution for obs.Probe sampling. It is
// refreshed (slot and front-RQD) each slot and handed to every probe.
type slotView struct {
	pps   *fabric.PPS
	sh    *shadow.Switch
	rec   *metrics.Recorder
	slot  cell.Time
	rqd   cell.Time
	rqdOK bool
}

func (v *slotView) Slot() cell.Time           { return v.slot }
func (v *slotView) Ports() int                { return v.pps.Config().N }
func (v *slotView) Planes() int               { return v.pps.Config().K }
func (v *slotView) PlaneBacklog(k int) int    { return v.pps.Plane(cell.Plane(k)).Backlog() }
func (v *slotView) PlanePeak(k int) int       { return v.pps.Plane(cell.Plane(k)).PeakQueue() }
func (v *slotView) InputDepth(i int) int      { return v.pps.InputPending(cell.Port(i)) }
func (v *slotView) OutputBuffered(j int) int  { return v.pps.Output(cell.Port(j)).Buffered() }
func (v *slotView) OutputPulls(j int) int64   { return v.pps.OutputPulls(cell.Port(j)) }
func (v *slotView) DispatchedTo(k int) uint64 { return v.pps.DispatchedTo(cell.Plane(k)) }
func (v *slotView) PPSInFlight() int          { return v.pps.Backlog() }
func (v *slotView) ShadowInFlight() int       { return v.sh.Backlog() }
func (v *slotView) FrontRQD() (int64, bool)   { return int64(v.rqd), v.rqdOK }
func (v *slotView) LivePlanes() int           { return v.pps.LivePlanes() }
func (v *slotView) DroppedTotal() uint64      { return v.pps.Dropped() }
func (v *slotView) AdmittedTotal() uint64     { return v.rec.AdmittedTotal() }
func (v *slotView) RejectedTotal() uint64     { return v.rec.RejectedTotal() }
func (v *slotView) ExpiredTotal() uint64      { return v.rec.ExpiredTotal() }

// driver bundles the per-run state shared by the slot-execution cores
// (runStepped, runEvent) and Drive's teardown: both switches, the stamper,
// the recorder, the probe view, the telemetry sinks and the reusable
// scratch buffers. Exactly one core runs per driver.
type driver struct {
	pps     *fabric.PPS
	sh      *shadow.Switch
	src     traffic.Source
	opts    *Options
	end     cell.Time
	st      *cell.Stamper
	rec     *metrics.Recorder
	vd      *traffic.Validator
	probing bool
	view    *slotView
	tel     *obs.Telemetry
	telPrev *obs.DelaySet
	look    traffic.Lookahead
	// feed serves the arrival phase: one slab of arrivals per span when the
	// source implements traffic.BatchSource, a per-slot pass-through
	// otherwise. All engines (and the admission gate inside feedSlot)
	// consume slots through it, and d.look is its Lookahead view so slab
	// state and quiescence queries stay interleaved correctly.
	feed *traffic.SpanFeed
	// adm is the admission runtime, nil under always-admit (nil or empty
	// spec) — the gate in feedSlot then reduces to the bare counters, so a
	// run without admission is byte-identical to the pre-admission harness.
	adm *admission.Runtime

	deps, shDeps, cellsBuf []cell.Cell
	// slot is where the core stopped: the first slot after both switches
	// drained, or MaxSlots.
	slot cell.Time
}

// feedSlot reads, validates, admits and stamps slot t's arrivals into the
// reusable cell buffer. The admission gate runs here — in the serial
// recorder-side arrival phase, before stamping — so rejected arrivals are
// never stamped: sequence numbers stay dense and the PPS, the shadow switch
// and every engine see the identical admitted stream. The validator observes
// the *offered* traffic (burstiness measures what was asked of the switch,
// not what the policy let through). Both switches copy cells into their own
// queues, so the scratch slice is safe to reuse across slots.
func (d *driver) feedSlot(t cell.Time) ([]cell.Cell, error) {
	cells := d.cellsBuf[:0]
	arrs := d.feed.SlotArrivals(t)
	if d.vd != nil {
		if err := d.vd.Observe(t, arrs); err != nil {
			return nil, err
		}
	}
	for _, a := range arrs {
		d.rec.OfferCell()
		if d.adm != nil {
			// Deadline expiry is checked before the token bucket: a cell
			// that is already late must not consume tokens a timely cell
			// could have used.
			if d.adm.Expired(t, a.Deadline) {
				d.rec.ExpireAtAdmission()
				continue
			}
			if !d.adm.Admit(t, a.In) {
				d.rec.RejectCell(a.In)
				continue
			}
		}
		d.rec.AdmitCell()
		c := d.st.Stamp(cell.Flow{In: a.In, Out: a.Out}, t)
		c.Deadline = a.Deadline
		cells = append(cells, c)
	}
	d.cellsBuf = cells
	return cells, nil
}

// recordDepartures feeds the slot's PPS departures and drops into the
// recorder (and the caller's observer). Only the driving goroutine touches
// the recorder, in the serial order: PPS departures, drops, then shadow
// departures. Under deadline-drop admission a delivery that missed its
// deadline is reclassified here as expired — the lazy-egress design of
// DESIGN.md §14: the cell physically traversed the fabric (so the mux stage
// stays engine-identical), but it counts as dropped at resequencing, not as
// a delivery.
func (d *driver) recordDepartures() {
	for _, c := range d.deps {
		if d.adm != nil && d.adm.Expired(c.Depart, c.Deadline) {
			d.rec.PPSExpired(c)
			continue
		}
		d.rec.PPSDepart(c)
		if c.Deadline == 0 || c.Depart <= c.Deadline {
			d.rec.OnTimeCell()
		}
		if d.opts.OnPPSDepart != nil {
			d.opts.OnPPSDepart(c)
		}
	}
	for _, c := range d.pps.SlotDrops() {
		d.rec.PPSDrop(c)
	}
}

// sampleSlot samples every probe after the mux phase of slot t (all pulls
// and departures applied), so series align with departure-time accounting —
// see DESIGN.md §7.
func (d *driver) sampleSlot(t cell.Time) {
	d.view.slot = t
	d.view.rqd, d.view.rqdOK = 0, false
	for _, c := range d.deps {
		if q, ok := d.rec.RQD(c.Seq); ok && (!d.view.rqdOK || q > d.view.rqd) {
			d.view.rqd, d.view.rqdOK = q, true
		}
	}
	for _, pb := range d.opts.Probes {
		pb.Sample(d.view)
	}
}

// runStepped is the historical slot-by-slot core, optionally (elide) with
// the PR-5 quiescence fast-forward; selectEngine guarantees elide is only
// set when the run qualifies (d.look non-nil, IdleInvariant certified, no
// tracer). It is the oracle the other cores are equivalence-tested against.
func (d *driver) runStepped(elide bool) error {
	pps, sh, opts, end := d.pps, d.sh, d.opts, d.end

	// Overlapped shadow pipeline: with Workers != 0 the shadow switch
	// steps on its own persistent goroutine while the PPS steps on this
	// one. Both only read the slot's stamped cells; the recorder is fed
	// exclusively from this goroutine, in the serial order (PPS departures
	// first, then shadow departures), after the slot-end synchronization —
	// so results stay bit-identical to the serial loop. The channels are
	// buffered so the per-slot handoff never allocates or blocks the
	// worker on send.
	overlap := opts.Workers != 0
	var shadowIn chan shadowSlot
	var shadowOut chan []cell.Cell
	if overlap {
		shadowIn = make(chan shadowSlot, 1)
		shadowOut = make(chan []cell.Cell, 1)
		go func() {
			var out []cell.Cell
			for job := range shadowIn {
				out = sh.Step(job.t, job.cells, out[:0])
				shadowOut <- out
			}
		}()
		defer close(shadowIn)
	}

	var err error
	slot := cell.Time(0)
	for ; slot < opts.MaxSlots; slot++ {
		if slot >= end && pps.Drained() && sh.Drained() {
			break
		}
		// Quiescence detection: with no cell pending at any input and no
		// arrival or fault event due this slot, the arrival, demux, audit
		// and fault stages are provable no-ops. If both switches are also
		// fully drained nothing at all can move before the next event, so
		// the clock jumps there in one step; otherwise the slot runs as a
		// reduced drain micro-step (mux stage only, busy outputs only).
		drain := false
		if elide && pps.PendingTotal() == 0 {
			na := cell.None
			if slot < end {
				na = d.look.NextArrival(slot - 1)
				if na != cell.None && na >= end {
					na = cell.None // beyond the horizon: never fed
				}
			}
			if na != slot && pps.NextFaultSlot() != slot {
				if pps.Drained() && sh.Drained() {
					// Idle jump. slot < end here (the loop would have
					// terminated above otherwise), and the next arrival and
					// fault slots are strictly ahead, so until > slot.
					until := opts.MaxSlots
					if end < until {
						until = end
					}
					if na != cell.None && na < until {
						until = na
					}
					if nf := pps.NextFaultSlot(); nf != cell.None && nf < until {
						until = nf
					}
					if d.probing {
						sampleIdleSpan(opts.Probes, d.view, slot, until)
					}
					if opts.OnFastForward != nil {
						opts.OnFastForward(slot, until)
					}
					slot = until - 1 // loop post-increment resumes at until
					continue
				}
				drain = true
			}
		}
		cells := d.cellsBuf[:0]
		if !drain && slot < end {
			if cells, err = d.feedSlot(slot); err != nil {
				return err
			}
		}
		if overlap {
			shadowIn <- shadowSlot{t: slot, cells: cells}
		}
		if drain {
			d.deps, err = pps.DrainStep(slot, d.deps[:0])
		} else {
			d.deps, err = pps.Step(slot, cells, d.deps[:0])
		}
		if err != nil {
			return err
		}
		d.recordDepartures()
		if overlap {
			// Slot-end synchronization: the worker hands back its own
			// departure buffer; it will not touch it again until the next
			// shadowIn send, which happens only after this goroutine is
			// done reading (and after cells is rebuilt next iteration).
			d.shDeps = <-shadowOut
		} else {
			d.shDeps = sh.Step(slot, cells, d.shDeps[:0])
		}
		for _, c := range d.shDeps {
			d.rec.ShadowDepart(c)
		}
		if d.probing {
			d.sampleSlot(slot)
		}
		if d.tel != nil {
			d.tel.Tick(int64(slot), pps.Backlog(), d.rec.Matched(), d.rec.Drops(), d.rec.AdmittedTotal(), d.rec.RejectedTotal(), d.rec.ExpiredTotal())
			if slot%telemetryFlushStride == 0 {
				d.tel.ObserveDelays(d.rec.Delays(), d.telPrev)
			}
		}
	}
	d.slot = slot
	return nil
}

// runEvent is the event-driven core: cost is O(events), not O(slots).
// While anything is in flight, slots execute through fabric.EventStep —
// which itself only touches the pending inputs and busy outputs, advancing
// busy outputs independently of idle ones — and when both switches are
// fully quiet the clock jumps in one step to the next event: the source's
// next arrival (served by the memoized lookahead feed), the next fault due
// time, or the horizon, whichever comes first. Probe samples for elided
// spans are synthesized exactly as the fast-forward path does, so results
// are bit-identical to runStepped. selectEngine guarantees the
// preconditions: serial run, no tracer, Lookahead source, IdleInvariant
// algorithm.
func (d *driver) runEvent() error {
	pps, sh, opts, end := d.pps, d.sh, d.opts, d.end
	feed := traffic.NewEventFeed(d.look)
	executed := cell.Time(0)
	var err error
	slot := cell.Time(0)
	for ; slot < opts.MaxSlots; slot++ {
		if slot >= end && pps.Drained() && sh.Drained() {
			break
		}
		if pps.Backlog() == 0 && sh.Drained() {
			// Fully quiet (the O(1) backlog counter makes this check free):
			// nothing can move before the next arrival or fault, so unless
			// one is due this very slot, jump. slot < end here — otherwise
			// the loop would have terminated above — so the feed query is
			// within the monotone-consumption contract.
			na := feed.Next(slot - 1)
			if na != cell.None && na >= end {
				na = cell.None // beyond the horizon: never fed
			}
			nf := pps.NextFaultSlot()
			if na != slot && nf != slot {
				until := opts.MaxSlots
				if end < until {
					until = end
				}
				if na != cell.None && na < until {
					until = na
				}
				if nf != cell.None && nf < until {
					until = nf
				}
				if d.probing {
					sampleIdleSpan(opts.Probes, d.view, slot, until)
				}
				if opts.OnFastForward != nil {
					opts.OnFastForward(slot, until)
				}
				slot = until - 1 // loop post-increment resumes at until
				continue
			}
		}
		cells := d.cellsBuf[:0]
		if slot < end {
			if cells, err = d.feedSlot(slot); err != nil {
				return err
			}
		}
		d.deps, err = pps.EventStep(slot, cells, d.deps[:0])
		if err != nil {
			return err
		}
		d.recordDepartures()
		d.shDeps = sh.Step(slot, cells, d.shDeps[:0])
		for _, c := range d.shDeps {
			d.rec.ShadowDepart(c)
		}
		if d.probing {
			d.sampleSlot(slot)
		}
		if d.tel != nil {
			d.tel.Tick(int64(slot), pps.Backlog(), d.rec.Matched(), d.rec.Drops(), d.rec.AdmittedTotal(), d.rec.RejectedTotal(), d.rec.ExpiredTotal())
			// Flush cadence counts executed slots, not wall-clock slots: a
			// mostly-elided run would otherwise flush on almost every
			// executed slot (or never), defeating the coarse stride.
			if executed%telemetryFlushStride == 0 {
				d.tel.ObserveDelays(d.rec.Delays(), d.telPrev)
			}
			executed++
		}
	}
	d.slot = slot
	return nil
}

// Drive is Run against an existing PPS (so callers can inject plane
// failures or inspect internals afterwards). The PPS must be fresh (slot -1):
// per-run accounting (output utilization windows, peak queues, dispatch
// counters) is cumulative, so driving a fabric twice would silently blend
// the runs; Drive rejects a used fabric instead.
func Drive(pps *fabric.PPS, src traffic.Source, opts Options) (Result, error) {
	if s := pps.CurrentSlot(); s != -1 {
		return Result{}, fmt.Errorf("harness: fabric already driven through slot %d; build a fresh PPS per run", s)
	}
	cfg := pps.Config()
	if opts.MaxSlots <= 0 {
		opts.MaxSlots = 1 << 22
	}
	end := src.End()
	if end == cell.None {
		if opts.Horizon <= 0 {
			return Result{}, fmt.Errorf("harness: unbounded source needs an explicit Horizon")
		}
		end = opts.Horizon
	} else if opts.Horizon > 0 && opts.Horizon < end {
		end = opts.Horizon
	}

	if opts.Tracer != nil {
		pps.SetTracer(opts.Tracer)
	}
	// The fabric's worker pool (if any) outlives the run only to leak
	// goroutines; a driven fabric can never be driven again, so close it.
	// Close keeps the fabric inspectable and serially steppable.
	defer pps.Close()
	sh := shadow.New(cfg.N)
	d := &driver{
		pps:  pps,
		sh:   sh,
		src:  src,
		opts: &opts,
		end:  end,
		st:   cell.NewStamperSized(cfg.N),
		rec:  metrics.NewRecorderSized(cfg.N),
	}
	if opts.Validate {
		d.vd = traffic.NewValidator(cfg.N)
	}
	if err := opts.Admission.Validate(); err != nil {
		return Result{}, err
	}
	if !opts.Admission.Empty() {
		d.adm = admission.NewRuntime(opts.Admission, cfg.N)
	}
	d.probing = len(opts.Probes) > 0
	if d.probing {
		d.view = &slotView{pps: pps, sh: sh, rec: d.rec}
	}

	// Live telemetry: explicit Options.Telemetry wins, else the process
	// global. Per-slot ticks are atomic stores; the delay histograms are
	// delta-flushed every telemetryFlushStride slots (and once at the end),
	// so the steady-state slot path stays lock- and allocation-free.
	d.tel = opts.Telemetry
	if d.tel == nil {
		d.tel = obs.GlobalTelemetry()
	}
	if d.tel != nil {
		d.telPrev = obs.NewDelaySet()
		d.tel.RunStarted()
		defer d.tel.RunFinished()
	}

	// The span feed serves every engine's arrival phase; engine eligibility
	// is still keyed off the raw source (selectEngine), but quiescence
	// queries must go through the feed so they interleave with slab state.
	d.feed = traffic.NewSpanFeed(src, end)
	eng, _, reason := selectEngine(pps, src, opts)
	d.look = d.feed.Look()
	var err error
	if eng == EngineEvent {
		err = d.runEvent()
	} else {
		err = d.runStepped(eng == EngineFastForward)
	}
	if err != nil {
		return Result{}, err
	}
	slot := d.slot
	if d.tel != nil {
		d.tel.ObserveDelays(d.rec.Delays(), d.telPrev)
		d.tel.Tick(int64(slot), pps.Backlog(), d.rec.Matched(), d.rec.Drops(), d.rec.AdmittedTotal(), d.rec.RejectedTotal(), d.rec.ExpiredTotal())
	}
	if !pps.Drained() || !sh.Drained() {
		return Result{}, fmt.Errorf("harness: not drained after %d slots (pps backlog %d, shadow backlog %d)",
			slot, pps.Backlog(), sh.Backlog())
	}
	if d.probing && slot > 0 {
		// Final-slot flush: stride decimation would otherwise drop the last
		// executed slot (slot-1, whose state the view still holds), leaving
		// decimated series ending on pre-drain values. Force one sample per
		// series; slots already recorded are only marked Final, not
		// duplicated.
		for _, pb := range opts.Probes {
			for _, s := range pb.Series() {
				s.ForceNext()
			}
			pb.Sample(d.view)
		}
	}

	res := Result{
		Report:         d.rec.Report(),
		PeakPlaneQueue: pps.PeakPlaneQueue(),
		Slots:          slot,
		AlgorithmName:  pps.Algorithm().Name(),
		TraceEvents:    opts.Tracer.Events(),
		Engine:         eng.String(),
		EngineReason:   reason,
		Workers:        pps.Workers(),
		ShardPorts:     pps.ShardPorts(),
	}
	res.Drops = res.Report.Drops
	res.OnTimeFraction = res.Report.OnTimeFraction
	if slot > 0 {
		res.Goodput = float64(res.Report.Cells) / float64(slot)
	}
	if d.vd != nil {
		res.Burstiness = d.vd.Burstiness()
	}
	if opts.Utilization {
		res.Utilization = make([]float64, cfg.N)
		for j := 0; j < cfg.N; j++ {
			res.Utilization[j] = pps.Output(cell.Port(j)).Utilization()
		}
	}
	if d.probing {
		res.Series = obs.CollectSeries(opts.Probes)
	}
	if m := opts.Metrics; m != nil {
		m.Counter("harness_runs").Inc()
		m.Counter("harness_slots").Add(int64(slot))
		m.Counter("harness_cells").Add(int64(res.Report.Cells))
		m.Counter("harness_trace_events").Add(int64(res.TraceEvents))
		m.Counter("harness_drops").Add(int64(res.Drops))
		m.Gauge("harness_last_peak_plane_queue").Set(int64(res.PeakPlaneQueue))
		m.Histogram("harness_max_rqd", 8, 64).Add(int64(res.Report.MaxRQD))
		// Admission counters only when a policy shed something, so bare
		// runs leave the registry exactly as before this layer existed.
		if rej, exp := res.Report.Rejected, res.Report.ExpiredAdmit+res.Report.ExpiredReseq; rej > 0 || exp > 0 {
			m.Counter("harness_rejected").Add(int64(rej))
			m.Counter("harness_expired").Add(int64(exp))
		}
	}
	return res, nil
}

// sampleIdleSpan replays probe sampling for the elided slots [from, to) of a
// fast-forward jump. Probes implementing obs.IdleSpanSampler synthesize
// their points in closed form; any other probe is driven through its regular
// per-slot Sample so correctness never depends on the capability. No cell
// departs inside an idle span, so the view's front-RQD is cleared once for
// the whole span, and the view is left on the last elided slot — exactly the
// state the stepped loop would leave behind.
func sampleIdleSpan(probes []obs.Probe, view *slotView, from, to cell.Time) {
	view.rqd, view.rqdOK = 0, false
	for _, pb := range probes {
		if is, ok := pb.(obs.IdleSpanSampler); ok {
			is.SampleIdleSpan(view, from, to)
			continue
		}
		for t := from; t < to; t++ {
			view.slot = t
			pb.Sample(view)
		}
	}
	view.slot = to - 1
}

// String renders the full result as a small multi-line report, so CLIs and
// examples share one format instead of hand-formatting fields.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "algorithm=%s slots=%d peakPlaneQueue=%d", r.AlgorithmName, r.Slots, r.PeakPlaneQueue)
	if r.Burstiness > 0 {
		fmt.Fprintf(&b, " B=%d", r.Burstiness)
	}
	fmt.Fprintf(&b, "\n%s", r.Report)
	fmt.Fprintf(&b, "\nstage wait mean/max: input %.2f/%d plane %.2f/%d output %.2f/%d",
		r.Report.MeanInputWait, r.Report.MaxInputWait,
		r.Report.MeanPlaneWait, r.Report.MaxPlaneWait,
		r.Report.MeanOutputWait, r.Report.MaxOutputWait)
	if q := r.Report.Percentiles; q.RQD.N > 0 {
		fmt.Fprintf(&b, "\nrqd p50/p99/p999: %d/%d/%d  interdep gap p99: %d",
			q.RQD.P50, q.RQD.P99, q.RQD.P999, q.Gap.P99)
		fmt.Fprintf(&b, "\ntail p99 demux/plane/reseq: %d/%d/%d",
			q.Demux.P99, q.Plane.P99, q.Reseq.P99)
	}
	if len(r.Utilization) > 0 {
		min, mean, active := 1.0, 0.0, 0
		for _, u := range r.Utilization {
			if u == 0 {
				continue
			}
			active++
			mean += u
			if u < min {
				min = u
			}
		}
		if active > 0 {
			fmt.Fprintf(&b, "\nutilization: active=%d mean=%.4f min=%.4f", active, mean/float64(active), min)
		}
	}
	if len(r.Series) > 0 {
		pts := 0
		for _, s := range r.Series {
			pts += s.Len()
		}
		fmt.Fprintf(&b, "\nseries: %d (%d points)", len(r.Series), pts)
	}
	if rep := r.Report; rep.Rejected > 0 || rep.ExpiredAdmit > 0 || rep.ExpiredReseq > 0 {
		fmt.Fprintf(&b, "\nadmission: offered=%d admitted=%d rejected=%d expired=%d goodput=%.4f onTime=%.3f",
			rep.Offered, rep.Admitted, rep.Rejected, rep.ExpiredAdmit+rep.ExpiredReseq, r.Goodput, r.OnTimeFraction)
	}
	if r.TraceEvents > 0 {
		fmt.Fprintf(&b, "\ntrace events: %d", r.TraceEvents)
	}
	return b.String()
}
