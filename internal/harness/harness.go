// Package harness runs matched executions: one traffic source feeding both
// a PPS under test and the shadow reference switch, slot by slot, until both
// drain. It is the engine behind the public API, the experiment suite and
// the adversary's scratch simulations.
package harness

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/metrics"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

// Options tunes a run.
type Options struct {
	// Horizon stops feeding arrivals at this slot even if the source is
	// unbounded; 0 means "trust the source's End()". A run with an
	// unbounded source and Horizon 0 is an error.
	Horizon cell.Time
	// MaxSlots aborts a run that fails to drain (default 1<<22).
	MaxSlots cell.Time
	// OnPPSDepart, if non-nil, observes every PPS departure (with all
	// stage stamps set).
	OnPPSDepart func(cell.Cell)
	// Validate measures the traffic's leaky-bucket burstiness during the
	// run (cheap; on by default in the public API).
	Validate bool
	// FailPlanes marks these planes failed before the first slot. The
	// model forbids drops, so the run errors at the first dispatch into a
	// failed plane — the fault-tolerance experiments use this to find
	// which inputs a failure strands (Section 3 of the paper).
	FailPlanes []cell.Plane
}

// Result summarizes a matched execution.
type Result struct {
	Report metrics.Report
	// Burstiness is the measured leaky-bucket B of the offered traffic
	// (only if Options.Validate).
	Burstiness int64
	// PeakPlaneQueue is the largest per-output backlog in any plane.
	PeakPlaneQueue int
	// Slots is the number of slots until both switches drained.
	Slots cell.Time
	// Utilization is the per-output busy fraction between first and last
	// departure.
	Utilization []float64
	// AlgorithmName echoes the algorithm under test.
	AlgorithmName string
}

// Run executes src through a fresh PPS built from cfg and factory, and
// through the shadow switch, until both drain.
func Run(cfg fabric.Config, factory func(demux.Env) (demux.Algorithm, error), src traffic.Source, opts Options) (Result, error) {
	pps, err := fabric.New(cfg, factory)
	if err != nil {
		return Result{}, err
	}
	for _, k := range opts.FailPlanes {
		if int(k) < 0 || int(k) >= cfg.K {
			return Result{}, fmt.Errorf("harness: cannot fail nonexistent plane %d", k)
		}
		pps.Plane(k).Fail()
	}
	return Drive(pps, src, opts)
}

// Drive is Run against an existing PPS (so callers can inject plane
// failures or inspect internals afterwards). The PPS must be fresh (slot -1).
func Drive(pps *fabric.PPS, src traffic.Source, opts Options) (Result, error) {
	cfg := pps.Config()
	if opts.MaxSlots <= 0 {
		opts.MaxSlots = 1 << 22
	}
	end := src.End()
	if end == cell.None {
		if opts.Horizon <= 0 {
			return Result{}, fmt.Errorf("harness: unbounded source needs an explicit Horizon")
		}
		end = opts.Horizon
	} else if opts.Horizon > 0 && opts.Horizon < end {
		end = opts.Horizon
	}

	sh := shadow.New(cfg.N)
	st := cell.NewStamper()
	rec := metrics.NewRecorder()
	var vd *traffic.Validator
	if opts.Validate {
		vd = traffic.NewValidator(cfg.N)
	}

	var buf []traffic.Arrival
	var deps, shDeps, cellsBuf []cell.Cell
	slot := cell.Time(0)
	for ; slot < opts.MaxSlots; slot++ {
		if slot >= end && pps.Drained() && sh.Drained() {
			break
		}
		// Both switches copy cells into their own queues, so the scratch
		// slice is safe to reuse across slots.
		cells := cellsBuf[:0]
		if slot < end {
			buf = src.Arrivals(slot, buf[:0])
			if vd != nil {
				if err := vd.Observe(slot, buf); err != nil {
					return Result{}, err
				}
			}
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			cellsBuf = cells
		}
		deps, err := pps.Step(slot, cells, deps[:0])
		if err != nil {
			return Result{}, err
		}
		for _, d := range deps {
			rec.PPSDepart(d)
			if opts.OnPPSDepart != nil {
				opts.OnPPSDepart(d)
			}
		}
		shDeps = sh.Step(slot, cells, shDeps[:0])
		for _, d := range shDeps {
			rec.ShadowDepart(d)
		}
	}
	if !pps.Drained() || !sh.Drained() {
		return Result{}, fmt.Errorf("harness: not drained after %d slots (pps backlog %d, shadow backlog %d)",
			slot, pps.Backlog(), sh.Backlog())
	}

	res := Result{
		Report:         rec.Report(),
		PeakPlaneQueue: pps.PeakPlaneQueue(),
		Slots:          slot,
		AlgorithmName:  pps.Algorithm().Name(),
	}
	if vd != nil {
		res.Burstiness = vd.Burstiness()
	}
	res.Utilization = make([]float64, cfg.N)
	for j := 0; j < cfg.N; j++ {
		res.Utilization[j] = pps.Output(cell.Port(j)).Utilization()
	}
	return res, nil
}
