//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in. The
// allocation guard skips under -race: the detector instruments every
// allocation and shadow-maps memory, so alloc accounting no longer reflects
// the production build.
const raceEnabled = true
