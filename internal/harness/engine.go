package harness

import (
	"fmt"

	"ppsim/internal/fabric"
	"ppsim/internal/traffic"
)

// Engine selects Drive's slot-execution core. The zero value (EngineAuto)
// picks the fastest core the run is eligible for, so callers that never set
// the field keep getting bit-identical results at the best available speed.
type Engine int

const (
	// EngineAuto runs the event-driven core when the run qualifies (serial,
	// untraced, a Lookahead source, an IdleInvariant algorithm) and falls
	// back to the stepped core — honoring Options.FastForward — otherwise.
	EngineAuto Engine = iota
	// EngineStepped forces the historical slot-by-slot core. With
	// Options.FastForward set it still elides idle intervals when eligible
	// (the PR-5 behavior); without it, every slot executes.
	EngineStepped
	// EngineFastForward forces the stepped core with quiescence elision,
	// falling back to plain stepped (with Result.EngineReason set) when the
	// run does not qualify.
	EngineFastForward
	// EngineEvent forces the event-driven core, degrading to fastforward or
	// stepped (with Result.EngineReason set) when the run does not qualify.
	EngineEvent
)

// String returns the flag-friendly name ("auto", "stepped", "fastforward",
// "event").
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineStepped:
		return "stepped"
	case EngineFastForward:
		return "fastforward"
	case EngineEvent:
		return "event"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps a CLI flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto":
		return EngineAuto, nil
	case "stepped":
		return EngineStepped, nil
	case "fastforward":
		return EngineFastForward, nil
	case "event":
		return EngineEvent, nil
	}
	return EngineAuto, fmt.Errorf("harness: unknown engine %q (want auto, stepped, fastforward or event)", s)
}

// selectEngine resolves the requested engine against the run's eligibility
// and returns the effective engine (never EngineAuto), the source's
// Lookahead when it has one, and — when the choice is a degradation from
// what was requested (or, under EngineAuto, from the event core) — the
// human-readable reason, surfaced as Result.EngineReason.
//
// Eligibility is layered: quiescence elision (fastforward) needs an
// untraced run, a traffic.Lookahead source and a demux.IdleInvariant
// algorithm; the event core additionally needs a fully serial run — its
// sparse audit and busy-output sweep assume single-goroutine ownership of
// the fabric, and the stage-parallel engine's barrier already prices in
// touching every port.
func selectEngine(pps *fabric.PPS, src traffic.Source, opts Options) (Engine, traffic.Lookahead, string) {
	look, _ := src.(traffic.Lookahead)
	ffWhy := ""
	switch {
	case opts.Tracer != nil:
		ffWhy = "tracer attached: the event stream is inherently per-slot"
	case look == nil:
		ffWhy = "source does not implement traffic.Lookahead"
	case !pps.IdleInvariant():
		ffWhy = "algorithm " + pps.Algorithm().Name() + " does not certify demux.IdleInvariant"
	}
	evWhy := ffWhy
	if evWhy == "" && (opts.Workers != 0 || pps.Workers() > 0) {
		evWhy = "stage-parallel run: the event core is serial"
	}

	switch opts.Engine {
	case EngineStepped:
		if opts.FastForward {
			if ffWhy == "" {
				return EngineFastForward, look, ""
			}
			return EngineStepped, look, ffWhy
		}
		return EngineStepped, look, ""
	case EngineFastForward:
		if ffWhy == "" {
			return EngineFastForward, look, ""
		}
		return EngineStepped, look, ffWhy
	case EngineEvent:
		if evWhy == "" {
			return EngineEvent, look, ""
		}
		if ffWhy == "" {
			return EngineFastForward, look, evWhy
		}
		return EngineStepped, look, ffWhy
	default: // EngineAuto
		if evWhy == "" {
			return EngineEvent, look, ""
		}
		if opts.FastForward && ffWhy == "" {
			return EngineFastForward, look, evWhy
		}
		return EngineStepped, look, evWhy
	}
}
