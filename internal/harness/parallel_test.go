package harness

import (
	"fmt"
	"reflect"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/traffic"
)

// matrixAlgs mirrors the public registry (algorithms.go) so the equivalence
// matrix covers every demultiplexor the repo ships, not just round-robin.
var matrixAlgs = []struct {
	name string
	mk   func(e demux.Env) (demux.Algorithm, error)
}{
	{"rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerInput) }},
	{"perflow-rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) }},
	{"partition", func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, 2) }},
	{"random", func(e demux.Env) (demux.Algorithm, error) { return demux.NewRandom(e, 7) }},
	{"cpa", func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }},
	{"cpa-rotate", func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.RotateTie) }},
	{"cpa-sets", func(e demux.Env) (demux.Algorithm, error) { return demux.NewCPASets(e) }},
	{"stale-cpa", func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPA(e, 4) }},
	{"stale-cpa-randtie", func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaleCPARandomTie(e, 4, 7) }},
	{"buffered-cpa", func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedCPA(e, 4, demux.MinAvail) }},
	{"buffered-rr", func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedRR(e, -1) }},
	{"ftd", func(e demux.Env) (demux.Algorithm, error) { return demux.NewFTD(e, 2) }},
	{"least-loaded", func(e demux.Env) (demux.Algorithm, error) { return demux.NewLocalLeastLoaded(e) }},
}

// TestParallelMatchesSerialMatrix is the determinism contract of the
// stage-parallel engine: for every registered algorithm, every worker count
// and several port counts, a full harness run must produce a Result that is
// bit-identical to the serial engine's. Any divergence — one cell departing
// a slot earlier, one tie broken differently — fails DeepEqual.
func TestParallelMatchesSerialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence matrix skipped in -short mode")
	}
	for _, n := range []int{8, 32, 128} {
		horizon := cell.Time(256)
		if n == 128 {
			horizon = 128 // keep the matrix cheap at the widest port count
		}
		cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
		for _, alg := range matrixAlgs {
			run := func(workers int) Result {
				src := traffic.NewBernoulli(n, 0.6, horizon, 11)
				res, err := Run(cfg, alg.mk, src,
					Options{Validate: true, Utilization: true, Workers: workers})
				if err != nil {
					t.Fatalf("%s n=%d workers=%d: %v", alg.name, n, workers, err)
				}
				return res
			}
			serial := run(0)
			if serial.Report.Cells == 0 {
				t.Fatalf("%s n=%d: empty serial run", alg.name, n)
			}
			for _, w := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/n%d/w%d", alg.name, n, w), func(t *testing.T) {
					if par := run(w); !reflect.DeepEqual(stripEngine(serial), stripEngine(par)) {
						t.Errorf("parallel result diverges from serial\nserial:   %+v\nparallel: %+v", serial, par)
					}
				})
			}
		}
	}
}
