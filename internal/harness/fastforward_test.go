package harness

import (
	"fmt"
	"reflect"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/fabric"
	"ppsim/internal/faults"
	"ppsim/internal/obs"
	"ppsim/internal/traffic"
)

// ffShapes are the traffic shapes of the fast-forward equivalence matrix:
// saturated uniform traffic (no quiescent interval ever — fast-forward must
// be a perfect no-op), sparse bursty traffic (long idle gaps — the payoff
// case), and full-rate adversarial permutation traffic (quiesces only in the
// tail drain, exercising the drain micro-step against heavy backlogs).
var ffShapes = []struct {
	name    string
	horizon cell.Time
	mk      func(n int, horizon cell.Time) traffic.Source
}{
	{"uniform", 256, func(n int, h cell.Time) traffic.Source {
		return traffic.NewBernoulli(n, 0.6, h, 11)
	}},
	{"sparse", 384, func(n int, h cell.Time) traffic.Source {
		src, err := traffic.NewOnOff(n, 4, 96, h, 5)
		if err != nil {
			panic(err)
		}
		return src
	}},
	{"adversarial", 192, func(n int, h cell.Time) traffic.Source {
		perm := make([]cell.Port, n)
		for i := range perm {
			perm[i] = cell.Port(n - 1 - i)
		}
		src, err := traffic.NewPermutation(perm, h)
		if err != nil {
			panic(err)
		}
		return src
	}},
}

// stripEngine zeroes the engine-metadata fields so equivalence tests can
// DeepEqual Results produced by different engines: the measurements must be
// bit-identical, while the record of which core ran — and with how many
// workers over which shard geometry — intentionally differs.
func stripEngine(r Result) Result {
	r.Engine, r.EngineReason = "", ""
	r.Workers, r.ShardPorts = 0, nil
	return r
}

// TestEngineEquivalenceMatrix is the bit-identity contract of every
// slot-execution core, in the style of TestParallelMatchesSerialMatrix: for
// every registered algorithm, traffic shape, worker count and fault schedule
// (none, and an outage straddling idle gaps under DropCount), the
// fast-forward, event-driven and auto-selected engines must produce Results
// deeply equal to the forced-stepped oracle — decimated series (ring state
// included, since DeepEqual follows the Series pointers into their
// unexported fields), drop counters, RQD/RDJ statistics, burstiness,
// utilization, everything except the Engine/EngineReason record itself.
// Stale-information algorithms and stage-parallel runs exercise the
// capability gates: they degrade (recording why) and must still match.
func TestEngineEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence matrix skipped in -short mode")
	}
	const n = 8
	cfg := fabric.Config{N: n, K: 4, RPrime: 2, BufferCap: -1, CheckInvariants: true}
	schedules := []struct {
		name  string
		mk    func() *faults.Schedule
		polcy faults.Policy
	}{
		{"nofaults", func() *faults.Schedule { return nil }, faults.Abort},
		{"outage", func() *faults.Schedule {
			// Fail and recover land mid-run; with the sparse shape both
			// events fall inside idle gaps, so the jump must truncate at
			// them for the drop accounting to stay identical.
			return faults.NewSchedule().Outage(1, 100, 160)
		}, faults.DropCount},
	}
	var elidedFF, elidedEvent cell.Time
	eventRuns, fallbacks := 0, 0
	for _, alg := range matrixAlgs {
		for _, shape := range ffShapes {
			for _, w := range []int{0, 4} {
				for _, sched := range schedules {
					run := func(eng Engine, ff bool) Result {
						opts := Options{
							Validate:    true,
							Utilization: true,
							Workers:     w,
							Faults:      sched.mk(),
							FaultPolicy: sched.polcy,
							Engine:      eng,
							FastForward: ff,
							Probes:      obs.StandardProbes(n, cfg.K, 3, 16),
						}
						if shape.name == "sparse" {
							switch {
							case ff:
								opts.OnFastForward = func(from, to cell.Time) { elidedFF += to - from }
							case eng == EngineEvent:
								opts.OnFastForward = func(from, to cell.Time) { elidedEvent += to - from }
							}
						}
						res, err := Run(cfg, alg.mk, shape.mk(n, shape.horizon), opts)
						if err != nil {
							t.Fatalf("%s/%s/w%d/%s engine=%v ff=%v: %v", alg.name, shape.name, w, sched.name, eng, ff, err)
						}
						return res
					}
					t.Run(fmt.Sprintf("%s/%s/w%d/%s", alg.name, shape.name, w, sched.name), func(t *testing.T) {
						stepped := run(EngineStepped, false)
						if stepped.Report.Cells == 0 {
							t.Fatal("empty stepped run")
						}
						if stepped.Engine != "stepped" || stepped.EngineReason != "" {
							t.Fatalf("forced stepped run recorded engine %q (%q)", stepped.Engine, stepped.EngineReason)
						}
						variants := []struct {
							name string
							res  Result
						}{
							{"fastforward", run(EngineStepped, true)},
							{"event", run(EngineEvent, false)},
						}
						if w == 0 {
							variants = append(variants, struct {
								name string
								res  Result
							}{"auto", run(EngineAuto, false)})
						}
						for _, v := range variants {
							if !reflect.DeepEqual(stripEngine(stepped), stripEngine(v.res)) {
								t.Errorf("%s result diverges from stepped\nstepped: %+v\n%s: %+v", v.name, stepped, v.name, v.res)
							}
							if v.res.Engine == "event" {
								eventRuns++
								if w != 0 {
									t.Errorf("event core ran in a stage-parallel run (w=%d)", w)
								}
								if v.res.EngineReason != "" {
									t.Errorf("event run carries a degradation reason: %q", v.res.EngineReason)
								}
							} else if v.name == "event" {
								fallbacks++
								if v.res.EngineReason == "" {
									t.Errorf("event request degraded to %q without a reason", v.res.Engine)
								}
							}
						}
					})
				}
			}
		}
	}
	if elidedFF == 0 {
		t.Error("sparse shape elided no slots under fast-forward: the elision path was never exercised")
	}
	if elidedEvent == 0 {
		t.Error("sparse shape elided no slots under the event core: the quiet jump was never exercised")
	}
	if eventRuns == 0 {
		t.Error("no run used the event core")
	}
	if fallbacks == 0 {
		t.Error("no event request degraded: the capability gates were never exercised")
	}
}

// TestFastForwardSlotAllocFree pins the elided-interval path at zero heap
// allocations per interval, the fast-forward analogue of
// TestSteadyStateSlotAllocFree: one closed-form probe synthesis over a
// 64-slot span (rings warmed to capacity so ObserveSpan runs its overwrite
// arithmetic), one drain micro-step on the drained fabric, and one lookahead
// query plus its consuming Arrivals call on an RNG-backed source.
func TestFastForwardSlotAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; guard only meaningful on plain builds")
	}
	const warm = 512
	cfg := benchCfg()
	s := newSlotStepper(t, traffic.NewBernoulli(cfg.N, 0.6, warm, 1))
	s.rec.Reserve(cfg.N * warm * 2)
	for s.slot < warm || s.pps.Backlog() > 0 || s.sh.Backlog() > 0 {
		s.step()
	}
	probes := obs.StandardProbes(cfg.N, cfg.K, 4, 32)
	view := &slotView{pps: s.pps, sh: s.sh, rec: s.rec}
	// Warm every ring past capacity (stride 4 x cap 32 < 192 slots) so the
	// measured spans exercise the steady-state overwrite path, not append
	// growth.
	cursor := s.slot
	sampleIdleSpan(probes, view, cursor, cursor+192)
	cursor += 192

	onoff, err := traffic.NewOnOff(cfg.N, 4, 64, cell.None, 3)
	if err != nil {
		t.Fatal(err)
	}
	var look traffic.Lookahead = onoff
	var buf []traffic.Arrival
	after := cell.Time(-1)
	// Warm the lookahead scan buffers (pend and the consumer slice) across
	// enough bursts to reach their steady-state capacities.
	for i := 0; i < 128; i++ {
		na := look.NextArrival(after)
		buf = onoff.Arrivals(na, buf[:0])
		after = na
	}

	allocs := testing.AllocsPerRun(64, func() {
		sampleIdleSpan(probes, view, cursor, cursor+64)
		var err error
		s.deps, err = s.pps.DrainStep(cursor, s.deps[:0])
		if err != nil {
			t.Fatal(err)
		}
		cursor += 65
		na := look.NextArrival(after)
		buf = onoff.Arrivals(na, buf[:0])
		after = na
	})
	if allocs != 0 {
		t.Errorf("elided interval allocates: %.2f allocs/interval, want 0", allocs)
	}
}
