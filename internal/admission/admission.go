// Package admission models the policy layer evaluated in front of the
// demultiplexors: every offered arrival is either admitted into the PPS (and
// the shadow reference switch — both see the identical admitted stream) or
// turned away before it is stamped. Three policies compose:
//
//   - always-admit: the zero Spec. No state, no decisions, byte-identical
//     runs (pinned by the harness's inertness test).
//   - token-bucket: a deterministic integer token bucket per input, plus an
//     optional aggregate bucket over the whole switch. Rates are exact
//     rationals (num/den cells per slot) and refill is computed in closed
//     form from the gap since the previous decision, so the quiescence
//     fast-forward and event engines — which never execute idle slots —
//     make exactly the decisions a stepped run would.
//   - deadline-drop: cells carry absolute slot deadlines (assigned by the
//     traffic deadline wrapper); a cell whose deadline has already passed is
//     refused at admission, and one that expires inside the fabric is
//     reclassified at egress instead of counting toward delay statistics.
//
// A Spec is immutable once built and may be shared across runs; the per-run
// mutable token state lives in a Runtime, constructed per execution. All
// arithmetic is integer, so two runs over the same spec — serial,
// stage-parallel, fast-forward or event-driven — admit exactly the same
// cells.
package admission

import (
	"fmt"
	"strconv"
	"strings"

	"ppsim/internal/cell"
)

// Spec is a declarative admission policy. The zero value is always-admit:
// no rate limit, no aggregate limit, no deadline enforcement. Build it
// directly or via ParseSpec; a built Spec is immutable and may be shared
// across runs and goroutines.
type Spec struct {
	// RateNum/RateDen is the per-input token rate in cells per slot, as an
	// exact rational (e.g. 1/2 = one cell every two slots). RateNum == 0
	// (with RateDen 0 or 1) disables per-input rate limiting.
	RateNum int64
	RateDen int64
	// Burst is the per-input bucket depth in cells: the largest back-to-back
	// burst an idle input may inject. Meaningful only with a per-input rate;
	// it then must be >= 1 (a zero-depth bucket could never admit anything).
	Burst int64
	// AggRateNum/AggRateDen and AggBurst describe the aggregate bucket
	// shared by all inputs, in the same units. Zero disables it.
	AggRateNum int64
	AggRateDen int64
	AggBurst   int64
	// DeadlineDrop enables deadline enforcement: arrivals whose deadline has
	// already passed are refused at admission, and admitted cells that
	// depart after their deadline are reclassified as expired at egress
	// (excluded from delay statistics, like fault drops). Cells without a
	// deadline stamp are never touched.
	DeadlineDrop bool
}

// Empty reports whether the spec is always-admit: nothing to evaluate, so
// the harness skips the policy entirely and runs are byte-identical to a
// run with no admission configuration at all.
func (s *Spec) Empty() bool {
	if s == nil {
		return true
	}
	return s.RateNum == 0 && s.AggRateNum == 0 && !s.DeadlineDrop
}

// HasRate reports whether any token bucket (per-input or aggregate) is
// configured.
func (s *Spec) HasRate() bool {
	return s != nil && (s.RateNum > 0 || s.AggRateNum > 0)
}

// Name derives the policy name the reports echo: "always", "token-bucket",
// "deadline-drop", or "token-bucket+deadline-drop".
func (s *Spec) Name() string {
	switch {
	case s.Empty():
		return "always"
	case s.HasRate() && s.DeadlineDrop:
		return "token-bucket+deadline-drop"
	case s.HasRate():
		return "token-bucket"
	default:
		return "deadline-drop"
	}
}

// Validate reports spec errors: negative or zero-denominator rates, bursts
// missing or non-positive where a rate demands a bucket, and bursts given
// without a rate to refill them.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if err := validBucket("rate", s.RateNum, s.RateDen, s.Burst); err != nil {
		return err
	}
	return validBucket("agg-rate", s.AggRateNum, s.AggRateDen, s.AggBurst)
}

func validBucket(what string, num, den, burst int64) error {
	if num < 0 || den < 0 {
		return fmt.Errorf("admission: negative %s %d/%d", what, num, den)
	}
	if num > 0 {
		if den == 0 {
			return fmt.Errorf("admission: %s %d has a zero denominator", what, num)
		}
		if burst < 1 {
			return fmt.Errorf("admission: %s %d/%d needs a burst >= 1 (got %d)", what, num, den, burst)
		}
		if num > maxRateTerm || den > maxRateTerm || burst > maxRateTerm {
			return fmt.Errorf("admission: %s terms must be <= %d (got %d/%d burst %d)", what, int64(maxRateTerm), num, den, burst)
		}
	} else if den > 1 || burst != 0 {
		return fmt.Errorf("admission: %s burst/denominator given without a rate", what)
	}
	return nil
}

// maxRateTerm bounds every rate numerator, denominator and burst so the
// scaled token arithmetic (tokens are counted in 1/den units, refill
// multiplies num by an elapsed-slot gap clamped near the bucket capacity)
// can never overflow int64 even across the longest representable run.
const maxRateTerm = 1 << 30

// String renders the spec in the grammar accepted by ParseSpec; the zero
// spec renders as the empty string (always-admit).
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.RateNum > 0 {
		parts = append(parts, "rate:"+rat(s.RateNum, s.RateDen), fmt.Sprintf("burst:%d", s.Burst))
	}
	if s.AggRateNum > 0 {
		parts = append(parts, "agg-rate:"+rat(s.AggRateNum, s.AggRateDen), fmt.Sprintf("agg-burst:%d", s.AggBurst))
	}
	if s.DeadlineDrop {
		parts = append(parts, "deadline")
	}
	return strings.Join(parts, ",")
}

func rat(num, den int64) string {
	if den == 1 {
		return strconv.FormatInt(num, 10)
	}
	return fmt.Sprintf("%d/%d", num, den)
}

// ParseSpec parses the comma-separated admission spec grammar used by the
// -admission CLI flags:
//
//	rate:N or rate:N/D    per-input token rate in cells per slot
//	burst:B               per-input bucket depth in cells (requires rate)
//	agg-rate:N or N/D     aggregate rate over all inputs
//	agg-burst:B           aggregate bucket depth (requires agg-rate)
//	deadline              drop cells past their deadline (admission + egress)
//	always                explicit always-admit (must stand alone)
//
// Example: "rate:1/2,burst:16,agg-rate:8,agg-burst:64,deadline".
// The empty string and "always" parse to the zero always-admit spec.
// ParseSpec validates the assembled spec before returning it, so a parsed
// spec needs no separate Validate call.
func ParseSpec(spec string) (*Spec, error) {
	s := &Spec{}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "always" {
		return s, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		verb, rest, cut := strings.Cut(item, ":")
		switch verb {
		case "deadline":
			if cut {
				return nil, fmt.Errorf("admission: %q takes no argument", item)
			}
			s.DeadlineDrop = true
			continue
		case "always":
			return nil, fmt.Errorf("admission: %q cannot combine with other items", verb)
		}
		if !cut {
			return nil, fmt.Errorf("admission: %q is not VERB:ARGS", item)
		}
		switch verb {
		case "rate":
			num, den, err := parseRat(rest)
			if err != nil {
				return nil, fmt.Errorf("admission: bad rate in %q: %v", item, err)
			}
			s.RateNum, s.RateDen = num, den
			if s.Burst == 0 {
				s.Burst = 1
			}
		case "burst":
			b, err := strconv.ParseInt(rest, 10, 64)
			if err != nil || b < 1 {
				return nil, fmt.Errorf("admission: bad burst %q in %q", rest, item)
			}
			s.Burst = b
		case "agg-rate":
			num, den, err := parseRat(rest)
			if err != nil {
				return nil, fmt.Errorf("admission: bad agg-rate in %q: %v", item, err)
			}
			s.AggRateNum, s.AggRateDen = num, den
			if s.AggBurst == 0 {
				s.AggBurst = 1
			}
		case "agg-burst":
			b, err := strconv.ParseInt(rest, 10, 64)
			if err != nil || b < 1 {
				return nil, fmt.Errorf("admission: bad agg-burst %q in %q", rest, item)
			}
			s.AggBurst = b
		default:
			return nil, fmt.Errorf("admission: unknown verb %q in %q (want rate, burst, agg-rate, agg-burst, deadline or always)", verb, item)
		}
	}
	// A lone burst (no rate) is meaningless; surface it as the same error
	// Validate would give instead of silently always-admitting.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseRat(s string) (num, den int64, err error) {
	numStr, denStr, cut := strings.Cut(s, "/")
	num, err = strconv.ParseInt(numStr, 10, 64)
	if err != nil || num < 1 {
		return 0, 0, fmt.Errorf("numerator %q must be a positive integer", numStr)
	}
	den = 1
	if cut {
		den, err = strconv.ParseInt(denStr, 10, 64)
		if err != nil || den < 1 {
			return 0, 0, fmt.Errorf("denominator %q must be a positive integer", denStr)
		}
	}
	return num, den, nil
}

// bucket is one deterministic integer token bucket. Tokens are counted in
// units of 1/den cells, so a cell costs den tokens and a slot refills num
// tokens; capacity is burst*den. Refill is lazy and closed-form: the bucket
// remembers the slot of its previous decision and credits the whole gap at
// once, which makes it exact under engines that elide idle slots.
type bucket struct {
	num, den int64
	capacity int64
	tokens   int64
	last     cell.Time
}

func newBucket(num, den, burst int64) bucket {
	return bucket{num: num, den: den, capacity: burst * den, tokens: burst * den, last: 0}
}

// refill credits the slots elapsed since the previous decision. The elapsed
// gap is clamped before the multiply: once gap*num would exceed the missing
// tokens the bucket is simply full, so large idle gaps never overflow.
func (b *bucket) refill(t cell.Time) {
	gap := int64(t - b.last)
	b.last = t
	if gap <= 0 {
		return
	}
	if missing := b.capacity - b.tokens; gap > missing/b.num {
		b.tokens = b.capacity
		return
	}
	b.tokens += gap * b.num
}

// take reports whether den tokens are available at slot t and, if so,
// consumes them.
func (b *bucket) take(t cell.Time) bool {
	b.refill(t)
	if b.tokens < b.den {
		return false
	}
	b.tokens -= b.den
	return true
}

// peek reports availability at slot t without consuming (used to make the
// per-input + aggregate admission atomic: a cell must not drain one bucket
// when the other refuses it).
func (b *bucket) peek(t cell.Time) bool {
	b.refill(t)
	return b.tokens >= b.den
}

func (b *bucket) consume() { b.tokens -= b.den }

// Runtime is the per-run evaluator of one Spec: the per-input and aggregate
// token buckets. A Runtime belongs to exactly one execution; the spec it
// reads stays shared and immutable. Admit is O(1), allocation-free and
// purely integer, so decisions are identical across every engine.
type Runtime struct {
	spec   *Spec
	input  []bucket
	agg    bucket
	hasAgg bool
}

// NewRuntime returns a runtime for an n-input switch. The spec must have
// been validated.
func NewRuntime(s *Spec, n int) *Runtime {
	rt := &Runtime{spec: s}
	if s.RateNum > 0 {
		rt.input = make([]bucket, n)
		for i := range rt.input {
			rt.input[i] = newBucket(s.RateNum, s.RateDen, s.Burst)
		}
	}
	if s.AggRateNum > 0 {
		rt.agg = newBucket(s.AggRateNum, s.AggRateDen, s.AggBurst)
		rt.hasAgg = true
	}
	return rt
}

// Spec returns the immutable spec the runtime evaluates.
func (r *Runtime) Spec() *Spec { return r.spec }

// Admit decides the arrival on input in at slot t: true admits the cell
// (consuming one cell's worth of tokens from every configured bucket),
// false rejects it. The decision is atomic across buckets — a refused cell
// consumes nothing. Slots must be presented in non-decreasing order.
func (r *Runtime) Admit(t cell.Time, in cell.Port) bool {
	if r.input != nil {
		if !r.input[in].peek(t) {
			return false
		}
		if r.hasAgg {
			if !r.agg.peek(t) {
				return false
			}
			r.agg.consume()
		}
		r.input[in].consume()
		return true
	}
	if r.hasAgg {
		return r.agg.take(t)
	}
	return true
}

// Expired reports whether a cell stamped with the given deadline is past it
// at slot t under this runtime's spec (false when deadline enforcement is
// off or the cell carries no deadline; deadline 0 means "none").
func (r *Runtime) Expired(t, deadline cell.Time) bool {
	return r.spec.DeadlineDrop && deadline != 0 && t > deadline
}
