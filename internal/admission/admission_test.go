package admission

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func mustParse(t *testing.T, spec string) *Spec {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return s
}

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"rate:1,burst:1",
		"rate:1/2,burst:16",
		"rate:3/4,burst:8,agg-rate:8,agg-burst:64",
		"agg-rate:2/3,agg-burst:4",
		"rate:1/2,burst:16,deadline",
		"deadline",
	}
	for _, spec := range cases {
		s := mustParse(t, spec)
		if got := s.String(); got != spec {
			t.Errorf("ParseSpec(%q).String() = %q", spec, got)
		}
		again := mustParse(t, s.String())
		if *again != *s {
			t.Errorf("round-trip of %q changed spec: %+v vs %+v", spec, again, s)
		}
	}
}

func TestParseSpecNormalizes(t *testing.T) {
	// Items may arrive in any order with whitespace; burst defaults to 1
	// when a rate is given alone; "always" and "" are the zero spec.
	s := mustParse(t, " burst:4 , rate:1/2 ")
	want := Spec{RateNum: 1, RateDen: 2, Burst: 4}
	if *s != want {
		t.Fatalf("got %+v, want %+v", *s, want)
	}
	if s := mustParse(t, "rate:2"); s.Burst != 1 || s.RateDen != 1 {
		t.Fatalf("bare rate should default den=1 burst=1, got %+v", *s)
	}
	for _, spec := range []string{"", "always", "  "} {
		s := mustParse(t, spec)
		if !s.Empty() || s.Name() != "always" {
			t.Errorf("ParseSpec(%q) = %+v, want empty always-admit", spec, *s)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"rate:0,burst:1",          // zero rate
		"rate:-1,burst:1",         // negative rate
		"rate:1/0,burst:1",        // zero denominator
		"rate:1/2,burst:0",        // zero burst
		"burst:4",                 // burst without rate
		"agg-burst:4",             // agg-burst without agg-rate
		"deadline:5",              // deadline takes no argument
		"always,deadline",         // always must stand alone
		"shape:3",                 // unknown verb
		"rate",                    // missing colon
		"rate:1/2,burst:-3",       // negative burst
		"rate:1073741825,burst:1", // term over the overflow bound
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", spec)
		}
	}
}

func TestSpecNames(t *testing.T) {
	cases := map[string]string{
		"":                          "always",
		"rate:1/2,burst:4":          "token-bucket",
		"deadline":                  "deadline-drop",
		"rate:1/2,burst:4,deadline": "token-bucket+deadline-drop",
	}
	for spec, want := range cases {
		if got := mustParse(t, spec).Name(); got != want {
			t.Errorf("Name(%q) = %q, want %q", spec, got, want)
		}
	}
}

// TestBucketBoundary drives a 1/2-rate, burst-2 bucket through the
// exactly-empty and exactly-full boundary slots: the bucket must admit its
// full burst back-to-back, refuse at exactly-empty, readmit only once a
// whole cell's worth of tokens (two slots at rate 1/2) has accumulated,
// and cap refill at exactly-full after long idleness.
func TestBucketBoundary(t *testing.T) {
	rt := NewRuntime(mustParse(t, "rate:1/2,burst:2"), 1)
	admit := func(slot int64) bool { return rt.Admit(cell.Time(slot), 0) }

	// Full bucket at t=0: the burst of 2 goes through, the third is refused
	// at exactly-empty.
	for i := 0; i < 2; i++ {
		if !admit(0) {
			t.Fatalf("burst cell %d at t=0 refused", i)
		}
	}
	if admit(0) {
		t.Fatal("admitted past the burst at exactly-empty")
	}
	// One slot refills half a cell — still short.
	if admit(1) {
		t.Fatal("admitted with half a token")
	}
	// t=2 would have exactly one cell of tokens, but the refused probes at
	// t=0 and t=1 consumed nothing, so the balance must be exact: the slot-2
	// admission succeeds and leaves the bucket exactly empty again.
	if !admit(2) {
		t.Fatal("refused at exactly one accumulated cell")
	}
	if admit(2) {
		t.Fatal("admitted twice from one accumulated cell")
	}
	// Long idleness saturates at exactly-full (burst 2), not beyond: after
	// any gap only 2 back-to-back cells fit.
	for i := 0; i < 2; i++ {
		if !admit(1_000_000) {
			t.Fatalf("post-idle burst cell %d refused", i)
		}
	}
	if admit(1_000_000) {
		t.Fatal("bucket exceeded its burst after long idleness")
	}
}

// TestBucketClosedFormMatchesStepped is the engine-equivalence core
// property: a bucket refilled lazily over arrival gaps must make the same
// decisions as one ticked every slot.
func TestBucketClosedFormMatchesStepped(t *testing.T) {
	const horizon = 4096
	spec := mustParse(t, "rate:3/7,burst:5")
	lazy := NewRuntime(spec, 1)
	// Stepped reference: integer tokens in 1/7 units, +3 per slot, cap 35.
	tokens := int64(35)
	rng := uint64(0x9e3779b97f4a7c15)
	for slot := int64(0); slot < horizon; slot++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if slot > 0 {
			if tokens += 3; tokens > 35 {
				tokens = 35
			}
		}
		if rng%3 == 0 { // sparse arrivals: lazy refill spans multi-slot gaps
			want := tokens >= 7
			if want {
				tokens -= 7
			}
			if got := lazy.Admit(cell.Time(slot), 0); got != want {
				t.Fatalf("slot %d: lazy=%v stepped=%v", slot, got, want)
			}
		}
	}
}

// TestAggregateAtomicity checks a refused cell consumes nothing from
// either bucket: with a per-input burst of 1 and an exhausted aggregate,
// the input bucket must still hold its token for the next slot.
func TestAggregateAtomicity(t *testing.T) {
	rt := NewRuntime(mustParse(t, "rate:1,burst:1,agg-rate:1/4,agg-burst:1"), 2)
	if !rt.Admit(0, 0) {
		t.Fatal("first cell refused")
	}
	// Aggregate is empty; input 1's bucket is full but must not drain.
	if rt.Admit(0, 1) {
		t.Fatal("admitted past the aggregate burst")
	}
	// Aggregate refills one cell by t=4; input 1 must still have its token.
	if !rt.Admit(4, 1) {
		t.Fatal("input bucket drained by a refused cell")
	}
	// And input 1 is now empty until its own refill.
	if rt.Admit(4, 1) {
		t.Fatal("admitted with an empty input bucket")
	}
}

func TestExpired(t *testing.T) {
	ddl := NewRuntime(mustParse(t, "deadline"), 1)
	off := NewRuntime(mustParse(t, ""), 1)
	cases := []struct {
		t, deadline cell.Time
		want        bool
	}{
		{5, 0, false},  // no deadline stamp
		{5, 5, false},  // exactly on time
		{5, 6, false},  // early
		{6, 5, true},   // past
		{100, 1, true}, // long past
	}
	for _, c := range cases {
		if got := ddl.Expired(c.t, c.deadline); got != c.want {
			t.Errorf("Expired(%d, %d) = %v, want %v", c.t, c.deadline, got, c.want)
		}
		if off.Expired(c.t, c.deadline) {
			t.Errorf("Expired(%d, %d) true with deadline enforcement off", c.t, c.deadline)
		}
	}
}

// TestConservationQuick is the satellite property test: for 1k random
// (rate, burst, load) configurations, every offered cell is either
// admitted or rejected — never both, never neither — and admissions never
// exceed what the token arithmetic allows.
func TestConservationQuick(t *testing.T) {
	type config struct {
		RateNum, RateDen, Burst  uint8
		AggNum, AggDen, AggBurst uint8
		LoadPct                  uint8
		Seed                     uint64
	}
	check := func(c config) bool {
		const n, horizon = 4, 512
		s := &Spec{
			RateNum: int64(c.RateNum%8) + 1,
			RateDen: int64(c.RateDen%8) + 1,
			Burst:   int64(c.Burst%16) + 1,
		}
		if c.AggNum%2 == 0 {
			s.AggRateNum = int64(c.AggNum%8) + 1
			s.AggRateDen = int64(c.AggDen%8) + 1
			s.AggBurst = int64(c.AggBurst%32) + 1
		}
		if err := s.Validate(); err != nil {
			t.Logf("generated invalid spec %+v: %v", s, err)
			return false
		}
		rt := NewRuntime(s, n)
		load := uint64(c.LoadPct%150) + 1 // percent, deliberately past 100
		rng := c.Seed | 1
		var offered, admitted, rejected uint64
		for slot := int64(0); slot < horizon; slot++ {
			for in := 0; in < n; in++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if rng%100 >= load {
					continue
				}
				offered++
				if rt.Admit(cell.Time(slot), cell.Port(in)) {
					admitted++
				} else {
					rejected++
				}
			}
		}
		if offered != admitted+rejected {
			t.Logf("spec %q: offered %d != admitted %d + rejected %d", s, offered, admitted, rejected)
			return false
		}
		// Token arithmetic upper bound: each input can admit at most
		// burst + ceil(horizon * num/den) cells over the run.
		perInput := uint64(s.Burst) + uint64((horizon*s.RateNum+s.RateDen-1)/s.RateDen)
		if admitted > uint64(n)*perInput {
			t.Logf("spec %q: admitted %d exceeds token bound %d", s, admitted, uint64(n)*perInput)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefillOverflowSaturates(t *testing.T) {
	// A gap so large that gap*num would overflow int64 must saturate the
	// bucket at capacity, not wrap negative.
	rt := NewRuntime(mustParse(t, "rate:1073741824/3,burst:1073741824"), 1)
	if !rt.Admit(0, 0) {
		t.Fatal("full bucket refused at t=0")
	}
	far := cell.Time(int64(1) << 62)
	for i := 0; i < 3; i++ {
		if !rt.Admit(far, 0) {
			t.Fatalf("cell %d refused after huge idle gap (refill overflowed?)", i)
		}
	}
}

func TestValidateNil(t *testing.T) {
	var s *Spec
	if err := s.Validate(); err != nil {
		t.Fatalf("nil spec Validate: %v", err)
	}
	if !s.Empty() || s.Name() != "always" || s.String() != "" {
		t.Fatal("nil spec should behave as always-admit")
	}
}
