package cell

import (
	"fmt"
	"math/bits"
)

// Ref is a 32-bit handle into a Store: the owning shard in the top bits and
// the slot index within the shard's slab in the low bits (the split is
// chosen per Store from its shard count). Queues and heaps hold Refs instead
// of 64-byte Cell values, so moving a cell between stages copies four bytes
// and the cell body is written once, at dispatch, into a contiguous slab.
type Ref uint32

// Store is a columnar arena for in-flight cells. Cells live in per-shard
// contiguous slabs; each shard has a LIFO freelist so the steady state
// allocates nothing. Shards exist for the stage-parallel engine: a cell is
// allocated in the serial dispatch phase into the shard owning its output,
// and freed only by that shard's mux worker — allocation and free of one
// shard never race, and the stage barrier orders them, so no atomics are
// needed.
//
// A Store is not safe for concurrent use of the *same* shard; distinct
// shards may be used concurrently (each field below is only written under
// single-shard ownership).
type Store struct {
	idxBits uint32
	idxMask uint32
	shards  []storeShard
}

// storeShard is one slab + freelist. The trailing pad keeps the mutable
// slice headers and live counter of adjacent shards on different cache
// lines, since different workers write them concurrently.
type storeShard struct {
	cells []Cell
	free  []uint32
	live  int
	_     [64]byte
}

// NewStore returns a Store with the given shard count (>= 1). The Ref
// encoding reserves ceil(log2(shards)) top bits for the shard, leaving the
// rest for the per-shard index; with one shard the full 32 bits index the
// slab.
func NewStore(shards int) *Store {
	if shards < 1 {
		panic(fmt.Sprintf("cell: store needs >= 1 shard, got %d", shards))
	}
	shardBits := uint32(bits.Len(uint(shards - 1)))
	idxBits := 32 - shardBits
	return &Store{
		idxBits: idxBits,
		idxMask: uint32(uint64(1)<<idxBits - 1),
		shards:  make([]storeShard, shards),
	}
}

// Shards reports the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Put writes c into shard sh and returns its Ref, reusing a freed slot when
// one exists. It panics when the shard's index space is exhausted (2^idxBits
// cells live at once — far beyond any switch backlog this repo simulates).
func (s *Store) Put(sh int, c Cell) Ref {
	shard := &s.shards[sh]
	var idx uint32
	if n := len(shard.free); n > 0 {
		idx = shard.free[n-1]
		shard.free = shard.free[:n-1]
		shard.cells[idx] = c
	} else {
		idx = uint32(len(shard.cells))
		if idx > s.idxMask {
			panic(fmt.Sprintf("cell: store shard %d overflow (%d cells live)", sh, idx))
		}
		shard.cells = append(shard.cells, c)
	}
	shard.live++
	return Ref(uint32(sh)<<s.idxBits | idx)
}

// At returns a pointer to the cell r refers to. The pointer is valid until
// the slab grows (a Put into the same shard) — callers must not hold it
// across a Put, only read or stamp fields and move on.
func (s *Store) At(r Ref) *Cell {
	return &s.shards[uint32(r)>>s.idxBits].cells[uint32(r)&s.idxMask]
}

// Free returns r's slot to its shard's freelist. Freeing a ref twice
// corrupts the freelist; the fabric's conservation audit cross-checks
// Live() against the structural cell counts to catch such bugs.
func (s *Store) Free(r Ref) {
	shard := &s.shards[uint32(r)>>s.idxBits]
	shard.free = append(shard.free, uint32(r)&s.idxMask)
	shard.live--
}

// Take copies the cell out and frees its slot in one step.
func (s *Store) Take(r Ref) Cell {
	c := *s.At(r)
	s.Free(r)
	return c
}

// Live reports the number of refs currently allocated across all shards —
// exactly the cells sitting in plane queues plus output resequencers, which
// the fabric audit verifies.
func (s *Store) Live() int {
	n := 0
	for i := range s.shards {
		n += s.shards[i].live
	}
	return n
}
