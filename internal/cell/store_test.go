package cell

import (
	"testing"
	"testing/quick"
)

func storeCell(seq uint64) Cell {
	return New(seq, seq, Flow{In: Port(seq % 7), Out: Port(seq % 5)}, Time(seq))
}

func TestStorePutAtFree(t *testing.T) {
	s := NewStore(1)
	r := s.Put(0, storeCell(42))
	if got := s.At(r); got.Seq != 42 || got.Flow != storeCell(42).Flow {
		t.Fatalf("At = %v", got)
	}
	if s.Live() != 1 {
		t.Fatalf("Live = %d, want 1", s.Live())
	}
	c := s.Take(r)
	if c.Seq != 42 || s.Live() != 0 {
		t.Fatalf("Take = %v, Live = %d", c, s.Live())
	}
}

func TestStoreReusesFreedSlots(t *testing.T) {
	s := NewStore(1)
	a := s.Put(0, storeCell(1))
	b := s.Put(0, storeCell(2))
	s.Free(a)
	c := s.Put(0, storeCell(3)) // LIFO freelist: must land in a's slot
	if c != a {
		t.Errorf("freed slot not reused: got %v, want %v", c, a)
	}
	if s.At(b).Seq != 2 || s.At(c).Seq != 3 {
		t.Error("reuse clobbered a live cell")
	}
	if len(s.shards[0].cells) != 2 {
		t.Errorf("slab grew to %d despite freelist", len(s.shards[0].cells))
	}
}

func TestStoreShardsAreIndependent(t *testing.T) {
	s := NewStore(4)
	refs := make([]Ref, 4)
	for sh := 0; sh < 4; sh++ {
		refs[sh] = s.Put(sh, storeCell(uint64(100+sh)))
	}
	for sh := 0; sh < 4; sh++ {
		if got := s.At(refs[sh]).Seq; got != uint64(100+sh) {
			t.Errorf("shard %d: Seq = %d", sh, got)
		}
	}
	if s.Live() != 4 {
		t.Errorf("Live = %d", s.Live())
	}
	// Refs from distinct shards must be distinct even at equal indices.
	seen := map[Ref]bool{}
	for _, r := range refs {
		if seen[r] {
			t.Fatalf("duplicate ref %v across shards", r)
		}
		seen[r] = true
	}
}

func TestStoreOddShardCounts(t *testing.T) {
	// Non-power-of-two shard counts must round the shard field up.
	for _, shards := range []int{1, 2, 3, 5, 7, 11, 64, 255} {
		s := NewStore(shards)
		var refs []Ref
		for sh := 0; sh < shards; sh++ {
			for i := 0; i < 3; i++ {
				refs = append(refs, s.Put(sh, storeCell(uint64(sh*1000+i))))
			}
		}
		for i, r := range refs {
			sh, j := i/3, i%3
			if got := s.At(r).Seq; got != uint64(sh*1000+j) {
				t.Fatalf("shards=%d ref %d: Seq = %d, want %d", shards, i, got, sh*1000+j)
			}
		}
	}
}

func TestStoreInvalidShardCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStore(0)
}

// Property: an arbitrary interleaving of puts and frees behaves like a map
// from handle to cell, and Live always matches the model's size.
func TestStoreMatchesMapModel(t *testing.T) {
	prop := func(ops []uint16) bool {
		s := NewStore(3)
		model := map[Ref]uint64{}
		var handles []Ref
		seq := uint64(0)
		for _, op := range ops {
			if op%3 != 0 || len(handles) == 0 { // put
				sh := int(op) % 3
				seq++
				r := s.Put(sh, storeCell(seq))
				if _, dup := model[r]; dup {
					return false // live ref handed out twice
				}
				model[r] = seq
				handles = append(handles, r)
			} else { // free
				i := int(op/3) % len(handles)
				r := handles[i]
				if s.At(r).Seq != model[r] {
					return false
				}
				s.Free(r)
				delete(model, r)
				handles[i] = handles[len(handles)-1]
				handles = handles[:len(handles)-1]
			}
			if s.Live() != len(model) {
				return false
			}
		}
		for _, r := range handles {
			if s.At(r).Seq != model[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
