// Package cell defines the fixed-size cell that flows through every switch
// in this repository, together with flow identity and time-stamp bookkeeping.
//
// The model follows Section 2 of Attiya & Hay, "The Inherent Queuing Delay of
// Parallel Packet Switches" (SPAA 2004): cells arrive to and leave the switch
// in discrete time-slots, a slot being the time to transmit one cell at the
// external rate R. Fragmentation and reassembly happen outside the switch, so
// a cell carries no payload here — only identity and timing metadata needed
// to compute queuing delay and jitter.
package cell

import "fmt"

// Time is a discrete time-slot index. Slot 0 is the first slot of an
// execution. Negative values are used as "unset" sentinels.
type Time int64

// None is the sentinel for an unset time stamp.
const None Time = -1

// Port identifies an input-port or output-port of an N x N switch,
// in the range [0, N).
type Port int32

// Plane identifies a middle-stage switch of the PPS, in the range [0, K).
type Plane int32

// NoPlane is the sentinel returned by demultiplexors that keep a cell in
// the input buffer instead of dispatching it (the vector entry called
// "infinity" in Definition 2 of the paper).
const NoPlane Plane = -1

// Flow identifies the (input, output) pair a cell belongs to. The switch
// must preserve the order of cells within a flow and must not drop cells.
type Flow struct {
	In  Port
	Out Port
}

// String renders the flow as "(i->j)".
func (f Flow) String() string { return fmt.Sprintf("(%d->%d)", f.In, f.Out) }

// Cell is one fixed-size unit of switching work.
//
// A Cell is created when it arrives to the switch and is annotated as it
// moves through the stages. All stamps are in time-slots.
type Cell struct {
	// Seq is a globally unique, monotonically increasing sequence number
	// assigned at arrival; it doubles as the FCFS tie-breaker.
	Seq uint64

	// FlowSeq is the cell's index within its flow, starting at 0. Order
	// preservation means cells of a flow depart in FlowSeq order.
	FlowSeq uint64

	Flow Flow

	// Arrive is the slot in which the cell arrived to its input-port.
	Arrive Time

	// Dispatch is the slot in which the demultiplexor sent the cell to a
	// plane (equals Arrive for bufferless PPS; >= Arrive when buffered).
	Dispatch Time

	// Via is the plane the cell was switched through (PPS only).
	Via Plane

	// AtOutput is the slot the cell reached its output-port buffer.
	AtOutput Time

	// Depart is the slot the cell left the switch on its external line.
	Depart Time

	// Deadline is the absolute slot by which the cell must depart to count
	// as on time, assigned at admission from the arrival's deadline stamp.
	// Zero means no deadline (real deadlines are always >= 1 because the
	// traffic deadline wrapper assigns arrival slot + a positive offset).
	Deadline Time
}

// New returns a cell arriving at slot t on flow f with the given global and
// per-flow sequence numbers. All later stamps are unset.
func New(seq, flowSeq uint64, f Flow, t Time) Cell {
	return Cell{
		Seq:      seq,
		FlowSeq:  flowSeq,
		Flow:     f,
		Arrive:   t,
		Dispatch: None,
		Via:      NoPlane,
		AtOutput: None,
		Depart:   None,
	}
}

// QueuingDelay is Depart - Arrive, the total time the cell spent queued in
// the switch under the paper's propagation-free accounting. It panics if the
// cell has not departed: asking for the delay of an in-flight cell is a
// programming error in the harness.
func (c Cell) QueuingDelay() Time {
	if c.Depart == None {
		panic(fmt.Sprintf("cell %d %v has not departed", c.Seq, c.Flow))
	}
	return c.Depart - c.Arrive
}

// String renders a compact single-line description of the cell.
func (c Cell) String() string {
	return fmt.Sprintf("cell{#%d %v fs=%d arr=%d dis=%d via=%d out=%d dep=%d}",
		c.Seq, c.Flow, c.FlowSeq, c.Arrive, c.Dispatch, c.Via, c.AtOutput, c.Depart)
}

// Stamper hands out sequence numbers and per-flow indices for newly arriving
// cells. It is the single authority for cell identity in an execution, so
// that the PPS and the shadow switch see byte-identical cells.
//
// Per-flow counters live either in a dense n*n table (NewStamperSized, the
// harness's choice — profiling showed the per-cell map access dominating the
// stamp cost) or in a map (NewStamper, for callers without a known port
// count). Both behave identically; flows outside the sized range fall back
// to the map, so a dense Stamper accepts arbitrary flows too.
type Stamper struct {
	next    uint64
	n       int
	dense   []uint64
	perFlow map[Flow]uint64
}

// stamperDenseMax caps the dense table at 1M flows (8 MiB), i.e. n <= 1024;
// larger switches keep the map.
const stamperDenseMax = 1 << 20

// NewStamper returns an empty Stamper.
func NewStamper() *Stamper {
	return &Stamper{perFlow: make(map[Flow]uint64)}
}

// NewStamperSized returns a Stamper whose per-flow counters are a dense
// n*n table when n is positive and small enough, and a plain map otherwise.
func NewStamperSized(n int) *Stamper {
	s := NewStamper()
	if n > 0 && n*n <= stamperDenseMax {
		s.n = n
		s.dense = make([]uint64, n*n)
	}
	return s
}

// flowSeq returns a pointer to f's counter: the dense slot when f is in
// range, the map entry otherwise.
func (s *Stamper) flowSeq(f Flow) (uint64, bool) {
	if uint32(f.In) < uint32(s.n) && uint32(f.Out) < uint32(s.n) {
		return s.dense[int(f.In)*s.n+int(f.Out)], true
	}
	return s.perFlow[f], false
}

// Stamp mints the cell for an arrival on flow f at slot t.
func (s *Stamper) Stamp(f Flow, t Time) Cell {
	fs, inDense := s.flowSeq(f)
	if inDense {
		s.dense[int(f.In)*s.n+int(f.Out)] = fs + 1
	} else {
		s.perFlow[f] = fs + 1
	}
	c := New(s.next, fs, f, t)
	s.next++
	return c
}

// Count reports how many cells have been stamped so far.
func (s *Stamper) Count() uint64 { return s.next }

// FlowCount reports how many cells have been stamped for flow f.
func (s *Stamper) FlowCount(f Flow) uint64 {
	fs, _ := s.flowSeq(f)
	return fs
}
