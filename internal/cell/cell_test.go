package cell

import (
	"testing"
	"testing/quick"
)

func TestNewSetsSentinels(t *testing.T) {
	c := New(7, 3, Flow{In: 1, Out: 2}, 42)
	if c.Seq != 7 || c.FlowSeq != 3 {
		t.Errorf("sequence numbers: got (%d,%d), want (7,3)", c.Seq, c.FlowSeq)
	}
	if c.Arrive != 42 {
		t.Errorf("Arrive = %d, want 42", c.Arrive)
	}
	for name, v := range map[string]Time{"Dispatch": c.Dispatch, "AtOutput": c.AtOutput, "Depart": c.Depart} {
		if v != None {
			t.Errorf("%s = %d, want None", name, v)
		}
	}
	if c.Via != NoPlane {
		t.Errorf("Via = %d, want NoPlane", c.Via)
	}
}

func TestQueuingDelay(t *testing.T) {
	c := New(0, 0, Flow{}, 10)
	c.Depart = 17
	if got := c.QueuingDelay(); got != 7 {
		t.Errorf("QueuingDelay = %d, want 7", got)
	}
}

func TestQueuingDelayPanicsInFlight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for in-flight cell")
		}
	}()
	c := New(0, 0, Flow{}, 10)
	_ = c.QueuingDelay()
}

func TestFlowString(t *testing.T) {
	f := Flow{In: 3, Out: 9}
	if got := f.String(); got != "(3->9)" {
		t.Errorf("Flow.String() = %q", got)
	}
}

func TestStamperSequencing(t *testing.T) {
	s := NewStamper()
	f1 := Flow{In: 0, Out: 1}
	f2 := Flow{In: 2, Out: 1}

	a := s.Stamp(f1, 0)
	b := s.Stamp(f2, 0)
	c := s.Stamp(f1, 1)

	if a.Seq != 0 || b.Seq != 1 || c.Seq != 2 {
		t.Errorf("global seqs: %d %d %d, want 0 1 2", a.Seq, b.Seq, c.Seq)
	}
	if a.FlowSeq != 0 || b.FlowSeq != 0 || c.FlowSeq != 1 {
		t.Errorf("flow seqs: %d %d %d, want 0 0 1", a.FlowSeq, b.FlowSeq, c.FlowSeq)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	if s.FlowCount(f1) != 2 || s.FlowCount(f2) != 1 {
		t.Errorf("FlowCount: f1=%d f2=%d, want 2 1", s.FlowCount(f1), s.FlowCount(f2))
	}
}

// Property: global sequence numbers are strictly increasing and per-flow
// sequence numbers are dense (0,1,2,...) no matter the interleaving.
func TestStamperProperties(t *testing.T) {
	prop := func(flowChoices []uint8) bool {
		s := NewStamper()
		perFlow := make(map[Flow]uint64)
		var lastSeq uint64
		for i, ch := range flowChoices {
			f := Flow{In: Port(ch % 4), Out: Port((ch / 4) % 4)}
			c := s.Stamp(f, Time(i))
			if i > 0 && c.Seq != lastSeq+1 {
				return false
			}
			lastSeq = c.Seq
			if c.FlowSeq != perFlow[f] {
				return false
			}
			perFlow[f]++
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
