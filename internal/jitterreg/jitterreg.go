// Package jitterreg implements a jitter regulator with a bounded internal
// buffer, the mechanism the paper's Discussion connects to its lower
// bounds: "Jitter regulators that capture jitter control mechanisms use an
// internal buffer to shape the traffic ... It might be possible to
// translate our lower bounds on the relative queuing delay to bounds on the
// size of this internal buffer" (Section 6, citing Mansour & Patt-Shamir).
//
// The regulator releases each cell of a flow a fixed target delay D after
// its arrival, turning an uneven (jittery) arrival stream into an evenly
// spaced one. With an unbounded buffer and D at least the arrival stream's
// worst delay variation, the output jitter is zero. With a bounded buffer
// of size B the regulator is forced to release early when the buffer fills,
// and residual jitter appears — the experiment suite uses exactly this
// trade-off to illustrate why a PPS with the measured relative queuing
// delay needs correspondingly large downstream regulator buffers.
package jitterreg

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// Regulator delays cells toward a constant target delay D, holding at most
// B cells (B <= 0 means unbounded).
type Regulator struct {
	d   cell.Time
	b   int
	buf queue.FIFO[cell.Cell]

	released  uint64
	early     uint64 // cells released before their target (buffer pressure)
	lastSlot  cell.Time
	minJ      cell.Time // min observed release delay
	maxJ      cell.Time // max observed release delay
	everymade bool
}

// New returns a regulator with target delay d >= 0 and buffer bound b
// (b <= 0 = unbounded).
func New(d cell.Time, b int) (*Regulator, error) {
	if d < 0 {
		return nil, fmt.Errorf("jitterreg: target delay must be >= 0, got %d", d)
	}
	return &Regulator{d: d, b: b, lastSlot: -1}, nil
}

// TargetDelay returns D.
func (r *Regulator) TargetDelay() cell.Time { return r.d }

// Step advances one slot: the arriving cells (at most a handful; the
// regulator is per-flow or per-port downstream equipment) enter the buffer,
// then every cell whose target has expired is released, and if the buffer
// still exceeds its bound the oldest cells are force-released early.
// Released cells are appended to dst with Depart set to the release slot.
//
// Cells must arrive in nondecreasing Depart order of the upstream switch
// (their Arrive field here is the upstream departure slot, set by the
// caller).
func (r *Regulator) Step(t cell.Time, arrivals []cell.Cell, dst []cell.Cell) ([]cell.Cell, error) {
	if t <= r.lastSlot {
		return dst, fmt.Errorf("jitterreg: non-monotone slot %d after %d", t, r.lastSlot)
	}
	r.lastSlot = t
	for _, c := range arrivals {
		if c.Arrive > t {
			return dst, fmt.Errorf("jitterreg: cell %v arrives in the future of slot %d", c, t)
		}
		r.buf.Push(c)
	}
	release := func(c cell.Cell) {
		c.Depart = t
		delay := t - c.Arrive
		if !r.everymade || delay < r.minJ {
			r.minJ = delay
		}
		if !r.everymade || delay > r.maxJ {
			r.maxJ = delay
		}
		r.everymade = true
		if delay < r.d {
			r.early++
		}
		r.released++
		dst = append(dst, c)
	}
	// Timely releases.
	for !r.buf.Empty() && t-r.buf.Peek().Arrive >= r.d {
		release(r.buf.Pop())
	}
	// Overflow releases: the bounded buffer forces early departures.
	for r.b > 0 && r.buf.Len() > r.b {
		release(r.buf.Pop())
	}
	return dst, nil
}

// Jitter reports the observed release-delay spread (max - min), the
// regulator's output jitter. Zero until two cells have been released.
func (r *Regulator) Jitter() cell.Time {
	if r.released < 2 {
		return 0
	}
	return r.maxJ - r.minJ
}

// Early reports how many cells were force-released before their target
// delay because of buffer pressure.
func (r *Regulator) Early() uint64 { return r.early }

// Released reports the number of released cells.
func (r *Regulator) Released() uint64 { return r.released }

// Buffered reports the current occupancy.
func (r *Regulator) Buffered() int { return r.buf.Len() }
