package jitterreg

import (
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
)

func mk(seq uint64, arrive cell.Time) cell.Cell {
	return cell.New(seq, seq, cell.Flow{In: 0, Out: 0}, arrive)
}

func TestValidation(t *testing.T) {
	if _, err := New(-1, 0); err == nil {
		t.Error("negative target must be rejected")
	}
	r, err := New(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.TargetDelay() != 3 {
		t.Errorf("TargetDelay = %d", r.TargetDelay())
	}
}

func TestUnboundedBufferZeroJitter(t *testing.T) {
	// A jittery stream (delays vary by up to 4 slots upstream) through a
	// regulator with D=5 and unbounded buffer comes out with zero jitter.
	r, _ := New(5, 0)
	arrivals := map[cell.Time][]cell.Cell{
		0: {mk(0, 0)},
		1: {mk(1, 1)},
		6: {mk(2, 6), mk(3, 6)}, // a bunched pair (jitter upstream)
	}
	var out []cell.Cell
	for slot := cell.Time(0); slot < 30; slot++ {
		var err error
		out, err = r.Step(slot, arrivals[slot], out)
		if err != nil {
			t.Fatal(err)
		}
	}
	if r.Released() != 4 {
		t.Fatalf("released %d of 4", r.Released())
	}
	if r.Jitter() != 0 {
		t.Errorf("unbounded regulator jitter = %d, want 0", r.Jitter())
	}
	if r.Early() != 0 {
		t.Errorf("Early = %d, want 0", r.Early())
	}
	for _, c := range out {
		if c.Depart-c.Arrive != 5 {
			t.Errorf("cell %d released after %d slots, want 5", c.Seq, c.Depart-c.Arrive)
		}
	}
}

func TestBoundedBufferForcesEarlyRelease(t *testing.T) {
	// Buffer of 2 with a burst of 5 simultaneous cells and D=10: three
	// cells must leave early, creating jitter.
	r, _ := New(10, 2)
	var cells []cell.Cell
	for i := uint64(0); i < 5; i++ {
		cells = append(cells, mk(i, 0))
	}
	var out []cell.Cell
	for slot := cell.Time(0); slot < 30; slot++ {
		var in []cell.Cell
		if slot == 0 {
			in = cells
		}
		var err error
		out, err = r.Step(slot, in, out)
		if err != nil {
			t.Fatal(err)
		}
	}
	if r.Released() != 5 {
		t.Fatalf("released %d of 5", r.Released())
	}
	if r.Early() == 0 {
		t.Error("bounded buffer must force early releases")
	}
	if r.Jitter() == 0 {
		t.Error("early releases must create jitter")
	}
}

func TestMonotoneSlotEnforced(t *testing.T) {
	r, _ := New(1, 0)
	r.Step(5, nil, nil)
	if _, err := r.Step(5, nil, nil); err == nil {
		t.Error("repeated slot must be rejected")
	}
	if _, err := r.Step(4, nil, nil); err == nil {
		t.Error("backwards slot must be rejected")
	}
}

func TestFutureArrivalRejected(t *testing.T) {
	r, _ := New(1, 0)
	if _, err := r.Step(0, []cell.Cell{mk(0, 5)}, nil); err == nil {
		t.Error("future-stamped arrival must be rejected")
	}
}

// Property: with an unbounded buffer, every cell is released exactly D
// slots after arrival, whatever the arrival pattern.
func TestUnboundedExactDelay(t *testing.T) {
	prop := func(gaps []uint8, dRaw uint8) bool {
		d := cell.Time(dRaw % 16)
		r, err := New(d, 0)
		if err != nil {
			return false
		}
		// Compute arrival slots from the gaps, then step *every* slot
		// (the regulator is clocked hardware; it acts each slot).
		arriveAt := map[cell.Time]bool{}
		at := cell.Time(0)
		for _, g := range gaps {
			at += cell.Time(g%5) + 1
			arriveAt[at] = true
		}
		seq := uint64(0)
		var out []cell.Cell
		for slot := cell.Time(0); slot <= at+d+1; slot++ {
			var in []cell.Cell
			if arriveAt[slot] {
				in = []cell.Cell{mk(seq, slot)}
				seq++
			}
			var err error
			out, err = r.Step(slot, in, out)
			if err != nil {
				return false
			}
		}
		if uint64(len(out)) != seq {
			return false
		}
		for _, c := range out {
			if c.Depart-c.Arrive != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy never exceeds B (for B > 0) after Step returns.
func TestBufferBoundRespected(t *testing.T) {
	prop := func(bursts []uint8, bRaw uint8) bool {
		b := int(bRaw%8) + 1
		r, err := New(20, b)
		if err != nil {
			return false
		}
		seq := uint64(0)
		var out []cell.Cell
		for slot, burst := range bursts {
			var in []cell.Cell
			for i := 0; i < int(burst%4); i++ {
				in = append(in, mk(seq, cell.Time(slot)))
				seq++
			}
			var err error
			out, err = r.Step(cell.Time(slot), in, out)
			if err != nil {
				return false
			}
			if r.Buffered() > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
