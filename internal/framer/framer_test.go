package framer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/fabric"
	"ppsim/internal/harness"
	"ppsim/internal/traffic"
)

func TestOfferValidation(t *testing.T) {
	s := NewSegmenter(4)
	if _, err := s.Offer(cell.Flow{In: 0, Out: 1}, 0, 0); err == nil {
		t.Error("zero-length packet must be rejected")
	}
	if _, err := s.Offer(cell.Flow{In: 9, Out: 1}, 1, 0); err == nil {
		t.Error("out-of-range input must be rejected")
	}
	s.Arrivals(5, nil)
	if _, err := s.Offer(cell.Flow{In: 0, Out: 1}, 1, 3); err == nil {
		t.Error("offering into the past must be rejected")
	}
}

func TestSegmenterEmitsHeadOfLine(t *testing.T) {
	s := NewSegmenter(2)
	a, _ := s.Offer(cell.Flow{In: 0, Out: 1}, 3, 0)
	b, _ := s.Offer(cell.Flow{In: 0, Out: 0}, 2, 0)
	var got []traffic.Arrival
	for slot := cell.Time(0); slot < 5; slot++ {
		got = s.Arrivals(slot, got)
	}
	if len(got) != 5 {
		t.Fatalf("emitted %d cells, want 5", len(got))
	}
	// First 3 cells: packet a (out 1); next 2: packet b (out 0).
	for i, arr := range got {
		wantOut := cell.Port(1)
		if i >= 3 {
			wantOut = 0
		}
		if arr.Out != wantOut {
			t.Errorf("cell %d to output %d, want %d", i, arr.Out, wantOut)
		}
	}
	if s.Backlog() != 0 {
		t.Error("backlog should be drained")
	}
	_ = a
	_ = b
}

func TestPacketOfResolvesBoundaries(t *testing.T) {
	s := NewSegmenter(2)
	f := cell.Flow{In: 0, Out: 1}
	a, _ := s.Offer(f, 2, 0)
	b, _ := s.Offer(f, 3, 0)
	var buf []traffic.Arrival
	for slot := cell.Time(0); slot < 5; slot++ {
		buf = s.Arrivals(slot, buf[:0])
	}
	for fs, want := range map[uint64]uint64{0: a, 1: a, 2: b, 4: b} {
		p, err := s.PacketOf(f, fs)
		if err != nil {
			t.Fatal(err)
		}
		if p.ID != want {
			t.Errorf("FlowSeq %d -> packet %d, want %d", fs, p.ID, want)
		}
	}
	if _, err := s.PacketOf(f, 9); err == nil {
		t.Error("unowned cell must error")
	}
}

func TestFutureOffersWait(t *testing.T) {
	s := NewSegmenter(2)
	s.Offer(cell.Flow{In: 0, Out: 1}, 1, 4)
	for slot := cell.Time(0); slot < 4; slot++ {
		if got := s.Arrivals(slot, nil); len(got) != 0 {
			t.Fatalf("slot %d: early emission %v", slot, got)
		}
	}
	if got := s.Arrivals(4, nil); len(got) != 1 {
		t.Fatalf("packet should emit at its offer slot, got %v", got)
	}
}

func TestEndToEndReassemblyThroughPPS(t *testing.T) {
	const n, k, rp = 4, 4, 2
	seg := NewSegmenter(n)
	rng := rand.New(rand.NewSource(5))
	at := cell.Time(0)
	for p := 0; p < 30; p++ {
		f := cell.Flow{In: cell.Port(rng.Intn(n)), Out: cell.Port(rng.Intn(n))}
		if _, err := seg.Offer(f, 1+rng.Intn(5), at); err != nil {
			t.Fatal(err)
		}
		at += cell.Time(rng.Intn(3))
		if at == 0 {
			at = 1
		}
	}
	ras := NewReassembler(seg)
	cfg := fabric.Config{N: n, K: k, RPrime: rp, CheckInvariants: true}
	_, err := harness.Run(cfg,
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) },
		seg,
		harness.Options{
			Horizon: 4000,
			OnPPSDepart: func(c cell.Cell) {
				if err := ras.OnDepart(c); err != nil {
					t.Error(err)
				}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if ras.Completed() != len(seg.Offered()) {
		t.Fatalf("completed %d of %d packets", ras.Completed(), len(seg.Offered()))
	}
	for _, p := range seg.Offered() {
		d, ok := ras.Delay(p)
		if !ok {
			t.Fatalf("packet %d incomplete", p.ID)
		}
		// A packet of L cells served at one cell per slot from its offer
		// needs at least L-1 slots; sanity-check the lower edge.
		if d < cell.Time(p.Cells-1) {
			t.Errorf("packet %d (len %d) finished impossibly fast: %d slots", p.ID, p.Cells, d)
		}
	}
}

// Property: every emitted cell maps back to exactly the packet whose window
// covers it, in offer order per flow, for random workloads.
func TestSegmentationConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		const n = 3
		seg := NewSegmenter(n)
		rng := rand.New(rand.NewSource(seed))
		at := cell.Time(0)
		for p := 0; p < 15; p++ {
			f := cell.Flow{In: cell.Port(rng.Intn(n)), Out: cell.Port(rng.Intn(n))}
			if _, err := seg.Offer(f, 1+rng.Intn(4), at); err != nil {
				return false
			}
			at += cell.Time(rng.Intn(2))
			if at == 0 {
				at = 1
			}
		}
		perFlowSeq := map[cell.Flow]uint64{}
		perPacketGot := map[uint64]int{}
		var buf []traffic.Arrival
		for slot := cell.Time(0); slot < 500; slot++ {
			buf = seg.Arrivals(slot, buf[:0])
			for _, a := range buf {
				f := cell.Flow{In: a.In, Out: a.Out}
				fs := perFlowSeq[f]
				perFlowSeq[f] = fs + 1
				p, err := seg.PacketOf(f, fs)
				if err != nil {
					return false
				}
				perPacketGot[p.ID]++
				if perPacketGot[p.ID] > p.Cells {
					return false
				}
			}
			if seg.Backlog() == 0 && slot > at {
				break
			}
		}
		for _, p := range seg.Offered() {
			if perPacketGot[p.ID] != p.Cells {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
