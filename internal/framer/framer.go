// Package framer provides the machinery the paper places "outside of the
// switch": fragmentation of variable-length packets into fixed-size cells
// at the inputs, and reassembly at the outputs ("Packets are stored and
// transmitted in the switch as fixed-size cells; fragmentation and
// reassembly are done outside of the switch", Section 1).
//
// The Segmenter turns an offered packet workload into a cell-level
// traffic.Source (one cell per input per slot while packets are pending)
// and remembers which cell of each flow belongs to which packet. The
// Reassembler consumes the switch's departures — the PPS guarantees
// per-flow cell order, which is exactly what reassembly needs — and
// reports per-packet completion times. Packet-level delay exposes an
// effect invisible at cell granularity: a packet is only as fast as its
// slowest cell, so cell-delay tails translate directly into packet delay.
package framer

import (
	"fmt"
	"sort"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
	"ppsim/internal/traffic"
)

// Packet is one variable-length unit offered to an input.
type Packet struct {
	// ID is unique per Segmenter.
	ID uint64
	// Flow is the (input, output) pair every cell of the packet takes.
	Flow cell.Flow
	// Cells is the packet length in cells (>= 1).
	Cells int
	// Offered is the slot the packet became available at the input.
	Offered cell.Time
}

// Segmenter fragments offered packets into cells and serves them as a
// traffic.Source: each slot, each input with a pending packet emits the
// next cell of its head packet (head-of-line per input, like a real
// line card).
type Segmenter struct {
	n       int
	pending []queue.FIFO[*segPacket] // per input
	// perFlow maps each flow to the packet boundaries of its cell stream:
	// bounds[i] is the packet owning flow cells [start_i, start_i+len_i).
	perFlow map[cell.Flow][]*segPacket
	nextID  uint64
	backlog int
	offered []Packet
	last    cell.Time
	// future holds packets offered after the current slot.
	future []*segPacket
}

type segPacket struct {
	pkt       Packet
	flowStart uint64 // first FlowSeq of this packet within its flow
	emitted   int
}

// NewSegmenter returns a segmenter for an n-port switch.
func NewSegmenter(n int) *Segmenter {
	return &Segmenter{
		n:       n,
		pending: make([]queue.FIFO[*segPacket], n),
		perFlow: make(map[cell.Flow][]*segPacket),
		last:    -1,
	}
}

// Offer schedules a packet. Packets must be offered before the slot they
// become available is queried; per (input) they are served in offer order.
// It returns the packet's ID.
func (s *Segmenter) Offer(flow cell.Flow, cells int, at cell.Time) (uint64, error) {
	if cells < 1 {
		return 0, fmt.Errorf("framer: packet needs >= 1 cell, got %d", cells)
	}
	if int(flow.In) < 0 || int(flow.In) >= s.n || int(flow.Out) < 0 || int(flow.Out) >= s.n {
		return 0, fmt.Errorf("framer: flow %v outside %d-port switch", flow, s.n)
	}
	if at <= s.last {
		return 0, fmt.Errorf("framer: packet offered at slot %d but slot %d already served", at, s.last)
	}
	id := s.nextID
	s.nextID++
	p := Packet{ID: id, Flow: flow, Cells: cells, Offered: at}
	s.offered = append(s.offered, p)
	s.future = append(s.future, &segPacket{pkt: p})
	return id, nil
}

// Arrivals implements traffic.Source: one cell per input per slot from the
// head packet of that input.
func (s *Segmenter) Arrivals(t cell.Time, dst []traffic.Arrival) []traffic.Arrival {
	if t <= s.last {
		panic("framer: slots must be queried in increasing order")
	}
	s.last = t
	// Admit packets that became available.
	if len(s.future) > 0 {
		sort.SliceStable(s.future, func(i, j int) bool { return s.future[i].pkt.Offered < s.future[j].pkt.Offered })
		keep := s.future[:0]
		for _, sp := range s.future {
			if sp.pkt.Offered <= t {
				s.admit(sp)
			} else {
				keep = append(keep, sp)
			}
		}
		s.future = keep
	}
	for in := 0; in < s.n; in++ {
		q := &s.pending[in]
		if q.Empty() {
			continue
		}
		sp := q.Peek()
		dst = append(dst, traffic.Arrival{In: sp.pkt.Flow.In, Out: sp.pkt.Flow.Out})
		sp.emitted++
		s.backlog--
		if sp.emitted == sp.pkt.Cells {
			q.Pop()
		}
	}
	return dst
}

func (s *Segmenter) admit(sp *segPacket) {
	f := sp.pkt.Flow
	// The packet owns the next Cells cells of its flow's stream.
	var start uint64
	if prev := s.perFlow[f]; len(prev) > 0 {
		last := prev[len(prev)-1]
		start = last.flowStart + uint64(last.pkt.Cells)
	}
	sp.flowStart = start
	s.perFlow[f] = append(s.perFlow[f], sp)
	s.pending[sp.pkt.Flow.In].Push(sp)
	s.backlog += sp.pkt.Cells
}

// End implements traffic.Source: the segmenter cannot know when a pending
// backlog drains in advance, so it reports unbounded until empty.
func (s *Segmenter) End() cell.Time {
	if s.backlog == 0 && len(s.future) == 0 {
		return s.last + 1
	}
	return cell.None
}

// Backlog reports cells not yet emitted.
func (s *Segmenter) Backlog() int { return s.backlog }

// Offered returns all offered packets.
func (s *Segmenter) Offered() []Packet { return s.offered }

// PacketOf resolves which packet a flow's cell (by FlowSeq) belongs to.
func (s *Segmenter) PacketOf(f cell.Flow, flowSeq uint64) (Packet, error) {
	ps := s.perFlow[f]
	i := sort.Search(len(ps), func(i int) bool {
		return ps[i].flowStart+uint64(ps[i].pkt.Cells) > flowSeq
	})
	if i >= len(ps) || flowSeq < ps[i].flowStart {
		return Packet{}, fmt.Errorf("framer: flow %v cell %d belongs to no offered packet", f, flowSeq)
	}
	return ps[i].pkt, nil
}

// Reassembler completes packets from switch departures.
type Reassembler struct {
	seg      *Segmenter
	got      map[uint64]int
	done     map[uint64]cell.Time // packet ID -> completion slot
	complete int
}

// NewReassembler returns a reassembler bound to the segmentation.
func NewReassembler(seg *Segmenter) *Reassembler {
	return &Reassembler{seg: seg, got: make(map[uint64]int), done: make(map[uint64]cell.Time)}
}

// OnDepart consumes one departed cell.
func (r *Reassembler) OnDepart(c cell.Cell) error {
	p, err := r.seg.PacketOf(c.Flow, c.FlowSeq)
	if err != nil {
		return err
	}
	r.got[p.ID]++
	if r.got[p.ID] > p.Cells {
		return fmt.Errorf("framer: packet %d received %d cells but has only %d", p.ID, r.got[p.ID], p.Cells)
	}
	if r.got[p.ID] == p.Cells {
		r.done[p.ID] = c.Depart
		r.complete++
	}
	return nil
}

// Completed reports how many packets finished reassembly.
func (r *Reassembler) Completed() int { return r.complete }

// Delay returns a completed packet's delay: completion slot minus offer
// slot. ok is false while the packet is incomplete.
func (r *Reassembler) Delay(p Packet) (cell.Time, bool) {
	d, ok := r.done[p.ID]
	if !ok {
		return 0, false
	}
	return d - p.Offered, true
}
