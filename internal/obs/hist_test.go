package obs

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactPercentile is the nearest-rank reference (the stats.Summary
// convention), reimplemented here so the test does not depend on the stats
// package.
func exactPercentile(sorted []int64, p float64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(p / 100 * float64(n))
	if float64(rank) < p/100*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestHistBucketContainsValue(t *testing.T) {
	vals := []int64{0, 1, 2, 63, 64, 65, 127, 128, 129, 1000, 1 << 20, 1<<20 + 3,
		1<<30 - 1, 1 << 30, histMaxValue, histMaxValue + 100}
	for v := int64(0); v < 4096; v++ {
		vals = append(vals, v)
	}
	for _, v := range vals {
		idx := histBucket(v)
		lo := histLower(idx)
		w := histWidthAt(idx)
		cv := v
		if cv > histMaxValue {
			cv = histMaxValue
		}
		if cv < lo || cv >= lo+w {
			t.Fatalf("value %d: bucket %d covers [%d,%d), does not contain it", v, idx, lo, lo+w)
		}
		if v < histSubCount && (lo != v || w != 1) {
			t.Fatalf("value %d below subCount should be exact, got lower=%d width=%d", v, lo, w)
		}
	}
	// Bucket indices must be monotone and within range.
	last := -1
	for v := int64(0); v < 1<<18; v++ {
		idx := histBucket(v)
		if idx < last || idx >= histBuckets {
			t.Fatalf("value %d: bucket %d (last %d, max %d)", v, idx, last, histBuckets)
		}
		last = idx
	}
}

func TestLogHistQuantileMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewLogHist()
	var samples []int64
	for i := 0; i < 20000; i++ {
		var v int64
		switch i % 4 {
		case 0:
			v = rng.Int63n(50) // exact region
		case 1:
			v = rng.Int63n(1 << 16)
		case 2:
			v = -rng.Int63n(1 << 10) // negative RQD region
		default:
			v = rng.Int63n(1 << 30)
		}
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{0, 1, 10, 50, 90, 99, 99.9, 100} {
		exact := exactPercentile(samples, p)
		got := h.Quantile(p)
		w := BucketWidth(exact)
		if got > exact || exact-got >= w {
			if !(got <= exact+w && got >= exact-w) {
				t.Fatalf("p%v: hist %d vs exact %d (bucket width %d)", p, got, exact, w)
			}
		}
		// The histogram answer must sit in the bucket holding the exact
		// answer (or be clamped to the exact min/max).
		if diff := got - exact; diff >= w || diff <= -w {
			t.Fatalf("p%v: hist %d off by %d, more than bucket width %d", p, got, diff, w)
		}
	}
	if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
		t.Fatalf("min/max not exact: got %d/%d want %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
	}
}

func TestLogHistExactBelow64(t *testing.T) {
	h := NewLogHist()
	var samples []int64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(64) - 32 // all magnitudes < 64: unit buckets
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{25, 50, 75, 99, 99.9} {
		if got, want := h.Quantile(p), exactPercentile(samples, p); got != want {
			t.Fatalf("p%v: got %d want exact %d", p, got, want)
		}
	}
}

func TestLogHistMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	serial := NewLogHist()
	shards := []*LogHist{NewLogHist(), NewLogHist(), NewLogHist()}
	for i := 0; i < 9000; i++ {
		v := rng.Int63n(1<<20) - 1<<10
		serial.Record(v)
		shards[i%3].Record(v)
	}
	merged := NewLogHist()
	for _, s := range shards {
		merged.Merge(s)
	}
	if !reflect.DeepEqual(serial, merged) {
		t.Fatalf("merged shards differ from serial histogram: %+v vs %+v", serial.Summary(), merged.Summary())
	}
}

func TestLogHistMergeDeltaNoDoubleCount(t *testing.T) {
	run := NewLogHist()
	prev := NewLogHist()
	totals := NewLogHist()
	want := NewLogHist()
	rng := rand.New(rand.NewSource(5))
	for flush := 0; flush < 4; flush++ {
		for i := 0; i < 1000; i++ {
			v := rng.Int63n(500) - 50
			run.Record(v)
			want.Record(v)
		}
		totals.MergeDelta(run, prev)
		prev.CopyFrom(run)
	}
	if !reflect.DeepEqual(totals, want) {
		t.Fatalf("delta-merged totals differ from direct recording: %+v vs %+v", totals.Summary(), want.Summary())
	}
	// A flush with no growth must be a no-op.
	before := *totals
	totals.MergeDelta(run, prev)
	if !reflect.DeepEqual(&before, totals) {
		t.Fatal("empty delta changed totals")
	}
}

func TestLogHistRecordN(t *testing.T) {
	a, b := NewLogHist(), NewLogHist()
	for _, v := range []int64{-7, 0, 3, 100, 1 << 22} {
		a.RecordN(v, 13)
		for i := 0; i < 13; i++ {
			b.Record(v)
		}
	}
	a.RecordN(42, 0)
	a.RecordN(42, -5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RecordN differs from repeated Record: %+v vs %+v", a.Summary(), b.Summary())
	}
}

func TestLogHistEmptyAndReset(t *testing.T) {
	h := NewLogHist()
	if q := h.Summary(); q != (Quantiles{}) {
		t.Fatalf("empty histogram summary not zero: %+v", q)
	}
	h.Record(9)
	h.Reset()
	if h.N() != 0 || h.Quantile(50) != 0 {
		t.Fatal("reset did not empty the histogram")
	}
}

func TestDelaySetQuantiles(t *testing.T) {
	d := NewDelaySet()
	d.RQD.Record(5)
	d.Gap.Record(2)
	q := d.Quantiles()
	if q.RQD.N != 1 || q.RQD.P50 != 5 || q.Gap.P50 != 2 || q.Demux.N != 0 {
		t.Fatalf("unexpected quantiles: %+v", q)
	}
}
