package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"ppsim/internal/cell"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{T: 1, Kind: EvArrival}) // must not panic
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Events() != 0 {
		t.Error("nil tracer counts events")
	}
}

func TestNullSinkTracerDisabled(t *testing.T) {
	tr := NewTracer(nil)
	if tr.Enabled() {
		t.Error("null-sink tracer must report disabled so hot paths skip event construction")
	}
	tr.Emit(Event{}) // still legal, just discarded
	if tr.Events() != 1 {
		t.Errorf("Events = %d, want 1", tr.Events())
	}
}

func TestRingSinkOrderAndWrap(t *testing.T) {
	ring := NewRingSink(3)
	tr := NewTracer(ring)
	if !tr.Enabled() {
		t.Fatal("ring tracer must be enabled")
	}
	for i := 0; i < 5; i++ {
		tr.Emit(Event{T: cell.Time(i), Kind: EvArrival, Seq: uint64(i)})
	}
	evs := ring.Events()
	if len(evs) != 3 || ring.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", len(evs), ring.Dropped())
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+2) {
			t.Errorf("evs[%d].Seq = %d, want %d", i, ev.Seq, i+2)
		}
	}
	if tr.Events() != 5 {
		t.Errorf("Events = %d, want 5", tr.Events())
	}
}

func TestEventKindNames(t *testing.T) {
	want := map[EventKind]string{
		EvArrival:      "arrival",
		EvDispatch:     "dispatch",
		EvPlaneEnqueue: "plane-enqueue",
		EvMuxPull:      "mux-pull",
		EvDepart:       "depart",
		EvViolation:    "violation",
		EventKind(99):  "unknown",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}

// TestJSONLSinkSchema checks the documented JSONL trace schema field by
// field.
func TestJSONLSinkSchema(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	tr := NewTracer(sink)
	tr.Emit(Event{T: 7, Kind: EvDispatch, Seq: 42, In: 3, Out: 5, Plane: 1})
	tr.Emit(Event{T: 8, Kind: EvViolation, Plane: cell.NoPlane, Note: "boom"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), sb.String())
	}
	var first map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	for k, want := range map[string]interface{}{
		"t": 7.0, "kind": "dispatch", "seq": 42.0, "in": 3.0, "out": 5.0, "plane": 1.0,
	} {
		if first[k] != want {
			t.Errorf("line1[%q] = %v, want %v", k, first[k], want)
		}
	}
	if _, hasNote := first["note"]; hasNote {
		t.Error("ordinary events must omit the note field")
	}
	var second map[string]interface{}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if second["kind"] != "violation" || second["note"] != "boom" || second["plane"] != -1.0 {
		t.Errorf("violation line = %v", second)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestJSONLSinkLatchesError(t *testing.T) {
	fw := &failWriter{}
	sink := NewJSONLSink(fw)
	sink.Emit(Event{})
	sink.Emit(Event{})
	// The buffer absorbs small events, so the error surfaces at flush time.
	if err := sink.Close(); err == nil {
		t.Fatal("expected flush error")
	}
	if sink.Err() == nil {
		t.Fatal("expected latched error")
	}
	calls := fw.n
	sink.Emit(Event{})
	if err := sink.Close(); err == nil {
		t.Fatal("latched error must keep reporting")
	}
	if fw.n != calls {
		t.Errorf("writer called %d more times after latch, want 0", fw.n-calls)
	}
}

// TestJSONLSinkFlushOnClose pins the buffering contract the CLI trace flows
// rely on: a small event sits in the sink's buffer (invisible to the
// underlying writer) until Close, which flushes it; Tracer.Close forwards to
// the sink's Close, and both are idempotent.
func TestJSONLSinkFlushOnClose(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb)
	tr := NewTracer(sink)
	tr.Emit(Event{T: 3, Kind: EvDepart, Seq: 9, In: 1, Out: 2, Plane: 0})
	if sb.Len() != 0 {
		t.Fatalf("event reached the writer before Close: %q", sb.String())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var got map[string]interface{}
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &got); err != nil {
		t.Fatalf("flushed line not JSON: %v (%q)", err, sb.String())
	}
	if got["kind"] != "depart" || got["seq"] != 9.0 {
		t.Errorf("flushed line = %v", got)
	}
	n := sb.Len()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != n {
		t.Error("second Close must not write again")
	}
}
