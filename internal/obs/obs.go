// Package obs is the observability layer of the simulator: a low-overhead
// metrics registry (counters, gauges, fixed-bucket histograms), per-slot
// time-series probes backed by ring-buffered series with stride decimation,
// and a structured event tracer with pluggable sinks.
//
// The package is standard-library only and built so the *disabled* state
// costs nearly nothing: a nil *Tracer is a single branch per emission site
// (the fabric additionally caches Enabled so a null-sink tracer costs one
// predictable branch), and a run with no probes never touches the series
// machinery. The harness drives probes once per slot, after the mux phase
// of the slot, so sampled series align with the paper's departure-time
// accounting (see DESIGN.md §7).
package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"ppsim/internal/cell"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds emitted by the fabric, in the order a cell experiences them.
const (
	// EvArrival: a cell arrived at input In destined to Out.
	EvArrival EventKind = iota
	// EvDispatch: the demultiplexor sent the cell to plane Plane.
	EvDispatch
	// EvPlaneEnqueue: the cell was accepted into plane Plane's queue.
	EvPlaneEnqueue
	// EvMuxPull: output Out's multiplexor pulled the cell from plane Plane.
	EvMuxPull
	// EvDepart: the cell left the switch on output Out's external line.
	EvDepart
	// EvViolation: the fabric detected a model violation; Note carries the
	// error text. The run aborts after this event.
	EvViolation
	// EvDrop: the cell was lost to a failed plane (or its loss stream)
	// under the DropCount fault policy; Plane is the plane that lost it.
	// Emitted instead of EvPlaneEnqueue for dispatch-time drops, and on its
	// own for cells a plane's backlog held when the plane failed.
	EvDrop
)

var kindNames = [...]string{
	EvArrival:      "arrival",
	EvDispatch:     "dispatch",
	EvPlaneEnqueue: "plane-enqueue",
	EvMuxPull:      "mux-pull",
	EvDepart:       "depart",
	EvViolation:    "violation",
	EvDrop:         "drop",
}

// String names the kind as it appears in JSONL traces.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured trace record.
type Event struct {
	// T is the slot the event happened in.
	T cell.Time
	// Kind discriminates the event.
	Kind EventKind
	// Seq is the global sequence number of the cell involved (0 for
	// violations, which are not tied to a single cell).
	Seq uint64
	// In and Out are the cell's flow endpoints.
	In  cell.Port
	Out cell.Port
	// Plane is the center-stage plane involved, or cell.NoPlane when the
	// event precedes the dispatch decision.
	Plane cell.Plane
	// Note carries the violation detail; empty for ordinary events.
	Note string
}

// Sink consumes trace events. Sinks are driven from the run's goroutine
// only; they need not be safe for concurrent use.
type Sink interface {
	Emit(Event)
}

// NullSink discards every event. A Tracer over a NullSink reports
// Enabled() == false, so instrumented code skips event construction
// entirely — this is the compiled-in-but-off configuration the overhead
// guard benchmark measures.
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(Event) {}

// Tracer fans events into a sink and counts them. A nil *Tracer is valid
// and inert, so callers can thread an optional tracer without nil checks
// at every site.
type Tracer struct {
	sink Sink
	n    uint64
}

// NewTracer returns a tracer draining into sink (nil means NullSink).
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		sink = NullSink{}
	}
	return &Tracer{sink: sink}
}

// Enabled reports whether emitting to this tracer can have any effect.
// Hot paths cache it and skip event construction when false.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	_, null := t.sink.(NullSink)
	return !null
}

// Emit records one event. Safe on a nil tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.n++
	t.sink.Emit(ev)
}

// Events reports how many events were emitted.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Close closes the sink if it implements io.Closer (the buffered JSONL sink
// flushes here) and reports its error. Safe on a nil tracer; sinks without
// a Close are a no-op.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if c, ok := t.sink.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// RingSink keeps the last capacity events in memory — the sink for tests
// and post-mortem inspection of bounded windows.
type RingSink struct {
	evs     []Event
	cap     int
	start   int
	dropped uint64
}

// NewRingSink returns a ring sink holding at most capacity events
// (capacity < 1 panics: a zero-size ring is a configuration error).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		panic("obs: ring sink capacity must be positive")
	}
	return &RingSink{cap: capacity}
}

// Emit implements Sink, overwriting the oldest event when full.
func (s *RingSink) Emit(ev Event) {
	if len(s.evs) < s.cap {
		s.evs = append(s.evs, ev)
		return
	}
	s.evs[s.start] = ev
	s.start = (s.start + 1) % s.cap
	s.dropped++
}

// Events returns the retained events in emission order.
func (s *RingSink) Events() []Event {
	out := make([]Event, 0, len(s.evs))
	out = append(out, s.evs[s.start:]...)
	out = append(out, s.evs[:s.start]...)
	return out
}

// Dropped reports how many events were overwritten.
func (s *RingSink) Dropped() uint64 { return s.dropped }

// jsonEvent is the stable JSONL schema (documented in README §Observability).
type jsonEvent struct {
	T     int64  `json:"t"`
	Kind  string `json:"kind"`
	Seq   uint64 `json:"seq"`
	In    int32  `json:"in"`
	Out   int32  `json:"out"`
	Plane int32  `json:"plane"`
	Note  string `json:"note,omitempty"`
}

// JSONLSink writes one JSON object per event, newline-delimited, through an
// internal buffer — call Close (or Flush) after the run to push the tail of
// the buffer to the underlying writer. The first write error latches and
// suppresses further writes; check Err (also returned by Close) after the
// run.
type JSONLSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(jsonEvent{
		T:     int64(ev.T),
		Kind:  ev.Kind.String(),
		Seq:   ev.Seq,
		In:    int32(ev.In),
		Out:   int32(ev.Out),
		Plane: int32(ev.Plane),
		Note:  ev.Note,
	})
}

// Flush pushes buffered events to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Close implements io.Closer by flushing; the underlying writer is the
// caller's to close. Tracer.Close forwards here, so CLI flows that wrap a
// file in a JSONL tracer lose no buffered tail.
func (s *JSONLSink) Close() error { return s.Flush() }

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }
