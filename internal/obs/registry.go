package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d < 0 panics: counters only go up).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions. Safe for concurrent
// use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Hist is a fixed-bucket histogram over non-negative integer samples:
// bucket i covers [i*width, (i+1)*width); negative samples count as
// underflow, samples past the last bucket as overflow. Safe for concurrent
// use.
type Hist struct {
	width     int64
	buckets   []atomic.Int64
	underflow atomic.Int64
	overflow  atomic.Int64
	total     atomic.Int64
}

func newHist(width int64, nbuckets int) *Hist {
	if width <= 0 || nbuckets <= 0 {
		panic("obs: histogram width and bucket count must be positive")
	}
	return &Hist{width: width, buckets: make([]atomic.Int64, nbuckets)}
}

// Add records one sample.
func (h *Hist) Add(v int64) {
	h.total.Add(1)
	if v < 0 {
		h.underflow.Add(1)
		return
	}
	b := v / h.width
	if b >= int64(len(h.buckets)) {
		h.overflow.Add(1)
		return
	}
	h.buckets[b].Add(1)
}

// Total reports the number of recorded samples.
func (h *Hist) Total() int64 { return h.total.Load() }

// Bucket reports the count in bucket i.
func (h *Hist) Bucket(i int) int64 { return h.buckets[i].Load() }

// Width reports the bucket width.
func (h *Hist) Width() int64 { return h.width }

// Buckets reports the number of buckets.
func (h *Hist) Buckets() int { return len(h.buckets) }

// Registry names and owns a set of metrics. Lookups get-or-create, so
// instrumentation sites never need registration boilerplate; a name reused
// with a different kind panics (a programming error, not a runtime
// condition). Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]interface{})}
}

func (r *Registry) lookup(name string, mk func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return e
	}
	e := mk()
	r.entries[name] = e
	return e
}

// Counter returns the counter with this name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	e := r.lookup(name, func() interface{} { return &Counter{} })
	c, ok := e.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a counter", name, e))
	}
	return c
}

// Gauge returns the gauge with this name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	e := r.lookup(name, func() interface{} { return &Gauge{} })
	g, ok := e.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a gauge", name, e))
	}
	return g
}

// Histogram returns the histogram with this name, creating it with the
// given geometry if needed (the geometry of an existing histogram wins).
func (r *Registry) Histogram(name string, width int64, nbuckets int) *Hist {
	e := r.lookup(name, func() interface{} { return newHist(width, nbuckets) })
	h, ok := e.(*Hist)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a histogram", name, e))
	}
	return h
}

// MetricSnapshot is the frozen value of one metric.
type MetricSnapshot struct {
	Name string
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Value is the counter/gauge value; for histograms, the sample total.
	Value int64
	// Histogram-only fields.
	Width     int64
	Buckets   []int64
	Underflow int64
	Overflow  int64
}

// Snapshot is a point-in-time copy of every metric, sorted by name —
// deterministic regardless of registration or update order.
type Snapshot []MetricSnapshot

// Snapshot freezes the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	entries := make(map[string]interface{}, len(r.entries))
	for n, e := range r.entries {
		entries[n] = e
	}
	r.mu.Unlock()

	sort.Strings(names)
	snap := make(Snapshot, 0, len(names))
	for _, n := range names {
		switch m := entries[n].(type) {
		case *Counter:
			snap = append(snap, MetricSnapshot{Name: n, Kind: "counter", Value: m.Value()})
		case *Gauge:
			snap = append(snap, MetricSnapshot{Name: n, Kind: "gauge", Value: m.Value()})
		case *Hist:
			ms := MetricSnapshot{
				Name: n, Kind: "histogram",
				Value:     m.Total(),
				Width:     m.width,
				Buckets:   make([]int64, len(m.buckets)),
				Underflow: m.underflow.Load(),
				Overflow:  m.overflow.Load(),
			}
			for i := range m.buckets {
				ms.Buckets[i] = m.buckets[i].Load()
			}
			snap = append(snap, ms)
		}
	}
	return snap
}

// WriteText renders the snapshot one metric per line, in name order — the
// format served by ppsexp's -debug-addr /metrics endpoint.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, m := range s {
		switch m.Kind {
		case "histogram":
			if _, err := fmt.Fprintf(w, "%s_total %d\n", m.Name, m.Value); err != nil {
				return err
			}
			for i, c := range m.Buckets {
				if c == 0 {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%d} %d\n", m.Name, int64(i+1)*m.Width, c); err != nil {
					return err
				}
			}
			if m.Overflow > 0 {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=inf} %d\n", m.Name, m.Overflow); err != nil {
					return err
				}
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
