package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Telemetry aggregates live run state for external observers (ppsexp's
// /telemetry endpoint). The harness ticks the per-slot gauges with atomic
// stores — the steady-state slot path stays lock- and allocation-free — and
// folds its delay histograms into the cross-run totals only at a coarse
// flush cadence (every telemetry flush stride slots and at run end), under a
// mutex. Snapshot may be called concurrently from any goroutine mid-run.
//
// A nil *Telemetry is valid and inert, so the harness threads it without
// nil checks at every site.
type Telemetry struct {
	runsStarted  atomic.Int64
	runsFinished atomic.Int64
	slot         atomic.Int64
	inFlight     atomic.Int64
	matched      atomic.Int64
	dropped      atomic.Int64
	admitted     atomic.Int64
	rejected     atomic.Int64
	expired      atomic.Int64

	mu     sync.Mutex
	totals *DelaySet
}

// NewTelemetry returns an empty telemetry aggregator.
func NewTelemetry() *Telemetry {
	return &Telemetry{totals: NewDelaySet()}
}

// RunStarted marks one run as live. Safe on nil.
func (t *Telemetry) RunStarted() {
	if t == nil {
		return
	}
	t.runsStarted.Add(1)
}

// RunFinished marks one run as done. Safe on nil.
func (t *Telemetry) RunFinished() {
	if t == nil {
		return
	}
	t.runsFinished.Add(1)
}

// Tick publishes the per-slot gauges: the slot just executed, the cells in
// flight inside the PPS, and the cumulative matched/dropped counts plus the
// admission boundary counters (admitted arrivals, token-bucket rejections,
// deadline expiries). Concurrent runs overwrite each other (last writer
// wins) — the gauges are a liveness signal, not an aggregate. Safe on nil;
// never allocates.
func (t *Telemetry) Tick(slot int64, inFlight int, matched, dropped, admitted, rejected, expired uint64) {
	if t == nil {
		return
	}
	t.slot.Store(slot)
	t.inFlight.Store(int64(inFlight))
	t.matched.Store(int64(matched))
	t.dropped.Store(int64(dropped))
	t.admitted.Store(int64(admitted))
	t.rejected.Store(int64(rejected))
	t.expired.Store(int64(expired))
}

// ObserveDelays folds the growth of a run's delay histograms since the
// previous flush into the cross-run totals, then advances prev to cur
// (prev must be owned by the calling run and start empty). Incremental
// delta-merging keeps repeated flushes of the same run from double counting.
// Safe on nil.
func (t *Telemetry) ObserveDelays(cur, prev *DelaySet) {
	if t == nil || cur == nil || prev == nil {
		return
	}
	t.mu.Lock()
	t.totals.MergeDelta(cur, prev)
	t.mu.Unlock()
	prev.CopyFrom(cur)
}

// TelemetrySnapshot is the frozen live state served as JSON by ppsexp's
// /telemetry endpoint. Field order is the stable wire schema.
type TelemetrySnapshot struct {
	// RunsStarted / RunsFinished count harness runs observed; Active is
	// their difference.
	RunsStarted  int64 `json:"runs_started"`
	RunsFinished int64 `json:"runs_finished"`
	Active       int64 `json:"runs_active"`
	// Slot, InFlight, Matched and Dropped are the most recent per-slot
	// gauges (last writer wins under concurrent runs).
	Slot     int64 `json:"slot"`
	InFlight int64 `json:"in_flight"`
	Matched  int64 `json:"cells_matched"`
	Dropped  int64 `json:"cells_dropped"`
	// Admitted, Rejected and Expired are the admission boundary gauges of
	// the most recent tick: arrivals let into the switch, token-bucket
	// refusals, and deadline expiries (admission + egress).
	Admitted int64 `json:"cells_admitted"`
	Rejected int64 `json:"cells_rejected"`
	Expired  int64 `json:"cells_expired"`
	// Delay is the cross-run delay-attribution percentile block, current to
	// the last histogram flush (at most one flush stride behind the run).
	Delay DelayQuantiles `json:"delay"`
}

// Snapshot freezes the telemetry. Safe for concurrent use; returns the zero
// snapshot on nil.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	if t == nil {
		return TelemetrySnapshot{}
	}
	snap := TelemetrySnapshot{
		RunsStarted:  t.runsStarted.Load(),
		RunsFinished: t.runsFinished.Load(),
		Slot:         t.slot.Load(),
		InFlight:     t.inFlight.Load(),
		Matched:      t.matched.Load(),
		Dropped:      t.dropped.Load(),
		Admitted:     t.admitted.Load(),
		Rejected:     t.rejected.Load(),
		Expired:      t.expired.Load(),
	}
	snap.Active = snap.RunsStarted - snap.RunsFinished
	t.mu.Lock()
	snap.Delay = t.totals.Quantiles()
	t.mu.Unlock()
	return snap
}

// WriteJSON writes the current snapshot as one JSON object.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.Snapshot())
}

// globalTelemetry is the process-wide default aggregator, following the
// expvar/pprof precedent: commands whose inner layers cannot thread an
// Options value (ppsexp's experiment suite) register one here, and the
// harness falls back to it when Options.Telemetry is nil.
var globalTelemetry atomic.Pointer[Telemetry]

// SetGlobalTelemetry installs t as the process-wide default aggregator
// (nil uninstalls).
func SetGlobalTelemetry(t *Telemetry) { globalTelemetry.Store(t) }

// GlobalTelemetry returns the process-wide aggregator, or nil.
func GlobalTelemetry() *Telemetry { return globalTelemetry.Load() }
