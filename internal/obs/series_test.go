package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ppsim/internal/cell"
)

func TestSeriesStrideDecimation(t *testing.T) {
	s := NewSeries("x", 3, 100)
	for slot := cell.Time(0); slot <= 10; slot++ {
		s.Observe(slot, float64(slot))
	}
	pts := s.Points()
	wantSlots := []cell.Time{0, 3, 6, 9}
	if len(pts) != len(wantSlots) {
		t.Fatalf("len = %d, want %d (%v)", len(pts), len(wantSlots), pts)
	}
	for i, p := range pts {
		if p.Slot != wantSlots[i] {
			t.Errorf("pts[%d].Slot = %d, want %d", i, p.Slot, wantSlots[i])
		}
		if p.Value != float64(wantSlots[i]) {
			t.Errorf("pts[%d].Value = %g, want %g", i, p.Value, float64(wantSlots[i]))
		}
	}
}

// TestSeriesRingAtStrideBoundaries drives a strided series past its ring
// capacity and checks that exactly the oldest samples fall out and order is
// preserved across the wrap point.
func TestSeriesRingAtStrideBoundaries(t *testing.T) {
	s := NewSeries("x", 2, 4)
	// Slots 0..19 with stride 2 record 0,2,...,18: ten samples into a ring
	// of four.
	for slot := cell.Time(0); slot < 20; slot++ {
		s.Observe(slot, float64(slot*10))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", s.Dropped())
	}
	pts := s.Points()
	wantSlots := []cell.Time{12, 14, 16, 18}
	for i, p := range pts {
		if p.Slot != wantSlots[i] || p.Value != float64(wantSlots[i]*10) {
			t.Errorf("pts[%d] = %+v, want slot %d", i, p, wantSlots[i])
		}
	}
	if last, ok := s.Last(); !ok || last.Slot != 18 {
		t.Errorf("Last = %+v/%v, want slot 18", last, ok)
	}
	if max, ok := s.Max(); !ok || max.Slot != 18 {
		t.Errorf("Max = %+v/%v, want slot 18", max, ok)
	}
}

// TestSeriesForceNext covers the forced end-of-run sample: a pending force
// bypasses stride decimation and marks the point Final; forcing a slot that
// is already the latest recorded point only final-marks it (no duplicate).
func TestSeriesForceNext(t *testing.T) {
	s := NewSeries("x", 3, 100)
	for slot := cell.Time(0); slot <= 7; slot++ {
		s.Observe(slot, float64(slot))
	}
	// Slot 7 is decimated (7 % 3 != 0); force it.
	s.ForceNext()
	if !s.Observe(7, 7) {
		t.Fatal("forced observe of a decimated slot must record")
	}
	last, ok := s.Last()
	if !ok || last.Slot != 7 || !last.Final {
		t.Fatalf("Last = %+v/%v, want slot 7 final", last, ok)
	}
	// Forcing the already-recorded slot 7 again must not duplicate it.
	n := s.Len()
	s.ForceNext()
	if s.Observe(7, 99) {
		t.Error("forced re-observe of the recorded slot must not record")
	}
	if s.Len() != n {
		t.Errorf("Len = %d after re-force, want %d", s.Len(), n)
	}
	if last, _ := s.Last(); last.Value != 7 || !last.Final {
		t.Errorf("re-force overwrote the point: %+v", last)
	}
	// The force flag must not leak: the next decimated slot is skipped.
	if s.Observe(8, 8) {
		t.Error("force flag leaked past its observation")
	}
	// Stride-aligned final slot: recorded normally, then final-marked.
	s2 := NewSeries("y", 2, 100)
	s2.Observe(4, 40)
	s2.ForceNext()
	if s2.Observe(4, 40) {
		t.Error("force on an already-recorded aligned slot must not duplicate")
	}
	if last, _ := s2.Last(); last.Slot != 4 || last.Value != 40 || !last.Final {
		t.Errorf("aligned final slot not marked: %+v", last)
	}
}

// TestSeriesCapBoundaries pins Points()/Last() ordering exactly at the ring
// capacity, one past it, and after a full double wrap.
func TestSeriesCapBoundaries(t *testing.T) {
	const capacity = 8
	fill := func(n int) *Series {
		s := NewSeries("x", 1, capacity)
		for slot := cell.Time(0); slot < cell.Time(n); slot++ {
			s.Observe(slot, float64(slot))
		}
		return s
	}
	for _, tc := range []struct {
		n         int
		wantFirst cell.Time
		wantDrop  int
	}{
		{capacity, 0, 0},
		{capacity + 1, 1, 1},
		{2 * capacity, capacity, capacity},
	} {
		s := fill(tc.n)
		if s.Len() != capacity {
			t.Fatalf("n=%d: Len = %d, want %d", tc.n, s.Len(), capacity)
		}
		if s.Dropped() != tc.wantDrop {
			t.Errorf("n=%d: Dropped = %d, want %d", tc.n, s.Dropped(), tc.wantDrop)
		}
		pts := s.Points()
		for i, p := range pts {
			want := tc.wantFirst + cell.Time(i)
			if p.Slot != want || p.Value != float64(want) {
				t.Errorf("n=%d: pts[%d] = %+v, want slot %d", tc.n, i, p, want)
			}
		}
		if last, ok := s.Last(); !ok || last.Slot != cell.Time(tc.n-1) {
			t.Errorf("n=%d: Last = %+v/%v, want slot %d", tc.n, last, ok, tc.n-1)
		}
	}
}

func TestSeriesDefaults(t *testing.T) {
	s := NewSeries("d", 0, -5)
	if s.Stride() != 1 {
		t.Errorf("stride = %d, want 1", s.Stride())
	}
	s.Observe(1, 5) // stride 1 records every slot
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if _, ok := NewSeries("e", 1, 1).Last(); ok {
		t.Error("empty series must report no last point")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	a := NewSeries("a", 1, 10)
	a.Observe(0, 1.5)
	a.Observe(1, 2)
	b := NewSeries("b", 1, 10)
	b.Observe(0, 3)
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, []*Series{a, b}); err != nil {
		t.Fatal(err)
	}
	want := "series,slot,value\na,0,1.5\na,1,2\nb,0,3\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWriteSeriesJSON(t *testing.T) {
	a := NewSeries("a", 1, 10)
	a.Observe(0, 1)
	a.Observe(1, 4)
	var sb strings.Builder
	if err := WriteSeriesJSON(&sb, []*Series{a}); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		Series string       `json:"series"`
		Points [][2]float64 `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON %q: %v", sb.String(), err)
	}
	if len(out) != 1 || out[0].Series != "a" || len(out[0].Points) != 2 ||
		out[0].Points[1] != [2]float64{1, 4} {
		t.Errorf("JSON round-trip = %+v", out)
	}
}

// TestObserveSpanCapBoundaries pins the closed-form span path exactly at the
// ring capacity and one past it — the append-to-overwrite transition inside
// a single ObserveSpan call — by comparing the full ring state against a
// per-slot twin driven with Observe over the same span.
func TestObserveSpanCapBoundaries(t *testing.T) {
	const capacity = 8
	for _, tc := range []struct {
		name   string
		stride cell.Time
		warm   int       // per-slot observations before the span
		from   cell.Time // span start (may be unaligned)
		to     cell.Time
	}{
		{"exactly-cap", 1, 0, 0, capacity},
		{"cap-plus-one", 1, 0, 0, capacity + 1},
		{"warm-then-exactly-cap", 1, 3, 3, capacity},
		{"warm-then-cap-plus-one", 1, 3, 3, capacity + 1},
		{"strided-exactly-cap", 4, 0, 1, 4*capacity - 2},
		{"strided-cap-plus-one", 4, 0, 1, 4*capacity + 2},
		{"double-wrap", 1, 0, 0, 3 * capacity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			span := NewSeries("x", tc.stride, capacity)
			twin := NewSeries("x", tc.stride, capacity)
			for slot := cell.Time(0); slot < cell.Time(tc.warm); slot++ {
				span.Observe(slot, float64(slot))
				twin.Observe(slot, float64(slot))
			}
			span.ObserveSpan(tc.from, tc.to, 7)
			for slot := tc.from; slot < tc.to; slot++ {
				twin.Observe(slot, 7)
			}
			if !reflect.DeepEqual(span.Points(), twin.Points()) {
				t.Errorf("points diverge:\nspan: %+v\ntwin: %+v", span.Points(), twin.Points())
			}
			if span.Len() != twin.Len() || span.Dropped() != twin.Dropped() {
				t.Errorf("len/dropped = %d/%d, want %d/%d",
					span.Len(), span.Dropped(), twin.Len(), twin.Dropped())
			}
			sl, sok := span.Last()
			tl, tok := twin.Last()
			if sok != tok || sl != tl {
				t.Errorf("Last = %+v/%v, want %+v/%v", sl, sok, tl, tok)
			}
		})
	}
}
