package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.RunStarted()
	tel.Tick(5, 1, 2, 0, 2, 0, 0)
	tel.ObserveDelays(NewDelaySet(), NewDelaySet())
	tel.RunFinished()
	if snap := tel.Snapshot(); snap != (TelemetrySnapshot{}) {
		t.Fatalf("nil telemetry snapshot not zero: %+v", snap)
	}
}

func TestTelemetryFlushNoDoubleCount(t *testing.T) {
	tel := NewTelemetry()
	cur, prev := NewDelaySet(), NewDelaySet()
	tel.RunStarted()
	for i := int64(0); i < 100; i++ {
		cur.RQD.Record(i % 10)
		if i%25 == 0 {
			tel.ObserveDelays(cur, prev)
		}
	}
	tel.ObserveDelays(cur, prev)
	tel.ObserveDelays(cur, prev) // idempotent once prev caught up
	tel.Tick(99, 0, 100, 0, 100, 0, 0)
	tel.RunFinished()
	snap := tel.Snapshot()
	if snap.Delay.RQD.N != 100 {
		t.Fatalf("flushed RQD count = %d, want 100 (no double counting)", snap.Delay.RQD.N)
	}
	if snap.RunsStarted != 1 || snap.RunsFinished != 1 || snap.Active != 0 {
		t.Fatalf("run accounting wrong: %+v", snap)
	}
	if snap.Slot != 99 || snap.Matched != 100 {
		t.Fatalf("gauges wrong: %+v", snap)
	}
}

func TestTelemetryWriteJSONSchema(t *testing.T) {
	tel := NewTelemetry()
	cur, prev := NewDelaySet(), NewDelaySet()
	cur.RQD.Record(3)
	cur.Demux.Record(1)
	tel.ObserveDelays(cur, prev)
	tel.Tick(7, 2, 1, 0, 3, 1, 0)
	var buf bytes.Buffer
	if err := tel.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"runs_started", "slot", "cells_matched", "cells_admitted", "cells_rejected", "cells_expired", "delay"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", key, buf.String())
		}
	}
	if !strings.Contains(buf.String(), `"rqd"`) || !strings.Contains(buf.String(), `"demux_wait"`) {
		t.Fatalf("delay block missing components: %s", buf.String())
	}
}

// TestTelemetryConcurrentSnapshot exercises mid-run snapshots against
// concurrent ticks and flushes (meaningful under -race).
func TestTelemetryConcurrentSnapshot(t *testing.T) {
	tel := NewTelemetry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur, prev := NewDelaySet(), NewDelaySet()
		for i := int64(0); i < 2000; i++ {
			cur.RQD.Record(i % 64)
			tel.Tick(i, 1, uint64(i), 0, uint64(i), 0, 0)
			if i%128 == 0 {
				tel.ObserveDelays(cur, prev)
			}
		}
		tel.ObserveDelays(cur, prev)
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			if got := tel.Snapshot().Delay.RQD.N; got != 2000 {
				t.Fatalf("final RQD count = %d, want 2000", got)
			}
			return
		default:
			_ = tel.Snapshot()
		}
	}
}

func TestGlobalTelemetry(t *testing.T) {
	if GlobalTelemetry() != nil {
		t.Fatal("global telemetry not nil at start")
	}
	tel := NewTelemetry()
	SetGlobalTelemetry(tel)
	if GlobalTelemetry() != tel {
		t.Fatal("global telemetry not installed")
	}
	SetGlobalTelemetry(nil)
	if GlobalTelemetry() != nil {
		t.Fatal("global telemetry not uninstalled")
	}
}
