package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ppsim/internal/cell"
)

// DefaultSeriesCapacity bounds a series when the caller passes capacity <= 0.
const DefaultSeriesCapacity = 1 << 16

// Point is one sampled value of a time series.
type Point struct {
	Slot  cell.Time
	Value float64
	// Final marks the forced end-of-run sample: the harness re-samples the
	// last executed slot after the run drains, so a decimated series still
	// ends on post-drain state (a stride that does not divide the final
	// slot would otherwise leave Last() reporting pre-drain values).
	// Consumers of decimated series can use it to distinguish the flushed
	// point from ordinary stride-aligned samples.
	Final bool
}

// Series is a named, ring-buffered time series with stride decimation: only
// slots divisible by the stride are recorded, and once capacity points are
// held the oldest are overwritten. Both knobs keep million-slot soak runs
// bounded. A Series is driven from one goroutine (the run loop).
type Series struct {
	name    string
	stride  cell.Time
	cap     int
	pts     []Point
	start   int
	dropped int
	// force makes the next Observe bypass stride decimation (set by
	// ForceNext for the harness's post-run flush).
	force bool
	// lastSlot/hasLast remember the most recently recorded slot so a
	// forced re-observation of an already-recorded slot marks it final
	// instead of duplicating it.
	lastSlot cell.Time
	hasLast  bool
}

// NewSeries returns an empty series. stride < 1 is treated as 1 (sample
// every slot); capacity <= 0 uses DefaultSeriesCapacity.
func NewSeries(name string, stride cell.Time, capacity int) *Series {
	if stride < 1 {
		stride = 1
	}
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Series{name: name, stride: stride, cap: capacity}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Stride returns the decimation stride.
func (s *Series) Stride() cell.Time { return s.stride }

// ForceNext makes the next Observe bypass stride decimation, recording (or,
// if that slot is already the latest recorded point, final-marking) the
// sample. The harness arms it on every series before the post-run flush so
// decimated series end on post-drain state.
func (s *Series) ForceNext() { s.force = true }

// Observe records value v for slot and reports whether a new point was
// recorded. Slots decimated by the stride are skipped unless a forced
// sample is pending (ForceNext). A forced observation of the most recently
// recorded slot does not duplicate the point — it marks the existing point
// final and reports false.
func (s *Series) Observe(slot cell.Time, v float64) bool {
	force := s.force
	s.force = false
	if slot%s.stride != 0 && !force {
		return false
	}
	if s.hasLast && slot == s.lastSlot {
		if force && len(s.pts) > 0 {
			s.pts[s.lastIndex()].Final = true
		}
		return false
	}
	s.hasLast, s.lastSlot = true, slot
	p := Point{Slot: slot, Value: v, Final: force}
	if len(s.pts) < s.cap {
		s.pts = append(s.pts, p)
		return true
	}
	s.pts[s.start] = p
	s.start = (s.start + 1) % s.cap
	s.dropped++
	return true
}

// ObserveSpan records value v for every stride-aligned slot in [from, to),
// leaving the ring byte-identical to calling Observe(slot, v) for each slot
// of the span in order. It is the batch path behind the harness's quiescence
// fast-forward: during an elided idle interval every probe value is
// constant, so the aligned points can be synthesized in closed form —
// appends while free capacity lasts, then ring arithmetic for the
// overwritten tail — without touching the heap.
func (s *Series) ObserveSpan(from, to cell.Time, v float64) {
	if s.force {
		// A pending forced sample fires on the span's first slot regardless
		// of alignment, exactly as the per-slot path would; delegate it and
		// continue with the remainder.
		if from >= to {
			return
		}
		s.Observe(from, v)
		from++
	}
	if s.hasLast && from <= s.lastSlot {
		from = s.lastSlot + 1
	}
	if from >= to {
		return
	}
	first := from + (s.stride-from%s.stride)%s.stride // first aligned slot >= from
	if first >= to {
		return
	}
	n := int((to-1-first)/s.stride) + 1 // aligned slots in [first, to)
	s.hasLast, s.lastSlot = true, first+cell.Time(n-1)*s.stride
	// Fill free tail capacity by appending.
	k := n
	if free := s.cap - len(s.pts); k > free {
		k = free
	}
	for i := 0; i < k; i++ {
		s.pts = append(s.pts, Point{Slot: first + cell.Time(i)*s.stride, Value: v})
	}
	rem := n - k
	if rem == 0 {
		return
	}
	// Ring-overwrite the remaining rem points. Only the last min(rem, cap)
	// of them survive; write each at the position the per-slot loop would
	// have left it, then advance the start cursor by the full rem.
	m := rem
	if m > s.cap {
		m = s.cap
	}
	base := first + cell.Time(k+rem-m)*s.stride
	for i := 0; i < m; i++ {
		s.pts[(s.start+rem-m+i)%s.cap] = Point{Slot: base + cell.Time(i)*s.stride, Value: v}
	}
	s.start = (s.start + rem) % s.cap
	s.dropped += rem
}

// lastIndex returns the index of the most recently recorded point; only
// valid when the series is non-empty.
func (s *Series) lastIndex() int {
	i := s.start - 1
	if i < 0 {
		i = len(s.pts) - 1
	}
	return i
}

// Len reports the number of retained points.
func (s *Series) Len() int { return len(s.pts) }

// Dropped reports how many points were overwritten by the ring.
func (s *Series) Dropped() int { return s.dropped }

// Points returns the retained points in chronological order.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.pts))
	out = append(out, s.pts[s.start:]...)
	out = append(out, s.pts[:s.start]...)
	return out
}

// Last returns the most recent point; ok is false when empty.
func (s *Series) Last() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[s.lastIndex()], true
}

// Max returns the retained point with the largest value (earliest wins on
// ties); ok is false when empty.
func (s *Series) Max() (Point, bool) {
	if len(s.pts) == 0 {
		return Point{}, false
	}
	best := Point{}
	found := false
	for _, p := range s.Points() {
		if !found || p.Value > best.Value {
			best, found = p, true
		}
	}
	return best, true
}

// WriteSeriesCSV streams the series in long format — header
// "series,slot,value", one row per point — the format ppsdiag and ppssim
// emit for plotting.
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,slot,value"); err != nil {
		return err
	}
	for _, s := range series {
		name := s.Name()
		for _, p := range s.Points() {
			if _, err := fmt.Fprintf(bw, "%s,%d,%g\n", name, p.Slot, p.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// jsonSeries is the stable JSON schema for series export.
type jsonSeries struct {
	Series string       `json:"series"`
	Points [][2]float64 `json:"points"` // [slot, value]
}

// WriteSeriesJSON writes the series as a JSON array of
// {"series": name, "points": [[slot, value], ...]} objects, in input order.
func WriteSeriesJSON(w io.Writer, series []*Series) error {
	out := make([]jsonSeries, 0, len(series))
	for _, s := range series {
		js := jsonSeries{Series: s.Name(), Points: make([][2]float64, 0, s.Len())}
		for _, p := range s.Points() {
			js.Points = append(js.Points, [2]float64{float64(p.Slot), p.Value})
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
