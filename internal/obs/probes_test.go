package obs

import (
	"reflect"
	"testing"

	"ppsim/internal/cell"
)

// fakeView is a scriptable SlotView.
type fakeView struct {
	slot     cell.Time
	n, k     int
	backlog  []int
	peak     []int
	depth    []int
	outBuf   []int
	pulls    []int64
	dispatch []uint64
	pps, sh  int
	rqd      int64
	rqdOK    bool
	live     int
	dropped  uint64
	admitted uint64
	rejected uint64
	expired  uint64
}

func (v *fakeView) Slot() cell.Time           { return v.slot }
func (v *fakeView) Ports() int                { return v.n }
func (v *fakeView) Planes() int               { return v.k }
func (v *fakeView) PlaneBacklog(k int) int    { return v.backlog[k] }
func (v *fakeView) PlanePeak(k int) int       { return v.peak[k] }
func (v *fakeView) InputDepth(i int) int      { return v.depth[i] }
func (v *fakeView) OutputBuffered(j int) int  { return v.outBuf[j] }
func (v *fakeView) OutputPulls(j int) int64   { return v.pulls[j] }
func (v *fakeView) DispatchedTo(k int) uint64 { return v.dispatch[k] }
func (v *fakeView) PPSInFlight() int          { return v.pps }
func (v *fakeView) ShadowInFlight() int       { return v.sh }
func (v *fakeView) FrontRQD() (int64, bool)   { return v.rqd, v.rqdOK }
func (v *fakeView) LivePlanes() int           { return v.live }
func (v *fakeView) DroppedTotal() uint64      { return v.dropped }
func (v *fakeView) AdmittedTotal() uint64     { return v.admitted }
func (v *fakeView) RejectedTotal() uint64     { return v.rejected }
func (v *fakeView) ExpiredTotal() uint64      { return v.expired }

func newFakeView(n, k int) *fakeView {
	return &fakeView{
		n: n, k: k, live: k,
		backlog:  make([]int, k),
		peak:     make([]int, k),
		depth:    make([]int, n),
		outBuf:   make([]int, n),
		pulls:    make([]int64, n),
		dispatch: make([]uint64, k),
	}
}

func seriesByName(probes []Probe, name string) *Series {
	for _, s := range CollectSeries(probes) {
		if s.Name() == name {
			return s
		}
	}
	return nil
}

func TestStandardProbesNamesAndCount(t *testing.T) {
	probes := StandardProbes(4, 3, 1, 16)
	all := CollectSeries(probes)
	want := []string{
		"plane_backlog[0]", "plane_backlog[1]", "plane_backlog[2]",
		"plane_peak_queue",
		"input_depth_total", "input_depth_max",
		"mux_pulls",
		"front_rqd",
		"dispatch_imbalance",
		"pps_in_flight", "shadow_in_flight",
		"live_planes", "drops_total",
		"admitted_total", "rejected_total", "expired_total",
	}
	if len(all) != len(want) {
		t.Fatalf("got %d series, want %d", len(all), len(want))
	}
	for i, s := range all {
		if s.Name() != want[i] {
			t.Errorf("series[%d] = %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestPlaneAndInputProbes(t *testing.T) {
	probes := StandardProbes(2, 2, 1, 16)
	v := newFakeView(2, 2)
	v.slot = 0
	v.backlog = []int{3, 1}
	v.peak = []int{2, 5}
	v.depth = []int{4, 1}
	for _, p := range probes {
		p.Sample(v)
	}
	if s := seriesByName(probes, "plane_backlog[0]"); s.Points()[0].Value != 3 {
		t.Errorf("plane_backlog[0] = %g, want 3", s.Points()[0].Value)
	}
	if s := seriesByName(probes, "plane_peak_queue"); s.Points()[0].Value != 5 {
		t.Errorf("plane_peak_queue = %g, want 5", s.Points()[0].Value)
	}
	if s := seriesByName(probes, "input_depth_total"); s.Points()[0].Value != 5 {
		t.Errorf("input_depth_total = %g, want 5", s.Points()[0].Value)
	}
	if s := seriesByName(probes, "input_depth_max"); s.Points()[0].Value != 4 {
		t.Errorf("input_depth_max = %g, want 4", s.Points()[0].Value)
	}
}

// TestMuxPullProbeDeltas checks the pull probe reports rates (deltas of the
// cumulative count), including across decimated strides.
func TestMuxPullProbeDeltas(t *testing.T) {
	p := NewMuxPullProbe(2, 16)
	v := newFakeView(2, 1)
	cum := []int64{0, 3, 5, 9, 12}
	for slot, c := range cum {
		v.slot = cell.Time(slot)
		v.pulls = []int64{c, 0}
		p.Sample(v)
	}
	pts := p.Series()[0].Points()
	// Sampled at slots 0, 2, 4: deltas 0, 5-0, 12-5.
	want := []float64{0, 5, 7}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for i, w := range want {
		if pts[i].Value != w {
			t.Errorf("pts[%d] = %g, want %g", i, pts[i].Value, w)
		}
	}
}

func TestFrontRQDProbeSkipsIdleSlots(t *testing.T) {
	p := NewFrontRQDProbe(1, 16)
	v := newFakeView(1, 1)
	v.slot, v.rqdOK = 0, false
	p.Sample(v)
	v.slot, v.rqd, v.rqdOK = 1, 6, true
	p.Sample(v)
	pts := p.Series()[0].Points()
	if len(pts) != 1 || pts[0].Slot != 1 || pts[0].Value != 6 {
		t.Errorf("front_rqd = %+v, want one point (1, 6)", pts)
	}
}

func TestDispatchImbalanceProbe(t *testing.T) {
	p := NewDispatchImbalanceProbe(1, 16)
	v := newFakeView(1, 4)
	v.dispatch = []uint64{10, 2, 2, 2} // total 16, ideal 4, max 10
	p.Sample(v)
	if got := p.Series()[0].Points()[0].Value; got != 6 {
		t.Errorf("imbalance = %g, want 6", got)
	}
}

func TestInFlightProbe(t *testing.T) {
	p := NewInFlightProbe(1, 16)
	v := newFakeView(1, 1)
	v.pps, v.sh = 9, 4
	p.Sample(v)
	if got := p.Series()[0].Points()[0].Value; got != 9 {
		t.Errorf("pps_in_flight = %g, want 9", got)
	}
	if got := p.Series()[1].Points()[0].Value; got != 4 {
		t.Errorf("shadow_in_flight = %g, want 4", got)
	}
}

// TestMuxPullProbeIdleSpanMatchesPerSlot is the regression guard for the
// probe's hybrid idle-span contract: the span replays per-slot until the
// first recorded point (which flushes the pull window accumulated since the
// previous sample), then switches to the closed-form zero-rate span. The
// twin probe is driven per-slot over the identical schedule; the rings must
// match exactly.
func TestMuxPullProbeIdleSpanMatchesPerSlot(t *testing.T) {
	const stride = 4
	p := NewMuxPullProbe(stride, 16)
	twin := NewMuxPullProbe(stride, 16)
	v := newFakeView(2, 1)

	drive := func(slot cell.Time, cum int64) {
		v.slot, v.pulls = slot, []int64{cum, 0}
		p.Sample(v)
		twin.Sample(v)
	}
	idle := func(from, to cell.Time, cum int64) {
		v.pulls = []int64{cum, 0}
		p.SampleIdleSpan(v, from, to)
		for t := from; t < to; t++ {
			v.slot = t
			twin.Sample(v)
		}
	}

	// Active slots 0..2 accumulate pulls; only slot 0 is stride-aligned.
	drive(0, 0)
	drive(1, 3)
	drive(2, 5)
	// Idle span starting before the first recorded point of the window:
	// slot 3 is unaligned (replayed, records nothing), slot 4 records the
	// flush of the 5 pulls since slot 0, slots 5..14 are the zero-rate tail
	// (recording at 8 and 12).
	idle(3, 15, 5)
	// A short span with no aligned slot must record nothing and must NOT
	// consume the window: pulls resume and the next aligned sample covers
	// everything since the last recorded point.
	drive(16, 9)
	idle(17, 19, 9)
	drive(20, 14)

	got, want := p.Series()[0].Points(), twin.Series()[0].Points()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("span and per-slot rings diverge:\nspan: %+v\ntwin: %+v", got, want)
	}
	// Pin the absolute schedule too, so a twin-side bug cannot mask one in
	// the span path: flush of 5 at slot 4, zeros across the idle tail, 4+5
	// pulls flushed at slot 20.
	wantAbs := []struct {
		slot cell.Time
		val  float64
	}{{0, 0}, {4, 5}, {8, 0}, {12, 0}, {16, 4}, {20, 5}}
	if len(got) != len(wantAbs) {
		t.Fatalf("got %d points, want %d: %+v", len(got), len(wantAbs), got)
	}
	for i, w := range wantAbs {
		if got[i].Slot != w.slot || got[i].Value != w.val {
			t.Errorf("pts[%d] = %+v, want slot %d value %g", i, got[i], w.slot, w.val)
		}
	}
}
