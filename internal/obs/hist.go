package obs

import (
	"fmt"
	"math/bits"
)

// LogHist bucketization: values below subCount land in exact unit-width
// buckets; above, each power-of-two octave is split into halfSub linear
// sub-buckets, so the relative bucket-width error is bounded by 1/halfSub
// (~3%) everywhere. This is the HDR-histogram layout specialized to
// integer slot counts.
const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits      // 64 exact unit buckets
	histHalfSub  = histSubCount / 2      // 32 sub-buckets per octave
	histMaxValue = (int64(1) << 41) - 1  // magnitudes clamp here (~2.2e12 slots)
	histBuckets  = histSubCount + (41-histSubBits)*histHalfSub
)

// histBucket maps a non-negative magnitude to its bucket index.
func histBucket(v int64) int {
	if v < histSubCount {
		return int(v)
	}
	if v > histMaxValue {
		v = histMaxValue
	}
	m := bits.Len64(uint64(v)) - 1 // exponent of the octave, >= histSubBits
	shift := uint(m - histSubBits + 1)
	top := v >> shift // in [histHalfSub, histSubCount)
	return histSubCount + (m-histSubBits)*histHalfSub + int(top) - histHalfSub
}

// histLower returns the smallest magnitude in bucket idx.
func histLower(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	o := (idx - histSubCount) / histHalfSub
	r := (idx - histSubCount) % histHalfSub
	return int64(histHalfSub+r) << uint(o+1)
}

// histWidthAt returns the width of bucket idx.
func histWidthAt(idx int) int64 {
	if idx < histSubCount {
		return 1
	}
	return int64(1) << uint((idx-histSubCount)/histHalfSub+1)
}

// BucketWidth reports the width of the LogHist bucket that holds value v
// (by magnitude; the layout is symmetric around zero). Values below 64 sit
// in unit-width buckets, so quantiles over them are exact; tests use this
// to bound the histogram-vs-exact percentile error.
func BucketWidth(v int64) int64 {
	if v < 0 {
		v = -v
	}
	return histWidthAt(histBucket(v))
}

// LogHist is a streaming log-bucketed histogram over signed integer samples
// (delays measured in slots; relative queuing delay can be negative).
// Record is O(1), allocation-free after construction, and histograms merge
// bucket-wise — per-shard histograms combined in shard order reproduce the
// serial histogram exactly, which is what keeps the stage-parallel engine
// bit-identical. Exact min/max/sum are tracked beside the buckets, so only
// interior quantiles carry bucket-width error (none at all for magnitudes
// below 64). A LogHist is driven from one goroutine.
type LogHist struct {
	pos [histBuckets]int64 // counts for samples >= 0
	neg [histBuckets]int64 // counts for samples < 0, bucketed by magnitude
	n   int64
	sum int64
	min int64
	max int64
}

// NewLogHist returns an empty histogram. All storage is allocated here, so
// the record path never touches the heap.
func NewLogHist() *LogHist { return &LogHist{} }

// Record adds one sample.
func (h *LogHist) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n identical samples in O(1) — the closed-form batch path the
// quiescence fast-forward and span-style callers rely on. n <= 0 records
// nothing.
func (h *LogHist) RecordN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n += n
	h.sum += v * n
	if v >= 0 {
		h.pos[histBucket(v)] += n
	} else {
		h.neg[histBucket(-v)] += n
	}
}

// N reports the number of recorded samples.
func (h *LogHist) N() int64 { return h.n }

// Min returns the smallest sample (exact), or 0 when empty.
func (h *LogHist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (exact), or 0 when empty.
func (h *LogHist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (exact), or 0 when empty.
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the p-th percentile (0 <= p <= 100) by the nearest-rank
// method — the same convention as stats.Summary.Percentile, so the two agree
// to within the width of the bucket holding the exact answer. The returned
// value is the lower bound of the selected bucket (for negative samples, the
// bucket's upper bound), clamped into [Min, Max]; magnitudes below 64 are
// exact. Returns 0 when empty.
func (h *LogHist) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(p / 100 * float64(h.n))
	if float64(rank) < p/100*float64(h.n) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	// Ascending value order: most negative first (high magnitude buckets of
	// neg), then non-negative buckets.
	for i := histBuckets - 1; i >= 0; i-- {
		seen += h.neg[i]
		if seen >= rank {
			return h.clamp(-histLower(i))
		}
	}
	for i := 0; i < histBuckets; i++ {
		seen += h.pos[i]
		if seen >= rank {
			return h.clamp(histLower(i))
		}
	}
	return h.max // unreachable: counts sum to h.n
}

func (h *LogHist) clamp(v int64) int64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Merge adds o's samples into h. Merging per-shard histograms in shard order
// is exactly equivalent to recording the union serially (bucket counts and
// the exact min/max/sum are all order-free).
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for i := range h.pos {
		h.pos[i] += o.pos[i]
		h.neg[i] += o.neg[i]
	}
}

// MergeDelta adds the samples cur has accumulated since prev (prev must be
// an earlier snapshot of the same histogram). The telemetry flusher uses it
// to fold a live run's growth into cross-run totals without double counting.
func (h *LogHist) MergeDelta(cur, prev *LogHist) {
	dn := cur.n - prev.n
	if dn <= 0 {
		return
	}
	if h.n == 0 || cur.min < h.min {
		h.min = cur.min
	}
	if h.n == 0 || cur.max > h.max {
		h.max = cur.max
	}
	h.n += dn
	h.sum += cur.sum - prev.sum
	for i := range h.pos {
		h.pos[i] += cur.pos[i] - prev.pos[i]
		h.neg[i] += cur.neg[i] - prev.neg[i]
	}
}

// CopyFrom makes h an exact copy of o without allocating.
func (h *LogHist) CopyFrom(o *LogHist) { *h = *o }

// Reset empties the histogram without releasing storage.
func (h *LogHist) Reset() { *h = LogHist{} }

// Summary freezes the headline quantiles.
func (h *LogHist) Summary() Quantiles {
	return Quantiles{
		N:    h.N(),
		Mean: h.Mean(),
		Min:  h.Min(),
		P50:  h.Quantile(50),
		P99:  h.Quantile(99),
		P999: h.Quantile(99.9),
		Max:  h.Max(),
	}
}

// Quantiles is the frozen headline summary of one LogHist. Mean, Min and
// Max are exact; P50/P99/P999 carry at most one bucket width of error.
type Quantiles struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Min  int64   `json:"min"`
	P50  int64   `json:"p50"`
	P99  int64   `json:"p99"`
	P999 int64   `json:"p999"`
	Max  int64   `json:"max"`
}

// String renders the quantiles on one line.
func (q Quantiles) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%d p50=%d p99=%d p999=%d max=%d",
		q.N, q.Mean, q.Min, q.P50, q.P99, q.P999, q.Max)
}

// DelaySet groups the six delay-attribution histograms of one matched run:
// per-cell relative queuing delay, the three-stage decomposition of the PPS
// delay (demultiplexor wait, plane queuing, resequencing wait), the total
// end-to-end PPS delay, and the inter-departure gap per output (jitter).
type DelaySet struct {
	RQD   *LogHist
	Demux *LogHist
	Plane *LogHist
	Reseq *LogHist
	Total *LogHist
	Gap   *LogHist
}

// NewDelaySet allocates all six histograms.
func NewDelaySet() *DelaySet {
	return &DelaySet{
		RQD:   NewLogHist(),
		Demux: NewLogHist(),
		Plane: NewLogHist(),
		Reseq: NewLogHist(),
		Total: NewLogHist(),
		Gap:   NewLogHist(),
	}
}

func (d *DelaySet) hists() [6]*LogHist {
	return [6]*LogHist{d.RQD, d.Demux, d.Plane, d.Reseq, d.Total, d.Gap}
}

// CopyFrom snapshots src into d without allocating.
func (d *DelaySet) CopyFrom(src *DelaySet) {
	dh, sh := d.hists(), src.hists()
	for i := range dh {
		dh[i].CopyFrom(sh[i])
	}
}

// MergeDelta folds cur−prev into d, histogram by histogram (see
// LogHist.MergeDelta).
func (d *DelaySet) MergeDelta(cur, prev *DelaySet) {
	dh, ch, ph := d.hists(), cur.hists(), prev.hists()
	for i := range dh {
		dh[i].MergeDelta(ch[i], ph[i])
	}
}

// Quantiles freezes the headline quantiles of every component.
func (d *DelaySet) Quantiles() DelayQuantiles {
	return DelayQuantiles{
		RQD:   d.RQD.Summary(),
		Demux: d.Demux.Summary(),
		Plane: d.Plane.Summary(),
		Reseq: d.Reseq.Summary(),
		Total: d.Total.Summary(),
		Gap:   d.Gap.Summary(),
	}
}

// DelayQuantiles is the frozen per-component percentile block: one Quantiles
// per delay-attribution histogram. It is embedded in metrics.Report and in
// telemetry snapshots (field names are the JSON schema of /telemetry).
type DelayQuantiles struct {
	// RQD is the per-cell relative queuing delay (PPS departure slot minus
	// shadow departure slot; negative when the PPS overtakes FCFS order).
	RQD Quantiles `json:"rqd"`
	// Demux is the wait in the input-port buffer before dispatch.
	Demux Quantiles `json:"demux_wait"`
	// Plane is the time between dispatch and the mux pull (plane queue plus
	// both line transmissions).
	Plane Quantiles `json:"plane_wait"`
	// Reseq is the wait in the output resequencing buffer.
	Reseq Quantiles `json:"reseq_wait"`
	// Total is the end-to-end PPS delay (arrival to departure); for cells
	// with all stamps, Demux + Plane + Reseq sums to it per cell.
	Total Quantiles `json:"total_delay"`
	// Gap is the inter-departure gap between consecutive departures on the
	// same output — the jitter a downstream line observes.
	Gap Quantiles `json:"interdeparture_gap"`
}
