package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cells")
	c.Add(3)
	c.Inc()
	if r.Counter("cells").Value() != 4 {
		t.Errorf("counter = %d, want 4", r.Counter("cells").Value())
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if r.Gauge("depth").Value() != 5 {
		t.Errorf("gauge = %d, want 5", r.Gauge("depth").Value())
	}
	h := r.Histogram("rqd", 4, 8)
	for _, v := range []int64{-1, 0, 3, 4, 100} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Errorf("hist total = %d, want 5", h.Total())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 {
		t.Errorf("buckets = %d,%d, want 2,1", h.Bucket(0), h.Bucket(1))
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

func TestCounterDecrementPanics(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Error("negative counter increment must panic")
		}
	}()
	c.Add(-1)
}

// TestSnapshotDeterminism registers metrics in scrambled order and checks
// two snapshots agree and come out name-sorted.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Add(1)
	}
	r.Gauge("beta").Set(9)
	r.Histogram("hist", 2, 4).Add(3)

	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1) != 5 || len(s2) != 5 {
		t.Fatalf("snapshot sizes %d, %d, want 5", len(s1), len(s2))
	}
	wantOrder := []string{"alpha", "beta", "hist", "mid", "zeta"}
	for i, m := range s1 {
		if m.Name != wantOrder[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, m.Name, wantOrder[i])
		}
		if s2[i].Name != m.Name || s2[i].Value != m.Value || s2[i].Kind != m.Kind {
			t.Errorf("snapshots differ at %d: %+v vs %+v", i, m, s2[i])
		}
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(2)
	r.Histogram("ms", 10, 4).Add(15)
	r.Histogram("ms", 10, 4).Add(999)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"runs 2\n", "ms_total 2\n", "ms_bucket{le=20} 1\n", "ms_bucket{le=inf} 1\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h", 1, 4).Add(int64(j % 4))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", 1, 4).Total(); got != 8000 {
		t.Errorf("hist total = %d, want 8000", got)
	}
}
