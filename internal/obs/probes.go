package obs

import (
	"fmt"

	"ppsim/internal/cell"
)

// SlotView is the per-slot window the harness opens onto the matched
// execution for probes to sample. All values reflect the state *after* the
// mux phase of the slot (pulls and departures applied), so series align
// with the paper's departure-time accounting. Index arguments are plain
// ints in [0, Planes()) / [0, Ports()).
type SlotView interface {
	// Slot is the slot just executed.
	Slot() cell.Time
	// Ports returns N, Planes returns K.
	Ports() int
	Planes() int
	// PlaneBacklog is the number of cells queued in plane k (all outputs).
	PlaneBacklog(k int) int
	// PlanePeak is the largest per-output backlog plane k has ever held.
	PlanePeak(k int) int
	// InputDepth is the number of arrived-but-undispatched cells at input i.
	InputDepth(i int) int
	// OutputBuffered is the occupancy of output j's resequencing buffer.
	OutputBuffered(j int) int
	// OutputPulls is the cumulative number of cells output j's multiplexor
	// has pulled from the planes.
	OutputPulls(j int) int64
	// DispatchedTo is the cumulative number of cells dispatched into plane k.
	DispatchedTo(k int) uint64
	// PPSInFlight and ShadowInFlight are the cells inside each switch.
	PPSInFlight() int
	ShadowInFlight() int
	// FrontRQD is the largest relative queuing delay among cells that
	// departed the PPS this slot and whose shadow departure is known; ok is
	// false when no such cell departed.
	FrontRQD() (int64, bool)
	// LivePlanes is the number of planes currently in service (K minus
	// failed planes).
	LivePlanes() int
	// DroppedTotal is the cumulative number of cells lost to failed planes
	// under the DropCount fault policy (always 0 under Abort).
	DroppedTotal() uint64
	// AdmittedTotal, RejectedTotal and ExpiredTotal are the cumulative
	// admission counters: arrivals let into the switch, arrivals refused by
	// a token bucket, and deadline expiries (at admission plus at egress).
	// Without an admission policy AdmittedTotal still counts every arrival
	// and the other two stay 0.
	AdmittedTotal() uint64
	RejectedTotal() uint64
	ExpiredTotal() uint64
}

// Probe samples a SlotView once per slot into one or more Series. Probes
// are driven from the run's goroutine; they must not be shared between
// concurrent runs.
type Probe interface {
	// Name identifies the probe (for flag parsing and reports).
	Name() string
	// Sample reads the view and appends to the probe's series.
	Sample(v SlotView)
	// Series exposes the sampled series for export.
	Series() []*Series
}

// IdleSpanSampler is an optional Probe capability used by the harness's
// quiescence fast-forward. SampleIdleSpan must leave the probe's series
// byte-identical to calling Sample once per slot for every slot in
// [from, to) under the quiescence preconditions: no arrivals, no cells in
// flight, no departures, no fault events — so every quantity a probe reads
// from the view is constant across the span. Probes without the capability
// force the harness onto a per-slot sampling fallback for elided intervals
// (still correct, just not O(1)).
type IdleSpanSampler interface {
	SampleIdleSpan(v SlotView, from, to cell.Time)
}

// PlaneBacklogProbe samples every plane's total backlog into one series per
// plane, named "plane_backlog[k]" — the trajectory behind Theorem 6's
// divergence argument.
type PlaneBacklogProbe struct{ s []*Series }

// NewPlaneBacklogProbe returns a probe over k planes.
func NewPlaneBacklogProbe(k int, stride cell.Time, capacity int) *PlaneBacklogProbe {
	p := &PlaneBacklogProbe{}
	for i := 0; i < k; i++ {
		p.s = append(p.s, NewSeries(fmt.Sprintf("plane_backlog[%d]", i), stride, capacity))
	}
	return p
}

// Name implements Probe.
func (p *PlaneBacklogProbe) Name() string { return "plane-backlog" }

// Sample implements Probe.
func (p *PlaneBacklogProbe) Sample(v SlotView) {
	t := v.Slot()
	for i, s := range p.s {
		s.Observe(t, float64(v.PlaneBacklog(i)))
	}
}

// Series implements Probe.
func (p *PlaneBacklogProbe) Series() []*Series { return p.s }

// PeakPlaneQueueProbe samples max over planes of the cumulative per-output
// backlog peak ("plane_peak_queue"); its final sample equals the run's
// Result.PeakPlaneQueue.
type PeakPlaneQueueProbe struct{ s *Series }

// NewPeakPlaneQueueProbe returns the probe.
func NewPeakPlaneQueueProbe(stride cell.Time, capacity int) *PeakPlaneQueueProbe {
	return &PeakPlaneQueueProbe{s: NewSeries("plane_peak_queue", stride, capacity)}
}

// Name implements Probe.
func (p *PeakPlaneQueueProbe) Name() string { return "plane-peak-queue" }

// Sample implements Probe.
func (p *PeakPlaneQueueProbe) Sample(v SlotView) {
	peak := 0
	for k := 0; k < v.Planes(); k++ {
		if q := v.PlanePeak(k); q > peak {
			peak = q
		}
	}
	p.s.Observe(v.Slot(), float64(peak))
}

// Series implements Probe.
func (p *PeakPlaneQueueProbe) Series() []*Series { return p.s.asList() }

// InputDepthProbe samples the input-port buffers: total occupancy
// ("input_depth_total") and the deepest buffer ("input_depth_max").
type InputDepthProbe struct{ total, max *Series }

// NewInputDepthProbe returns the probe.
func NewInputDepthProbe(stride cell.Time, capacity int) *InputDepthProbe {
	return &InputDepthProbe{
		total: NewSeries("input_depth_total", stride, capacity),
		max:   NewSeries("input_depth_max", stride, capacity),
	}
}

// Name implements Probe.
func (p *InputDepthProbe) Name() string { return "input-depth" }

// Sample implements Probe.
func (p *InputDepthProbe) Sample(v SlotView) {
	total, max := 0, 0
	for i := 0; i < v.Ports(); i++ {
		d := v.InputDepth(i)
		total += d
		if d > max {
			max = d
		}
	}
	t := v.Slot()
	p.total.Observe(t, float64(total))
	p.max.Observe(t, float64(max))
}

// Series implements Probe.
func (p *InputDepthProbe) Series() []*Series { return []*Series{p.total, p.max} }

// MuxPullProbe samples "mux_pulls": the number of cells the output
// multiplexors pulled from the planes since the previous sample (a rate,
// so decimated samples cover the whole stride window).
type MuxPullProbe struct {
	s    *Series
	last int64
}

// NewMuxPullProbe returns the probe.
func NewMuxPullProbe(stride cell.Time, capacity int) *MuxPullProbe {
	return &MuxPullProbe{s: NewSeries("mux_pulls", stride, capacity)}
}

// Name implements Probe.
func (p *MuxPullProbe) Name() string { return "mux-pulls" }

// Sample implements Probe.
func (p *MuxPullProbe) Sample(v SlotView) {
	var cum int64
	for j := 0; j < v.Ports(); j++ {
		cum += v.OutputPulls(j)
	}
	// Advance last only when the point was actually recorded (decimated or
	// same-slot deduped observations report false), so each recorded point
	// covers exactly the window since the previous recorded one.
	if p.s.Observe(v.Slot(), float64(cum-p.last)) {
		p.last = cum
	}
}

// Series implements Probe.
func (p *MuxPullProbe) Series() []*Series { return p.s.asList() }

// FrontRQDProbe samples "front_rqd": the instantaneous relative queuing
// delay of the departing front — the worst RQD among the cells that left
// the PPS this slot. Slots with no (matched) departure record no point.
type FrontRQDProbe struct{ s *Series }

// NewFrontRQDProbe returns the probe.
func NewFrontRQDProbe(stride cell.Time, capacity int) *FrontRQDProbe {
	return &FrontRQDProbe{s: NewSeries("front_rqd", stride, capacity)}
}

// Name implements Probe.
func (p *FrontRQDProbe) Name() string { return "front-rqd" }

// Sample implements Probe.
func (p *FrontRQDProbe) Sample(v SlotView) {
	if rqd, ok := v.FrontRQD(); ok {
		p.s.Observe(v.Slot(), float64(rqd))
	}
}

// Series implements Probe.
func (p *FrontRQDProbe) Series() []*Series { return p.s.asList() }

// DispatchImbalanceProbe samples "dispatch_imbalance": how far the
// most-loaded plane's cumulative dispatch count sits above the round-robin
// ideal (total/K). Zero means perfectly balanced dispatch; the steering
// adversary drives it toward (1 - 1/K) * total.
type DispatchImbalanceProbe struct{ s *Series }

// NewDispatchImbalanceProbe returns the probe.
func NewDispatchImbalanceProbe(stride cell.Time, capacity int) *DispatchImbalanceProbe {
	return &DispatchImbalanceProbe{s: NewSeries("dispatch_imbalance", stride, capacity)}
}

// Name implements Probe.
func (p *DispatchImbalanceProbe) Name() string { return "dispatch-imbalance" }

// Sample implements Probe.
func (p *DispatchImbalanceProbe) Sample(v SlotView) {
	var total, max uint64
	k := v.Planes()
	for i := 0; i < k; i++ {
		d := v.DispatchedTo(i)
		total += d
		if d > max {
			max = d
		}
	}
	ideal := float64(total) / float64(k)
	p.s.Observe(v.Slot(), float64(max)-ideal)
}

// Series implements Probe.
func (p *DispatchImbalanceProbe) Series() []*Series { return p.s.asList() }

// InFlightProbe samples the in-switch populations of the PPS
// ("pps_in_flight") and the shadow reference switch ("shadow_in_flight");
// their gap is the backlog the PPS accumulates beyond the ideal switch.
type InFlightProbe struct{ pps, sh *Series }

// NewInFlightProbe returns the probe.
func NewInFlightProbe(stride cell.Time, capacity int) *InFlightProbe {
	return &InFlightProbe{
		pps: NewSeries("pps_in_flight", stride, capacity),
		sh:  NewSeries("shadow_in_flight", stride, capacity),
	}
}

// Name implements Probe.
func (p *InFlightProbe) Name() string { return "in-flight" }

// Sample implements Probe.
func (p *InFlightProbe) Sample(v SlotView) {
	t := v.Slot()
	p.pps.Observe(t, float64(v.PPSInFlight()))
	p.sh.Observe(t, float64(v.ShadowInFlight()))
}

// Series implements Probe.
func (p *InFlightProbe) Series() []*Series { return []*Series{p.pps, p.sh} }

// FaultProbe samples the degradation state: "live_planes" (planes in
// service) and "drops_total" (cumulative cells lost to failed planes under
// the DropCount policy). Fault-free runs record flat K and 0 lines; under a
// schedule the series make degradation epochs visible in -series output.
type FaultProbe struct{ live, drops *Series }

// NewFaultProbe returns the probe.
func NewFaultProbe(stride cell.Time, capacity int) *FaultProbe {
	return &FaultProbe{
		live:  NewSeries("live_planes", stride, capacity),
		drops: NewSeries("drops_total", stride, capacity),
	}
}

// Name implements Probe.
func (p *FaultProbe) Name() string { return "faults" }

// Sample implements Probe.
func (p *FaultProbe) Sample(v SlotView) {
	t := v.Slot()
	p.live.Observe(t, float64(v.LivePlanes()))
	p.drops.Observe(t, float64(v.DroppedTotal()))
}

// Series implements Probe.
func (p *FaultProbe) Series() []*Series { return []*Series{p.live, p.drops} }

// SampleIdleSpan implements IdleSpanSampler. Backlogs are constant (in an
// idle span they are in fact zero, but the probe only relies on constancy).
func (p *PlaneBacklogProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	for i, s := range p.s {
		s.ObserveSpan(from, to, float64(v.PlaneBacklog(i)))
	}
}

// SampleIdleSpan implements IdleSpanSampler. The peak is cumulative, hence
// constant while nothing moves.
func (p *PeakPlaneQueueProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	peak := 0
	for k := 0; k < v.Planes(); k++ {
		if q := v.PlanePeak(k); q > peak {
			peak = q
		}
	}
	p.s.ObserveSpan(from, to, float64(peak))
}

// SampleIdleSpan implements IdleSpanSampler.
func (p *InputDepthProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	total, max := 0, 0
	for i := 0; i < v.Ports(); i++ {
		d := v.InputDepth(i)
		total += d
		if d > max {
			max = d
		}
	}
	p.total.ObserveSpan(from, to, float64(total))
	p.max.ObserveSpan(from, to, float64(max))
}

// SampleIdleSpan implements IdleSpanSampler. The cumulative pull count is
// frozen across an idle span, so the first recorded point flushes the window
// since the previous sample and every later point in the span records a zero
// rate — replayed per-slot only until that first recorded point (at most one
// stride), then in closed form. A span too short to reach an aligned slot
// records nothing and leaves the window unconsumed (last advances only on a
// recorded point), so the next real sample still flushes the full window.
// TestMuxPullProbeIdleSpanMatchesPerSlot pins both halves of this contract
// against a per-slot twin.
func (p *MuxPullProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	var cum int64
	for j := 0; j < v.Ports(); j++ {
		cum += v.OutputPulls(j)
	}
	for t := from; t < to; t++ {
		if p.s.Observe(t, float64(cum-p.last)) {
			p.last = cum
			p.s.ObserveSpan(t+1, to, 0)
			return
		}
	}
}

// SampleIdleSpan implements IdleSpanSampler. No cell departs during an idle
// span, so the per-slot Sample would record nothing: a no-op.
func (p *FrontRQDProbe) SampleIdleSpan(SlotView, cell.Time, cell.Time) {}

// SampleIdleSpan implements IdleSpanSampler. Dispatch counters are
// cumulative, hence constant while nothing moves.
func (p *DispatchImbalanceProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	var total, max uint64
	k := v.Planes()
	for i := 0; i < k; i++ {
		d := v.DispatchedTo(i)
		total += d
		if d > max {
			max = d
		}
	}
	ideal := float64(total) / float64(k)
	p.s.ObserveSpan(from, to, float64(max)-ideal)
}

// SampleIdleSpan implements IdleSpanSampler. Both switches are empty (and
// stay empty) across an idle span.
func (p *InFlightProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	p.pps.ObserveSpan(from, to, float64(v.PPSInFlight()))
	p.sh.ObserveSpan(from, to, float64(v.ShadowInFlight()))
}

// SampleIdleSpan implements IdleSpanSampler. A fault event due inside the
// interval truncates the jump, so the degradation state is constant here.
func (p *FaultProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	p.live.ObserveSpan(from, to, float64(v.LivePlanes()))
	p.drops.ObserveSpan(from, to, float64(v.DroppedTotal()))
}

// AdmissionProbe samples the admission boundary: "admitted_total",
// "rejected_total" and "expired_total" cumulative counters. Runs without a
// policy record a straight arrival count and flat zero lines; under
// token-bucket or deadline-drop admission the series show when overload is
// being shed.
type AdmissionProbe struct{ admitted, rejected, expired *Series }

// NewAdmissionProbe returns the probe.
func NewAdmissionProbe(stride cell.Time, capacity int) *AdmissionProbe {
	return &AdmissionProbe{
		admitted: NewSeries("admitted_total", stride, capacity),
		rejected: NewSeries("rejected_total", stride, capacity),
		expired:  NewSeries("expired_total", stride, capacity),
	}
}

// Name implements Probe.
func (p *AdmissionProbe) Name() string { return "admission" }

// Sample implements Probe.
func (p *AdmissionProbe) Sample(v SlotView) {
	t := v.Slot()
	p.admitted.Observe(t, float64(v.AdmittedTotal()))
	p.rejected.Observe(t, float64(v.RejectedTotal()))
	p.expired.Observe(t, float64(v.ExpiredTotal()))
}

// Series implements Probe.
func (p *AdmissionProbe) Series() []*Series { return []*Series{p.admitted, p.rejected, p.expired} }

// SampleIdleSpan implements IdleSpanSampler. An idle span has no arrivals,
// hence no admission decisions: all three cumulative counters are constant.
func (p *AdmissionProbe) SampleIdleSpan(v SlotView, from, to cell.Time) {
	p.admitted.ObserveSpan(from, to, float64(v.AdmittedTotal()))
	p.rejected.ObserveSpan(from, to, float64(v.RejectedTotal()))
	p.expired.ObserveSpan(from, to, float64(v.ExpiredTotal()))
}

// StandardProbes returns the full probe set for an N-port, K-plane switch:
// per-plane backlog, cumulative peak plane queue, input buffer depths, mux
// pull rate, departing-front RQD, demux dispatch imbalance, the
// PPS-vs-shadow in-flight populations, the fault degradation state, and the
// admission boundary counters.
func StandardProbes(n, k int, stride cell.Time, capacity int) []Probe {
	return []Probe{
		NewPlaneBacklogProbe(k, stride, capacity),
		NewPeakPlaneQueueProbe(stride, capacity),
		NewInputDepthProbe(stride, capacity),
		NewMuxPullProbe(stride, capacity),
		NewFrontRQDProbe(stride, capacity),
		NewDispatchImbalanceProbe(stride, capacity),
		NewInFlightProbe(stride, capacity),
		NewFaultProbe(stride, capacity),
		NewAdmissionProbe(stride, capacity),
	}
}

// CollectSeries flattens the probes' series in probe order.
func CollectSeries(probes []Probe) []*Series {
	var out []*Series
	for _, p := range probes {
		out = append(out, p.Series()...)
	}
	return out
}

func (s *Series) asList() []*Series { return []*Series{s} }
