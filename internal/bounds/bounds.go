// Package bounds states the paper's results as executable formulas: every
// lower and upper bound, parameterized exactly as in the text, plus the
// one-slot-convention "model exact" values this implementation attains.
// The experiment suite and the tests reference these instead of re-deriving
// expressions inline, so a transcription error would fail loudly in one
// place.
//
// Conventions: R = 1 cell/slot; rPrime = R/r >= 1; S = K/rPrime. All
// results are in time-slots.
package bounds

import "fmt"

// Params carries the switch geometry the bounds range over.
type Params struct {
	N      int   // external ports
	K      int   // center-stage planes
	RPrime int64 // r' = R/r
}

// Validate reports nonsensical geometry.
func (p Params) Validate() error {
	if p.N <= 0 || p.K <= 0 || p.RPrime < 1 {
		return fmt.Errorf("bounds: invalid geometry N=%d K=%d r'=%d", p.N, p.K, p.RPrime)
	}
	return nil
}

// Speedup returns S = K / r'.
func (p Params) Speedup() float64 { return float64(p.K) / float64(p.RPrime) }

// Lemma4 returns the concentration lower bound c*R/r - (s + B): the
// relative queuing delay and jitter when c cells for one output, arriving
// over s slots under burstiness B, share one plane.
func Lemma4(p Params, c, s int, b int64) float64 {
	return float64(c)*float64(p.RPrime) - (float64(s) + float64(b))
}

// Lemma4ModelExact returns the exact worst case this implementation attains
// for the Lemma 4 scenario with s = c, B = 0: (c-1)(r'-1). The difference
// from Lemma4 is the one-slot departure convention (a cell may leave in its
// arrival slot), which shifts the constant, not the Theta.
func Lemma4ModelExact(p Params, c int) int64 {
	return int64(c-1) * (p.RPrime - 1)
}

// Theorem6 returns the d-partitioned fully-distributed bound (R/r - 1) * d.
func Theorem6(p Params, d int) float64 {
	return (float64(p.RPrime) - 1) * float64(d)
}

// Corollary7 returns the unpartitioned fully-distributed bound (R/r - 1)*N.
func Corollary7(p Params) float64 { return Theorem6(p, p.N) }

// Theorem8 returns the any-fully-distributed bound (R/r - 1) * N/S.
func Theorem8(p Params) float64 {
	return (float64(p.RPrime) - 1) * float64(p.N) / p.Speedup()
}

// UEffective returns u' = min(u, R/2r), the effective staleness of
// Theorem 10.
func UEffective(p Params, u int64) int64 {
	if cap := p.RPrime / 2; u > cap {
		return cap
	}
	return u
}

// Theorem10 returns the u-RT bound (1 - u'r/R) * u'N/S.
func Theorem10(p Params, u int64) float64 {
	ue := float64(UEffective(p, u))
	return (1 - ue/float64(p.RPrime)) * ue * float64(p.N) / p.Speedup()
}

// Theorem10Burstiness returns the burstiness factor of the Theorem 10
// traffic: u'^2 N/K - u'.
func Theorem10Burstiness(p Params, u int64) float64 {
	ue := float64(UEffective(p, u))
	return ue*ue*float64(p.N)/float64(p.K) - ue
}

// Theorem12 returns the input-buffered u-RT upper bound: RQD <= u, valid
// for buffer size >= u and S >= 2.
func Theorem12(u int64) int64 { return u }

// Theorem13 returns the input-buffered fully-distributed bound
// (1 - r/R) * N/S, buffer size immaterial.
func Theorem13(p Params) float64 {
	return (1 - 1/float64(p.RPrime)) * float64(p.N) / p.Speedup()
}

// IyerMcKeownUpper returns the fully-distributed upper bound N * R/r of
// [15]; with Corollary 7 it pins Theta(N * R/r).
func IyerMcKeownUpper(p Params) int64 { return int64(p.N) * p.RPrime }

// CPAZeroDelaySpeedup returns the speedup from which the centralized CPA
// achieves zero relative queuing delay [14].
func CPAZeroDelaySpeedup() float64 { return 2 }

// CIOQMimicSpeedup returns the Chuang et al. speedup needed for a combined
// input-output queued switch to mimic output queuing: 2 - 1/N.
func CIOQMimicSpeedup(n int) float64 { return 2 - 1/float64(n) }
