package bounds

import (
	"testing"
	"testing/quick"
)

func p(n, k int, rp int64) Params { return Params{N: n, K: k, RPrime: rp} }

func TestValidate(t *testing.T) {
	if err := p(0, 1, 1).Validate(); err == nil {
		t.Error("N=0 must be invalid")
	}
	if err := p(4, 0, 1).Validate(); err == nil {
		t.Error("K=0 must be invalid")
	}
	if err := p(4, 2, 0).Validate(); err == nil {
		t.Error("r'=0 must be invalid")
	}
	if err := p(5, 2, 2).Validate(); err != nil {
		t.Errorf("figure-1 geometry rejected: %v", err)
	}
}

func TestHeadlineValues(t *testing.T) {
	// Spot values cross-checked against the paper's expressions.
	g := p(32, 4, 2) // S = 2
	if got := Corollary7(g); got != 32 {
		t.Errorf("Corollary7 = %f, want (r'-1)N = 32", got)
	}
	if got := Theorem8(g); got != 16 {
		t.Errorf("Theorem8 = %f, want (r'-1)N/S = 16", got)
	}
	if got := Theorem13(g); got != 8 {
		t.Errorf("Theorem13 = %f, want (1-r/R)N/S = 8", got)
	}
	if got := Theorem6(g, 5); got != 5 {
		t.Errorf("Theorem6(d=5) = %f, want 5", got)
	}
	if got := Lemma4(g, 10, 10, 0); got != 10 {
		t.Errorf("Lemma4 = %f, want c*r' - s = 10", got)
	}
	if got := Lemma4ModelExact(g, 10); got != 9 {
		t.Errorf("Lemma4ModelExact = %d, want (c-1)(r'-1) = 9", got)
	}
	if got := IyerMcKeownUpper(g); got != 64 {
		t.Errorf("IyerMcKeownUpper = %d, want N*r' = 64", got)
	}
	if CPAZeroDelaySpeedup() != 2 {
		t.Error("CPA speedup must be 2")
	}
	if got := CIOQMimicSpeedup(8); got != 2-1.0/8 {
		t.Errorf("CIOQMimicSpeedup = %f", got)
	}
}

func TestTheorem10Shapes(t *testing.T) {
	g := p(32, 16, 8) // S = 2, u cap = 4
	if UEffective(g, 2) != 2 || UEffective(g, 9) != 4 {
		t.Error("UEffective must cap at r'/2")
	}
	// Bound grows with u until the cap, then freezes.
	if !(Theorem10(g, 1) < Theorem10(g, 2) && Theorem10(g, 2) < Theorem10(g, 4)) {
		t.Error("Theorem10 must grow below the cap")
	}
	if Theorem10(g, 4) != Theorem10(g, 16) {
		t.Error("Theorem10 must saturate at u' = r'/2")
	}
	// Spot value: u'=4, (1 - 4/8) * 4 * 32/2 = 32.
	if got := Theorem10(g, 8); got != 32 {
		t.Errorf("Theorem10 = %f, want 32", got)
	}
	// Burstiness: 16*32/16 - 4 = 28.
	if got := Theorem10Burstiness(g, 8); got != 28 {
		t.Errorf("Theorem10Burstiness = %f, want 28", got)
	}
}

// Property: the bound hierarchy of the paper holds for every geometry:
// Theorem13 <= Theorem8 <= Corollary7 <= IyerMcKeownUpper, and Theorem6 is
// monotone in d up to Corollary7 at d = N.
func TestBoundHierarchy(t *testing.T) {
	prop := func(nRaw, kRaw, rpRaw uint8) bool {
		g := Params{N: int(nRaw%64) + 2, K: int(kRaw%16) + 1, RPrime: int64(rpRaw%8) + 1}
		if g.Validate() != nil {
			return false
		}
		if Theorem13(g) > Theorem8(g)+1e-9 {
			return false
		}
		if g.Speedup() >= 1 && Theorem8(g) > Corollary7(g)+1e-9 {
			return false
		}
		if Corollary7(g) > float64(IyerMcKeownUpper(g)) {
			return false
		}
		prev := -1.0
		for d := 1; d <= g.N; d++ {
			v := Theorem6(g, d)
			if v < prev {
				return false
			}
			prev = v
		}
		return Theorem6(g, g.N) == Corollary7(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTheorem12(t *testing.T) {
	if Theorem12(7) != 7 {
		t.Error("Theorem12 upper bound is u itself")
	}
}
