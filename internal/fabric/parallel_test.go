package fabric

import (
	"reflect"
	"runtime"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/traffic"
)

func TestResolveWorkers(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, n, want int
	}{
		{0, 512, 0},           // serial stays serial
		{3, 512, 3},           // explicit request honored
		{8, 4, 4},             // explicit request clamped to N
		{-1, minShard - 1, 0}, // auto: shard smaller than minShard -> serial
	}
	for _, c := range cases {
		if got := ResolveWorkers(c.workers, c.n); got != c.want {
			t.Errorf("ResolveWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	// Auto mode is bounded by both GOMAXPROCS and N/minShard.
	got := ResolveWorkers(-1, 1<<20)
	if gmp > 1 {
		if got != gmp {
			t.Errorf("ResolveWorkers(-1, huge) = %d, want GOMAXPROCS %d", got, gmp)
		}
	} else if got != 0 {
		t.Errorf("ResolveWorkers(-1, huge) = %d, want 0 on a single-proc runtime", got)
	}
}

func TestValidateRejectsBadWorkers(t *testing.T) {
	cfg := Config{N: 4, K: 2, RPrime: 1, Workers: -2}
	if err := cfg.Validate(); err == nil {
		t.Error("Workers = -2 must be rejected")
	}
}

// stepBoth drives a serial and a parallel fabric through identical stamped
// traffic, slot by slot, asserting identical departures every slot. Both
// fabrics have their global event log armed, so the parallel engine's
// buffered EvXmit replay is also checked for order equality.
func stepBoth(t *testing.T, workers int) {
	t.Helper()
	const n, horizon = 16, 400
	mk := func(w int) (*PPS, *demux.Log) {
		p, err := New(Config{N: n, K: 4, RPrime: 2, CheckInvariants: true, Workers: w}, rrFactory(demux.PerInput))
		if err != nil {
			t.Fatal(err)
		}
		return p, p.Log() // arm the log before the first Step
	}
	serial, slog := mk(0)
	par, plog := mk(workers)
	defer par.Close()
	if got := par.Workers(); got != workers {
		t.Fatalf("Workers() = %d, want %d", got, workers)
	}

	src := traffic.NewBernoulli(n, 0.7, horizon, 3)
	st1, st2 := cell.NewStamper(), cell.NewStamper()
	var buf []traffic.Arrival
	var cells1, cells2, dep1, dep2 []cell.Cell
	for slot := cell.Time(0); ; slot++ {
		if slot >= horizon && serial.Drained() && par.Drained() {
			break
		}
		buf = src.Arrivals(slot, buf[:0])
		cells1, cells2 = cells1[:0], cells2[:0]
		for _, a := range buf {
			f := cell.Flow{In: a.In, Out: a.Out}
			cells1 = append(cells1, st1.Stamp(f, slot))
			cells2 = append(cells2, st2.Stamp(f, slot))
		}
		var err error
		dep1, err = serial.Step(slot, cells1, dep1[:0])
		if err != nil {
			t.Fatalf("serial slot %d: %v", slot, err)
		}
		dep2, err = par.Step(slot, cells2, dep2[:0])
		if err != nil {
			t.Fatalf("parallel slot %d: %v", slot, err)
		}
		if !reflect.DeepEqual(dep1, dep2) {
			t.Fatalf("slot %d: departures diverge\nserial:   %v\nparallel: %v", slot, dep1, dep2)
		}
		if slot > cell.Time(2*horizon) {
			t.Fatal("switches did not drain")
		}
	}
	if serial.Departed() != par.Departed() || serial.Departed() == 0 {
		t.Fatalf("departed: serial %d, parallel %d", serial.Departed(), par.Departed())
	}
	if slog.Len() != plog.Len() {
		t.Fatalf("log lengths diverge: serial %d, parallel %d", slog.Len(), plog.Len())
	}
	var c1, c2 demux.Cursor
	var ev1, ev2 []demux.Event
	slog.Read(&c1, cell.Time(1<<40), func(e demux.Event) { ev1 = append(ev1, e) })
	plog.Read(&c2, cell.Time(1<<40), func(e demux.Event) { ev2 = append(ev2, e) })
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("global event logs diverge between serial and parallel engines")
	}
}

func TestParallelStepMatchesSerialWithArmedLog(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 16} {
		stepBoth(t, w)
	}
}

// TestCloseFallsBackToSerial checks that a closed pool degrades to the
// serial engine instead of deadlocking, and that Close is idempotent.
func TestCloseFallsBackToSerial(t *testing.T) {
	p, err := New(Config{N: 8, K: 2, RPrime: 2, Workers: 4}, rrFactory(demux.PerInput))
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	cells := []cell.Cell{cell.New(0, 0, cell.Flow{In: 1, Out: 2}, 0)}
	deps, err := p.Step(0, cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	for slot := cell.Time(1); !p.Drained(); slot++ {
		if deps, err = p.Step(slot, nil, deps[:0]); err != nil {
			t.Fatal(err)
		}
	}
	if p.Departed() != 1 {
		t.Fatalf("departed %d cells after Close, want 1", p.Departed())
	}
}

// TestParallelRefereeStillCatchesOverclaimedBuffer ensures the sharded
// stage-3 audit reports the same violation the serial engine does.
func TestParallelRefereeStillCatchesOverclaimedBuffer(t *testing.T) {
	mk := func(workers int) error {
		p, err := New(Config{N: 8, K: 2, RPrime: 2, Workers: workers},
			func(e demux.Env) (demux.Algorithm, error) { return &overclaimAlg{}, nil })
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		_, err = p.Step(0, nil, nil)
		return err
	}
	serialErr, parErr := mk(0), mk(4)
	if serialErr == nil || parErr == nil {
		t.Fatalf("overclaimed buffer must error (serial %v, parallel %v)", serialErr, parErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Errorf("violation diverges:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}

// overclaimAlg reports phantom buffered cells at every input; the audit
// must flag input 0 first in both engines.
type overclaimAlg struct{}

func (*overclaimAlg) Name() string                                      { return "overclaim" }
func (*overclaimAlg) Slot(cell.Time, []cell.Cell) ([]demux.Send, error) { return nil, nil }
func (*overclaimAlg) Buffered(cell.Port) int                            { return 1 }
