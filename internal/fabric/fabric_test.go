package fabric

import (
	"strings"
	"testing"
	"testing/quick"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/mux"
	"ppsim/internal/shadow"
	"ppsim/internal/traffic"
)

func rrFactory(gran demux.Granularity) func(demux.Env) (demux.Algorithm, error) {
	return func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, gran) }
}

func cpaFactory(e demux.Env) (demux.Algorithm, error) { return demux.NewCPA(e, demux.MinAvail) }

// drive runs a finite source through a PPS (and a shadow switch fed the
// identical cells) until both drain, returning the PPS departures and the
// shadow departure slot per sequence number.
func drive(t *testing.T, p *PPS, src traffic.Source, maxSlots cell.Time) ([]cell.Cell, map[uint64]cell.Time) {
	t.Helper()
	st := cell.NewStamper()
	sh := shadow.New(p.Config().N)
	shadowDep := make(map[uint64]cell.Time)
	var deps, shDeps []cell.Cell
	var buf []traffic.Arrival
	for slot := cell.Time(0); slot < maxSlots; slot++ {
		if slot >= src.End() && p.Drained() && sh.Drained() {
			return deps, shadowDep
		}
		buf = src.Arrivals(slot, buf[:0])
		cells := make([]cell.Cell, 0, len(buf))
		for _, a := range buf {
			cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
		}
		var err error
		deps, err = p.Step(slot, cells, deps)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		shDeps = sh.Step(slot, cells, shDeps[:0])
		for _, d := range shDeps {
			shadowDep[d.Seq] = d.Depart
		}
	}
	t.Fatalf("switch did not drain within %d slots (backlog %d)", maxSlots, p.Backlog())
	return nil, nil
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 0, K: 1, RPrime: 1},
		{N: 4, K: 0, RPrime: 1},
		{N: 4, K: 2, RPrime: 0},
		{N: 4, K: 2, RPrime: 1, BufferCap: -2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	good := Config{N: 5, K: 2, RPrime: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("figure-1 config rejected: %v", err)
	}
	if good.Speedup() != 1.0 {
		t.Errorf("Speedup = %f", good.Speedup())
	}
	if _, err := New(bad[0], rrFactory(demux.PerInput)); err == nil {
		t.Error("New must propagate validation errors")
	}
}

func TestSingleCellTraversesInOneSlot(t *testing.T) {
	// The propagation-free accounting: a lone cell departs the PPS in its
	// arrival slot, exactly like the shadow switch.
	p, err := New(Config{N: 4, K: 2, RPrime: 2, CheckInvariants: true}, rrFactory(demux.PerInput))
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.NewTrace()
	tr.MustAdd(0, 1, 3)
	deps, shDep := drive(t, p, tr, 50)
	if len(deps) != 1 {
		t.Fatalf("departures = %d", len(deps))
	}
	d := deps[0]
	if d.Depart != 0 || d.Dispatch != 0 || d.AtOutput != 0 {
		t.Errorf("stamps: %v", d)
	}
	if shDep[d.Seq] != 0 {
		t.Errorf("shadow departure = %d", shDep[d.Seq])
	}
}

func TestConcentrationDelaysDepartures(t *testing.T) {
	// Fresh per-input round-robin pointers all start at plane 0, so d
	// cells from d distinct inputs all land on one plane: d cells to one
	// output in d consecutive slots depart r'-spaced — the Lemma 4
	// bottleneck — while the shadow departs them back-to-back.
	const rp, d = 3, 5
	p, err := New(Config{N: 8, K: 3, RPrime: rp, CheckInvariants: true}, rrFactory(demux.PerInput))
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.NewTrace()
	for i := 0; i < d; i++ {
		tr.MustAdd(cell.Time(i), cell.Port(i), 0)
	}
	deps, shDep := drive(t, p, tr, 200)
	if len(deps) != d {
		t.Fatalf("departures = %d", len(deps))
	}
	var maxRQD cell.Time
	for _, c := range deps {
		if rqd := c.Depart - shDep[c.Seq]; rqd > maxRQD {
			maxRQD = rqd
		}
	}
	want := cell.Time((d - 1) * (rp - 1)) // last cell crosses at (d-1)r', shadow at d-1
	if maxRQD != want {
		t.Errorf("max relative queuing delay = %d, want %d", maxRQD, want)
	}
}

func TestCPAZeroRelativeDelayAtSpeedupTwo(t *testing.T) {
	prop := func(seed int64) bool {
		const n, k, rp = 6, 6, 3 // S = 2
		p, err := New(Config{N: n, K: k, RPrime: rp, CheckInvariants: true}, cpaFactory)
		if err != nil {
			return false
		}
		demand := traffic.NewBernoulli(n, 0.55, 300, seed)
		// Shape to burstless per-output rate R so the comparison is the
		// paper's regime (CPA's guarantee holds for any admissible
		// traffic; burstless keeps the run short).
		reg := traffic.NewRegulator(n, 0, demand)
		st := cell.NewStamper()
		sh := shadow.New(n)
		shadowDep := make(map[uint64]cell.Time)
		var buf []traffic.Arrival
		var deps, shDeps []cell.Cell
		for slot := cell.Time(0); slot < 2000; slot++ {
			buf = reg.Arrivals(slot, nil)
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			var err error
			deps, err = p.Step(slot, cells, deps)
			if err != nil {
				return false
			}
			shDeps = sh.Step(slot, cells, shDeps[:0])
			for _, d := range shDeps {
				shadowDep[d.Seq] = d.Depart
			}
			if slot > 320 && p.Drained() && sh.Drained() {
				break
			}
		}
		if !p.Drained() {
			return false
		}
		for _, c := range deps {
			if c.Depart != shadowDep[c.Seq] {
				return false // CPA must mimic the FCFS OQ switch exactly
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestFlowOrderAndConservationUnderRandomTraffic(t *testing.T) {
	prop := func(seed int64, granRaw bool) bool {
		const n, k, rp = 4, 4, 2
		gran := demux.PerInput
		if granRaw {
			gran = demux.PerFlow
		}
		p, err := New(Config{N: n, K: k, RPrime: rp, CheckInvariants: true}, rrFactory(gran))
		if err != nil {
			return false
		}
		src := traffic.NewBernoulli(n, 0.6, 200, seed)
		st := cell.NewStamper()
		var buf []traffic.Arrival
		var deps []cell.Cell
		for slot := cell.Time(0); slot < 5000; slot++ {
			buf = src.Arrivals(slot, buf[:0])
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			var err error
			deps, err = p.Step(slot, cells, deps)
			if err != nil {
				return false // any invariant violation fails the property
			}
			if slot > 200 && p.Drained() {
				break
			}
		}
		// Everything departed exactly once.
		return p.Drained() && uint64(len(deps)) == st.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestIyerMcKeownUpperBoundProperty pins the [15] upper bound: the
// fully-distributed per-flow dispatcher at S >= 2 never exceeds N * r'
// relative queuing delay, for random admissible traffic.
func TestIyerMcKeownUpperBoundProperty(t *testing.T) {
	prop := func(seed int64) bool {
		const n, k, rp = 6, 6, 3 // S = 2
		p, err := New(Config{N: n, K: k, RPrime: rp, CheckInvariants: true},
			func(e demux.Env) (demux.Algorithm, error) { return demux.NewRoundRobin(e, demux.PerFlow) })
		if err != nil {
			return false
		}
		src := traffic.NewRegulator(n, 4, traffic.NewBernoulli(n, 0.8, 250, seed))
		st := cell.NewStamper()
		sh := shadow.New(n)
		shadowDep := map[uint64]cell.Time{}
		var worst cell.Time
		var buf []traffic.Arrival
		var deps, shDeps []cell.Cell
		ppsDep := map[uint64]cell.Time{}
		for slot := cell.Time(0); slot < 5000; slot++ {
			buf = src.Arrivals(slot, nil)
			cells := make([]cell.Cell, 0, len(buf))
			for _, a := range buf {
				cells = append(cells, st.Stamp(cell.Flow{In: a.In, Out: a.Out}, slot))
			}
			var err error
			deps, err = p.Step(slot, cells, deps[:0])
			if err != nil {
				return false
			}
			for _, d := range deps {
				ppsDep[d.Seq] = d.Depart
			}
			shDeps = sh.Step(slot, cells, shDeps[:0])
			for _, d := range shDeps {
				shadowDep[d.Seq] = d.Depart
			}
			if slot > 260 && p.Drained() && sh.Drained() {
				break
			}
		}
		if !p.Drained() {
			return false
		}
		for seq, pd := range ppsDep {
			if d := pd - shadowDep[seq]; d > worst {
				worst = d
			}
		}
		return worst <= cell.Time(n*rp) // N * R/r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestBufferlessRejectsBufferingAlgorithm(t *testing.T) {
	p, err := New(Config{N: 2, K: 4, RPrime: 2, BufferCap: 0, CheckInvariants: true},
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedCPA(e, 3, demux.MinAvail) })
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	c := st.Stamp(cell.Flow{In: 0, Out: 1}, 0)
	if _, err := p.Step(0, []cell.Cell{c}, nil); err == nil ||
		!strings.Contains(err.Error(), "bufferless") {
		t.Errorf("bufferless fabric must reject buffering: %v", err)
	}
}

func TestBufferCapEnforced(t *testing.T) {
	// BufferedCPA with lag 5 holds up to 5 cells; capacity 2 must trip.
	p, err := New(Config{N: 1, K: 4, RPrime: 2, BufferCap: 2, CheckInvariants: true},
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewBufferedCPA(e, 5, demux.MinAvail) })
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	var stepErr error
	for slot := cell.Time(0); slot < 5 && stepErr == nil; slot++ {
		c := st.Stamp(cell.Flow{In: 0, Out: 0}, slot)
		_, stepErr = p.Step(slot, []cell.Cell{c}, nil)
	}
	if stepErr == nil || !strings.Contains(stepErr.Error(), "capacity") {
		t.Errorf("buffer capacity must be enforced: %v", stepErr)
	}
}

func TestArrivalValidation(t *testing.T) {
	p, _ := New(Config{N: 2, K: 2, RPrime: 1}, rrFactory(demux.PerInput))
	st := cell.NewStamper()
	// Wrong slot stamp.
	c := st.Stamp(cell.Flow{In: 0, Out: 0}, 5)
	if _, err := p.Step(0, []cell.Cell{c}, nil); err == nil {
		t.Error("mis-stamped arrival must be rejected")
	}
	// Two arrivals on one input.
	p2, _ := New(Config{N: 2, K: 2, RPrime: 1}, rrFactory(demux.PerInput))
	a := st.Stamp(cell.Flow{In: 0, Out: 0}, 0)
	b := st.Stamp(cell.Flow{In: 0, Out: 1}, 0)
	if _, err := p2.Step(0, []cell.Cell{a, b}, nil); err == nil {
		t.Error("two arrivals per input per slot must be rejected")
	}
	// Out-of-range port.
	p3, _ := New(Config{N: 2, K: 2, RPrime: 1}, rrFactory(demux.PerInput))
	d := st.Stamp(cell.Flow{In: 0, Out: 7}, 0)
	if _, err := p3.Step(0, []cell.Cell{d}, nil); err == nil {
		t.Error("out-of-range destination must be rejected")
	}
	// Non-monotone slots.
	p4, _ := New(Config{N: 2, K: 2, RPrime: 1}, rrFactory(demux.PerInput))
	p4.Step(3, nil, nil)
	if _, err := p4.Step(3, nil, nil); err == nil {
		t.Error("repeated slot must be rejected")
	}
}

func TestPlaneFailureSurfacesAsError(t *testing.T) {
	p, err := New(Config{N: 4, K: 2, RPrime: 2, CheckInvariants: true}, rrFactory(demux.PerInput))
	if err != nil {
		t.Fatal(err)
	}
	p.Plane(0).Fail()
	st := cell.NewStamper()
	// Round-robin starts at plane 0, so the first dispatch hits the
	// failed plane and the execution fails loudly instead of dropping.
	c := st.Stamp(cell.Flow{In: 0, Out: 0}, 0)
	if _, err := p.Step(0, []cell.Cell{c}, nil); err == nil {
		t.Error("dispatch to failed plane must error")
	}
}

func TestStaticPartitionSurvivesOtherGroupFailure(t *testing.T) {
	// Failure tolerance contrast (Section 3): with static partitioning,
	// inputs whose group excludes the failed plane are unaffected.
	p, err := New(Config{N: 4, K: 4, RPrime: 2, CheckInvariants: true},
		func(e demux.Env) (demux.Algorithm, error) { return demux.NewStaticPartition(e, 2) })
	if err != nil {
		t.Fatal(err)
	}
	p.Plane(0).Fail() // group 0 = planes {0,1}, used by inputs 0 and 2
	tr := traffic.NewTrace()
	tr.MustAdd(0, 1, 0) // input 1 is in group 1 = planes {2,3}
	deps, _ := drive(t, p, tr, 50)
	if len(deps) != 1 {
		t.Errorf("unaffected input should still deliver, got %d departures", len(deps))
	}
}

func TestLazyMuxAlsoDeliversEverything(t *testing.T) {
	p, err := New(Config{N: 4, K: 4, RPrime: 2, Mux: mux.LazyFCFS{}, CheckInvariants: true},
		rrFactory(demux.PerInput))
	if err != nil {
		t.Fatal(err)
	}
	tr := traffic.NewTrace()
	for s := cell.Time(0); s < 20; s++ {
		tr.MustAdd(s, cell.Port(s%4), cell.Port((s+1)%4))
	}
	deps, _ := drive(t, p, tr, 500)
	if len(deps) != 20 {
		t.Errorf("lazy mux lost cells: %d of 20", len(deps))
	}
}

func TestPeakPlaneQueueTracksConcentration(t *testing.T) {
	// Distinct fresh inputs all dispatch to plane 0 (see
	// TestConcentrationDelaysDepartures), building a backlog there.
	p, _ := New(Config{N: 8, K: 2, RPrime: 2, CheckInvariants: true}, rrFactory(demux.PerInput))
	tr := traffic.NewTrace()
	for i := 0; i < 6; i++ {
		tr.MustAdd(cell.Time(i), cell.Port(i), 0)
	}
	drive(t, p, tr, 200)
	if p.PeakPlaneQueue() < 3 {
		t.Errorf("PeakPlaneQueue = %d, expected >= 3 under concentration", p.PeakPlaneQueue())
	}
}

func TestLogRecordsAllStages(t *testing.T) {
	p, _ := New(Config{N: 2, K: 2, RPrime: 1, CheckInvariants: true}, rrFactory(demux.PerInput))
	// Request the log before driving: recording starts when a reader
	// registers, so an unobserved run pays no logging cost.
	log := p.Log()
	tr := traffic.NewTrace()
	tr.MustAdd(0, 0, 1)
	drive(t, p, tr, 10)
	counts := map[demux.EventKind]int{}
	var cur demux.Cursor
	log.Read(&cur, 1000, func(e demux.Event) { counts[e.Kind]++ })
	if counts[demux.EvArrival] != 1 || counts[demux.EvDispatch] != 1 || counts[demux.EvXmit] != 1 {
		t.Errorf("log counts = %v", counts)
	}
}
