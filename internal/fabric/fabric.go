// Package fabric assembles the parallel packet switch of Section 2 of the
// paper: N demultiplexors (one per input-port), K center-stage planes, and N
// multiplexors (one per output-port), wired by rate-r internal lines in both
// directions (a three-stage Clos network, Figure 1).
//
// The fabric is the referee of every experiment: it executes the
// demultiplexing algorithm's decisions and *verifies* them against the
// formal model — the input constraint and output constraint on the internal
// lines, at most one arrival per input per slot, no cell drops, per-flow
// order preservation at departure, and cell conservation across the stages.
// An algorithm that cheats produces an error, not a better number.
package fabric

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/faults"
	"ppsim/internal/mux"
	"ppsim/internal/obs"
	"ppsim/internal/plane"
	"ppsim/internal/queue"
	"ppsim/internal/timing"
)

// Config describes the PPS geometry.
type Config struct {
	// N is the number of external input- and output-ports.
	N int
	// K is the number of center-stage planes. The paper's premise is
	// K < N planes running slower than the external line; K >= N is legal
	// hardware and accepted here (useful for speedup sweeps), but it is
	// outside the model the lower bounds are proved for — interpret RQD
	// figures at K >= N accordingly.
	K int
	// RPrime is r' = R/r: the slots an internal line is occupied per cell.
	// The speedup is S = K*r/R = K/RPrime.
	RPrime int64
	// BufferCap bounds each input-port buffer: 0 means a bufferless PPS
	// (every arrival must be dispatched in its arrival slot), a positive
	// value bounds the buffered variant, and -1 means unbounded buffers.
	BufferCap int
	// Mux selects the output-side pull policy; nil defaults to mux.Eager.
	Mux mux.Policy
	// CheckInvariants enables per-slot conservation auditing (O(N+K) per
	// slot; cheap enough to default on in experiments).
	CheckInvariants bool
	// Workers selects the stage-parallel slot engine: 0 runs every stage
	// serially (the historical engine), a positive value shards the
	// per-input audit and per-output mux stages across that many
	// persistent workers, and -1 picks a shard count from GOMAXPROCS and
	// N (see ResolveWorkers). Any worker count produces bit-identical
	// results to the serial engine.
	Workers int
	// Faults is the plane fail/recover schedule applied at the start of
	// each slot; nil (or an empty schedule) injects nothing.
	Faults *faults.Schedule
	// FaultPolicy decides what a dispatch into a failed plane means:
	// faults.Abort (default) keeps the model's no-drop semantics and
	// errors; faults.DropCount converts the loss into accounted drops.
	FaultPolicy faults.Policy
}

// Speedup returns S = K / r'.
func (c Config) Speedup() float64 { return float64(c.K) / float64(c.RPrime) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("fabric: N must be positive, got %d", c.N)
	}
	if c.K <= 0 {
		return fmt.Errorf("fabric: K must be positive, got %d", c.K)
	}
	if c.RPrime < 1 {
		return fmt.Errorf("fabric: r' must be >= 1, got %d", c.RPrime)
	}
	if c.BufferCap < -1 {
		return fmt.Errorf("fabric: BufferCap must be -1, 0 or positive, got %d", c.BufferCap)
	}
	if c.Workers < -1 {
		return fmt.Errorf("fabric: Workers must be -1 (auto), 0 (serial) or positive, got %d", c.Workers)
	}
	if c.FaultPolicy != faults.Abort && c.FaultPolicy != faults.DropCount {
		return fmt.Errorf("fabric: unknown fault policy %v", c.FaultPolicy)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.K); err != nil {
			return fmt.Errorf("fabric: %w", err)
		}
		if c.Faults.HasLoss() && c.FaultPolicy != faults.DropCount {
			return fmt.Errorf("fabric: cell-loss injection requires FaultPolicy DropCount (Abort forbids drops)")
		}
	}
	return nil
}

// PPS is one parallel packet switch instance.
type PPS struct {
	cfg    Config
	alg    demux.Algorithm
	planes []*plane.Plane
	// store is the shared columnar cell arena (DESIGN.md §13): cell bodies
	// live in per-shard contiguous slabs and the plane queues and output
	// resequencers hold 32-bit refs into it. A cell is allocated into the
	// shard that owns its output-port (outShard), because every Free site —
	// departure at the output, fault drain — runs either in a serial phase
	// of Step or on the goroutine driving that output's mux shard; the
	// stage barrier orders the two, so the store needs no atomics.
	store    *cell.Store
	outShard []int32
	inGates  *timing.Matrix // N x K
	outGates *timing.Matrix // K x N
	outputs  []*mux.Output
	// pviews are the persistent per-output planeView adapters. Passing a
	// value-type view would box it into the mux.PlaneView interface — one
	// heap allocation per output per slot; pointers into this slice convert
	// for free.
	pviews []planeView
	log    demux.Log
	// logArmed is set the first time the global event log is requested
	// (by a u-RT algorithm through its Env, or by a diagnostic caller via
	// Log). An unrequested log records nothing: the append stream is pure
	// overhead — it grew without bound at three events per cell — when no
	// reader exists, and fully-distributed algorithms are forbidden from
	// reading it anyway.
	logArmed bool

	// pendingPerIn counts arrived-but-undispatched cells per input; the
	// fabric cross-checks it against the algorithm's Buffered reports.
	pendingPerIn []int
	pendingTotal int

	// seenStamp[i] == current slot marks input i as having received its
	// cell this slot (allocation-free duplicate-arrival check).
	seenStamp []cell.Time

	arrived    uint64
	dispatched uint64
	departed   uint64
	lastSlot   cell.Time

	// dispatchedPerPlane and pullsPerOut are cumulative per-stage traffic
	// counters exposed to the per-slot probes (internal/obs).
	dispatchedPerPlane []uint64
	pullsPerOut        []int64

	// tracer receives structured events; trace caches tracer.Enabled() so
	// the disabled hot path is a single predictable branch per site.
	tracer *obs.Tracer
	trace  bool

	// lastFlowSeq tracks per-flow order preservation at departure,
	// sharded per output-port: a flow (in, out) departs only at output
	// out, so lastFlowSeq[out] — indexed by the input-port alone — is
	// written by exactly one mux shard. Each row is a dense next-expected
	// array (0 = flow unseen, else last departed FlowSeq + 1), lazily
	// allocated on the output's first departure: an idle output costs
	// nothing, and an active one replaces the historical per-flow map
	// lookup on every departure with an array index.
	lastFlowSeq [][]uint64

	// faults applies the configured schedule; nil when the schedule is
	// empty, so fault-free runs pay nothing.
	faults *faults.Runtime
	// dropped counts cells lost under the DropCount policy; slotDrops
	// lists the current slot's losses for the harness's drop accounting
	// (reset at the top of every Step, capacity reused).
	dropped   uint64
	slotDrops []cell.Cell
	// failScratch is the reusable buffer FailDrop drains a dying plane's
	// backlog into.
	failScratch []cell.Cell
	// dropGaps[out][in], allocated only under DropCount, records the
	// FlowSeqs of dropped cells so checkFlowOrder can verify that a
	// departure gap is exactly the flow's accounted drops. Min-heaps:
	// multiple plane failures can drop a flow's cells out of FlowSeq
	// order. Written in the serial phases (slot start, dispatch), consumed
	// by the output's own mux shard after the stage barrier.
	dropGaps []map[cell.Port]*queue.Heap[uint64]

	// pool is the stage-parallel worker pool, nil for the serial engine.
	pool *workerPool

	// cellsInPlanes and cellsInOutputs incrementally mirror the structural
	// sums audit() computes, and queuedPerOut[j] mirrors the sum of plane
	// backlogs destined to output j. Together with pendingTotal they make
	// Backlog and the per-output busy predicate O(1) — the event engine
	// consults both every slot, where the structural walk would reintroduce
	// the O(N+K) cost the engine exists to avoid. audit() cross-checks the
	// totals against the structures whenever it runs.
	cellsInPlanes  int
	cellsInOutputs int
	queuedPerOut   []int

	// busyList is the sorted working set of outputs that may still hold
	// work (cells queued in a plane or parked in the resequencer). Dispatch
	// stages a newly-busy output in busyAdd (guarded by busyMark); the
	// sparse mux sweeps (DrainStep, EventStep) merge the additions, walk the
	// set in ascending output order — preserving the serial engine's
	// departure and EvXmit order — and compact drained outputs out. The set
	// is a conservative superset: a full Step never shrinks it, so any legal
	// Step/DrainStep/EventStep interleaving keeps it valid.
	busyMark []bool
	busyList []cell.Port
	busyAdd  []cell.Port

	// pendingList is the working set of inputs holding arrived-but-
	// undispatched cells, with pendingIdx[i] its position (-1 when absent).
	// EventStep audits only these inputs plus the slot's arrival inputs.
	pendingList []cell.Port
	pendingIdx  []int32
}

// New builds a PPS and constructs its demultiplexing algorithm via makeAlg,
// which receives the fabric's demux.Env.
func New(cfg Config, makeAlg func(demux.Env) (demux.Algorithm, error)) (*PPS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mux == nil {
		cfg.Mux = mux.Eager{}
	}
	p := &PPS{
		cfg:                cfg,
		inGates:            timing.NewMatrix(cfg.N, cfg.K, cfg.RPrime),
		outGates:           timing.NewMatrix(cfg.K, cfg.N, cfg.RPrime),
		pendingPerIn:       make([]int, cfg.N),
		seenStamp:          make([]cell.Time, cfg.N),
		lastSlot:           -1,
		lastFlowSeq:        make([][]uint64, cfg.N),
		dispatchedPerPlane: make([]uint64, cfg.K),
		pullsPerOut:        make([]int64, cfg.N),
		queuedPerOut:       make([]int, cfg.N),
		busyMark:           make([]bool, cfg.N),
		pendingIdx:         make([]int32, cfg.N),
	}
	for i := range p.pendingIdx {
		p.pendingIdx[i] = -1
	}
	for i := range p.seenStamp {
		p.seenStamp[i] = cell.None
	}
	// The store is sharded by the same output geometry the worker pool
	// uses, so each mux shard frees only from its own slab; a serial
	// fabric gets a single shard.
	workers := ResolveWorkers(cfg.Workers, cfg.N)
	shards := workers
	if shards < 1 {
		shards = 1
	}
	p.store = cell.NewStore(shards)
	p.outShard = make([]int32, cfg.N)
	for i := 0; i < shards; i++ {
		for j := i * cfg.N / shards; j < (i+1)*cfg.N/shards; j++ {
			p.outShard[j] = int32(i)
		}
	}
	for k := 0; k < cfg.K; k++ {
		p.planes = append(p.planes, plane.New(cell.Plane(k), cfg.N, p.store))
	}
	for j := 0; j < cfg.N; j++ {
		p.outputs = append(p.outputs, mux.NewOutput(cell.Port(j), cfg.Mux, p.store, cfg.N))
	}
	p.pviews = make([]planeView, cfg.N)
	for j := range p.pviews {
		p.pviews[j] = planeView{p: p, j: cell.Port(j)}
	}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		p.faults = faults.NewRuntime(cfg.Faults, cfg.K)
	}
	if cfg.FaultPolicy == faults.DropCount {
		// Allocated on policy, not schedule: planes failed before slot 0
		// (harness FailPlanes) drop under DropCount with no schedule at all.
		p.dropGaps = make([]map[cell.Port]*queue.Heap[uint64], cfg.N)
		for j := range p.dropGaps {
			p.dropGaps[j] = make(map[cell.Port]*queue.Heap[uint64])
		}
	}
	alg, err := makeAlg(envView{p})
	if err != nil {
		return nil, err
	}
	p.alg = alg
	if workers > 0 {
		p.pool = newWorkerPool(p, workers)
	}
	return p, nil
}

// envView is the demux.Env the algorithm sees.
type envView struct{ p *PPS }

func (e envView) Ports() int    { return e.p.cfg.N }
func (e envView) Planes() int   { return e.p.cfg.K }
func (e envView) RPrime() int64 { return e.p.cfg.RPrime }
func (e envView) Log() *demux.Log {
	e.p.logArmed = true
	return &e.p.log
}
func (e envView) InputGateFreeAt(in cell.Port, k cell.Plane) cell.Time {
	return e.p.inGates.Gate(int(in), int(k)).FreeAt()
}

// FreeGateMask implements the optional demux.GateMasker capability: the
// bitmask of planes whose line from input `in` is free at slot t, served
// from the gate matrix's per-row busy masks in O(busy) — at most r'-1 bits
// per input — rather than K virtual calls. Only valid when K <= 64
// (demux.GateMasker's contract); algorithms fall back to the per-plane scan
// otherwise.
func (e envView) FreeGateMask(in cell.Port, t cell.Time) uint64 {
	return e.p.inGates.FreeColsMask(int(in), t)
}

// PlaneUp implements the optional demux.PlaneHealth capability: fault-aware
// wrappers mask planes for which it reports false.
func (e envView) PlaneUp(k cell.Plane) bool { return !e.p.planes[k].Failed() }

// Config returns the switch geometry.
func (p *PPS) Config() Config { return p.cfg }

// Algorithm returns the demultiplexing algorithm under test.
func (p *PPS) Algorithm() demux.Algorithm { return p.alg }

// Plane returns center-stage plane k (for inspection and failure injection).
func (p *PPS) Plane(k cell.Plane) *plane.Plane { return p.planes[k] }

// Output returns output-port j's multiplexor (for utilization reports).
func (p *PPS) Output(j cell.Port) *mux.Output { return p.outputs[j] }

// SetTracer attaches a structured event tracer; call before the first Step.
// A nil tracer (or one over the null sink) keeps the hot path untraced.
func (p *PPS) SetTracer(tr *obs.Tracer) {
	p.tracer = tr
	p.trace = tr.Enabled()
}

// InputPending reports the number of arrived-but-undispatched cells at
// input in (the fabric's own count, not the algorithm's report).
func (p *PPS) InputPending(in cell.Port) int { return p.pendingPerIn[in] }

// Dispatched reports the total number of cells sent into the center stage.
func (p *PPS) Dispatched() uint64 { return p.dispatched }

// DispatchedTo reports the cumulative number of cells dispatched into
// plane k — the distribution the demux-imbalance probe compares against
// the round-robin ideal.
func (p *PPS) DispatchedTo(k cell.Plane) uint64 { return p.dispatchedPerPlane[k] }

// OutputPulls reports the cumulative number of cells output j's
// multiplexor has pulled from the planes.
func (p *PPS) OutputPulls(j cell.Port) int64 { return p.pullsPerOut[j] }

// violation traces a model violation before the error aborts the run.
func (p *PPS) violation(t cell.Time, err error) error {
	if p.trace {
		p.tracer.Emit(obs.Event{T: t, Kind: obs.EvViolation, Plane: cell.NoPlane, Note: err.Error()})
	}
	return err
}

// auditInput cross-checks the algorithm's buffer report for input i against
// the fabric's own count and the configured capacity (stage 3 of Step for
// one input). It only reads fabric and algorithm state, so input shards may
// run it concurrently.
func (p *PPS) auditInput(i int) error {
	in := cell.Port(i)
	rep := p.alg.Buffered(in)
	if rep != p.pendingPerIn[i] {
		return fmt.Errorf("fabric: %s reports %d buffered at input %d, fabric counts %d (cell lost or duplicated)",
			p.alg.Name(), rep, in, p.pendingPerIn[i])
	}
	switch {
	case p.cfg.BufferCap == 0 && rep != 0:
		return fmt.Errorf("fabric: bufferless PPS but %s buffered %d cells at input %d", p.alg.Name(), rep, in)
	case p.cfg.BufferCap > 0 && rep > p.cfg.BufferCap:
		return fmt.Errorf("fabric: input %d buffer occupancy %d exceeds capacity %d", in, rep, p.cfg.BufferCap)
	}
	return nil
}

// checkFlowOrder verifies and records per-flow order preservation for a
// departing cell. The per-output lastFlowSeq shard is written only by the
// goroutine driving output c.Flow.Out, so output shards need no locking.
// Under DropCount a flow's departures may skip FlowSeqs, but only FlowSeqs
// the fabric itself recorded as dropped — any other gap is still a
// violation.
func (p *PPS) checkFlowOrder(c cell.Cell) error {
	seqs := p.lastFlowSeq[c.Flow.Out]
	if seqs == nil {
		seqs = make([]uint64, p.cfg.N)
		p.lastFlowSeq[c.Flow.Out] = seqs
	}
	expect := seqs[c.Flow.In]
	orig := expect
	if c.FlowSeq != expect && p.dropGaps != nil {
		// The per-output dropGaps shard is filled in the serial phases and
		// consumed only here, by the shard that owns output c.Flow.Out.
		if h := p.dropGaps[c.Flow.Out][c.Flow.In]; h != nil {
			for !h.Empty() && h.Peek() == expect {
				h.Pop()
				expect++
			}
		}
	}
	if c.FlowSeq != expect {
		if orig == 0 {
			return fmt.Errorf("fabric: flow %v order violated: first departure has FlowSeq %d", c.Flow, c.FlowSeq)
		}
		return fmt.Errorf("fabric: flow %v order violated: cell %d departed after %d", c.Flow, c.FlowSeq, orig-1)
	}
	seqs[c.Flow.In] = c.FlowSeq + 1
	return nil
}

// recordDrop accounts one cell lost under the DropCount policy: the run
// total, the slot's drop list (the harness turns it into per-plane and
// per-input counters), the order referee's gap heap, and the output
// resequencer's skip set — the flow's successors must not park forever
// behind a cell that will never be delivered. Called only from the serial
// phases of Step, so the mux shards observe a consistent view after the
// stage barrier.
func (p *PPS) recordDrop(t cell.Time, c cell.Cell) {
	p.dropped++
	p.slotDrops = append(p.slotDrops, c)
	m := p.dropGaps[c.Flow.Out]
	h := m[c.Flow.In]
	if h == nil {
		h = queue.NewHeap(func(a, b uint64) bool { return a < b })
		m[c.Flow.In] = h
	}
	h.Push(c.FlowSeq)
	p.outputs[c.Flow.Out].Skip(c.Flow, c.FlowSeq)
	if p.trace {
		p.tracer.Emit(obs.Event{T: t, Kind: obs.EvDrop, Seq: c.Seq, In: c.Flow.In, Out: c.Flow.Out, Plane: c.Via})
	}
}

// applyFaults executes the schedule events due at slot t. Under DropCount a
// failing plane's backlog is drained and accounted as drops; under Abort the
// plane keeps draining its backlog (the output-side lines are assumed
// intact) and only new dispatches into it error.
func (p *PPS) applyFaults(t cell.Time) {
	for _, e := range p.faults.Due(t) {
		switch e.Kind {
		case faults.Recover:
			p.planes[e.Plane].Recover()
		case faults.Fail:
			if p.cfg.FaultPolicy == faults.DropCount {
				p.failScratch = p.planes[e.Plane].FailDrop(p.failScratch[:0])
				for _, c := range p.failScratch {
					p.cellsInPlanes--
					p.queuedPerOut[c.Flow.Out]--
					p.recordDrop(t, c)
				}
			} else {
				p.planes[e.Plane].Fail()
			}
		}
	}
}

// planeView adapts the center stage for one output's multiplexor, speaking
// the batched mux.PlaneView protocol: one Eligible scan surfaces every
// pullable plane head for the slot, then one PullBatch (or per-selection
// Take) seizes the lines and pops the refs — two interface crossings per
// output-slot for the eager policy instead of four per cell.
type planeView struct {
	p *PPS
	j cell.Port
	// pulls, when non-nil, receives per-plane pop counts instead of the
	// plane's own backlog counter being decremented: the sharded mux stage
	// points it at a worker-local array so concurrent outputs never write
	// shared plane state, and reconciles after the stage barrier.
	pulls []int
	// events, when non-nil, buffers EvXmit entries for ordered replay
	// after the stage barrier (the global log is append-only and shared).
	events *[]demux.Event
}

func (v *planeView) Planes() int { return v.p.cfg.K }

// Eligible implements mux.PlaneView: ascending plane order, non-empty queue
// for this output, free output-side line. The Seq comes from one store
// deref of the head ref; the snapshot stays valid for the whole slot
// because a Take only busies the taken plane's own line (Seize holds it for
// r' >= 1 slots) and pops its own head.
func (v *planeView) Eligible(t cell.Time, dst []mux.Head) []mux.Head {
	for k := range v.p.planes {
		r, ok := v.p.planes[k].HeadRef(v.j)
		if !ok || !v.p.outGates.Gate(k, int(v.j)).Free(t) {
			continue
		}
		dst = append(dst, mux.Head{K: cell.Plane(k), Seq: v.p.store.At(r).Seq})
	}
	return dst
}

// Take implements mux.PlaneView: seize plane k's line at t and pop its head.
func (v *planeView) Take(t cell.Time, k cell.Plane) (cell.Ref, error) {
	if err := v.p.outGates.Gate(int(k), int(v.j)).Seize(t); err != nil {
		return 0, err
	}
	return v.pop(t, k), nil
}

// PullBatch implements mux.PlaneView: take every listed head in order. On a
// gate violation the refs popped so far are returned with the error, so the
// caller can keep them accounted before the run aborts.
func (v *planeView) PullBatch(t cell.Time, heads []mux.Head, dst []cell.Ref) ([]cell.Ref, error) {
	for _, h := range heads {
		if err := v.p.outGates.Gate(int(h.K), int(v.j)).Seize(t); err != nil {
			return dst, err
		}
		dst = append(dst, v.pop(t, h.K))
	}
	return dst, nil
}

// pop removes plane k's head ref for this output and accounts the pull. The
// cell body is dereferenced only when the event log or tracer is armed.
func (v *planeView) pop(t cell.Time, k cell.Plane) cell.Ref {
	var r cell.Ref
	if v.pulls != nil {
		// Sharded mux stage: the global plane/output totals are reconciled
		// by stepSharded after the barrier, alongside the plane backlogs.
		r = v.p.planes[k].PopDeferred(v.j)
		v.pulls[k]++
	} else {
		r = v.p.planes[k].Pop(v.j)
		v.p.cellsInPlanes--
		v.p.cellsInOutputs++
	}
	// queuedPerOut[j] is written only by the goroutine driving output j, so
	// it needs no deferral (same ownership argument as pullsPerOut).
	v.p.queuedPerOut[v.j]--
	v.p.pullsPerOut[v.j]++
	if v.p.logArmed || v.p.trace {
		c := v.p.store.At(r)
		if v.p.logArmed {
			e := demux.Event{T: t, Kind: demux.EvXmit, In: c.Flow.In, Out: v.j, K: k}
			if v.events != nil {
				*v.events = append(*v.events, e)
			} else {
				v.p.log.Append(e)
			}
		}
		if v.p.trace {
			v.p.tracer.Emit(obs.Event{T: t, Kind: obs.EvMuxPull, Seq: c.Seq, In: c.Flow.In, Out: v.j, Plane: k})
		}
	}
	return r
}

// acceptArrivals runs stage 1 of a slot: validate and admit the arrivals,
// updating the pending counters and working set. Shared by Step and
// EventStep so the two engines cannot drift.
func (p *PPS) acceptArrivals(t cell.Time, arrivals []cell.Cell) error {
	for _, c := range arrivals {
		if c.Arrive != t {
			return p.violation(t, fmt.Errorf("fabric: cell %v presented at slot %d", c, t))
		}
		if int(c.Flow.In) < 0 || int(c.Flow.In) >= p.cfg.N || int(c.Flow.Out) < 0 || int(c.Flow.Out) >= p.cfg.N {
			return p.violation(t, fmt.Errorf("fabric: cell %v outside %dx%d switch", c, p.cfg.N, p.cfg.N))
		}
		if p.seenStamp[c.Flow.In] == t {
			return p.violation(t, fmt.Errorf("fabric: two cells arrived at input %d in slot %d", c.Flow.In, t))
		}
		p.seenStamp[c.Flow.In] = t
		p.arrived++
		if p.pendingPerIn[c.Flow.In]++; p.pendingPerIn[c.Flow.In] == 1 {
			p.pendingIdx[c.Flow.In] = int32(len(p.pendingList))
			p.pendingList = append(p.pendingList, c.Flow.In)
		}
		p.pendingTotal++
		if p.logArmed {
			p.log.Append(demux.Event{T: t, Kind: demux.EvArrival, In: c.Flow.In, Out: c.Flow.Out})
		}
		if p.trace {
			p.tracer.Emit(obs.Event{T: t, Kind: obs.EvArrival, Seq: c.Seq, In: c.Flow.In, Out: c.Flow.Out, Plane: cell.NoPlane})
		}
	}
	return nil
}

// dispatch runs stage 2 of a slot: present the arrivals to the algorithm and
// execute its sends, updating the plane/output backlog counters and staging
// newly-busy outputs. Shared by Step and EventStep.
func (p *PPS) dispatch(t cell.Time, arrivals []cell.Cell) error {
	sends, err := p.alg.Slot(t, arrivals)
	if err != nil {
		return fmt.Errorf("fabric: algorithm %s: %w", p.alg.Name(), err)
	}
	for _, s := range sends {
		c := s.Cell
		if s.Plane < 0 || int(s.Plane) >= p.cfg.K {
			return p.violation(t, fmt.Errorf("fabric: %s dispatched %v to nonexistent plane %d", p.alg.Name(), c, s.Plane))
		}
		if err := p.inGates.SeizeAt(int(c.Flow.In), int(s.Plane), t); err != nil {
			return p.violation(t, fmt.Errorf("fabric: %s violated the input constraint: %w", p.alg.Name(), err))
		}
		if p.pendingPerIn[c.Flow.In] == 0 {
			return p.violation(t, fmt.Errorf("fabric: %s dispatched cell %v that is not pending at input %d", p.alg.Name(), c, c.Flow.In))
		}
		if p.pendingPerIn[c.Flow.In]--; p.pendingPerIn[c.Flow.In] == 0 {
			p.removePending(c.Flow.In)
		}
		p.pendingTotal--
		p.dispatched++
		p.dispatchedPerPlane[s.Plane]++
		c.Dispatch = t
		c.Via = s.Plane
		if p.trace {
			p.tracer.Emit(obs.Event{T: t, Kind: obs.EvDispatch, Seq: c.Seq, In: c.Flow.In, Out: c.Flow.Out, Plane: s.Plane})
		}
		if p.cfg.FaultPolicy == faults.DropCount {
			// Dead-plane dispatches and loss-stream losses become accounted
			// drops. No demux.Log EvDispatch for a dropped cell: a logged
			// dispatch with no matching EvXmit would make log-derived
			// backlogs (stale-cpa) see the cell as queued forever.
			if p.planes[s.Plane].Failed() {
				p.recordDrop(t, c)
				continue
			}
			if p.faults != nil && p.faults.Lose(s.Plane) {
				p.recordDrop(t, c)
				continue
			}
		}
		// The cell body moves into the columnar store here — into the slab
		// of the shard that owns its output-port — and from this point on
		// the planes and outputs pass the 32-bit ref around. On a rejected
		// enqueue the ref is freed so the arena cannot leak on the error
		// path (audit cross-checks Live against the structural sums).
		ref := p.store.Put(int(p.outShard[c.Flow.Out]), c)
		if err := p.planes[s.Plane].Enqueue(ref); err != nil {
			p.store.Free(ref)
			return p.violation(t, err)
		}
		p.cellsInPlanes++
		p.queuedPerOut[c.Flow.Out]++
		if !p.busyMark[c.Flow.Out] {
			p.busyMark[c.Flow.Out] = true
			p.busyAdd = append(p.busyAdd, c.Flow.Out)
		}
		if p.logArmed {
			p.log.Append(demux.Event{T: t, Kind: demux.EvDispatch, In: c.Flow.In, Out: c.Flow.Out, K: s.Plane})
		}
		if p.trace {
			p.tracer.Emit(obs.Event{T: t, Kind: obs.EvPlaneEnqueue, Seq: c.Seq, In: c.Flow.In, Out: c.Flow.Out, Plane: s.Plane})
		}
	}
	p.mergeBusy()
	return nil
}

// mergeBusy folds the outputs staged by dispatch into the sorted busy list.
// Additions within one slot arrive in dispatch order, which tracks arrival
// order — nearly sorted — so an insertion sort beats the generic sort; the
// busyMark guard guarantees the two runs are disjoint, making the in-place
// back-to-front merge safe.
func (p *PPS) mergeBusy() {
	add := p.busyAdd
	if len(add) == 0 {
		return
	}
	for i := 1; i < len(add); i++ {
		for k := i; k > 0 && add[k] < add[k-1]; k-- {
			add[k], add[k-1] = add[k-1], add[k]
		}
	}
	old := len(p.busyList)
	p.busyList = append(p.busyList, add...)
	i, k := old-1, len(add)-1
	for w := len(p.busyList) - 1; k >= 0; w-- {
		if i >= 0 && p.busyList[i] > add[k] {
			p.busyList[w] = p.busyList[i]
			i--
		} else {
			p.busyList[w] = add[k]
			k--
		}
	}
	p.busyAdd = p.busyAdd[:0]
}

// sweepBusy runs the multiplexing stage over the busy working set in
// ascending output order (the serial engine's departure and EvXmit order)
// and compacts outputs that drained. Shared by DrainStep and EventStep.
func (p *PPS) sweepBusy(t cell.Time, dst []cell.Cell) ([]cell.Cell, error) {
	keep := p.busyList[:0]
	for _, j := range p.busyList {
		var err error
		dst, err = p.stepOutput(t, j, dst)
		if err != nil {
			return dst, err
		}
		if p.outputBusy(j) {
			keep = append(keep, j)
		} else {
			p.busyMark[j] = false
		}
	}
	p.busyList = keep
	return dst, nil
}

// removePending drops input in from the pending working set (its last
// buffered cell was dispatched). O(1) swap-remove; order is irrelevant — the
// set only scopes EventStep's sparse audit.
func (p *PPS) removePending(in cell.Port) {
	idx := p.pendingIdx[in]
	last := len(p.pendingList) - 1
	moved := p.pendingList[last]
	p.pendingList[idx] = moved
	p.pendingIdx[moved] = idx
	p.pendingList = p.pendingList[:last]
	p.pendingIdx[in] = -1
}

// stepOutput runs the multiplexing stage for one output: pull per policy,
// emit, verify flow order, and account the departure. Shared by the serial
// Step loop, DrainStep and EventStep.
func (p *PPS) stepOutput(t cell.Time, j cell.Port, dst []cell.Cell) ([]cell.Cell, error) {
	pv := &p.pviews[j]
	c, ok, err := p.outputs[j].Step(t, pv)
	if err != nil {
		return dst, err
	}
	if !ok {
		return dst, nil
	}
	if err := p.checkFlowOrder(c); err != nil {
		return dst, p.violation(t, err)
	}
	p.departed++
	p.cellsInOutputs--
	if p.trace {
		p.tracer.Emit(obs.Event{T: t, Kind: obs.EvDepart, Seq: c.Seq, In: c.Flow.In, Out: c.Flow.Out, Plane: c.Via})
	}
	return append(dst, c), nil
}

// Step advances the PPS by one slot. arrivals must be stamped cells with
// Arrive == t, at most one per input, in sequence order. Departing cells are
// appended to dst and returned with Depart (and the intermediate stamps)
// set.
func (p *PPS) Step(t cell.Time, arrivals []cell.Cell, dst []cell.Cell) ([]cell.Cell, error) {
	if t <= p.lastSlot {
		return dst, fmt.Errorf("fabric: non-monotone slot %d after %d", t, p.lastSlot)
	}
	if t != p.lastSlot+1 && p.Backlog() > 0 {
		return dst, fmt.Errorf("fabric: skipped from slot %d to %d with %d cells in flight", p.lastSlot, t, p.Backlog())
	}
	p.lastSlot = t

	// 0. Scheduled faults, before this slot's arrivals are presented.
	if len(p.slotDrops) > 0 {
		p.slotDrops = p.slotDrops[:0]
	}
	if p.faults != nil {
		p.applyFaults(t)
	}

	// 1. Arrivals; 2. demultiplexing.
	if err := p.acceptArrivals(t, arrivals); err != nil {
		return dst, err
	}
	if err := p.dispatch(t, arrivals); err != nil {
		return dst, err
	}

	// 3. Buffer discipline; 4. multiplexing and departures. The sharded
	// engine runs stage 3 across input shards and stage 4 across output
	// shards with a barrier in between; it is bit-identical to the serial
	// loops below (see parallel.go for why) but falls back to them while a
	// tracer is attached, since the tracer's event stream is globally
	// ordered and tracing is a diagnostic, not a throughput, mode.
	if p.pool != nil && !p.trace && !p.pool.closed {
		var err error
		dst, err = p.stepSharded(t, dst)
		if err != nil {
			return dst, p.violation(t, err)
		}
	} else {
		for i := 0; i < p.cfg.N; i++ {
			if err := p.auditInput(i); err != nil {
				return dst, p.violation(t, err)
			}
		}
		for j := 0; j < p.cfg.N; j++ {
			var err error
			dst, err = p.stepOutput(t, cell.Port(j), dst)
			if err != nil {
				return dst, err
			}
		}
	}

	// 5. Conservation audit.
	if p.cfg.CheckInvariants {
		if err := p.audit(); err != nil {
			return dst, p.violation(t, err)
		}
	}
	return dst, nil
}

// PendingTotal reports the number of arrived-but-undispatched cells across
// all inputs — the first term of the harness's quiescence predicate (zero
// pending also means a buffered algorithm's silent-slot release scan is a
// provable no-op).
func (p *PPS) PendingTotal() int { return p.pendingTotal }

// IdleInvariant reports whether the demultiplexing algorithm certifies
// demux.IdleInvariant — a precondition for eliding its Slot calls on idle
// slots. Stale-information algorithms do not, so they always run stepped.
func (p *PPS) IdleInvariant() bool {
	ii, ok := p.alg.(demux.IdleInvariant)
	return ok && ii.IdleInvariant()
}

// NextFaultSlot reports the slot of the next unapplied fault-schedule event,
// or cell.None. The harness truncates a fast-forward jump at this slot so
// fail/recover events (and their drop accounting) land exactly where the
// stepped engine would apply them.
func (p *PPS) NextFaultSlot() cell.Time {
	if p.faults == nil {
		return cell.None
	}
	return p.faults.Next()
}

// outputBusy reports whether output j still has work: cells parked in its
// resequencing buffer or queued for it in any plane. O(1) via the
// incremental per-output plane-backlog counter.
func (p *PPS) outputBusy(j cell.Port) bool {
	return p.outputs[j].Buffered() > 0 || p.queuedPerOut[j] > 0
}

// DrainStep advances the PPS by one slot running only the multiplexing
// stage, over only the outputs that still hold work. It is the quiescence
// drain micro-step of the harness's fast-forward and is bit-identical to
// Step(t, nil, dst) under the caller-guaranteed preconditions: no pending
// input cells (so demuxing, input audits and the buffered algorithms'
// release scans are no-ops), no arrivals, no fault event due at t, and an
// idle-invariant algorithm. The skipped conservation audit is implied by the
// previous slot's audit plus this slot moving cells only from planes/outputs
// to departed. The busy-output working set is persistent — dispatch adds
// outputs, only the sweep removes drained ones, and a full Step never
// shrinks it — so any legal Step/DrainStep/EventStep interleaving keeps it a
// valid (conservative) superset of the truly-busy outputs.
func (p *PPS) DrainStep(t cell.Time, dst []cell.Cell) ([]cell.Cell, error) {
	if t <= p.lastSlot {
		return dst, fmt.Errorf("fabric: non-monotone slot %d after %d", t, p.lastSlot)
	}
	p.lastSlot = t
	if len(p.slotDrops) > 0 {
		p.slotDrops = p.slotDrops[:0]
	}
	return p.sweepBusy(t, dst)
}

// EventStep advances the PPS by one slot at O(events) cost: the dispatch
// stage runs only when some input holds work, the buffer audit covers only
// inputs that could have changed (the pending working set plus this slot's
// arrival inputs), the multiplexing stage sweeps only the busy-output
// working set, and the conservation audit is the O(1) counter identity
// instead of the structural walk. It is bit-identical to Step under the
// engine-selection preconditions (an IdleInvariant algorithm, serial mode,
// no tracer): eliding the algorithm's Slot call on a slot with no arrivals
// and no pending cells is exactly the contract demux.IdleInvariant
// certifies, and every skipped stage is a provable no-op. The sparse audit
// detects every buffer-capacity violation (an offender necessarily has
// pending cells, so it is in the working set) but can miss a cheating
// algorithm misreporting Buffered for an input the fabric believes empty —
// the stepped engine remains the full referee, and the equivalence matrix
// cross-checks the two.
func (p *PPS) EventStep(t cell.Time, arrivals []cell.Cell, dst []cell.Cell) ([]cell.Cell, error) {
	if t <= p.lastSlot {
		return dst, fmt.Errorf("fabric: non-monotone slot %d after %d", t, p.lastSlot)
	}
	if t != p.lastSlot+1 && p.Backlog() > 0 {
		return dst, fmt.Errorf("fabric: skipped from slot %d to %d with %d cells in flight", p.lastSlot, t, p.Backlog())
	}
	p.lastSlot = t

	if len(p.slotDrops) > 0 {
		p.slotDrops = p.slotDrops[:0]
	}
	if p.faults != nil {
		p.applyFaults(t)
	}

	if err := p.acceptArrivals(t, arrivals); err != nil {
		return dst, err
	}
	if len(arrivals) > 0 || p.pendingTotal > 0 {
		if err := p.dispatch(t, arrivals); err != nil {
			return dst, err
		}
		for _, in := range p.pendingList {
			if err := p.auditInput(int(in)); err != nil {
				return dst, p.violation(t, err)
			}
		}
		for _, c := range arrivals {
			// Arrival inputs still pending were audited above.
			if p.pendingPerIn[c.Flow.In] == 0 {
				if err := p.auditInput(int(c.Flow.In)); err != nil {
					return dst, p.violation(t, err)
				}
			}
		}
	}

	var err error
	dst, err = p.sweepBusy(t, dst)
	if err != nil {
		return dst, err
	}

	if p.cfg.CheckInvariants {
		total := uint64(p.pendingTotal+p.cellsInPlanes+p.cellsInOutputs) + p.departed + p.dropped
		if total != p.arrived {
			return dst, p.violation(t, fmt.Errorf("fabric: conservation violated: arrived %d != pending %d + planes %d + outputs %d + departed %d + dropped %d",
				p.arrived, p.pendingTotal, p.cellsInPlanes, p.cellsInOutputs, p.departed, p.dropped))
		}
	}
	return dst, nil
}

// audit checks cell conservation across the stages, and that the
// incremental backlog counters agree with the structures they mirror.
// Accounted drops are a legitimate cell fate under DropCount; p.dropped is
// always zero under Abort.
func (p *PPS) audit() error {
	inPlanes := 0
	for _, pl := range p.planes {
		inPlanes += pl.Backlog()
	}
	inOutputs := 0
	for _, o := range p.outputs {
		inOutputs += o.Buffered()
	}
	if inPlanes != p.cellsInPlanes || inOutputs != p.cellsInOutputs {
		return fmt.Errorf("fabric: backlog counters drifted: planes hold %d (counter %d), outputs hold %d (counter %d)",
			inPlanes, p.cellsInPlanes, inOutputs, p.cellsInOutputs)
	}
	if live := p.store.Live(); live != inPlanes+inOutputs {
		return fmt.Errorf("fabric: cell store leaked: %d live refs, planes+outputs hold %d cells", live, inPlanes+inOutputs)
	}
	total := uint64(p.pendingTotal+inPlanes+inOutputs) + p.departed + p.dropped
	if total != p.arrived {
		return fmt.Errorf("fabric: conservation violated: arrived %d != pending %d + planes %d + outputs %d + departed %d + dropped %d",
			p.arrived, p.pendingTotal, inPlanes, inOutputs, p.departed, p.dropped)
	}
	return nil
}

// Backlog reports the number of cells inside the switch (input buffers,
// planes and output buffers). O(1): the terms are maintained incrementally
// at every enqueue, pop, departure and fault-drop site.
func (p *PPS) Backlog() int {
	return p.pendingTotal + p.cellsInPlanes + p.cellsInOutputs
}

// Drained reports whether every cell that arrived has left the switch —
// departed on an external line or, under DropCount, lost to a failed plane.
func (p *PPS) Drained() bool { return p.arrived == p.departed+p.dropped }

// Arrived reports the number of cells accepted so far.
func (p *PPS) Arrived() uint64 { return p.arrived }

// Departed reports the number of cells emitted so far.
func (p *PPS) Departed() uint64 { return p.departed }

// Dropped reports the number of cells lost to failed planes (DropCount
// policy); always zero under Abort.
func (p *PPS) Dropped() uint64 { return p.dropped }

// SlotDrops returns the cells dropped during the most recent Step, each with
// Via set to the plane that lost it. The slice is the fabric's scratch
// storage, valid until the next Step; the harness copies what it needs into
// the drop counters.
func (p *PPS) SlotDrops() []cell.Cell { return p.slotDrops }

// LivePlanes reports the number of planes currently in service.
func (p *PPS) LivePlanes() int {
	n := 0
	for _, pl := range p.planes {
		if !pl.Failed() {
			n++
		}
	}
	return n
}

// PeakPlaneQueue reports the largest per-output backlog observed across all
// planes — the buffer provisioning the measured delays imply (Section 1.2).
func (p *PPS) PeakPlaneQueue() int {
	peak := 0
	for _, pl := range p.planes {
		if q := pl.PeakQueue(); q > peak {
			peak = q
		}
	}
	return peak
}

// Log exposes the global event log (used by diagnostics; algorithms receive
// it through their Env). The log records events only once requested: a
// diagnostic caller that wants the full stream must call Log before the
// first Step. Algorithms that read the log request it at construction, so
// their view is always complete.
func (p *PPS) Log() *demux.Log {
	p.logArmed = true
	return &p.log
}

// CurrentSlot reports the last slot the fabric executed, or -1 before the
// first Step. The harness uses it to enforce that a PPS is driven at most
// once: per-run accounting (output utilization windows, peak queues,
// dispatch counters) is cumulative and would silently blend runs if a
// fabric were reused.
func (p *PPS) CurrentSlot() cell.Time { return p.lastSlot }
