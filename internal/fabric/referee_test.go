package fabric

// The fabric advertises itself as the referee of every experiment: an
// algorithm that cheats produces an error, not a better number. These tests
// play a rogue's gallery of cheating algorithms against it and check that
// every violation is caught.

import (
	"strings"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
)

// rogue is a configurable misbehaving algorithm.
type rogue struct {
	env    demux.Env
	cheat  func(t cell.Time, arrivals []cell.Cell) ([]demux.Send, error)
	buffer func(in cell.Port) int
}

func (r *rogue) Name() string { return "rogue" }
func (r *rogue) Slot(t cell.Time, arrivals []cell.Cell) ([]demux.Send, error) {
	return r.cheat(t, arrivals)
}
func (r *rogue) Buffered(in cell.Port) int {
	if r.buffer != nil {
		return r.buffer(in)
	}
	return 0
}

func rogueFactory(cheat func(env demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error), buffer func(in cell.Port) int) func(demux.Env) (demux.Algorithm, error) {
	return func(e demux.Env) (demux.Algorithm, error) {
		return &rogue{env: e, cheat: cheat(e), buffer: buffer}, nil
	}
}

func stepOne(t *testing.T, p *PPS, slot cell.Time, cells ...cell.Cell) error {
	t.Helper()
	_, err := p.Step(slot, cells, nil)
	return err
}

func TestRefereeCatchesGateViolation(t *testing.T) {
	// Dispatches every cell to plane 0 regardless of the input gate.
	factory := rogueFactory(func(demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error) {
		return func(_ cell.Time, arrivals []cell.Cell) ([]demux.Send, error) {
			var out []demux.Send
			for _, c := range arrivals {
				out = append(out, demux.Send{Cell: c, Plane: 0})
			}
			return out, nil
		}
	}, nil)
	p, err := New(Config{N: 2, K: 4, RPrime: 3, CheckInvariants: true}, factory)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	if err := stepOne(t, p, 0, st.Stamp(cell.Flow{In: 0, Out: 0}, 0)); err != nil {
		t.Fatalf("first dispatch legal: %v", err)
	}
	err = stepOne(t, p, 1, st.Stamp(cell.Flow{In: 0, Out: 1}, 1))
	if err == nil || !strings.Contains(err.Error(), "input constraint") {
		t.Errorf("gate reuse must be caught: %v", err)
	}
}

func TestRefereeCatchesNonexistentPlane(t *testing.T) {
	factory := rogueFactory(func(demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error) {
		return func(_ cell.Time, arrivals []cell.Cell) ([]demux.Send, error) {
			var out []demux.Send
			for _, c := range arrivals {
				out = append(out, demux.Send{Cell: c, Plane: 99})
			}
			return out, nil
		}
	}, nil)
	p, _ := New(Config{N: 2, K: 2, RPrime: 1}, factory)
	st := cell.NewStamper()
	err := stepOne(t, p, 0, st.Stamp(cell.Flow{In: 0, Out: 0}, 0))
	if err == nil || !strings.Contains(err.Error(), "nonexistent plane") {
		t.Errorf("phantom plane must be caught: %v", err)
	}
}

func TestRefereeCatchesForgedCell(t *testing.T) {
	// Dispatches a cell that never arrived (forged identity).
	factory := rogueFactory(func(demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error) {
		return func(slot cell.Time, arrivals []cell.Cell) ([]demux.Send, error) {
			forged := cell.New(999, 0, cell.Flow{In: 1, Out: 0}, slot)
			return []demux.Send{{Cell: forged, Plane: 0}}, nil
		}
	}, nil)
	p, _ := New(Config{N: 2, K: 2, RPrime: 1, CheckInvariants: true}, factory)
	st := cell.NewStamper()
	err := stepOne(t, p, 0, st.Stamp(cell.Flow{In: 0, Out: 0}, 0))
	if err == nil || !strings.Contains(err.Error(), "not pending") {
		t.Errorf("forged cell must be caught: %v", err)
	}
}

func TestRefereeCatchesDoubleDispatch(t *testing.T) {
	factory := rogueFactory(func(demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error) {
		return func(_ cell.Time, arrivals []cell.Cell) ([]demux.Send, error) {
			var out []demux.Send
			for _, c := range arrivals {
				out = append(out, demux.Send{Cell: c, Plane: 0}, demux.Send{Cell: c, Plane: 1})
			}
			return out, nil
		}
	}, nil)
	p, _ := New(Config{N: 2, K: 2, RPrime: 1, CheckInvariants: true}, factory)
	st := cell.NewStamper()
	err := stepOne(t, p, 0, st.Stamp(cell.Flow{In: 0, Out: 0}, 0))
	if err == nil || !strings.Contains(err.Error(), "not pending") {
		t.Errorf("double dispatch must be caught: %v", err)
	}
}

func TestRefereeCatchesSilentDrop(t *testing.T) {
	// Keeps every cell but reports an empty buffer: a silent drop.
	factory := rogueFactory(func(demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error) {
		return func(cell.Time, []cell.Cell) ([]demux.Send, error) {
			return nil, nil // swallow arrivals
		}
	}, func(cell.Port) int { return 0 })
	p, _ := New(Config{N: 2, K: 2, RPrime: 1, BufferCap: -1, CheckInvariants: true}, factory)
	st := cell.NewStamper()
	err := stepOne(t, p, 0, st.Stamp(cell.Flow{In: 0, Out: 0}, 0))
	if err == nil || !strings.Contains(err.Error(), "cell lost or duplicated") {
		t.Errorf("silent drop must be caught: %v", err)
	}
}

func TestRefereeCatchesOverclaimedBuffer(t *testing.T) {
	// Dispatches everything but claims cells are still buffered.
	factory := rogueFactory(func(env demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error) {
		return func(slot cell.Time, arrivals []cell.Cell) ([]demux.Send, error) {
			var out []demux.Send
			for _, c := range arrivals {
				out = append(out, demux.Send{Cell: c, Plane: 0})
			}
			return out, nil
		}
	}, func(cell.Port) int { return 3 })
	p, _ := New(Config{N: 2, K: 2, RPrime: 1, BufferCap: -1, CheckInvariants: true}, factory)
	st := cell.NewStamper()
	err := stepOne(t, p, 0, st.Stamp(cell.Flow{In: 0, Out: 0}, 0))
	if err == nil || !strings.Contains(err.Error(), "cell lost or duplicated") {
		t.Errorf("phantom buffered cells must be caught: %v", err)
	}
}

func TestRefereeHonestAlgorithmPasses(t *testing.T) {
	// Control: an honest single-plane-rotation rogue passes all checks.
	factory := rogueFactory(func(env demux.Env) func(cell.Time, []cell.Cell) ([]demux.Send, error) {
		next := cell.Plane(0)
		return func(slot cell.Time, arrivals []cell.Cell) ([]demux.Send, error) {
			var out []demux.Send
			for _, c := range arrivals {
				for env.InputGateFreeAt(c.Flow.In, next) > slot {
					next = (next + 1) % cell.Plane(env.Planes())
				}
				out = append(out, demux.Send{Cell: c, Plane: next})
				next = (next + 1) % cell.Plane(env.Planes())
			}
			return out, nil
		}
	}, nil)
	p, err := New(Config{N: 2, K: 4, RPrime: 2, CheckInvariants: true}, factory)
	if err != nil {
		t.Fatal(err)
	}
	st := cell.NewStamper()
	for slot := cell.Time(0); slot < 20; slot++ {
		c := st.Stamp(cell.Flow{In: cell.Port(slot % 2), Out: cell.Port((slot + 1) % 2)}, slot)
		if err := stepOne(t, p, slot, c); err != nil {
			t.Fatalf("honest algorithm flagged at slot %d: %v", slot, err)
		}
	}
}
