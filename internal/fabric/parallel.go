// Stage-parallel slot engine: a persistent sharded worker pool that runs
// stage 3 (per-input buffer audit) across input shards and stage 4 (per-
// output mux pulls, order checks and departures) across output shards, with
// a barrier between the stages.
//
// Why determinism holds (DESIGN.md §8 expands on this):
//
//   - Stage 3 only *reads* fabric and algorithm state, so sharding it
//     cannot change any result, only which violation is detected first;
//     workers scan their shard in ascending input order and the collector
//     takes the first error in shard order, which is the lowest input
//     index — exactly the error the serial loop returns.
//   - In stage 4, output j touches only row j of the departure scratch,
//     column j of the output-gate matrix, the per-output queues of each
//     plane (pops deferred from the shared backlog counter), its own
//     mux.Output, pullsPerOut[j] and lastFlowSeq[j]. Outputs are therefore
//     independent within a slot, and running them in any order yields the
//     same per-output outcome as the serial j-ascending loop.
//   - Everything order-sensitive is applied after the barrier by the
//     stepping goroutine, in the serial loop's order: plane backlog
//     reconciliation, global-log EvXmit replay (workers buffer events; a
//     worker's buffer is ascending in j because it scans its contiguous
//     shard in order, so replaying worker 0..W-1 reproduces the serial
//     append order), and the departure append into dst in ascending j.
//
// The pool is spawned once in New — no per-slot goroutine creation — and
// every per-slot signal (a job send on a buffered channel, a WaitGroup
// add/wait) is allocation-free, so the 0-allocs/slot steady-state invariant
// survives (TestParallelSlotAllocFree pins it).
package fabric

import (
	"runtime"
	"sync"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
)

// minShard is the smallest number of ports worth a dedicated worker in auto
// mode: below this the per-slot barrier costs more than the sharded work.
const minShard = 16

// ResolveWorkers maps a Config.Workers request to the effective worker
// count: 0 for the serial engine, otherwise the number of pool workers.
// Explicit positive requests are honored (clamped to N); -1 (auto) derives
// the count from GOMAXPROCS and N, and falls back to serial when shards
// would be too small to pay for the barrier.
func ResolveWorkers(workers, n int) int {
	switch {
	case workers == 0:
		return 0
	case workers > 0:
		if workers > n {
			workers = n
		}
		return workers
	default: // auto
		w := runtime.GOMAXPROCS(0)
		if maxW := n / minShard; w > maxW {
			w = maxW
		}
		if w <= 1 {
			return 0
		}
		return w
	}
}

// stageJob selects the work a woken worker performs.
type stageJob uint8

const (
	jobAudit stageJob = iota // stage 3: per-input buffer audit
	jobMux                   // stage 4: per-output mux pulls and departures
)

// workerPool is the persistent stage-parallel executor of one PPS.
type workerPool struct {
	p       *PPS
	workers int
	wake    []chan stageJob // one per worker; buffered so sends never block
	wg      sync.WaitGroup
	closed  bool

	// t is the slot being executed, set by the stepping goroutine before
	// the stage signals (workers only read it while running a stage).
	t cell.Time

	// Shard bounds: worker w owns inputs [inLo[w], inHi[w]) and outputs
	// [outLo[w], outHi[w]).
	inLo, inHi   []int
	outLo, outHi []int

	// errs[w] is worker w's first violation this stage, nil otherwise.
	errs []error
	// pulls[w][k] counts worker w's pops from plane k this slot, deferred
	// from the planes' shared backlog counters until after the barrier.
	pulls [][]int
	// events[w] buffers worker w's EvXmit log entries for ordered replay
	// (only used while the global event log is armed).
	events [][]demux.Event

	// depCell[j]/depHas[j] hold output j's departure this slot, if any.
	depCell []cell.Cell
	depHas  []bool
}

// newWorkerPool builds the pool and spawns its workers; w must be >= 1.
func newWorkerPool(p *PPS, w int) *workerPool {
	n := p.cfg.N
	pl := &workerPool{
		p:       p,
		workers: w,
		wake:    make([]chan stageJob, w),
		inLo:    make([]int, w),
		inHi:    make([]int, w),
		outLo:   make([]int, w),
		outHi:   make([]int, w),
		errs:    make([]error, w),
		pulls:   make([][]int, w),
		events:  make([][]demux.Event, w),
		depCell: make([]cell.Cell, n),
		depHas:  make([]bool, n),
	}
	for i := 0; i < w; i++ {
		pl.inLo[i], pl.inHi[i] = i*n/w, (i+1)*n/w
		pl.outLo[i], pl.outHi[i] = i*n/w, (i+1)*n/w
		pl.pulls[i] = make([]int, p.cfg.K)
		pl.wake[i] = make(chan stageJob, 1)
		go pl.loop(i)
	}
	return pl
}

// loop is one worker: wait for a stage signal, run the shard, report done.
func (pl *workerPool) loop(w int) {
	for job := range pl.wake[w] {
		switch job {
		case jobAudit:
			pl.auditShard(w)
		case jobMux:
			pl.muxShard(w)
		}
		pl.wg.Done()
	}
}

// runStage signals every worker and blocks until the stage barrier.
func (pl *workerPool) runStage(job stageJob) {
	pl.wg.Add(pl.workers)
	for _, ch := range pl.wake {
		ch <- job
	}
	pl.wg.Wait()
}

// firstErr returns the first recorded shard error in shard order — the
// violation with the lowest port index, matching the serial loop's choice.
func (pl *workerPool) firstErr() error {
	for _, err := range pl.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// auditShard runs stage 3 over worker w's inputs.
func (pl *workerPool) auditShard(w int) {
	pl.errs[w] = nil
	for i := pl.inLo[w]; i < pl.inHi[w]; i++ {
		if err := pl.p.auditInput(i); err != nil {
			pl.errs[w] = err
			return
		}
	}
}

// muxShard runs stage 4 over worker w's outputs.
func (pl *workerPool) muxShard(w int) {
	p := pl.p
	pl.errs[w] = nil
	for j := pl.outLo[w]; j < pl.outHi[w]; j++ {
		pv := &p.pviews[j]
		pv.t = pl.t
		pv.pulls = pl.pulls[w]
		if p.logArmed {
			pv.events = &pl.events[w]
		}
		c, ok, err := p.outputs[j].Step(pl.t, pv)
		pv.pulls, pv.events = nil, nil
		if err != nil {
			pl.errs[w] = err
			return
		}
		if !ok {
			pl.depHas[j] = false
			continue
		}
		if err := p.checkFlowOrder(c); err != nil {
			pl.errs[w] = err
			return
		}
		pl.depCell[j] = c
		pl.depHas[j] = true
	}
}

// stepSharded executes stages 3 and 4 of one slot on the pool and appends
// the slot's departures to dst in ascending output order. It must only be
// called by the goroutine driving Step, with the tracer detached.
//
// Fault injection needs no changes here: every drop happens in the serial
// phases of Step (schedule application at slot start, the dispatch loop of
// stage 2), so by the time the shards run, the drop counters, the dropGaps
// referee heaps, and the mux skip sets are final for the slot. The shards
// only *read* fault state — checkFlowOrder consumes the dropGaps heap of its
// own output, and Buffer.Skip-advanced resequencers release parked cells —
// which keeps the sharded engine bit-identical to the serial one under any
// schedule.
func (p *PPS) stepSharded(t cell.Time, dst []cell.Cell) ([]cell.Cell, error) {
	pl := p.pool
	pl.t = t

	pl.runStage(jobAudit)
	if err := pl.firstErr(); err != nil {
		return dst, err
	}

	pl.runStage(jobMux)
	// Reconcile the deferred plane pops and replay buffered log events
	// before surfacing any error, so counters and the log stay consistent
	// with the pops that actually happened.
	totalPulls := 0
	for w := 0; w < pl.workers; w++ {
		pulls := pl.pulls[w]
		for k, n := range pulls {
			if n != 0 {
				p.planes[k].AddBacklogDelta(-n)
				totalPulls += n
				pulls[k] = 0
			}
		}
	}
	// Every deferred pop moved one cell from a plane to an output buffer;
	// the per-output queuedPerOut deltas were applied inline by the owning
	// shards (planeView.Pop), only the global totals are deferred here.
	p.cellsInPlanes -= totalPulls
	p.cellsInOutputs += totalPulls
	if p.logArmed {
		for w := 0; w < pl.workers; w++ {
			for _, e := range pl.events[w] {
				p.log.Append(e)
			}
			pl.events[w] = pl.events[w][:0]
		}
	}
	if err := pl.firstErr(); err != nil {
		return dst, err
	}
	for j := 0; j < p.cfg.N; j++ {
		if !pl.depHas[j] {
			continue
		}
		p.departed++
		p.cellsInOutputs--
		dst = append(dst, pl.depCell[j])
	}
	return dst, nil
}

// Workers reports the effective worker count of the stage-parallel engine
// (0 for the serial engine).
func (p *PPS) Workers() int {
	if p.pool == nil {
		return 0
	}
	return p.pool.workers
}

// Close stops the worker pool's goroutines. It is safe to call on a serial
// fabric and more than once; after Close, Step keeps working through the
// serial engine (bit-identical results), so callers that outlive a run —
// harness.Drive closes the pool when a run finishes — can still inspect or
// step the fabric. Close must not be called concurrently with Step.
func (p *PPS) Close() {
	if p.pool == nil || p.pool.closed {
		return
	}
	p.pool.closed = true
	for _, ch := range p.pool.wake {
		close(ch)
	}
}
