// Stage-parallel slot engine: a persistent sharded worker pool that runs
// stage 3 (per-input buffer audit) across input shards and stage 4 (per-
// output mux pulls, order checks and departures) across output shards, with
// a barrier between the stages.
//
// Why determinism holds (DESIGN.md §8 expands on this):
//
//   - Stage 3 only *reads* fabric and algorithm state, so sharding it
//     cannot change any result, only which violation is detected first;
//     workers scan their shard in ascending input order and the collector
//     takes the first error in shard order, which is the lowest input
//     index — exactly the error the serial loop returns.
//   - In stage 4, output j touches only row j of the departure scratch,
//     column j of the output-gate matrix, the per-output queues of each
//     plane (pops deferred from the shared backlog counter), its own
//     mux.Output, its own columnar-store shard (frees), pullsPerOut[j] and
//     lastFlowSeq[j]. Outputs are therefore independent within a slot, and
//     running them in any order yields the same per-output outcome as the
//     serial j-ascending loop.
//   - Everything order-sensitive is applied after the barrier by the
//     stepping goroutine, in the serial loop's order: plane backlog
//     reconciliation, global-log EvXmit replay (workers buffer events; a
//     worker's buffer is ascending in j because it scans its contiguous
//     shard in order, so replaying worker 0..W-1 reproduces the serial
//     append order), and the departure append into dst in ascending j.
//
// The handoff is lock-free (DESIGN.md §13): each worker owns a cache-line-
// padded mailbox word holding epoch<<2|job. The coordinator publishes a
// stage by storing a fresh word into every mailbox; a worker spins briefly
// on its own word and then parks on a capacity-1 token channel, so an idle
// pool burns no CPU while a loaded one never enters the scheduler. The
// epoch makes consecutive words distinct even when the job repeats every
// slot — without it, two back-to-back jobMux commands would be
// indistinguishable (ABA) and a worker could miss one. Completion is a
// single shared countdown: the last finisher hands the coordinator a token.
// Everything a worker writes (errors, pulls, departures) happens before its
// atomic countdown decrement, and the coordinator reads only after
// observing zero, so plain writes suffice for the payload. The pool is
// spawned once in New — no per-slot goroutine creation, no channel sends or
// WaitGroup operations per slot — preserving the 0-allocs/slot steady-state
// invariant (TestParallelSlotAllocFree pins it).
package fabric

import (
	"runtime"
	"sync/atomic"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
)

// minShard is the smallest number of ports worth a dedicated worker in auto
// mode: below this the per-slot barrier costs more than the sharded work.
const minShard = 16

// ResolveWorkers maps a Config.Workers request to the effective worker
// count: 0 for the serial engine, otherwise the number of pool workers.
// Explicit positive requests are honored (clamped to N); -1 (auto) derives
// the count from GOMAXPROCS and N, and falls back to serial when shards
// would be too small (under minShard ports each) to pay for the barrier.
func ResolveWorkers(workers, n int) int {
	switch {
	case workers == 0:
		return 0
	case workers > 0:
		if workers > n {
			workers = n
		}
		return workers
	default: // auto
		w := runtime.GOMAXPROCS(0)
		if maxW := n / minShard; w > maxW {
			w = maxW
		}
		if w <= 1 {
			return 0
		}
		return w
	}
}

// Mailbox command words are epoch<<jobBits | job.
const (
	jobNone  uint64 = 0 // initial mailbox state, never published
	jobAudit uint64 = 1 // stage 3: per-input buffer audit
	jobMux   uint64 = 2 // stage 4: per-output mux pulls and departures
	jobQuit  uint64 = 3 // terminate the worker

	jobBits = 2
	jobMask = 1<<jobBits - 1
)

// workerState is one worker's mailbox, padded so adjacent workers' command
// words never share a cache line (the coordinator writes all of them
// back-to-back every stage).
type workerState struct {
	// cmd holds epoch<<jobBits | job. The coordinator's atomic store
	// publishes the stage (and everything written before it, e.g. the
	// slot t); the worker's atomic load acquires it.
	cmd atomic.Uint64
	// park is the worker's parking lot: capacity 1, a token is tossed in
	// (non-blocking) after every command store in case the worker gave up
	// spinning. A token left over from a stage the worker caught by
	// spinning causes at most one spurious wake, re-checked against cmd.
	park chan struct{}
	_    [64]byte
}

// workerPool is the persistent stage-parallel executor of one PPS.
type workerPool struct {
	p       *PPS
	workers int
	ws      []workerState
	// epoch counts published stages; only the coordinator writes it.
	epoch uint64
	// pending counts workers still inside the current stage. The last
	// finisher (Add hits 0) tosses the coordinator a token.
	pending   atomic.Int64
	coordPark chan struct{}
	// spin is the budget of mailbox re-loads before parking. Zero on a
	// single-CPU process: spinning there only steals the timeslice the
	// other side needs to make progress.
	spin   int
	closed bool

	// t is the slot being executed, set by the stepping goroutine before
	// the stage is published (workers only read it while running a stage).
	t cell.Time

	// Shard bounds: worker w owns inputs [inLo[w], inHi[w]) and outputs
	// [outLo[w], outHi[w]). The output split matches the columnar store's
	// shard geometry (PPS.outShard), so worker w frees refs only from
	// store shard w.
	inLo, inHi   []int
	outLo, outHi []int

	// errs[w] is worker w's first violation this stage, nil otherwise.
	errs []error
	// pulls[w][k] counts worker w's pops from plane k this slot, deferred
	// from the planes' shared backlog counters until after the barrier.
	pulls [][]int
	// events[w] buffers worker w's EvXmit log entries for ordered replay
	// (only used while the global event log is armed).
	events [][]demux.Event

	// depCell[j]/depHas[j] hold output j's departure this slot, if any.
	depCell []cell.Cell
	depHas  []bool
}

// newWorkerPool builds the pool and spawns its workers; w must be >= 1.
func newWorkerPool(p *PPS, w int) *workerPool {
	n := p.cfg.N
	pl := &workerPool{
		p:         p,
		workers:   w,
		ws:        make([]workerState, w),
		coordPark: make(chan struct{}, 1),
		inLo:      make([]int, w),
		inHi:      make([]int, w),
		outLo:     make([]int, w),
		outHi:     make([]int, w),
		errs:      make([]error, w),
		pulls:     make([][]int, w),
		events:    make([][]demux.Event, w),
		depCell:   make([]cell.Cell, n),
		depHas:    make([]bool, n),
	}
	// Spinning is only useful when the coordinator and the workers can
	// actually run simultaneously: it needs both the scheduler's permission
	// (GOMAXPROCS) and real hardware parallelism (NumCPU). On a single CPU
	// a spinning worker merely steals the timeslice the other side needs,
	// so the budget drops to zero and every wait parks immediately.
	if runtime.GOMAXPROCS(0) > 1 && runtime.NumCPU() > 1 {
		pl.spin = 2048
	}
	for i := 0; i < w; i++ {
		pl.inLo[i], pl.inHi[i] = i*n/w, (i+1)*n/w
		pl.outLo[i], pl.outHi[i] = i*n/w, (i+1)*n/w
		pl.pulls[i] = make([]int, p.cfg.K)
		pl.ws[i].park = make(chan struct{}, 1)
		go pl.loop(i)
	}
	return pl
}

// loop is one worker: await the next command word, run the stage over the
// shard, count down. A worker remembers the last word it executed; any
// differing word is a fresh command (the epoch guarantees freshness).
func (pl *workerPool) loop(w int) {
	ws := &pl.ws[w]
	var last uint64
	for {
		word := pl.await(ws, last)
		last = word
		switch word & jobMask {
		case jobAudit:
			pl.auditShard(w)
		case jobMux:
			pl.muxShard(w)
		case jobQuit:
			pl.finish()
			return
		}
		pl.finish()
	}
}

// await returns the next command word differing from last: spin on the
// mailbox up to the budget, then park on the token channel and re-check.
func (pl *workerPool) await(ws *workerState, last uint64) uint64 {
	for i := 0; i < pl.spin; i++ {
		if word := ws.cmd.Load(); word != last {
			return word
		}
	}
	for {
		if word := ws.cmd.Load(); word != last {
			return word
		}
		<-ws.park
	}
}

// finish counts this worker out of the stage; the last one wakes the
// coordinator. The atomic decrement orders every preceding plain write
// (errs, pulls, events, departures, store frees) before the coordinator's
// read of pending == 0.
func (pl *workerPool) finish() {
	if pl.pending.Add(-1) == 0 {
		select {
		case pl.coordPark <- struct{}{}:
		default:
		}
	}
}

// runStage publishes a stage to every worker and blocks until all have
// counted out. Must only be called by the goroutine driving Step.
func (pl *workerPool) runStage(job uint64) {
	pl.epoch++
	word := pl.epoch<<jobBits | job
	pl.pending.Store(int64(pl.workers))
	for i := range pl.ws {
		ws := &pl.ws[i]
		ws.cmd.Store(word)
		select {
		case ws.park <- struct{}{}:
		default:
		}
	}
	for i := 0; i < pl.spin; i++ {
		if pl.pending.Load() == 0 {
			return
		}
	}
	// A token left in coordPark by a stage we caught spinning is consumed
	// here and re-checked — at most one spurious pass per stage.
	for pl.pending.Load() != 0 {
		<-pl.coordPark
	}
}

// firstErr returns the first recorded shard error in shard order — the
// violation with the lowest port index, matching the serial loop's choice.
func (pl *workerPool) firstErr() error {
	for _, err := range pl.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// auditShard runs stage 3 over worker w's inputs.
func (pl *workerPool) auditShard(w int) {
	pl.errs[w] = nil
	for i := pl.inLo[w]; i < pl.inHi[w]; i++ {
		if err := pl.p.auditInput(i); err != nil {
			pl.errs[w] = err
			return
		}
	}
}

// muxShard runs stage 4 over worker w's outputs.
func (pl *workerPool) muxShard(w int) {
	p := pl.p
	pl.errs[w] = nil
	for j := pl.outLo[w]; j < pl.outHi[w]; j++ {
		pv := &p.pviews[j]
		pv.pulls = pl.pulls[w]
		if p.logArmed {
			pv.events = &pl.events[w]
		}
		c, ok, err := p.outputs[j].Step(pl.t, pv)
		pv.pulls, pv.events = nil, nil
		if err != nil {
			pl.errs[w] = err
			return
		}
		if !ok {
			pl.depHas[j] = false
			continue
		}
		if err := p.checkFlowOrder(c); err != nil {
			pl.errs[w] = err
			return
		}
		pl.depCell[j] = c
		pl.depHas[j] = true
	}
}

// stepSharded executes stages 3 and 4 of one slot on the pool and appends
// the slot's departures to dst in ascending output order. It must only be
// called by the goroutine driving Step, with the tracer detached.
//
// Fault injection needs no changes here: every drop happens in the serial
// phases of Step (schedule application at slot start, the dispatch loop of
// stage 2), so by the time the shards run, the drop counters, the dropGaps
// referee heaps, and the mux skip sets are final for the slot. The shards
// only *read* fault state — checkFlowOrder consumes the dropGaps heap of its
// own output, and Buffer.Skip-advanced resequencers release parked cells —
// which keeps the sharded engine bit-identical to the serial one under any
// schedule.
func (p *PPS) stepSharded(t cell.Time, dst []cell.Cell) ([]cell.Cell, error) {
	pl := p.pool
	pl.t = t

	pl.runStage(jobAudit)
	if err := pl.firstErr(); err != nil {
		return dst, err
	}

	pl.runStage(jobMux)
	// Reconcile the deferred plane pops and replay buffered log events
	// before surfacing any error, so counters and the log stay consistent
	// with the pops that actually happened.
	totalPulls := 0
	for w := 0; w < pl.workers; w++ {
		pulls := pl.pulls[w]
		for k, n := range pulls {
			if n != 0 {
				p.planes[k].AddBacklogDelta(-n)
				totalPulls += n
				pulls[k] = 0
			}
		}
	}
	// Every deferred pop moved one cell from a plane to an output buffer;
	// the per-output queuedPerOut deltas were applied inline by the owning
	// shards (planeView.pop), only the global totals are deferred here.
	p.cellsInPlanes -= totalPulls
	p.cellsInOutputs += totalPulls
	if p.logArmed {
		for w := 0; w < pl.workers; w++ {
			for _, e := range pl.events[w] {
				p.log.Append(e)
			}
			pl.events[w] = pl.events[w][:0]
		}
	}
	if err := pl.firstErr(); err != nil {
		return dst, err
	}
	for j := 0; j < p.cfg.N; j++ {
		if !pl.depHas[j] {
			continue
		}
		p.departed++
		p.cellsInOutputs--
		dst = append(dst, pl.depCell[j])
	}
	return dst, nil
}

// Workers reports the effective worker count of the stage-parallel engine
// (0 for the serial engine).
func (p *PPS) Workers() int {
	if p.pool == nil {
		return 0
	}
	return p.pool.workers
}

// ShardPorts reports the per-worker output-shard widths of the stage-
// parallel engine: element w is the number of output-ports (and columnar-
// store slab) worker w owns. Nil for the serial engine. Allocates; meant
// for run metadata (harness.Result), not the hot path.
func (p *PPS) ShardPorts() []int {
	if p.pool == nil {
		return nil
	}
	out := make([]int, p.pool.workers)
	for w := range out {
		out[w] = p.pool.outHi[w] - p.pool.outLo[w]
	}
	return out
}

// Close stops the worker pool's goroutines (a jobQuit broadcast; the barrier
// waits for every worker to exit its loop). It is safe to call on a serial
// fabric and more than once; after Close, Step keeps working through the
// serial engine (bit-identical results), so callers that outlive a run —
// harness.Drive closes the pool when a run finishes — can still inspect or
// step the fabric. Close must not be called concurrently with Step.
func (p *PPS) Close() {
	if p.pool == nil || p.pool.closed {
		return
	}
	p.pool.closed = true
	p.pool.runStage(jobQuit)
}
