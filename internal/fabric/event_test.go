package fabric

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ppsim/internal/cell"
	"ppsim/internal/demux"
	"ppsim/internal/faults"
	"ppsim/internal/traffic"
)

// interleaveTrace builds the workload of the interleave property test:
// concentration bursts (all N inputs to output 0 in one slot) separated by
// long silent gaps, so the output queue drains one cell per slot across many
// drain-eligible slots, plus a scattered tail. The slot-45 fault (see the
// schedule in the test) lands mid-drain of the slot-40 burst: per-input
// round-robin has advanced every cursor to plane 2 by then (two prior
// bursts), so all eight cells sit queued in plane 2, of which the r'-limited
// output line has drained only three when the plane fails — the rest are
// dropped, and drop accounting must agree across every interleaving.
func interleaveTrace(t *testing.T, n int) *traffic.Trace {
	t.Helper()
	tr := traffic.NewTrace()
	for _, burst := range []cell.Time{0, 20, 40, 64} {
		for i := 0; i < n; i++ {
			tr.MustAdd(burst, cell.Port(i), 0)
		}
	}
	// Scattered singles keep some slots non-idle without deep backlogs.
	for i := 0; i < n; i++ {
		tr.MustAdd(80+cell.Time(3*i), cell.Port(i), cell.Port((i+1)%n))
	}
	return tr
}

// TestStepInterleaveEquivalence is the property behind the event core's
// correctness argument: ANY legal interleaving of Step, DrainStep and
// EventStep produces the same departures, drops and backlog trajectory as a
// pure-Step twin. "Legal" for DrainStep means no arrivals, no pending input
// cells, no fault event due this slot, and an idle-invariant algorithm;
// EventStep is legal on every slot in serial untraced mode. A seeded random
// walk over those choices — fabrics fed identical stamped cells — must stay
// slot-for-slot identical, including across the mid-drain plane failure.
func TestStepInterleaveEquivalence(t *testing.T) {
	const (
		n        = 8
		maxSlots = 400
	)
	mkFabric := func() *PPS {
		cfg := Config{
			N: n, K: 4, RPrime: 2,
			CheckInvariants: true,
			Faults:          faults.NewSchedule().Outage(2, 45, 60),
			FaultPolicy:     faults.DropCount,
		}
		p, err := New(cfg, rrFactory(demux.PerInput))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	var steps, drains, events, faultMidDrain int
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(seed))
			twin, subj := mkFabric(), mkFabric()
			// Independent stampers issuing identical sequence numbers: both
			// fabrics must see byte-identical cells.
			stTwin, stSubj := cell.NewStamper(), cell.NewStamper()
			src := interleaveTrace(t, n)
			var buf []traffic.Arrival
			var twinDeps, subjDeps, twinCells, subjCells []cell.Cell
			lastWasDrain := false
			for slot := cell.Time(0); slot < maxSlots; slot++ {
				if slot >= src.End() && twin.Drained() && subj.Drained() {
					break
				}
				buf = src.Arrivals(slot, buf[:0])
				twinCells, subjCells = twinCells[:0], subjCells[:0]
				for _, a := range buf {
					f := cell.Flow{In: a.In, Out: a.Out}
					twinCells = append(twinCells, stTwin.Stamp(f, slot))
					subjCells = append(subjCells, stSubj.Stamp(f, slot))
				}

				var err error
				twinDeps, err = twin.Step(slot, twinCells, twinDeps[:0])
				if err != nil {
					t.Fatalf("twin slot %d: %v", slot, err)
				}

				if subj.NextFaultSlot() == slot && lastWasDrain && subj.Backlog() > 0 {
					faultMidDrain++
				}
				legalDrain := len(subjCells) == 0 && subj.PendingTotal() == 0 &&
					subj.NextFaultSlot() != slot && subj.IdleInvariant()
				choices := 2
				if legalDrain {
					choices = 3
				}
				mode := rnd.Intn(choices)
				lastWasDrain = mode == 2
				switch mode {
				case 0:
					steps++
					subjDeps, err = subj.Step(slot, subjCells, subjDeps[:0])
				case 1:
					events++
					subjDeps, err = subj.EventStep(slot, subjCells, subjDeps[:0])
				case 2:
					drains++
					subjDeps, err = subj.DrainStep(slot, subjDeps[:0])
				}
				if err != nil {
					t.Fatalf("subject slot %d (mode %d): %v", slot, mode, err)
				}

				if !reflect.DeepEqual(twinDeps, subjDeps) {
					t.Fatalf("slot %d (mode %d): departures diverge\ntwin:    %v\nsubject: %v",
						slot, mode, twinDeps, subjDeps)
				}
				if !reflect.DeepEqual(twin.SlotDrops(), subj.SlotDrops()) {
					t.Fatalf("slot %d (mode %d): drops diverge\ntwin:    %v\nsubject: %v",
						slot, mode, twin.SlotDrops(), subj.SlotDrops())
				}
				if twin.Backlog() != subj.Backlog() {
					t.Fatalf("slot %d (mode %d): backlog %d vs %d", slot, mode, twin.Backlog(), subj.Backlog())
				}
			}
			if !twin.Drained() || !subj.Drained() {
				t.Fatalf("did not drain: twin backlog %d, subject backlog %d", twin.Backlog(), subj.Backlog())
			}
			if twin.Arrived() != subj.Arrived() || twin.Departed() != subj.Departed() || twin.Dropped() != subj.Dropped() {
				t.Fatalf("totals diverge: twin %d/%d/%d, subject %d/%d/%d",
					twin.Arrived(), twin.Departed(), twin.Dropped(),
					subj.Arrived(), subj.Departed(), subj.Dropped())
			}
			if twin.Dropped() == 0 {
				t.Fatal("outage dropped nothing: the fault path was not exercised")
			}
		})
	}
	if steps == 0 || drains == 0 || events == 0 {
		t.Errorf("interleaving did not exercise every mode: %d steps, %d drains, %d event steps", steps, drains, events)
	}
	if faultMidDrain == 0 {
		t.Error("no run hit the fault slot immediately after a drain micro-step with backlog queued")
	}
}
