// Package faults models center-stage plane failures as data: a declarative,
// deterministic schedule of fail/recover events (plus optional per-plane
// cell-loss probabilities), and the degradation policy that decides what a
// dispatch into a dead plane means.
//
// Section 3 of the paper argues that fault tolerance is *the* reason every
// demultiplexor must be able to reach every plane: a statically partitioned
// PPS turns one plane failure into a stranded input group, while an
// unpartitioned PPS degrades to a switch with K-1 planes (footnote 4).
// Measuring that degradation requires runs that survive a failure instead of
// aborting at the first dead-plane dispatch — which is exactly what the
// DropCount policy provides: dead-plane dispatches (and the backlog a plane
// takes down with it) become accounted losses instead of execution errors.
//
// A Schedule is immutable once built and may be shared across runs; all
// per-run mutable state (the event cursor, the loss RNG streams) lives in a
// Runtime, which the fabric constructs per switch instance. Everything is
// deterministic: events apply in a canonical order and the loss streams are
// seeded from Schedule.Seed, so two runs over the same schedule — serial or
// stage-parallel — drop exactly the same cells.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ppsim/internal/cell"
)

// Policy selects how the fabric degrades when a cell meets a failed plane.
type Policy uint8

// Degradation policies.
const (
	// Abort keeps the historical semantics: the formal model forbids
	// drops, so any dispatch into a failed plane aborts the run with an
	// error. Mid-run failures leave already-queued cells draining (the
	// output-side lines are assumed intact). This is the default.
	Abort Policy = iota
	// DropCount converts dead-plane losses into accounted drops: a
	// dispatch into a failed plane, the backlog a plane holds when it
	// fails, and cells lost to a plane's cell-loss probability are counted
	// (totals, per plane, per input) instead of aborting the run. The mux
	// resequencers and the fabric's order referee tolerate the per-flow
	// sequence gaps the drops leave behind.
	DropCount
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case Abort:
		return "abort"
	case DropCount:
		return "dropcount"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy maps a policy name to its value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "abort":
		return Abort, nil
	case "dropcount", "drop-count", "drop":
		return DropCount, nil
	}
	return Abort, fmt.Errorf("faults: unknown policy %q (want abort or dropcount)", s)
}

// Kind discriminates schedule events.
type Kind uint8

// Event kinds.
const (
	// Fail marks the plane failed from the event's slot on.
	Fail Kind = iota
	// Recover returns the plane to service from the event's slot on. A
	// recovered plane rejoins empty under DropCount (its backlog was
	// dropped when it failed).
	Recover
)

// String names the kind as it appears in specs.
func (k Kind) String() string {
	if k == Recover {
		return "recover"
	}
	return "fail"
}

// Event is one scheduled state change: plane Plane changes to failed
// (Fail) or live (Recover) at the start of slot Slot, before that slot's
// arrivals are presented.
type Event struct {
	Slot  cell.Time
	Plane cell.Plane
	Kind  Kind
}

// Schedule is a declarative fault plan. The zero value / NewSchedule() is an
// empty schedule (no events, no loss); builder methods return the schedule
// for chaining. Build the schedule fully before the first run: it is
// immutable from the fabric's point of view and may be shared across runs
// and goroutines once built.
type Schedule struct {
	events []Event
	// mu guards the lazy canonical sort: building is single-threaded, but
	// a built schedule may be shared by concurrently-constructed runs.
	mu     sync.Mutex
	sorted bool
	// loss[k] is plane k's per-cell loss probability (sparse; planes
	// beyond len(loss) lose nothing).
	loss []float64
	seed int64
}

// NewSchedule returns an empty schedule.
func NewSchedule() *Schedule { return &Schedule{} }

// FailAt schedules plane p to fail at the start of slot t.
func (s *Schedule) FailAt(p cell.Plane, t cell.Time) *Schedule {
	s.events = append(s.events, Event{Slot: t, Plane: p, Kind: Fail})
	s.sorted = false
	return s
}

// RecoverAt schedules plane p to return to service at the start of slot t.
func (s *Schedule) RecoverAt(p cell.Plane, t cell.Time) *Schedule {
	s.events = append(s.events, Event{Slot: t, Plane: p, Kind: Recover})
	s.sorted = false
	return s
}

// Outage schedules a transient window: plane p fails at from and recovers
// at to (to > from).
func (s *Schedule) Outage(p cell.Plane, from, to cell.Time) *Schedule {
	return s.FailAt(p, from).RecoverAt(p, to)
}

// WithLoss sets plane p's per-cell loss probability (cells dispatched into
// the live plane are lost with probability prob, drawn from the seeded
// stream). Loss requires the DropCount policy.
func (s *Schedule) WithLoss(p cell.Plane, prob float64) *Schedule {
	for int(p) >= len(s.loss) {
		s.loss = append(s.loss, 0)
	}
	s.loss[p] = prob
	return s
}

// WithSeed sets the seed of the per-plane loss streams. Runs with the same
// schedule and seed lose exactly the same cells.
func (s *Schedule) WithSeed(seed int64) *Schedule {
	s.seed = seed
	return s
}

// Seed reports the loss-stream seed.
func (s *Schedule) Seed() int64 { return s.seed }

// Empty reports whether the schedule changes nothing: no events and no
// loss. An empty schedule under the Abort policy is byte-identical to no
// schedule at all.
func (s *Schedule) Empty() bool {
	if s == nil {
		return true
	}
	if len(s.events) > 0 {
		return false
	}
	for _, p := range s.loss {
		if p != 0 {
			return false
		}
	}
	return true
}

// HasLoss reports whether any plane has a nonzero loss probability.
func (s *Schedule) HasLoss() bool {
	for _, p := range s.loss {
		if p != 0 {
			return true
		}
	}
	return false
}

// Loss reports plane p's per-cell loss probability.
func (s *Schedule) Loss(p cell.Plane) float64 {
	if int(p) >= len(s.loss) {
		return 0
	}
	return s.loss[p]
}

// Events returns the schedule's events in canonical application order:
// ascending slot, then plane, then kind (Recover before Fail, so a
// same-slot recover+fail of two planes is unambiguous). The returned slice
// is the schedule's own storage — do not modify it.
func (s *Schedule) Events() []Event {
	s.normalize()
	return s.events
}

func (s *Schedule) normalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sorted {
		return
	}
	sort.SliceStable(s.events, func(i, j int) bool {
		a, b := s.events[i], s.events[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Plane != b.Plane {
			return a.Plane < b.Plane
		}
		return a.Kind > b.Kind // Recover (1) before Fail (0)
	})
	s.sorted = true
}

// Validate reports schedule errors against a K-plane switch: out-of-range
// planes, negative slots, duplicate same-plane same-slot events,
// consecutive same-kind events for one plane (fail-fail without a recover,
// or recover-recover without a fail), and loss probabilities outside [0, 1].
// A leading Recover is legal: it un-fails a plane failed before slot 0
// (e.g. via the harness's FailPlanes option).
func (s *Schedule) Validate(k int) error {
	if s == nil {
		return nil
	}
	s.normalize()
	lastKind := make(map[cell.Plane]Kind)
	lastSlot := make(map[cell.Plane]cell.Time)
	for _, e := range s.events {
		if int(e.Plane) < 0 || int(e.Plane) >= k {
			return fmt.Errorf("faults: event %s plane %d outside [0, %d)", e.Kind, e.Plane, k)
		}
		if e.Slot < 0 {
			return fmt.Errorf("faults: event %s plane %d at negative slot %d", e.Kind, e.Plane, e.Slot)
		}
		if prev, ok := lastSlot[e.Plane]; ok {
			if prev == e.Slot {
				return fmt.Errorf("faults: plane %d has two events at slot %d", e.Plane, e.Slot)
			}
			if lastKind[e.Plane] == e.Kind {
				return fmt.Errorf("faults: plane %d: consecutive %s events at slots %d and %d", e.Plane, e.Kind, prev, e.Slot)
			}
		}
		lastKind[e.Plane] = e.Kind
		lastSlot[e.Plane] = e.Slot
	}
	for p, prob := range s.loss {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("faults: plane %d loss probability %g outside [0, 1]", p, prob)
		}
		if prob != 0 && p >= k {
			return fmt.Errorf("faults: loss on plane %d outside [0, %d)", p, k)
		}
	}
	return nil
}

// String renders the schedule in the spec grammar accepted by ParseSpec.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	s.normalize()
	var parts []string
	for _, e := range s.events {
		parts = append(parts, fmt.Sprintf("%s:%d@%d", e.Kind, e.Plane, e.Slot))
	}
	for p, prob := range s.loss {
		if prob != 0 {
			parts = append(parts, fmt.Sprintf("loss:%d@%g", p, prob))
		}
	}
	if s.seed != 0 {
		parts = append(parts, fmt.Sprintf("seed:%d", s.seed))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the comma-separated fault spec grammar used by the
// ppssim and ppsbench -faults flags:
//
//	fail:P@T       plane P fails at the start of slot T
//	recover:P@T    plane P returns to service at the start of slot T
//	outage:P@T1-T2 plane P fails at T1 and recovers at T2
//	loss:P@PROB    plane P loses each cell with probability PROB
//	seed:S         seed of the loss streams
//
// Example: "fail:0@1000,recover:0@3000,loss:2@0.001,seed:7".
// ParseSpec validates syntax and local ranges only; call Validate(K) to
// check the schedule against a concrete switch geometry.
func ParseSpec(spec string) (*Schedule, error) {
	s := NewSchedule()
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		verb, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not VERB:ARGS", item)
		}
		if verb == "seed" {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", rest, err)
			}
			s.WithSeed(seed)
			continue
		}
		planeStr, arg, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not %s:PLANE@ARG", item, verb)
		}
		plane, err := strconv.Atoi(planeStr)
		if err != nil || plane < 0 {
			return nil, fmt.Errorf("faults: bad plane %q in %q", planeStr, item)
		}
		p := cell.Plane(plane)
		switch verb {
		case "fail", "recover":
			slot, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || slot < 0 {
				return nil, fmt.Errorf("faults: bad slot %q in %q", arg, item)
			}
			if verb == "fail" {
				s.FailAt(p, cell.Time(slot))
			} else {
				s.RecoverAt(p, cell.Time(slot))
			}
		case "outage":
			fromStr, toStr, ok := strings.Cut(arg, "-")
			if !ok {
				return nil, fmt.Errorf("faults: outage window %q is not T1-T2", arg)
			}
			from, err1 := strconv.ParseInt(fromStr, 10, 64)
			to, err2 := strconv.ParseInt(toStr, 10, 64)
			if err1 != nil || err2 != nil || from < 0 || to <= from {
				return nil, fmt.Errorf("faults: bad outage window %q in %q", arg, item)
			}
			s.Outage(p, cell.Time(from), cell.Time(to))
		case "loss":
			prob, err := strconv.ParseFloat(arg, 64)
			if err != nil || prob < 0 || prob > 1 {
				return nil, fmt.Errorf("faults: bad loss probability %q in %q", arg, item)
			}
			s.WithLoss(p, prob)
		default:
			return nil, fmt.Errorf("faults: unknown verb %q in %q (want fail, recover, outage, loss or seed)", verb, item)
		}
	}
	return s, nil
}

// Runtime is the per-run applier of one schedule: an advancing cursor over
// the canonical event order plus the per-plane loss streams. A Runtime
// belongs to exactly one switch instance; the schedule it reads stays
// shared and immutable. The steady-state cost with an exhausted cursor and
// no loss is one bounds check per slot and zero allocations.
type Runtime struct {
	sched *Schedule
	idx   int
	// rng[k] is plane k's loss stream; nil when the plane loses nothing,
	// so planes without loss never draw (and never perturb other planes'
	// streams).
	rng []*lossRNG
}

// NewRuntime returns a runtime for a K-plane switch. The schedule must have
// been validated against k.
func NewRuntime(s *Schedule, k int) *Runtime {
	s.normalize()
	rt := &Runtime{sched: s}
	if s.HasLoss() {
		rt.rng = make([]*lossRNG, k)
		for p := 0; p < k; p++ {
			if s.Loss(cell.Plane(p)) > 0 {
				rt.rng[p] = newLossRNG(s.seed, p)
			}
		}
	}
	return rt
}

// Due returns the events to apply at the start of slot t, in canonical
// order, advancing the cursor past them. The returned slice is a view into
// the schedule's storage; it is empty on slots with no events and the call
// never allocates.
func (r *Runtime) Due(t cell.Time) []Event {
	evs := r.sched.events
	lo := r.idx
	for r.idx < len(evs) && evs[r.idx].Slot <= t {
		r.idx++
	}
	return evs[lo:r.idx]
}

// Next returns the slot of the earliest scheduled event the cursor has not
// yet applied, or cell.None when the schedule is exhausted. The harness's
// quiescence fast-forward uses it to truncate an idle jump at the next
// fail/recover event, so the fault cursor advances exactly as it would have
// in a stepped run.
func (r *Runtime) Next() cell.Time {
	if r.idx >= len(r.sched.events) {
		return cell.None
	}
	return r.sched.events[r.idx].Slot
}

// Lose draws plane p's loss stream and reports whether a cell dispatched
// into it this instant is lost. Planes without a configured loss never
// draw, so adding loss to one plane does not change another plane's stream.
func (r *Runtime) Lose(p cell.Plane) bool {
	if r.rng == nil || int(p) >= len(r.rng) || r.rng[p] == nil {
		return false
	}
	return r.rng[p].float64() < r.sched.Loss(p)
}

// HasLoss reports whether any plane draws a loss stream.
func (r *Runtime) HasLoss() bool { return r.rng != nil }

// lossRNG is a splitmix64 stream: tiny, allocation-free per draw, and
// stable across Go releases (unlike math/rand's unexported algorithms,
// whose sequences this repo must not depend on for reproducibility).
type lossRNG struct{ state uint64 }

// newLossRNG derives an independent stream per (seed, plane).
func newLossRNG(seed int64, plane int) *lossRNG {
	// Golden-ratio offsets decorrelate the per-plane streams even for
	// adjacent small seeds.
	return &lossRNG{state: uint64(seed)*0x9E3779B97F4A7C15 + uint64(plane+1)*0xBF58476D1CE4E5B9}
}

func (r *lossRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *lossRNG) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
