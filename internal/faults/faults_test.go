package faults

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"abort", Abort}, {"Abort", Abort}, {" abort ", Abort},
		{"dropcount", DropCount}, {"drop-count", DropCount}, {"drop", DropCount},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePolicy("lossy"); err == nil {
		t.Error("ParsePolicy accepted unknown policy")
	}
	if Abort.String() != "abort" || DropCount.String() != "dropcount" {
		t.Errorf("policy names: %q, %q", Abort, DropCount)
	}
}

func TestScheduleBuildersAndCanonicalOrder(t *testing.T) {
	s := NewSchedule().FailAt(1, 50).Outage(0, 10, 30).RecoverAt(1, 90)
	evs := s.Events()
	want := []Event{
		{Slot: 10, Plane: 0, Kind: Fail},
		{Slot: 30, Plane: 0, Kind: Recover},
		{Slot: 50, Plane: 1, Kind: Fail},
		{Slot: 90, Plane: 1, Kind: Recover},
	}
	if len(evs) != len(want) {
		t.Fatalf("Events() = %v", evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("Events()[%d] = %v, want %v", i, evs[i], want[i])
		}
	}
}

func TestSameSlotRecoverBeforeFail(t *testing.T) {
	// Two planes swapping state in one slot: the canonical order applies the
	// recover first, so the slot never sees both planes down at once.
	s := NewSchedule().FailAt(1, 20).RecoverAt(0, 20).FailAt(0, 5)
	evs := s.Events()
	if evs[1].Kind != Recover || evs[1].Plane != 0 || evs[2].Kind != Fail || evs[2].Plane != 1 {
		t.Errorf("same-slot order wrong: %v", evs)
	}
}

func TestScheduleEmpty(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule should be Empty")
	}
	if !NewSchedule().Empty() {
		t.Error("fresh schedule should be Empty")
	}
	if NewSchedule().FailAt(0, 1).Empty() {
		t.Error("schedule with events should not be Empty")
	}
	if NewSchedule().WithLoss(2, 0.5).Empty() {
		t.Error("schedule with loss should not be Empty")
	}
	if !NewSchedule().WithLoss(2, 0).Empty() {
		t.Error("zero loss should stay Empty")
	}
}

func TestValidate(t *testing.T) {
	ok := func(s *Schedule) {
		t.Helper()
		if err := s.Validate(4); err != nil {
			t.Errorf("Validate rejected legal schedule: %v", err)
		}
	}
	bad := func(s *Schedule, frag string) {
		t.Helper()
		err := s.Validate(4)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("Validate = %v, want error containing %q", err, frag)
		}
	}
	ok(NewSchedule().Outage(0, 10, 30).Outage(0, 50, 70))
	ok(NewSchedule().RecoverAt(2, 5)) // leading recover un-fails FailPlanes
	ok(NewSchedule().WithLoss(3, 0.25))
	bad(NewSchedule().FailAt(4, 10), "outside [0, 4)")
	bad(NewSchedule().FailAt(-1, 10), "outside [0, 4)")
	bad(NewSchedule().FailAt(0, -5), "negative slot")
	bad(NewSchedule().FailAt(0, 10).RecoverAt(0, 10), "two events at slot 10")
	bad(NewSchedule().FailAt(0, 10).FailAt(0, 20), "consecutive fail events")
	bad(NewSchedule().WithLoss(1, 1.5), "outside [0, 1]")
	bad(NewSchedule().WithLoss(9, 0.1), "loss on plane 9")
	if err := (*Schedule)(nil).Validate(4); err != nil {
		t.Errorf("nil schedule Validate = %v", err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	const spec = "fail:0@10,recover:0@30,fail:1@50,loss:2@0.001,seed:7"
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	if s.Seed() != 7 || s.Loss(2) != 0.001 || s.Loss(0) != 0 || !s.HasLoss() {
		t.Errorf("parsed schedule: seed=%d loss2=%g", s.Seed(), s.Loss(2))
	}
	if got := s.String(); got != spec {
		t.Errorf("String() = %q, want %q", got, spec)
	}
	reparsed, err := ParseSpec(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.String() != spec {
		t.Errorf("round trip diverged: %q", reparsed.String())
	}
}

func TestParseSpecOutage(t *testing.T) {
	s, err := ParseSpec("outage:1@100-200")
	if err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	if len(evs) != 2 || evs[0] != (Event{Slot: 100, Plane: 1, Kind: Fail}) ||
		evs[1] != (Event{Slot: 200, Plane: 1, Kind: Recover}) {
		t.Errorf("outage events = %v", evs)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"explode:0@5",   // unknown verb
		"fail:0",        // missing @ARG
		"fail:x@5",      // bad plane
		"fail:-1@5",     // negative plane
		"fail:0@-5",     // negative slot
		"outage:0@9-5",  // inverted window
		"loss:0@1.5",    // probability out of range
		"seed:x",        // bad seed
		"justaword",     // not VERB:ARGS
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	s, err := ParseSpec("  ")
	if err != nil || !s.Empty() {
		t.Errorf("blank spec: %v, %v", s, err)
	}
}

func TestRuntimeDueCursor(t *testing.T) {
	s := NewSchedule().Outage(0, 10, 30).FailAt(1, 10)
	rt := NewRuntime(s, 4)
	if evs := rt.Due(5); len(evs) != 0 {
		t.Errorf("Due(5) = %v", evs)
	}
	evs := rt.Due(10)
	if len(evs) != 2 || evs[0].Plane != 0 || evs[1].Plane != 1 {
		t.Errorf("Due(10) = %v", evs)
	}
	if evs := rt.Due(10); len(evs) != 0 {
		t.Errorf("second Due(10) = %v; cursor did not advance", evs)
	}
	// Skipped slots deliver everything that became due in between.
	if evs := rt.Due(100); len(evs) != 1 || evs[0].Kind != Recover {
		t.Errorf("Due(100) = %v", evs)
	}
	if evs := rt.Due(1000); len(evs) != 0 {
		t.Errorf("exhausted Due = %v", evs)
	}
}

func TestRuntimeLossDeterministic(t *testing.T) {
	s := NewSchedule().WithLoss(1, 0.3).WithSeed(42)
	a, b := NewRuntime(s, 4), NewRuntime(s, 4)
	if !a.HasLoss() {
		t.Fatal("runtime should draw loss streams")
	}
	lost := 0
	for i := 0; i < 10000; i++ {
		la, lb := a.Lose(1), b.Lose(1)
		if la != lb {
			t.Fatalf("draw %d diverged between identical runtimes", i)
		}
		if la {
			lost++
		}
	}
	// The stream is uniform: 10000 draws at p=0.3 land near 3000.
	if lost < 2700 || lost > 3300 {
		t.Errorf("lost %d of 10000 at p=0.3", lost)
	}
	// Planes without configured loss never lose — and never perturb the
	// configured plane's stream.
	if a.Lose(0) || a.Lose(3) {
		t.Error("loss on a plane without a configured probability")
	}
}

func TestRuntimeNoLoss(t *testing.T) {
	rt := NewRuntime(NewSchedule().FailAt(0, 5), 4)
	if rt.HasLoss() || rt.Lose(0) {
		t.Error("event-only schedule should not draw loss")
	}
}

func TestLossStreamsIndependentPerPlane(t *testing.T) {
	s := NewSchedule().WithLoss(0, 0.5).WithLoss(1, 0.5).WithSeed(1)
	rt := NewRuntime(s, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if rt.Lose(0) == rt.Lose(1) {
			same++
		}
	}
	// Correlated streams would agree (or disagree) nearly always.
	if same < 400 || same > 600 {
		t.Errorf("plane streams agree on %d of 1000 draws; expected ~500", same)
	}
}

func TestKindString(t *testing.T) {
	if Fail.String() != "fail" || Recover.String() != "recover" {
		t.Errorf("kind names: %q, %q", Fail, Recover)
	}
}
