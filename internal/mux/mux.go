// Package mux implements the PPS output-ports: the multiplexors that pull
// cells from the plane queues over the rate-r output-side lines and emit
// them on the external line at rate R.
//
// The multiplexor enforces the global FCFS discipline of the reference
// switch: among cells present in the output-port buffer, the one that
// arrived to the PPS earliest (globally, across inputs) departs first. Two
// pull policies are provided; their comparison is one of the ablations
// called out in DESIGN.md §5:
//
//   - Eager: every slot, pull the head of every plane queue whose output
//     line is free. The aggregate inflow to an output can reach S*R, which
//     the model permits (the speedup is exactly the ratio of aggregate
//     internal capacity to the external line).
//   - LazyFCFS: every slot, pull only the globally-earliest head among the
//     planes whose line is free (one pull per slot).
package mux

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// PlaneView is the fabric-provided view of the center stage restricted to
// one output-port: the per-plane queues destined to that output and the
// output-side line gates.
type PlaneView interface {
	// Planes returns K.
	Planes() int
	// Head returns the head cell of plane k's queue for this output.
	Head(k cell.Plane) (cell.Cell, bool)
	// Pop removes and returns that head cell.
	Pop(k cell.Plane) cell.Cell
	// GateFree reports whether the (k, output) line may start a
	// transmission at slot t.
	GateFree(k cell.Plane, t cell.Time) bool
	// SeizeGate marks the (k, output) line busy for r' slots from t.
	SeizeGate(k cell.Plane, t cell.Time) error
}

// Policy selects which plane queues to drain each slot.
type Policy interface {
	// Name returns the registry name of the policy.
	Name() string
	// Pull moves zero or more cells from the planes into the buffer.
	Pull(t cell.Time, pv PlaneView, buf *Buffer) error
}

// Eager pulls from every free line with a pending cell.
type Eager struct{}

// Name implements Policy.
func (Eager) Name() string { return "eager" }

// Pull implements Policy.
func (Eager) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	for k := 0; k < pv.Planes(); k++ {
		kp := cell.Plane(k)
		if _, ok := pv.Head(kp); !ok || !pv.GateFree(kp, t) {
			continue
		}
		if err := pv.SeizeGate(kp, t); err != nil {
			return err
		}
		c := pv.Pop(kp)
		c.AtOutput = t
		buf.Push(c)
	}
	return nil
}

// BoundedEager pulls at most Max cells per slot, earliest heads first — the
// dial between LazyFCFS (Max = 1) and Eager (Max >= K). It models an
// output-port whose reassembly memory bandwidth admits fewer than S*R
// writes per slot, and quantifies how much of the eager policy's advantage
// survives at each budget (ablation, DESIGN.md §5).
type BoundedEager struct {
	// Max is the per-slot pull budget (>= 1).
	Max int
}

// Name implements Policy.
func (p BoundedEager) Name() string { return fmt.Sprintf("bounded-eager-%d", p.Max) }

// Pull implements Policy.
func (p BoundedEager) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	if p.Max < 1 {
		return fmt.Errorf("mux: bounded-eager budget must be >= 1, got %d", p.Max)
	}
	for pulled := 0; pulled < p.Max; pulled++ {
		best := cell.Plane(-1)
		var bestSeq uint64
		for k := 0; k < pv.Planes(); k++ {
			kp := cell.Plane(k)
			h, ok := pv.Head(kp)
			if !ok || !pv.GateFree(kp, t) {
				continue
			}
			if best < 0 || h.Seq < bestSeq {
				best, bestSeq = kp, h.Seq
			}
		}
		if best < 0 {
			return nil
		}
		if err := pv.SeizeGate(best, t); err != nil {
			return err
		}
		c := pv.Pop(best)
		c.AtOutput = t
		buf.Push(c)
	}
	return nil
}

// LazyFCFS pulls at most one cell per slot: the globally-earliest head among
// planes with a free line.
type LazyFCFS struct{}

// Name implements Policy.
func (LazyFCFS) Name() string { return "lazy-fcfs" }

// Pull implements Policy.
func (LazyFCFS) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	best := cell.Plane(-1)
	var bestSeq uint64
	for k := 0; k < pv.Planes(); k++ {
		kp := cell.Plane(k)
		h, ok := pv.Head(kp)
		if !ok || !pv.GateFree(kp, t) {
			continue
		}
		if best < 0 || h.Seq < bestSeq {
			best, bestSeq = kp, h.Seq
		}
	}
	if best < 0 {
		return nil
	}
	if err := pv.SeizeGate(best, t); err != nil {
		return err
	}
	c := pv.Pop(best)
	c.AtOutput = t
	buf.Push(c)
	return nil
}

// Buffer is the output-port resequencing buffer. The PPS must preserve the
// order of cells within a flow, but cells of one flow switched through
// different planes can reach the output out of order; the buffer therefore
// *parks* a cell whose per-flow predecessor has not yet departed, and emits
// — among the in-order ("emittable") cells — the one that arrived to the
// switch earliest (global FCFS, matching the reference discipline). The
// waiting this induces is genuine resequencing delay and is charged to the
// PPS, as the paper's relative-delay accounting requires.
type Buffer struct {
	emittable *queue.Heap[cell.Cell]           // ordered by Seq (global FCFS)
	parked    map[cell.Flow]*queue.Heap[cell.Cell] // ordered by FlowSeq
	next      map[cell.Flow]uint64                 // next FlowSeq the output may emit
	parkedLen int
	// skips holds per-flow FlowSeqs the fabric reported dropped (failed
	// planes, DropCount policy): a parked cell must not wait forever for a
	// predecessor that will never be delivered. Min-heaps, because two
	// planes failing in turn can drop a flow's cells out of FlowSeq order.
	// Nil until the first Skip, so fault-free runs never touch it.
	skips map[cell.Flow]*queue.Heap[uint64]
}

func bySeq(a, b cell.Cell) bool     { return a.Seq < b.Seq }
func byFlowSeq(a, b cell.Cell) bool { return a.FlowSeq < b.FlowSeq }
func byValue(a, b uint64) bool      { return a < b }

// Push inserts a cell delivered by a plane.
func (b *Buffer) Push(c cell.Cell) {
	if b.next == nil {
		b.next = make(map[cell.Flow]uint64)
		b.parked = make(map[cell.Flow]*queue.Heap[cell.Cell])
		b.emittable = queue.NewHeap(bySeq)
	}
	if c.FlowSeq == b.next[c.Flow] {
		b.emittable.Push(c)
		return
	}
	h := b.parked[c.Flow]
	if h == nil {
		// One parked heap per flow, kept for the run: flows are bounded by
		// N^2, so retaining empty heaps trades bounded memory for an
		// allocation-free steady state.
		h = queue.NewHeap(byFlowSeq)
		b.parked[c.Flow] = h
	}
	h.Push(c)
	b.parkedLen++
}

// Len reports the number of buffered cells (emittable and parked).
func (b *Buffer) Len() int {
	if b.emittable == nil {
		return 0
	}
	return b.emittable.Len() + b.parkedLen
}

// Skip records that flow f's cell FlowSeq fs was dropped inside the switch
// (a failed plane under the DropCount policy) and will never be delivered:
// the resequencer treats it as already departed, so successors do not park
// forever behind the gap. Skips may arrive in any order relative to the
// flow's progression and to each other.
func (b *Buffer) Skip(f cell.Flow, fs uint64) {
	if b.next == nil {
		b.next = make(map[cell.Flow]uint64)
		b.parked = make(map[cell.Flow]*queue.Heap[cell.Cell])
		b.emittable = queue.NewHeap(bySeq)
	}
	if fs == b.next[f] {
		b.next[f] = fs + 1
		b.advance(f)
		return
	}
	if b.skips == nil {
		b.skips = make(map[cell.Flow]*queue.Heap[uint64])
	}
	h := b.skips[f]
	if h == nil {
		h = queue.NewHeap(byValue)
		b.skips[f] = h
	}
	h.Push(fs)
}

// advance consumes any now-reached skipped FlowSeqs of flow f and releases
// the parked successor the advancement uncovers, if any.
func (b *Buffer) advance(f cell.Flow) {
	if sk := b.skips[f]; sk != nil {
		for !sk.Empty() && sk.Peek() == b.next[f] {
			sk.Pop()
			b.next[f]++
		}
	}
	if h := b.parked[f]; h != nil && !h.Empty() && h.Peek().FlowSeq == b.next[f] {
		b.emittable.Push(h.Pop())
		b.parkedLen--
	}
}

// PopEmittable removes and returns the earliest in-order cell; ok is false
// when every buffered cell is waiting for a predecessor (or the buffer is
// empty).
func (b *Buffer) PopEmittable() (cell.Cell, bool) {
	if b.emittable == nil || b.emittable.Empty() {
		return cell.Cell{}, false
	}
	c := b.emittable.Pop()
	b.next[c.Flow] = c.FlowSeq + 1
	b.advance(c.Flow)
	return c, true
}

// PeekEmittable returns the earliest in-order cell without removing it.
func (b *Buffer) PeekEmittable() (cell.Cell, bool) {
	if b.emittable == nil || b.emittable.Empty() {
		return cell.Cell{}, false
	}
	return b.emittable.Peek(), true
}

// Output is one PPS output-port: a pull policy plus the reassembly buffer
// and the external-line emission logic (at most one cell per slot; a cell
// may depart in the very slot it reached the output-port).
type Output struct {
	j      cell.Port
	policy Policy
	buf    Buffer

	busySlots  int64 // slots in which a cell departed
	firstSlot  cell.Time
	lastSlot   cell.Time
	everActive bool
}

// NewOutput returns output-port j with the given pull policy. It panics on
// a nil policy.
func NewOutput(j cell.Port, p Policy) *Output {
	if p == nil {
		panic("mux: nil policy")
	}
	return &Output{j: j, policy: p, firstSlot: cell.None, lastSlot: cell.None}
}

// Step advances the output by one slot: pull per policy, then emit the
// earliest buffered cell, if any. It returns the departed cell (ok=false if
// the output was idle) or an error if the policy violated a gate.
func (o *Output) Step(t cell.Time, pv PlaneView) (cell.Cell, bool, error) {
	if err := o.policy.Pull(t, pv, &o.buf); err != nil {
		return cell.Cell{}, false, err
	}
	c, ok := o.buf.PopEmittable()
	if !ok {
		return cell.Cell{}, false, nil
	}
	if c.Flow.Out != o.j {
		return cell.Cell{}, false, fmt.Errorf("mux: output %d pulled cell %v for output %d", o.j, c, c.Flow.Out)
	}
	c.Depart = t
	o.busySlots++
	if !o.everActive {
		o.firstSlot = t
		o.everActive = true
	}
	o.lastSlot = t
	return c, true, nil
}

// Buffered reports the number of cells waiting in the reassembly buffer.
func (o *Output) Buffered() int { return o.buf.Len() }

// Skip informs the resequencing buffer that flow f's cell FlowSeq fs was
// dropped inside the switch and will never arrive (see Buffer.Skip).
func (o *Output) Skip(f cell.Flow, fs uint64) { o.buf.Skip(f, fs) }

// Utilization reports the fraction of slots in [firstDeparture,
// lastDeparture] in which a cell departed — 1.0 means the output never
// idled between its first and last departure (the Theorem 14 "no relative
// queuing delay in congested periods" signature). It returns 0 when the
// output never departed a cell.
//
// The busy window is cumulative over the Output's lifetime and is never
// reset, so the figure is only meaningful for a single run. Reusing a
// fabric would silently blend the runs' windows (and every other cumulative
// counter); harness.Drive therefore rejects an already-driven PPS.
func (o *Output) Utilization() float64 {
	if !o.everActive {
		return 0
	}
	span := int64(o.lastSlot-o.firstSlot) + 1
	return float64(o.busySlots) / float64(span)
}

// BusySlots reports how many slots emitted a cell.
func (o *Output) BusySlots() int64 { return o.busySlots }
