// Package mux implements the PPS output-ports: the multiplexors that pull
// cells from the plane queues over the rate-r output-side lines and emit
// them on the external line at rate R.
//
// The multiplexor enforces the global FCFS discipline of the reference
// switch: among cells present in the output-port buffer, the one that
// arrived to the PPS earliest (globally, across inputs) departs first. Two
// pull policies are provided; their comparison is one of the ablations
// called out in DESIGN.md §5:
//
//   - Eager: every slot, pull the head of every plane queue whose output
//     line is free. The aggregate inflow to an output can reach S*R, which
//     the model permits (the speedup is exactly the ratio of aggregate
//     internal capacity to the external line).
//   - LazyFCFS: every slot, pull only the globally-earliest head among the
//     planes whose line is free (one pull per slot).
//
// Cells are addressed by cell.Ref into the shared columnar cell.Store
// (DESIGN.md §13): the view hands the policies a batch of eligible plane
// heads in one call, the policy takes the refs it wants in one call, and
// the resequencing heaps order {key, ref} pairs without touching the cell
// bodies.
package mux

import (
	"fmt"

	"ppsim/internal/cell"
	"ppsim/internal/queue"
)

// Head is one eligible plane head as reported by PlaneView.Eligible: the
// plane and the global sequence number of its head cell (the only field the
// pull policies order by).
type Head struct {
	K   cell.Plane
	Seq uint64
}

// PlaneView is the fabric-provided view of the center stage restricted to
// one output-port: the per-plane queues destined to that output and the
// output-side line gates. The protocol is batched: one Eligible call per
// slot surfaces every pullable head, then one Take (or a single PullBatch)
// per selection — two interface crossings per output-slot for the eager
// policy instead of four per cell.
type PlaneView interface {
	// Planes returns K.
	Planes() int
	// Eligible appends, in ascending plane order, a Head for every plane
	// whose queue for this output is non-empty and whose output-side line
	// is free at slot t.
	Eligible(t cell.Time, dst []Head) []Head
	// Take seizes plane k's line at t and pops its head ref. Within one
	// slot a plane can be taken at most once (the seize holds the line for
	// r' >= 1 slots), so the Eligible set never goes stale mid-slot except
	// for the entries already taken.
	Take(t cell.Time, k cell.Plane) (cell.Ref, error)
	// PullBatch takes every listed head in order, appending the popped
	// refs to dst. On a gate violation it returns the refs taken so far
	// together with the error; the caller still owns those refs.
	PullBatch(t cell.Time, heads []Head, dst []cell.Ref) ([]cell.Ref, error)
}

// Policy selects which plane queues to drain each slot.
type Policy interface {
	// Name returns the registry name of the policy.
	Name() string
	// Pull moves zero or more cells from the planes into the buffer.
	Pull(t cell.Time, pv PlaneView, buf *Buffer) error
}

// Eager pulls from every free line with a pending cell.
type Eager struct{}

// Name implements Policy.
func (Eager) Name() string { return "eager" }

// Pull implements Policy: every eligible head is taken, in ascending plane
// order, in a single batch.
func (Eager) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	heads := pv.Eligible(t, buf.heads[:0])
	buf.heads = heads
	if len(heads) == 0 {
		return nil
	}
	refs, err := pv.PullBatch(t, heads, buf.refs[:0])
	buf.refs = refs
	// Push whatever was taken even on error, so every popped cell is
	// accounted in the buffer before the violation aborts the run.
	buf.PushBatch(t, refs)
	return err
}

// BoundedEager pulls at most Max cells per slot, earliest heads first — the
// dial between LazyFCFS (Max = 1) and Eager (Max >= K). It models an
// output-port whose reassembly memory bandwidth admits fewer than S*R
// writes per slot, and quantifies how much of the eager policy's advantage
// survives at each budget (ablation, DESIGN.md §5).
type BoundedEager struct {
	// Max is the per-slot pull budget (>= 1).
	Max int
}

// Name implements Policy.
func (p BoundedEager) Name() string { return fmt.Sprintf("bounded-eager-%d", p.Max) }

// Pull implements Policy. One Eligible scan suffices: a take only busies
// the taken plane's own line and pops its own head, so the remaining
// entries stay eligible — selecting the minimum-Seq survivor per round over
// the snapshot is exactly the historical rescan loop.
func (p BoundedEager) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	if p.Max < 1 {
		return fmt.Errorf("mux: bounded-eager budget must be >= 1, got %d", p.Max)
	}
	heads := pv.Eligible(t, buf.heads[:0])
	buf.heads = heads
	for pulled := 0; pulled < p.Max; pulled++ {
		best := -1
		for i := range heads {
			if heads[i].K < 0 {
				continue // already taken this slot
			}
			if best < 0 || heads[i].Seq < heads[best].Seq {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		r, err := pv.Take(t, heads[best].K)
		if err != nil {
			return err
		}
		heads[best].K = -1
		buf.Push(t, r)
	}
	return nil
}

// LazyFCFS pulls at most one cell per slot: the globally-earliest head among
// planes with a free line.
type LazyFCFS struct{}

// Name implements Policy.
func (LazyFCFS) Name() string { return "lazy-fcfs" }

// Pull implements Policy.
func (LazyFCFS) Pull(t cell.Time, pv PlaneView, buf *Buffer) error {
	heads := pv.Eligible(t, buf.heads[:0])
	buf.heads = heads
	best := -1
	for i := range heads {
		if best < 0 || heads[i].Seq < heads[best].Seq {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	r, err := pv.Take(t, heads[best].K)
	if err != nil {
		return err
	}
	buf.Push(t, r)
	return nil
}

// Buffer is the output-port resequencing buffer. The PPS must preserve the
// order of cells within a flow, but cells of one flow switched through
// different planes can reach the output out of order; the buffer therefore
// *parks* a cell whose per-flow predecessor has not yet departed, and emits
// — among the in-order ("emittable") cells — the one that arrived to the
// switch earliest (global FCFS, matching the reference discipline). The
// waiting this induces is genuine resequencing delay and is charged to the
// PPS, as the paper's relative-delay accounting requires.
//
// Every flow that can reach an output shares that output, so flow state is
// keyed by the input-port alone: next and parked are dense arrays indexed
// by In, lazily allocated on the output's first cell — an output that never
// sees traffic costs nothing, and an active one replaces the historical
// per-flow map lookups (and their steady growth) with array indexing.
type Buffer struct {
	s *cell.Store
	n int // ports: bounds the In index space

	emittable *queue.Heap[entry]   // keyed by Seq (global FCFS)
	parked    []*queue.Heap[entry] // [In], keyed by FlowSeq
	next      []uint64             // [In]: next FlowSeq the output may emit
	parkedLen int
	// skips holds per-flow FlowSeqs the fabric reported dropped (failed
	// planes, DropCount policy): a parked cell must not wait forever for a
	// predecessor that will never be delivered. Min-heaps, because two
	// planes failing in turn can drop a flow's cells out of FlowSeq order.
	// Nil until the first Skip, so fault-free runs never touch it.
	skips map[cell.Port]*queue.Heap[uint64]

	// heads and refs are the pull policies' per-slot scratch, owned by the
	// buffer so policies stay stateless values.
	heads []Head
	refs  []cell.Ref
}

// entry is one heap element: the ordering key (Seq for the emittable heap,
// FlowSeq for parked heaps) alongside the ref, so sift operations never
// dereference the store.
type entry struct {
	key uint64
	ref cell.Ref
}

func byKey(a, b entry) bool    { return a.key < b.key }
func byValue(a, b uint64) bool { return a < b }

// NewBuffer returns a resequencing buffer for an n-port switch over store s.
func NewBuffer(s *cell.Store, n int) *Buffer {
	if s == nil || n <= 0 {
		panic(fmt.Sprintf("mux: buffer needs a store and n > 0 (n=%d)", n))
	}
	b := &Buffer{}
	b.init(s, n)
	return b
}

func (b *Buffer) init(s *cell.Store, n int) {
	b.s = s
	b.n = n
}

// lazyInit allocates the flow-state arrays on the output's first activity.
func (b *Buffer) lazyInit() {
	if b.next != nil {
		return
	}
	b.next = make([]uint64, b.n)
	b.parked = make([]*queue.Heap[entry], b.n)
	b.emittable = queue.NewHeap(byKey)
}

// Push inserts a cell delivered by a plane at slot t, stamping AtOutput.
func (b *Buffer) Push(t cell.Time, r cell.Ref) {
	b.lazyInit()
	c := b.s.At(r)
	c.AtOutput = t
	in := c.Flow.In
	if c.FlowSeq == b.next[in] {
		b.emittable.Push(entry{key: c.Seq, ref: r})
		return
	}
	h := b.parked[in]
	if h == nil {
		// One parked heap per input, kept for the run: inputs are bounded
		// by N, so retaining empty heaps trades bounded memory for an
		// allocation-free steady state.
		h = queue.NewHeap(byKey)
		b.parked[in] = h
	}
	h.Push(entry{key: c.FlowSeq, ref: r})
	b.parkedLen++
}

// PushBatch inserts every ref in order (the batched form of Push).
func (b *Buffer) PushBatch(t cell.Time, refs []cell.Ref) {
	for _, r := range refs {
		b.Push(t, r)
	}
}

// Len reports the number of buffered cells (emittable and parked).
func (b *Buffer) Len() int {
	if b.emittable == nil {
		return 0
	}
	return b.emittable.Len() + b.parkedLen
}

// Skip records that flow f's cell FlowSeq fs was dropped inside the switch
// (a failed plane under the DropCount policy) and will never be delivered:
// the resequencer treats it as already departed, so successors do not park
// forever behind the gap. Skips may arrive in any order relative to the
// flow's progression and to each other.
func (b *Buffer) Skip(f cell.Flow, fs uint64) {
	b.lazyInit()
	if fs == b.next[f.In] {
		b.next[f.In] = fs + 1
		b.advance(f.In)
		return
	}
	if b.skips == nil {
		b.skips = make(map[cell.Port]*queue.Heap[uint64])
	}
	h := b.skips[f.In]
	if h == nil {
		h = queue.NewHeap(byValue)
		b.skips[f.In] = h
	}
	h.Push(fs)
}

// advance consumes any now-reached skipped FlowSeqs of input in's flow and
// releases the parked successor the advancement uncovers, if any.
func (b *Buffer) advance(in cell.Port) {
	if sk := b.skips[in]; sk != nil {
		for !sk.Empty() && sk.Peek() == b.next[in] {
			sk.Pop()
			b.next[in]++
		}
	}
	if h := b.parked[in]; h != nil && !h.Empty() && h.Peek().key == b.next[in] {
		e := h.Pop()
		b.emittable.Push(entry{key: b.s.At(e.ref).Seq, ref: e.ref})
		b.parkedLen--
	}
}

// PopEmittable removes and returns the earliest in-order cell (freeing its
// ref back to the store); ok is false when every buffered cell is waiting
// for a predecessor (or the buffer is empty).
func (b *Buffer) PopEmittable() (cell.Cell, bool) {
	if b.emittable == nil || b.emittable.Empty() {
		return cell.Cell{}, false
	}
	c := b.s.Take(b.emittable.Pop().ref)
	b.next[c.Flow.In] = c.FlowSeq + 1
	b.advance(c.Flow.In)
	return c, true
}

// PeekEmittable returns the earliest in-order cell without removing it.
func (b *Buffer) PeekEmittable() (cell.Cell, bool) {
	if b.emittable == nil || b.emittable.Empty() {
		return cell.Cell{}, false
	}
	return *b.s.At(b.emittable.Peek().ref), true
}

// Output is one PPS output-port: a pull policy plus the reassembly buffer
// and the external-line emission logic (at most one cell per slot; a cell
// may depart in the very slot it reached the output-port).
type Output struct {
	j      cell.Port
	policy Policy
	buf    Buffer

	busySlots  int64 // slots in which a cell departed
	firstSlot  cell.Time
	lastSlot   cell.Time
	everActive bool
}

// NewOutput returns output-port j of an n-port switch with the given pull
// policy, resequencing over store s. It panics on a nil policy or store.
func NewOutput(j cell.Port, p Policy, s *cell.Store, n int) *Output {
	if p == nil {
		panic("mux: nil policy")
	}
	if s == nil || n <= 0 {
		panic(fmt.Sprintf("mux: output needs a store and n > 0 (n=%d)", n))
	}
	o := &Output{j: j, policy: p, firstSlot: cell.None, lastSlot: cell.None}
	o.buf.init(s, n)
	return o
}

// Step advances the output by one slot: pull per policy, then emit the
// earliest buffered cell, if any. It returns the departed cell (ok=false if
// the output was idle) or an error if the policy violated a gate.
func (o *Output) Step(t cell.Time, pv PlaneView) (cell.Cell, bool, error) {
	if err := o.policy.Pull(t, pv, &o.buf); err != nil {
		return cell.Cell{}, false, err
	}
	c, ok := o.buf.PopEmittable()
	if !ok {
		return cell.Cell{}, false, nil
	}
	if c.Flow.Out != o.j {
		return cell.Cell{}, false, fmt.Errorf("mux: output %d pulled cell %v for output %d", o.j, c, c.Flow.Out)
	}
	c.Depart = t
	o.busySlots++
	if !o.everActive {
		o.firstSlot = t
		o.everActive = true
	}
	o.lastSlot = t
	return c, true, nil
}

// Buffered reports the number of cells waiting in the reassembly buffer.
func (o *Output) Buffered() int { return o.buf.Len() }

// Skip informs the resequencing buffer that flow f's cell FlowSeq fs was
// dropped inside the switch and will never arrive (see Buffer.Skip).
func (o *Output) Skip(f cell.Flow, fs uint64) { o.buf.Skip(f, fs) }

// Utilization reports the fraction of slots in [firstDeparture,
// lastDeparture] in which a cell departed — 1.0 means the output never
// idled between its first and last departure (the Theorem 14 "no relative
// queuing delay in congested periods" signature). It returns 0 when the
// output never departed a cell.
//
// The busy window is cumulative over the Output's lifetime and is never
// reset, so the figure is only meaningful for a single run. Reusing a
// fabric would silently blend the runs' windows (and every other cumulative
// counter); harness.Drive therefore rejects an already-driven PPS.
func (o *Output) Utilization() float64 {
	if !o.everActive {
		return 0
	}
	span := int64(o.lastSlot-o.firstSlot) + 1
	return float64(o.busySlots) / float64(span)
}

// BusySlots reports how many slots emitted a cell.
func (o *Output) BusySlots() int64 { return o.busySlots }
